package pubtac_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"

	"pubtac"
)

func TestCheckSchemaVersion(t *testing.T) {
	if err := pubtac.CheckSchemaVersion(pubtac.ResultSchemaVersion); err != nil {
		t.Fatalf("current version rejected: %v", err)
	}
	err := pubtac.CheckSchemaVersion(pubtac.ResultSchemaVersion + 1)
	var se *pubtac.SchemaError
	if !errors.As(err, &se) {
		t.Fatalf("mismatch error = %v, want *SchemaError", err)
	}
	if se.Got != pubtac.ResultSchemaVersion+1 {
		t.Fatalf("SchemaError.Got = %d", se.Got)
	}
}

// TestSchemaVersionRoundTrip serializes each result shape and verifies that
// schema_version is stamped, survives the round trip, and gates decoding.
func TestSchemaVersionRoundTrip(t *testing.T) {
	bench, err := pubtac.Benchmark("bs")
	if err != nil {
		t.Fatal(err)
	}
	s := pubtac.NewSession(pubtac.WithConfig(sessionTestConfig()))
	ctx := context.Background()

	t.Run("result", func(t *testing.T) {
		res, err := s.AnalyzePath(ctx, bench.Program, bench.Default())
		if err != nil {
			t.Fatal(err)
		}
		if res.SchemaVersion != pubtac.ResultSchemaVersion {
			t.Fatalf("fresh result version = %d", res.SchemaVersion)
		}
		buf, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Contains(buf, []byte(`"schema_version":`)) {
			t.Fatal("serialized result carries no schema_version")
		}
		var back pubtac.Result
		if err := json.Unmarshal(buf, &back); err != nil {
			t.Fatal(err)
		}
		if err := pubtac.CheckSchemaVersion(back.SchemaVersion); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("multiresult", func(t *testing.T) {
		m, err := s.AnalyzeMultiPath(ctx, bench.Program, bench.Inputs[:2])
		if err != nil {
			t.Fatal(err)
		}
		if m.SchemaVersion != pubtac.ResultSchemaVersion {
			t.Fatalf("fresh multiresult version = %d", m.SchemaVersion)
		}
		buf, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		var back pubtac.MultiResult
		if err := json.Unmarshal(buf, &back); err != nil {
			t.Fatal(err)
		}
		if err := pubtac.CheckSchemaVersion(back.SchemaVersion); err != nil {
			t.Fatal(err)
		}
		if len(back.Results) != 2 || back.Results[0].SchemaVersion != pubtac.ResultSchemaVersion {
			t.Fatalf("nested results lost their version: %+v", back.Results)
		}
	})

	t.Run("batchresult", func(t *testing.T) {
		jobs := []pubtac.Job{{Program: bench.Program, Inputs: bench.Inputs[:1]}}
		batch, err := s.AnalyzeBatch(ctx, jobs)
		if err != nil {
			t.Fatal(err)
		}
		buf, err := batch.JSON()
		if err != nil {
			t.Fatal(err)
		}
		back, err := pubtac.DecodeBatchResult(buf)
		if err != nil {
			t.Fatal(err)
		}
		if back.SchemaVersion != pubtac.ResultSchemaVersion ||
			back.Jobs[0].SchemaVersion != pubtac.ResultSchemaVersion ||
			back.Jobs[0].Results[0].SchemaVersion != pubtac.ResultSchemaVersion {
			t.Fatal("schema version missing at some nesting level")
		}
		// A decoded result still evaluates its curve.
		if back.All()[0].PWCET(1e-12) <= 0 {
			t.Fatal("decoded result lost its curve")
		}
	})
}

func TestDecodeBatchResultRejectsForeignSchema(t *testing.T) {
	doc := []byte(`{"schema_version": 99, "jobs": []}`)
	_, err := pubtac.DecodeBatchResult(doc)
	var se *pubtac.SchemaError
	if !errors.As(err, &se) || se.Got != 99 {
		t.Fatalf("err = %v, want *SchemaError{Got: 99}", err)
	}
	if _, err := pubtac.DecodeBatchResult([]byte(`{"jobs": []}`)); err == nil {
		t.Fatal("document without schema_version accepted")
	}
	if _, err := pubtac.DecodeBatchResult([]byte(`{"jobs"`)); err == nil {
		t.Fatal("truncated document accepted")
	}
}

// TestBatchJSONStampsHandAssembled: the CLI wraps session results in
// BatchResult literals; JSON() must stamp versions on every level.
func TestBatchJSONStampsHandAssembled(t *testing.T) {
	bench, err := pubtac.Benchmark("bs")
	if err != nil {
		t.Fatal(err)
	}
	s := pubtac.NewSession(pubtac.WithConfig(sessionTestConfig()))
	res, err := s.AnalyzePath(context.Background(), bench.Program, bench.Default())
	if err != nil {
		t.Fatal(err)
	}
	wrapped := &pubtac.BatchResult{Jobs: []*pubtac.MultiResult{{Results: []*pubtac.Result{res}}}}
	buf, err := wrapped.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pubtac.DecodeBatchResult(buf); err != nil {
		t.Fatalf("hand-assembled batch did not decode: %v", err)
	}
}
