package trace

import (
	"testing"
	"testing/quick"

	"pubtac/internal/rng"
)

func TestFromLetters(t *testing.T) {
	tr := FromLetters("ABCA", 32)
	if len(tr) != 4 {
		t.Fatalf("len = %d", len(tr))
	}
	want := []uint64{0, 32, 64, 0}
	for i, a := range tr {
		if a.Addr != want[i] || a.Kind != Data {
			t.Fatalf("access %d = %+v", i, a)
		}
	}
	if tr.String() != "{ABCA}" {
		t.Fatalf("String = %q", tr.String())
	}
}

func TestFromLettersIgnoresNoise(t *testing.T) {
	if got := FromLetters("a b-c", 32); len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
}

func TestRepeat(t *testing.T) {
	tr := Repeat(FromLetters("AB", 32), 3)
	if len(tr) != 6 {
		t.Fatalf("len = %d", len(tr))
	}
	if tr.String() != "{ABABAB}" {
		t.Fatalf("String = %q", tr.String())
	}
	if len(Repeat(tr, 0)) != 0 {
		t.Fatal("Repeat 0 should be empty")
	}
}

func TestConcat(t *testing.T) {
	got := Concat(D(1, 2), D(3), nil, D(4))
	if len(got) != 4 || got[3].Addr != 4 {
		t.Fatalf("Concat = %v", got)
	}
}

func TestIns(t *testing.T) {
	base := FromLetters("ABCA", 32)
	x := Access{Addr: 32, Kind: Data} // 'B'
	got := Ins(base, x, 2)
	if got.String() != "{ABBCA}" {
		t.Fatalf("Ins = %q", got.String())
	}
	// Original untouched.
	if base.String() != "{ABCA}" {
		t.Fatal("Ins modified its input")
	}
	if got := Ins(base, x, 0); got.String() != "{BABCA}" {
		t.Fatalf("Ins at 0 = %q", got.String())
	}
	if got := Ins(base, x, 4); got.String() != "{ABCAB}" {
		t.Fatalf("Ins at end = %q", got.String())
	}
}

func TestInsPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Ins(D(1), Access{}, 5)
}

func TestInsPreservesOrderProperty(t *testing.T) {
	// Property (Equation 2): the original trace is always a subsequence of
	// ins(M, x) for any position.
	gen := rng.New(17)
	f := func(lenRaw, posRaw uint8) bool {
		n := int(lenRaw % 20)
		tr := make(Trace, n)
		for i := range tr {
			tr[i] = Access{Addr: uint64(gen.Intn(8)) * 32, Kind: Data}
		}
		pos := 0
		if n > 0 {
			pos = int(posRaw) % (n + 1)
		}
		ins := Ins(tr, Access{Addr: 999, Kind: Data}, pos)
		return tr.IsSubsequenceOf(ins) && len(ins) == n+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsSubsequenceOf(t *testing.T) {
	cases := []struct {
		sub, sup string
		want     bool
	}{
		{"ABCA", "ABACA", true},
		{"BACA", "ABACA", true},
		{"ABCA", "ABCA", true},
		{"", "ABC", true},
		{"ABC", "", false},
		{"AAB", "ABA", false},
		{"CBA", "ABCA", false},
	}
	for _, c := range cases {
		sub := FromLetters(c.sub, 32)
		sup := FromLetters(c.sup, 32)
		if got := sub.IsSubsequenceOf(sup); got != c.want {
			t.Errorf("%q subseq of %q = %v, want %v", c.sub, c.sup, got, c.want)
		}
	}
}

func TestSubsequenceDistinguishesKind(t *testing.T) {
	instr := I(0)
	data := D(0)
	if instr.IsSubsequenceOf(data) {
		t.Fatal("instruction access should not match data access")
	}
}

func TestLines(t *testing.T) {
	tr := D(0, 31, 32, 95)
	lines := tr.Lines(32)
	want := []uint64{0, 0, 1, 2}
	for i, a := range lines {
		if a.Addr != want[i] {
			t.Fatalf("line %d = %d, want %d", i, a.Addr, want[i])
		}
	}
}

func TestFilter(t *testing.T) {
	tr := Concat(I(4), D(8), I(12))
	if d := tr.Filter(Data); len(d) != 1 || d[0].Addr != 8 {
		t.Fatalf("Filter(Data) = %v", d)
	}
	if in := tr.Filter(Instr); len(in) != 2 {
		t.Fatalf("Filter(Instr) = %v", in)
	}
}

func TestUniqueAddrsAndCounts(t *testing.T) {
	tr := FromLetters("ABCABA", 32)
	u := tr.UniqueAddrs()
	if len(u) != 3 || u[0] != 0 || u[1] != 32 || u[2] != 64 {
		t.Fatalf("UniqueAddrs = %v", u)
	}
	counts := tr.Counts()
	if counts[0] != 3 || counts[32] != 2 || counts[64] != 1 {
		t.Fatalf("Counts = %v", counts)
	}
}

func TestStringTruncatesAndHex(t *testing.T) {
	long := Repeat(D(0x1000), 100)
	s := long.String()
	if len(s) > 1200 {
		t.Fatalf("String too long: %d bytes", len(s))
	}
	if D(7).String() == "{H}" {
		t.Fatal("non-line-aligned address must not print as a letter")
	}
}

func TestPaperSection2Example(t *testing.T) {
	// M_if = {ABCA}, M_else = {BACA}, M_pub = {ABACA}: both branches are
	// subsequences of the pubbed sequence.
	mIf := FromLetters("ABCA", 32)
	mElse := FromLetters("BACA", 32)
	mPub := FromLetters("ABACA", 32)
	if !mIf.IsSubsequenceOf(mPub) || !mElse.IsSubsequenceOf(mPub) {
		t.Fatal("paper's Section 2 example violated")
	}
}
