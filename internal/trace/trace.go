// Package trace defines memory access sequences — the common currency
// between the program model, the cache simulator, PUB and TAC.
//
// A Trace is an ordered sequence of accesses, each tagged as an instruction
// fetch or a data access (the paper reasons about "the sequence of addresses
// of one path, regardless of whether they are instructions or data"; the tag
// only routes the access to the IL1 or DL1 cache). The package also provides
// the ins(M, x) insertion operator of Section 3.1 (Equation 2) and the
// subsequence relation that characterizes PUB's output.
package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Kind distinguishes instruction fetches from data accesses.
type Kind uint8

const (
	// Instr is an instruction fetch, served by the IL1 cache.
	Instr Kind = iota
	// Data is a data load/store, served by the DL1 cache.
	Data
)

// String returns "I" or "D".
func (k Kind) String() string {
	if k == Instr {
		return "I"
	}
	return "D"
}

// Access is one memory access: a byte address plus the cache it targets.
type Access struct {
	Addr uint64
	Kind Kind
}

// Trace is an ordered sequence of memory accesses.
type Trace []Access

// D builds a data-access trace from byte addresses, in order. It is the
// literal notation used by tests and the worked examples of Section 3.1.
func D(addrs ...uint64) Trace {
	t := make(Trace, len(addrs))
	for i, a := range addrs {
		t[i] = Access{Addr: a, Kind: Data}
	}
	return t
}

// I builds an instruction-fetch trace from byte addresses, in order.
func I(addrs ...uint64) Trace {
	t := make(Trace, len(addrs))
	for i, a := range addrs {
		t[i] = Access{Addr: a, Kind: Instr}
	}
	return t
}

// FromLetters builds a data trace from a string of letters, mapping 'A' to
// line 0, 'B' to line 1, ..., with each letter placed on its own cache line
// of the given size. It reproduces the paper's notation: FromLetters("ABCA",
// 32) is the sequence {A B C A} on 32-byte lines. Non-letter characters are
// ignored.
func FromLetters(s string, lineBytes int) Trace {
	var t Trace
	for _, r := range strings.ToUpper(s) {
		if r < 'A' || r > 'Z' {
			continue
		}
		t = append(t, Access{Addr: uint64(r-'A') * uint64(lineBytes), Kind: Data})
	}
	return t
}

// Repeat returns the trace concatenated n times, the {SEQ}^n notation of the
// paper. Repeat(t, 0) returns an empty trace.
func Repeat(t Trace, n int) Trace {
	out := make(Trace, 0, len(t)*n)
	for i := 0; i < n; i++ {
		out = append(out, t...)
	}
	return out
}

// Concat returns the concatenation of the given traces as a new trace.
func Concat(ts ...Trace) Trace {
	var n int
	for _, t := range ts {
		n += len(t)
	}
	out := make(Trace, 0, n)
	for _, t := range ts {
		out = append(out, t...)
	}
	return out
}

// Ins returns a copy of t with access x inserted at position pos, the
// ins(M, x) operator of Equation 2. Insertion preserves the relative order
// of all original accesses. It panics if pos is out of [0, len(t)].
func Ins(t Trace, x Access, pos int) Trace {
	if pos < 0 || pos > len(t) {
		panic(fmt.Sprintf("trace: Ins position %d out of range [0,%d]", pos, len(t)))
	}
	out := make(Trace, 0, len(t)+1)
	out = append(out, t[:pos]...)
	out = append(out, x)
	out = append(out, t[pos:]...)
	return out
}

// IsSubsequenceOf reports whether t is a (not necessarily contiguous)
// subsequence of u: all accesses of t appear in u in the same order. PUB
// guarantees that every original branch's sequence is a subsequence of the
// pubbed sequence.
func (t Trace) IsSubsequenceOf(u Trace) bool {
	i := 0
	for _, a := range u {
		if i == len(t) {
			return true
		}
		if t[i] == a {
			i++
		}
	}
	return i == len(t)
}

// Lines projects the trace to cache-line addresses (Addr / lineBytes),
// preserving order and kind.
func (t Trace) Lines(lineBytes int) Trace {
	out := make(Trace, len(t))
	for i, a := range t {
		out[i] = Access{Addr: a.Addr / uint64(lineBytes), Kind: a.Kind}
	}
	return out
}

// Filter returns the sub-trace with the given kind, preserving order.
func (t Trace) Filter(k Kind) Trace {
	var out Trace
	for _, a := range t {
		if a.Kind == k {
			out = append(out, a)
		}
	}
	return out
}

// UniqueAddrs returns the distinct addresses in t, ascending.
func (t Trace) UniqueAddrs() []uint64 {
	seen := make(map[uint64]bool, len(t))
	for _, a := range t {
		seen[a.Addr] = true
	}
	out := make([]uint64, 0, len(seen))
	//pubtac:nondeterministic addresses are sorted ascending immediately below
	for a := range seen {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Counts returns the number of occurrences of each address in t.
func (t Trace) Counts() map[uint64]int {
	m := make(map[uint64]int)
	for _, a := range t {
		m[a.Addr]++
	}
	return m
}

// String renders short traces using the paper's letter notation when all
// addresses are multiples of 32 below 26 lines, and hexadecimal otherwise.
// Long traces are truncated.
func (t Trace) String() string {
	const maxShown = 64
	var sb strings.Builder
	sb.WriteByte('{')
	letters := true
	for _, a := range t {
		if a.Addr%32 != 0 || a.Addr/32 >= 26 {
			letters = false
			break
		}
	}
	for i, a := range t {
		if i == maxShown {
			fmt.Fprintf(&sb, "... +%d more", len(t)-maxShown)
			break
		}
		if i > 0 && !letters {
			sb.WriteByte(' ')
		}
		if letters {
			sb.WriteByte(byte('A' + a.Addr/32))
		} else {
			fmt.Fprintf(&sb, "%s:%#x", a.Kind, a.Addr)
		}
	}
	sb.WriteByte('}')
	return sb.String()
}
