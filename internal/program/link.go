package program

import "fmt"

// instrBytes is the size of one instruction (a RISC-style fixed width).
const instrBytes = 4

// dataAlign is the alignment of data symbols: one cache line, so distinct
// symbols never share a line (conservative, and the common layout for
// line-aligned link maps).
const dataAlign = 32

// Link assigns code addresses to every block (depth-first, declaration
// order, consecutive) and base addresses to every data symbol. It must be
// called before Exec, and again after any structural transformation (PUB
// produces a new Program that is linked independently). Link is idempotent.
func (p *Program) Link() error {
	p.blocks = p.blocks[:0]
	p.collect(p.Root)
	addr := p.CodeBase
	for _, b := range p.blocks {
		if b.NInstr < 0 {
			return fmt.Errorf("program %s: block %q has negative NInstr", p.Name, b.Label)
		}
		b.Addr = addr
		addr += uint64(b.NInstr) * instrBytes
	}

	p.symIndex = make(map[string]*Symbol, len(p.Symbols))
	dataAddr := p.DataBase
	for _, s := range p.Symbols {
		if s.ElemBytes <= 0 || s.Len <= 0 {
			return fmt.Errorf("program %s: symbol %q has invalid geometry %d x %d",
				p.Name, s.Name, s.Len, s.ElemBytes)
		}
		if _, dup := p.symIndex[s.Name]; dup {
			return fmt.Errorf("program %s: duplicate symbol %q", p.Name, s.Name)
		}
		s.Base = dataAddr
		p.symIndex[s.Name] = s
		size := uint64(s.ElemBytes * s.Len)
		dataAddr += (size + dataAlign - 1) / dataAlign * dataAlign
	}

	// Resolve each block's access symbols once, so the executor's inner
	// loop does no map lookups. Unknown symbols stay nil and are reported
	// by Exec when (and if) the access is reached.
	for _, b := range p.blocks {
		if cap(b.syms) < len(b.Accs) {
			b.syms = make([]*Symbol, len(b.Accs))
		}
		b.syms = b.syms[:len(b.Accs)]
		for i, a := range b.Accs {
			b.syms[i] = p.symIndex[a.Sym]
		}
	}
	p.linked = true
	return nil
}

// MustLink calls Link and panics on error; for use in tests and benchmark
// constructors where the program is statically known to be valid.
func (p *Program) MustLink() *Program {
	if err := p.Link(); err != nil {
		panic(err)
	}
	return p
}

// collect gathers blocks in DFS order.
func (p *Program) collect(n Node) {
	switch t := n.(type) {
	case nil:
	case *Block:
		p.blocks = append(p.blocks, t)
	case *Seq:
		for _, c := range t.Nodes {
			p.collect(c)
		}
	case *If:
		if t.Head != nil {
			p.blocks = append(p.blocks, t.Head)
		}
		p.collect(t.Then)
		if t.Else != nil {
			p.collect(t.Else)
		}
	case *Switch:
		if t.Head != nil {
			p.blocks = append(p.blocks, t.Head)
		}
		for _, c := range t.Cases {
			p.collect(c)
		}
	case *Loop:
		if t.Head != nil {
			p.blocks = append(p.blocks, t.Head)
		}
		p.collect(t.Body)
	case *While:
		if t.Head != nil {
			p.blocks = append(p.blocks, t.Head)
		}
		p.collect(t.Body)
	case *Pad:
		p.collect(t.Inner)
	default:
		panic(fmt.Sprintf("program: unknown node type %T", n))
	}
}

// CodeBytes returns the total code size after linking.
func (p *Program) CodeBytes() int {
	var n int
	for _, b := range p.blocks {
		n += b.NInstr * instrBytes
	}
	return n
}

// DataBytes returns the total (aligned) data size after linking.
func (p *Program) DataBytes() int {
	var n uint64
	for _, s := range p.Symbols {
		size := uint64(s.ElemBytes * s.Len)
		n += (size + dataAlign - 1) / dataAlign * dataAlign
	}
	return int(n)
}

// AddrOf returns the byte address of sym[index], clamping index into the
// symbol's bounds (this is what makes PUB-inserted loads innocuous and
// total).
func (p *Program) AddrOf(sym *Symbol, index int64) uint64 {
	if index < 0 {
		index = 0
	}
	if index >= int64(sym.Len) {
		index = int64(sym.Len) - 1
	}
	return sym.Base + uint64(index)*uint64(sym.ElemBytes)
}
