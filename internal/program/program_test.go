package program

import (
	"strings"
	"testing"

	"pubtac/internal/trace"
)

// tinyIf builds: head; if (x > 0) { then-block } else { else-block }
func tinyIf() *Program {
	arr := &Symbol{Name: "a", ElemBytes: 4, Len: 8}
	root := &Seq{Nodes: []Node{
		&If{
			Label: "if1",
			Head:  &Block{Label: "head", NInstr: 2},
			Cond:  func(s *State) bool { return s.Int("x") > 0 },
			Then: &Block{Label: "then", NInstr: 3,
				Accs: []*Acc{At("a", 0)},
				Do:   func(s *State) { s.SetInt("r", 1) }},
			Else: &Block{Label: "else", NInstr: 1,
				Accs: []*Acc{At("a", 4)},
				Do:   func(s *State) { s.SetInt("r", 2) }},
		},
	}}
	return New("tiny-if", root, arr)
}

func TestLinkAssignsAddresses(t *testing.T) {
	p := tinyIf()
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	blocks := p.Blocks()
	if len(blocks) != 3 {
		t.Fatalf("collected %d blocks, want 3", len(blocks))
	}
	// head at CodeBase, then at +8, else at +8+12.
	if blocks[0].Addr != p.CodeBase {
		t.Fatalf("head addr = %#x", blocks[0].Addr)
	}
	if blocks[1].Addr != p.CodeBase+8 {
		t.Fatalf("then addr = %#x", blocks[1].Addr)
	}
	if blocks[2].Addr != p.CodeBase+8+12 {
		t.Fatalf("else addr = %#x", blocks[2].Addr)
	}
	if p.CodeBytes() != (2+3+1)*4 {
		t.Fatalf("CodeBytes = %d", p.CodeBytes())
	}
	sym := p.Symbol("a")
	if sym == nil || sym.Base != p.DataBase {
		t.Fatalf("symbol a = %+v", sym)
	}
	if p.DataBytes() != 32 { // 8*4 = 32, already aligned
		t.Fatalf("DataBytes = %d", p.DataBytes())
	}
}

func TestLinkErrors(t *testing.T) {
	badSym := New("bad", &Block{NInstr: 1}, &Symbol{Name: "z", ElemBytes: 0, Len: 1})
	if err := badSym.Link(); err == nil {
		t.Fatal("expected error for invalid symbol")
	}
	dup := New("dup", &Block{NInstr: 1},
		&Symbol{Name: "z", ElemBytes: 4, Len: 1},
		&Symbol{Name: "z", ElemBytes: 4, Len: 1})
	if err := dup.Link(); err == nil {
		t.Fatal("expected error for duplicate symbol")
	}
}

func TestExecBeforeLinkFails(t *testing.T) {
	p := tinyIf()
	if _, err := p.Exec(Input{}); err == nil {
		t.Fatal("expected error for Exec before Link")
	}
}

func TestExecTakesThenBranch(t *testing.T) {
	p := tinyIf().MustLink()
	r := p.MustExec(Input{Ints: map[string]int64{"x": 5}})
	// head(2 instr) + then(3 instr) + 1 data access.
	if got := len(r.Trace); got != 6 {
		t.Fatalf("trace len = %d, want 6: %v", got, r.Trace)
	}
	if !strings.Contains(r.Path, "if1=T") {
		t.Fatalf("path = %q", r.Path)
	}
	d := r.Trace.Filter(trace.Data)
	if len(d) != 1 || d[0].Addr != p.Symbol("a").Base {
		t.Fatalf("data access = %v", d)
	}
}

func TestExecTakesElseBranch(t *testing.T) {
	p := tinyIf().MustLink()
	r := p.MustExec(Input{Ints: map[string]int64{"x": -1}})
	if got := len(r.Trace); got != 4 { // 2 + 1 instr + 1 data
		t.Fatalf("trace len = %d, want 4", got)
	}
	if !strings.Contains(r.Path, "if1=F") {
		t.Fatalf("path = %q", r.Path)
	}
	d := r.Trace.Filter(trace.Data)
	want := p.Symbol("a").Base + 16
	if len(d) != 1 || d[0].Addr != want {
		t.Fatalf("data access = %v, want addr %#x", d, want)
	}
}

func TestSemanticActionRuns(t *testing.T) {
	p := tinyIf().MustLink()
	// The Do action sets r; verify via a follow-up conditional... simpler:
	// actions mutate shared state observed through a second program run in
	// the same test via closure capture.
	var captured int64
	p2 := New("cap", &Seq{Nodes: []Node{
		&Block{NInstr: 1, Do: func(s *State) { s.SetInt("y", 7) }},
		&Block{NInstr: 1, Do: func(s *State) { captured = s.Int("y") }},
	}}).MustLink()
	p2.MustExec(Input{})
	if captured != 7 {
		t.Fatalf("state not threaded: y = %d", captured)
	}
	_ = p
}

func TestLoopBoundsAndClamping(t *testing.T) {
	body := &Block{Label: "b", NInstr: 2}
	loop := &Loop{
		Label:    "l",
		Head:     &Block{Label: "h", NInstr: 1},
		Bound:    func(s *State) int { return int(s.Int("n")) },
		MaxBound: 5,
		Body:     body,
	}
	p := New("loop", loop).MustLink()

	cases := []struct {
		n          int64
		iterations int
	}{
		{0, 0}, {3, 3}, {5, 5}, {99, 5}, {-2, 0},
	}
	for _, c := range cases {
		r := p.MustExec(Input{Ints: map[string]int64{"n": c.n}})
		// trace = iterations*(1 head + 2 body) + 1 final head
		want := c.iterations*3 + 1
		if len(r.Trace) != want {
			t.Errorf("n=%d: trace len = %d, want %d", c.n, len(r.Trace), want)
		}
	}
}

func TestWhileLoop(t *testing.T) {
	w := &While{
		Label:    "w",
		Head:     &Block{Label: "cond", NInstr: 1},
		Cond:     func(s *State) bool { return s.Int("i") < 3 },
		MaxBound: 10,
		Body: &Block{Label: "body", NInstr: 1,
			Do: func(s *State) { s.SetInt("i", s.Int("i")+1) }},
	}
	p := New("while", w).MustLink()
	r := p.MustExec(Input{})
	// 3 iterations: 4 head executions (3 true + 1 false) + 3 bodies.
	if len(r.Trace) != 7 {
		t.Fatalf("trace len = %d, want 7", len(r.Trace))
	}
	if !strings.Contains(r.Path, "w=w3") {
		t.Fatalf("path = %q", r.Path)
	}
}

func TestWhileMaxBoundStops(t *testing.T) {
	w := &While{
		Label:    "w",
		Cond:     func(s *State) bool { return true }, // would never stop
		MaxBound: 4,
		Body:     &Block{NInstr: 1},
	}
	p := New("runaway", w).MustLink()
	r := p.MustExec(Input{})
	if len(r.Trace) != 4 {
		t.Fatalf("trace len = %d, want 4 (MaxBound)", len(r.Trace))
	}
}

func TestSwitchSelectsAndClamps(t *testing.T) {
	sw := &Switch{
		Label:    "sw",
		Selector: func(s *State) int { return int(s.Int("k")) },
		Cases: []Node{
			&Block{NInstr: 1},
			&Block{NInstr: 2},
			&Block{NInstr: 3},
		},
	}
	p := New("switch", sw).MustLink()
	for _, c := range []struct {
		k    int64
		len  int
		path string
	}{{0, 1, "c0"}, {1, 2, "c1"}, {2, 3, "c2"}, {9, 3, "c2"}, {-1, 1, "c0"}} {
		r := p.MustExec(Input{Ints: map[string]int64{"k": c.k}})
		if len(r.Trace) != c.len || !strings.Contains(r.Path, c.path) {
			t.Errorf("k=%d: len=%d path=%q", c.k, len(r.Trace), r.Path)
		}
	}
}

func TestIndexClamping(t *testing.T) {
	arr := &Symbol{Name: "a", ElemBytes: 4, Len: 4}
	p := New("clamp", &Block{NInstr: 0, Accs: []*Acc{
		Elem("oob", "a", func(s *State) int64 { return 100 }),
		Elem("neg", "a", func(s *State) int64 { return -5 }),
	}}, arr).MustLink()
	r := p.MustExec(Input{})
	base := p.Symbol("a").Base
	if r.Trace[0].Addr != base+12 {
		t.Fatalf("over-bound index: addr %#x, want %#x", r.Trace[0].Addr, base+12)
	}
	if r.Trace[1].Addr != base {
		t.Fatalf("negative index: addr %#x, want %#x", r.Trace[1].Addr, base)
	}
}

func TestUnknownSymbolFails(t *testing.T) {
	p := New("bad", &Block{NInstr: 0, Accs: []*Acc{Scalar("nope")}}).MustLink()
	if _, err := p.Exec(Input{}); err == nil {
		t.Fatal("expected error for unknown symbol")
	}
}

func TestPadSkipsSemanticsAndDecisions(t *testing.T) {
	ran := false
	inner := &If{
		Label: "inner",
		Cond:  func(s *State) bool { return false }, // would pick else
		Then:  &Block{Label: "t", NInstr: 2, Do: func(s *State) { ran = true }},
		Else:  &Block{Label: "e", NInstr: 5},
	}
	p := New("pad", &Pad{Inner: inner}).MustLink()
	r := p.MustExec(Input{})
	if ran {
		t.Fatal("pad must not run semantic actions")
	}
	// Pad takes the then branch (fixed), emitting 2 instructions.
	if len(r.Trace) != 2 {
		t.Fatalf("trace len = %d, want 2", len(r.Trace))
	}
	if r.Path != "" {
		t.Fatalf("pad decisions must not be recorded, got %q", r.Path)
	}
}

func TestPadLoopRunsMaxBound(t *testing.T) {
	l := &Loop{
		Label:    "l",
		Bound:    func(s *State) int { return 1 }, // dynamic bound would be 1
		MaxBound: 6,
		Body:     &Block{NInstr: 1},
	}
	p := New("padloop", &Pad{Inner: l}).MustLink()
	r := p.MustExec(Input{})
	if len(r.Trace) != 6 {
		t.Fatalf("trace len = %d, want 6 (MaxBound)", len(r.Trace))
	}
}

func TestCloneIsDeepForBlocks(t *testing.T) {
	orig := tinyIf()
	cl := Clone(orig.Root)
	p1 := New("orig", orig.Root, orig.Symbols...).MustLink()
	// Fresh symbols for the clone (Link mutates symbol bases).
	p2 := New("clone", cl, &Symbol{Name: "a", ElemBytes: 4, Len: 8}).MustLink()
	p2.CodeBase = 0x9000
	p2.MustLink()
	// The original's blocks must keep their own addresses.
	if p1.Blocks()[0].Addr == p2.Blocks()[0].Addr {
		t.Fatal("clone shares block objects with original")
	}
	// Behaviour identical.
	r1 := p1.MustExec(Input{Ints: map[string]int64{"x": 1}})
	r2 := p2.MustExec(Input{Ints: map[string]int64{"x": 1}})
	if r1.Path != r2.Path || len(r1.Trace) != len(r2.Trace) {
		t.Fatal("clone behaves differently")
	}
}

func TestStateClone(t *testing.T) {
	s := NewState()
	s.SetInt("x", 1)
	s.SetArr("a", []int64{1, 2})
	c := s.Clone()
	c.SetInt("x", 9)
	c.Arr("a")[0] = 99
	if s.Int("x") != 1 || s.Arr("a")[0] != 1 {
		t.Fatal("Clone is shallow")
	}
}

func TestPathSignatureDistinguishesPaths(t *testing.T) {
	p := tinyIf().MustLink()
	a := p.MustExec(Input{Ints: map[string]int64{"x": 1}})
	b := p.MustExec(Input{Ints: map[string]int64{"x": -1}})
	if a.Path == b.Path {
		t.Fatal("different branches produced identical path signatures")
	}
}

func TestNestedStructureTrace(t *testing.T) {
	// loop(2) { if (i odd) {A} else {B} } — checks interleaving of head,
	// branch code and data accesses across iterations.
	arr := &Symbol{Name: "v", ElemBytes: 4, Len: 2}
	root := &Loop{
		Label:    "l",
		Bound:    func(s *State) int { return 2 },
		MaxBound: 2,
		Body: &Seq{Nodes: []Node{
			&If{
				Label: "par",
				Cond:  func(s *State) bool { return s.Int("i")%2 == 1 },
				Then:  &Block{Label: "odd", NInstr: 1, Accs: []*Acc{At("v", 1)}},
				Else:  &Block{Label: "even", NInstr: 1, Accs: []*Acc{At("v", 0)}},
			},
			&Block{Label: "inc", NInstr: 1, Do: func(s *State) { s.SetInt("i", s.Int("i")+1) }},
		}},
	}
	p := New("nested", root, arr).MustLink()
	r := p.MustExec(Input{})
	if !strings.Contains(r.Path, "par=F") || !strings.Contains(r.Path, "par=T") {
		t.Fatalf("path = %q, want both branch outcomes", r.Path)
	}
	d := r.Trace.Filter(trace.Data)
	if len(d) != 2 || d[0].Addr == d[1].Addr {
		t.Fatalf("data accesses = %v", d)
	}
}
