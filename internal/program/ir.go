// Package program defines a small structured intermediate representation
// for multipath programs, rich enough to express the Mälardalen benchmarks
// and to be transformed by PUB.
//
// A program is a tree of nodes: straight-line Blocks (a number of
// instructions plus an ordered list of data-access templates and an optional
// semantic action), If/Switch conditionals, counted Loops and
// condition-controlled While loops. A linker assigns concrete code addresses
// to blocks and base addresses to data symbols; an executor walks the tree
// with a concrete input, producing the memory access trace (instruction
// fetches + data accesses) that drives the cache simulator, together with a
// path signature recording every control decision taken.
//
// Data accesses are templates: a symbol plus an index expression evaluated
// against the program state. Templates carry a stable identity (ID) used by
// PUB to recognize "the same access" across branches when merging access
// patterns. Index expressions must be total: the executor clamps indices to
// the symbol's bounds, so evaluating a template from a branch that the
// original program would not have executed (a PUB-inserted innocuous load)
// is always well defined.
package program

import (
	"fmt"
	"sync/atomic"
)

// State is the mutable program state threaded through execution: integer
// scalars and integer arrays, keyed by name. Benchmarks read and write it
// from Block actions and condition expressions.
//
// Programs use a handful of variables but read them millions of times
// across a measurement campaign (every index expression and condition goes
// through here), so bindings are stored as small linear-scan tables: for
// the short names benchmarks use, a scan beats hashing the key on every
// lookup.
type State struct {
	ints   []intBinding
	arrays []arrBinding
}

type intBinding struct {
	name string
	val  int64
}

type arrBinding struct {
	name string
	val  []int64
}

// NewState builds an empty state.
func NewState() *State { return &State{} }

// Clone returns a deep copy of the state.
func (s *State) Clone() *State {
	c := &State{
		ints:   append([]intBinding(nil), s.ints...),
		arrays: make([]arrBinding, len(s.arrays)),
	}
	for i, b := range s.arrays {
		c.arrays[i] = arrBinding{name: b.name, val: append([]int64(nil), b.val...)}
	}
	return c
}

// nameEq compares binding names with a length + first-byte guard before
// the full string compare: benchmark variable names are one or two
// characters, so nearly every mismatch is decided without a memory-compare
// call.
func nameEq(a, b string) bool {
	return len(a) == len(b) && (len(a) == 0 || a[0] == b[0]) && a == b
}

// Int returns the scalar named n (0 when unset).
func (s *State) Int(n string) int64 {
	for i := range s.ints {
		if nameEq(s.ints[i].name, n) {
			return s.ints[i].val
		}
	}
	return 0
}

// SetInt sets the scalar named n.
func (s *State) SetInt(n string, v int64) {
	for i := range s.ints {
		if nameEq(s.ints[i].name, n) {
			s.ints[i].val = v
			return
		}
	}
	s.ints = append(s.ints, intBinding{name: n, val: v})
}

// Arr returns the array named n (nil when unset).
func (s *State) Arr(n string) []int64 {
	for i := range s.arrays {
		if nameEq(s.arrays[i].name, n) {
			return s.arrays[i].val
		}
	}
	return nil
}

// SetArr binds the array named n (the slice is not copied).
func (s *State) SetArr(n string, v []int64) {
	for i := range s.arrays {
		if nameEq(s.arrays[i].name, n) {
			s.arrays[i].val = v
			return
		}
	}
	s.arrays = append(s.arrays, arrBinding{name: n, val: v})
}

// Input is the initial state of one program run: the paper's "input vector".
type Input struct {
	Name   string
	Ints   map[string]int64
	Arrays map[string][]int64
}

// state materializes the input as a fresh State.
func (in Input) state() *State {
	s := NewState()
	//pubtac:nondeterministic map-to-map transfer; State lookup is by key, order never observed
	for k, v := range in.Ints {
		s.SetInt(k, v)
	}
	//pubtac:nondeterministic map-to-map transfer; State lookup is by key, order never observed
	for k, v := range in.Arrays {
		s.SetArr(k, append([]int64(nil), v...))
	}
	return s
}

// Acc is a data-access template: an access to Sym[Index(state)]. ID is the
// template's stable identity for PUB pattern merging; two templates with the
// same ID are considered the same access (e.g. `a[mid]` referenced from both
// branches of a conditional).
type Acc struct {
	ID    string
	Sym   string
	Index func(s *State) int64
}

// Scalar returns an access template for the scalar symbol sym (index 0).
// The template ID is the symbol name itself.
func Scalar(sym string) *Acc {
	return &Acc{ID: sym, Sym: sym, Index: nil}
}

// Elem returns an access template for sym[index(state)] with identity id.
func Elem(id, sym string, index func(s *State) int64) *Acc {
	return &Acc{ID: id, Sym: sym, Index: index}
}

// At returns an access template for the fixed element sym[i].
func At(sym string, i int64) *Acc {
	return &Acc{
		ID:    fmt.Sprintf("%s[%d]", sym, i),
		Sym:   sym,
		Index: func(*State) int64 { return i },
	}
}

// Node is a program tree node.
type Node interface{ isNode() }

// Block is a straight-line region: NInstr instructions followed by the data
// accesses of Accs (in order), then the semantic action Do. After linking,
// the block's instructions occupy NInstr consecutive 4-byte slots starting
// at Addr.
type Block struct {
	Label  string
	NInstr int
	Accs   []*Acc
	Do     func(s *State)

	// Addr is the code start address, assigned by Program.Link.
	Addr uint64

	// syms holds the symbol of each access template, resolved by Link so
	// the executor skips the per-access map lookup. nil entries (unknown
	// symbols) are reported at execution time.
	syms []*Symbol
}

// Seq is sequential composition.
type Seq struct {
	Nodes []Node
}

// If is a two-way conditional. Else may be nil. Cond is evaluated after the
// (optional) Head block executes. Label identifies the construct in path
// signatures and PUB diagnostics.
type If struct {
	Label string
	Head  *Block // condition-evaluation code (optional)
	Cond  func(s *State) bool
	Then  Node
	Else  Node // may be nil

	// Balanced marks PUB output: both branches carry equivalent access
	// patterns, so path signatures need not distinguish them.
	Balanced bool
}

// Switch is an n-way conditional. Selector must return a value in
// [0, len(Cases)); out-of-range values are clamped.
type Switch struct {
	Label    string
	Head     *Block
	Selector func(s *State) int
	Cases    []Node
	Balanced bool
}

// Loop is a counted loop: Body executes Bound(state) times, clamped to
// [0, MaxBound]. Head, when set, executes before each iteration's body and
// once more on exit (the loop test). MaxBound is the static worst-case
// iteration count the analysis relies on ("input vectors triggering the
// highest loop bounds").
type Loop struct {
	Label    string
	Head     *Block
	Bound    func(s *State) int
	MaxBound int
	Body     Node
}

// While is a condition-controlled loop: Body repeats while Cond holds, at
// most MaxBound times. Head, when set, executes before each condition
// evaluation.
type While struct {
	Label    string
	Head     *Block
	Cond     func(s *State) bool
	MaxBound int
	Body     Node
}

func (*Block) isNode()  {}
func (*Seq) isNode()    {}
func (*If) isNode()     {}
func (*Switch) isNode() {}
func (*Loop) isNode()   {}
func (*While) isNode()  {}

// Symbol is a data object: Len elements of ElemBytes each. Base is assigned
// by Program.Link.
type Symbol struct {
	Name      string
	ElemBytes int
	Len       int
	Base      uint64
}

// Program couples a tree with its data symbols and address-space layout.
type Program struct {
	Name     string
	Root     Node
	Symbols  []*Symbol
	CodeBase uint64
	DataBase uint64

	symIndex map[string]*Symbol
	blocks   []*Block
	linked   bool

	// traceHint remembers the longest trace a previous Exec produced, so
	// later executions allocate the trace in one shot. Atomic because the
	// batch engine executes paths of one program concurrently; the value is
	// only a capacity hint, so races are harmless.
	traceHint atomic.Int64
}

// New creates an unlinked program with the default address space layout
// (code at 0x1000, data at 0x100000).
func New(name string, root Node, symbols ...*Symbol) *Program {
	return &Program{
		Name:     name,
		Root:     root,
		Symbols:  symbols,
		CodeBase: 0x1000,
		DataBase: 0x100000,
	}
}

// Symbol returns the symbol named n, or nil.
func (p *Program) Symbol(n string) *Symbol {
	if p.symIndex == nil {
		return nil
	}
	return p.symIndex[n]
}

// Blocks returns the blocks collected by Link, in layout order.
func (p *Program) Blocks() []*Block { return p.blocks }

// Linked reports whether Link has been called.
func (p *Program) Linked() bool { return p.linked }
