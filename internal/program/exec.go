package program

import (
	"fmt"
	"slices"
	"strings"

	"pubtac/internal/trace"
)

// Pad wraps a node that PUB inserted purely for its cache access pattern.
// A padded subtree executes "innocuously": its accesses are emitted (that is
// the whole point — equivalent cache patterns in every branch), but semantic
// actions are skipped, conditionals take a fixed branch, and loops run their
// worst-case bound. Deploying the original program never executes Pad nodes;
// they exist only in the analysis-time pubbed program.
type Pad struct {
	Inner Node
}

func (*Pad) isNode() {}

// Result is the outcome of executing a program on one input.
type Result struct {
	Trace trace.Trace // the full memory access sequence, in order
	Path  string      // path signature: one token per control decision
	State *State      // final program state (for functional checks)
}

// execContext carries execution state.
type execContext struct {
	p     *Program
	st    *State
	tr    trace.Trace
	path  []string
	inPad int // >0 while inside a Pad subtree
}

// Exec runs the program on the given input and returns its access trace and
// path signature. The program must be linked.
func (p *Program) Exec(in Input) (Result, error) {
	if !p.linked {
		return Result{}, fmt.Errorf("program %s: Exec before Link", p.Name)
	}
	ctx := &execContext{p: p, st: in.state()}
	if hint := p.traceHint.Load(); hint > 0 {
		ctx.tr = make(trace.Trace, 0, hint)
	}
	if err := ctx.exec(p.Root); err != nil {
		return Result{}, err
	}
	if n := int64(len(ctx.tr)); n > p.traceHint.Load() {
		p.traceHint.Store(n)
	}
	return Result{Trace: ctx.tr, Path: strings.Join(ctx.path, "."), State: ctx.st}, nil
}

// MustExec is Exec but panics on error; for benchmarks known to be valid.
func (p *Program) MustExec(in Input) Result {
	r, err := p.Exec(in)
	if err != nil {
		panic(err)
	}
	return r
}

func (c *execContext) exec(n Node) error {
	switch t := n.(type) {
	case nil:
		return nil
	case *Block:
		return c.execBlock(t)
	case *Seq:
		for _, child := range t.Nodes {
			if err := c.exec(child); err != nil {
				return err
			}
		}
		return nil
	case *If:
		return c.execIf(t)
	case *Switch:
		return c.execSwitch(t)
	case *Loop:
		return c.execLoop(t)
	case *While:
		return c.execWhile(t)
	case *Pad:
		c.inPad++
		err := c.exec(t.Inner)
		c.inPad--
		return err
	default:
		return fmt.Errorf("program: unknown node type %T", n)
	}
}

func (c *execContext) execBlock(b *Block) error {
	c.tr = slices.Grow(c.tr, b.NInstr+len(b.Accs))
	addr := b.Addr
	for i := 0; i < b.NInstr; i++ {
		c.tr = append(c.tr, trace.Access{Addr: addr, Kind: trace.Instr})
		addr += instrBytes
	}
	for i, a := range b.Accs {
		sym := b.syms[i] // resolved by Link
		if sym == nil {
			return fmt.Errorf("program %s: block %q references unknown symbol %q",
				c.p.Name, b.Label, a.Sym)
		}
		var idx int64
		if a.Index != nil {
			idx = a.Index(c.st)
		}
		c.tr = append(c.tr, trace.Access{Addr: c.p.AddrOf(sym, idx), Kind: trace.Data})
	}
	if b.Do != nil && c.inPad == 0 {
		b.Do(c.st)
	}
	return nil
}

func (c *execContext) execIf(t *If) error {
	if t.Head != nil {
		if err := c.execBlock(t.Head); err != nil {
			return err
		}
	}
	taken := true
	if c.inPad == 0 {
		taken = t.Cond(c.st)
		c.record(t.Label, boolToken(taken))
	}
	if taken {
		return c.exec(t.Then)
	}
	return c.exec(t.Else)
}

func (c *execContext) execSwitch(t *Switch) error {
	if t.Head != nil {
		if err := c.execBlock(t.Head); err != nil {
			return err
		}
	}
	k := 0
	if c.inPad == 0 {
		k = t.Selector(c.st)
		if k < 0 {
			k = 0
		}
		if k >= len(t.Cases) {
			k = len(t.Cases) - 1
		}
		c.record(t.Label, fmt.Sprintf("c%d", k))
	}
	if len(t.Cases) == 0 {
		return nil
	}
	return c.exec(t.Cases[k])
}

func (c *execContext) execLoop(t *Loop) error {
	bound := t.MaxBound
	if c.inPad == 0 {
		bound = t.Bound(c.st)
		if bound < 0 {
			bound = 0
		}
		if bound > t.MaxBound {
			bound = t.MaxBound
		}
		c.record(t.Label, fmt.Sprintf("x%d", bound))
	}
	for i := 0; i < bound; i++ {
		if t.Head != nil {
			if err := c.execBlock(t.Head); err != nil {
				return err
			}
		}
		if err := c.exec(t.Body); err != nil {
			return err
		}
	}
	// The failing loop test executes the header code once more.
	if t.Head != nil {
		return c.execBlock(t.Head)
	}
	return nil
}

func (c *execContext) execWhile(t *While) error {
	iters := 0
	for ; iters < t.MaxBound; iters++ {
		if t.Head != nil {
			if err := c.execBlock(t.Head); err != nil {
				return err
			}
		}
		if c.inPad == 0 && !t.Cond(c.st) {
			break
		}
		if err := c.exec(t.Body); err != nil {
			return err
		}
	}
	if c.inPad == 0 {
		c.record(t.Label, fmt.Sprintf("w%d", iters))
	}
	return nil
}

func (c *execContext) record(label, tok string) {
	c.path = append(c.path, label+"="+tok)
}

func boolToken(b bool) string {
	if b {
		return "T"
	}
	return "F"
}

// Clone returns a deep copy of a node tree. Blocks are fresh objects (so a
// clone re-linked into another program gets its own code addresses — PUB
// padding is genuinely new code); access templates are shared (they are
// immutable descriptors).
func Clone(n Node) Node {
	switch t := n.(type) {
	case nil:
		return nil
	case *Block:
		b := *t
		b.Accs = append([]*Acc(nil), t.Accs...)
		b.Addr = 0
		b.syms = nil // re-resolved when the clone's program links
		return &b
	case *Seq:
		s := &Seq{Nodes: make([]Node, len(t.Nodes))}
		for i, child := range t.Nodes {
			s.Nodes[i] = Clone(child)
		}
		return s
	case *If:
		c := *t
		c.Head = cloneBlock(t.Head)
		c.Then = Clone(t.Then)
		c.Else = Clone(t.Else)
		return &c
	case *Switch:
		c := *t
		c.Head = cloneBlock(t.Head)
		c.Cases = make([]Node, len(t.Cases))
		for i, cs := range t.Cases {
			c.Cases[i] = Clone(cs)
		}
		return &c
	case *Loop:
		c := *t
		c.Head = cloneBlock(t.Head)
		c.Body = Clone(t.Body)
		return &c
	case *While:
		c := *t
		c.Head = cloneBlock(t.Head)
		c.Body = Clone(t.Body)
		return &c
	case *Pad:
		return &Pad{Inner: Clone(t.Inner)}
	default:
		panic(fmt.Sprintf("program: unknown node type %T", n))
	}
}

func cloneBlock(b *Block) *Block {
	if b == nil {
		return nil
	}
	n := Clone(b).(*Block)
	return n
}
