// Package pub implements Path Upper-Bounding (Kosmidis et al., ECRTS 2014)
// on the program IR: a source-level transformation that inflates every
// branch of every conditional construct with functionally-innocuous
// instructions and memory accesses, so that each branch of the transformed
// ("pubbed") program exhibits an access pattern that upper-bounds the
// patterns of all branches of the original construct.
//
// On a time-randomized cache, inserting an access anywhere in a sequence can
// only worsen the probabilistic execution time distribution (the key PUB
// property, see Section 2 of the DAC'18 paper), so every path of the pubbed
// program probabilistically upper-bounds every path of the original program
// (Equation 1). The transformation minimizes insertions by merging branch
// access signatures with a shortest-common-supersequence construction:
// merging {ABCA} and {BACA} yields a 5-access supersequence such as {ABACA},
// reproducing the paper's worked example.
package pub

import (
	"fmt"

	"pubtac/internal/program"
)

// itemKind classifies signature items.
type itemKind uint8

const (
	instrItem itemKind = iota // one instruction slot of a block
	dataItem                  // one data-access template occurrence
	macroItem                 // an opaque subtree (loop, pubbed conditional)
)

// item is one element of a branch access signature. Items are compared by
// (kind, id): data items from different branches that reference the same
// access template (same ID) are "the same address" and get merged;
// instruction and macro items carry object-unique IDs, so padding for them
// is always inserted (a branch cannot reuse another branch's code lines —
// it gets equivalent, freshly-addressed ones).
//
// Own items additionally carry provenance: the source block they came from
// and whether they are that block's last item, so the reconstruction knows
// where to run the block's semantic action.
type item struct {
	kind itemKind
	id   string
	acc  *program.Acc // dataItem only
	node program.Node // macroItem only

	src  *program.Block // source block (instr/data items)
	last bool           // true for the final item of src
}

func (a item) equal(b item) bool { return a.kind == b.kind && a.id == b.id }

// flatten decomposes a branch into its item signature. Blocks decompose
// into one item per instruction slot and per data access; nested
// conditionals, loops and semantic-only blocks are opaque macro items (the
// innermost-first recursion of Transform guarantees nested conditionals are
// already balanced when their parent is processed).
func flatten(n program.Node) []item {
	switch t := n.(type) {
	case nil:
		return nil
	case *program.Block:
		if t.NInstr == 0 && len(t.Accs) == 0 {
			// Nothing observable in the cache: keep as an opaque unit so
			// its semantic action survives reconstruction.
			return []item{{kind: macroItem, id: fmt.Sprintf("%p", t), node: t}}
		}
		its := make([]item, 0, t.NInstr+len(t.Accs))
		for i := 0; i < t.NInstr; i++ {
			its = append(its, item{kind: instrItem, id: fmt.Sprintf("%p#%d", t, i), src: t})
		}
		for _, a := range t.Accs {
			its = append(its, item{kind: dataItem, id: a.ID, acc: a, src: t})
		}
		its[len(its)-1].last = true
		return its
	case *program.Seq:
		var out []item
		for _, c := range t.Nodes {
			out = append(out, flatten(c)...)
		}
		return out
	default:
		// If, Switch, Loop, While, Pad: opaque units.
		return []item{{kind: macroItem, id: fmt.Sprintf("%p", n), node: n}}
	}
}

// maxSCSCells bounds the DP table size; beyond it scs falls back to plain
// concatenation, which is still a valid (if non-minimal) supersequence.
const maxSCSCells = 16 << 20

// scs returns a shortest common supersequence of a and b: a minimal-length
// sequence containing both a and b as subsequences. Built from the classic
// LCS dynamic program. For pathologically long signatures it falls back to
// concatenation (correct, not minimal).
func scs(a, b []item) []item {
	n, m := len(a), len(b)
	if n == 0 {
		return append([]item(nil), b...)
	}
	if m == 0 {
		return append([]item(nil), a...)
	}
	if (n+1)*(m+1) > maxSCSCells {
		out := make([]item, 0, n+m)
		out = append(out, a...)
		return append(out, b...)
	}
	// lcs[i][j] = LCS length of a[i:], b[j:].
	lcs := make([][]int32, n+1)
	for i := range lcs {
		lcs[i] = make([]int32, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if a[i].equal(b[j]) {
				lcs[i][j] = lcs[i+1][j+1] + 1
			} else if lcs[i+1][j] >= lcs[i][j+1] {
				lcs[i][j] = lcs[i+1][j]
			} else {
				lcs[i][j] = lcs[i][j+1]
			}
		}
	}
	out := make([]item, 0, n+m-int(lcs[0][0]))
	i, j := 0, 0
	for i < n && j < m {
		switch {
		case a[i].equal(b[j]):
			out = append(out, a[i])
			i++
			j++
		case lcs[i+1][j] >= lcs[i][j+1]:
			out = append(out, a[i])
			i++
		default:
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// mergeAll folds scs over all branch signatures.
func mergeAll(branches [][]item) []item {
	if len(branches) == 0 {
		return nil
	}
	merged := append([]item(nil), branches[0]...)
	for _, b := range branches[1:] {
		merged = scs(merged, b)
	}
	return merged
}

// isSubsequence reports whether sub is a subsequence of sup under item
// equality.
func isSubsequence(sub, sup []item) bool {
	i := 0
	for _, it := range sup {
		if i == len(sub) {
			return true
		}
		if sub[i].equal(it) {
			i++
		}
	}
	return i == len(sub)
}
