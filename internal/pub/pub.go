package pub

import (
	"fmt"

	"pubtac/internal/program"
)

// Report summarizes a PUB transformation.
type Report struct {
	Constructs       int // conditionals balanced
	InsertedAccesses int // innocuous data accesses inserted (across branches)
	InsertedInstrs   int // padding instructions inserted (across branches)
	InsertedSubtrees int // opaque subtrees (loops/conditionals) cloned as padding
	OrigCodeBytes    int
	PubbedCodeBytes  int
}

// CodeGrowth returns the code size ratio pubbed/original.
func (r Report) CodeGrowth() float64 {
	if r.OrigCodeBytes == 0 {
		return 1
	}
	return float64(r.PubbedCodeBytes) / float64(r.OrigCodeBytes)
}

// Transform applies PUB to p and returns the linked pubbed program together
// with a transformation report. The original program is not modified; the
// pubbed program shares no mutable structure with it. Data symbols keep
// their layout (PUB only inflates code), while pubbed code is re-linked at
// fresh addresses — inserted instructions are genuinely new code lines.
func Transform(p *program.Program) (*program.Program, Report, error) {
	if !p.Linked() {
		if err := p.Link(); err != nil {
			return nil, Report{}, err
		}
	}
	rep := Report{OrigCodeBytes: p.CodeBytes()}

	t := &transformer{rep: &rep}
	root := t.node(program.Clone(p.Root))

	syms := make([]*program.Symbol, len(p.Symbols))
	for i, s := range p.Symbols {
		c := *s
		syms[i] = &c
	}
	q := program.New(p.Name+".pub", root, syms...)
	q.CodeBase = p.CodeBase
	q.DataBase = p.DataBase
	if err := q.Link(); err != nil {
		return nil, Report{}, fmt.Errorf("pub: linking pubbed program: %w", err)
	}
	rep.PubbedCodeBytes = q.CodeBytes()
	return q, rep, nil
}

// MustTransform is Transform panicking on error, for statically-valid
// programs in tests and benchmark constructors.
func MustTransform(p *program.Program) (*program.Program, Report) {
	q, rep, err := Transform(p)
	if err != nil {
		panic(err)
	}
	return q, rep
}

type transformer struct {
	rep *Report
	seq int // counter for padding block labels
}

// node rewrites a (cloned) subtree bottom-up, balancing every conditional.
func (t *transformer) node(n program.Node) program.Node {
	switch v := n.(type) {
	case nil:
		return nil
	case *program.Block:
		return v
	case *program.Seq:
		for i, c := range v.Nodes {
			v.Nodes[i] = t.node(c)
		}
		return v
	case *program.Loop:
		v.Body = t.node(v.Body)
		return v
	case *program.While:
		v.Body = t.node(v.Body)
		return v
	case *program.Pad:
		return v
	case *program.If:
		v.Then = t.node(v.Then)
		v.Else = t.node(v.Else)
		branches := []program.Node{v.Then, v.Else}
		balanced := t.balance(v.Label, branches)
		v.Then, v.Else = balanced[0], balanced[1]
		v.Balanced = true
		t.rep.Constructs++
		return v
	case *program.Switch:
		for i, c := range v.Cases {
			v.Cases[i] = t.node(c)
		}
		balanced := t.balance(v.Label, v.Cases)
		copy(v.Cases, balanced)
		v.Balanced = true
		t.rep.Constructs++
		return v
	default:
		panic(fmt.Sprintf("pub: unknown node type %T", n))
	}
}

// balance rewrites each branch so all of them carry the merged (SCS) access
// pattern of the construct. nil branches are treated as empty and come back
// as pure padding.
func (t *transformer) balance(label string, branches []program.Node) []program.Node {
	sigs := make([][]item, len(branches))
	for i, b := range branches {
		sigs[i] = flatten(b)
	}
	merged := mergeAll(sigs)
	out := make([]program.Node, len(branches))
	for i := range branches {
		out[i] = t.rebuild(label, i, sigs[i], merged)
	}
	return out
}

// rebuild compiles branch k's balanced body from the merged item stream, in
// exact merged order, so that every branch of the construct emits the same
// merged access pattern (this is what makes every pubbed branch a
// supersequence of every original branch). Own items — identified by greedy
// subsequence matching, which always succeeds because the SCS contains the
// branch — are re-assembled into fresh blocks that keep the original
// instruction slots, data accesses and semantic actions in order; foreign
// items become innocuous padding: fresh instruction slots (inflated code at
// new addresses), innocuous loads (one instruction + the data access), or
// Pad-wrapped clones of opaque subtrees executed at their worst-case bound
// without semantic effects.
func (t *transformer) rebuild(label string, k int, own, merged []item) program.Node {
	b := &branchBuilder{t: t, label: label, k: k}
	j := 0
	for _, it := range merged {
		if j < len(own) && own[j].equal(it) {
			b.ownItem(own[j])
			j++
			continue
		}
		b.foreignItem(it)
	}
	if j != len(own) {
		panic(fmt.Sprintf("pub: merged signature of %q is not a supersequence of branch %d (%d/%d items matched)",
			label, k, j, len(own)))
	}
	return b.finish()
}

// branchBuilder accumulates IR nodes for one rebuilt branch. It groups
// consecutive instruction and data items into blocks, respecting the
// executor's emission order (a block emits all its instructions, then its
// data accesses, then its action): an instruction item arriving after data
// items, or a semantic action, cuts the current block.
type branchBuilder struct {
	t     *transformer
	label string
	k     int

	out  []program.Node
	cur  *program.Block
	seen int // pieces emitted, for labels
}

func (b *branchBuilder) block() *program.Block {
	if b.cur == nil {
		b.seen++
		b.cur = &program.Block{Label: fmt.Sprintf("pub.%s.b%d.p%d", b.label, b.k, b.seen)}
	}
	return b.cur
}

func (b *branchBuilder) flush() {
	if b.cur != nil && (b.cur.NInstr > 0 || len(b.cur.Accs) > 0 || b.cur.Do != nil) {
		b.out = append(b.out, b.cur)
	}
	b.cur = nil
}

func (b *branchBuilder) addInstr() {
	if b.cur != nil && len(b.cur.Accs) > 0 {
		b.flush() // keep emission order: no instr after data within a block
	}
	b.block().NInstr++
}

func (b *branchBuilder) addAcc(a *program.Acc) {
	b.block().Accs = append(b.block().Accs, a)
}

func (b *branchBuilder) ownItem(it item) {
	switch it.kind {
	case instrItem:
		b.addInstr()
	case dataItem:
		b.addAcc(it.acc)
	case macroItem:
		b.flush()
		b.out = append(b.out, it.node)
		return
	}
	if it.last && it.src.Do != nil {
		// The source block's semantic action runs once, after its last
		// item, exactly as in the original program.
		b.block().Do = it.src.Do
		b.flush()
	}
}

func (b *branchBuilder) foreignItem(it item) {
	switch it.kind {
	case instrItem:
		b.addInstr()
		b.t.rep.InsertedInstrs++
	case dataItem:
		// The innocuous load: one instruction performing one data access.
		b.addInstr()
		b.addAcc(it.acc)
		b.t.rep.InsertedInstrs++
		b.t.rep.InsertedAccesses++
	case macroItem:
		b.flush()
		b.t.rep.InsertedSubtrees++
		b.out = append(b.out, &program.Pad{Inner: program.Clone(it.node)})
	}
}

func (b *branchBuilder) finish() program.Node {
	b.flush()
	if len(b.out) == 1 {
		return b.out[0]
	}
	return &program.Seq{Nodes: b.out}
}
