package pub

import (
	"fmt"
	"testing"
	"testing/quick"

	"pubtac/internal/program"
	"pubtac/internal/rng"
	"pubtac/internal/trace"
)

// dataItems builds a data-item signature from letters, mapping each letter
// to an access template with that ID (the paper's {ABCA} notation).
func dataItems(s string) []item {
	out := make([]item, 0, len(s))
	for _, r := range s {
		id := string(r)
		out = append(out, item{kind: dataItem, id: id, acc: &program.Acc{ID: id, Sym: "m"}})
	}
	return out
}

func ids(items []item) string {
	var s string
	for _, it := range items {
		s += it.id
	}
	return s
}

func TestSCSPaperExample(t *testing.T) {
	// Section 2: merging M_if={ABCA} and M_else={BACA} must yield a
	// 5-access supersequence (e.g. {ABACA}).
	a, b := dataItems("ABCA"), dataItems("BACA")
	m := scs(a, b)
	if len(m) != 5 {
		t.Fatalf("SCS length = %d (%s), want 5", len(m), ids(m))
	}
	if !isSubsequence(a, m) || !isSubsequence(b, m) {
		t.Fatalf("SCS %s is not a common supersequence", ids(m))
	}
}

func TestSCSIdenticalSequences(t *testing.T) {
	a := dataItems("ABCD")
	m := scs(a, dataItems("ABCD"))
	if len(m) != 4 {
		t.Fatalf("SCS of identical sequences has length %d, want 4", len(m))
	}
}

func TestSCSDisjointSequences(t *testing.T) {
	m := scs(dataItems("AB"), dataItems("CD"))
	if len(m) != 4 {
		t.Fatalf("SCS of disjoint sequences has length %d, want 4", len(m))
	}
}

func TestSCSEmpty(t *testing.T) {
	if got := scs(nil, dataItems("AB")); len(got) != 2 {
		t.Fatalf("SCS(empty, AB) = %s", ids(got))
	}
	if got := scs(dataItems("AB"), nil); len(got) != 2 {
		t.Fatalf("SCS(AB, empty) = %s", ids(got))
	}
}

func TestSCSSection31Example(t *testing.T) {
	// Section 3.1.1: M1={ABCA}, M2={ADEA}; PUB minimizes insertions, a
	// valid minimal merge is {ABCDEA} (6 accesses).
	m := scs(dataItems("ABCA"), dataItems("ADEA"))
	if len(m) != 6 {
		t.Fatalf("SCS length = %d (%s), want 6", len(m), ids(m))
	}
}

func TestSCSPropertySupersequence(t *testing.T) {
	gen := rng.New(42)
	f := func(aRaw, bRaw uint32) bool {
		mk := func(raw uint32) []item {
			n := int(raw % 12)
			s := ""
			for i := 0; i < n; i++ {
				s += string(rune('A' + gen.Intn(5)))
			}
			return dataItems(s)
		}
		a, b := mk(aRaw), mk(bRaw)
		m := scs(a, b)
		if !isSubsequence(a, m) || !isSubsequence(b, m) {
			return false
		}
		// Minimality lower bound: |SCS| >= max(|a|,|b|).
		lim := len(a)
		if len(b) > lim {
			lim = len(b)
		}
		return len(m) >= lim && len(m) <= len(a)+len(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMergeAllThreeBranches(t *testing.T) {
	m := mergeAll([][]item{dataItems("AB"), dataItems("BC"), dataItems("CA")})
	for _, s := range []string{"AB", "BC", "CA"} {
		if !isSubsequence(dataItems(s), m) {
			t.Fatalf("merged %s does not contain %s", ids(m), s)
		}
	}
}

// branchProgram builds: if (x>0) { then: 3 instr, accs from thenIDs }
// else { else: 2 instr, accs from elseIDs }; all accesses target fixed
// elements of array m so both paths resolve to the same addresses.
func branchProgram(thenIDs, elseIDs string) *program.Program {
	sym := &program.Symbol{Name: "m", ElemBytes: 32, Len: 26}
	mk := func(idsStr string) []*program.Acc {
		var accs []*program.Acc
		for _, r := range idsStr {
			i := int64(r - 'A')
			accs = append(accs, program.Elem(string(r), "m",
				func(*program.State) int64 { return i }))
		}
		return accs
	}
	root := &program.If{
		Label: "if1",
		Head:  &program.Block{Label: "head", NInstr: 2},
		Cond:  func(s *program.State) bool { return s.Int("x") > 0 },
		Then:  &program.Block{Label: "then", NInstr: 3, Accs: mk(thenIDs)},
		Else:  &program.Block{Label: "else", NInstr: 2, Accs: mk(elseIDs)},
	}
	return program.New("branchy", root, sym).MustLink()
}

func dataAddrs(tr trace.Trace) []uint64 {
	var out []uint64
	for _, a := range tr.Filter(trace.Data) {
		out = append(out, a.Addr)
	}
	return out
}

func TestTransformBalancesDataPatterns(t *testing.T) {
	p := branchProgram("ABCA", "BACA")
	q, rep, err := Transform(p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Constructs != 1 {
		t.Fatalf("constructs = %d", rep.Constructs)
	}
	thenRun := q.MustExec(program.Input{Ints: map[string]int64{"x": 1}})
	elseRun := q.MustExec(program.Input{Ints: map[string]int64{"x": -1}})

	dThen, dElse := dataAddrs(thenRun.Trace), dataAddrs(elseRun.Trace)
	if len(dThen) != 5 || len(dElse) != 5 {
		t.Fatalf("balanced data accesses = %d/%d, want 5/5 (SCS of ABCA/BACA)",
			len(dThen), len(dElse))
	}
	for i := range dThen {
		if dThen[i] != dElse[i] {
			t.Fatalf("data patterns diverge at %d: %#x vs %#x", i, dThen[i], dElse[i])
		}
	}
}

func TestTransformOriginalIsDataSubsequence(t *testing.T) {
	p := branchProgram("ABCA", "BACA")
	q, _, err := Transform(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []int64{1, -1} {
		in := program.Input{Ints: map[string]int64{"x": x}}
		orig := p.MustExec(in).Trace.Filter(trace.Data)
		pubd := q.MustExec(in).Trace.Filter(trace.Data)
		if !orig.IsSubsequenceOf(pubd) {
			t.Fatalf("x=%d: original data trace %v not a subsequence of pubbed %v",
				x, orig, pubd)
		}
	}
}

func TestTransformBalancesInstructionCounts(t *testing.T) {
	p := branchProgram("AB", "CDE")
	q, _, err := Transform(p)
	if err != nil {
		t.Fatal(err)
	}
	thenRun := q.MustExec(program.Input{Ints: map[string]int64{"x": 1}})
	elseRun := q.MustExec(program.Input{Ints: map[string]int64{"x": -1}})
	nThen := len(thenRun.Trace.Filter(trace.Instr))
	nElse := len(elseRun.Trace.Filter(trace.Instr))
	// Each pubbed branch executes all merged instruction slots (3 own + 2
	// foreign = 5) plus one innocuous-load instruction per inserted data
	// access (then inherits C,D,E: +3; else inherits A,B: +2), plus the
	// 2-instruction head. Pubbed branches need not be identical — only
	// mutually upper-bounding (paper, Observations 4-5).
	if nThen != 10 {
		t.Fatalf("then instruction count = %d, want 10", nThen)
	}
	if nElse != 9 {
		t.Fatalf("else instruction count = %d, want 9", nElse)
	}
	// Both must cover every original branch's instruction count (head 2 +
	// max(3, 2) own instructions).
	for _, n := range []int{nThen, nElse} {
		if n < 5 {
			t.Fatalf("pubbed branch has fewer instructions (%d) than an original branch", n)
		}
	}
}

func TestTransformIfWithoutElse(t *testing.T) {
	sym := &program.Symbol{Name: "m", ElemBytes: 32, Len: 26}
	root := &program.If{
		Label: "opt",
		Cond:  func(s *program.State) bool { return s.Int("x") > 0 },
		Then: &program.Block{Label: "then", NInstr: 4,
			Accs: []*program.Acc{program.At("m", 0), program.At("m", 1)}},
	}
	p := program.New("no-else", root, sym).MustLink()
	q, rep, err := Transform(p)
	if err != nil {
		t.Fatal(err)
	}
	taken := q.MustExec(program.Input{Ints: map[string]int64{"x": 1}})
	skipped := q.MustExec(program.Input{Ints: map[string]int64{"x": -1}})
	// The not-taken path becomes pure padding: it performs the same data
	// accesses (as innocuous loads, each costing one extra instruction), so
	// its trace is at least as long as the taken path's.
	if len(skipped.Trace) < len(taken.Trace) {
		t.Fatalf("padding path shorter than real path: %d vs %d",
			len(skipped.Trace), len(taken.Trace))
	}
	got, want := dataAddrs(skipped.Trace), dataAddrs(taken.Trace)
	if len(got) != len(want) || len(got) != 2 {
		t.Fatalf("not-taken path missing innocuous accesses: %v vs %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("data patterns diverge: %v vs %v", got, want)
		}
	}
	if rep.InsertedAccesses != 2 {
		t.Fatalf("inserted accesses = %d, want 2", rep.InsertedAccesses)
	}
}

func TestTransformPreservesSemantics(t *testing.T) {
	// The pubbed program must compute the same result as the original on
	// every path: padding is innocuous.
	sym := &program.Symbol{Name: "m", ElemBytes: 4, Len: 4}
	var got int64
	mkRoot := func() program.Node {
		return &program.Seq{Nodes: []program.Node{
			&program.If{
				Label: "if1",
				Cond:  func(s *program.State) bool { return s.Int("x") > 0 },
				Then: &program.Block{Label: "t", NInstr: 1, Accs: []*program.Acc{program.At("m", 0)},
					Do: func(s *program.State) { s.SetInt("r", s.Int("x")*2) }},
				Else: &program.Block{Label: "e", NInstr: 1, Accs: []*program.Acc{program.At("m", 1)},
					Do: func(s *program.State) { s.SetInt("r", -s.Int("x")) }},
			},
			&program.Block{Label: "out", NInstr: 1,
				Do: func(s *program.State) { got = s.Int("r") }},
		}}
	}
	p := program.New("sem", mkRoot(), sym).MustLink()
	q, _, err := Transform(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []int64{5, -3} {
		in := program.Input{Ints: map[string]int64{"x": x}}
		p.MustExec(in)
		wantR := got
		q.MustExec(in)
		if got != wantR {
			t.Fatalf("x=%d: pubbed result %d != original %d", x, got, wantR)
		}
	}
}

func TestTransformNestedConditionals(t *testing.T) {
	sym := &program.Symbol{Name: "m", ElemBytes: 32, Len: 26}
	inner := &program.If{
		Label: "inner",
		Cond:  func(s *program.State) bool { return s.Int("y") > 0 },
		Then:  &program.Block{Label: "it", NInstr: 2, Accs: []*program.Acc{program.At("m", 2)}},
		Else:  &program.Block{Label: "ie", NInstr: 2, Accs: []*program.Acc{program.At("m", 3)}},
	}
	root := &program.If{
		Label: "outer",
		Cond:  func(s *program.State) bool { return s.Int("x") > 0 },
		Then:  &program.Seq{Nodes: []program.Node{&program.Block{Label: "ot", NInstr: 1}, inner}},
		Else:  &program.Block{Label: "oe", NInstr: 3, Accs: []*program.Acc{program.At("m", 4)}},
	}
	p := program.New("nested", root, sym).MustLink()
	q, rep, err := Transform(p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Constructs != 2 {
		t.Fatalf("constructs = %d, want 2", rep.Constructs)
	}
	// All four paths of the pubbed program must perform the same data
	// access pattern (full balance, inner construct included); instruction
	// counts may differ slightly across branches (innocuous-load slots).
	var patterns [][]uint64
	for _, x := range []int64{1, -1} {
		for _, y := range []int64{1, -1} {
			r := q.MustExec(program.Input{Ints: map[string]int64{"x": x, "y": y}})
			patterns = append(patterns, dataAddrs(r.Trace))
		}
	}
	for _, pat := range patterns[1:] {
		if len(pat) != len(patterns[0]) {
			t.Fatalf("path data patterns differ in length: %v", patterns)
		}
		for i := range pat {
			if pat[i] != patterns[0][i] {
				t.Fatalf("path data patterns diverge: %v", patterns)
			}
		}
	}
}

func TestTransformBranchWithLoop(t *testing.T) {
	// A loop inside one branch becomes worst-case padding in the other.
	sym := &program.Symbol{Name: "m", ElemBytes: 32, Len: 26}
	root := &program.If{
		Label: "ifloop",
		Cond:  func(s *program.State) bool { return s.Int("x") > 0 },
		Then: &program.Loop{
			Label:    "l",
			Bound:    func(s *program.State) int { return int(s.Int("n")) },
			MaxBound: 5,
			Body:     &program.Block{Label: "lb", NInstr: 2, Accs: []*program.Acc{program.At("m", 7)}},
		},
		Else: &program.Block{Label: "e", NInstr: 1},
	}
	p := program.New("ifloop", root, sym).MustLink()
	q, rep, err := Transform(p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.InsertedSubtrees != 1 {
		t.Fatalf("inserted subtrees = %d, want 1", rep.InsertedSubtrees)
	}
	// Else path: padding loop runs MaxBound=5 iterations regardless of n.
	elseRun := q.MustExec(program.Input{Ints: map[string]int64{"x": -1, "n": 2}})
	if got := len(dataAddrs(elseRun.Trace)); got != 5 {
		t.Fatalf("else-path innocuous loop accesses = %d, want 5", got)
	}
	// Then path with n=5 (max bound input): at least as many accesses.
	thenRun := q.MustExec(program.Input{Ints: map[string]int64{"x": 1, "n": 5}})
	if len(thenRun.Trace) != len(elseRun.Trace) {
		t.Fatalf("max-bound paths unbalanced: %d vs %d",
			len(thenRun.Trace), len(elseRun.Trace))
	}
}

func TestTransformSwitch(t *testing.T) {
	sym := &program.Symbol{Name: "m", ElemBytes: 32, Len: 26}
	mkCase := func(label string, n int, idx int64) program.Node {
		return &program.Block{Label: label, NInstr: n,
			Accs: []*program.Acc{program.At("m", idx)}}
	}
	root := &program.Switch{
		Label:    "sw",
		Selector: func(s *program.State) int { return int(s.Int("k")) },
		Cases:    []program.Node{mkCase("c0", 1, 0), mkCase("c1", 2, 1), mkCase("c2", 3, 2)},
	}
	p := program.New("switchy", root, sym).MustLink()
	q, _, err := Transform(p)
	if err != nil {
		t.Fatal(err)
	}
	var lengths []int
	for k := int64(0); k < 3; k++ {
		r := q.MustExec(program.Input{Ints: map[string]int64{"k": k}})
		lengths = append(lengths, len(r.Trace))
	}
	for _, l := range lengths[1:] {
		if l != lengths[0] {
			t.Fatalf("switch cases unbalanced: %v", lengths)
		}
	}
}

func TestTransformDoesNotModifyOriginal(t *testing.T) {
	p := branchProgram("ABCA", "BACA")
	before := p.MustExec(program.Input{Ints: map[string]int64{"x": 1}})
	_, _, err := Transform(p)
	if err != nil {
		t.Fatal(err)
	}
	after := p.MustExec(program.Input{Ints: map[string]int64{"x": 1}})
	if len(before.Trace) != len(after.Trace) || before.Path != after.Path {
		t.Fatal("Transform modified the original program")
	}
}

func TestTransformCodeGrowth(t *testing.T) {
	p := branchProgram("ABCA", "BACA")
	_, rep, err := Transform(p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CodeGrowth() <= 1 {
		t.Fatalf("code growth = %v, want > 1", rep.CodeGrowth())
	}
	if rep.OrigCodeBytes != (2+3+2)*4 {
		t.Fatalf("orig code bytes = %d", rep.OrigCodeBytes)
	}
}

func TestTransformIdempotentPattern(t *testing.T) {
	// Transforming an already-pubbed program must not change the balanced
	// access pattern lengths (it may rebuild structure, but branches are
	// already equivalent, so no data access is inserted).
	p := branchProgram("ABCA", "BACA")
	q, _, err := Transform(p)
	if err != nil {
		t.Fatal(err)
	}
	q2, rep2, err := Transform(q)
	if err != nil {
		t.Fatal(err)
	}
	a := q.MustExec(program.Input{Ints: map[string]int64{"x": 1}})
	b := q2.MustExec(program.Input{Ints: map[string]int64{"x": 1}})
	if len(dataAddrs(a.Trace)) != len(dataAddrs(b.Trace)) {
		t.Fatalf("re-pubbing changed data pattern: %d vs %d (report %+v)",
			len(dataAddrs(a.Trace)), len(dataAddrs(b.Trace)), rep2)
	}
}

func TestPaddingLabelsUnique(t *testing.T) {
	p := branchProgram("ABC", "DEF")
	q, _, err := Transform(p)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, b := range q.Blocks() {
		key := fmt.Sprintf("%s@%x", b.Label, b.Addr)
		if seen[key] {
			t.Fatalf("duplicate block %s", key)
		}
		seen[key] = true
	}
}
