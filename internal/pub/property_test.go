package pub

import (
	"fmt"
	"testing"

	"pubtac/internal/program"
	"pubtac/internal/rng"
	"pubtac/internal/trace"
)

// randProgram generates a random program tree with nested conditionals,
// switches and loops over a shared symbol, for property testing the PUB
// transform. Control decisions read the input scalars c0..c3.
type randGen struct {
	r     *rng.Xoshiro256
	label int
	depth int
}

func (g *randGen) nextLabel(prefix string) string {
	g.label++
	return fmt.Sprintf("%s%d", prefix, g.label)
}

func (g *randGen) block() *program.Block {
	n := 1 + g.r.Intn(6)
	var accs []*program.Acc
	for i := g.r.Intn(4); i > 0; i-- {
		idx := int64(g.r.Intn(8))
		accs = append(accs, program.At("m", idx))
	}
	return &program.Block{Label: g.nextLabel("b"), NInstr: n, Accs: accs}
}

func (g *randGen) node() program.Node {
	g.depth++
	defer func() { g.depth-- }()
	if g.depth > 3 {
		return g.block()
	}
	switch g.r.Intn(6) {
	case 0, 1:
		return g.block()
	case 2:
		return &program.Seq{Nodes: []program.Node{g.node(), g.node()}}
	case 3:
		sel := g.r.Intn(4)
		return &program.If{
			Label: g.nextLabel("if"),
			Cond: func(s *program.State) bool {
				return s.Int(fmt.Sprintf("c%d", sel)) > 0
			},
			Then: g.node(),
			Else: g.maybeNode(),
		}
	case 4:
		sel := g.r.Intn(4)
		cases := make([]program.Node, 2+g.r.Intn(2))
		for i := range cases {
			cases[i] = g.node()
		}
		return &program.Switch{
			Label: g.nextLabel("sw"),
			Selector: func(s *program.State) int {
				return int(s.Int(fmt.Sprintf("c%d", sel)))
			},
			Cases: cases,
		}
	default:
		bound := 1 + g.r.Intn(3)
		return &program.Loop{
			Label:    g.nextLabel("lp"),
			Bound:    func(*program.State) int { return bound },
			MaxBound: bound,
			Body:     g.node(),
		}
	}
}

func (g *randGen) maybeNode() program.Node {
	if g.r.Intn(3) == 0 {
		return nil
	}
	return g.node()
}

// inputsOver enumerates a few input vectors over the control scalars.
func inputsOver() []program.Input {
	var ins []program.Input
	for _, c0 := range []int64{0, 1} {
		for _, c1 := range []int64{0, 1} {
			for _, c2 := range []int64{0, 2} {
				ins = append(ins, program.Input{
					Name: fmt.Sprintf("i%d%d%d", c0, c1, c2),
					Ints: map[string]int64{"c0": c0, "c1": c1, "c2": c2, "c3": 1},
					Arrays: map[string][]int64{
						"m": {1, 2, 3, 4, 5, 6, 7, 8},
					},
				})
			}
		}
	}
	return ins
}

// TestTransformPropertyRandomPrograms checks, over many random programs,
// the core PUB invariants:
//
//  1. for every input, the original data trace is a subsequence of the
//     pubbed data trace (only insertions happened, order preserved);
//  2. the pubbed trace is never shorter than the original trace;
//  3. data access patterns coincide across all paths of the pubbed program
//     at equal loop bounds (full balance).
func TestTransformPropertyRandomPrograms(t *testing.T) {
	const trials = 60
	inputs := inputsOver()
	for trial := 0; trial < trials; trial++ {
		g := &randGen{r: rng.New(uint64(1000 + trial))}
		sym := &program.Symbol{Name: "m", ElemBytes: 32, Len: 8}
		p := program.New(fmt.Sprintf("rand%d", trial), g.node(), sym)
		if err := p.Link(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		q, _, err := Transform(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		var dataLens []int
		for _, in := range inputs {
			orig, err := p.Exec(in)
			if err != nil {
				t.Fatalf("trial %d input %s: %v", trial, in.Name, err)
			}
			pubd, err := q.Exec(in)
			if err != nil {
				t.Fatalf("trial %d input %s (pubbed): %v", trial, in.Name, err)
			}
			od := orig.Trace.Filter(trace.Data)
			pd := pubd.Trace.Filter(trace.Data)
			if !od.IsSubsequenceOf(pd) {
				t.Fatalf("trial %d input %s: original data trace not a subsequence\norig: %v\npub:  %v",
					trial, in.Name, od, pd)
			}
			if len(pubd.Trace) < len(orig.Trace) {
				t.Fatalf("trial %d input %s: pubbed trace shorter", trial, in.Name)
			}
			dataLens = append(dataLens, len(pd))
		}
		// All counted loops have fixed bounds in this generator, so every
		// path of the pubbed program performs the same number of data
		// accesses.
		for _, l := range dataLens[1:] {
			if l != dataLens[0] {
				t.Fatalf("trial %d: pubbed data access counts differ across paths: %v",
					trial, dataLens)
			}
		}
	}
}

// TestTransformPropertyCrossPathDominance verifies the cross-branch
// requirement on a sample of random programs: the data trace of ANY
// original path is a subsequence of the pubbed trace of ANY OTHER path
// (at the template level this is what Equation 1 needs; with fixed-index
// templates it holds at the address level too).
func TestTransformPropertyCrossPathDominance(t *testing.T) {
	const trials = 25
	inputs := inputsOver()
	for trial := 0; trial < trials; trial++ {
		g := &randGen{r: rng.New(uint64(9000 + trial))}
		sym := &program.Symbol{Name: "m", ElemBytes: 32, Len: 8}
		p := program.New(fmt.Sprintf("xrand%d", trial), g.node(), sym)
		if err := p.Link(); err != nil {
			t.Fatal(err)
		}
		q, _, err := Transform(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, inOrig := range inputs[:4] {
			od := p.MustExec(inOrig).Trace.Filter(trace.Data)
			for _, inPub := range inputs[:4] {
				pd := q.MustExec(inPub).Trace.Filter(trace.Data)
				if !od.IsSubsequenceOf(pd) {
					t.Fatalf("trial %d: orig path %s not covered by pubbed path %s\norig: %v\npub:  %v",
						trial, inOrig.Name, inPub.Name, od, pd)
				}
			}
		}
	}
}
