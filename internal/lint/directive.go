package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// A directive is one parsed "//pubtac:<verb> <args>" comment.
type directive struct {
	verb string // "nondeterministic", "nopoll", "sorted", "fastpath", "reference"
	args string // reason or pair name; may be empty (which analyzers report)
	pos  token.Pos
}

// parseDirective returns the directive in a single comment, if any.
func parseDirective(c *ast.Comment) (directive, bool) {
	text, ok := strings.CutPrefix(c.Text, "//pubtac:")
	if !ok {
		return directive{}, false
	}
	verb, args, _ := strings.Cut(text, " ")
	return directive{verb: verb, args: strings.TrimSpace(args), pos: c.Pos()}, true
}

// escapes indexes a pass's escape directives by verb and file:line, so
// analyzers can ask in O(1) whether a node is covered by one.
type escapes struct {
	pass  *analysis.Pass
	lines map[string]map[string]string // verb -> "file:line" -> reason
}

func collectEscapes(pass *analysis.Pass) *escapes {
	e := &escapes{pass: pass, lines: make(map[string]map[string]string)}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseDirective(c)
				if !ok {
					continue
				}
				m := e.lines[d.verb]
				if m == nil {
					m = make(map[string]string)
					e.lines[d.verb] = m
				}
				p := pass.Fset.Position(d.pos)
				m[lineKey(p.Filename, p.Line)] = d.args
			}
		}
	}
	return e
}

func lineKey(file string, line int) string {
	var b strings.Builder
	b.WriteString(file)
	b.WriteByte(':')
	// Lines are small; avoid fmt for the hot path of a whole-tree run.
	var buf [12]byte
	i := len(buf)
	for n := line; ; {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
		if n == 0 {
			break
		}
	}
	b.Write(buf[i:])
	return b.String()
}

// covers reports whether an escape directive for verb sits on the node's
// starting line or on the line immediately above it. An escape with an
// empty argument does not count: the reason is part of the grammar, so a
// bare escape is reported at the escape site instead of silencing anything.
func (e *escapes) covers(verb string, node ast.Node) bool {
	m := e.lines[verb]
	if m == nil {
		return false
	}
	p := e.pass.Fset.Position(node.Pos())
	for _, line := range [2]int{p.Line, p.Line - 1} {
		if reason, ok := m[lineKey(p.Filename, line)]; ok {
			if reason == "" {
				e.pass.Reportf(node.Pos(), "//pubtac:%s escape needs a reason argument", verb)
				return true // still escape: the missing reason is the finding
			}
			return true
		}
	}
	return false
}

// isTestFile reports whether the node's file is a _test.go file.
func isTestFile(pass *analysis.Pass, pos token.Pos) bool {
	return strings.HasSuffix(pass.Fset.Position(pos).Filename, "_test.go")
}
