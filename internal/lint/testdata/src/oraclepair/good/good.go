// Package good exercises the oraclepair analyzer's passing cases: both
// halves declared, and a test file naming both.
package good

// FastReplay is the optimized arm.
//
//pubtac:fastpath replay
func FastReplay(xs []int) int {
	total := 0
	for _, v := range xs {
		total += v
	}
	return total
}

// SlowReplay is the reference oracle for FastReplay.
//
//pubtac:reference replay
func SlowReplay(xs []int) int {
	total := 0
	for i := 0; i < len(xs); i++ {
		total += xs[i]
	}
	return total
}

// Accumulator is an incremental fast path declared as a type, like the
// real stats.IIDState.
//
//pubtac:fastpath battery
type Accumulator struct {
	sum int
}

// OneShot is the reference oracle for Accumulator.
//
//pubtac:reference battery
func OneShot(xs []int) int {
	total := 0
	for _, v := range xs {
		total += v
	}
	return total
}
