package good

// The equivalence tests name both arms of each pair: FastReplay vs
// SlowReplay, and Accumulator vs OneShot.
func equivalence(xs []int) bool {
	if FastReplay(xs) != SlowReplay(xs) {
		return false
	}
	acc := Accumulator{}
	for _, v := range xs {
		acc.sum += v
	}
	return acc.sum == OneShot(xs)
}
