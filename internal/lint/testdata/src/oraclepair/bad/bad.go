// Package bad exercises the oraclepair analyzer's failure cases.
package bad

// Orphan has no reference oracle anywhere in the package.
//
//pubtac:fastpath orphan
func Orphan() int { return 0 } // want `fastpath "orphan" \(Orphan\) has no matching`

// Untested and its reference exist, but no test file mentions both.
//
//pubtac:fastpath untested
func Untested() int { return 1 } // want `no test file mentioning both Untested and UntestedRef`

// UntestedRef is the reference arm of Untested.
//
//pubtac:reference untested
func UntestedRef() int { return 1 }

// Nameless forgot the pair name.
//
//pubtac:fastpath
func Nameless() int { return 2 } // want `needs a pair name argument`

// Selfish marks itself as both arms.
//
//pubtac:fastpath selfish
//pubtac:reference selfish
func Selfish() int { return 3 } // want `marks the same declaration Selfish`

// DupA and DupB fight over one fastpath name.
//
//pubtac:fastpath dup
func DupA() int { return 4 } // want `fastpath "dup" \(DupA\) has no matching`

// DupB duplicates DupA's mark.
//
//pubtac:fastpath dup
func DupB() int { return 5 } // want `duplicate //pubtac:fastpath "dup"`
