package bad

// This test mentions Untested but never its reference arm, so the pair
// fails the test-mention rule.
func halfCovered() int {
	return Untested()
}
