// Package a exercises the sortedview analyzer: arguments at *sorted*
// parameter positions must be traceable to a sorted source.
package a

import "sort"

// SortedCopy returns an ascending-sorted copy (a producer).
func SortedCopy(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	sort.Float64s(out)
	return out
}

// MergeSorted merges two ascending-sorted views (producer and consumer:
// its own parameters carry the precondition).
func MergeSorted(sortedA, sortedB []float64) []float64 {
	out := make([]float64, 0, len(sortedA)+len(sortedB))
	i, j := 0, 0
	for i < len(sortedA) && j < len(sortedB) {
		if sortedA[i] <= sortedB[j] {
			out = append(out, sortedA[i])
			i++
		} else {
			out = append(out, sortedB[j])
			j++
		}
	}
	out = append(out, sortedA[i:]...)
	return append(out, sortedB[j:]...)
}

// FitTail consumes an ascending-sorted view.
func FitTail(sorted []float64, tail int) float64 {
	return sorted[len(sorted)-tail]
}

// Conv mimics mbpta.Convergence: Sorted is sorted by construction.
type Conv struct {
	Sorted []float64
}

// dist mimics stats.ECDF: an unexported field named sorted carries the
// invariant the same way a named parameter does.
type dist struct {
	sorted []float64
}

func good(xs []float64) float64 {
	s := SortedCopy(xs)
	total := FitTail(s, 1)              // local assigned from a producer
	total += FitTail(SortedCopy(xs), 1) // direct producer call
	total += FitTail(s[1:], 1)          // reslice of a sorted view
	var c Conv
	c.Sorted = s
	total += FitTail(c.Sorted, 1) // .Sorted field
	m := MergeSorted(s, SortedCopy(xs))
	total += FitTail(m, 1) // merge of sorted views
	var d dist
	d.sorted = s
	total += FitTail(d.sorted, 1)              // lowercase sorted field
	total += FitTail([]float64{1, 2, 2, 5}, 1) // ascending constant literal
	total += FitTail(MergeSorted(nil, s), 1)   // nil slice: trivially sorted
	sort.Float64s(xs)
	return total + FitTail(xs, 1) // sorted in place above
}

// forward holds a *sorted* parameter: the obligation moves to its callers.
func forward(sortedView []float64) float64 {
	return FitTail(sortedView, 1)
}

// view mimics stats.SampleView: a producer-named interface method carries
// the invariant like a producer-named function.
type view interface {
	TailSorted() []float64
}

// keepTop mimics the streaming reservoir's merge helper: no Sorted-ish
// name, but every return is a sorted source, so provenance taints through
// the return.
func keepTop(sortedA, sortedB []float64, k int) []float64 {
	m := MergeSorted(sortedA, sortedB)
	if len(m) > k {
		return m[len(m)-k:]
	}
	return m
}

// shuffled returns a run-order copy: NOT a sorted source.
func shuffled(xs []float64) []float64 {
	return append([]float64(nil), xs...)
}

// unsortedTail has "sorted" inside "unsorted": the negation wins.
func unsortedTail(xs []float64) []float64 {
	return append([]float64(nil), xs...)
}

func goodTaint(v view, xs []float64) float64 {
	total := FitTail(v.TailSorted(), 1) // producer-named interface method
	s := SortedCopy(xs)
	total += FitTail(keepTop(s, s, 3), 1) // taint through helper return
	t := keepTop(s, nil, 2)
	return total + FitTail(t, 1) // local assigned from a tainted helper
}

func badTaint(xs []float64) float64 {
	total := FitTail(shuffled(xs), 1)           // want `must be an ascending-sorted view`
	return total + FitTail(unsortedTail(xs), 1) // want `must be an ascending-sorted view`
}

func bad(xs []float64) float64 {
	total := FitTail(xs, 1) // want `must be an ascending-sorted view`
	ys := append([]float64(nil), xs...)
	total += FitTail(ys, 1) // want `must be an ascending-sorted view`
	s := SortedCopy(xs)
	s = xs                                            // reassigned to run order: taints every use
	total += FitTail(s, 1)                            // want `must be an ascending-sorted view`
	total += FitTail([]float64{3, 1, 2}, 1)           // want `must be an ascending-sorted view`
	return total + MergeSorted(SortedCopy(xs), xs)[0] // want `must be an ascending-sorted view`
}

// notSortedName shows the precondition is carried by the parameter name:
// plain views are not checked against FitTail's contract at this level.
func notSortedName(view []float64) float64 {
	return FitTail(view, 1) // want `must be an ascending-sorted view`
}

func escaped(xs []float64) float64 {
	//pubtac:sorted xs arrives sorted from the fixture generator
	return FitTail(xs, 1)
}
