// Package bad exercises benchgate's findings.
package bad // want `BENCH_3.json baselines BenchmarkRemoved but no such benchmark is declared`

import "testing"

// BenchmarkOrphan claims a gate slot the baseline does not have.
//
//pubtac:bench
func BenchmarkOrphan(b *testing.B) { // want `BenchmarkOrphan is marked //pubtac:bench but missing from BENCH_3.json`
	for i := 0; i < b.N; i++ {
	}
}

// BenchmarkUnmarked is baselined but carries no directive.
func BenchmarkUnmarked(b *testing.B) { // want `BenchmarkUnmarked appears in BENCH_3.json but is not marked //pubtac:bench`
	for i := 0; i < b.N; i++ {
	}
}
