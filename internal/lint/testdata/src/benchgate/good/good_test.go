// Package good exercises benchgate's passing shapes: gated benchmarks
// present in the newest baseline (directly or via sub-benchmarks), an
// ungated benchmark the gate does not watch, and an older baseline that is
// ignored in favor of the newest.
package good

import "testing"

// BenchmarkGated is in the newest baseline and marked.
//
//pubtac:bench
func BenchmarkGated(b *testing.B) {
	for i := 0; i < b.N; i++ {
	}
}

// BenchmarkSubs only appears in the baseline through its sub-benchmarks.
//
//pubtac:bench
func BenchmarkSubs(b *testing.B) {
	b.Run("one", func(b *testing.B) {})
	b.Run("two", func(b *testing.B) {})
}

// BenchmarkUngated is not gated and not baselined: nothing to check.
func BenchmarkUngated(b *testing.B) {
	for i := 0; i < b.N; i++ {
	}
}
