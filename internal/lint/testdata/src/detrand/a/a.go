// Package a exercises the detrand analyzer: ambient randomness,
// wall-clock reads and map iteration in a result-affecting package.
package a

import (
	crand "crypto/rand" // want `import of crypto/rand in result-affecting package`
	"math/rand"         // want `import of math/rand in result-affecting package`
	"time"
)

//pubtac:nondeterministic jitter source for a deliberately randomized demo
import _ "math/rand/v2"

func ambient() int {
	return rand.Int() // the import is the finding; calls ride on it
}

func fillEntropy(b []byte) {
	crand.Read(b)
}

func wallClock() time.Time {
	return time.Now() // want `time.Now in result-affecting package`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time.Since in result-affecting package`
}

func escapedClock() time.Time {
	//pubtac:nondeterministic progress heartbeat only, never reaches a result
	return time.Now()
}

func bareEscape() time.Time {
	//pubtac:nondeterministic
	return time.Now() // want `needs a reason argument`
}

func mapOrder(m map[string]int) int {
	total := 0
	for _, v := range m { // want `range over map in result-affecting package`
		total += v
	}
	return total
}

func mapOrderEscaped(m map[string]int) int {
	total := 0
	//pubtac:nondeterministic summation is order-insensitive
	for _, v := range m {
		total += v
	}
	return total
}

func sliceOrder(xs []int) int {
	total := 0
	for _, v := range xs { // slices have defined order: no finding
		total += v
	}
	return total
}
