package a

import (
	"math/rand"
	"time"
)

// Test files are exempt: benchmark timing and test-fixture randomness are
// fine as long as they stay out of result-affecting code.
func testOnlyClock() time.Duration {
	t0 := time.Now()
	_ = rand.Int()
	for range map[int]int{1: 1} {
	}
	return time.Since(t0)
}
