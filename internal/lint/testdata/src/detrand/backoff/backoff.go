// Package backoff exercises detrand's time.Sleep ban: wall-clock retry
// pacing is flagged, while the same policy expressed against an injected
// clock (the fabric idiom) stays silent.
package backoff

import (
	"context"
	"time"
)

// wallClockBackoff is the shape the ban exists for: the retry schedule
// runs on ambient time, ignores cancellation, and makes every chaos test
// wait out real delays.
func wallClockBackoff(try func() error) error {
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		if attempt > 0 {
			d := 50 * time.Millisecond << attempt
			deadline := time.Now().Add(d) // want `time.Now in result-affecting package`
			time.Sleep(d)                 // want `time.Sleep in result-affecting package`
			_ = deadline
		}
		if err = try(); err == nil {
			return nil
		}
	}
	return err
}

// Clock is the injected seam: production hands in the wall clock, tests a
// fake that advances instantly and records the schedule.
type Clock interface {
	Sleep(ctx context.Context, d time.Duration) error
}

// injectedBackoff is the approved shape — identical policy, but paced by
// the injected clock and cancellable, so it draws no findings.
func injectedBackoff(ctx context.Context, clk Clock, try func() error) error {
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		if attempt > 0 {
			if err := clk.Sleep(ctx, 50*time.Millisecond<<attempt); err != nil {
				return err
			}
		}
		if err = try(); err == nil {
			return nil
		}
	}
	return err
}
