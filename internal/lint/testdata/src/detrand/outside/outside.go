// Package outside is not matched by the scope flag: ambient
// nondeterminism here is fine and must produce no findings.
package outside

import (
	"math/rand"
	"time"
)

func anythingGoes(m map[string]int) (int, time.Time) {
	total := rand.Int()
	for _, v := range m {
		total += v
	}
	return total, time.Now()
}
