// Package a exercises the ctxpoll analyzer: exported context-taking
// functions must keep unbounded loops cancellable.
package a

import "context"

func work(ctx context.Context) {}

// Spin never consults ctx: the canonical violation.
func Spin(ctx context.Context) {
	n := 0
	for { // want `never consults its context`
		n++
	}
}

// Drain ranges over a channel — as unbounded as for {} — without ctx.
func Drain(ctx context.Context, ch chan int) int {
	total := 0
	for v := range ch { // want `never consults its context`
		total += v
	}
	return total
}

// PollErr checks ctx.Err at block granularity: compliant.
func PollErr(ctx context.Context, blocks int) error {
	for i := 0; i < blocks; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Delegate hands ctx to a callee each iteration: the callee polls.
func Delegate(ctx context.Context, blocks int) {
	for i := 0; i < blocks; i++ {
		work(ctx)
	}
}

// SelectDone waits on ctx.Done in a select: compliant.
func SelectDone(ctx context.Context, ch chan int) int {
	for {
		select {
		case v := <-ch:
			return v
		case <-ctx.Done():
			return 0
		}
	}
}

// Ranged loops over slices are bounded: exempt.
func Ranged(ctx context.Context, xs []int) int {
	total := 0
	for _, v := range xs {
		total += v
	}
	return total
}

// Escaped documents why its loop needs no poll.
func Escaped(ctx context.Context) int {
	n := 0
	//pubtac:nopoll bounded by the 64-bit word width
	for i := 0; i < 64; i++ {
		n += i
	}
	return n
}

// unexported functions carry no public cancellation promise.
func spinQuietly(ctx context.Context) {
	for {
	}
}

// NoContext takes no context and promises nothing.
func NoContext(blocks int) int {
	n := 0
	for i := 0; i < blocks; i++ {
		n++
	}
	return n
}
