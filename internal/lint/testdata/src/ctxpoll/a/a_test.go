package a

import "context"

// Test files are exempt even for exported context-taking helpers.
func SpinForTest(ctx context.Context) {
	for {
	}
}
