package a

// Test files are exempt: cancellation and race tests spawn goroutines
// directly.
func testOnlyGoroutine(done chan struct{}) {
	go func() { close(done) }()
}
