// Package a exercises the poolonly analyzer: fan-out outside the pool
// package must go through pool.Group.
package a

import "poolonly/pool"

func bare() {
	go func() {}() // want `bare go statement outside poolonly/pool`
}

func escaped(stop chan struct{}) {
	//pubtac:nondeterministic signal-watcher goroutine, no result flows out
	go func() { <-stop }()
}

// pooled is the false-positive case: handing a closure to the pool spawns
// a goroutine, but the go statement lives in the pool package.
func pooled(work []func() error) error {
	var g pool.Group
	for _, w := range work {
		g.Go(w)
	}
	return g.Wait()
}
