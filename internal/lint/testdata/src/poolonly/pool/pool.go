// Package pool is the one package allowed to spawn goroutines (the test
// sets -poolonly.pool to this path).
package pool

import "sync"

// Group mimics the real pool.Group surface.
type Group struct {
	wg sync.WaitGroup
}

// Go spawns f; inside the pool package the go statement is legal.
func (g *Group) Go(f func() error) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		_ = f()
	}()
}

// Wait blocks until all tasks finish.
func (g *Group) Wait() error {
	g.wg.Wait()
	return nil
}
