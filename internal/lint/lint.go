// Package lint is pubtacvet: a go/analysis suite that mechanizes the
// repository's determinism and oracle-pairing invariants. Every result in
// this codebase is a deterministic function of (program, input, seed) —
// bit-identical at any worker count — and every fast path is shadowed by a
// reference oracle. The compiler checks none of that; these analyzers do:
//
//   - detrand: in result-affecting packages, forbid ambient randomness
//     (math/rand, crypto/rand), wall-clock reads (time.Now, time.Since) and
//     range over maps, whose iteration order is deliberately randomized by
//     the runtime. All randomness must come from the seed-derived
//     internal/rng generators; all iteration that can reach a result must
//     have a defined order.
//   - poolonly: no bare go statements outside internal/pool. All fan-out
//     must go through the index-addressed pool, which is what makes results
//     worker-count-invariant and errors deterministic.
//   - ctxpoll: exported functions taking a context.Context must keep their
//     unbounded loops cancellable — each loop either consults ctx directly
//     or hands it to a callee (the block-granularity cancellation contract
//     of the Session API).
//   - oraclepair: every declaration marked //pubtac:fastpath <name> must
//     have a matching //pubtac:reference <name> declaration in the same
//     package, and some test file must mention both identifiers — the
//     fast-path/reference-oracle discipline (Engine.UseReference,
//     Config.ReferenceIID, Config.ReferenceEnumeration), machine-checked.
//   - sortedview: a []float64 parameter whose name contains "sorted"
//     declares an ascending-sorted-view precondition; arguments at such
//     positions must be traceable to stats.SortedCopy, stats.MergeSorted, a
//     .Sorted field/method, a producer-named call (TailSorted), a helper
//     whose every return is itself sorted, an in-place sort, or another
//     sorted parameter.
//   - benchgate: benchmarks marked //pubtac:bench are the CI-gated set;
//     the directive must match the newest committed BENCH_N.json baseline
//     bidirectionally (marked ⇒ baselined, baselined ⇒ marked, no stale
//     baseline entries).
//
// # Directives
//
// Escape hatches and markers are comments of the form "//pubtac:<verb>
// <args>", attached to the flagged line, the line above it, or (for
// fastpath/reference) the declaration's doc comment:
//
//	//pubtac:nondeterministic <reason>  escape detrand and poolonly
//	//pubtac:nopoll <reason>            escape ctxpoll
//	//pubtac:sorted <reason>            escape sortedview
//	//pubtac:fastpath <name>            mark a fast-path declaration
//	//pubtac:reference <name>           mark its reference oracle
//	//pubtac:bench                      mark a CI-gated benchmark
//
// A reason or name argument is mandatory: an escape without a recorded
// justification is itself a finding.
//
// Run the suite via the cmd/pubtacvet multichecker:
//
//	go build -o pubtacvet ./cmd/pubtacvet
//	go vet -vettool=$(pwd)/pubtacvet ./...
package lint

import "golang.org/x/tools/go/analysis"

// Analyzers returns the full pubtacvet suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Detrand,
		Poolonly,
		Ctxpoll,
		Oraclepair,
		Sortedview,
		Benchgate,
	}
}
