package lint

import (
	"encoding/json"
	"go/ast"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Benchgate pins the CI bench gate's coverage to the source. The regression
// gate (cmd/benchjson -check against the committed BENCH_<pr>.json
// baselines) only watches the benchmarks its regex selects; nothing used to
// stop a renamed benchmark from silently falling out of the gate, or a
// baseline entry from outliving its benchmark. The //pubtac:bench directive
// makes the gated set explicit in the code, and this analyzer checks it
// bidirectionally against the NEWEST committed baseline (highest N among
// BENCH_N.json in the package directory):
//
//   - a Benchmark marked //pubtac:bench must appear in the newest baseline
//     (itself or a sub-benchmark of it);
//   - a benchmark present in the newest baseline must carry the directive;
//   - a baseline entry naming no declared Benchmark function is stale.
//
// Sub-benchmark entries ("BenchmarkCheckIID/one-shot") count toward their
// root Benchmark function. Packages without Benchmark functions or without
// committed baselines are skipped.
var Benchgate = &analysis.Analyzer{
	Name: "benchgate",
	Doc: "//pubtac:bench directives must match the newest BENCH_N.json baseline\n\n" +
		"Benchmarks marked //pubtac:bench are the CI-gated set: each must appear in the\n" +
		"newest committed BENCH_N.json next to its package, every baselined benchmark\n" +
		"must carry the directive, and stale baseline entries are findings.",
	Run: runBenchgate,
}

// benchBaselineRE matches committed bench baselines; the integer is the PR
// number, so the highest one is the baseline of record.
var benchBaselineRE = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// benchBaseline mirrors cmd/benchjson's output schema (the fields benchgate
// needs).
type benchBaseline struct {
	Benchmarks []struct {
		Name string `json:"name"`
	} `json:"benchmarks"`
}

func runBenchgate(pass *analysis.Pass) (interface{}, error) {
	type benchDecl struct {
		fd    *ast.FuncDecl
		gated bool
	}
	decls := map[string]benchDecl{}
	var dir string
	for _, f := range pass.Files {
		fname := pass.Fset.Position(f.Pos()).Filename
		if !strings.HasSuffix(fname, "_test.go") {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || !strings.HasPrefix(fd.Name.Name, "Benchmark") {
				continue
			}
			gated := false
			if fd.Doc != nil {
				for _, c := range fd.Doc.List {
					if d, ok := parseDirective(c); ok && d.verb == "bench" {
						gated = true
					}
				}
			}
			decls[fd.Name.Name] = benchDecl{fd: fd, gated: gated}
			dir = filepath.Dir(fname)
		}
	}
	if len(decls) == 0 {
		return nil, nil
	}
	baseline := newestBenchBaseline(dir)
	if baseline == "" {
		return nil, nil // no committed baseline next to these benchmarks
	}
	data, err := os.ReadFile(baseline)
	if err != nil {
		return nil, nil
	}
	base := filepath.Base(baseline)
	var bb benchBaseline
	if err := json.Unmarshal(data, &bb); err != nil {
		pass.Reportf(pass.Files[0].Pos(), "benchgate: %s: %v", base, err)
		return nil, nil
	}
	inBaseline := map[string]bool{}
	for _, e := range bb.Benchmarks {
		root := e.Name
		if i := strings.IndexByte(root, '/'); i >= 0 {
			root = root[:i] // sub-benchmarks count toward their root func
		}
		inBaseline[root] = true
	}

	names := make([]string, 0, len(decls))
	for name := range decls {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		bd := decls[name]
		switch {
		case bd.gated && !inBaseline[name]:
			pass.Reportf(bd.fd.Name.Pos(), "%s is marked //pubtac:bench but missing from %s; run the bench job and refresh the baseline (or drop the directive)", name, base)
		case !bd.gated && inBaseline[name]:
			pass.Reportf(bd.fd.Name.Pos(), "%s appears in %s but is not marked //pubtac:bench; add the directive so the gated set stays explicit", name, base)
		}
	}
	stale := make([]string, 0)
	for root := range inBaseline {
		if _, ok := decls[root]; !ok {
			stale = append(stale, root)
		}
	}
	sort.Strings(stale)
	for _, root := range stale {
		pass.Reportf(pass.Files[0].Pos(), "%s baselines %s but no such benchmark is declared; the entry is stale", base, root)
	}
	return nil, nil
}

// newestBenchBaseline returns the path of the highest-numbered BENCH_N.json
// in dir, or "" when none is committed.
func newestBenchBaseline(dir string) string {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return ""
	}
	best, bestN := "", -1
	for _, e := range entries {
		m := benchBaselineRE.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		if n, err := strconv.Atoi(m[1]); err == nil && n > bestN {
			bestN, best = n, e.Name()
		}
	}
	if best == "" {
		return ""
	}
	return filepath.Join(dir, best)
}
