package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strconv"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"
)

// defaultScope matches the packages whose code can reach a published
// result: the root package, the analysis pipeline under internal/, the
// resilience layer (client fabric, serve daemon, fault injector — their
// retry/hedge/injection schedules must replay from seeds, not wall time),
// and the cmd/ tools that print tables and figures. Everything else (test
// files, the lint suite itself, examples) may use ambient nondeterminism
// freely.
const defaultScope = `^pubtac(/client|/internal/(cache|proc|mbpta|evt|stats|tac|core|pub|experiment|rng|trace|program|malardalen|serve|fault)|/cmd/[^/]+)?$`

// Detrand forbids ambient nondeterminism in result-affecting packages:
// math/rand and crypto/rand imports, time.Now/time.Since calls, and range
// over maps. Escape with "//pubtac:nondeterministic <reason>".
var Detrand = &analysis.Analyzer{
	Name: "detrand",
	Doc: "forbid ambient randomness, wall-clock reads and sleeps, and map iteration in result-affecting packages\n\n" +
		"All randomness must derive from the seed-threaded internal/rng generators and all\n" +
		"iteration whose order can reach a result must be defined; escape deliberate uses\n" +
		"with //pubtac:nondeterministic <reason>.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runDetrand,
}

var detrandScope string

func init() {
	Detrand.Flags.StringVar(&detrandScope, "scope", defaultScope,
		"regexp of result-affecting package paths the analyzer applies to")
}

// bannedImports are the ambient randomness sources. internal/rng wraps
// splitmix64/xoshiro256** seeded from campaign roots; nothing else may draw.
var bannedImports = map[string]string{
	"math/rand":    "seed-derived internal/rng",
	"math/rand/v2": "seed-derived internal/rng",
	"crypto/rand":  "seed-derived internal/rng",
}

// bannedCalls are wall-clock reads and sleeps, each mapped to the advice
// the finding carries. Benchmark timing belongs in _test.go files (which
// are exempt) or behind an escape directive; backoff and hedge pacing
// belong behind an injected Clock so tests replay them instantly.
var bannedCalls = map[string]string{
	"time.Now":   "results must not depend on the wall clock",
	"time.Since": "results must not depend on the wall clock",
	"time.Until": "results must not depend on the wall clock",
	"time.Sleep": "uncancellable wall-clock sleep; pace through an injected Clock (fault.Real in production, fault.Fake in tests)",
}

func runDetrand(pass *analysis.Pass) (interface{}, error) {
	scope, err := regexp.Compile(detrandScope)
	if err != nil {
		return nil, err
	}
	if !scope.MatchString(pass.Pkg.Path()) {
		return nil, nil
	}
	esc := collectEscapes(pass)

	for _, f := range pass.Files {
		if isTestFile(pass, f.Pos()) {
			continue
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if repl, banned := bannedImports[path]; banned && !esc.covers("nondeterministic", imp) {
				pass.Reportf(imp.Pos(), "import of %s in result-affecting package: draw from %s instead", path, repl)
			}
		}
	}

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	nodeFilter := []ast.Node{(*ast.CallExpr)(nil), (*ast.RangeStmt)(nil)}
	ins.Preorder(nodeFilter, func(n ast.Node) {
		if isTestFile(pass, n.Pos()) {
			return
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			fn, ok := typeutil.Callee(pass.TypesInfo, n).(*types.Func)
			if !ok {
				return
			}
			msg, banned := bannedCalls[fn.FullName()]
			if !banned {
				return
			}
			if !esc.covers("nondeterministic", n) {
				pass.Reportf(n.Pos(), "%s in result-affecting package: %s", fn.FullName(), msg)
			}
		case *ast.RangeStmt:
			tv := pass.TypesInfo.TypeOf(n.X)
			if tv == nil {
				return
			}
			if _, isMap := tv.Underlying().(*types.Map); !isMap {
				return
			}
			if !esc.covers("nondeterministic", n) {
				pass.Reportf(n.Pos(), "range over map in result-affecting package: iteration order is randomized; iterate a sorted key slice or escape with //pubtac:nondeterministic <reason>")
			}
		}
	})
	return nil, nil
}
