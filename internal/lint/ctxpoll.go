package lint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// Ctxpoll enforces the Session API's cancellation contract: an exported
// function that accepts a context.Context promises to stop promptly when it
// is cancelled, so every loop that could run long — a non-range for loop,
// or a range over a channel — must either consult the context (ctx.Err,
// ctx.Done, a select) or hand it to a callee that does. Bounded range loops
// over slices and maps are exempt; so are _test.go files. Escape with
// "//pubtac:nopoll <reason>".
var Ctxpoll = &analysis.Analyzer{
	Name: "ctxpoll",
	Doc: "exported context-taking functions must keep their unbounded loops cancellable\n\n" +
		"Each non-range for loop (and each range over a channel) in such a function must\n" +
		"reference the context — checking ctx.Err()/ctx.Done() or passing ctx to a callee;\n" +
		"escape provably short loops with //pubtac:nopoll <reason>.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runCtxpoll,
}

func runCtxpoll(pass *analysis.Pass) (interface{}, error) {
	esc := collectEscapes(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if !fd.Name.IsExported() || fd.Body == nil || isTestFile(pass, fd.Pos()) {
			return
		}
		ctxObjs := contextParams(pass, fd)
		if len(ctxObjs) == 0 {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			var loop ast.Node
			switch n := n.(type) {
			case *ast.ForStmt:
				loop = n
			case *ast.RangeStmt:
				// Ranging over a channel is as unbounded as for {}; every
				// other range is bounded by its operand's current length.
				if t := pass.TypesInfo.TypeOf(n.X); t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						loop = n
					}
				}
			}
			if loop == nil {
				return true
			}
			if usesAny(pass, loop, ctxObjs) || esc.covers("nopoll", loop) {
				return true
			}
			pass.Reportf(loop.Pos(), "loop in exported context-taking function %s never consults its context: check ctx.Err()/ctx.Done() or pass ctx to a callee so cancellation stays block-granular", fd.Name.Name)
			return true
		})
	})
	return nil, nil
}

// contextParams returns the declared objects of fd's context.Context
// parameters.
func contextParams(pass *analysis.Pass, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	for _, field := range fd.Type.Params.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		if t == nil || !isContextType(t) {
			continue
		}
		for _, name := range field.Names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil {
				out = append(out, obj)
			}
		}
	}
	return out
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// usesAny reports whether any identifier under n refers to one of objs.
func usesAny(pass *analysis.Pass, n ast.Node, objs []types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		use := pass.TypesInfo.Uses[id]
		if use == nil {
			return true
		}
		for _, obj := range objs {
			if use == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
