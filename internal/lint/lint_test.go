package lint_test

import (
	"testing"

	"pubtac/internal/lint"
	"pubtac/internal/lint/linttest"
)

// Each analyzer gets at least one failing case (a package whose findings
// are pinned by want comments) and one passing case (a package or file
// that must stay silent: out-of-scope code, directive escapes, test files,
// pool-mediated goroutines).

func TestDetrand(t *testing.T) {
	if err := lint.Detrand.Flags.Set("scope", "^detrand/a$"); err != nil {
		t.Fatal(err)
	}
	linttest.Run(t, "testdata", lint.Detrand, "detrand/a")
	linttest.Run(t, "testdata", lint.Detrand, "detrand/outside")
}

// TestDetrandBackoff pins the time.Sleep ban on the shape that motivated
// it: wall-clock retry pacing is flagged, the injected-clock twin of the
// same policy is silent.
func TestDetrandBackoff(t *testing.T) {
	if err := lint.Detrand.Flags.Set("scope", "^detrand/backoff$"); err != nil {
		t.Fatal(err)
	}
	linttest.Run(t, "testdata", lint.Detrand, "detrand/backoff")
}

func TestPoolonly(t *testing.T) {
	if err := lint.Poolonly.Flags.Set("pool", "poolonly/pool"); err != nil {
		t.Fatal(err)
	}
	linttest.Run(t, "testdata", lint.Poolonly, "poolonly/a")
	linttest.Run(t, "testdata", lint.Poolonly, "poolonly/pool")
}

func TestCtxpoll(t *testing.T) {
	linttest.Run(t, "testdata", lint.Ctxpoll, "ctxpoll/a")
}

func TestOraclepair(t *testing.T) {
	linttest.Run(t, "testdata", lint.Oraclepair, "oraclepair/good")
	linttest.Run(t, "testdata", lint.Oraclepair, "oraclepair/bad")
}

func TestSortedview(t *testing.T) {
	linttest.Run(t, "testdata", lint.Sortedview, "sortedview/a")
}

func TestBenchgate(t *testing.T) {
	linttest.Run(t, "testdata", lint.Benchgate, "benchgate/good")
	linttest.Run(t, "testdata", lint.Benchgate, "benchgate/bad")
}

func TestSuiteComplete(t *testing.T) {
	as := lint.Analyzers()
	if len(as) != 6 {
		t.Fatalf("Analyzers() = %d analyzers, want 6", len(as))
	}
	seen := map[string]bool{}
	for _, a := range as {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q incomplete (empty doc or missing run)", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}
