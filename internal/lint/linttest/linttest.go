// Package linttest runs pubtacvet analyzers over testdata packages and
// compares their diagnostics against analysistest-style "// want" comment
// expectations. It is a minimal stand-in for
// golang.org/x/tools/go/analysis/analysistest, which depends on go/packages
// and is not part of the toolchain's vendored x/tools subset this module
// builds against; the expectation syntax is the same, so tests port
// verbatim if the full dependency ever lands.
//
// Layout follows analysistest: Run(t, dir, a, "path") loads the package in
// dir/src/path (every *.go file, _test.go included — the oraclepair
// analyzer's test-mention rule needs them), type-checks it with a source
// importer (testdata packages may import each other and the standard
// library), runs the analyzer, and requires an exact match between reported
// diagnostics and the want expectations on their lines.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run analyzes the package at dir/src/pkgpath with a and reports
// expectation mismatches as test errors, analysistest-style.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	ld := &loader{fset: token.NewFileSet(), dir: dir, pkgs: make(map[string]*loaded)}
	lp, err := ld.load(pkgpath)
	if err != nil {
		t.Fatalf("loading %s: %v", pkgpath, err)
	}
	diags, err := runAnalyzer(a, ld.fset, lp)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkgpath, err)
	}
	checkExpectations(t, ld.fset, lp.files, diags)
}

// loaded is one type-checked testdata package.
type loaded struct {
	pkg   *types.Package
	info  *types.Info
	files []*ast.File
}

// loader parses and type-checks testdata packages, resolving imports of
// sibling testdata packages recursively and everything else through the
// toolchain's source importer.
type loader struct {
	fset *token.FileSet
	dir  string
	pkgs map[string]*loaded
	std  types.Importer
}

func (ld *loader) load(path string) (*loaded, error) {
	if lp, ok := ld.pkgs[path]; ok {
		return lp, nil
	}
	srcDir := filepath.Join(ld.dir, "src", filepath.FromSlash(path))
	entries, err := os.ReadDir(srcDir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(srcDir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", srcDir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	cfg := &types.Config{Importer: importerFunc(ld.importPkg)}
	pkg, err := cfg.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, err
	}
	lp := &loaded{pkg: pkg, info: info, files: files}
	ld.pkgs[path] = lp
	return lp, nil
}

func (ld *loader) importPkg(path string) (*types.Package, error) {
	if _, err := os.Stat(filepath.Join(ld.dir, "src", filepath.FromSlash(path))); err == nil {
		lp, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return lp.pkg, nil
	}
	if ld.std == nil {
		ld.std = importer.ForCompiler(ld.fset, "source", nil)
	}
	return ld.std.Import(path)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// runAnalyzer evaluates a's Requires graph (the suite only depends on the
// inspect pass) and collects its diagnostics.
func runAnalyzer(a *analysis.Analyzer, fset *token.FileSet, lp *loaded) ([]analysis.Diagnostic, error) {
	results := make(map[*analysis.Analyzer]interface{})
	var diags []analysis.Diagnostic
	var run func(a *analysis.Analyzer, record bool) error
	run = func(a *analysis.Analyzer, record bool) error {
		if _, done := results[a]; done {
			return nil
		}
		for _, req := range a.Requires {
			if err := run(req, false); err != nil {
				return err
			}
		}
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      lp.files,
			Pkg:        lp.pkg,
			TypesInfo:  lp.info,
			TypesSizes: types.SizesFor("gc", "amd64"),
			ResultOf:   results,
			Report: func(d analysis.Diagnostic) {
				if record {
					diags = append(diags, d)
				}
			},
		}
		res, err := a.Run(pass)
		if err != nil {
			return fmt.Errorf("%s: %w", a.Name, err)
		}
		results[a] = res
		return nil
	}
	if err := run(a, true); err != nil {
		return nil, err
	}
	return diags, nil
}

// want is one expectation: a regexp that must match a diagnostic on line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// want expectations accept analysistest's two string forms: double-quoted
// (with \" escapes) and backquoted.
var wantRe = regexp.MustCompile("want(\\s+(\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`))+\\s*$")
var quotedRe = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// checkExpectations matches diagnostics against // want comments, erroring
// on unexpected diagnostics and unmatched expectations.
func checkExpectations(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindString(c.Text)
				if m == "" {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range quotedRe.FindAllStringSubmatch(m, -1) {
					text := q[2] // backquoted form: taken verbatim
					if q[1] != "" || q[2] == "" {
						text = unquote(q[1])
					}
					re, err := regexp.Compile(text)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, text, err)
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: text})
				}
			}
		}
	}
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.raw)
		}
	}
}

// unquote interprets the escape sequences of a double-quoted want string
// (analysistest uses Go string syntax inside the quotes).
func unquote(s string) string {
	return strings.NewReplacer(`\"`, `"`, `\\`, `\`).Replace(s)
}
