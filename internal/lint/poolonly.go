package lint

import (
	"go/ast"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// Poolonly forbids bare go statements outside the worker-pool package.
// Results are worker-count-invariant because every fan-out is an
// index-addressed pool dispatch (each worker writes result slot i of work
// item i, and errors propagate deterministically); a stray goroutine is how
// that property silently dies. Escape with
// "//pubtac:nondeterministic <reason>".
var Poolonly = &analysis.Analyzer{
	Name: "poolonly",
	Doc: "forbid bare go statements outside internal/pool\n\n" +
		"All fan-out must use the index-addressed pool (pool.Group) so that results stay\n" +
		"worker-count-invariant; escape deliberate goroutines with\n" +
		"//pubtac:nondeterministic <reason>.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runPoolonly,
}

var poolPath string

func init() {
	Poolonly.Flags.StringVar(&poolPath, "pool", "pubtac/internal/pool",
		"import path of the one package allowed to spawn goroutines")
}

func runPoolonly(pass *analysis.Pass) (interface{}, error) {
	if pass.Pkg.Path() == poolPath {
		return nil, nil
	}
	esc := collectEscapes(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.GoStmt)(nil)}, func(n ast.Node) {
		if isTestFile(pass, n.Pos()) {
			return
		}
		if !esc.covers("nondeterministic", n) {
			pass.Reportf(n.Pos(), "bare go statement outside %s: fan out through pool.Group so results stay worker-count-invariant", poolPath)
		}
	})
	return nil, nil
}
