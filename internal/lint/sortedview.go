package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"
)

// Sortedview checks the sorted-view contract of the estimation entry
// points: a slice parameter whose name contains "sorted" (FitExpTailSorted,
// CheckIIDSorted, IIDState.ReportSorted, MergeSorted, ...) declares an
// ascending-sorted precondition, and the stats layer deliberately does not
// re-verify it on every call (that would erase the sort-once win). This
// analyzer traces each argument at such a position back to a sorted source:
//
//   - a call to a function or method whose name contains "sorted" (but not
//     "unsorted"): stats.SortedCopy, stats.MergeSorted, slices.Sorted, an
//     interface accessor like SampleView.TailSorted — producer names carry
//     the invariant the same way parameter names do;
//   - a call to a same-package helper all of whose return statements are
//     themselves sorted sources (taint through return: a merge helper
//     propagates provenance even without a Sorted-ish name);
//   - a field or method whose name contains "sorted" (mbpta's
//     Convergence.Sorted, ECDF's e.sorted — named fields carry the
//     invariant the same way named parameters do);
//   - a slice sorted in place by sort.Float64s / sort.Sort / slices.Sort;
//   - a composite literal whose elements are constants in ascending order,
//     or a nil slice (trivially sorted);
//   - a reslicing of any of the above; or
//   - another parameter that itself carries the "sorted" name, which
//     forwards the obligation to that function's own callers.
//
// Anything untraceable — a raw sample in run order, a merge done by hand —
// is exactly the stale-/unsorted-view misuse class the stats tests guard
// dynamically. Escape with "//pubtac:sorted <reason>" when sortedness holds
// for a reason the analyzer cannot see.
var Sortedview = &analysis.Analyzer{
	Name: "sortedview",
	Doc: "arguments to *Sorted entry points must be traceable to a sorted source\n\n" +
		"A []float64 parameter named *sorted* is an ascending-sorted-view precondition;\n" +
		"arguments must come from stats.SortedCopy/MergeSorted, a .Sorted field, an\n" +
		"in-place sort, or another *sorted* parameter. Escape with //pubtac:sorted <reason>.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runSortedview,
}

// sortedProducerName reports whether a callee name declares an
// ascending-sorted result by convention: it contains "sorted" (SortedCopy,
// MergeSorted, slices.Sorted, TailSorted accessors) without negating it
// ("unsorted"). Matched on the bare name so package helpers and interface
// methods qualify alike.
func sortedProducerName(name string) bool {
	l := strings.ToLower(name)
	return strings.Contains(l, "sorted") && !strings.Contains(l, "unsorted")
}

// inPlaceSorters sort their first argument in place.
var inPlaceSorters = map[string]bool{
	"sort.Float64s": true,
	"sort.Ints":     true,
	"sort.Strings":  true,
	"sort.Sort":     true,
	"sort.Stable":   true,
	"slices.Sort":   true,
}

func runSortedview(pass *analysis.Pass) (interface{}, error) {
	esc := collectEscapes(pass)
	// Function declarations of this package, for taint-through-return: a
	// call to a helper qualifies when every return it can take is itself a
	// sorted source.
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					decls[obj] = fd
				}
			}
		}
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		call := n.(*ast.CallExpr)
		fn := typeutil.Callee(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return true
		}
		for i := 0; i < sig.Params().Len() && i < len(call.Args); i++ {
			p := sig.Params().At(i)
			if !sortedParam(p) {
				continue
			}
			arg := call.Args[i]
			tr := &tracer{pass: pass, fn: enclosingFunc(stack), decls: decls,
				seen: make(map[types.Object]bool), tracing: make(map[*types.Func]bool)}
			if tr.sortedSource(arg) {
				continue
			}
			if esc.covers("sorted", call) {
				continue
			}
			pass.Reportf(arg.Pos(), "argument %q of %s must be an ascending-sorted view but is not traceable to one (stats.SortedCopy, stats.MergeSorted, a .Sorted field, an in-place sort, or a *sorted* parameter); escape with //pubtac:sorted <reason> if sortedness holds another way", p.Name(), fn.Name())
		}
		return true
	})
	return nil, nil
}

// sortedParam reports whether p declares a sorted-view precondition: a
// slice parameter whose name contains "sorted".
func sortedParam(p *types.Var) bool {
	if _, isSlice := p.Type().Underlying().(*types.Slice); !isSlice {
		return false
	}
	return strings.Contains(strings.ToLower(p.Name()), "sorted")
}

// enclosingFunc returns the innermost function declaration or literal on
// the inspector stack.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// tracer decides whether an expression is traceable to a sorted source
// within one function body (descending through same-package helper returns).
type tracer struct {
	pass    *analysis.Pass
	fn      ast.Node // enclosing FuncDecl/FuncLit; nil at package scope
	decls   map[*types.Func]*ast.FuncDecl
	seen    map[types.Object]bool
	tracing map[*types.Func]bool // recursion guard for taint-through-return
}

func (tr *tracer) sortedSource(e ast.Expr) bool {
	if tv, ok := tr.pass.TypesInfo.Types[e]; ok && tv.IsNil() {
		return true // a nil slice is trivially sorted
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return tr.sortedSource(e.X)
	case *ast.SliceExpr:
		return tr.sortedSource(e.X)
	case *ast.CallExpr:
		if fn := typeutil.Callee(tr.pass.TypesInfo, e); fn != nil {
			if sortedProducerName(fn.Name()) {
				return true
			}
			if f, ok := fn.(*types.Func); ok {
				return tr.returnsSorted(f)
			}
		}
		return false
	case *ast.SelectorExpr:
		// A field or method value whose name carries the invariant
		// (Convergence.Sorted, ECDF's unexported e.sorted).
		return strings.Contains(strings.ToLower(e.Sel.Name), "sorted")
	case *ast.CompositeLit:
		return tr.ascendingLiteral(e)
	case *ast.Ident:
		obj := tr.pass.TypesInfo.Uses[e]
		if obj == nil || tr.seen[obj] {
			return false
		}
		tr.seen[obj] = true
		if strings.Contains(strings.ToLower(obj.Name()), "sorted") && tr.isParam(obj) {
			return true
		}
		return tr.localSorted(obj)
	}
	return false
}

// returnsSorted reports whether fn is a same-package single-result helper
// all of whose return statements are sorted sources — provenance taints
// through the return even when the helper's name says nothing (the
// reservoir-merge helpers of the streaming summaries are the motivating
// case). Recursive helpers and naked returns stay untraceable.
func (tr *tracer) returnsSorted(fn *types.Func) bool {
	decl := tr.decls[fn]
	if decl == nil || decl.Body == nil || tr.tracing[fn] {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 {
		return false
	}
	tr.tracing[fn] = true
	defer delete(tr.tracing, fn)
	found, allSorted := false, true
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false // nested closures return for themselves
		}
		ret, isRet := n.(*ast.ReturnStmt)
		if !isRet {
			return true
		}
		found = true
		if len(ret.Results) != 1 {
			allSorted = false // naked return: untraceable
			return true
		}
		sub := &tracer{pass: tr.pass, fn: decl, decls: tr.decls,
			seen: make(map[types.Object]bool), tracing: tr.tracing}
		if !sub.sortedSource(ret.Results[0]) {
			allSorted = false
		}
		return true
	})
	return found && allSorted
}

// ascendingLiteral reports whether lit is a slice literal whose elements
// are all constants in non-decreasing order — sorted by inspection (the
// stats tests hand ReportSorted small literal views).
func (tr *tracer) ascendingLiteral(lit *ast.CompositeLit) bool {
	t := tr.pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return false
	}
	if _, isSlice := t.Underlying().(*types.Slice); !isSlice {
		return false
	}
	var prev constant.Value
	for _, el := range lit.Elts {
		if _, isKV := el.(*ast.KeyValueExpr); isKV {
			return false // sparse literal: element order is not textual order
		}
		tv, ok := tr.pass.TypesInfo.Types[el]
		if !ok || tv.Value == nil || tv.Value.Kind() == constant.Unknown {
			return false
		}
		if prev != nil && constant.Compare(prev, token.GTR, tv.Value) {
			return false
		}
		prev = tv.Value
	}
	return true
}

// isParam reports whether obj is a parameter of the enclosing function.
func (tr *tracer) isParam(obj types.Object) bool {
	sig := tr.enclosingSig()
	if sig == nil {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == obj {
			return true
		}
	}
	return false
}

func (tr *tracer) enclosingSig() *types.Signature {
	switch fn := tr.fn.(type) {
	case *ast.FuncDecl:
		if obj, ok := tr.pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
			return obj.Type().(*types.Signature)
		}
	case *ast.FuncLit:
		if sig, ok := tr.pass.TypesInfo.TypeOf(fn).(*types.Signature); ok {
			return sig
		}
	}
	return nil
}

// localSorted reports whether every assignment to obj inside the enclosing
// function is a sorted source, or the slice is sorted in place before use.
func (tr *tracer) localSorted(obj types.Object) bool {
	if tr.fn == nil {
		return false
	}
	assigned := false
	allSorted := true
	inPlace := false
	ast.Inspect(tr.fn, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				lobj := tr.pass.TypesInfo.Defs[id]
				if lobj == nil {
					lobj = tr.pass.TypesInfo.Uses[id]
				}
				if lobj != obj {
					continue
				}
				assigned = true
				// Position-matched rhs; multi-value assignments from one
				// call (x, err := f()) trace the call itself.
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				} else if len(n.Rhs) == 1 {
					rhs = n.Rhs[0]
				}
				if rhs == nil || !tr.sortedSource(rhs) {
					allSorted = false
				}
			}
		case *ast.CallExpr:
			if fn, ok := typeutil.Callee(tr.pass.TypesInfo, n).(*types.Func); ok && inPlaceSorters[fullName(fn)] {
				if len(n.Args) > 0 {
					if id, ok := n.Args[0].(*ast.Ident); ok && tr.pass.TypesInfo.Uses[id] == obj {
						inPlace = true
					}
				}
			}
		}
		return true
	})
	return inPlace || (assigned && allSorted)
}

func fullName(fn *types.Func) string {
	if pkg := fn.Pkg(); pkg != nil {
		return pkg.Name() + "." + fn.Name()
	}
	return fn.Name()
}
