package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Oraclepair mechanizes the fast-path/reference-oracle discipline: every
// declaration whose doc comment carries "//pubtac:fastpath <name>" must be
// matched by a "//pubtac:reference <name>" declaration in the same package,
// and at least one of the package's test files must mention both declared
// identifiers — the equivalence test that keeps the pair honest. The seed
// corpus is the four pairs PRs 2-5 established by hand: compiled vs.
// reference replay, batched vs. per-seed campaign, the incremental vs.
// one-shot i.i.d. battery, and indexed vs. reference TAC enumeration.
//
// The test-mention requirement is only evaluated when the pass includes
// test files (go vet analyzes each package twice, with and without its
// _test.go files; the check runs on the test-augmented unit so the plain
// unit does not false-positive).
var Oraclepair = &analysis.Analyzer{
	Name: "oraclepair",
	Doc: "every //pubtac:fastpath declaration needs a same-package //pubtac:reference and a test mentioning both\n\n" +
		"Fast paths are only trusted because a slower reference oracle shadows them and an\n" +
		"equivalence test compares the two; this analyzer refuses fast paths that lack\n" +
		"either half of that discipline.",
	Run: runOraclepair,
}

// pairDecl is one annotated declaration.
type pairDecl struct {
	ident string // declared identifier the annotation is attached to
	pos   token.Pos
}

func runOraclepair(pass *analysis.Pass) (interface{}, error) {
	fast := make(map[string]pairDecl)
	ref := make(map[string]pairDecl)

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				collectPairMarks(pass, d.Doc, d.Name, fast, ref)
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						collectPairMarks(pass, docOf(s.Doc, d), s.Name, fast, ref)
					case *ast.ValueSpec:
						if len(s.Names) > 0 {
							collectPairMarks(pass, docOf(s.Doc, d), s.Names[0], fast, ref)
						}
					}
				}
			}
		}
	}

	names := make([]string, 0, len(fast))
	for name := range fast {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fd := fast[name]
		rd, ok := ref[name]
		if !ok {
			pass.Reportf(fd.pos, "fastpath %q (%s) has no matching //pubtac:reference declaration in this package: every fast path keeps its slow arm as a runtime oracle", name, fd.ident)
			continue
		}
		if fd.ident == rd.ident {
			pass.Reportf(fd.pos, "fastpath %q marks the same declaration %s as its own reference", name, fd.ident)
			continue
		}
		checkTestMention(pass, name, fd, rd)
	}
	return nil, nil
}

// docOf prefers the spec's own doc comment, falling back to the enclosing
// GenDecl's (the usual place for single-spec declarations).
func docOf(specDoc *ast.CommentGroup, d *ast.GenDecl) *ast.CommentGroup {
	if specDoc != nil {
		return specDoc
	}
	return d.Doc
}

func collectPairMarks(pass *analysis.Pass, doc *ast.CommentGroup, name *ast.Ident,
	fast, ref map[string]pairDecl) {
	if doc == nil {
		return
	}
	for _, c := range doc.List {
		d, ok := parseDirective(c)
		if !ok || (d.verb != "fastpath" && d.verb != "reference") {
			continue
		}
		if d.args == "" {
			pass.Reportf(name.Pos(), "//pubtac:%s on %s needs a pair name argument", d.verb, name.Name)
			continue
		}
		dst := fast
		if d.verb == "reference" {
			dst = ref
		}
		if prev, dup := dst[d.args]; dup {
			pass.Reportf(name.Pos(), "duplicate //pubtac:%s %q (already on %s)", d.verb, d.args, prev.ident)
			continue
		}
		dst[d.args] = pairDecl{ident: name.Name, pos: name.Pos()}
	}
}

// checkTestMention requires one test file in the pass to mention both the
// fastpath and reference identifiers — in code or in a comment (equivalence
// tests that drive the pair through a mode switch like UseReference name
// the arms in their doc comments). Skipped when the pass has no test files
// (go vet's plain unit; the test-augmented unit runs the check).
func checkTestMention(pass *analysis.Pass, name string, fd, rd pairDecl) {
	sawTest := false
	fastRe := wordRe(fd.ident)
	refRe := wordRe(rd.ident)
	for _, f := range pass.Files {
		if !isTestFile(pass, f.Pos()) {
			continue
		}
		sawTest = true
		words := fileWords(f)
		if fastRe.MatchString(words) && refRe.MatchString(words) {
			return
		}
	}
	if !sawTest {
		return
	}
	pass.Reportf(fd.pos, "oracle pair %q has no test file mentioning both %s and %s: the pair needs an equivalence test", name, fd.ident, rd.ident)
}

func wordRe(ident string) *regexp.Regexp {
	return regexp.MustCompile(`\b` + regexp.QuoteMeta(ident) + `\b`)
}

// fileWords renders a test file's identifiers and comments into one
// searchable string.
func fileWords(f *ast.File) string {
	var b strings.Builder
	ast.Inspect(f, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			b.WriteString(id.Name)
			b.WriteByte(' ')
		}
		return true
	})
	for _, cg := range f.Comments {
		b.WriteString(cg.Text())
		b.WriteByte(' ')
	}
	return b.String()
}
