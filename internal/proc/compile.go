package proc

import (
	"pubtac/internal/cache"
	"pubtac/internal/rng"
	"pubtac/internal/trace"
)

// This file implements the compiled-trace fast path of the engine.
//
// A trace is replayed 10^5-10^6 times per campaign, so per-access work
// dominates the whole analysis. The reference replay pays, on every access:
// a byte-address shift, a pin lookup, and a Mix64 placement hash — even
// though under parametric random placement the set of a line is fixed for
// the duration of a run. Compilation hoists all of that out of the run
// loop: the trace is projected onto per-cache dense line IDs once, and each
// run evaluates the placement of each *distinct* line once, replaying the
// ID stream against flat ID-indexed set state.
//
// The compiled replay is bit-identical to the reference engine: it draws
// replacement victims and miss jitter from the same generators in the same
// order, and it writes the end-of-run cache state (contents, LRU
// timestamps, hit/miss counters) back into the Cache objects, so Misses(),
// pinning, and Run-followed-by-Replay behave exactly as before. The golden
// and equivalence tests in golden_test.go and compile_test.go enforce this.

// dataBit marks a stream token as a DL1 access; the low bits are the dense
// line ID within that cache.
const dataBit = 1 << 31

// invalidID is the sentinel stored in compiled set state for an empty way,
// replacing the reference engine's separate valid[] array. Line IDs are
// dense non-negative ints, so a single comparison covers both "occupied by
// another line" and "empty".
const invalidID = -1

// CompiledTrace is a trace pre-projected onto the line geometry of a
// platform model: per-cache distinct line addresses plus a stream of dense
// line IDs. Compile once, replay many times; a CompiledTrace is immutable
// and may be shared across engines and goroutines.
type CompiledTrace struct {
	il1    compiledSide
	dl1    compiledSide
	stream []uint32
}

// compiledSide is the per-cache projection: the distinct line addresses in
// first-appearance order (the dense ID of a line is its index), plus the
// geometry it was compiled against.
type compiledSide struct {
	lines []uint64
	sets  int
	ways  int
	shift uint // byte-address-to-line shift the projection used
}

// Len returns the number of accesses in the compiled stream.
func (ct *CompiledTrace) Len() int { return len(ct.stream) }

// DistinctLines returns the number of distinct IL1 and DL1 lines.
func (ct *CompiledTrace) DistinctLines() (il1, dl1 int) {
	return len(ct.il1.lines), len(ct.dl1.lines)
}

// SideLines returns the distinct line addresses of one cache side in
// first-appearance order — the dense ID of a line is its index. The slice
// is the compilation's own and must be treated as read-only; package tac
// builds its posting-list index on these IDs instead of re-projecting the
// trace through a map of its own.
func (ct *CompiledTrace) SideLines(k trace.Kind) []uint64 {
	if k == trace.Instr {
		return ct.il1.lines
	}
	return ct.dl1.lines
}

// SideIDs appends the dense line IDs of one cache side, in stream order,
// to dst and returns it — the side's line sequence in the ID space of
// SideLines.
func (ct *CompiledTrace) SideIDs(k trace.Kind, dst []int32) []int32 {
	if k == trace.Instr {
		for _, tok := range ct.stream {
			if tok&dataBit == 0 {
				dst = append(dst, int32(tok))
			}
		}
		return dst
	}
	for _, tok := range ct.stream {
		if tok&dataBit != 0 {
			dst = append(dst, int32(tok&^dataBit))
		}
	}
	return dst
}

// Compile projects tr onto the cache geometry of m. The result replays
// bit-identically to the reference engine on any engine built for the same
// model.
func Compile(tr trace.Trace, m Model) *CompiledTrace {
	ilShift, dlShift := m.IL1.LineShift(), m.DL1.LineShift()
	ct := &CompiledTrace{
		il1:    compiledSide{sets: m.IL1.Sets, ways: m.IL1.Ways, shift: ilShift},
		dl1:    compiledSide{sets: m.DL1.Sets, ways: m.DL1.Ways, shift: dlShift},
		stream: make([]uint32, len(tr)),
	}
	ilIDs := make(map[uint64]uint32)
	dlIDs := make(map[uint64]uint32)
	for i, a := range tr {
		if a.Kind == trace.Instr {
			line := a.Addr >> ilShift
			id, ok := ilIDs[line]
			if !ok {
				id = uint32(len(ct.il1.lines))
				ilIDs[line] = id
				ct.il1.lines = append(ct.il1.lines, line)
			}
			ct.stream[i] = id
		} else {
			line := a.Addr >> dlShift
			id, ok := dlIDs[line]
			if !ok {
				id = uint32(len(ct.dl1.lines))
				dlIDs[line] = id
				ct.dl1.lines = append(ct.dl1.lines, line)
			}
			ct.stream[i] = id | dataBit
		}
	}
	return ct
}

// sideState is an engine's per-cache replay scratch, reused across runs.
type sideState struct {
	setBase []int32  // line ID -> set*ways base index, computed once per run
	content []int32  // sets*ways line IDs, invalidID = empty way
	lruTick []uint64 // per-way last-touch tick (LRU replacement only)
	hits    uint64
	misses  uint64
	sparse  bool // only the sets reachable from setBase were cleared
}

// prepare sizes the scratch for side and computes this run's placement of
// every distinct line through cache.SetOf — the same pin, modulo and keyed
// hash logic as the reference engine, evaluated once per distinct line
// instead of once per access.
func (ss *sideState) prepare(side *compiledSide, c *cache.Cache) {
	if cap(ss.setBase) < len(side.lines) {
		ss.setBase = make([]int32, len(side.lines))
	}
	ss.setBase = ss.setBase[:len(side.lines)]
	nways := side.sets * side.ways
	if cap(ss.content) < nways {
		ss.content = make([]int32, nways)
		ss.lruTick = make([]uint64, nways)
	}
	ss.content = ss.content[:nways]
	ss.lruTick = ss.lruTick[:nways]

	ways := int32(side.ways)
	for id, line := range side.lines {
		ss.setBase[id] = int32(c.SetOf(line)) * ways
	}
	// Invalidate only what this run can read: the replay touches no set
	// outside setBase, so when the trace uses few distinct lines it is
	// cheaper to clear their sets (duplicates are idempotent) than the
	// whole array. writeBack skips unreachable sets under the same flag.
	if ss.sparse = len(side.lines)*side.ways < nways; ss.sparse {
		for _, base := range ss.setBase {
			for w := int32(0); w < ways; w++ {
				ss.content[base+w] = invalidID
			}
		}
	} else {
		for i := range ss.content {
			ss.content[i] = invalidID
		}
	}
	ss.hits, ss.misses = 0, 0
	// lruTick needs no reset: LRU victims are only ever chosen among ways
	// filled this run, whose ticks were all written this run (the reference
	// engine relies on the same property across its Flush).
}

// access replays one access with the full reference semantics (any
// associativity, random or LRU replacement). tick is the per-cache access
// counter, already incremented for this access.
func (ss *sideState) access(id int32, ways int, lru bool, rnd *rng.Xoshiro256, tick uint64) bool {
	base := ss.setBase[id]
	for w := int32(0); w < int32(ways); w++ {
		if ss.content[base+w] == id {
			ss.hits++
			ss.lruTick[base+w] = tick
			return true
		}
	}
	ss.misses++
	for w := int32(0); w < int32(ways); w++ {
		if ss.content[base+w] == invalidID {
			ss.content[base+w] = id
			ss.lruTick[base+w] = tick
			return false
		}
	}
	victim := int32(0)
	if !lru {
		victim = int32(rnd.Intn(ways))
	} else {
		oldest := ss.lruTick[base]
		for w := int32(1); w < int32(ways); w++ {
			if ss.lruTick[base+w] < oldest {
				oldest = ss.lruTick[base+w]
				victim = w
			}
		}
	}
	ss.content[base+victim] = id
	ss.lruTick[base+victim] = tick
	return false
}

// writeBack installs the end-of-run compiled state into the Cache object,
// making a compiled run indistinguishable from a reference replay: contents
// and counters match exactly, and under LRU so do the per-way timestamps.
// The engine calls it lazily — only when something actually reads the cache
// state — so campaigns never pay for it.
func (ss *sideState) writeBack(side *compiledSide, c *cache.Cache) {
	lines, valid, lru := c.RunState()
	install := func(idx int32) {
		if id := ss.content[idx]; id >= 0 {
			lines[idx] = side.lines[id]
			valid[idx] = true
			lru[idx] = ss.lruTick[idx]
		}
	}
	if ss.sparse {
		// Sets unreachable from setBase were neither cleared nor written;
		// their scratch content is stale and must not be installed.
		for _, base := range ss.setBase {
			for w := int32(0); w < int32(side.ways); w++ {
				install(base + w)
			}
		}
	} else {
		for idx := range ss.content {
			install(int32(idx))
		}
	}
	c.SetCounters(ss.hits+ss.misses, ss.hits, ss.misses)
}

// matches reports whether the projection was compiled for cache geometry
// cfg (same sets, ways and line size — everything Compile depends on).
func (cs *compiledSide) matches(cfg cache.Config) bool {
	return cs.sets == cfg.Sets && cs.ways == cfg.Ways && cs.shift == cfg.LineShift()
}

// SetCompiled installs ct, a shared compilation of tr, as this engine's
// compiled form of tr. A CompiledTrace is immutable, so one compilation can
// be handed to every campaign worker; each engine keeps only its private
// per-seed replay scratch. It panics when ct was compiled for a different
// cache geometry than the engine's model (programming error).
func (e *Engine) SetCompiled(ct *CompiledTrace, tr trace.Trace) {
	if !ct.il1.matches(e.model.IL1) || !ct.dl1.matches(e.model.DL1) {
		panic("proc: SetCompiled with a trace compiled for a different cache geometry")
	}
	e.ct, e.ctTrace = ct, tr
}

// compiledFor returns the compiled form of tr, reusing the cached one when
// tr is the same slice as on the previous call. Traces are treated as
// immutable throughout the repository (PUB builds new ones), so slice
// identity — same backing array, same length — is a sound cache key.
func (e *Engine) compiledFor(tr trace.Trace) *CompiledTrace {
	if e.ct != nil && len(tr) == len(e.ctTrace) &&
		(len(tr) == 0 || &tr[0] == &e.ctTrace[0]) {
		return e.ct
	}
	e.ct = Compile(tr, e.model)
	e.ctTrace = tr
	return e.ct
}

// RunCompiled executes ct as one program run with the given seed, exactly
// like Run on the trace ct was compiled from. ct must have been compiled
// for this engine's model.
func (e *Engine) RunCompiled(ct *CompiledTrace, seed uint64) uint64 {
	e.reseed(seed)
	return e.replayCompiled(ct)
}

// materialize flushes the pending compiled run state into the Cache
// objects. It is called lazily by every accessor that observes cache state
// (Misses, IL1, DL1, Replay), so back-to-back campaign runs skip the
// write-back entirely. A deferred batch-campaign restore (see
// CampaignBatchInto) is executed first: it replays the campaign's last run
// per-seed, which leaves its state pending here.
func (e *Engine) materialize() {
	if e.restoreCt != nil {
		ct := e.restoreCt
		e.restoreCt = nil
		e.RunCompiled(ct, e.restoreSeed)
	}
	if e.pending == nil {
		return
	}
	e.ils.writeBack(&e.pending.il1, e.il1)
	e.dls.writeBack(&e.pending.dl1, e.dl1)
	e.pending = nil
}

// replayCompiled replays ct against the freshly reseeded caches.
//
//pubtac:fastpath replay
func (e *Engine) replayCompiled(ct *CompiledTrace) uint64 {
	e.ils.prepare(&ct.il1, e.il1)
	e.dls.prepare(&ct.dl1, e.dl1)

	ilCfg, dlCfg := e.il1.Config(), e.dl1.Config()
	var cycles uint64
	if ilCfg.Ways == 2 && dlCfg.Ways == 2 &&
		ilCfg.Replacement == cache.RandomReplacement &&
		dlCfg.Replacement == cache.RandomReplacement {
		cycles = e.replay2WayRandom(ct)
	} else {
		cycles = e.replayGeneric(ct)
	}

	e.pending = ct
	return cycles
}

// cyclesFor converts classification counts into the additive timing model:
// the in-order pipeline's cost is linear in hits and misses, so the replay
// loops only classify accesses and the arithmetic happens once per run.
// jitterCycles carries the per-miss randomized jitter accumulated in replay
// order (zero when MissJitter is off).
func (e *Engine) cyclesFor(n int, hits, misses, jitterCycles uint64) uint64 {
	lat := e.model.Lat
	return lat.Issue*uint64(n) + lat.Hit*hits + lat.Miss*misses + jitterCycles
}

// replay2WayRandom is the specialized loop for the paper's platform — both
// caches 2-way with random replacement. With the set base precomputed per
// line, an access is two compares against the set's ways; LRU bookkeeping
// is skipped entirely (random replacement never reads it), and all state
// lives in locals so the loop compiles to straight register code.
func (e *Engine) replay2WayRandom(ct *CompiledTrace) uint64 {
	jitter := e.model.Lat.MissJitter
	ilSet, ilC := e.ils.setBase, e.ils.content
	dlSet, dlC := e.dls.setBase, e.dls.content
	ilRand, dlRand := e.il1.Rand(), e.dl1.Rand()
	var ilHits, ilMisses, dlHits, dlMisses, jcycles uint64
	for _, tok := range ct.stream {
		if tok&dataBit == 0 {
			id := int32(tok)
			base := ilSet[id]
			if ilC[base] == id || ilC[base+1] == id {
				ilHits++
				continue
			}
			ilMisses++
			switch {
			case ilC[base] == invalidID:
				ilC[base] = id
			case ilC[base+1] == invalidID:
				ilC[base+1] = id
			default:
				ilC[base+int32(ilRand.Intn(2))] = id
			}
		} else {
			id := int32(tok &^ dataBit)
			base := dlSet[id]
			if dlC[base] == id || dlC[base+1] == id {
				dlHits++
				continue
			}
			dlMisses++
			switch {
			case dlC[base] == invalidID:
				dlC[base] = id
			case dlC[base+1] == invalidID:
				dlC[base+1] = id
			default:
				dlC[base+int32(dlRand.Intn(2))] = id
			}
		}
		// Only reached on a miss (hits continue above).
		if jitter > 0 {
			jcycles += e.jitter.Uint64() % jitter
		}
	}
	e.ils.hits, e.ils.misses = ilHits, ilMisses
	e.dls.hits, e.dls.misses = dlHits, dlMisses
	return e.cyclesFor(len(ct.stream), ilHits+dlHits, ilMisses+dlMisses, jcycles)
}

// replayGeneric handles every policy combination (modulo placement, LRU
// replacement, other associativities) with full reference semantics.
func (e *Engine) replayGeneric(ct *CompiledTrace) uint64 {
	jitter := e.model.Lat.MissJitter
	ilCfg, dlCfg := e.il1.Config(), e.dl1.Config()
	ilLRU := ilCfg.Replacement == cache.LRUReplacement
	dlLRU := dlCfg.Replacement == cache.LRUReplacement
	ilRand, dlRand := e.il1.Rand(), e.dl1.Rand()
	var ilTick, dlTick, jcycles uint64
	for _, tok := range ct.stream {
		var hit bool
		if tok&dataBit == 0 {
			ilTick++
			hit = e.ils.access(int32(tok), ilCfg.Ways, ilLRU, ilRand, ilTick)
		} else {
			dlTick++
			hit = e.dls.access(int32(tok&^dataBit), dlCfg.Ways, dlLRU, dlRand, dlTick)
		}
		if !hit && jitter > 0 {
			jcycles += e.jitter.Uint64() % jitter
		}
	}
	hits := e.ils.hits + e.dls.hits
	misses := e.ils.misses + e.dls.misses
	return e.cyclesFor(len(ct.stream), hits, misses, jcycles)
}
