package proc

import (
	"testing"

	"pubtac/internal/cache"
	"pubtac/internal/trace"
)

// goldenTrace mixes a letter working set that overflows one set's
// associativity, a short instruction burst, and a strided data loop, so all
// of placement, replacement and both caches are exercised.
func goldenTrace() trace.Trace {
	return trace.Concat(
		trace.Repeat(trace.FromLetters("ABCDEFGHIJ", 32), 40),
		trace.I(0x40, 0x44, 0x48, 0x40, 0x44, 0x48),
		trace.Repeat(trace.D(0, 64, 128, 192, 0, 64), 30),
	)
}

// TestGoldenCampaignTimes pins the exact execution times of a fixed-seed
// campaign for every placement/replacement policy combination. The values
// were produced by the pre-compiled-path reference engine; any drift in
// seeding, placement hashing, replacement stream consumption or latency
// arithmetic — in either replay path — fails this test.
func TestGoldenCampaignTimes(t *testing.T) {
	tr := goldenTrace()
	combos := []struct {
		name string
		p    cache.PlacementPolicy
		r    cache.ReplacementPolicy
		want []uint64
	}{
		// random-random also enables MissJitter to pin the jitter stream.
		{"random-random", cache.RandomPlacement, cache.RandomReplacement,
			[]uint64{2914, 875, 871, 878, 864, 863, 867, 870}},
		{"random-lru", cache.RandomPlacement, cache.LRUReplacement,
			[]uint64{3682, 850, 850, 850, 850, 850, 850, 850}},
		{"modulo-random", cache.ModuloPlacement, cache.RandomReplacement,
			[]uint64{850, 850, 850, 850, 850, 850, 850, 850}},
		{"modulo-lru", cache.ModuloPlacement, cache.LRUReplacement,
			[]uint64{850, 850, 850, 850, 850, 850, 850, 850}},
	}
	for _, c := range combos {
		for _, ref := range []bool{false, true} {
			m := DefaultModel()
			m.IL1.Placement, m.IL1.Replacement = c.p, c.r
			m.DL1.Placement, m.DL1.Replacement = c.p, c.r
			if c.name == "random-random" {
				m.Lat.MissJitter = 4
			}
			e := NewEngine(m)
			e.UseReference(ref)
			times := e.Campaign(tr, len(c.want), 0xC0FFEE)
			for i, want := range c.want {
				if uint64(times[i]) != want {
					t.Errorf("%s (reference=%v) run %d: got %d, want %d",
						c.name, ref, i, uint64(times[i]), want)
				}
			}
		}
	}
}
