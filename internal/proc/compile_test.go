package proc

import (
	"testing"

	"pubtac/internal/cache"
	"pubtac/internal/rng"
	"pubtac/internal/trace"
)

// randomTrace builds a pseudo-random trace over a small address range so
// that set conflicts, reuse and both caches are all exercised.
func randomTrace(gen *rng.Xoshiro256, n int) trace.Trace {
	tr := make(trace.Trace, n)
	for i := range tr {
		a := trace.Access{Addr: uint64(gen.Intn(40)) * 8}
		if gen.Intn(3) == 0 {
			a.Kind = trace.Instr
		} else {
			a.Kind = trace.Data
		}
		tr[i] = a
	}
	return tr
}

// policyCombos enumerates the four placement/replacement combinations on
// the default geometry.
func policyCombos() []Model {
	var out []Model
	for _, p := range []cache.PlacementPolicy{cache.RandomPlacement, cache.ModuloPlacement} {
		for _, r := range []cache.ReplacementPolicy{cache.RandomReplacement, cache.LRUReplacement} {
			m := DefaultModel()
			m.IL1.Placement, m.IL1.Replacement = p, r
			m.DL1.Placement, m.DL1.Replacement = p, r
			out = append(out, m)
		}
	}
	return out
}

// assertRunsMatch runs seeds through a compiled and a reference engine and
// compares cycles and per-cache miss counts exactly: the equivalence test
// for the replay oracle pair, driving replayCompiled against Replay through
// the UseReference switch.
func assertRunsMatch(t *testing.T, label string, m Model, tr trace.Trace,
	setup func(e *Engine), seeds int) {
	t.Helper()
	fast := NewEngine(m)
	ref := NewEngine(m)
	ref.UseReference(true)
	if setup != nil {
		setup(fast)
		setup(ref)
	}
	for s := 0; s < seeds; s++ {
		seed := rng.Stream(0xE9, s)
		cf := fast.Run(tr, seed)
		cr := ref.Run(tr, seed)
		if cf != cr {
			t.Fatalf("%s: seed %d: compiled %d cycles, reference %d", label, s, cf, cr)
		}
		fi, fd := fast.Misses()
		ri, rd := ref.Misses()
		if fi != ri || fd != rd {
			t.Fatalf("%s: seed %d: compiled misses %d/%d, reference %d/%d",
				label, s, fi, fd, ri, rd)
		}
	}
}

// TestCompiledMatchesReference fuzzes the compiled replay against the
// reference engine over random traces, all policy combinations, and the
// randomized miss jitter.
func TestCompiledMatchesReference(t *testing.T) {
	gen := rng.New(0xC0DE)
	for i, m := range policyCombos() {
		for _, jitter := range []uint64{0, 5} {
			m := m
			m.Lat.MissJitter = jitter
			tr := randomTrace(gen, 400)
			assertRunsMatch(t, "combo", m, tr, nil, 25)
			_ = i
		}
	}
}

// TestCompiledMatchesReferenceHigherAssoc covers the generic replay loop
// with a 4-way geometry (the specialized loop only handles 2-way random).
func TestCompiledMatchesReferenceHigherAssoc(t *testing.T) {
	gen := rng.New(0xA550C)
	m := DefaultModel()
	m.IL1.Ways, m.IL1.Sets = 4, 32
	m.DL1.Ways, m.DL1.Sets = 4, 32
	assertRunsMatch(t, "4way-random", m, randomTrace(gen, 400), nil, 25)
	m.IL1.Replacement = cache.LRUReplacement
	m.DL1.Replacement = cache.LRUReplacement
	assertRunsMatch(t, "4way-lru", m, randomTrace(gen, 400), nil, 25)
}

// TestCompiledMatchesReferencePinned covers TAC-style pinned replays: a pin
// forces a line group into one set, bypassing the placement policy, and the
// compiled path must honor it identically.
func TestCompiledMatchesReferencePinned(t *testing.T) {
	gen := rng.New(0x9177)
	tr := randomTrace(gen, 500)
	m := DefaultModel()
	pinDL := func(e *Engine) {
		e.DL1().SetPin(&cache.Pin{Lines: map[uint64]bool{0: true, 1: true, 2: true}, Set: 7})
	}
	pinBoth := func(e *Engine) {
		e.IL1().SetPin(&cache.Pin{Lines: map[uint64]bool{0: true, 1: true}, Set: 0})
		e.DL1().SetPin(&cache.Pin{Lines: map[uint64]bool{3: true, 4: true, 5: true}, Set: 63})
	}
	assertRunsMatch(t, "pin-dl1", m, tr, pinDL, 25)
	assertRunsMatch(t, "pin-both", m, tr, pinBoth, 25)
	mj := m
	mj.Lat.MissJitter = 3
	assertRunsMatch(t, "pin-jitter", mj, tr, pinDL, 25)
}

// TestCompiledWriteBack verifies that a compiled Run leaves the caches in
// the exact state a reference run would: a Replay continuing from that
// state (no reseed) must produce identical cycles, and a pin installed
// between runs of the same trace must take effect (placement is
// re-evaluated per run even when the compilation is reused).
func TestCompiledWriteBack(t *testing.T) {
	gen := rng.New(0x3B)
	tr := randomTrace(gen, 300)
	cont := randomTrace(gen, 200)
	for _, m := range policyCombos() {
		fast := NewEngine(m)
		ref := NewEngine(m)
		ref.UseReference(true)
		for s := 0; s < 10; s++ {
			seed := rng.Stream(0x77, s)
			if cf, cr := fast.Run(tr, seed), ref.Run(tr, seed); cf != cr {
				t.Fatalf("run: %d vs %d", cf, cr)
			}
			if cf, cr := fast.Replay(cont), ref.Replay(cont); cf != cr {
				t.Fatalf("seed %d: replay after compiled run %d cycles, after reference %d",
					s, cf, cr)
			}
		}
	}

	// Same engine, same trace, pin installed mid-campaign.
	fast := NewEngine(DefaultModel())
	ref := NewEngine(DefaultModel())
	ref.UseReference(true)
	pin := &cache.Pin{Lines: map[uint64]bool{0: true, 1: true, 2: true}, Set: 5}
	for s := 0; s < 6; s++ {
		if s == 3 {
			fast.DL1().SetPin(pin)
			ref.DL1().SetPin(pin)
		}
		seed := rng.Stream(0x88, s)
		if cf, cr := fast.Run(tr, seed), ref.Run(tr, seed); cf != cr {
			t.Fatalf("pin mid-campaign, seed %d: %d vs %d", s, cf, cr)
		}
	}
}

// TestCompileStream sanity-checks the projection itself.
func TestCompileStream(t *testing.T) {
	tr := trace.Concat(trace.I(0x40, 0x44, 0x80), trace.D(0, 32, 0))
	ct := Compile(tr, DefaultModel())
	if ct.Len() != 6 {
		t.Fatalf("Len = %d, want 6", ct.Len())
	}
	// 0x40 and 0x44 share a 32-byte line; 0 and 32 do not.
	il, dl := ct.DistinctLines()
	if il != 2 || dl != 2 {
		t.Fatalf("distinct lines = %d/%d, want 2/2", il, dl)
	}
}

// TestRunNoAllocs checks the no-allocation property of steady-state runs
// (the jitter, placement and replacement generators are reseeded in place,
// and the compiled scratch is reused).
func TestRunNoAllocs(t *testing.T) {
	tr := goldenTrace()
	e := NewEngine(DefaultModel())
	e.Run(tr, 0) // warm up: compile + scratch allocation
	avg := testing.AllocsPerRun(50, func() {
		e.Run(tr, 1)
	})
	if avg != 0 {
		t.Fatalf("Run allocates %.1f objects per run, want 0", avg)
	}
}
