// Package proc models the evaluation platform's processor timing: a
// pipelined in-order core with separate first-level instruction (IL1) and
// data (DL1) caches, analogous to the LEON3-class platform of the paper.
//
// The model is trace-driven. For an in-order pipeline, execution time is
// additive in the cache behavior of the access stream: every access costs
// its hit latency when it hits and the memory latency when it misses; a
// fixed issue cost accounts for the pipeline's single-cycle throughput.
// This is exactly the level of detail MBPTA and TAC reason about: the
// mapping from (placement, replacement) randomness to execution-time
// variability.
//
// Before each run the caches are flushed and reseeded (random placement is
// parametric per run), matching the paper's measurement protocol.
package proc

import (
	"pubtac/internal/cache"
	"pubtac/internal/rng"
	"pubtac/internal/trace"
)

// Latency collects the cycle costs of the timing model.
type Latency struct {
	Issue uint64 // fixed per-access pipeline cost
	Hit   uint64 // additional cycles on an L1 hit
	Miss  uint64 // additional cycles on an L1 miss (memory access)

	// MissJitter adds a uniformly random 0..MissJitter-1 extra cycles to
	// every miss, modelling the randomized arbitration/bus jitter of
	// MBPTA-compliant platforms. Randomized jitter smooths the otherwise
	// purely discrete miss-count distribution, like the additional
	// randomization sources of the reference platforms.
	MissJitter uint64
}

// DefaultLatency returns the latencies used throughout the evaluation:
// single-cycle issue and hit, 25-cycle memory access. MissJitter is off by
// default; the ablation benchmarks exercise it.
func DefaultLatency() Latency { return Latency{Issue: 0, Hit: 1, Miss: 25} }

// Model describes a full platform configuration.
type Model struct {
	IL1 cache.Config
	DL1 cache.Config
	Lat Latency
}

// DefaultModel returns the paper's platform: 4KB 2-way 32B/line IL1 and DL1
// with random placement and replacement.
func DefaultModel() Model {
	return Model{IL1: cache.DefaultL1(), DL1: cache.DefaultL1(), Lat: DefaultLatency()}
}

// Deterministic returns the same geometry with modulo placement and LRU
// replacement (the time-deterministic contrast of Section 2).
func (m Model) Deterministic() Model {
	m.IL1.Placement = cache.ModuloPlacement
	m.IL1.Replacement = cache.LRUReplacement
	m.DL1.Placement = cache.ModuloPlacement
	m.DL1.Replacement = cache.LRUReplacement
	return m
}

// Per-run seed derivation salts: one run seed fans out into independent
// placement/replacement streams per cache plus the miss-jitter stream. The
// batched campaign replay (batch.go) derives the same streams for many run
// seeds at once, so these are named rather than inlined in reseed.
const (
	ilSeedSalt     = 0x11
	dlSeedSalt     = 0xDD
	jitterSeedSalt = 0x717
)

// Engine executes traces against one platform instance. It is not safe for
// concurrent use; create one Engine per goroutine (they are cheap).
type Engine struct {
	model  Model
	il1    *cache.Cache
	dl1    *cache.Cache
	jitter *rng.Xoshiro256

	// Compiled-trace fast path (see compile.go): the last compiled trace,
	// the trace it was compiled from (identity key), per-cache replay
	// scratch, the compiled run whose end state has not yet been written
	// back into the Cache objects, and the opt-out used by equivalence
	// tests.
	ct        *CompiledTrace
	ctTrace   trace.Trace
	ils, dls  sideState
	pending   *CompiledTrace
	reference bool

	// Batched campaign scratch (see batch.go), allocated on first use,
	// plus the deferred last-run replay that reconciles the engine's cache
	// state after a batch campaign whose final run stayed on the batched
	// path: the run is only executed when an accessor observes the state.
	batch       *batchState
	restoreCt   *CompiledTrace
	restoreSeed uint64
}

// NewEngine builds an execution engine for the model.
func NewEngine(m Model) *Engine {
	return &Engine{
		model:  m,
		il1:    cache.New(m.IL1, 0),
		dl1:    cache.New(m.DL1, 1),
		jitter: rng.New(2),
	}
}

// Model returns the engine's platform model.
func (e *Engine) Model() Model { return e.model }

// IL1 exposes the instruction cache (for pinning in TAC experiments). The
// returned handle reflects the last run's state as of this call; after
// another Run, call IL1 again rather than reading a retained pointer (the
// compiled fast path writes run state back lazily, at accessor calls).
func (e *Engine) IL1() *cache.Cache { e.materialize(); return e.il1 }

// DL1 exposes the data cache (for pinning in TAC experiments). The same
// retained-pointer caveat as IL1 applies.
func (e *Engine) DL1() *cache.Cache { e.materialize(); return e.dl1 }

// UseReference forces Run and Campaign through the uncompiled reference
// replay when on is true. The compiled fast path is bit-identical (that is
// what the equivalence tests assert, using this switch for the reference
// arm); production code has no reason to disable it.
func (e *Engine) UseReference(on bool) { e.reference = on }

// reseed starts a new run: caches are flushed and the placement,
// replacement and jitter streams are redrawn from the seed. All generators
// are reseeded in place — a run performs no heap allocations. Any
// not-yet-materialized compiled state is dropped, exactly as the flush
// would erase it.
func (e *Engine) reseed(seed uint64) {
	e.pending = nil
	e.restoreCt = nil
	e.il1.Reseed(rng.Mix64(seed ^ ilSeedSalt))
	e.dl1.Reseed(rng.Mix64(seed ^ dlSeedSalt))
	e.jitter.Reseed(rng.Mix64(seed ^ jitterSeedSalt))
}

// Run executes tr as one program run with the given seed: caches are
// flushed, the random placement and replacement streams are redrawn from the
// seed, and the trace is replayed. It returns the execution time in cycles.
//
// Run replays through the compiled fast path (see compile.go), compiling tr
// on first use and reusing the compilation across runs of the same trace;
// results are bit-identical to the reference replay.
func (e *Engine) Run(tr trace.Trace, seed uint64) uint64 {
	e.reseed(seed)
	if e.reference {
		return e.Replay(tr)
	}
	return e.replayCompiled(e.compiledFor(tr))
}

// Replay replays tr against the current cache state without reseeding or
// flushing, accumulating cycles. Use Run for whole-program measurements.
//
//pubtac:reference replay
func (e *Engine) Replay(tr trace.Trace) uint64 {
	e.materialize()
	lat := e.model.Lat
	var cycles uint64
	for _, a := range tr {
		var hit bool
		if a.Kind == trace.Instr {
			hit = e.il1.Access(a.Addr)
		} else {
			hit = e.dl1.Access(a.Addr)
		}
		cycles += lat.Issue
		if hit {
			cycles += lat.Hit
		} else {
			cycles += lat.Miss
			if lat.MissJitter > 0 {
				cycles += e.jitter.Uint64() % lat.MissJitter
			}
		}
	}
	return cycles
}

// Misses returns the IL1 and DL1 miss counts of the last Run.
func (e *Engine) Misses() (il1, dl1 uint64) {
	e.materialize()
	return e.il1.Misses(), e.dl1.Misses()
}

// Campaign runs tr n times with seeds derived from root via rng.Stream and
// returns the execution times in run order. It is the basic measurement
// campaign primitive; higher layers (mbpta) add convergence logic and
// parallelism.
func (e *Engine) Campaign(tr trace.Trace, n int, root uint64) []float64 {
	times := make([]float64, n)
	e.CampaignInto(tr, times, root, 0)
	return times
}

// CampaignInto fills dst with the execution times of runs offset,
// offset+1, ... of the campaign rooted at root. Because run i depends only
// on (root, i), campaigns can be split across engines and goroutines with
// bit-identical results.
//
// Unless UseReference is set, runs replay through the batched campaign path
// (see batch.go): BatchK seeds share each pass over the compiled stream.
// Results are bit-identical to a loop of per-seed Runs, and the engine's
// cache state afterwards reflects the campaign's last run either way.
//
//pubtac:reference campaign
func (e *Engine) CampaignInto(tr trace.Trace, dst []float64, root uint64, offset int) {
	if e.reference {
		for i := range dst {
			dst[i] = float64(e.Run(tr, rng.Stream(root, offset+i)))
		}
		return
	}
	e.CampaignBatchInto(tr, dst, root, offset)
}
