package proc

import (
	"testing"

	"pubtac/internal/cache"
	"pubtac/internal/stats"
	"pubtac/internal/trace"
)

func TestRunAllMisses(t *testing.T) {
	e := NewEngine(DefaultModel())
	// 4 distinct data lines, first touch: 4 misses, no hits.
	tr := trace.D(0, 32, 64, 96)
	cycles := e.Run(tr, 1)
	want := uint64(4 * 25)
	if cycles != want {
		t.Fatalf("cycles = %d, want %d", cycles, want)
	}
	if _, d := e.Misses(); d != 4 {
		t.Fatalf("DL1 misses = %d, want 4", d)
	}
}

func TestRunHitsAfterWarmup(t *testing.T) {
	e := NewEngine(DefaultModel())
	tr := trace.Concat(trace.D(0), trace.D(0), trace.D(0))
	cycles := e.Run(tr, 1)
	want := uint64(25 + 1 + 1)
	if cycles != want {
		t.Fatalf("cycles = %d, want %d", cycles, want)
	}
}

func TestInstrAndDataUseSeparateCaches(t *testing.T) {
	e := NewEngine(DefaultModel())
	// Same address as instruction and as data: both must cold-miss, since
	// IL1 and DL1 are separate.
	tr := trace.Concat(trace.I(0x40), trace.D(0x40))
	cycles := e.Run(tr, 2)
	if cycles != 50 {
		t.Fatalf("cycles = %d, want 50 (two cold misses)", cycles)
	}
	i, d := e.Misses()
	if i != 1 || d != 1 {
		t.Fatalf("misses = %d,%d want 1,1", i, d)
	}
}

func TestRunFlushesBetweenRuns(t *testing.T) {
	e := NewEngine(DefaultModel())
	tr := trace.D(0)
	c1 := e.Run(tr, 1)
	c2 := e.Run(tr, 1)
	if c1 != c2 || c1 != 25 {
		t.Fatalf("cache content leaked across runs: %d then %d", c1, c2)
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	e1 := NewEngine(DefaultModel())
	e2 := NewEngine(DefaultModel())
	tr := trace.Repeat(trace.FromLetters("ABCDEFGH", 32), 50)
	for seed := uint64(0); seed < 20; seed++ {
		if e1.Run(tr, seed) != e2.Run(tr, seed) {
			t.Fatalf("seed %d: runs differ", seed)
		}
	}
}

func TestRandomizationCreatesVariability(t *testing.T) {
	// On the randomized platform, a working set larger than one set's
	// associativity produces run-to-run execution time variability.
	e := NewEngine(DefaultModel())
	tr := trace.Repeat(trace.FromLetters("ABCDEFGHIJ", 32), 100)
	times := e.Campaign(tr, 200, 7)
	if stats.StdDev(times) == 0 {
		t.Fatal("no execution time variability on randomized platform")
	}
}

func TestDeterministicModelNoVariability(t *testing.T) {
	// Modulo+LRU: same trace, same time, every run.
	e := NewEngine(DefaultModel().Deterministic())
	tr := trace.Repeat(trace.FromLetters("ABCDEFGHIJ", 32), 100)
	times := e.Campaign(tr, 50, 7)
	for _, v := range times[1:] {
		if v != times[0] {
			t.Fatalf("deterministic platform produced variability: %v vs %v", v, times[0])
		}
	}
}

func TestCampaignLengthAndOrderIndependence(t *testing.T) {
	e := NewEngine(DefaultModel())
	tr := trace.FromLetters("ABCD", 32)
	times := e.Campaign(tr, 100, 3)
	if len(times) != 100 {
		t.Fatalf("len = %d", len(times))
	}
	// Run i depends only on (root, i): recompute run 50 standalone.
	single := NewEngine(DefaultModel())
	got := single.Campaign(tr, 51, 3)[50]
	if got != times[50] {
		t.Fatal("campaign runs are not independent of position")
	}
}

func TestPinnedConflictSlowsDown(t *testing.T) {
	// Pin 3 hot lines into one DL1 set (2 ways): the run must be slower
	// than the unpinned expectation.
	m := DefaultModel()
	e := NewEngine(m)
	hot := trace.Repeat(trace.D(0, 1*32, 2*32), 500)

	base := e.Campaign(hot, 50, 11)
	baseMean := stats.Mean(base)

	pinned := NewEngine(m)
	pinned.DL1().SetPin(&cache.Pin{Lines: map[uint64]bool{0: true, 1: true, 2: true}, Set: 0})
	pinnedTimes := pinned.Campaign(hot, 50, 11)
	pinnedMean := stats.Mean(pinnedTimes)

	if pinnedMean < baseMean*1.5 {
		t.Fatalf("pinned conflict mean %.0f not clearly above baseline %.0f", pinnedMean, baseMean)
	}
}

func BenchmarkRunSmallTrace(b *testing.B) {
	e := NewEngine(DefaultModel())
	tr := trace.Repeat(trace.FromLetters("ABCDEFGH", 32), 125) // 1000 accesses
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Run(tr, uint64(i))
	}
}
