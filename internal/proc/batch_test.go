package proc

import (
	"sync"
	"testing"

	"pubtac/internal/cache"
	"pubtac/internal/rng"
	"pubtac/internal/trace"
)

// wideTrace builds a pseudo-random trace over many distinct lines, so that
// under random placement most seeds overflow some set and must replay the
// stream (the analytic conflict-free path alone cannot answer the block).
func wideTrace(gen *rng.Xoshiro256, n int) trace.Trace {
	tr := make(trace.Trace, n)
	for i := range tr {
		a := trace.Access{Addr: uint64(gen.Intn(220)) * 32}
		if gen.Intn(3) == 0 {
			a.Kind = trace.Instr
		} else {
			a.Kind = trace.Data
		}
		tr[i] = a
	}
	return tr
}

// assertCampaignsMatch compares a batched campaign against a per-seed
// compiled campaign and the uncompiled reference engine, at several lengths
// (covering partial blocks, exact blocks and multi-block campaigns) and a
// non-zero offset.
func assertCampaignsMatch(t *testing.T, label string, m Model, tr trace.Trace,
	setup func(e *Engine)) {
	t.Helper()
	build := func(ref bool) *Engine {
		e := NewEngine(m)
		e.UseReference(ref)
		if setup != nil {
			setup(e)
		}
		return e
	}
	const root = 0xBA7C4
	for _, n := range []int{1, BatchK - 1, BatchK, BatchK + 3, 4 * BatchK, 4*BatchK + 5} {
		for _, offset := range []int{0, 13} {
			batch := make([]float64, n)
			build(false).CampaignBatchInto(tr, batch, root, offset)
			seed := make([]float64, n)
			perSeed := build(false)
			for i := range seed {
				seed[i] = float64(perSeed.Run(tr, rng.Stream(root, offset+i)))
			}
			ref := make([]float64, n)
			build(true).CampaignInto(tr, ref, root, offset)
			for i := range batch {
				if batch[i] != seed[i] || batch[i] != ref[i] {
					t.Fatalf("%s: n=%d offset=%d run %d: batch %v, per-seed %v, reference %v",
						label, n, offset, i, batch[i], seed[i], ref[i])
				}
			}
		}
	}
}

// TestBatchCampaignMatchesPerSeed is the bit-identity oracle of the batched
// replay: for every placement/replacement combination, with and without
// miss jitter, on both a conflict-heavy and a mostly-conflict-free trace,
// batch campaigns must equal per-seed compiled campaigns and the reference
// engine exactly.
func TestBatchCampaignMatchesPerSeed(t *testing.T) {
	gen := rng.New(0xBA7C)
	narrow := randomTrace(gen, 400) // few lines: mostly analytic path
	wide := wideTrace(gen, 600)     // many lines: mostly replay path
	for _, m := range policyCombos() {
		for _, jitter := range []uint64{0, 5} {
			m := m
			m.Lat.MissJitter = jitter
			assertCampaignsMatch(t, "narrow", m, narrow, nil)
			assertCampaignsMatch(t, "wide", m, wide, nil)
		}
	}
}

// TestBatchCampaignHigherAssoc covers the generic batched loop with a 4-way
// geometry (the specialized loop only handles 2-way random/random).
func TestBatchCampaignHigherAssoc(t *testing.T) {
	gen := rng.New(0x4A55)
	tr := wideTrace(gen, 500)
	m := DefaultModel()
	m.IL1.Ways, m.IL1.Sets = 4, 32
	m.DL1.Ways, m.DL1.Sets = 4, 32
	assertCampaignsMatch(t, "4way-random", m, tr, nil)
	m.IL1.Replacement = cache.LRUReplacement
	m.DL1.Replacement = cache.LRUReplacement
	assertCampaignsMatch(t, "4way-lru", m, tr, nil)
}

// TestBatchCampaignPinned covers TAC-style pinned campaigns: pins force a
// line group into one set across every seed of the block, including pins
// that overflow the associativity (forcing the replay path) and pins
// combined with jitter.
func TestBatchCampaignPinned(t *testing.T) {
	gen := rng.New(0x9199)
	tr := randomTrace(gen, 500)
	m := DefaultModel()
	pinOverflow := func(e *Engine) {
		e.DL1().SetPin(&cache.Pin{Lines: map[uint64]bool{0: true, 1: true, 2: true}, Set: 7})
	}
	pinBoth := func(e *Engine) {
		e.IL1().SetPin(&cache.Pin{Lines: map[uint64]bool{0: true, 1: true}, Set: 0})
		e.DL1().SetPin(&cache.Pin{Lines: map[uint64]bool{3: true, 4: true, 5: true}, Set: 63})
	}
	assertCampaignsMatch(t, "pin-overflow", m, tr, pinOverflow)
	assertCampaignsMatch(t, "pin-both", m, tr, pinBoth)
	mj := m
	mj.Lat.MissJitter = 3
	assertCampaignsMatch(t, "pin-jitter", mj, tr, pinOverflow)
}

// TestBatchCampaignStateRestore verifies that after a batched campaign the
// engine's observable cache state (miss counters, replay continuation) is
// exactly that of a per-seed campaign's last run, for both exact-block and
// partial-block campaign lengths.
func TestBatchCampaignStateRestore(t *testing.T) {
	gen := rng.New(0x57A7E)
	tr := wideTrace(gen, 400)
	cont := wideTrace(gen, 200)
	for _, m := range policyCombos() {
		for _, n := range []int{2 * BatchK, 2*BatchK + 3} {
			fast := NewEngine(m)
			ref := NewEngine(m)
			ref.UseReference(true)
			fast.CampaignInto(tr, make([]float64, n), 0xC0, 0)
			ref.CampaignInto(tr, make([]float64, n), 0xC0, 0)
			fi, fd := fast.Misses()
			ri, rd := ref.Misses()
			if fi != ri || fd != rd {
				t.Fatalf("n=%d: post-campaign misses %d/%d, reference %d/%d", n, fi, fd, ri, rd)
			}
			if cf, cr := fast.Replay(cont), ref.Replay(cont); cf != cr {
				t.Fatalf("n=%d: replay continuation %d cycles, reference %d", n, cf, cr)
			}
		}
	}
}

// TestSharedCompiledConcurrentWorkers replays one shared CompiledTrace from
// many goroutines at once — the campaign-worker topology of package mbpta —
// and checks the assembled campaign against a single-engine run. Run under
// -race, this is the data-race oracle for CompiledTrace immutability.
func TestSharedCompiledConcurrentWorkers(t *testing.T) {
	gen := rng.New(0x5AFE)
	tr := wideTrace(gen, 500)
	m := DefaultModel()
	ct := Compile(tr, m)

	const workers = 8
	const perWorker = 3 * BatchK
	const root = 0xFA2
	got := make([]float64, workers*perWorker)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			eng := NewEngine(m)
			eng.SetCompiled(ct, tr)
			eng.CampaignInto(tr, got[w*perWorker:(w+1)*perWorker], root, w*perWorker)
		}(w)
	}
	wg.Wait()

	want := NewEngine(m).Campaign(tr, workers*perWorker, root)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("run %d: concurrent workers %v, single engine %v", i, got[i], want[i])
		}
	}
}

// TestSetCompiledRejectsForeignGeometry pins the SetCompiled contract: a
// compilation for a different geometry (or line size) must be refused, and
// a matching one must be adopted without recompiling.
func TestSetCompiledRejectsForeignGeometry(t *testing.T) {
	tr := trace.FromLetters("ABCD", 32)
	m := DefaultModel()
	ct := Compile(tr, m)

	e := NewEngine(m)
	e.SetCompiled(ct, tr)
	if e.compiledFor(tr) != ct {
		t.Fatal("SetCompiled did not install the shared compilation")
	}

	other := m
	other.DL1.LineBytes = 16
	defer func() {
		if recover() == nil {
			t.Fatal("SetCompiled accepted a compilation for a different line size")
		}
	}()
	NewEngine(other).SetCompiled(ct, tr)
}

// TestBatchCampaignNoAllocs checks that steady-state batched campaigns do
// not allocate: scratch and generators are all reused across blocks.
func TestBatchCampaignNoAllocs(t *testing.T) {
	gen := rng.New(0xA110C)
	tr := wideTrace(gen, 300)
	e := NewEngine(DefaultModel())
	dst := make([]float64, 4*BatchK)
	e.CampaignInto(tr, dst, 1, 0) // warm up: compile + scratch allocation
	avg := testing.AllocsPerRun(20, func() {
		e.CampaignInto(tr, dst, 1, 0)
	})
	if avg != 0 {
		t.Fatalf("batched campaign allocates %.1f objects per call, want 0", avg)
	}
}
