package proc

import (
	"pubtac/internal/cache"
	"pubtac/internal/rng"
	"pubtac/internal/trace"
)

// This file implements the batched campaign replay: BatchK run seeds share
// every pass over the compiled ID stream, with struct-of-arrays set state.
//
// A campaign replays one immutable CompiledTrace 10^5-10^6 times, and after
// the per-seed compiled path the stream decode itself (token load, cache
// select, loop control) dominates: it is paid once per seed even though the
// stream never changes. The batch path replays BatchK seeds per pass, so
// the decode is amortized across the block, and the per-seed state the
// inner loop touches — set bases, set contents, replacement and jitter
// generators, hit/miss counters — is laid out per seed so the K-wide inner
// loop is straight-line over dense arrays.
//
// Two further consequences of batching:
//
//   - Placement is evaluated in one flat loop: for every distinct line, the
//     per-seed placement hashes (the same pin, modulo and keyed-hash logic
//     as cache.SetOf, with the pin and policy hoisted out) are computed for
//     all BatchK seeds back to back.
//   - While computing placements, the block tracks per-seed set occupancy.
//     A seed whose placement maps at most Ways distinct lines into every
//     set can never evict, so its run is fully determined without touching
//     the stream: every line's first access misses, everything else hits.
//     Such seeds are answered analytically (drawing the same number of
//     jitter values the replay would); only conflicted seeds replay the
//     stream. Under parametric random placement with working sets well
//     below capacity — the paper's platform on the evaluation benchmarks —
//     most runs take the analytic path.
//
// Every decision a replayed seed makes draws from the same generators in
// the same order as a per-seed Run with that seed, so batch campaigns are
// bit-identical to per-seed campaigns; batch_test.go enforces this against
// both the per-seed compiled path and the uncompiled reference engine.

// BatchK is the number of campaign seeds replayed per pass over the
// compiled stream. Callers that split campaigns into blocks (package mbpta)
// keep block sizes in multiples of BatchK so whole blocks stay on the
// batched path. 8 seeds keep the per-block set state (BatchK copies of both
// caches' contents) inside L1 alongside the stream.
const BatchK = 8

// batchSide is the struct-of-arrays replay state of one cache for a block
// of BatchK seeds. Slices indexed by [id*BatchK+k] hold per-line, per-seed
// values; slices of BatchK contiguous per-seed blocks hold set state.
type batchSide struct {
	keys    [BatchK]uint64         // per-seed placement hash keys
	rands   [BatchK]rng.Xoshiro256 // per-seed replacement streams
	hits    [BatchK]uint64
	misses  [BatchK]uint64
	setBase []int32  // [id*BatchK+k] -> k*sets*ways + set*ways
	content []int32  // BatchK blocks of sets*ways line IDs
	lruTick []uint64 // BatchK blocks of per-way ticks (LRU only)
	occ     []uint16 // [k*sets+set] distinct-line occupancy scratch
}

// batchState is an engine's batched-campaign scratch, reused across blocks.
type batchState struct {
	il, dl batchSide
	jgens  [BatchK]rng.Xoshiro256 // per-seed miss-jitter streams
	jsum   [BatchK]uint64         // per-seed accumulated jitter cycles
	seeds  [BatchK]uint64
	active [BatchK]int32 // seeds that need a stream replay this block
}

// CampaignBatchInto is CampaignInto on the batched replay path: it fills
// dst with runs offset.. of the campaign rooted at root, replaying BatchK
// seeds per pass over the compiled stream and answering conflict-free seeds
// analytically. Results are bit-identical to a loop of per-seed Runs. The
// trailing len(dst)%BatchK runs go through the per-seed path; when the
// length divides evenly, the last run's per-seed replay is deferred instead
// (restoreCt/restoreSeed) and executed by materialize only if an accessor
// actually observes the engine's post-campaign cache state — campaign
// drivers never do, so back-to-back blocks pay nothing for state fidelity.
//
//pubtac:fastpath campaign
func (e *Engine) CampaignBatchInto(tr trace.Trace, dst []float64, root uint64, offset int) {
	n := len(dst)
	if n == 0 {
		return
	}
	ct := e.compiledFor(tr)
	if e.batch == nil {
		e.batch = new(batchState)
	}
	i := 0
	for ; i+BatchK <= n; i += BatchK {
		e.runBatchBlock(ct, dst[i:i+BatchK], root, offset+i)
	}
	for ; i < n; i++ {
		dst[i] = float64(e.RunCompiled(ct, rng.Stream(root, offset+i)))
	}
	if n%BatchK == 0 {
		e.pending = nil
		e.restoreCt = ct
		e.restoreSeed = rng.Stream(root, offset+n-1)
	}
}

// runBatchBlock executes runs offset..offset+BatchK-1 into dst.
func (e *Engine) runBatchBlock(ct *CompiledTrace, dst []float64, root uint64, offset int) {
	b := e.batch
	for k := range b.seeds {
		b.seeds[k] = rng.Stream(root, offset+k)
	}
	conflict := b.il.placeBlock(&ct.il1, e.il1, &b.seeds, ilSeedSalt) |
		b.dl.placeBlock(&ct.dl1, e.dl1, &b.seeds, dlSeedSalt)

	jitter := e.model.Lat.MissJitter
	n := len(ct.stream)
	cold := len(ct.il1.lines) + len(ct.dl1.lines)
	clean := e.cyclesFor(n, uint64(n-cold), uint64(cold), 0)

	if jitter > 0 {
		for k := 0; k < BatchK; k++ {
			b.jgens[k].Reseed(rng.Mix64(b.seeds[k] ^ jitterSeedSalt))
			b.jsum[k] = 0
		}
	}

	active := b.active[:0]
	for k := 0; k < BatchK; k++ {
		switch {
		case conflict&(1<<k) != 0:
			active = append(active, int32(k))
		case jitter > 0:
			// A conflict-free run misses exactly on each line's first
			// access, so it draws exactly cold jitter values; their sum is
			// order-independent across the two caches' interleaving.
			g := &b.jgens[k]
			var js uint64
			for i := 0; i < cold; i++ {
				js += g.Uint64() % jitter
			}
			dst[k] = float64(clean + js)
		default:
			dst[k] = float64(clean)
		}
	}
	if len(active) == 0 {
		return
	}

	b.il.prepareReplay(&ct.il1, &b.seeds, active, ilSeedSalt)
	b.dl.prepareReplay(&ct.dl1, &b.seeds, active, dlSeedSalt)

	ilCfg, dlCfg := e.model.IL1, e.model.DL1
	if ilCfg.Ways == 2 && dlCfg.Ways == 2 &&
		ilCfg.Replacement == cache.RandomReplacement &&
		dlCfg.Replacement == cache.RandomReplacement {
		e.batchReplay2WayRandom(ct, active, jitter)
	} else {
		e.batchReplayGeneric(ct, active, jitter)
	}
	for _, k := range active {
		dst[k] = float64(e.cyclesFor(n,
			b.il.hits[k]+b.dl.hits[k], b.il.misses[k]+b.dl.misses[k], b.jsum[k]))
	}
}

// placeBlock sizes the side's scratch, computes every (line, seed) set base
// — the same pin, modulo and keyed-hash logic as cache.SetOf, with pin and
// policy hoisted out of the loop — and returns the bitmask of seeds whose
// placement overflows some set's associativity (those must replay; the rest
// cannot evict).
func (bs *batchSide) placeBlock(side *compiledSide, c *cache.Cache,
	seeds *[BatchK]uint64, salt uint64) uint32 {

	nl := len(side.lines)
	nways := side.sets * side.ways
	if cap(bs.setBase) < nl*BatchK {
		bs.setBase = make([]int32, nl*BatchK)
	}
	bs.setBase = bs.setBase[:nl*BatchK]
	if cap(bs.content) < nways*BatchK {
		bs.content = make([]int32, nways*BatchK)
		bs.lruTick = make([]uint64, nways*BatchK)
		bs.occ = make([]uint16, side.sets*BatchK)
	}
	bs.content = bs.content[:nways*BatchK]
	bs.lruTick = bs.lruTick[:nways*BatchK]
	bs.occ = bs.occ[:side.sets*BatchK]

	random := c.Config().Placement == cache.RandomPlacement
	if random {
		for k := 0; k < BatchK; k++ {
			bs.keys[k] = cache.PlacementKey(rng.Mix64(seeds[k] ^ salt))
		}
	}

	// More distinct lines than ways fit: the pigeonhole principle makes
	// every seed conflicted, so skip the occupancy bookkeeping.
	trackOcc := nl <= nways
	if trackOcc {
		for i := range bs.occ {
			bs.occ[i] = 0
		}
	}

	pin := c.Pin()
	mask := uint64(side.sets - 1)
	ways := int32(side.ways)
	block := int32(nways)
	maxOcc := uint16(side.ways)
	var conflict uint32
	if !trackOcc {
		conflict = (1 << BatchK) - 1
	}
	for id, line := range side.lines {
		row := id * BatchK
		if pin != nil && pin.Lines[line] {
			base := int32(pin.Set) * ways
			for k := int32(0); k < BatchK; k++ {
				bs.setBase[row+int(k)] = k*block + base
			}
			if trackOcc {
				for k := 0; k < BatchK; k++ {
					o := k*side.sets + pin.Set
					if bs.occ[o]++; bs.occ[o] > maxOcc {
						conflict |= 1 << k
					}
				}
			}
			continue
		}
		if !random {
			set := int32(line & mask)
			for k := int32(0); k < BatchK; k++ {
				bs.setBase[row+int(k)] = k*block + set*ways
			}
			if trackOcc {
				for k := 0; k < BatchK; k++ {
					o := k*side.sets + int(set)
					if bs.occ[o]++; bs.occ[o] > maxOcc {
						conflict |= 1 << k
					}
				}
			}
			continue
		}
		for k := 0; k < BatchK; k++ {
			set := int(rng.Mix64(line^bs.keys[k]) & mask)
			bs.setBase[row+k] = int32(k)*block + int32(set)*ways
			if trackOcc {
				o := k*side.sets + set
				if bs.occ[o]++; bs.occ[o] > maxOcc {
					conflict |= 1 << k
				}
			}
		}
	}
	return conflict
}

// prepareReplay readies the side's state for the seeds that must replay:
// replacement streams reseeded, counters cleared, and each active seed's
// reachable sets invalidated (the replay touches no set outside its
// setBase, mirroring sideState.prepare's sparse invalidation). lruTick
// needs no reset for the same reason as in the per-seed path: LRU victims
// are only chosen among ways filled this run.
func (bs *batchSide) prepareReplay(side *compiledSide, seeds *[BatchK]uint64,
	active []int32, salt uint64) {

	nl := len(side.lines)
	nways := side.sets * side.ways
	ways := int32(side.ways)
	sparse := nl*side.ways < nways
	for _, k := range active {
		bs.rands[k].Reseed(cache.ReplacementSeed(rng.Mix64(seeds[k] ^ salt)))
		bs.hits[k], bs.misses[k] = 0, 0
		if sparse {
			for id := 0; id < nl; id++ {
				base := bs.setBase[id*BatchK+int(k)]
				for w := int32(0); w < ways; w++ {
					bs.content[base+w] = invalidID
				}
			}
		} else {
			blk := bs.content[int(k)*nways : (int(k)+1)*nways]
			for i := range blk {
				blk[i] = invalidID
			}
		}
	}
}

// batchReplay2WayRandom is the batched form of replay2WayRandom (both
// caches 2-way with random replacement, the paper's platform): per token,
// the two-compare access runs for every active seed against that seed's
// state block before the next token is decoded.
func (e *Engine) batchReplay2WayRandom(ct *CompiledTrace, active []int32, jitter uint64) {
	b := e.batch
	il, dl := &b.il, &b.dl
	ilSet, ilC := il.setBase, il.content
	dlSet, dlC := dl.setBase, dl.content
	for _, tok := range ct.stream {
		if tok&dataBit == 0 {
			id := int32(tok)
			row := int(tok) * BatchK
			for _, k := range active {
				base := ilSet[row+int(k)]
				if ilC[base] == id || ilC[base+1] == id {
					il.hits[k]++
					continue
				}
				il.misses[k]++
				switch {
				case ilC[base] == invalidID:
					ilC[base] = id
				case ilC[base+1] == invalidID:
					ilC[base+1] = id
				default:
					ilC[base+int32(il.rands[k].Intn(2))] = id
				}
				if jitter > 0 {
					b.jsum[k] += b.jgens[k].Uint64() % jitter
				}
			}
		} else {
			id := int32(tok &^ dataBit)
			row := int(id) * BatchK
			for _, k := range active {
				base := dlSet[row+int(k)]
				if dlC[base] == id || dlC[base+1] == id {
					dl.hits[k]++
					continue
				}
				dl.misses[k]++
				switch {
				case dlC[base] == invalidID:
					dlC[base] = id
				case dlC[base+1] == invalidID:
					dlC[base+1] = id
				default:
					dlC[base+int32(dl.rands[k].Intn(2))] = id
				}
				if jitter > 0 {
					b.jsum[k] += b.jgens[k].Uint64() % jitter
				}
			}
		}
	}
}

// batchReplayGeneric is the batched form of replayGeneric: full reference
// semantics (any associativity, random or LRU replacement) for every active
// seed. The per-cache access tick is shared — it counts stream positions,
// which are identical across seeds.
func (e *Engine) batchReplayGeneric(ct *CompiledTrace, active []int32, jitter uint64) {
	b := e.batch
	ilCfg, dlCfg := e.model.IL1, e.model.DL1
	ilLRU := ilCfg.Replacement == cache.LRUReplacement
	dlLRU := dlCfg.Replacement == cache.LRUReplacement
	var ilTick, dlTick uint64
	for _, tok := range ct.stream {
		if tok&dataBit == 0 {
			ilTick++
			id := int32(tok)
			for _, k := range active {
				if !b.il.accessBatch(k, id, ilCfg.Ways, ilLRU, ilTick) && jitter > 0 {
					b.jsum[k] += b.jgens[k].Uint64() % jitter
				}
			}
		} else {
			dlTick++
			id := int32(tok &^ dataBit)
			for _, k := range active {
				if !b.dl.accessBatch(k, id, dlCfg.Ways, dlLRU, dlTick) && jitter > 0 {
					b.jsum[k] += b.jgens[k].Uint64() % jitter
				}
			}
		}
	}
}

// accessBatch replays one access for seed k with full reference semantics,
// mirroring sideState.access against the seed's state block.
func (bs *batchSide) accessBatch(k int32, id int32, ways int, lru bool, tick uint64) bool {
	base := bs.setBase[int(id)*BatchK+int(k)]
	for w := int32(0); w < int32(ways); w++ {
		if bs.content[base+w] == id {
			bs.hits[k]++
			bs.lruTick[base+w] = tick
			return true
		}
	}
	bs.misses[k]++
	for w := int32(0); w < int32(ways); w++ {
		if bs.content[base+w] == invalidID {
			bs.content[base+w] = id
			bs.lruTick[base+w] = tick
			return false
		}
	}
	victim := int32(0)
	if !lru {
		victim = int32(bs.rands[k].Intn(ways))
	} else {
		oldest := bs.lruTick[base]
		for w := int32(1); w < int32(ways); w++ {
			if bs.lruTick[base+w] < oldest {
				oldest = bs.lruTick[base+w]
				victim = w
			}
		}
	}
	bs.content[base+victim] = id
	bs.lruTick[base+victim] = tick
	return false
}
