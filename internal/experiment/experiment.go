// Package experiment regenerates every table and figure of the paper's
// evaluation (Section 3.3 and Section 4) from the simulator. Each generator
// returns typed rows/series that cmd/tables, cmd/figures and the repository
// benchmarks print.
//
// Campaign sizes scale with Options.Scale: 1.0 reproduces paper-sized
// campaigns (10^6-run ECCDFs, full R_pub+tac campaigns), smaller values
// shrink every campaign proportionally while keeping the analytic outputs
// (TAC run counts, probabilities) exact. EXPERIMENTS.md records the scale
// used for the checked-in results.
package experiment

import (
	"fmt"
	"math"

	"pubtac/internal/core"
	"pubtac/internal/malardalen"
	"pubtac/internal/mbpta"
	"pubtac/internal/proc"
	"pubtac/internal/stats"
	"pubtac/internal/tac"
)

// Options control experiment size and determinism.
type Options struct {
	// Scale multiplies every campaign size (1.0 = paper size).
	Scale float64
	// Workers bounds simulation parallelism (0 = GOMAXPROCS).
	Workers int
}

// DefaultOptions returns a laptop-friendly configuration (Scale 0.05).
func DefaultOptions() Options { return Options{Scale: 0.05} }

// scaled returns max(min, round(n*Scale)).
func (o Options) scaled(n int, min int) int {
	v := int(math.Round(float64(n) * o.Scale))
	if v < min {
		v = min
	}
	return v
}

// AnalyzerConfig builds the core configuration for the options.
func (o Options) AnalyzerConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.MBPTA.InitialRuns = o.scaled(1000, 200)
	cfg.MBPTA.Increment = o.scaled(1000, 200)
	cfg.MBPTA.MaxRuns = o.scaled(300000, 4000)
	cfg.MBPTA.Workers = o.Workers
	cfg.CampaignCap = o.scaled(700000, 6000)
	cfg.TAC = tac.DefaultConfig()
	return cfg
}

// Table1Row is one row of Table 1: the bs execution-time domain for one
// max-iteration input vector.
type Table1Row struct {
	Input    string  // v1, v3, ..., v15
	RPubK    float64 // R_pub in thousands
	RPTK     float64 // R_pub+tac in thousands
	PWCETPub float64 // pWCET@1e-12 with R_pub runs (PUB column)
	PWCETPT  float64 // pWCET@1e-12 with R_pub+tac runs (P+T column)
}

// Table1 regenerates Table 1: for each of bs's 8 maximum-iteration input
// vectors, the required runs and the pWCET at 10^-12 with PUB only versus
// PUB+TAC.
func Table1(opts Options) ([]Table1Row, error) {
	b := malardalen.BS()
	a := core.New(opts.AnalyzerConfig())
	var rows []Table1Row
	for _, in := range malardalen.BSMaxIterationInputs(b) {
		pa, err := a.AnalyzePath(b.Program, in)
		if err != nil {
			return nil, fmt.Errorf("table1 %s: %w", in.Name, err)
		}
		rows = append(rows, Table1Row{
			Input:    in.Name,
			RPubK:    float64(pa.RPub) / 1000,
			RPTK:     float64(pa.R) / 1000,
			PWCETPub: pa.PubOnly.PWCET(1e-12),
			PWCETPT:  pa.Full.PWCET(1e-12),
		})
	}
	return rows, nil
}

// Table2Row is one row of Table 2: run requirements for one benchmark.
type Table2Row struct {
	Benchmark string
	ROrigK    float64 // plain MBPTA on the original program (thousands)
	RPubK     float64 // MBPTA convergence on the pubbed program (thousands)
	RPTK      float64 // PUB+TAC requirement (thousands)
}

// Table2 regenerates Table 2: R_orig, R_pub and R_pub+tac for all 11
// benchmarks with their default input sets.
func Table2(opts Options) ([]Table2Row, error) {
	a := core.New(opts.AnalyzerConfig())
	var rows []Table2Row
	for _, b := range malardalen.All() {
		oa, err := a.AnalyzeOriginal(b.Program, b.Default())
		if err != nil {
			return nil, fmt.Errorf("table2 %s (orig): %w", b.Name, err)
		}
		pa, err := a.AnalyzePath(b.Program, b.Default())
		if err != nil {
			return nil, fmt.Errorf("table2 %s: %w", b.Name, err)
		}
		rows = append(rows, Table2Row{
			Benchmark: b.Name,
			ROrigK:    float64(oa.ROrig) / 1000,
			RPubK:     float64(pa.RPub) / 1000,
			RPTK:      float64(pa.R) / 1000,
		})
	}
	return rows, nil
}

// Series is a named ECCDF curve.
type Series struct {
	Name   string
	Points []stats.ECCDFPoint
}

// Figure1 generates the didactic pWCET/pETd picture of Figure 1(a): the
// empirical execution-time distribution of a small synthetic program on the
// randomized platform, and the pWCET curve upper-bounding it.
func Figure1(opts Options) ([]Series, error) {
	b := malardalen.CNT()
	res := b.Program.MustExec(b.Default())
	n := opts.scaled(200000, 4000)
	sample := mbpta.Collect(res.Trace, proc.DefaultModel(), n, mbpta.Seed("fig1"), opts.Workers)
	est, err := mbpta.NewEstimate(sample, mbpta.DefaultConfig())
	if err != nil {
		return nil, err
	}
	etd := stats.NewECDF(sample)
	curve := Series{Name: "pWCET"}
	for _, pt := range etd.Points() {
		if pt.Prob == 0 {
			continue
		}
		curve.Points = append(curve.Points, stats.ECCDFPoint{
			Value: est.Curve.ValueAt(pt.Prob), Prob: pt.Prob,
		})
	}
	// Extend the pWCET curve beyond the sample.
	for _, p := range []float64{1e-7, 1e-8, 1e-9, 1e-10, 1e-11, 1e-12} {
		curve.Points = append(curve.Points, stats.ECCDFPoint{Value: est.Curve.ValueAt(p), Prob: p})
	}
	return []Series{{Name: "pETd", Points: etd.Points()}, curve}, nil
}

// Figure2 regenerates Figure 2: the ECCDFs of bs's 8 original
// maximum-iteration paths and of the corresponding 8 pubbed paths; every
// pubbed curve upper-bounds every original curve. The paper uses 10^6 runs
// per path.
func Figure2(opts Options) ([]Series, error) {
	b := malardalen.BS()
	pubbed, _, err := pubTransform(b)
	if err != nil {
		return nil, err
	}
	runs := opts.scaled(1000000, 3000)
	model := proc.DefaultModel()
	var out []Series
	for _, in := range malardalen.BSMaxIterationInputs(b) {
		orig := b.Program.MustExec(in)
		sample := mbpta.Collect(orig.Trace, model, runs, mbpta.Seed("fig2/orig/"+in.Name), opts.Workers)
		out = append(out, Series{Name: "orig/" + in.Name, Points: stats.NewECDF(sample).Points()})
	}
	for _, in := range malardalen.BSMaxIterationInputs(b) {
		pr := pubbed.MustExec(in)
		sample := mbpta.Collect(pr.Trace, model, runs, mbpta.Seed("fig2/pub/"+in.Name), opts.Workers)
		out = append(out, Series{Name: "pub/" + in.Name, Points: stats.NewECDF(sample).Points()})
	}
	return out, nil
}

// Figure4Result holds the Figure 4 artifacts for bs input v9: the reference
// ECCDF (6e6 runs in the paper), and the pWCET curves obtained with R_pub
// and with R_pub+tac runs.
type Figure4Result struct {
	Reference Series // large-campaign ECCDF of the pubbed v9 path
	PubCurve  Series // pWCET from R_pub runs
	PTCurve   Series // pWCET from R_pub+tac runs
	RPub      int
	RPT       int
}

// Figure4 regenerates Figure 4. With only R_pub runs the abrupt ECCDF knee
// caused by a low-probability cache placement is missed; with R_pub+tac
// runs it is captured and the pWCET upper-bounds it.
func Figure4(opts Options) (*Figure4Result, error) {
	b := malardalen.BS()
	a := core.New(opts.AnalyzerConfig())
	in, err := b.Input("v9")
	if err != nil {
		return nil, err
	}
	pa, err := a.AnalyzePath(b.Program, in)
	if err != nil {
		return nil, err
	}
	pubbed, _, err := pubTransform(b)
	if err != nil {
		return nil, err
	}
	res := pubbed.MustExec(in)
	refRuns := opts.scaled(6000000, 20000)
	ref := mbpta.Collect(res.Trace, proc.DefaultModel(), refRuns, mbpta.Seed("fig4/ref"), opts.Workers)

	out := &Figure4Result{
		Reference: Series{Name: "ECCDF(6M-scaled)", Points: stats.NewECDF(ref).Points()},
		RPub:      pa.RPub,
		RPT:       pa.R,
	}
	out.PubCurve = curveSeries("pWCET(Rpub)", pa.PubOnly)
	out.PTCurve = curveSeries("pWCET(Rp+t)", pa.Full)
	return out, nil
}

func curveSeries(name string, est *mbpta.Estimate) Series {
	s := Series{Name: name}
	for _, exp := range []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12} {
		p := math.Pow(10, -exp)
		s.Points = append(s.Points, stats.ECCDFPoint{Value: est.PWCET(p), Prob: p})
	}
	return s
}

// Figure5Row is one bar group of Figure 5: pWCET estimates of PUB and
// PUB+TAC normalized to the plain-MBPTA estimate on the original program.
type Figure5Row struct {
	Benchmark string
	PubRatio  float64 // pWCET(PUB) / pWCET(orig) at 1e-12
	PTRatio   float64 // pWCET(PUB+TAC) / pWCET(orig) at 1e-12
}

// Figure5 regenerates Figure 5 for all 11 benchmarks.
func Figure5(opts Options) ([]Figure5Row, error) {
	a := core.New(opts.AnalyzerConfig())
	var rows []Figure5Row
	for _, b := range malardalen.All() {
		oa, err := a.AnalyzeOriginal(b.Program, b.Default())
		if err != nil {
			return nil, fmt.Errorf("figure5 %s (orig): %w", b.Name, err)
		}
		pa, err := a.AnalyzePath(b.Program, b.Default())
		if err != nil {
			return nil, fmt.Errorf("figure5 %s: %w", b.Name, err)
		}
		base := oa.Estimate.PWCET(1e-12)
		rows = append(rows, Figure5Row{
			Benchmark: b.Name,
			PubRatio:  pa.PubOnly.PWCET(1e-12) / base,
			PTRatio:   pa.Full.PWCET(1e-12) / base,
		})
	}
	return rows, nil
}

// Section31Result reproduces the two worked examples of Section 3.1.
type Section31Result struct {
	ROrig311 int // {ABCA}^1000      -> 0 extra runs
	RPub311  int // {ABCDEA}^1000    -> ~84873
	ROrig312 int // {ABCDEA}^1000    -> ~84873
	RPub312  int // {ABCDEFA}^1000   -> ~14137
}

// Section31 recomputes the worked examples with TAC on the 8-set 4-way
// cache of Section 3.1.
func Section31() (*Section31Result, error) {
	cacheCfg := proc.DefaultModel()
	cacheCfg.IL1.Sets, cacheCfg.IL1.Ways = 8, 4
	cacheCfg.DL1.Sets, cacheCfg.DL1.Ways = 8, 4
	cfg := tac.DefaultConfig()
	runs := func(letters string) (int, error) {
		tr := repeatLetters(letters, 1000)
		an, err := tac.Analyze(tr, cacheCfg, cfg)
		if err != nil {
			return 0, err
		}
		return an.MinRuns, nil
	}
	var out Section31Result
	var err error
	if out.ROrig311, err = runs("ABCA"); err != nil {
		return nil, err
	}
	if out.RPub311, err = runs("ABCDEA"); err != nil {
		return nil, err
	}
	out.ROrig312 = out.RPub311
	if out.RPub312, err = runs("ABCDEFA"); err != nil {
		return nil, err
	}
	return &out, nil
}
