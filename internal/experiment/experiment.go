// Package experiment regenerates every table and figure of the paper's
// evaluation (Section 3.3 and Section 4) from the simulator. Each generator
// returns typed rows/series that cmd/tables, cmd/figures and the repository
// benchmarks print.
//
// Campaign sizes scale with Options.Scale: 1.0 reproduces paper-sized
// campaigns (10^6-run ECCDFs, full R_pub+tac campaigns), smaller values
// shrink every campaign proportionally while keeping the analytic outputs
// (TAC run counts, probabilities) exact. EXPERIMENTS.md records the scale
// used for the checked-in results.
package experiment

import (
	"context"
	"fmt"
	"math"
	"runtime"

	"pubtac/internal/core"
	"pubtac/internal/malardalen"
	"pubtac/internal/mbpta"
	"pubtac/internal/pool"
	"pubtac/internal/proc"
	"pubtac/internal/program"
	"pubtac/internal/stats"
	"pubtac/internal/tac"
)

// Options control experiment size and determinism.
type Options struct {
	// Scale multiplies every campaign size (1.0 = paper size).
	Scale float64
	// Workers bounds total simulation parallelism across a generator's
	// concurrent campaigns (0 = GOMAXPROCS). Every generator honors it
	// uniformly; outputs are identical at any worker count.
	Workers int
}

// DefaultOptions returns a laptop-friendly configuration (Scale 0.05).
func DefaultOptions() Options { return Options{Scale: 0.05} }

// scaled returns max(min, round(n*Scale)).
func (o Options) scaled(n int, min int) int {
	v := int(math.Round(float64(n) * o.Scale))
	if v < min {
		v = min
	}
	return v
}

// budget resolves the worker option to a concrete parallelism budget.
func (o Options) budget() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// AnalyzerConfig builds the core configuration for the options, using the
// shared core scaling policy so experiment campaigns match Session
// campaigns at equal scales.
func (o Options) AnalyzerConfig() core.Config {
	cfg := core.DefaultConfig().Scaled(o.Scale)
	cfg.MBPTA.Workers = o.Workers
	return cfg
}

// Table1Row is one row of Table 1: the bs execution-time domain for one
// max-iteration input vector.
type Table1Row struct {
	Input    string  // v1, v3, ..., v15
	RPubK    float64 // R_pub in thousands
	RPTK     float64 // R_pub+tac in thousands
	PWCETPub float64 // pWCET@1e-12 with R_pub runs (PUB column)
	PWCETPT  float64 // pWCET@1e-12 with R_pub+tac runs (P+T column)
}

// Table1 regenerates Table 1: for each of bs's 8 maximum-iteration input
// vectors, the required runs and the pWCET at 10^-12 with PUB only versus
// PUB+TAC. The 8 paths are analyzed concurrently over the batch engine.
func Table1(ctx context.Context, opts Options) ([]Table1Row, error) {
	b := malardalen.BS()
	a := core.New(opts.AnalyzerConfig())
	m, err := a.AnalyzeMultiPathCtx(ctx, b.Program, malardalen.BSMaxIterationInputs(b), opts.budget())
	if err != nil {
		return nil, fmt.Errorf("table1: %w", err)
	}
	rows := make([]Table1Row, len(m.Paths))
	for i, pa := range m.Paths {
		rows[i] = Table1Row{
			Input:    pa.Input.Name,
			RPubK:    float64(pa.RPub) / 1000,
			RPTK:     float64(pa.R) / 1000,
			PWCETPub: pa.PubOnly.PWCET(1e-12),
			PWCETPT:  pa.Full.PWCET(1e-12),
		}
	}
	return rows, nil
}

// Table2Row is one row of Table 2: run requirements for one benchmark.
type Table2Row struct {
	Benchmark string
	ROrigK    float64 // plain MBPTA on the original program (thousands)
	RPubK     float64 // MBPTA convergence on the pubbed program (thousands)
	RPTK      float64 // PUB+TAC requirement (thousands)
}

// Table2 regenerates Table 2: R_orig, R_pub and R_pub+tac for all 11
// benchmarks with their default input sets. The 22 campaigns (original and
// pubbed per benchmark) are fanned out over one bounded pool.
func Table2(ctx context.Context, opts Options) ([]Table2Row, error) {
	a := core.New(opts.AnalyzerConfig())
	bms := malardalen.All()
	origs, pubs, err := originalsAndPaths(ctx, a, bms, opts.budget())
	if err != nil {
		return nil, fmt.Errorf("table2: %w", err)
	}
	rows := make([]Table2Row, len(bms))
	for i, b := range bms {
		rows[i] = Table2Row{
			Benchmark: b.Name,
			ROrigK:    float64(origs[i].ROrig) / 1000,
			RPubK:     float64(pubs[i].RPub) / 1000,
			RPTK:      float64(pubs[i].R) / 1000,
		}
	}
	return rows, nil
}

// originalsAndPaths runs, for every benchmark, plain MBPTA on the original
// program and the PUB+TAC pipeline on the default path, all over one pool
// bounded by the total worker budget.
func originalsAndPaths(ctx context.Context, a *core.Analyzer, bms []*malardalen.Benchmark,
	budget int) ([]*core.OriginalAnalysis, []*core.PathAnalysis, error) {
	origs := make([]*core.OriginalAnalysis, len(bms))
	pubs := make([]*core.PathAnalysis, len(bms))
	outer, inner := pool.SplitWorkers(budget, 2*len(bms))
	g, ctx := pool.WithContext(ctx)
	g.SetLimit(outer)
	for i, b := range bms {
		i, b := i, b
		g.Go(func() error {
			oa, err := a.AnalyzeOriginalCtx(ctx, b.Program, b.Default(), inner)
			if err != nil {
				return fmt.Errorf("%s (orig): %w", b.Name, err)
			}
			origs[i] = oa
			return nil
		})
		g.Go(func() error {
			batch, err := a.AnalyzeBatch(ctx,
				[]core.Job{{Program: b.Program, Inputs: []program.Input{b.Default()}}}, inner)
			if err != nil {
				return fmt.Errorf("%s: %w", b.Name, err)
			}
			pubs[i] = batch[0][0]
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		return nil, nil, err
	}
	return origs, pubs, nil
}

// Series is a named ECCDF curve.
type Series struct {
	Name   string
	Points []stats.ECCDFPoint
}

// Figure1 generates the didactic pWCET/pETd picture of Figure 1(a): the
// empirical execution-time distribution of a small synthetic program on the
// randomized platform, and the pWCET curve upper-bounding it.
func Figure1(ctx context.Context, opts Options) ([]Series, error) {
	b := malardalen.CNT()
	res := b.Program.MustExec(b.Default())
	n := opts.scaled(200000, 4000)
	camp := mbpta.NewCampaign(res.Trace, proc.DefaultModel())
	sample, err := camp.CollectCtx(ctx, n, mbpta.Seed("fig1"), opts.Workers, nil)
	if err != nil {
		return nil, err
	}
	est, err := mbpta.NewEstimate(sample, mbpta.DefaultConfig())
	if err != nil {
		return nil, err
	}
	etd := stats.NewECDF(sample)
	curve := Series{Name: "pWCET"}
	for _, pt := range etd.Points() {
		if pt.Prob == 0 {
			continue
		}
		curve.Points = append(curve.Points, stats.ECCDFPoint{
			Value: est.Curve.ValueAt(pt.Prob), Prob: pt.Prob,
		})
	}
	// Extend the pWCET curve beyond the sample.
	for _, p := range []float64{1e-7, 1e-8, 1e-9, 1e-10, 1e-11, 1e-12} {
		curve.Points = append(curve.Points, stats.ECCDFPoint{Value: est.Curve.ValueAt(p), Prob: p})
	}
	return []Series{{Name: "pETd", Points: etd.Points()}, curve}, nil
}

// Figure2 regenerates Figure 2: the ECCDFs of bs's 8 original
// maximum-iteration paths and of the corresponding 8 pubbed paths; every
// pubbed curve upper-bounds every original curve. The paper uses 10^6 runs
// per path. The 16 campaigns are fanned out over one bounded pool.
func Figure2(ctx context.Context, opts Options) ([]Series, error) {
	b := malardalen.BS()
	pubbed, _, err := pubTransform(b)
	if err != nil {
		return nil, err
	}
	runs := opts.scaled(1000000, 3000)
	model := proc.DefaultModel()
	inputs := malardalen.BSMaxIterationInputs(b)
	out := make([]Series, 2*len(inputs))
	outer, inner := pool.SplitWorkers(opts.budget(), len(out))
	g, ctx := pool.WithContext(ctx)
	g.SetLimit(outer)
	for i, in := range inputs {
		i, in := i, in
		// Each path's trace is compiled once; the campaign workers inside
		// CollectCtx share the compilation.
		g.Go(func() error {
			orig := b.Program.MustExec(in)
			sample, err := mbpta.NewCampaign(orig.Trace, model).CollectCtx(ctx, runs,
				mbpta.Seed("fig2/orig/"+in.Name), inner, nil)
			if err != nil {
				return err
			}
			out[i] = Series{Name: "orig/" + in.Name, Points: stats.NewECDF(sample).Points()}
			return nil
		})
		g.Go(func() error {
			pr := pubbed.MustExec(in)
			sample, err := mbpta.NewCampaign(pr.Trace, model).CollectCtx(ctx, runs,
				mbpta.Seed("fig2/pub/"+in.Name), inner, nil)
			if err != nil {
				return err
			}
			out[len(inputs)+i] = Series{Name: "pub/" + in.Name, Points: stats.NewECDF(sample).Points()}
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	return out, nil
}

// Figure4Result holds the Figure 4 artifacts for bs input v9: the reference
// ECCDF (6e6 runs in the paper), and the pWCET curves obtained with R_pub
// and with R_pub+tac runs.
type Figure4Result struct {
	Reference Series // large-campaign ECCDF of the pubbed v9 path
	PubCurve  Series // pWCET from R_pub runs
	PTCurve   Series // pWCET from R_pub+tac runs
	RPub      int
	RPT       int
}

// Figure4 regenerates Figure 4. With only R_pub runs the abrupt ECCDF knee
// caused by a low-probability cache placement is missed; with R_pub+tac
// runs it is captured and the pWCET upper-bounds it.
func Figure4(ctx context.Context, opts Options) (*Figure4Result, error) {
	b := malardalen.BS()
	a := core.New(opts.AnalyzerConfig())
	in, err := b.Input("v9")
	if err != nil {
		return nil, err
	}
	pa, err := a.AnalyzePathCtx(ctx, b.Program, in)
	if err != nil {
		return nil, err
	}
	pubbed, _, err := pubTransform(b)
	if err != nil {
		return nil, err
	}
	res := pubbed.MustExec(in)
	refRuns := opts.scaled(6000000, 20000)
	ref, err := mbpta.NewCampaign(res.Trace, proc.DefaultModel()).CollectCtx(ctx, refRuns,
		mbpta.Seed("fig4/ref"), opts.Workers, nil)
	if err != nil {
		return nil, err
	}

	out := &Figure4Result{
		Reference: Series{Name: "ECCDF(6M-scaled)", Points: stats.NewECDF(ref).Points()},
		RPub:      pa.RPub,
		RPT:       pa.R,
	}
	out.PubCurve = curveSeries("pWCET(Rpub)", pa.PubOnly)
	out.PTCurve = curveSeries("pWCET(Rp+t)", pa.Full)
	return out, nil
}

func curveSeries(name string, est *mbpta.Estimate) Series {
	s := Series{Name: name}
	for _, exp := range []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12} {
		p := math.Pow(10, -exp)
		s.Points = append(s.Points, stats.ECCDFPoint{Value: est.PWCET(p), Prob: p})
	}
	return s
}

// Figure5Row is one bar group of Figure 5: pWCET estimates of PUB and
// PUB+TAC normalized to the plain-MBPTA estimate on the original program.
type Figure5Row struct {
	Benchmark string
	PubRatio  float64 // pWCET(PUB) / pWCET(orig) at 1e-12
	PTRatio   float64 // pWCET(PUB+TAC) / pWCET(orig) at 1e-12
}

// Figure5 regenerates Figure 5 for all 11 benchmarks, fanning the 22
// campaigns out over one bounded pool.
func Figure5(ctx context.Context, opts Options) ([]Figure5Row, error) {
	a := core.New(opts.AnalyzerConfig())
	bms := malardalen.All()
	origs, pubs, err := originalsAndPaths(ctx, a, bms, opts.budget())
	if err != nil {
		return nil, fmt.Errorf("figure5: %w", err)
	}
	rows := make([]Figure5Row, len(bms))
	for i, b := range bms {
		base := origs[i].Estimate.PWCET(1e-12)
		rows[i] = Figure5Row{
			Benchmark: b.Name,
			PubRatio:  pubs[i].PubOnly.PWCET(1e-12) / base,
			PTRatio:   pubs[i].Full.PWCET(1e-12) / base,
		}
	}
	return rows, nil
}

// Section31Result reproduces the two worked examples of Section 3.1.
type Section31Result struct {
	ROrig311 int // {ABCA}^1000      -> 0 extra runs
	RPub311  int // {ABCDEA}^1000    -> ~84873
	ROrig312 int // {ABCDEA}^1000    -> ~84873
	RPub312  int // {ABCDEFA}^1000   -> ~14137
}

// Section31 recomputes the worked examples with TAC on the 8-set 4-way
// cache of Section 3.1.
func Section31() (*Section31Result, error) {
	cacheCfg := proc.DefaultModel()
	cacheCfg.IL1.Sets, cacheCfg.IL1.Ways = 8, 4
	cacheCfg.DL1.Sets, cacheCfg.DL1.Ways = 8, 4
	cfg := tac.DefaultConfig()
	runs := func(letters string) (int, error) {
		tr := repeatLetters(letters, 1000)
		an, err := tac.Analyze(tr, cacheCfg, cfg)
		if err != nil {
			return 0, err
		}
		return an.MinRuns, nil
	}
	var out Section31Result
	var err error
	if out.ROrig311, err = runs("ABCA"); err != nil {
		return nil, err
	}
	if out.RPub311, err = runs("ABCDEA"); err != nil {
		return nil, err
	}
	out.ROrig312 = out.RPub311
	if out.RPub312, err = runs("ABCDEFA"); err != nil {
		return nil, err
	}
	return &out, nil
}
