package experiment

import (
	"context"
	"testing"

	"pubtac/internal/stats"
)

// tinyOpts keeps experiment tests fast.
func tinyOpts() Options { return Options{Scale: 0.004} }

// long marks a test that regenerates full tables/figures; in -short mode
// those are covered by the TestSmoke fast path instead.
func long(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("long experiment regeneration; TestSmoke covers -short")
	}
}

// TestSmoke is the -short fast path: one multipath benchmark through every
// generator family (table, figure, analytic) at the smallest usable scale,
// so CI exercises the full plumbing in about a second.
func TestSmoke(t *testing.T) {
	ctx := context.Background()
	opts := Options{Scale: 0.002}

	rows, err := Table1(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("table1 rows = %d, want 8", len(rows))
	}
	for _, r := range rows {
		if r.RPTK < r.RPubK || r.PWCETPT <= 0 {
			t.Fatalf("table1 implausible row: %+v", r)
		}
	}

	series, err := Figure1(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 || len(series[0].Points) == 0 {
		t.Fatalf("figure1 series malformed: %d", len(series))
	}

	r31, err := Section31()
	if err != nil {
		t.Fatal(err)
	}
	if r31.RPub311 != 84873 {
		t.Fatalf("section 3.1 runs = %d, want 84873", r31.RPub311)
	}
}

func TestSection31MatchesPaper(t *testing.T) {
	r, err := Section31()
	if err != nil {
		t.Fatal(err)
	}
	if r.ROrig311 != 0 {
		t.Errorf("3.1.1 orig runs = %d, want 0", r.ROrig311)
	}
	if r.RPub311 != 84873 {
		t.Errorf("3.1.1 pubbed runs = %d, want 84873 (paper: 84875)", r.RPub311)
	}
	if r.RPub312 != 14137 {
		t.Errorf("3.1.2 pubbed runs = %d, want 14137 (paper: 14138)", r.RPub312)
	}
	if !(r.ROrig311 < r.RPub311) || !(r.ROrig312 > r.RPub312) {
		t.Error("Section 3.1 orderings violated")
	}
}

func TestTable1ShapeAndProperties(t *testing.T) {
	long(t)
	rows, err := Table1(context.Background(), tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	for _, r := range rows {
		if r.RPTK < r.RPubK {
			t.Errorf("%s: Rp+t (%vk) below Rpub (%vk)", r.Input, r.RPTK, r.RPubK)
		}
		if r.PWCETPub <= 0 || r.PWCETPT <= 0 {
			t.Errorf("%s: non-positive pWCET", r.Input)
		}
	}
}

func TestTable2ShapeAndProperties(t *testing.T) {
	long(t)
	rows, err := Table2(context.Background(), tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("rows = %d, want 11", len(rows))
	}
	seen := map[string]bool{}
	for _, r := range rows {
		seen[r.Benchmark] = true
		if r.RPTK < r.RPubK {
			t.Errorf("%s: Rp+t < Rpub", r.Benchmark)
		}
		if r.ROrigK <= 0 || r.RPubK <= 0 {
			t.Errorf("%s: non-positive run counts", r.Benchmark)
		}
	}
	if !seen["bs"] || !seen["crc"] || !seen["ns"] {
		t.Fatalf("missing benchmarks: %v", seen)
	}
}

func TestFigure1Shapes(t *testing.T) {
	long(t)
	series, err := Figure1(context.Background(), tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	etd, curve := series[0], series[1]
	if len(etd.Points) == 0 || len(curve.Points) == 0 {
		t.Fatal("empty series")
	}
	// The pWCET curve upper-bounds the pETd at matching probabilities.
	for i, pt := range etd.Points {
		if pt.Prob == 0 {
			continue
		}
		if i < len(curve.Points) && curve.Points[i].Value < pt.Value {
			t.Fatalf("pWCET (%v) below pETd (%v) at prob %v",
				curve.Points[i].Value, pt.Value, pt.Prob)
		}
	}
}

func TestFigure2PubbedUpperBounds(t *testing.T) {
	long(t)
	series, err := Figure2(context.Background(), tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 16 {
		t.Fatalf("series = %d, want 16 (8 orig + 8 pub)", len(series))
	}
	// Max observed execution time across original paths must not exceed
	// max across pubbed paths.
	maxOf := func(s Series) float64 {
		m := 0.0
		for _, p := range s.Points {
			if p.Value > m {
				m = p.Value
			}
		}
		return m
	}
	var origMax, pubMin float64
	pubMin = 1e18
	for _, s := range series[:8] {
		if v := maxOf(s); v > origMax {
			origMax = v
		}
	}
	for _, s := range series[8:] {
		if v := maxOf(s); v < pubMin {
			pubMin = v
		}
	}
	if pubMin < origMax*0.8 {
		t.Fatalf("pubbed path max (%v) far below original max (%v)", pubMin, origMax)
	}
}

func TestFigure4KneeCapture(t *testing.T) {
	long(t)
	res, err := Figure4(context.Background(), tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.RPT < res.RPub {
		t.Fatalf("RPT (%d) < RPub (%d)", res.RPT, res.RPub)
	}
	if len(res.Reference.Points) == 0 {
		t.Fatal("empty reference ECCDF")
	}
	// The P+T curve must upper-bound the reference ECCDF's maximum at deep
	// probabilities.
	refMax := 0.0
	for _, p := range res.Reference.Points {
		if p.Value > refMax {
			refMax = p.Value
		}
	}
	ptDeep := res.PTCurve.Points[len(res.PTCurve.Points)-1].Value
	if ptDeep < refMax*0.95 {
		t.Fatalf("P+T deep pWCET (%v) below reference max (%v)", ptDeep, refMax)
	}
}

func TestFigure5Categories(t *testing.T) {
	long(t)
	rows, err := Figure5(context.Background(), tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]Figure5Row{}
	for _, r := range rows {
		byName[r.Benchmark] = r
		if r.PubRatio <= 0 || r.PTRatio <= 0 {
			t.Errorf("%s: non-positive ratio", r.Benchmark)
		}
	}
	// Single-path benchmarks: PUB is exactly innocuous — identical traces
	// and matched campaign seeds give ratio 1.0 up to rounding.
	for _, n := range []string{"edn", "insertsort", "jfdctint", "matmult", "fdct", "ns"} {
		if r := byName[n].PubRatio; r < 0.99 || r > 1.01 {
			t.Errorf("%s: single-path PUB ratio = %v, want 1.0", n, r)
		}
	}
	// crc: the default input misses the worst path; PUB must increase the
	// estimate (the magnitude — 4.4x in the paper — depends on campaign
	// scale; EXPERIMENTS.md reports the measured value at full scale).
	if r := byName["crc"].PubRatio; r < 1.02 {
		t.Errorf("crc: PUB ratio = %v, want > 1 (paper: 4.4x)", r)
	}
	// Multipath benchmarks whose worst path is exercised: PUB pessimism is
	// bounded; at the tiny test scale deep-tail extrapolation noise allows
	// a wide band (paper: +4%..59% at full scale).
	for _, n := range []string{"bs", "cnt", "fir", "janne"} {
		if r := byName[n].PubRatio; r < 0.7 || r > 5.0 {
			t.Errorf("%s: PUB ratio = %v, outside plausible band", n, r)
		}
	}
	// TAC on top of PUB never lowers the run requirement; its pWCET effect
	// can go either way (ns decreases in the paper) but stays finite.
	for _, r := range rows {
		if r.PTRatio < 0.4 || r.PTRatio > 20 {
			t.Errorf("%s: P+T ratio = %v implausible", r.Benchmark, r.PTRatio)
		}
	}
}

func TestScaledMinimums(t *testing.T) {
	o := Options{Scale: 0.0001}
	if o.scaled(1000000, 500) < 500 {
		t.Fatal("scaled() must respect the minimum")
	}
	if got := (Options{Scale: 1}).scaled(1000, 1); got != 1000 {
		t.Fatalf("scaled at 1.0 = %d", got)
	}
}

func TestSeriesUsableByECDF(t *testing.T) {
	long(t)
	// Sanity: series probabilities are monotone non-increasing in value.
	series, err := Figure1(context.Background(), tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range series[:1] {
		var prev *stats.ECCDFPoint
		for i := range s.Points {
			p := s.Points[i]
			if prev != nil && p.Value > prev.Value && p.Prob > prev.Prob {
				t.Fatalf("%s: non-monotone ECCDF", s.Name)
			}
			prev = &p
		}
	}
}
