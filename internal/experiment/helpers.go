package experiment

import (
	"pubtac/internal/malardalen"
	"pubtac/internal/program"
	"pubtac/internal/pub"
	"pubtac/internal/trace"
)

// pubTransform applies PUB to a benchmark's program.
func pubTransform(b *malardalen.Benchmark) (*program.Program, pub.Report, error) {
	return pub.Transform(b.Program)
}

// repeatLetters builds the paper's {LETTERS}^n data traces on 32-byte lines.
func repeatLetters(letters string, n int) trace.Trace {
	return trace.Repeat(trace.FromLetters(letters, 32), n)
}
