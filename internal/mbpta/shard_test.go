package mbpta

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"pubtac/internal/proc"
	"pubtac/internal/stats"
)

// shardCfg is a campaign configuration small enough for unit tests while
// still taking several convergence rounds.
func shardCfg() Config {
	cfg := DefaultConfig()
	cfg.InitialRuns = 200
	cfg.Increment = 200
	cfg.MaxRuns = 1200
	cfg.Workers = 2
	return cfg
}

// encodeOrDie collapses a summary to its wire bytes — the strictest equality
// available, covering sample, sorted view and battery state at once.
func encodeOrDie(t *testing.T, sum stats.SampleSummary) []byte {
	t.Helper()
	b, err := stats.EncodeSummary(sum)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return b
}

// Merging per-shard CollectRangeCtx summaries for consecutive ranges, in
// index order, must reproduce the single-range summary bit for bit — the
// worker half of the distributed determinism argument.
func TestCollectRangeMergeBitIdentical(t *testing.T) {
	camp := NewCampaign(loopTrace(8, 50), proc.DefaultModel())
	cfg := shardCfg()
	const n = 1000
	ctx := context.Background()

	whole, err := camp.CollectRangeCtx(ctx, cfg, 0, n, 42, nil)
	if err != nil {
		t.Fatalf("whole: %v", err)
	}

	for _, shards := range []int{1, 2, 8} {
		var merged stats.SampleSummary
		for i := 0; i < shards; i++ {
			lo, hi := i*n/shards, (i+1)*n/shards
			part, err := camp.CollectRangeCtx(ctx, cfg, lo, hi, 42, nil)
			if err != nil {
				t.Fatalf("shards=%d part %d: %v", shards, i, err)
			}
			if merged == nil {
				merged = part
				continue
			}
			if err := merged.Merge(part); err != nil {
				t.Fatalf("shards=%d merge %d: %v", shards, i, err)
			}
		}
		if got, want := encodeOrDie(t, merged), encodeOrDie(t, whole); string(got) != string(want) {
			t.Fatalf("shards=%d: merged summary differs from single-range summary", shards)
		}
		if merged.IID() != whole.IID() {
			t.Fatalf("shards=%d: battery report differs", shards)
		}
	}
}

// CollectRangeCtx rejects nonsense ranges and honors cancellation.
func TestCollectRangeValidation(t *testing.T) {
	camp := NewCampaign(loopTrace(4, 30), proc.DefaultModel())
	cfg := shardCfg()
	if _, err := camp.CollectRangeCtx(context.Background(), cfg, -1, 5, 1, nil); err == nil {
		t.Fatal("negative lo accepted")
	}
	if _, err := camp.CollectRangeCtx(context.Background(), cfg, 7, 3, 1, nil); err == nil {
		t.Fatal("hi < lo accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := camp.CollectRangeCtx(ctx, cfg, 0, 100000, 1, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled collect: err = %v", err)
	}
}

// shardingCollector is a test RangeCollector that computes shards through a
// second campaign's CollectRangeCtx — exactly what a remote worker does —
// and fails every shard the fail predicate selects, returning it as a
// leftover range for the local fallback.
type shardingCollector struct {
	camp   *Campaign
	cfg    Config
	root   uint64
	shards int
	fail   func(shard int) bool
	calls  atomic.Int64
	failed atomic.Int64
}

func (sc *shardingCollector) collect(ctx context.Context, dst []float64, offset int) ([]Range, error) {
	var leftover []Range
	n := len(dst)
	for i := 0; i < sc.shards; i++ {
		lo, hi := offset+i*n/sc.shards, offset+(i+1)*n/sc.shards
		if lo == hi {
			continue
		}
		sc.calls.Add(1)
		if sc.fail != nil && sc.fail(i) {
			sc.failed.Add(1)
			leftover = append(leftover, Range{Lo: lo, Hi: hi})
			continue
		}
		sum, err := sc.camp.CollectRangeCtx(ctx, sc.cfg, lo, hi, sc.root, nil)
		if err != nil {
			return nil, err
		}
		copy(dst[lo-offset:hi-offset], sum.(*stats.FullSummary).Sample())
	}
	return leftover, nil
}

// The distributed oracle pair: a campaign collecting through SetRemote —
// with shards computed by a worker-style collector, including failed shards
// recomputed by the local fallback — must converge to an estimate
// bit-identical to the purely local collectLocal reference arm, extension
// rounds included.
func TestDistributedConvergeMatchesLocal(t *testing.T) {
	tr := loopTrace(8, 50)
	model := proc.DefaultModel()
	cfg := shardCfg()
	const root = 99
	ctx := context.Background()

	ref, err := NewCampaign(tr, model).ConvergeCtx(ctx, cfg, root, nil)
	if err != nil {
		t.Fatalf("reference converge: %v", err)
	}
	// Extension past convergence, as core does when TAC demands more runs.
	extendTo := ref.Runs + 300
	if err := NewCampaign(tr, model).ExtendSummaryCtx(ctx, ref.Summary, extendTo, root, cfg.Workers, nil); err != nil {
		t.Fatalf("reference extend: %v", err)
	}

	for _, tc := range []struct {
		name   string
		shards int
		fail   func(int) bool
	}{
		{"shards=1", 1, nil},
		{"shards=2", 2, nil},
		{"shards=8", 8, nil},
		{"shards=8/middle-fails", 8, func(i int) bool { return i == 4 }},
		{"shards=2/all-fail", 2, func(int) bool { return true }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			worker := NewCampaign(tr, model)
			sc := &shardingCollector{camp: worker, cfg: cfg, root: root, shards: tc.shards, fail: tc.fail}
			dist := NewCampaign(tr, model)
			dist.SetRemote(sc.collect)

			conv, err := dist.ConvergeCtx(ctx, cfg, root, nil)
			if err != nil {
				t.Fatalf("distributed converge: %v", err)
			}
			if err := dist.ExtendSummaryCtx(ctx, conv.Summary, extendTo, root, cfg.Workers, nil); err != nil {
				t.Fatalf("distributed extend: %v", err)
			}

			if conv.Runs != ref.Runs || conv.Rounds != ref.Rounds || conv.Converged != ref.Converged {
				t.Fatalf("convergence differs: got (%d,%d,%v) want (%d,%d,%v)",
					conv.Runs, conv.Rounds, conv.Converged, ref.Runs, ref.Rounds, ref.Converged)
			}
			if got, want := encodeOrDie(t, conv.Summary), encodeOrDie(t, ref.Summary); string(got) != string(want) {
				t.Fatal("extended summary differs from local reference")
			}
			est, refEst := conv.Estimate, ref.Estimate
			if est.PWCET(cfg.StabilityProb) != refEst.PWCET(cfg.StabilityProb) ||
				est.Tail.Rate != refEst.Tail.Rate || est.CV != refEst.CV || est.IID != refEst.IID {
				t.Fatal("estimate differs from local reference")
			}
			if sc.calls.Load() == 0 {
				t.Fatal("remote collector never consulted")
			}
			if tc.fail != nil && sc.failed.Load() == 0 {
				t.Fatal("failure injection never fired")
			}
		})
	}
}

// A collector that errors outright degrades to the local reference arm; a
// collector returning garbage ranges is clamped, not trusted.
func TestRemoteCollectorDegradation(t *testing.T) {
	tr := loopTrace(6, 40)
	model := proc.DefaultModel()
	cfg := shardCfg()
	ctx := context.Background()

	ref, err := NewCampaign(tr, model).CollectCtx(ctx, 700, 7, cfg.Workers, nil)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}

	broken := NewCampaign(tr, model)
	broken.SetRemote(func(context.Context, []float64, int) ([]Range, error) {
		return nil, errors.New("all peers unreachable")
	})
	got, err := broken.CollectCtx(ctx, 700, 7, cfg.Workers, nil)
	if err != nil {
		t.Fatalf("degraded collect: %v", err)
	}
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("degraded run %d differs", i)
		}
	}

	sloppy := NewCampaign(tr, model)
	sloppy.SetRemote(func(_ context.Context, _ []float64, offset int) ([]Range, error) {
		// Out-of-bounds, overlapping, empty and unsorted — everything a
		// confused peer could report. All runs must still be computed once.
		return []Range{
			{Lo: offset + 400, Hi: offset + 1e6},
			{Lo: offset - 50, Hi: offset + 300},
			{Lo: offset + 250, Hi: offset + 250},
			{Lo: offset + 200, Hi: offset + 500},
		}, nil
	})
	got, err = sloppy.CollectCtx(ctx, 700, 7, cfg.Workers, nil)
	if err != nil {
		t.Fatalf("sloppy collect: %v", err)
	}
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("sloppy run %d differs", i)
		}
	}
}
