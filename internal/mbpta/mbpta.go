// Package mbpta implements measurement-based probabilistic timing analysis:
// it collects execution-time samples on the randomized platform, checks the
// statistical admissibility of the sample (i.i.d. battery, exponentiality of
// the tail), determines the number of runs needed for the estimate to
// converge, and produces pWCET curves via extreme value theory.
//
// The package provides the two run counts the paper distinguishes:
//
//   - R_pub (or R_orig): the number of runs MBPTA itself needs for the
//     pWCET estimate to stabilize (Converge);
//   - R_pub+tac: the maximum of R_pub and TAC's minimum (the caller takes
//     the max; see package core).
package mbpta

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync/atomic"

	"pubtac/internal/evt"
	"pubtac/internal/pool"
	"pubtac/internal/proc"
	"pubtac/internal/rng"
	"pubtac/internal/stats"
	"pubtac/internal/trace"
)

// Config tunes the analysis. Start from DefaultConfig.
type Config struct {
	// InitialRuns is the starting sample size (the MBPTA literature's
	// conventional minimum is a few hundred runs).
	InitialRuns int
	// Increment is the number of runs added per convergence round.
	Increment int
	// MaxRuns caps the convergence loop.
	MaxRuns int
	// TailCount is the number of maxima used for the exponential tail fit.
	TailCount int
	// StabilityEps is the maximum relative change of the probe pWCET
	// between consecutive rounds for the estimate to count as stable.
	StabilityEps float64
	// StabilityProb is the probed exceedance probability for convergence.
	StabilityProb float64
	// StableRounds is how many consecutive stable rounds are required.
	StableRounds int
	// Alpha is the significance level of the i.i.d. battery.
	Alpha float64
	// Workers bounds campaign parallelism; 0 means GOMAXPROCS.
	Workers int
	// ReferenceIID disables the incremental i.i.d. battery in convergence
	// searches and campaign extensions: every round recomputes the
	// one-shot stats.CheckIID battery over the full sample instead. It is
	// the battery's analogue of proc's Engine.UseReference — slower, kept
	// as the reference oracle for equivalence tests. Ignored when
	// Streaming is set (the streaming battery is the only bounded one).
	ReferenceIID bool
	// Streaming switches convergence searches and campaign extensions to
	// the bounded-memory stats.StreamingSummary: peak estimation-layer
	// memory is O(StreamBudget) regardless of the run count, at the
	// documented accuracy trade (exact tail fit while the auto-fit window
	// fits the reservoir, sketch-resolved battery median and body
	// quantiles). Estimates no longer retain the sample.
	Streaming bool
	// StreamBudget is the streaming memory budget K (reservoir size,
	// sketch buckets, battery retention); 0 means DefaultStreamBudget.
	StreamBudget int
}

// DefaultStreamBudget is the streaming budget used when Config.Streaming is
// set without an explicit StreamBudget: large enough that the auto-fit
// search window (n/5) stays inside the exact reservoir up to n ≈ 40k runs,
// while bounding the estimation layer to a few hundred KiB per path.
const DefaultStreamBudget = 8192

// DefaultConfig returns the configuration used throughout the evaluation.
func DefaultConfig() Config {
	return Config{
		InitialRuns:   1000,
		Increment:     1000,
		MaxRuns:       300000,
		TailCount:     10,
		StabilityEps:  0.02,
		StabilityProb: 1e-12,
		StableRounds:  2,
		Alpha:         0.05,
		Workers:       0,
	}
}

// Progress observes campaign growth: done runs collected so far out of the
// target (the target can grow across convergence rounds). Implementations
// must be safe for concurrent calls; a nil Progress reports nothing.
type Progress func(done, target int)

// collectBlock is the work-stealing granularity of parallel campaigns: a
// worker simulates this many runs between cancellation checks and progress
// reports. Small enough to cancel a campaign within milliseconds, large
// enough that the atomic dispatch cost is invisible next to a trace replay.
// It is a multiple of proc.BatchK so whole blocks stay on the batched
// replay path (the engine replays BatchK seeds per pass over the stream).
const collectBlock = 8 * proc.BatchK

// Campaign is one measurement campaign's shared, immutable inputs: the
// trace, the platform model, and the trace compiled once for that model.
// Every worker goroutine of every collection and convergence round replays
// the same CompiledTrace — compilation is paid once per analyzed path, and
// each engine keeps only its private per-seed scratch. A Campaign is safe
// for concurrent use.
type Campaign struct {
	Trace    trace.Trace
	Model    proc.Model
	Compiled *proc.CompiledTrace

	// remote, when set, collects run ranges on remote workers before the
	// local engines fill whatever is left. See SetRemote.
	remote RangeCollector
}

// Range is a half-open run-index interval [Lo, Hi) of a campaign.
type Range struct {
	Lo, Hi int
}

// RangeCollector fills dst — which holds runs offset..offset+len(dst)-1 of
// the campaign — from somewhere other than the local engines (typically
// remote workers executing CollectRangeCtx for sub-ranges), and returns the
// absolute-index ranges it could NOT fill; the campaign recomputes those
// locally. Because run i depends only on (root, i), it does not matter who
// computes a run, only that slot i-offset ends up holding run i — which is
// why any mix of remote and local collection stays bit-identical to a
// purely local campaign. A RangeCollector should return an error only for
// cancellation or conditions that invalidate the whole campaign; per-shard
// failures are reported as leftover ranges instead (graceful degradation).
type RangeCollector func(ctx context.Context, dst []float64, offset int) ([]Range, error)

// SetRemote installs a remote range collector on the campaign: every
// subsequent collection (Converge rounds, extensions, CollectCtx) first
// offers the full range to rc and computes only the returned leftovers with
// the local engines. collectLocal is the reference arm: with any rc — even
// one that fails every shard — results are bit-identical to a campaign that
// never left the process, which is the distributed oracle-pair contract.
// SetRemote must be called before the campaign is shared between
// goroutines; a nil rc restores purely local collection.
//
//pubtac:fastpath distributed
func (c *Campaign) SetRemote(rc RangeCollector) { c.remote = rc }

// NewCampaign compiles tr for the model once, for any number of subsequent
// Collect/Converge/ExtendTo calls.
func NewCampaign(tr trace.Trace, model proc.Model) *Campaign {
	return &Campaign{Trace: tr, Model: model, Compiled: proc.Compile(tr, model)}
}

// newEngine builds one worker's engine: private replay scratch around the
// shared compilation.
func (c *Campaign) newEngine() *proc.Engine {
	eng := proc.NewEngine(c.Model)
	eng.SetCompiled(c.Compiled, c.Trace)
	return eng
}

// Collect runs tr n times on the model with seeds derived from root and
// returns execution times in run order. Runs are distributed over Workers
// goroutines; the result is identical to a sequential campaign because run i
// depends only on (root, i).
func Collect(tr trace.Trace, model proc.Model, n int, root uint64, workers int) []float64 {
	times, _ := CollectCtx(context.Background(), tr, model, n, root, workers, nil)
	return times
}

// CollectCtx is Collect with cancellation and progress reporting; it
// compiles the trace once and delegates to Campaign.CollectCtx.
func CollectCtx(ctx context.Context, tr trace.Trace, model proc.Model, n int,
	root uint64, workers int, progress Progress) ([]float64, error) {
	return NewCampaign(tr, model).CollectCtx(ctx, n, root, workers, progress)
}

// CollectCtx runs the campaign n times with seeds derived from root and
// returns execution times in run order. It stops promptly (returning
// ctx.Err and a partially filled sample) when ctx is cancelled, and reports
// completed runs through progress as blocks finish.
func (c *Campaign) CollectCtx(ctx context.Context, n int, root uint64,
	workers int, progress Progress) ([]float64, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	times := make([]float64, n)
	err := c.collectInto(ctx, times, root, 0, workers, progress, n)
	return times, err
}

// collectInto fills dst with runs offset..offset+len(dst)-1 of the campaign
// rooted at root. Without a remote collector it is collectLocal; with one it
// first offers the whole range to the remote arm and computes the returned
// leftovers locally, which yields the same bytes either way.
func (c *Campaign) collectInto(ctx context.Context, dst []float64, root uint64,
	offset, workers int, progress Progress, target int) error {
	if c.remote == nil {
		return c.collectLocal(ctx, dst, root, offset, workers, progress, target)
	}
	leftover, err := c.remote(ctx, dst, offset)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		// The collector failed outright (all peers down, say): degrade to a
		// plain local campaign — correctness never depends on the remote arm.
		return c.collectLocal(ctx, dst, root, offset, workers, progress, target)
	}
	leftover = normalizeRanges(leftover, offset, offset+len(dst))
	remoteFilled := len(dst)
	for _, r := range leftover {
		remoteFilled -= r.Hi - r.Lo
	}
	if progress != nil && remoteFilled > 0 {
		progress(offset+remoteFilled, target)
	}
	// Recompute the leftovers locally, in index order. Progress stays
	// monotone: doneBase credits the remote-filled runs and every completed
	// leftover range, and collectLocal's per-block reports are rebased from
	// the range-local count onto it.
	doneBase := offset + remoteFilled
	for _, r := range leftover {
		sub := dst[r.Lo-offset : r.Hi-offset]
		var p Progress
		if progress != nil {
			base, lo := doneBase, r.Lo
			p = func(done, tgt int) { progress(base+(done-lo), tgt) }
		}
		if err := c.collectLocal(ctx, sub, root, r.Lo, workers, p, target); err != nil {
			return err
		}
		doneBase += r.Hi - r.Lo
	}
	return nil
}

// normalizeRanges clamps ranges to [lo, hi), drops empty ones, sorts by Lo
// and merges overlaps, so a sloppy RangeCollector cannot make collectInto
// recompute a run twice or step outside dst.
func normalizeRanges(rs []Range, lo, hi int) []Range {
	out := rs[:0]
	for _, r := range rs {
		if r.Lo < lo {
			r.Lo = lo
		}
		if r.Hi > hi {
			r.Hi = hi
		}
		if r.Lo < r.Hi {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Lo < out[j].Lo })
	merged := out[:0]
	for _, r := range out {
		if n := len(merged); n > 0 && r.Lo <= merged[n-1].Hi {
			if r.Hi > merged[n-1].Hi {
				merged[n-1].Hi = r.Hi
			}
			continue
		}
		merged = append(merged, r)
	}
	return merged
}

// collectLocal fills dst with runs offset..offset+len(dst)-1 of the campaign
// rooted at root, fanning the blocks out over workers goroutines. Workers
// pull fixed-size blocks from a shared counter, so load balances even when
// per-run cost varies; between blocks they check ctx and report progress
// (done counts completed runs across the whole campaign, offset included).
// It is the in-process reference arm of the distributed collection pair.
//
//pubtac:reference distributed
func (c *Campaign) collectLocal(ctx context.Context, dst []float64, root uint64,
	offset, workers int, progress Progress, target int) error {
	n := len(dst)
	if n == 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if max := (n + collectBlock - 1) / collectBlock; workers > max {
		workers = max
	}
	var next, done atomic.Int64
	done.Store(int64(offset))
	body := func(ctx context.Context, eng *proc.Engine) error {
		for {
			if err := ctx.Err(); err != nil {
				return err
			}
			lo := int(next.Add(collectBlock)) - collectBlock
			if lo >= n {
				return nil
			}
			hi := lo + collectBlock
			if hi > n {
				hi = n
			}
			eng.CampaignInto(c.Trace, dst[lo:hi], root, offset+lo)
			if progress != nil {
				progress(int(done.Add(int64(hi-lo))), target)
			}
		}
	}
	if workers == 1 {
		return body(ctx, c.newEngine())
	}
	// Workers share the atomic block cursor, so dst slots are filled by
	// index regardless of which worker claims which block: results stay
	// bit-identical at any worker count. The group only coordinates
	// lifetime and propagates the first (ctx-derived) error.
	g, gctx := pool.WithContext(ctx)
	g.SetLimit(workers)
	for w := 0; w < workers; w++ {
		g.Go(func() error { return body(gctx, c.newEngine()) })
	}
	return g.Wait()
}

// Estimate is a fitted pWCET model plus its diagnostics.
type Estimate struct {
	Curve evt.Curve    // the pWCET curve (exponential tail)
	Tail  *evt.ExpTail // the underlying fit
	// Sample is the execution-time sample used, in run order. It is nil
	// for streaming estimates (Config.Streaming), which by design do not
	// retain the sample; use View for the quantities that remain.
	Sample []float64
	// View is the sample summary snapshot behind the estimate: size, min,
	// max, exact upper tail and (possibly sketch-resolved) body quantiles.
	// Always non-nil.
	View stats.SampleView
	IID  stats.IIDReport
	CV   evt.CVTest
}

// ErrSampleTooSmall mirrors evt.ErrSampleTooSmall at this layer.
var ErrSampleTooSmall = errors.New("mbpta: sample too small for a pWCET estimate")

// NewEstimate fits a pWCET model to sample under cfg. The resulting curve
// is the standard MBPTA composite: empirical ECCDF within the measured
// range, exponential-tail extrapolation beyond it. The tail threshold is
// selected by the CV criterion, scanning candidate tail sizes from
// cfg.TailCount up to a fifth of the sample.
func NewEstimate(sample []float64, cfg Config) (*Estimate, error) {
	return NewEstimateSorted(sample, stats.SortedCopy(sample), cfg)
}

// NewEstimateSorted is NewEstimate for callers that already hold an
// ascending-sorted view of sample (the convergence loop maintains one
// incrementally across rounds). The single sort is shared by every
// candidate tail fit, every CV test, the empirical ECCDF and the runs-test
// median of the i.i.d. battery; sorted is adopted by the estimate and must
// not be modified afterwards. sample stays in run order (the i.i.d. battery
// needs it).
func NewEstimateSorted(sample, sorted []float64, cfg Config) (*Estimate, error) {
	return NewEstimateSummary(stats.AdoptFullSummary(sample, sorted, nil), cfg)
}

// NewEstimateIID is NewEstimateSorted for callers that additionally
// maintain the i.i.d. battery incrementally: st must have been fed exactly
// sample, in run order, through Push. The admissibility report then costs
// O(lags) plus the battery's unscanned suffix instead of a full-sample
// re-scan; the one-shot path (NewEstimate/NewEstimateSorted) stays as the
// reference battery for external callers and for Config.ReferenceIID.
func NewEstimateIID(sample, sorted []float64, st *stats.IIDState, cfg Config) (*Estimate, error) {
	return NewEstimateSummary(stats.AdoptFullSummary(sample, sorted, st), cfg)
}

// NewEstimateSummary fits a pWCET model to the sample behind a
// stats.SampleSummary: the tail fit, CV test, composite curve and
// admissibility battery all read the summary, so the one entry point serves
// both the retained-sample reference arm (bit-identical to the historical
// NewEstimateSorted/NewEstimateIID paths) and the bounded-memory streaming
// arm. The estimate holds an immutable snapshot of the summary; the caller
// may keep pushing runs into it afterwards.
func NewEstimateSummary(sum stats.SampleSummary, cfg Config) (*Estimate, error) {
	v := sum.View()
	tail, cv, err := evt.FitExpTailAutoSummary(v, cfg.TailCount, v.N()/5)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSampleTooSmall, err)
	}
	est := &Estimate{
		Curve: evt.NewSummaryComposite(v, tail),
		Tail:  tail,
		View:  v,
		CV:    cv,
		IID:   sum.IID(),
	}
	if fs, ok := sum.(*stats.FullSummary); ok {
		est.Sample = fs.Sample()
	}
	return est, nil
}

// PWCET returns the pWCET estimate at per-run exceedance probability p.
func (e *Estimate) PWCET(p float64) float64 { return e.Curve.ValueAt(p) }

// Runs returns the sample size behind the estimate.
func (e *Estimate) Runs() int { return e.View.N() }

// MaxObserved returns the largest observed execution time — exact in every
// mode, including streaming estimates that retain no sample.
func (e *Estimate) MaxObserved() float64 { return e.View.Max() }

// Admissible reports whether the sample passed the i.i.d. battery at the
// given significance level.
func (e *Estimate) Admissible(alpha float64) bool { return e.IID.Passed(alpha) }

// Convergence is the result of the run-count search.
type Convergence struct {
	Runs      int       // runs at convergence (R_pub / R_orig)
	Rounds    int       // convergence rounds taken
	Converged bool      // false when MaxRuns was hit first
	Estimate  *Estimate // estimate at the final sample size

	// Summary is the sample summary maintained across convergence rounds:
	// a stats.FullSummary (retained sample + merged sorted view +
	// battery) by default, a bounded-memory stats.StreamingSummary under
	// Config.Streaming. Callers extending the campaign (package core)
	// push new runs into it via ExtendSummaryCtx and re-estimate with
	// NewEstimateSummary instead of recollecting or re-sorting.
	Summary stats.SampleSummary
}

// Converge grows a measurement campaign until the probe pWCET stabilizes:
// starting from InitialRuns, it adds Increment runs per round and declares
// convergence after StableRounds consecutive rounds where the pWCET at
// StabilityProb moves by less than StabilityEps relatively. It returns the
// run count MBPTA needs on this program — the paper's R_pub (pubbed
// programs) or R_orig (original programs).
func Converge(tr trace.Trace, model proc.Model, cfg Config, root uint64) (*Convergence, error) {
	return ConvergeCtx(context.Background(), tr, model, cfg, root, nil)
}

// ConvergeCtx is Converge with cancellation and progress reporting; it
// compiles the trace once and delegates to Campaign.ConvergeCtx.
func ConvergeCtx(ctx context.Context, tr trace.Trace, model proc.Model, cfg Config,
	root uint64, progress Progress) (*Convergence, error) {
	return NewCampaign(tr, model).ConvergeCtx(ctx, cfg, root, progress)
}

// ConvergeCtx runs the convergence search on the campaign. The progress
// target grows by Increment per round until the estimate stabilizes, so
// target is a moving lower bound on the final run count. Every round's
// workers replay the one shared compilation.
func (c *Campaign) ConvergeCtx(ctx context.Context, cfg Config,
	root uint64, progress Progress) (*Convergence, error) {
	if cfg.InitialRuns < 20 {
		return nil, fmt.Errorf("mbpta: InitialRuns %d too small", cfg.InitialRuns)
	}
	// The summary is maintained incrementally: each round pushes only its
	// increment (sorting the increment, merging it into the sorted view or
	// reservoir, pushing the battery), so the per-round estimation cost is
	// O(n + inc·log inc) instead of a full O(n log n) re-sort and
	// O(n·lags) battery re-scan — and O(K + inc·log inc) with a streaming
	// summary, whose memory never grows past the budget.
	sum := NewSummary(cfg)
	if err := c.pushRuns(ctx, sum, cfg.InitialRuns, root, cfg.Workers, progress); err != nil {
		return nil, err
	}
	est, err := NewEstimateSummary(sum, cfg)
	if err != nil {
		return nil, err
	}
	prev := est.PWCET(cfg.StabilityProb)
	stable := 0
	rounds := 0
	for sum.N() < cfg.MaxRuns {
		// Extend deterministically: the new runs use seeds n..n+inc-1.
		if err := c.pushRuns(ctx, sum, cfg.Increment, root, cfg.Workers, progress); err != nil {
			return nil, err
		}
		rounds++
		est, err = NewEstimateSummary(sum, cfg)
		if err != nil {
			return nil, err
		}
		cur := est.PWCET(cfg.StabilityProb)
		if relDiff(cur, prev) <= cfg.StabilityEps {
			stable++
			if stable >= cfg.StableRounds {
				return &Convergence{Runs: sum.N(), Rounds: rounds, Converged: true, Estimate: est, Summary: sum}, nil
			}
		} else {
			stable = 0
		}
		prev = cur
	}
	return &Convergence{Runs: sum.N(), Rounds: rounds, Converged: false, Estimate: est, Summary: sum}, nil
}

// NewSummary builds the sample summary a campaign under cfg accumulates
// into: streaming (bounded memory) when cfg.Streaming, otherwise the
// full-sample reference summary with the battery mode cfg.ReferenceIID
// selects.
func NewSummary(cfg Config) stats.SampleSummary {
	if cfg.Streaming {
		b := cfg.StreamBudget
		if b <= 0 {
			b = DefaultStreamBudget
		}
		return stats.NewStreamingSummary(b)
	}
	return stats.NewFullSummary(!cfg.ReferenceIID)
}

// streamChunk is the collection granularity of streaming campaigns: runs are
// collected into a reusable buffer of this size and pushed chunk by chunk,
// so no round ever materializes its full increment. It is a fixed multiple
// of collectBlock: the streaming battery dichotomizes each chunk at the
// then-current sketch median, so the chunk size is part of the battery's
// definition and must not vary with worker count or round size.
const streamChunk = 8 * collectBlock

// summaryChunk returns the collection chunk size for a summary: bounded for
// streaming summaries, a whole round at a time otherwise (the full summary
// retains the sample anyway, and one merged sort per round is cheapest).
func summaryChunk(sum stats.SampleSummary) int {
	if _, ok := sum.(*stats.StreamingSummary); ok {
		return streamChunk
	}
	return 0
}

// pushRuns collects the next add runs of the campaign (runs sum.N() ..
// sum.N()+add-1, index-addressed as always) and pushes them into sum in run
// order.
func (c *Campaign) pushRuns(ctx context.Context, sum stats.SampleSummary, add int,
	root uint64, workers int, progress Progress) error {
	return c.pushRangeAt(ctx, sum, sum.N(), add, root, workers, progress)
}

// pushRangeAt collects runs offset..offset+add-1 of the campaign and pushes
// them into sum in run order. Collection within each chunk fans out over
// workers; chunks are pushed sequentially, and the chunk size is a
// deterministic function of the summary type, so the summary state is
// bit-identical at any worker count. Chunk boundaries are relative to the
// pushed sequence, so a summary fed [lo, hi) here matches the [lo, hi)
// sub-sequence of a whole-campaign summary exactly when the summary state is
// chunking-invariant (every full summary; see CollectRangeCtx).
func (c *Campaign) pushRangeAt(ctx context.Context, sum stats.SampleSummary,
	offset, add int, root uint64, workers int, progress Progress) error {
	if add <= 0 {
		return ctx.Err()
	}
	target := offset + add
	chunk := summaryChunk(sum)
	if chunk <= 0 || chunk > add {
		chunk = add
	}
	buf := make([]float64, chunk)
	for done := 0; done < add; {
		m := add - done
		if m > chunk {
			m = chunk
		}
		b := buf[:m]
		if err := c.collectInto(ctx, b, root, offset+done, workers, progress, target); err != nil {
			return err
		}
		sum.Push(b) // summaries copy what they keep; buf is reused
		done += m
	}
	return nil
}

// CollectRangeCtx collects the shard [lo, hi) of the campaign rooted at
// root into a fresh summary built per cfg — the worker half of distributed
// campaign sharding. Because run i depends only on (root, i), and because
// full-summary state is a pure, chunking-invariant function of the pushed
// run sequence, merging per-shard summaries for consecutive ranges in index
// order reproduces the single-process summary bit-identically at any shard
// count. (Streaming summaries are collectable here too, but their battery
// dichotomizes per chunk from the range start, so merged streaming shards
// are an approximation — coordinators therefore always shard with full
// summaries and stream only the merged result if asked.) The summary is
// collected with cfg.Workers local workers; the campaign's remote collector
// is deliberately not consulted, so a worker can never re-shard its shard.
func (c *Campaign) CollectRangeCtx(ctx context.Context, cfg Config, lo, hi int,
	root uint64, progress Progress) (stats.SampleSummary, error) {
	if lo < 0 || hi < lo {
		return nil, fmt.Errorf("mbpta: invalid run range [%d, %d)", lo, hi)
	}
	local := &Campaign{Trace: c.Trace, Model: c.Model, Compiled: c.Compiled}
	sum := NewSummary(cfg)
	if err := local.pushRangeAt(ctx, sum, lo, hi-lo, root, cfg.Workers, progress); err != nil {
		return nil, err
	}
	return sum, nil
}

// ExtendSummaryCtx grows a campaign summary to target runs, collecting and
// pushing runs sum.N()..target-1 of the campaign rooted at root. Because run
// i depends only on (root, i), the summary ends bit-identical to one fed all
// target runs from scratch — callers holding a converged summary (package
// core, when TAC demands more runs than MBPTA needed) extend it instead of
// recollecting.
func (c *Campaign) ExtendSummaryCtx(ctx context.Context, sum stats.SampleSummary,
	target int, root uint64, workers int, progress Progress) error {
	return c.pushRuns(ctx, sum, target-sum.N(), root, workers, progress)
}

// extendCtx appends inc new runs to sample, cancellably. The new runs'
// progress target is the extended sample size.
func (c *Campaign) extendCtx(ctx context.Context, sample []float64,
	inc int, root uint64, workers int, progress Progress) ([]float64, error) {
	start := len(sample)
	out := append(sample, make([]float64, inc)...)
	err := c.collectInto(ctx, out[start:], root, start, workers, progress, len(out))
	return out, err
}

// ExtendToCtx grows a campaign sample to target runs, appending runs
// len(sample)..target-1 of the campaign rooted at root. Because run i
// depends only on (root, i), the result is bit-identical to collecting all
// target runs from scratch — callers holding a converged sample (package
// core, when TAC demands more runs than MBPTA needed) reuse the prefix
// instead of simulating it twice. The input slice is not modified.
func ExtendToCtx(ctx context.Context, tr trace.Trace, model proc.Model, sample []float64,
	target int, root uint64, workers int, progress Progress) ([]float64, error) {
	return NewCampaign(tr, model).ExtendToCtx(ctx, sample, target, root, workers, progress)
}

// ExtendToCtx is the Campaign form of the package-level ExtendToCtx,
// reusing the campaign's shared compilation for the appended runs.
func (c *Campaign) ExtendToCtx(ctx context.Context, sample []float64,
	target int, root uint64, workers int, progress Progress) ([]float64, error) {
	if target <= len(sample) {
		return sample, ctx.Err()
	}
	return c.extendCtx(ctx, sample, target-len(sample), root, workers, progress)
}

func relDiff(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(a-b) / math.Abs(b)
}

// ECCDF returns the empirical complementary CDF of a sample (convenience
// re-export used by figure generators).
func ECCDF(sample []float64) *stats.ECDF { return stats.NewECDF(sample) }

// Seed derives a reproducible campaign root seed from a name, so that
// experiments identify campaigns by benchmark/input labels.
func Seed(name string) uint64 {
	var h uint64 = 1469598103934665603 // FNV-64 offset basis
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return rng.Mix64(h)
}
