// Package mbpta implements measurement-based probabilistic timing analysis:
// it collects execution-time samples on the randomized platform, checks the
// statistical admissibility of the sample (i.i.d. battery, exponentiality of
// the tail), determines the number of runs needed for the estimate to
// converge, and produces pWCET curves via extreme value theory.
//
// The package provides the two run counts the paper distinguishes:
//
//   - R_pub (or R_orig): the number of runs MBPTA itself needs for the
//     pWCET estimate to stabilize (Converge);
//   - R_pub+tac: the maximum of R_pub and TAC's minimum (the caller takes
//     the max; see package core).
package mbpta

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync/atomic"

	"pubtac/internal/evt"
	"pubtac/internal/pool"
	"pubtac/internal/proc"
	"pubtac/internal/rng"
	"pubtac/internal/stats"
	"pubtac/internal/trace"
)

// Config tunes the analysis. Start from DefaultConfig.
type Config struct {
	// InitialRuns is the starting sample size (the MBPTA literature's
	// conventional minimum is a few hundred runs).
	InitialRuns int
	// Increment is the number of runs added per convergence round.
	Increment int
	// MaxRuns caps the convergence loop.
	MaxRuns int
	// TailCount is the number of maxima used for the exponential tail fit.
	TailCount int
	// StabilityEps is the maximum relative change of the probe pWCET
	// between consecutive rounds for the estimate to count as stable.
	StabilityEps float64
	// StabilityProb is the probed exceedance probability for convergence.
	StabilityProb float64
	// StableRounds is how many consecutive stable rounds are required.
	StableRounds int
	// Alpha is the significance level of the i.i.d. battery.
	Alpha float64
	// Workers bounds campaign parallelism; 0 means GOMAXPROCS.
	Workers int
	// ReferenceIID disables the incremental i.i.d. battery in convergence
	// searches and campaign extensions: every round recomputes the
	// one-shot stats.CheckIID battery over the full sample instead. It is
	// the battery's analogue of proc's Engine.UseReference — slower, kept
	// as the reference oracle for equivalence tests.
	ReferenceIID bool
}

// DefaultConfig returns the configuration used throughout the evaluation.
func DefaultConfig() Config {
	return Config{
		InitialRuns:   1000,
		Increment:     1000,
		MaxRuns:       300000,
		TailCount:     10,
		StabilityEps:  0.02,
		StabilityProb: 1e-12,
		StableRounds:  2,
		Alpha:         0.05,
		Workers:       0,
	}
}

// Progress observes campaign growth: done runs collected so far out of the
// target (the target can grow across convergence rounds). Implementations
// must be safe for concurrent calls; a nil Progress reports nothing.
type Progress func(done, target int)

// collectBlock is the work-stealing granularity of parallel campaigns: a
// worker simulates this many runs between cancellation checks and progress
// reports. Small enough to cancel a campaign within milliseconds, large
// enough that the atomic dispatch cost is invisible next to a trace replay.
// It is a multiple of proc.BatchK so whole blocks stay on the batched
// replay path (the engine replays BatchK seeds per pass over the stream).
const collectBlock = 8 * proc.BatchK

// Campaign is one measurement campaign's shared, immutable inputs: the
// trace, the platform model, and the trace compiled once for that model.
// Every worker goroutine of every collection and convergence round replays
// the same CompiledTrace — compilation is paid once per analyzed path, and
// each engine keeps only its private per-seed scratch. A Campaign is safe
// for concurrent use.
type Campaign struct {
	Trace    trace.Trace
	Model    proc.Model
	Compiled *proc.CompiledTrace
}

// NewCampaign compiles tr for the model once, for any number of subsequent
// Collect/Converge/ExtendTo calls.
func NewCampaign(tr trace.Trace, model proc.Model) *Campaign {
	return &Campaign{Trace: tr, Model: model, Compiled: proc.Compile(tr, model)}
}

// newEngine builds one worker's engine: private replay scratch around the
// shared compilation.
func (c *Campaign) newEngine() *proc.Engine {
	eng := proc.NewEngine(c.Model)
	eng.SetCompiled(c.Compiled, c.Trace)
	return eng
}

// Collect runs tr n times on the model with seeds derived from root and
// returns execution times in run order. Runs are distributed over Workers
// goroutines; the result is identical to a sequential campaign because run i
// depends only on (root, i).
func Collect(tr trace.Trace, model proc.Model, n int, root uint64, workers int) []float64 {
	times, _ := CollectCtx(context.Background(), tr, model, n, root, workers, nil)
	return times
}

// CollectCtx is Collect with cancellation and progress reporting; it
// compiles the trace once and delegates to Campaign.CollectCtx.
func CollectCtx(ctx context.Context, tr trace.Trace, model proc.Model, n int,
	root uint64, workers int, progress Progress) ([]float64, error) {
	return NewCampaign(tr, model).CollectCtx(ctx, n, root, workers, progress)
}

// CollectCtx runs the campaign n times with seeds derived from root and
// returns execution times in run order. It stops promptly (returning
// ctx.Err and a partially filled sample) when ctx is cancelled, and reports
// completed runs through progress as blocks finish.
func (c *Campaign) CollectCtx(ctx context.Context, n int, root uint64,
	workers int, progress Progress) ([]float64, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	times := make([]float64, n)
	err := c.collectInto(ctx, times, root, 0, workers, progress, n)
	return times, err
}

// collectInto fills dst with runs offset..offset+len(dst)-1 of the campaign
// rooted at root, fanning the blocks out over workers goroutines. Workers
// pull fixed-size blocks from a shared counter, so load balances even when
// per-run cost varies; between blocks they check ctx and report progress
// (done counts completed runs across the whole campaign, offset included).
func (c *Campaign) collectInto(ctx context.Context, dst []float64, root uint64,
	offset, workers int, progress Progress, target int) error {
	n := len(dst)
	if n == 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if max := (n + collectBlock - 1) / collectBlock; workers > max {
		workers = max
	}
	var next, done atomic.Int64
	done.Store(int64(offset))
	body := func(ctx context.Context, eng *proc.Engine) error {
		for {
			if err := ctx.Err(); err != nil {
				return err
			}
			lo := int(next.Add(collectBlock)) - collectBlock
			if lo >= n {
				return nil
			}
			hi := lo + collectBlock
			if hi > n {
				hi = n
			}
			eng.CampaignInto(c.Trace, dst[lo:hi], root, offset+lo)
			if progress != nil {
				progress(int(done.Add(int64(hi-lo))), target)
			}
		}
	}
	if workers == 1 {
		return body(ctx, c.newEngine())
	}
	// Workers share the atomic block cursor, so dst slots are filled by
	// index regardless of which worker claims which block: results stay
	// bit-identical at any worker count. The group only coordinates
	// lifetime and propagates the first (ctx-derived) error.
	g, gctx := pool.WithContext(ctx)
	g.SetLimit(workers)
	for w := 0; w < workers; w++ {
		g.Go(func() error { return body(gctx, c.newEngine()) })
	}
	return g.Wait()
}

// Estimate is a fitted pWCET model plus its diagnostics.
type Estimate struct {
	Curve  evt.Curve    // the pWCET curve (exponential tail)
	Tail   *evt.ExpTail // the underlying fit
	Sample []float64    // the execution-time sample used
	IID    stats.IIDReport
	CV     evt.CVTest
}

// ErrSampleTooSmall mirrors evt.ErrSampleTooSmall at this layer.
var ErrSampleTooSmall = errors.New("mbpta: sample too small for a pWCET estimate")

// NewEstimate fits a pWCET model to sample under cfg. The resulting curve
// is the standard MBPTA composite: empirical ECCDF within the measured
// range, exponential-tail extrapolation beyond it. The tail threshold is
// selected by the CV criterion, scanning candidate tail sizes from
// cfg.TailCount up to a fifth of the sample.
func NewEstimate(sample []float64, cfg Config) (*Estimate, error) {
	return NewEstimateSorted(sample, stats.SortedCopy(sample), cfg)
}

// NewEstimateSorted is NewEstimate for callers that already hold an
// ascending-sorted view of sample (the convergence loop maintains one
// incrementally across rounds). The single sort is shared by every
// candidate tail fit, every CV test, the empirical ECCDF and the runs-test
// median of the i.i.d. battery; sorted is adopted by the estimate and must
// not be modified afterwards. sample stays in run order (the i.i.d. battery
// needs it).
func NewEstimateSorted(sample, sorted []float64, cfg Config) (*Estimate, error) {
	est, err := fitSorted(sample, sorted, cfg)
	if err != nil {
		return nil, err
	}
	est.IID = stats.CheckIIDSorted(sample, sorted)
	return est, nil
}

// NewEstimateIID is NewEstimateSorted for callers that additionally
// maintain the i.i.d. battery incrementally: st must have been fed exactly
// sample, in run order, through Push. The admissibility report then costs
// O(lags) plus the battery's unscanned suffix instead of a full-sample
// re-scan; the one-shot path (NewEstimate/NewEstimateSorted) stays as the
// reference battery for external callers and for Config.ReferenceIID.
func NewEstimateIID(sample, sorted []float64, st *stats.IIDState, cfg Config) (*Estimate, error) {
	est, err := fitSorted(sample, sorted, cfg)
	if err != nil {
		return nil, err
	}
	est.IID = st.ReportSorted(sorted)
	return est, nil
}

// fitSorted fits the tail and composite curve on the shared sorted view;
// the caller fills in the admissibility report.
func fitSorted(sample, sorted []float64, cfg Config) (*Estimate, error) {
	tail, cv, err := evt.FitExpTailAutoSorted(sorted, cfg.TailCount, len(sorted)/5)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSampleTooSmall, err)
	}
	return &Estimate{
		Curve:  evt.NewCompositeSorted(sorted, tail),
		Tail:   tail,
		Sample: sample,
		CV:     cv,
	}, nil
}

// PWCET returns the pWCET estimate at per-run exceedance probability p.
func (e *Estimate) PWCET(p float64) float64 { return e.Curve.ValueAt(p) }

// Runs returns the sample size behind the estimate.
func (e *Estimate) Runs() int { return len(e.Sample) }

// Admissible reports whether the sample passed the i.i.d. battery at the
// given significance level.
func (e *Estimate) Admissible(alpha float64) bool { return e.IID.Passed(alpha) }

// Convergence is the result of the run-count search.
type Convergence struct {
	Runs      int       // runs at convergence (R_pub / R_orig)
	Rounds    int       // convergence rounds taken
	Converged bool      // false when MaxRuns was hit first
	Estimate  *Estimate // estimate at the final sample size

	// Sorted is the ascending-sorted view of Estimate.Sample maintained
	// across convergence rounds. Callers extending the campaign (package
	// core) merge new runs into it instead of re-sorting; treat it as
	// read-only.
	Sorted []float64

	// IID is the incremental admissibility battery covering
	// Estimate.Sample. Callers extending the campaign (package core) Push
	// the extension and re-report instead of re-scanning the whole sample.
	// It is nil when the search ran with Config.ReferenceIID.
	IID *stats.IIDState
}

// Converge grows a measurement campaign until the probe pWCET stabilizes:
// starting from InitialRuns, it adds Increment runs per round and declares
// convergence after StableRounds consecutive rounds where the pWCET at
// StabilityProb moves by less than StabilityEps relatively. It returns the
// run count MBPTA needs on this program — the paper's R_pub (pubbed
// programs) or R_orig (original programs).
func Converge(tr trace.Trace, model proc.Model, cfg Config, root uint64) (*Convergence, error) {
	return ConvergeCtx(context.Background(), tr, model, cfg, root, nil)
}

// ConvergeCtx is Converge with cancellation and progress reporting; it
// compiles the trace once and delegates to Campaign.ConvergeCtx.
func ConvergeCtx(ctx context.Context, tr trace.Trace, model proc.Model, cfg Config,
	root uint64, progress Progress) (*Convergence, error) {
	return NewCampaign(tr, model).ConvergeCtx(ctx, cfg, root, progress)
}

// ConvergeCtx runs the convergence search on the campaign. The progress
// target grows by Increment per round until the estimate stabilizes, so
// target is a moving lower bound on the final run count. Every round's
// workers replay the one shared compilation.
func (c *Campaign) ConvergeCtx(ctx context.Context, cfg Config,
	root uint64, progress Progress) (*Convergence, error) {
	if cfg.InitialRuns < 20 {
		return nil, fmt.Errorf("mbpta: InitialRuns %d too small", cfg.InitialRuns)
	}
	n := cfg.InitialRuns
	sample, err := c.CollectCtx(ctx, n, root, cfg.Workers, progress)
	if err != nil {
		return nil, err
	}
	// The sorted view is maintained incrementally: each round sorts only
	// its increment and merges it in, so the per-round estimation cost is
	// O(n + inc·log inc) instead of a full O(n log n) re-sort (times the
	// number of candidate tails, before the sort-once rework in evt). The
	// i.i.d. battery is maintained the same way: each round pushes only
	// its increment into the accumulator instead of CheckIID re-scanning
	// the full sample.
	sorted := stats.SortedCopy(sample)
	var iid *stats.IIDState
	if !cfg.ReferenceIID {
		iid = new(stats.IIDState)
		iid.Push(sample)
	}
	est, err := roundEstimate(sample, sorted, iid, cfg)
	if err != nil {
		return nil, err
	}
	prev := est.PWCET(cfg.StabilityProb)
	stable := 0
	rounds := 0
	for n < cfg.MaxRuns {
		// Extend deterministically: the new runs use seeds n..n+inc-1.
		sample, err = c.extendCtx(ctx, sample, cfg.Increment, root, cfg.Workers, progress)
		if err != nil {
			return nil, err
		}
		if iid != nil {
			iid.Push(sample[n:])
		}
		sorted = stats.MergeSorted(sorted, stats.SortedCopy(sample[n:]))
		n = len(sample)
		rounds++
		est, err = roundEstimate(sample, sorted, iid, cfg)
		if err != nil {
			return nil, err
		}
		cur := est.PWCET(cfg.StabilityProb)
		if relDiff(cur, prev) <= cfg.StabilityEps {
			stable++
			if stable >= cfg.StableRounds {
				return &Convergence{Runs: n, Rounds: rounds, Converged: true, Estimate: est, Sorted: sorted, IID: iid}, nil
			}
		} else {
			stable = 0
		}
		prev = cur
	}
	return &Convergence{Runs: n, Rounds: rounds, Converged: false, Estimate: est, Sorted: sorted, IID: iid}, nil
}

// roundEstimate fits one convergence round's estimate: through the
// incremental battery when one is maintained, through the one-shot
// reference battery otherwise (Config.ReferenceIID).
func roundEstimate(sample, sorted []float64, iid *stats.IIDState, cfg Config) (*Estimate, error) {
	if iid == nil {
		return NewEstimateSorted(sample, sorted, cfg)
	}
	return NewEstimateIID(sample, sorted, iid, cfg)
}

// extendCtx appends inc new runs to sample, cancellably. The new runs'
// progress target is the extended sample size.
func (c *Campaign) extendCtx(ctx context.Context, sample []float64,
	inc int, root uint64, workers int, progress Progress) ([]float64, error) {
	start := len(sample)
	out := append(sample, make([]float64, inc)...)
	err := c.collectInto(ctx, out[start:], root, start, workers, progress, len(out))
	return out, err
}

// ExtendToCtx grows a campaign sample to target runs, appending runs
// len(sample)..target-1 of the campaign rooted at root. Because run i
// depends only on (root, i), the result is bit-identical to collecting all
// target runs from scratch — callers holding a converged sample (package
// core, when TAC demands more runs than MBPTA needed) reuse the prefix
// instead of simulating it twice. The input slice is not modified.
func ExtendToCtx(ctx context.Context, tr trace.Trace, model proc.Model, sample []float64,
	target int, root uint64, workers int, progress Progress) ([]float64, error) {
	return NewCampaign(tr, model).ExtendToCtx(ctx, sample, target, root, workers, progress)
}

// ExtendToCtx is the Campaign form of the package-level ExtendToCtx,
// reusing the campaign's shared compilation for the appended runs.
func (c *Campaign) ExtendToCtx(ctx context.Context, sample []float64,
	target int, root uint64, workers int, progress Progress) ([]float64, error) {
	if target <= len(sample) {
		return sample, ctx.Err()
	}
	return c.extendCtx(ctx, sample, target-len(sample), root, workers, progress)
}

func relDiff(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(a-b) / math.Abs(b)
}

// ECCDF returns the empirical complementary CDF of a sample (convenience
// re-export used by figure generators).
func ECCDF(sample []float64) *stats.ECDF { return stats.NewECDF(sample) }

// Seed derives a reproducible campaign root seed from a name, so that
// experiments identify campaigns by benchmark/input labels.
func Seed(name string) uint64 {
	var h uint64 = 1469598103934665603 // FNV-64 offset basis
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return rng.Mix64(h)
}
