package mbpta

import (
	"context"
	"math"
	"testing"

	"pubtac/internal/proc"
	"pubtac/internal/stats"
	"pubtac/internal/trace"
)

// loopTrace is a small program-like trace: a working set of w lines
// traversed n times, generating layout-dependent variability.
func loopTrace(w, n int) trace.Trace {
	letters := ""
	for i := 0; i < w; i++ {
		letters += string(rune('A' + i))
	}
	return trace.Repeat(trace.FromLetters(letters, 32), n)
}

func TestCollectMatchesSequential(t *testing.T) {
	tr := loopTrace(8, 50)
	m := proc.DefaultModel()
	seq := Collect(tr, m, 200, 42, 1)
	par := Collect(tr, m, 200, 42, 4)
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("run %d differs: %v vs %v", i, seq[i], par[i])
		}
	}
}

func TestCollectSizes(t *testing.T) {
	tr := loopTrace(4, 10)
	m := proc.DefaultModel()
	if got := Collect(tr, m, 0, 1, 0); got != nil {
		t.Fatal("n=0 should return nil")
	}
	if got := Collect(tr, m, 7, 1, 16); len(got) != 7 {
		t.Fatalf("len = %d", len(got))
	}
}

func TestNewEstimateAndPWCET(t *testing.T) {
	tr := loopTrace(10, 100)
	sample := Collect(tr, proc.DefaultModel(), 3000, 7, 0)
	est, err := NewEstimate(sample, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	maxObs := stats.Max(sample)
	p6 := est.PWCET(1e-6)
	p12 := est.PWCET(1e-12)
	if p12 < p6 {
		t.Fatalf("pWCET not monotone: %v @1e-6, %v @1e-12", p6, p12)
	}
	if p12 < maxObs {
		t.Fatalf("pWCET@1e-12 (%v) below observed max (%v)", p12, maxObs)
	}
	if est.Runs() != 3000 {
		t.Fatalf("Runs = %d", est.Runs())
	}
}

func TestEstimateAdmissible(t *testing.T) {
	// Random-platform campaigns are i.i.d. by construction (independent
	// seeds): the battery must pass.
	tr := loopTrace(10, 100)
	sample := Collect(tr, proc.DefaultModel(), 2000, 9, 0)
	est, err := NewEstimate(sample, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !est.Admissible(0.01) {
		t.Fatalf("iid battery rejected a randomized campaign: %+v", est.IID)
	}
}

func TestNewEstimateTooSmall(t *testing.T) {
	if _, err := NewEstimate([]float64{1, 2, 3}, DefaultConfig()); err == nil {
		t.Fatal("expected error on tiny sample")
	}
}

func TestConvergeDeterministicAndStable(t *testing.T) {
	tr := loopTrace(8, 60)
	m := proc.DefaultModel()
	cfg := DefaultConfig()
	cfg.InitialRuns = 300
	cfg.Increment = 300
	cfg.MaxRuns = 20000
	c1, err := Converge(tr, m, cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Converge(tr, m, cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Runs != c2.Runs {
		t.Fatalf("convergence not deterministic: %d vs %d", c1.Runs, c2.Runs)
	}
	if !c1.Converged {
		t.Fatalf("did not converge within %d runs", cfg.MaxRuns)
	}
	if c1.Runs < cfg.InitialRuns {
		t.Fatalf("Runs = %d < InitialRuns", c1.Runs)
	}
	if c1.Estimate == nil || len(c1.Estimate.Sample) != c1.Runs {
		t.Fatal("estimate/sample inconsistent")
	}
}

func TestConvergeRespectsMaxRuns(t *testing.T) {
	tr := loopTrace(8, 60)
	cfg := DefaultConfig()
	cfg.InitialRuns = 100
	cfg.Increment = 100
	cfg.MaxRuns = 250
	cfg.StabilityEps = 0 // never stable
	cfg.StableRounds = 3
	c, err := Converge(tr, proc.DefaultModel(), cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if c.Converged {
		t.Fatal("cannot converge with eps=0")
	}
	if c.Runs < cfg.MaxRuns {
		t.Fatalf("stopped at %d runs, want >= MaxRuns", c.Runs)
	}
}

func TestConvergeRejectsTinyInitial(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InitialRuns = 5
	if _, err := Converge(loopTrace(4, 10), proc.DefaultModel(), cfg, 1); err == nil {
		t.Fatal("expected error")
	}
}

func TestExtendMatchesCollect(t *testing.T) {
	tr := loopTrace(6, 40)
	m := proc.DefaultModel()
	full := Collect(tr, m, 500, 3, 0)
	c := NewCampaign(tr, m)
	part, err := c.CollectCtx(context.Background(), 200, 3, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := c.extendCtx(context.Background(), part, 300, 3, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ext) != 500 {
		t.Fatalf("len = %d", len(ext))
	}
	for i := range full {
		if full[i] != ext[i] {
			t.Fatalf("extend diverges at %d", i)
		}
	}
}

func TestSeedStableAndDistinct(t *testing.T) {
	if Seed("bs") != Seed("bs") {
		t.Fatal("Seed not deterministic")
	}
	if Seed("bs") == Seed("cnt") {
		t.Fatal("Seed collision between names")
	}
}

func TestECCDFHelper(t *testing.T) {
	e := ECCDF([]float64{1, 2, 3})
	if e.Len() != 3 {
		t.Fatal("ECCDF helper broken")
	}
}

func TestPWCETUpperBoundsEmpiricalTail(t *testing.T) {
	// On a well-behaved workload (working set of 6 lines: no abrupt
	// conflict knee), the fitted curve at the empirical 99.9th percentile's
	// exceedance level must not fall below that percentile.
	tr := loopTrace(6, 80)
	sample := Collect(tr, proc.DefaultModel(), 5000, 13, 0)
	est, err := NewEstimate(sample, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	q999 := stats.Quantile(sample, 0.999)
	if v := est.PWCET(0.001); v < q999*0.98 {
		t.Fatalf("pWCET@1e-3 = %v well below empirical q99.9 = %v", v, q999)
	}
	if math.IsInf(est.PWCET(1e-15), 0) || math.IsNaN(est.PWCET(1e-15)) {
		t.Fatal("deep-tail query not finite")
	}
}

func TestKneeWorkloadNeedsMoreRuns(t *testing.T) {
	// A 12-line working set has 3-line conflict groups at p ~ 2.4e-4: with
	// few runs the knee is unobserved and the estimate underestimates the
	// estimate obtained from a large campaign — the paper's Figure 4
	// motivation for TAC. (We check the large-campaign estimate is at
	// least as high; equality can happen when the knee is mild.)
	tr := loopTrace(12, 80)
	m := proc.DefaultModel()
	cfg := DefaultConfig()
	smallSample := Collect(tr, m, 400, 21, 0)
	small, err := NewEstimate(smallSample, cfg)
	if err != nil {
		t.Fatal(err)
	}
	largeSample := Collect(tr, m, 20000, 21, 0)
	large, err := NewEstimate(largeSample, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Soundness, not ordering: with more runs the estimate can tighten
	// (the paper's ns case decreases by 15%), but each estimate must
	// upper-bound its own observations, and the large campaign observes
	// at least as high a maximum.
	if large.PWCET(1e-12) < stats.Max(largeSample) {
		t.Fatalf("large-campaign pWCET (%v) below its observed max (%v)",
			large.PWCET(1e-12), stats.Max(largeSample))
	}
	if small.PWCET(1e-12) < stats.Max(smallSample) {
		t.Fatalf("small-campaign pWCET (%v) below its observed max (%v)",
			small.PWCET(1e-12), stats.Max(smallSample))
	}
	if stats.Max(largeSample) < stats.Max(smallSample) {
		t.Fatal("larger campaign observed a lower maximum with nested seeds")
	}
}
