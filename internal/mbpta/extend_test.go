package mbpta

import (
	"context"
	"testing"

	"pubtac/internal/proc"
	"pubtac/internal/stats"
	"pubtac/internal/trace"
)

// TestExtendToMatchesCollect proves the sample-reuse primitive of package
// core: extending a prefix campaign to R runs is bit-identical to
// collecting all R runs from scratch, at any split point and worker count.
func TestExtendToMatchesCollect(t *testing.T) {
	tr := trace.Repeat(trace.FromLetters("ABCDEFGHIJ", 32), 60)
	model := proc.DefaultModel()
	const root = 0xFEED
	full := Collect(tr, model, 300, root, 1)
	for _, split := range []int{0, 1, 137, 299, 300} {
		for _, workers := range []int{1, 4} {
			prefix := Collect(tr, model, split, root, workers)
			got, err := ExtendToCtx(context.Background(), tr, model, prefix, 300, root, workers, nil)
			if err != nil {
				t.Fatalf("split %d: %v", split, err)
			}
			if len(got) != len(full) {
				t.Fatalf("split %d: len %d, want %d", split, len(got), len(full))
			}
			for i := range full {
				if got[i] != full[i] {
					t.Fatalf("split %d workers %d: run %d = %v, want %v",
						split, workers, i, got[i], full[i])
				}
			}
		}
	}
	// A target at or below the current size is a no-op returning the input.
	prefix := full[:100]
	got, err := ExtendToCtx(context.Background(), tr, model, prefix, 50, root, 1, nil)
	if err != nil || len(got) != 100 {
		t.Fatalf("shrinking target: got len %d err %v, want the input back", len(got), err)
	}
}

// TestNewEstimateSortedMatchesUnsorted checks the sorted-view estimation
// path end to end: same tail, same CV diagnostics, same curve values.
func TestNewEstimateSortedMatchesUnsorted(t *testing.T) {
	tr := trace.Repeat(trace.FromLetters("ABCDEFGHIJKL", 32), 40)
	sample := Collect(tr, proc.DefaultModel(), 2000, 3, 0)
	cfg := DefaultConfig()
	a, errA := NewEstimate(sample, cfg)
	b, errB := NewEstimateSorted(sample, stats.SortedCopy(sample), cfg)
	if errA != nil || errB != nil {
		t.Fatalf("estimate errors: %v / %v", errA, errB)
	}
	if *a.Tail != *b.Tail || a.CV != b.CV {
		t.Fatalf("tail/CV mismatch: %+v %+v vs %+v %+v", a.Tail, a.CV, b.Tail, b.CV)
	}
	for _, p := range []float64{1e-3, 1e-6, 1e-9, 1e-12, 1e-15} {
		if a.PWCET(p) != b.PWCET(p) {
			t.Fatalf("PWCET(%g): %v vs %v", p, a.PWCET(p), b.PWCET(p))
		}
	}
}
