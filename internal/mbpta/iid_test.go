package mbpta

import (
	"math"
	"testing"

	"pubtac/internal/proc"
	"pubtac/internal/stats"
)

func sameTest(a, b stats.TestResult) bool {
	return a.Name == b.Name && a.Statistic == b.Statistic && a.PValue == b.PValue
}

func closeTest(a, b stats.TestResult, tol float64) bool {
	relOK := func(x, y float64) bool {
		scale := math.Max(1, math.Max(math.Abs(x), math.Abs(y)))
		return math.Abs(x-y) <= tol*scale
	}
	return a.Name == b.Name && relOK(a.Statistic, b.Statistic) && relOK(a.PValue, b.PValue)
}

// TestNewEstimateIIDMatchesSorted: feeding the incremental battery the whole
// sample reproduces NewEstimateSorted — identical fit, curve and CV, with
// the battery report matching the reference (runs/KS bit-identically,
// Ljung-Box to reassociation error).
func TestNewEstimateIIDMatchesSorted(t *testing.T) {
	tr := loopTrace(10, 80)
	sample := Collect(tr, proc.DefaultModel(), 2000, 17, 0)
	cfg := DefaultConfig()
	sorted := stats.SortedCopy(sample)

	ref, err := NewEstimateSorted(sample, sorted, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := new(stats.IIDState)
	st.Push(sample)
	inc, err := NewEstimateIID(sample, sorted, st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *ref.Tail != *inc.Tail || ref.CV != inc.CV {
		t.Fatalf("fit diverged: %+v/%+v vs %+v/%+v", ref.Tail, ref.CV, inc.Tail, inc.CV)
	}
	for _, p := range []float64{1e-3, 1e-9, 1e-15} {
		if ref.PWCET(p) != inc.PWCET(p) {
			t.Fatalf("PWCET(%g): %v vs %v", p, ref.PWCET(p), inc.PWCET(p))
		}
	}
	if !sameTest(ref.IID.Runs, inc.IID.Runs) || !sameTest(ref.IID.Identical, inc.IID.Identical) {
		t.Fatalf("battery diverged: %+v vs %+v", ref.IID, inc.IID)
	}
	if !closeTest(ref.IID.LjungBox, inc.IID.LjungBox, 1e-8) {
		t.Fatalf("ljung-box diverged: %+v vs %+v", ref.IID.LjungBox, inc.IID.LjungBox)
	}
}

// TestIIDStateMatchesCheckIIDOnCampaigns is the equivalence oracle on real
// campaign samples: the battery pushed in collectBlock-sized chunks (the
// granularity core's campaign workers deliver runs at) must reproduce the
// one-shot CheckIID report across randomized campaigns.
func TestIIDStateMatchesCheckIIDOnCampaigns(t *testing.T) {
	m := proc.DefaultModel()
	for _, root := range []uint64{1, 77, 0xBEEF} {
		for _, n := range []int{400, 1500, 2*collectBlock - 5} {
			sample := Collect(loopTrace(9, 70), m, n, root, 0)
			want := stats.CheckIID(sample)
			st := new(stats.IIDState)
			for lo := 0; lo < n; lo += collectBlock {
				hi := lo + collectBlock
				if hi > n {
					hi = n
				}
				st.Push(sample[lo:hi])
			}
			got := st.Report()
			if !sameTest(got.Runs, want.Runs) || !sameTest(got.Identical, want.Identical) {
				t.Fatalf("root=%d n=%d: battery %+v != one-shot %+v", root, n, got, want)
			}
			if !closeTest(got.LjungBox, want.LjungBox, 1e-8) {
				t.Fatalf("root=%d n=%d: ljung-box %+v != one-shot %+v", root, n, got.LjungBox, want.LjungBox)
			}
		}
	}
}

// TestConvergeReferenceIIDEquivalence runs the same convergence search with
// the incremental battery and with Config.ReferenceIID (the one-shot
// CheckIID oracle every round): the searches must take identical paths —
// same runs, rounds and pWCET, since the battery is diagnostic — and the
// final admissibility reports must agree.
func TestConvergeReferenceIIDEquivalence(t *testing.T) {
	tr := loopTrace(8, 60)
	m := proc.DefaultModel()
	cfg := DefaultConfig()
	cfg.InitialRuns = 300
	cfg.Increment = 300
	cfg.MaxRuns = 20000

	fast, err := Converge(tr, m, cfg, 23)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ReferenceIID = true
	ref, err := Converge(tr, m, cfg, 23)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Runs != ref.Runs || fast.Rounds != ref.Rounds || fast.Converged != ref.Converged {
		t.Fatalf("search paths diverged: %d/%d/%v vs %d/%d/%v",
			fast.Runs, fast.Rounds, fast.Converged, ref.Runs, ref.Rounds, ref.Converged)
	}
	if fast.Estimate.PWCET(1e-12) != ref.Estimate.PWCET(1e-12) {
		t.Fatalf("pWCET diverged: %v vs %v", fast.Estimate.PWCET(1e-12), ref.Estimate.PWCET(1e-12))
	}
	fi, ri := fast.Estimate.IID, ref.Estimate.IID
	if !sameTest(fi.Runs, ri.Runs) || !sameTest(fi.Identical, ri.Identical) {
		t.Fatalf("battery diverged: %+v vs %+v", fi, ri)
	}
	if !closeTest(fi.LjungBox, ri.LjungBox, 1e-8) {
		t.Fatalf("ljung-box diverged: %+v vs %+v", fi.LjungBox, ri.LjungBox)
	}
	fs, ok := fast.Summary.(*stats.FullSummary)
	if !ok {
		t.Fatalf("non-streaming search should carry a *stats.FullSummary, got %T", fast.Summary)
	}
	if fs.N() != fast.Runs {
		t.Fatalf("summary covers %d runs, campaign has %d", fs.N(), fast.Runs)
	}
	if ref.Summary.N() != ref.Runs {
		t.Fatalf("reference summary covers %d runs, campaign has %d", ref.Summary.N(), ref.Runs)
	}
}
