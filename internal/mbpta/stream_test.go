package mbpta

import (
	"math"
	"testing"

	"pubtac/internal/proc"
	"pubtac/internal/stats"
)

// streamCfg returns a laptop-sized convergence config with the streaming
// estimation arm enabled at the given budget.
func streamCfg(budget int) Config {
	cfg := DefaultConfig()
	cfg.InitialRuns = 300
	cfg.Increment = 300
	cfg.MaxRuns = 6000
	cfg.Streaming = true
	cfg.StreamBudget = budget
	return cfg
}

// TestConvergeStreamingMatchesReference: with a budget comfortably above the
// auto-fit window (n/5), a streaming convergence run must reproduce the
// full-sample reference bit for bit on everything the pWCET depends on —
// run counts, round counts, the fitted tail, the CV test and the curve —
// while retaining no sample. The KS check stays bit-identical too (integer
// cycle grids keep the sketch exact and the first-half retention covers
// n/2); Ljung-Box agrees to reassociation error and the runs test to the
// documented per-block-median drift.
func TestConvergeStreamingMatchesReference(t *testing.T) {
	tr := loopTrace(8, 60)
	m := proc.DefaultModel()
	cfg := streamCfg(8192)
	refCfg := cfg
	refCfg.Streaming = false
	refCfg.StreamBudget = 0

	for _, workers := range []int{1, 4} {
		cfg.Workers, refCfg.Workers = workers, workers
		fast, err := Converge(tr, m, cfg, 11)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := Converge(tr, m, refCfg, 11)
		if err != nil {
			t.Fatal(err)
		}

		if fast.Runs != ref.Runs || fast.Rounds != ref.Rounds || fast.Converged != ref.Converged {
			t.Fatalf("workers=%d: trajectory diverged: (%d,%d,%v) vs (%d,%d,%v)", workers,
				fast.Runs, fast.Rounds, fast.Converged, ref.Runs, ref.Rounds, ref.Converged)
		}
		fe, re := fast.Estimate, ref.Estimate
		if *fe.Tail != *re.Tail || fe.CV != re.CV {
			t.Fatalf("workers=%d: fit diverged: %+v/%+v vs %+v/%+v", workers, fe.Tail, fe.CV, re.Tail, re.CV)
		}
		for _, p := range []float64{1e-3, 1e-6, 1e-9, 1e-12, 1e-15} {
			if fe.PWCET(p) != re.PWCET(p) {
				t.Fatalf("workers=%d: PWCET(%g): %v vs %v", workers, p, fe.PWCET(p), re.PWCET(p))
			}
		}
		if fe.MaxObserved() != re.MaxObserved() || fe.Runs() != re.Runs() {
			t.Fatalf("workers=%d: view diverged: max %v/%v, n %d/%d", workers,
				fe.MaxObserved(), re.MaxObserved(), fe.Runs(), re.Runs())
		}

		// The streaming arm retains no sample and bounds its memory.
		if _, ok := fast.Summary.(*stats.StreamingSummary); !ok {
			t.Fatalf("workers=%d: summary is %T, want StreamingSummary", workers, fast.Summary)
		}
		if fe.Sample != nil {
			t.Fatalf("workers=%d: streaming estimate retained the sample", workers)
		}
		if re.Sample == nil || len(re.Sample) != ref.Runs {
			t.Fatalf("workers=%d: reference estimate lost its sample", workers)
		}
		if fast.Summary.PeakBytes() >= ref.Summary.PeakBytes() {
			t.Fatalf("workers=%d: streaming peak %d B not below full-sample peak %d B", workers,
				fast.Summary.PeakBytes(), ref.Summary.PeakBytes())
		}

		if !sameTest(fe.IID.Identical, re.IID.Identical) {
			t.Fatalf("workers=%d: ks diverged: %+v vs %+v", workers, fe.IID.Identical, re.IID.Identical)
		}
		if !closeTest(fe.IID.LjungBox, re.IID.LjungBox, 1e-8) {
			t.Fatalf("workers=%d: ljung-box diverged: %+v vs %+v", workers, fe.IID.LjungBox, re.IID.LjungBox)
		}
		if math.Abs(fe.IID.Runs.Statistic-re.IID.Runs.Statistic) > 0.25 {
			t.Fatalf("workers=%d: runs drifted: %+v vs %+v", workers, fe.IID.Runs, re.IID.Runs)
		}
	}
}

// TestConvergeStreamingDeterministic: the streaming arm keeps the repo's
// determinism contract — identical results at any worker count.
func TestConvergeStreamingDeterministic(t *testing.T) {
	tr := loopTrace(6, 40)
	m := proc.DefaultModel()
	cfg := streamCfg(1024)
	cfg.Workers = 1
	base, err := Converge(tr, m, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		cfg.Workers = workers
		c, err := Converge(tr, m, cfg, 7)
		if err != nil {
			t.Fatal(err)
		}
		if c.Runs != base.Runs || *c.Estimate.Tail != *base.Estimate.Tail ||
			c.Estimate.PWCET(1e-12) != base.Estimate.PWCET(1e-12) {
			t.Fatalf("workers=%d diverged from workers=1", workers)
		}
		if c.Summary.(*stats.StreamingSummary).PeakBytes() != base.Summary.PeakBytes() {
			t.Fatalf("workers=%d: peak bytes not deterministic", workers)
		}
	}
}

// TestConvergeStreamingSingleRound: a campaign whose ceiling equals the
// initial round converges (or stops) in one round without touching the
// extension path.
func TestConvergeStreamingSingleRound(t *testing.T) {
	cfg := streamCfg(1024)
	cfg.InitialRuns = 400
	cfg.MaxRuns = 400
	c, err := Converge(loopTrace(6, 40), proc.DefaultModel(), cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c.Runs != 400 || c.Rounds != 0 {
		t.Fatalf("runs=%d rounds=%d, want 400 with no extension rounds", c.Runs, c.Rounds)
	}
	if c.Estimate == nil || c.Summary.N() != 400 {
		t.Fatal("estimate/summary inconsistent")
	}
}

// TestConvergeStreamingMemoryIndependentOfRuns pins the acceptance
// criterion: growing the campaign 5x leaves the streaming arm's peak
// estimation memory unchanged — it is a function of the budget, not of the
// run count — while the full-sample arm's grows linearly.
func TestConvergeStreamingMemoryIndependentOfRuns(t *testing.T) {
	tr := loopTrace(6, 40)
	m := proc.DefaultModel()
	cfg := streamCfg(256)
	cfg.InitialRuns = 500
	cfg.Increment = 500
	cfg.StabilityEps = 0 // never stable: always runs to MaxRuns
	cfg.StableRounds = 3

	peaks := map[int]int{}
	for _, maxRuns := range []int{2000, 10000} {
		cfg2 := cfg
		cfg2.MaxRuns = maxRuns
		c, err := Converge(tr, m, cfg2, 13)
		if err != nil {
			t.Fatal(err)
		}
		if c.Converged {
			t.Fatal("cannot converge with eps=0")
		}
		if c.Summary.N() != maxRuns {
			t.Fatalf("n=%d, want %d", c.Summary.N(), maxRuns)
		}
		peaks[maxRuns] = c.Summary.PeakBytes()
	}
	// Peak memory is a function of the budget, not the run count: the 5x
	// campaign may fill a few more sketch buckets, nothing more.
	if peaks[10000] > peaks[2000]+1024 {
		t.Fatalf("streaming peak grew with the campaign: %d B at 2k runs, %d B at 10k", peaks[2000], peaks[10000])
	}
	if bound := 48*256 + 8192; peaks[10000] > bound {
		t.Fatalf("streaming peak %d B exceeds budget bound %d B", peaks[10000], bound)
	}

	full := cfg
	full.Streaming = false
	full.MaxRuns = 10000
	c, err := Converge(tr, m, full, 13)
	if err != nil {
		t.Fatal(err)
	}
	if c.Summary.PeakBytes() < 10000*8 {
		t.Fatalf("full-sample peak %d B implausibly small", c.Summary.PeakBytes())
	}
}
