package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64Deterministic(t *testing.T) {
	a := NewSplitMix64(42)
	b := NewSplitMix64(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Next(), b.Next(); av != bv {
			t.Fatalf("iteration %d: %d != %d", i, av, bv)
		}
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values from the canonical splitmix64 implementation
	// (Vigna), seed 0: first outputs.
	s := NewSplitMix64(0)
	want := []uint64{
		0xE220A8397B1DCDAF,
		0x6E789E6AA1B965F4,
		0x06C45D188009454F,
	}
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Errorf("output %d: got %#x want %#x", i, got, w)
		}
	}
}

func TestMix64MatchesSplitMix(t *testing.T) {
	// Mix64(seed) must equal the first output of SplitMix64 seeded with seed.
	f := func(seed uint64) bool {
		return Mix64(seed) == NewSplitMix64(seed).Next()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestXoshiroNotAllZero(t *testing.T) {
	x := New(0)
	var nonzero bool
	for i := 0; i < 10; i++ {
		if x.Uint64() != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("generator stuck at zero")
	}
}

func TestIntnRange(t *testing.T) {
	x := New(7)
	for _, n := range []int{1, 2, 3, 7, 64, 1000} {
		for i := 0; i < 2000; i++ {
			v := x.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	// Chi-square goodness of fit over 64 buckets; loose bound (df=63,
	// p=0.001 critical value ~ 103.4).
	x := New(123)
	const buckets = 64
	const samples = 64 * 10000
	var counts [buckets]int
	for i := 0; i < samples; i++ {
		counts[x.Intn(buckets)]++
	}
	expected := float64(samples) / buckets
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 110 {
		t.Fatalf("chi2 = %.2f, distribution looks non-uniform", chi2)
	}
}

func TestFloat64Range(t *testing.T) {
	x := New(99)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := x.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean = %v, want ~0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	x := New(5)
	f := func(nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := x.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStreamIndependence(t *testing.T) {
	// Different stream indices from the same root must differ, and the same
	// index must be stable.
	seen := make(map[uint64]int)
	for i := 0; i < 10000; i++ {
		s := Stream(42, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("streams %d and %d collide", prev, i)
		}
		seen[s] = i
	}
	if Stream(42, 3) != Stream(42, 3) {
		t.Fatal("Stream is not deterministic")
	}
	if Stream(42, 3) == Stream(43, 3) {
		t.Fatal("Stream ignores root seed")
	}
}

func BenchmarkXoshiroUint64(b *testing.B) {
	x := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = x.Uint64()
	}
	_ = sink
}

func BenchmarkMix64(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = Mix64(uint64(i))
	}
	_ = sink
}
