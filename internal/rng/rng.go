// Package rng provides small, fast, deterministic pseudo-random number
// generators used throughout the simulator.
//
// Reproducibility is a hard requirement for a measurement-based timing
// analysis framework: every experiment in the repository derives all of its
// randomness from a single root seed, so results are bit-identical across
// runs and platforms. Two generators are provided:
//
//   - SplitMix64: a tiny 64-bit generator mainly used for seeding and for
//     stateless hashing (random cache placement).
//   - Xoshiro256: xoshiro256**, the workhorse generator for per-run random
//     sequences (replacement decisions, synthetic workloads).
//
// Both are allocation-free and safe to value-copy.
package rng

import "math/bits"

// golden is the 64-bit golden ratio constant used by SplitMix64.
const golden = 0x9E3779B97F4A7C15

// SplitMix64 is D. Lemire / S. Vigna's splitmix64 generator. The zero value
// is a valid generator seeded with 0.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next 64-bit value in the sequence.
func (s *SplitMix64) Next() uint64 {
	s.state += golden
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Mix64 applies the splitmix64 finalizer to x. It is a high-quality 64-bit
// mixing function: distinct inputs produce statistically independent
// outputs. It is the basis of the parametric random cache placement.
func Mix64(x uint64) uint64 {
	x += golden
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Xoshiro256 is the xoshiro256** generator by Blackman and Vigna. It has a
// period of 2^256-1 and excellent statistical quality. Use New to obtain a
// properly seeded instance; the zero value is invalid (all-zero state).
type Xoshiro256 struct {
	s [4]uint64
}

// New returns a Xoshiro256 seeded from seed via SplitMix64, following the
// seeding procedure recommended by the xoshiro authors.
func New(seed uint64) *Xoshiro256 {
	var x Xoshiro256
	x.Reseed(seed)
	return &x
}

// Reseed resets the generator in place to the state New(seed) would produce.
// Reusing a generator across runs through Reseed avoids one heap allocation
// per run, which matters in campaigns of 10^5-10^6 runs.
func (x *Xoshiro256) Reseed(seed uint64) {
	sm := SplitMix64{state: seed}
	for i := range x.s {
		x.s[i] = sm.Next()
	}
	// Guard against the (astronomically unlikely) all-zero state.
	if x.s[0]|x.s[1]|x.s[2]|x.s[3] == 0 {
		x.s[0] = golden
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64-bit value.
func (x *Xoshiro256) Uint64() uint64 {
	result := rotl(x.s[1]*5, 7) * 9
	t := x.s[1] << 17
	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = rotl(x.s[3], 45)
	return result
}

// Intn returns a uniformly distributed integer in [0, n). It panics if
// n <= 0. Lemire's multiply-shift rejection method avoids modulo bias.
func (x *Xoshiro256) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(x.boundedUint64(uint64(n)))
}

// boundedUint64 returns a uniform value in [0, n) using Lemire's method.
func (x *Xoshiro256) boundedUint64(n uint64) uint64 {
	for {
		v := x.Uint64()
		hi, lo := bits.Mul64(v, n)
		if lo >= n || lo >= (-n)%n {
			return hi
		}
	}
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (x *Xoshiro256) Float64() float64 {
	return float64(x.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n) as a slice, using the
// Fisher-Yates shuffle.
func (x *Xoshiro256) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := x.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Stream derives the seed of the i-th independent random stream from a root
// seed. Streams derived from the same root with distinct indices behave as
// statistically independent generators; experiment engines use one stream
// per run so that campaigns are reproducible and order-independent under
// parallel execution.
func Stream(root uint64, i int) uint64 {
	return Mix64(root ^ Mix64(uint64(i)+1))
}
