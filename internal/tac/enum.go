package tac

import (
	"context"
	"math"
	"math/bits"
	"sort"
	"sync/atomic"

	"pubtac/internal/cache"
	"pubtac/internal/pool"
	"pubtac/internal/rng"
	"pubtac/internal/trace"
)

// This file is the default group enumeration: candidates are screened by a
// reuse-distance prefilter computed from the posting-list index (index.go),
// survivors replay their subsequence once — all PinSeeds replacement
// streams batched into a single k-way merge pass over the postings — and,
// when Config.Workers allows, surviving groups fan out over a bounded
// worker pool with deterministic ordered collection. The produced Analysis
// is bit-identical to the reference enumeration (tac.go): the prefilter
// bound provably dominates the replayed impact, so it only discards groups
// the relevance threshold would discard anyway, and every replacement draw
// of a surviving group's replay reproduces the reference order.

// evalChunk is the work-stealing granularity of the parallel evaluation:
// workers claim this many surviving groups per atomic fetch.
const evalChunk = 8

// minParallelGroups is the smallest survivor count worth fanning out;
// below it, goroutine startup would rival the replays themselves.
const minParallelGroups = 16

// analyzeCacheIndexed enumerates and evaluates conflict groups for one
// cache through the posting-list index, consuming the side's dense line-ID
// projection (CompiledTrace.SideIDs/SideLines). It mirrors
// analyzeCacheReference decision for decision; see the file comment for
// why results are bit-identical.
//
//pubtac:fastpath tac-enum
func analyzeCacheIndexed(ids []int32, lines []uint64, kind trace.Kind, cfgC cache.Config, cfg Config,
	missCost, baselineMean float64) []Group {

	sx := buildSideIndex(ids, lines, cfgC, cfg)
	h := len(sx.hot)
	w := cfgC.Ways
	maxK := w + 1 + cfg.MaxExtraWays
	if maxK > h {
		maxK = h
	}
	thresh := cfg.MinImpactRel * baselineMean
	// The prefilter bound dominates the replayed impact only when extra
	// misses cannot lower the impact (missCost >= 0) and the replay itself
	// is well-defined (PinSeeds > 0; a zero-seed replay yields NaN impacts
	// that the threshold comparison keeps, so nothing may be pruned). A NaN
	// threshold (BaselineSeeds = 0) likewise keeps everything in the
	// reference arm — "impact < NaN" is false — so pruning against it
	// ("bound >= NaN", also false) would invert the contract.
	prefilter := missCost >= 0 && cfg.PinSeeds > 0 && !math.IsNaN(thresh)

	var out []Group
	var cands []uint16
	var bounds, baseSums []float64
	for k := w + 1; k <= maxK; k++ {
		// Presize the survivor lists to the candidate count (bounded: when
		// the prefilter prunes aggressively the worst case would be pure
		// waste, and append growth amortizes the rest). cands is checked
		// separately — a later, larger k needs k more slots per candidate.
		if want := binomialCapped(h, k, 1024); cap(bounds) < want || cap(cands) < want*k {
			cands = make([]uint16, 0, want*k)
			bounds = make([]float64, 0, want)
			baseSums = make([]float64, 0, want)
		}
		cands, bounds, baseSums = sx.enumerate(k, missCost, thresh, prefilter,
			cands[:0], bounds[:0], baseSums[:0])
		n := len(bounds)
		if n == 0 {
			continue
		}
		impacts := sx.evalCands(cands, bounds, k, w, cfg)
		prob := math.Pow(1/float64(cfgC.Sets), float64(k-1))
		for i := 0; i < n; i++ {
			impact := (impacts[i] - baseSums[i]) * missCost
			if impact < thresh {
				continue
			}
			// Group.Lines is allocated here, for survivors of the relevance
			// threshold only — candidates discarded by the prefilter or the
			// replay never materialize a lines slice.
			cand := cands[i*k : (i+1)*k]
			lines := make([]uint64, k)
			for j, hi := range cand {
				lines[j] = sx.hot[hi]
			}
			out = append(out, Group{Kind: kind, Lines: lines, Prob: prob, Impact: impact})
		}
	}
	return out
}

// enumerate visits every size-k hot-line combination in the reference
// order, applies the reuse-distance prefilter, and appends the survivors'
// packed hot indices, impact upper bounds and baseline sums. The bound per
// line b of a group G is min(occ_b, 1 + sum_{a in G} itl[a][b]): the first
// access is the only possible cold miss, and every further miss of b needs
// another group line accessed (and itself missing) inside b's reuse gap —
// a union bound over the pairwise interleavings, sound for random
// replacement where LRU-style "W distinct lines intervene" reasoning is
// not (a single interfering miss can evict b). Summed over the group and
// run through the same float operations as the real impact, the bound
// dominates it, so bound < thresh implies the reference arm would discard
// the group too.
func (sx *sideIndex) enumerate(k int, missCost, thresh float64, prefilter bool,
	cands []uint16, bounds, baseSums []float64) ([]uint16, []float64, []float64) {

	h := len(sx.hot)
	if k > h || k <= 0 {
		return cands, bounds, baseSums
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		var pot int64
		var baseSum float64
		for _, b := range idx {
			s := int64(1)
			for _, a := range idx {
				if a != b {
					s += int64(sx.itl[a*h+b])
				}
			}
			if o := int64(sx.occ[b]); o < s {
				s = o
			}
			pot += s
			baseSum += sx.base[b]
		}
		bound := (float64(pot) - baseSum) * missCost
		if !prefilter || bound >= thresh {
			for _, b := range idx {
				cands = append(cands, uint16(b))
			}
			bounds = append(bounds, bound)
			baseSums = append(baseSums, baseSum)
		}
		// Advance to the next combination (same order as combinations).
		i := k - 1
		for i >= 0 && idx[i] == h-k+i {
			i--
		}
		if i < 0 {
			return cands, bounds, baseSums
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// binomialCapped returns C(n, k) clamped to limit (and on overflow).
func binomialCapped(n, k, limit int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	v := 1
	for i := 1; i <= k; i++ {
		v = v * (n - k + i) / i
		if v >= limit || v < 0 {
			return limit
		}
	}
	return v
}

// evalCands computes every surviving candidate's mean pinned miss count.
// With Workers > 1 and enough survivors, groups fan out over a bounded
// pool.Group: workers claim bound-descending chunks (heaviest replays
// first, for load balance) but write into impacts by candidate index, so
// the result — and therefore the Analysis — is independent of the worker
// count and schedule.
func (sx *sideIndex) evalCands(cands []uint16, bounds []float64, k, ways int, cfg Config) []float64 {
	n := len(bounds)
	impacts := make([]float64, n)
	workers := cfg.Workers
	if workers > (n+evalChunk-1)/evalChunk {
		workers = (n + evalChunk - 1) / evalChunk
	}
	if workers <= 1 || n < minParallelGroups {
		st := newPinState(cfg, ways, k)
		for i := 0; i < n; i++ {
			impacts[i] = st.eval(sx, cands[i*k:(i+1)*k], ways, cfg)
		}
		return impacts
	}
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		oa, ob := order[a], order[b]
		if bounds[oa] != bounds[ob] {
			return bounds[oa] > bounds[ob]
		}
		return oa < ob
	})
	var next atomic.Int64
	g, _ := pool.WithContext(context.Background())
	g.SetLimit(workers)
	for t := 0; t < workers; t++ {
		g.Go(func() error {
			st := newPinState(cfg, ways, k)
			for {
				lo := int(next.Add(evalChunk)) - evalChunk
				if lo >= n {
					return nil
				}
				hi := lo + evalChunk
				if hi > n {
					hi = n
				}
				for _, i := range order[lo:hi] {
					impacts[i] = st.eval(sx, cands[int(i)*k:(int(i)+1)*k], ways, cfg)
				}
			}
		})
	}
	// Tasks return no errors and the context is private, so Wait only
	// synchronizes completion (making the impacts writes visible here).
	_ = g.Wait()
	return impacts
}

// pinState is one evaluator's scratch for the batched pinned replay: the
// per-seed initial replacement-stream states (derived once, copied per
// group instead of re-hashed), the pinned set's slot-to-line map and the
// per-line posting cursors. One instance serves any number of groups;
// parallel workers each own one.
type pinState struct {
	init  []rng.Xoshiro256 // per pin seed: replacement stream's initial state
	gen   rng.Xoshiro256   // working stream of the current (group, seed)
	slots []int32          // pinned set: slot -> group line (index into cand)
	cur   []int32          // per group line: posting cursor
	end   []int32          // per group line: posting end (group-constant)
	next  []int32          // per group line: cached next position (exhausted when done)
}

// exhausted marks a drained posting cursor; it compares above every real
// position.
const exhausted = int32(math.MaxInt32)

func newPinState(cfg Config, ways, k int) *pinState {
	st := &pinState{
		init:  make([]rng.Xoshiro256, cfg.PinSeeds),
		slots: make([]int32, ways),
		cur:   make([]int32, k),
		end:   make([]int32, k),
		next:  make([]int32, k),
	}
	for s := range st.init {
		st.init[s].Reseed(rng.Stream(cfg.Seed^0x51AC, s))
	}
	return st
}

// eval replays the group's subsequence against a single pinned set of ways
// ways with random replacement and returns the mean miss count over the
// PinSeeds replacement streams — pinnedImpact's event "all group lines
// co-mapped", computed from the postings instead of a materialized
// subsequence.
//
// The replay is event-driven: an access can only miss when its line is
// currently out of the set, and accesses to in-set lines change nothing
// (random replacement keeps no recency state), so each seed jumps straight
// from miss to miss — the earliest next posting among the out lines — and
// never touches the subsequence's hits. Misses happen at the same
// positions, and victims are drawn from the same stream in the same order,
// as in the reference scan, so the mean is bit-identical.
func (st *pinState) eval(sx *sideIndex, cand []uint16, ways int, cfg Config) float64 {
	k := len(cand)
	post := sx.post
	for j, hi := range cand {
		st.end[j] = sx.off[hi+1]
	}
	var total float64
	for s := range st.init {
		st.gen = st.init[s]
		for j, hi := range cand {
			c := sx.off[hi]
			st.cur[j] = c
			st.next[j] = post[c] // postings are non-empty (hot lines have >= 2 accesses)
		}
		out := uint64(1)<<k - 1 // lines not in the set; initially all
		setLen := 0
		pos := int32(-1)
		misses := 0
		for out != 0 {
			if setLen == ways && out&(out-1) == 0 {
				// Exactly one line out (always the case once a k = W+1
				// group is warm): every event is a miss on that line, and
				// the victim it evicts becomes the next out line — a
				// two-array chase with no mask bookkeeping. The replay ends
				// when the current out line is never accessed again: all
				// other lines sit in the set, so no further miss is
				// possible.
				b := bits.TrailingZeros64(out)
				c, end := st.cur[b], st.end[b]
				for {
					for c < end && post[c] <= pos {
						c++
					}
					if c >= end {
						break
					}
					pos = post[c]
					misses++
					v := st.gen.Intn(ways)
					evicted := st.slots[v]
					st.slots[v] = int32(b)
					st.cur[b] = c
					b = int(evicted)
					c, end = st.cur[b], st.end[b]
				}
				break
			}
			// Next event: the earliest access at a position > pos among the
			// out lines. next caches each line's upcoming position; it goes
			// stale only while a line sits in the set, so the catch-up walk
			// runs once per eviction and cursors only ever move forward.
			bestLine := -1
			best := exhausted
			for m := out; m != 0; m &= m - 1 {
				b := bits.TrailingZeros64(m)
				n := st.next[b]
				if n <= pos {
					c, end := st.cur[b], st.end[b]
					for c < end && post[c] <= pos {
						c++
					}
					st.cur[b] = c
					if c < end {
						n = post[c]
					} else {
						n = exhausted
					}
					st.next[b] = n
				}
				if n < best {
					bestLine, best = b, n
				}
			}
			if bestLine < 0 {
				break
			}
			pos = best
			misses++
			if setLen < ways {
				st.slots[setLen] = int32(bestLine)
				setLen++
				out &^= 1 << bestLine
			} else {
				v := st.gen.Intn(ways)
				evicted := st.slots[v]
				st.slots[v] = int32(bestLine)
				out = out&^(1<<bestLine) | 1<<uint(evicted)
			}
		}
		total += float64(misses)
	}
	return total / float64(cfg.PinSeeds)
}
