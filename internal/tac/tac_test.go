package tac

import (
	"math"
	"testing"
	"testing/quick"

	"pubtac/internal/cache"
	"pubtac/internal/proc"
	"pubtac/internal/trace"
)

// paperModel is the hardware of the Section 3.1 worked examples: S=8 sets,
// W=4 ways (per cache), so a group of 5 lines in one set has probability
// (1/8)^4 = 1/4096.
func paperModel() proc.Model {
	c := cache.Config{Sets: 8, Ways: 4, LineBytes: 32,
		Placement: cache.RandomPlacement, Replacement: cache.RandomReplacement}
	return proc.Model{IL1: c, DL1: c, Lat: proc.DefaultLatency()}
}

func TestMinRunsFor(t *testing.T) {
	cases := []struct {
		p, miss float64
		want    int
	}{
		{0, 1e-9, 0},
		{1, 1e-9, 1},
		{0.5, 0.25, 2},
		{0.5, 0.5, 1},
	}
	for _, c := range cases {
		if got := MinRunsFor(c.p, c.miss); got != c.want {
			t.Errorf("MinRunsFor(%v,%v) = %d, want %d", c.p, c.miss, got, c.want)
		}
	}
}

func TestMinRunsForProperty(t *testing.T) {
	// (1-p)^R <= miss < (1-p)^(R-1)
	f := func(pRaw, mRaw uint16) bool {
		p := 1e-4 + float64(pRaw%1000)/1001.0*0.9
		miss := math.Pow(10, -1-float64(mRaw%9))
		r := MinRunsFor(p, miss)
		if r < 1 {
			return false
		}
		at := math.Pow(1-p, float64(r))
		before := math.Pow(1-p, float64(r-1))
		return at <= miss*(1+1e-9) && before >= miss*(1-1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSection311SmallWorkingSetNeedsNoRuns(t *testing.T) {
	// M1orig = {ABCA}^1000: 3 distinct addresses cannot overflow a 4-way
	// set, so TAC imposes no extra runs (paper, Section 3.1.1).
	tr := trace.Repeat(trace.FromLetters("ABCA", 32), 1000)
	a, err := Analyze(tr, paperModel(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.MinRuns != 0 {
		t.Fatalf("MinRuns = %d, want 0 (working set fits any set)", a.MinRuns)
	}
	if len(a.Groups) != 0 {
		t.Fatalf("unexpected groups: %+v", a.Groups)
	}
}

func TestSection311PubbedSequence(t *testing.T) {
	// M1pub = {ABCDEA}^1000: 5 distinct addresses, one group of W+1=5 with
	// p = (1/8)^4 = 1/4096; R = ceil(ln(1e-9)/ln(1-1/4096)) = 84873.
	// (The paper reports R > 84875, the small delta being rounding of p.)
	tr := trace.Repeat(trace.FromLetters("ABCDEA", 32), 1000)
	a, err := Analyze(tr, paperModel(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Groups) != 1 {
		t.Fatalf("groups = %d, want 1 (%+v)", len(a.Groups), a.Groups)
	}
	g := a.Groups[0]
	if g.Kind != trace.Data || len(g.Lines) != 5 {
		t.Fatalf("group = %+v", g)
	}
	if math.Abs(g.Prob-1.0/4096) > 1e-12 {
		t.Fatalf("prob = %v, want 1/4096", g.Prob)
	}
	if a.MinRuns != 84873 {
		t.Fatalf("MinRuns = %d, want 84873 (paper: >84875 with rounded p)", a.MinRuns)
	}
}

func TestSection312SixAddresses(t *testing.T) {
	// M1pub = {ABCDEFA}^1000: 6 distinct addresses; abrupt miss counts
	// require 5 of the 6 in one set: 6 equivalent groups, class probability
	// 6*(1/8)^4 = 0.00146, R = 14137 (paper: >14138 with rounded p).
	tr := trace.Repeat(trace.FromLetters("ABCDEFA", 32), 1000)
	a, err := Analyze(tr, paperModel(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Groups) != 6 {
		t.Fatalf("groups = %d, want C(6,5)=6", len(a.Groups))
	}
	if len(a.Classes) == 0 {
		t.Fatal("no classes")
	}
	top := a.Classes[0]
	if top.Groups != 6 {
		t.Fatalf("top class groups = %d, want 6 (equivalent impacts merged)", top.Groups)
	}
	if math.Abs(top.Prob-6.0/4096) > 1e-12 {
		t.Fatalf("class prob = %v, want 6/4096", top.Prob)
	}
	if a.MinRuns != 14137 {
		t.Fatalf("MinRuns = %d, want 14137 (paper: >14138 with rounded p)", a.MinRuns)
	}
}

func TestPaperOrdering(t *testing.T) {
	// The punchline of Section 3.1: R_TAC(M_orig) and R_TAC(M_pub) have no
	// fixed order. 3.1.1: orig {ABCA} needs fewer runs than pubbed
	// {ABCDEA}; 3.1.2: orig {ABCDEA} needs more runs than pubbed
	// {ABCDEFA}.
	m := paperModel()
	cfg := DefaultConfig()
	runsOf := func(s string) int {
		a, err := Analyze(trace.Repeat(trace.FromLetters(s, 32), 1000), m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return a.MinRuns
	}
	if !(runsOf("ABCA") < runsOf("ABCDEA")) {
		t.Fatal("3.1.1 violated: R(orig) should be < R(pubbed)")
	}
	if !(runsOf("ABCDEA") > runsOf("ABCDEFA")) {
		t.Fatal("3.1.2 violated: R(orig) should be > R(pubbed)")
	}
}

func TestInstructionCacheGroups(t *testing.T) {
	// The same analysis applies to instruction fetches on the IL1.
	var tr trace.Trace
	for rep := 0; rep < 500; rep++ {
		for l := uint64(0); l < 5; l++ {
			tr = append(tr, trace.Access{Addr: l * 32, Kind: trace.Instr})
		}
	}
	a, err := Analyze(tr, paperModel(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Groups) != 1 || a.Groups[0].Kind != trace.Instr {
		t.Fatalf("groups = %+v", a.Groups)
	}
}

func TestDefaultPlatformGroupProbability(t *testing.T) {
	// On the paper's evaluation platform (64 sets, 2 ways), a 3-line group
	// has p = (1/64)^2 and R = 84873 as well — the same arithmetic at
	// different geometry.
	tr := trace.Repeat(trace.FromLetters("ABC", 32), 2000)
	a, err := Analyze(tr, proc.DefaultModel(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Groups) != 1 {
		t.Fatalf("groups = %d, want 1", len(a.Groups))
	}
	if p := a.Groups[0].Prob; math.Abs(p-1.0/4096) > 1e-12 {
		t.Fatalf("prob = %v, want 1/4096", p)
	}
	if a.MinRuns != 84873 {
		t.Fatalf("MinRuns = %d", a.MinRuns)
	}
}

func TestLowImpactGroupsFiltered(t *testing.T) {
	// Lines accessed only in one burst (no re-reference after eviction
	// pressure) produce no abrupt impact: a long unique-scan trace has no
	// relevant groups even with many distinct lines.
	var tr trace.Trace
	for l := uint64(0); l < 50; l++ {
		tr = append(tr, trace.Access{Addr: l * 32, Kind: trace.Data})
	}
	a, err := Analyze(tr, proc.DefaultModel(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.MinRuns != 0 {
		t.Fatalf("MinRuns = %d, want 0 for a streaming scan", a.MinRuns)
	}
}

func TestProbFloorExcludesRareClasses(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxExtraWays = 1 // consider k = W+2 = 6-line groups too
	cfg.ProbFloor = 1e-4 // but discard anything rarer than 1e-4
	tr := trace.Repeat(trace.FromLetters("ABCDEA", 32), 1000)
	a, err := Analyze(tr, paperModel(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Single 5-line group has p = 2.4e-4 >= floor: kept. A 6-line group
	// cannot exist (only 5 lines). MinRuns unchanged.
	if a.MinRuns != 84873 {
		t.Fatalf("MinRuns = %d", a.MinRuns)
	}
	cfg.ProbFloor = 1e-3 // now even the 5-line class is below the floor
	a, err = Analyze(tr, paperModel(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.MinRuns != 0 {
		t.Fatalf("MinRuns = %d, want 0 with prob floor 1e-3", a.MinRuns)
	}
}

func TestConfigValidation(t *testing.T) {
	tr := trace.FromLetters("AB", 32)
	bad := DefaultConfig()
	bad.MissProb = 0
	if _, err := Analyze(tr, paperModel(), bad); err == nil {
		t.Fatal("expected error for MissProb=0")
	}
	bad = DefaultConfig()
	bad.HotLines = 1
	if _, err := Analyze(tr, paperModel(), bad); err == nil {
		t.Fatal("expected error for HotLines=1")
	}
}

func TestCombinations(t *testing.T) {
	var got [][]int
	combinations(4, 2, func(idx []int) {
		got = append(got, append([]int(nil), idx...))
	})
	want := [][]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	if len(got) != len(want) {
		t.Fatalf("combinations = %v", got)
	}
	for i := range want {
		if got[i][0] != want[i][0] || got[i][1] != want[i][1] {
			t.Fatalf("combinations = %v", got)
		}
	}
	combinations(3, 5, func([]int) { t.Fatal("k > n must produce nothing") })
	combinations(3, 0, func([]int) { t.Fatal("k = 0 must produce nothing") })
}

func TestEmptyTrace(t *testing.T) {
	a, err := Analyze(nil, paperModel(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.MinRuns != 0 || len(a.Groups) != 0 {
		t.Fatalf("empty trace analysis = %+v", a)
	}
}

func TestAnalysisDeterministic(t *testing.T) {
	tr := trace.Repeat(trace.FromLetters("ABCDEFA", 32), 500)
	a1, err := Analyze(tr, paperModel(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Analyze(tr, paperModel(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a1.MinRuns != a2.MinRuns || len(a1.Groups) != len(a2.Groups) {
		t.Fatal("analysis not deterministic")
	}
}

func BenchmarkAnalyze(b *testing.B) {
	tr := trace.Repeat(trace.FromLetters("ABCDEFGH", 32), 500)
	m := proc.DefaultModel()
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(tr, m, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
