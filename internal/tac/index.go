package tac

import (
	"sort"

	"pubtac/internal/cache"
	"pubtac/internal/rng"
)

// This file builds the per-cache posting-list index behind the default
// group enumeration (enum.go). The reference enumeration pays a full scan
// of the side's line sequence for every candidate group; the index is built
// once per side and gives three things:
//
//   - postings: per hot line, the ascending positions of its accesses. A
//     group's subsequence is a k-way merge of its lines' postings — O(|sub|)
//     per group instead of O(|seq|).
//   - pairwise interleaving counts: itl[a][b] counts the accesses of b whose
//     reuse gap (since the previous access of b) contains at least one
//     access of a. They feed the reuse-distance prefilter's per-group upper
//     bound on forced-placement misses (see groupBound in enum.go).
//   - dense baseline misses: the per-line baseline of the reference arm
//     (baselineLineMisses), recorded into dense line-ID arrays instead of a
//     map, with the cache replayed through the same flat-state loop as
//     proc's compiled engine. Values are bit-identical to the map arm.
type sideIndex struct {
	hot  []uint64 // hot line addresses (count-desc, addr-asc), as hotLines returns
	occ  []int32  // per hot index: total accesses of the line
	off  []int32  // posting offsets: hot line h occupies post[off[h]:off[h+1]]
	post []int32  // concatenated postings (positions in the side's line sequence)

	// itl[a*H+b] counts the non-first accesses of hot line b whose reuse gap
	// contains >= 1 access of hot line a (a != b). An access of b can only
	// miss in a forced-placement replay of a group G when some other line of
	// G was accessed — and itself missed — inside that gap, so summing the
	// column over a in G upper-bounds b's non-cold misses (union bound).
	itl []int32

	// base[h] is the baseline mean miss count of hot line h over
	// BaselineSeeds unconstrained random layouts — the same value the
	// reference arm reads from its map.
	base []float64
}

// buildSideIndex indexes one cache side's line sequence under cfg. The
// sequence arrives pre-projected as dense first-appearance line IDs (ids)
// with their addresses (lines) — proc.Compile's per-side projection, shared
// through CompiledTrace.SideIDs/SideLines so the map work is paid once per
// trace, not re-done per analysis side.
func buildSideIndex(ids []int32, lines []uint64, cfgC cache.Config, cfg Config) *sideIndex {
	counts := make([]int32, len(lines))
	for _, id := range ids {
		counts[id]++
	}

	hotIDs := hotLinesDense(lines, counts, cfg.HotLines)
	h := len(hotIDs)
	sx := &sideIndex{hot: make([]uint64, h)}

	// hotOf maps a dense line ID to its hot index (-1 when not hot).
	hotOf := make([]int32, len(lines))
	for i := range hotOf {
		hotOf[i] = -1
	}
	sx.occ = make([]int32, h)
	for hi, id := range hotIDs {
		sx.hot[hi] = lines[id]
		hotOf[id] = int32(hi)
		sx.occ[hi] = counts[id]
	}

	// Postings, allocated exactly from the occurrence counts.
	sx.off = make([]int32, h+1)
	for hi := range sx.occ {
		sx.off[hi+1] = sx.off[hi] + sx.occ[hi]
	}
	sx.post = make([]int32, sx.off[h])
	next := make([]int32, h)
	copy(next, sx.off[:h])

	// Pairwise interleaving in the same pass: lastPos[a] is the position of
	// a's latest access, so a appears in b's reuse gap (p, i) exactly when
	// lastPos[a] > p at the time b is accessed.
	sx.itl = make([]int32, h*h)
	lastPos := make([]int32, h)
	for i := range lastPos {
		lastPos[i] = -1
	}
	for i, id := range ids {
		b := hotOf[id]
		if b < 0 {
			continue
		}
		sx.post[next[b]] = int32(i)
		next[b]++
		if p := lastPos[b]; p >= 0 {
			for a := 0; a < h; a++ {
				if int32(a) != b && lastPos[a] > p {
					sx.itl[a*h+int(b)]++
				}
			}
		}
		lastPos[b] = int32(i)
	}

	baseAll := baselineLineMissesDense(ids, lines, cfgC, cfg)
	sx.base = make([]float64, h)
	for hi, id := range hotIDs {
		sx.base[hi] = baseAll[id]
	}
	return sx
}

// hotLinesDense is hotLines on dense per-line counts: the IDs of up to n
// of the most frequently accessed lines, count-descending with ties broken
// by address, lines accessed once excluded. Selection and order are
// identical to the reference arm's map-based helper.
func hotLinesDense(lines []uint64, counts []int32, n int) []int32 {
	sel := make([]int32, 0, len(lines))
	for id := range lines {
		if counts[id] >= 2 {
			sel = append(sel, int32(id))
		}
	}
	sort.Slice(sel, func(i, j int) bool {
		if counts[sel[i]] != counts[sel[j]] {
			return counts[sel[i]] > counts[sel[j]]
		}
		return lines[sel[i]] < lines[sel[j]]
	})
	if len(sel) > n {
		sel = sel[:n]
	}
	return sel
}

// baselineLineMissesDense is baselineLineMisses on dense line IDs: the same
// BaselineSeeds random-layout replays of the full sequence, with the cache
// semantics of cache.AccessLine inlined over flat ID-indexed set state (the
// shape of proc's compiled replay) and the per-line miss counts recorded
// into an array instead of a map. Placement keys, replacement draws and LRU
// tie-breaks reproduce cache.Reseed/AccessLine exactly, so the returned
// means are bit-identical to the reference arm's.
func baselineLineMissesDense(ids []int32, lines []uint64, cfgC cache.Config, cfg Config) []float64 {
	nl := len(lines)
	counts := make([]int64, nl)
	setBase := make([]int32, nl)
	nways := cfgC.Sets * cfgC.Ways
	content := make([]int32, nways)
	var lruTick []uint64
	lru := cfgC.Replacement == cache.LRUReplacement
	if lru {
		lruTick = make([]uint64, nways)
	}
	modulo := cfgC.Placement == cache.ModuloPlacement
	mask := uint64(cfgC.Sets - 1)
	ways := int32(cfgC.Ways)
	var gen rng.Xoshiro256

	// Occupancy scratch for the conflict-free shortcut: a seed whose
	// placement maps at most Ways distinct lines into every set can never
	// evict, so each line misses exactly once (its cold miss) and draws
	// nothing — the counts are final without walking the stream, the same
	// analytic answer proc's batched campaign gives such seeds.
	trackOcc := nl <= nways
	var occ []int16
	if trackOcc {
		occ = make([]int16, cfgC.Sets)
	}

	for s := 0; s < cfg.BaselineSeeds; s++ {
		seed := rng.Stream(cfg.Seed^0xBA5E, s)
		key := cache.PlacementKey(seed)
		gen.Reseed(cache.ReplacementSeed(seed))
		conflicted := true
		if trackOcc {
			for i := range occ {
				occ[i] = 0
			}
			conflicted = false
			for id, line := range lines {
				var set int32
				if modulo {
					set = int32(line & mask)
				} else {
					set = int32(rng.Mix64(line^key) & mask)
				}
				setBase[id] = set * ways
				if occ[set]++; occ[set] > int16(ways) {
					conflicted = true
				}
			}
		} else {
			for id, line := range lines {
				if modulo {
					setBase[id] = int32(line&mask) * ways
				} else {
					setBase[id] = int32(rng.Mix64(line^key)&mask) * ways
				}
			}
		}
		if !conflicted {
			for id := range counts {
				counts[id]++
			}
			continue
		}
		for i := range content {
			content[i] = invalidLine
		}
		// lruTick needs no reset: victims are only chosen among ways filled
		// this run, whose ticks were all written this run (the same property
		// cache.Flush and proc's compiled replay rely on).
		var tick uint64
	stream:
		for _, id := range ids {
			tick++
			base := setBase[id]
			for w := int32(0); w < ways; w++ {
				if content[base+w] == id {
					if lru {
						lruTick[base+w] = tick
					}
					continue stream
				}
			}
			counts[id]++
			placed := false
			for w := int32(0); w < ways; w++ {
				if content[base+w] == invalidLine {
					content[base+w] = id
					if lru {
						lruTick[base+w] = tick
					}
					placed = true
					break
				}
			}
			if placed {
				continue
			}
			victim := int32(0)
			if !lru {
				victim = int32(gen.Intn(int(ways)))
			} else {
				oldest := lruTick[base]
				for w := int32(1); w < ways; w++ {
					if lruTick[base+w] < oldest {
						oldest = lruTick[base+w]
						victim = w
					}
				}
			}
			content[base+victim] = id
			if lru {
				lruTick[base+victim] = tick
			}
		}
	}

	out := make([]float64, nl)
	if cfg.BaselineSeeds > 0 {
		for id, c := range counts {
			out[id] = float64(c) / float64(cfg.BaselineSeeds)
		}
	}
	return out
}

// invalidLine is the empty-way sentinel of the dense replays (line IDs and
// hot indices are non-negative).
const invalidLine = -1
