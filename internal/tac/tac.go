// Package tac implements Time-aware Address Conflict analysis (Milutinovic
// et al., Ada-Europe 2017) for time-randomized caches: given the address
// sequence of a program (path), it determines the minimum number of
// measurement runs so that random-placement cache layouts that cause abrupt
// execution-time increases are observed in the campaign with a probability
// high enough for the residual risk to be negligible (below MissProb,
// aligned with the most stringent hardware fault rates, 10^-9).
//
// The analysis follows the published model:
//
//  1. Project the trace onto cache lines, separately per cache (IL1/DL1).
//  2. Enumerate candidate conflict groups: combinations of k = W+1 (up to
//     W+MaxExtraWays+1) hot lines. A group matters when co-mapping its lines
//     into a single set overflows the associativity W and the access pattern
//     interleaves them with long reuse distances.
//  3. Estimate each group's impact (extra cycles versus the baseline run)
//     with a forced-placement simulation: the group's access subsequence is
//     replayed against a single pinned set with random replacement, exactly
//     the event "these k lines fell into the same set".
//  4. A group's probability of occurring in one run under parametric random
//     placement is (1/S)^(k-1); groups with equivalent impact form an event
//     class whose probability is the sum (Section 3.1.2 of the DAC'18 paper
//     combines the C(6,5)=6 equivalent groups into p = 6*(1/S)^4).
//  5. For every relevant class, the minimum number of runs R satisfies
//     (1 - p)^R <= MissProb; the analysis returns the maximum across
//     classes.
package tac

import (
	"fmt"
	"math"
	"sort"

	"pubtac/internal/cache"
	"pubtac/internal/proc"
	"pubtac/internal/rng"
	"pubtac/internal/trace"
)

// Config tunes the analysis. The zero value is unusable; start from
// DefaultConfig.
type Config struct {
	// MissProb is the acceptable probability of not observing a relevant
	// event class in the whole campaign (paper: 10^-9, in line with the
	// most stringent hardware fault probabilities).
	MissProb float64

	// MinImpactRel is the relevance threshold: a group matters when its
	// impact exceeds this fraction of the baseline mean execution time.
	MinImpactRel float64

	// ImpactTol clusters groups into event classes: a group belongs to the
	// class of impact level L when its impact is at least (1-ImpactTol)*L.
	ImpactTol float64

	// HotLines bounds the per-cache candidate lines (most accessed first).
	HotLines int

	// MaxExtraWays extends group sizes beyond W+1 (0 reproduces the
	// paper's arithmetic; each extra way multiplies cost and divides the
	// event probability by S).
	MaxExtraWays int

	// ProbFloor discards event classes rarer than this per-run probability
	// (TAC's ignorance threshold: such layouts are too rare to matter at
	// the certification exceedance level and would demand campaigns of
	// tens of millions of runs).
	ProbFloor float64

	// BaselineSeeds and PinSeeds set how many random layouts are averaged
	// for the baseline and the forced-placement impact estimate.
	BaselineSeeds int
	PinSeeds      int

	// Seed roots the deterministic randomness of the analysis itself.
	Seed uint64

	// Workers bounds the parallel evaluation of the groups surviving the
	// reuse-distance prefilter (<= 1 evaluates serially). Results are
	// deterministic and independent of the worker count; package core
	// threads each path's simulation worker share through here, so
	// Session-level TAC rides the same pool budget as the campaigns.
	Workers int

	// ReferenceEnumeration disables the posting-list enumeration and its
	// reuse-distance prefilter: every candidate group is evaluated with the
	// original full-sequence scan. The Analysis is bit-identical either way
	// (the prefilter only discards groups whose impact upper bound already
	// fails the relevance threshold); the reference arm is kept as the
	// equivalence oracle, mirroring proc's Engine.UseReference and mbpta's
	// Config.ReferenceIID.
	ReferenceEnumeration bool
}

// DefaultConfig returns the configuration used throughout the evaluation.
func DefaultConfig() Config {
	return Config{
		MissProb:      1e-9,
		MinImpactRel:  0.03,
		ImpactTol:     0.30,
		HotLines:      12,
		MaxExtraWays:  0,
		ProbFloor:     1e-5,
		BaselineSeeds: 8,
		PinSeeds:      4,
		Seed:          0x7AC0,
	}
}

// Group is one conflictive address combination.
type Group struct {
	Kind   trace.Kind // which cache the lines belong to
	Lines  []uint64   // line addresses, ascending
	Prob   float64    // per-run probability of co-mapping into one set
	Impact float64    // estimated extra cycles when co-mapped
}

// Class is an equivalence class of groups with comparable impact.
type Class struct {
	Impact float64 // representative (maximum) impact of the class
	Prob   float64 // summed probability of its groups
	Groups int     // number of groups merged
	Runs   int     // minimum runs to observe the class w.p. >= 1-MissProb
}

// Analysis is the outcome of TAC on one address sequence.
type Analysis struct {
	Groups       []Group // relevant groups, impact-descending
	Classes      []Class // event classes, impact-descending
	MinRuns      int     // max Runs across classes (0: no relevant class)
	BaselineMean float64 // baseline mean execution time (cycles)
}

// MinRunsFor returns the minimum R with (1-p)^R <= missProb.
func MinRunsFor(p, missProb float64) int {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	r := math.Log(missProb) / math.Log(1-p)
	return int(math.Ceil(r))
}

// Analyze runs TAC on tr for the given platform model, compiling the trace
// for its baseline campaign itself. Callers that already hold the trace's
// compiled form (package core shares one compilation per analyzed path
// across TAC and the measurement campaigns) use AnalyzeCompiled.
func Analyze(tr trace.Trace, model proc.Model, cfg Config) (*Analysis, error) {
	return AnalyzeCompiled(tr, nil, model, cfg)
}

// AnalyzeCompiled is Analyze reusing ct, a shared compilation of tr for the
// model (nil compiles one here). The baseline replays the compilation
// per seed — same seeds as a campaign rooted at cfg.Seed, bit-identical
// mean — and the default enumeration additionally reuses the
// compilation's per-side dense line-ID projection for its posting-list
// index; the group impact replays operate on per-group postings, never
// the full trace.
func AnalyzeCompiled(tr trace.Trace, ct *proc.CompiledTrace, model proc.Model, cfg Config) (*Analysis, error) {
	if cfg.MissProb <= 0 || cfg.MissProb >= 1 {
		return nil, fmt.Errorf("tac: MissProb %v out of (0,1)", cfg.MissProb)
	}
	if cfg.HotLines < 2 {
		return nil, fmt.Errorf("tac: HotLines %d too small", cfg.HotLines)
	}
	a := &Analysis{}

	// Baseline mean execution time over a handful of random layouts. The
	// seeds are rng.Stream(cfg.Seed, 0..BaselineSeeds-1), i.e. exactly a
	// BaselineSeeds-run campaign rooted at cfg.Seed. The compilation is
	// built here when the caller doesn't share one: the baseline campaign
	// replays it, and the indexed enumeration reuses its per-side dense
	// line-ID projection instead of re-projecting the trace.
	eng := proc.NewEngine(model)
	if ct == nil {
		ct = proc.Compile(tr, model)
	}
	eng.SetCompiled(ct, tr)
	// Per-seed compiled runs rather than Engine.Campaign: run i of a
	// campaign rooted at cfg.Seed is exactly RunCompiled with seed
	// rng.Stream(cfg.Seed, i) (proc's batch oracle tests pin this), and the
	// per-seed path skips the batch engine's block-sized scratch for what
	// is only a handful of runs.
	var sum float64
	for i := 0; i < cfg.BaselineSeeds; i++ {
		sum += float64(eng.RunCompiled(ct, rng.Stream(cfg.Seed, i)))
	}
	a.BaselineMean = sum / float64(cfg.BaselineSeeds)
	missCost := float64(model.Lat.Miss - model.Lat.Hit)

	// The indexed enumeration packs hot-line indices into uint16 work lists;
	// configurations beyond that (absurd for TAC's combinatorial candidate
	// space) fall back to the reference arm.
	reference := cfg.ReferenceEnumeration || cfg.HotLines > math.MaxUint16

	var idScratch []int32
	for _, side := range []struct {
		kind trace.Kind
		cfgC cache.Config
	}{{trace.Instr, model.IL1}, {trace.Data, model.DL1}} {
		// The event-driven pinned replay tracks out-of-set lines in a
		// 64-bit mask; wider groups (absurd geometry) take the reference
		// arm too.
		useRef := reference ||
			(side.cfgC.Ways+1+cfg.MaxExtraWays > 64 && cfg.HotLines > 64)
		var groups []Group
		if useRef {
			seq := lineSeq(tr, side.kind, side.cfgC.LineBytes)
			if len(seq) == 0 {
				continue
			}
			groups = analyzeCacheReference(seq, side.kind, side.cfgC, cfg, missCost, a.BaselineMean)
		} else {
			idScratch = ct.SideIDs(side.kind, idScratch[:0])
			if len(idScratch) == 0 {
				continue
			}
			groups = analyzeCacheIndexed(idScratch, ct.SideLines(side.kind),
				side.kind, side.cfgC, cfg, missCost, a.BaselineMean)
		}
		a.Groups = append(a.Groups, groups...)
	}

	sort.Slice(a.Groups, func(i, j int) bool { return a.Groups[i].Impact > a.Groups[j].Impact })
	a.Classes = classify(a.Groups, cfg)
	for _, c := range a.Classes {
		if c.Runs > a.MinRuns {
			a.MinRuns = c.Runs
		}
	}
	return a, nil
}

// lineSeq projects tr onto the line addresses of one cache, sized exactly
// by a counting pre-pass (no append regrowth).
func lineSeq(tr trace.Trace, k trace.Kind, lineBytes int) []uint64 {
	n := 0
	for i := range tr {
		if tr[i].Kind == k {
			n++
		}
	}
	if n == 0 {
		return nil
	}
	seq := make([]uint64, 0, n)
	for _, acc := range tr {
		if acc.Kind == k {
			seq = append(seq, acc.Addr/uint64(lineBytes))
		}
	}
	return seq
}

// analyzeCacheReference enumerates and evaluates conflict groups for one
// cache by scanning the full line sequence once per candidate — the
// original TAC arm, kept behind Config.ReferenceEnumeration as the
// equivalence oracle for the indexed enumeration (enum.go).
//
//pubtac:reference tac-enum
func analyzeCacheReference(seq []uint64, kind trace.Kind, cfgC cache.Config, cfg Config,
	missCost, baselineMean float64) []Group {

	counts := make(map[uint64]int)
	for _, l := range seq {
		counts[l]++
	}
	hot := hotLines(counts, cfg.HotLines)
	w := cfgC.Ways
	var out []Group
	maxK := w + 1 + cfg.MaxExtraWays
	if maxK > len(hot) {
		maxK = len(hot)
	}
	base := baselineLineMisses(seq, cfgC, cfg)
	var sub []uint64 // scratch for each group's filtered subsequence
	for k := w + 1; k <= maxK; k++ {
		combinations(len(hot), k, func(idx []int) {
			lines := make([]uint64, k)
			for i, hi := range idx {
				lines[i] = hot[hi]
			}
			extraMisses := pinnedImpact(seq, lines, cfgC, cfg, &sub) - baselineMissesOf(base, lines)
			impact := extraMisses * missCost
			if impact < cfg.MinImpactRel*baselineMean {
				return
			}
			out = append(out, Group{
				Kind:   kind,
				Lines:  lines,
				Prob:   math.Pow(1/float64(cfgC.Sets), float64(k-1)),
				Impact: impact,
			})
		})
	}
	return out
}

// hotLines returns up to n of the most frequently accessed lines (ties
// broken by address for determinism), excluding lines accessed once (a
// single access misses anyway; no layout changes that).
func hotLines(counts map[uint64]int, n int) []uint64 {
	lines := make([]uint64, 0, len(counts))
	//pubtac:nondeterministic collection order is erased by the total sort below
	for l, c := range counts {
		if c >= 2 {
			lines = append(lines, l)
		}
	}
	sort.Slice(lines, func(i, j int) bool {
		if counts[lines[i]] != counts[lines[j]] {
			return counts[lines[i]] > counts[lines[j]]
		}
		return lines[i] < lines[j]
	})
	if len(lines) > n {
		lines = lines[:n]
	}
	return lines
}

// combinations invokes f with every size-k index combination of [0,n).
func combinations(n, k int, f func(idx []int)) {
	if k > n || k <= 0 {
		return
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		f(idx)
		// Advance.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// baselineLineMisses estimates, per line, the mean number of misses in an
// unconstrained random-layout run, averaged over BaselineSeeds layouts.
// One cache instance is reseeded per layout (Reseed reproduces the state
// New would build, without the allocations).
func baselineLineMisses(seq []uint64, cfgC cache.Config, cfg Config) map[uint64]float64 {
	sums := make(map[uint64]float64)
	c := cache.New(cfgC, rng.Stream(cfg.Seed^0xBA5E, 0))
	for s := 0; s < cfg.BaselineSeeds; s++ {
		if s > 0 {
			c.Reseed(rng.Stream(cfg.Seed^0xBA5E, s))
		}
		for _, l := range seq {
			if !c.AccessLine(l) {
				sums[l]++
			}
		}
	}
	//pubtac:nondeterministic per-key in-place scaling; no cross-key dependence
	for l := range sums {
		sums[l] /= float64(cfg.BaselineSeeds)
	}
	return sums
}

func baselineMissesOf(base map[uint64]float64, lines []uint64) float64 {
	var sum float64
	for _, l := range lines {
		sum += base[l]
	}
	return sum
}

// pinnedImpact replays the subsequence of accesses to the group's lines
// against a single pinned set of Ways ways with random replacement — the
// exact behaviour of the event "all group lines mapped into one set" —
// and returns the mean miss count over PinSeeds replacement streams.
//
// The group's subsequence is extracted once into *scratch and replayed per
// replacement stream: the full sequence is scanned once per group instead
// of once per group per seed, with replacement draws (and so results)
// unchanged. Group sizes are a handful of lines, so membership is a linear
// scan rather than a map.
func pinnedImpact(seq []uint64, lines []uint64, cfgC cache.Config, cfg Config, scratch *[]uint64) float64 {
	sub := (*scratch)[:0]
	for _, l := range seq {
		for _, g := range lines {
			if g == l {
				sub = append(sub, l)
				break
			}
		}
	}
	*scratch = sub

	var gen rng.Xoshiro256
	set := make([]uint64, 0, cfgC.Ways)
	var total float64
	for s := 0; s < cfg.PinSeeds; s++ {
		gen.Reseed(rng.Stream(cfg.Seed^0x51AC, s))
		set = set[:0]
		misses := 0
		for _, l := range sub {
			hit := false
			for _, r := range set {
				if r == l {
					hit = true
					break
				}
			}
			if hit {
				continue
			}
			misses++
			if len(set) < cfgC.Ways {
				set = append(set, l)
			} else {
				set[gen.Intn(cfgC.Ways)] = l
			}
		}
		total += float64(misses)
	}
	return total / float64(cfg.PinSeeds)
}

// classify merges impact-sorted groups into event classes and computes the
// per-class minimum runs. For each class the probability is the total
// probability of observing any layout with comparable-or-higher impact.
func classify(groups []Group, cfg Config) []Class {
	var classes []Class
	i := 0
	for i < len(groups) {
		level := groups[i].Impact
		cutoff := level * (1 - cfg.ImpactTol)
		var p float64
		n := 0
		j := i
		for j < len(groups) && groups[j].Impact >= cutoff {
			p += groups[j].Prob
			n++
			j++
		}
		if j == i {
			// A NaN impact (degenerate zero-seed configs) matches not even
			// its own cutoff; skip the group rather than stall.
			j = i + 1
		}
		if p >= cfg.ProbFloor {
			classes = append(classes, Class{
				Impact: level,
				Prob:   p,
				Groups: n,
				Runs:   MinRunsFor(p, cfg.MissProb),
			})
		}
		i = j
	}
	return classes
}
