package tac

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"pubtac/internal/cache"
	"pubtac/internal/proc"
	"pubtac/internal/rng"
	"pubtac/internal/trace"
)

// policyModels enumerates all four placement x replacement combinations at
// the given geometry, on both caches.
func policyModels(sets, ways int) []struct {
	name  string
	model proc.Model
} {
	var out []struct {
		name  string
		model proc.Model
	}
	for _, p := range []struct {
		name string
		p    cache.PlacementPolicy
	}{{"random", cache.RandomPlacement}, {"modulo", cache.ModuloPlacement}} {
		for _, r := range []struct {
			name string
			r    cache.ReplacementPolicy
		}{{"random", cache.RandomReplacement}, {"lru", cache.LRUReplacement}} {
			c := cache.Config{Sets: sets, Ways: ways, LineBytes: 32, Placement: p.p, Replacement: r.r}
			out = append(out, struct {
				name  string
				model proc.Model
			}{p.name + "-" + r.name, proc.Model{IL1: c, DL1: c, Lat: proc.DefaultLatency()}})
		}
	}
	return out
}

// adversarialTraces builds the enumeration's worst cases: fully
// interleaved accesses (every reuse gap crowded, nothing prunable),
// never-interleaved phase blocks (everything prunable), tie-heavy hot
// counts (hot-line ordering decided by the address tie-break alone), a
// mixed instruction+data trace, and a seeded random trace.
func adversarialTraces() []struct {
	name string
	tr   trace.Trace
} {
	interleaved := trace.Repeat(trace.FromLetters("ABCDEFGH", 32), 200)

	var blocks trace.Trace
	for l := uint64(0); l < 8; l++ {
		for i := 0; i < 50; i++ {
			blocks = append(blocks, trace.Access{Addr: l * 32, Kind: trace.Data})
		}
	}

	// Every line accessed exactly 3 times, interleaved: counts all tie.
	ties := trace.Repeat(trace.FromLetters("HGFEDCBA", 32), 3)

	var mixed trace.Trace
	for rep := 0; rep < 120; rep++ {
		for l := uint64(0); l < 6; l++ {
			mixed = append(mixed, trace.Access{Addr: l * 32, Kind: trace.Instr})
			if l%2 == 0 {
				mixed = append(mixed, trace.Access{Addr: (l + 16) * 32, Kind: trace.Data})
			}
		}
	}

	gen := rng.New(0xADE5)
	var random trace.Trace
	for i := 0; i < 1500; i++ {
		kind := trace.Instr
		if gen.Intn(2) == 1 {
			kind = trace.Data
		}
		random = append(random, trace.Access{Addr: uint64(gen.Intn(12)) * 32, Kind: kind})
	}

	return []struct {
		name string
		tr   trace.Trace
	}{
		{"interleaved", interleaved},
		{"never-interleaved", blocks},
		{"tie-heavy", ties},
		{"mixed-kinds", mixed},
		{"random", random},
	}
}

// denseIDs projects a line sequence onto first-appearance dense IDs, the
// shape CompiledTrace.SideIDs/SideLines hand to the indexed enumeration.
func denseIDs(seq []uint64) ([]int32, []uint64) {
	ids := make([]int32, len(seq))
	idOf := map[uint64]int32{}
	var lines []uint64
	for i, l := range seq {
		id, ok := idOf[l]
		if !ok {
			id = int32(len(lines))
			idOf[l] = id
			lines = append(lines, l)
		}
		ids[i] = id
	}
	return ids, lines
}

// sameAnalysis asserts bit-identity of every Analysis field the package
// documents: group order, lines, probabilities and impacts, classes, the
// run requirement and the baseline mean.
func sameAnalysis(t *testing.T, want, got *Analysis) {
	t.Helper()
	if !reflect.DeepEqual(want.Groups, got.Groups) {
		t.Fatalf("groups diverge:\nreference: %+v\nindexed:   %+v", want.Groups, got.Groups)
	}
	if !reflect.DeepEqual(want.Classes, got.Classes) {
		t.Fatalf("classes diverge:\nreference: %+v\nindexed:   %+v", want.Classes, got.Classes)
	}
	if want.MinRuns != got.MinRuns {
		t.Fatalf("MinRuns: reference %d, indexed %d", want.MinRuns, got.MinRuns)
	}
	if want.BaselineMean != got.BaselineMean {
		t.Fatalf("BaselineMean: reference %v, indexed %v", want.BaselineMean, got.BaselineMean)
	}
}

// TestIndexedMatchesReference is the bit-identity oracle of the PR 5
// enumeration overhaul: the posting-list + prefilter arm
// (analyzeCacheIndexed) must reproduce the reference arm
// (analyzeCacheReference, behind Config.ReferenceEnumeration) exactly
// across all four policy combinations, both MaxExtraWays settings, several
// HotLines budgets and the adversarial traces.
func TestIndexedMatchesReference(t *testing.T) {
	for _, geom := range []struct{ sets, ways int }{{8, 4}, {64, 2}} {
		for _, pm := range policyModels(geom.sets, geom.ways) {
			for _, tc := range adversarialTraces() {
				for _, extra := range []int{0, 1} {
					for _, hot := range []int{4, 12, 24} {
						name := fmt.Sprintf("%dx%d/%s/%s/extra%d/hot%d",
							geom.sets, geom.ways, pm.name, tc.name, extra, hot)
						t.Run(name, func(t *testing.T) {
							cfg := DefaultConfig()
							cfg.MaxExtraWays = extra
							cfg.HotLines = hot
							ref := cfg
							ref.ReferenceEnumeration = true
							want, err := Analyze(tc.tr, pm.model, ref)
							if err != nil {
								t.Fatal(err)
							}
							got, err := Analyze(tc.tr, pm.model, cfg)
							if err != nil {
								t.Fatal(err)
							}
							sameAnalysis(t, want, got)
						})
					}
				}
			}
		}
	}
}

// TestIndexedMatchesReferenceLooseThreshold drops the relevance threshold
// and the class probability floor so every enumerated group must survive
// into Groups/Classes — exercising impact and probability bit-identity on
// groups the default config would discard.
func TestIndexedMatchesReferenceLooseThreshold(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MinImpactRel = 0
	cfg.ProbFloor = 0
	cfg.MaxExtraWays = 1
	ref := cfg
	ref.ReferenceEnumeration = true
	for _, tc := range adversarialTraces() {
		for _, pm := range policyModels(8, 2) {
			want, err := Analyze(tc.tr, pm.model, ref)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Analyze(tc.tr, pm.model, cfg)
			if err != nil {
				t.Fatal(err)
			}
			sameAnalysis(t, want, got)
			if len(got.Groups) == 0 {
				t.Fatalf("%s/%s: loose threshold produced no groups", tc.name, pm.name)
			}
		}
	}
}

// TestIndexedMatchesReferenceDegenerateSeeds pins the arms together on
// degenerate seed configurations: BaselineSeeds = 0 makes the baseline
// mean — and with it the relevance threshold — NaN, which the reference
// arm's "impact < NaN" keeps, so the prefilter must disarm rather than
// prune against it (and a zero-seed pinned replay's NaN impacts likewise
// may not be pre-pruned).
func TestIndexedMatchesReferenceDegenerateSeeds(t *testing.T) {
	tr := trace.Repeat(trace.FromLetters("ABCDEFGH", 32), 200)
	for _, mut := range []func(*Config){
		func(c *Config) { c.BaselineSeeds = 0 },
		func(c *Config) { c.PinSeeds = 0 },
		func(c *Config) { c.BaselineSeeds = 0; c.PinSeeds = 0 },
	} {
		cfg := DefaultConfig()
		mut(&cfg)
		ref := cfg
		ref.ReferenceEnumeration = true
		want, err := Analyze(tr, proc.DefaultModel(), ref)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Analyze(tr, proc.DefaultModel(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(want.Groups) != len(got.Groups) || want.MinRuns != got.MinRuns {
			t.Fatalf("BaselineSeeds=%d PinSeeds=%d: reference %d groups/MinRuns %d, indexed %d/%d",
				cfg.BaselineSeeds, cfg.PinSeeds,
				len(want.Groups), want.MinRuns, len(got.Groups), got.MinRuns)
		}
	}
}

// TestParallelMatchesSerial pins the parallel fan-out's determinism: any
// worker count must produce the serial arm's Analysis bit-identically
// (ordered collection), including under -race.
func TestParallelMatchesSerial(t *testing.T) {
	tr := trace.Repeat(trace.FromLetters("ABCDEFGHIJKL", 32), 150)
	model := proc.DefaultModel()
	cfg := DefaultConfig()
	cfg.HotLines = 12
	cfg.MaxExtraWays = 1
	cfg.MinImpactRel = 0 // keep every group so the fan-out has real work
	serial := cfg
	serial.Workers = 1
	want, err := Analyze(tr, model, serial)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Groups) < minParallelGroups {
		t.Fatalf("test trace yields %d groups, below the parallel threshold %d",
			len(want.Groups), minParallelGroups)
	}
	for _, workers := range []int{2, 4, 9} {
		par := cfg
		par.Workers = workers
		for rep := 0; rep < 3; rep++ {
			got, err := Analyze(tr, model, par)
			if err != nil {
				t.Fatal(err)
			}
			sameAnalysis(t, want, got)
		}
	}
}

// TestPrefilterPrunesNeverInterleaved checks the reuse-distance prefilter
// actually prunes: on a phase-block trace no reuse gap contains another
// hot line, so every candidate's miss bound collapses to the cold misses
// and the enumeration must discard all of them without a single replay.
func TestPrefilterPrunesNeverInterleaved(t *testing.T) {
	var blocks []uint64
	for l := uint64(0); l < 8; l++ {
		for i := 0; i < 50; i++ {
			blocks = append(blocks, l)
		}
	}
	cfg := DefaultConfig()
	cfgC := cache.Config{Sets: 8, Ways: 2, LineBytes: 32,
		Placement: cache.RandomPlacement, Replacement: cache.RandomReplacement}
	ids, lines := denseIDs(blocks)
	sx := buildSideIndex(ids, lines, cfgC, cfg)
	for i, v := range sx.itl {
		if v != 0 {
			t.Fatalf("itl[%d] = %d, want 0 on a never-interleaved trace", i, v)
		}
	}
	// With a realistic threshold the survivors list must be empty.
	missCost := 24.0
	baselineMean := 1000.0
	cands, bounds, _ := sx.enumerate(3, missCost, cfg.MinImpactRel*baselineMean, true, nil, nil, nil)
	if len(cands) != 0 || len(bounds) != 0 {
		t.Fatalf("prefilter kept %d candidates on a never-interleaved trace", len(bounds))
	}
}

// TestSideIndexPostings verifies postings, occurrence counts and the
// pairwise interleaving table on a hand-computed sequence.
func TestSideIndexPostings(t *testing.T) {
	// Positions:   0 1 2 3 4 5 6
	// Sequence:    A B A A C B A
	seq := []uint64{10, 20, 10, 10, 30, 20, 10}
	cfg := DefaultConfig()
	cfgC := cache.DefaultL1()
	ids, lines := denseIDs(seq)
	sx := buildSideIndex(ids, lines, cfgC, cfg)
	// Hot: A (4 accesses), B (2); C is accessed once and excluded.
	if len(sx.hot) != 2 || sx.hot[0] != 10 || sx.hot[1] != 20 {
		t.Fatalf("hot = %v", sx.hot)
	}
	if sx.occ[0] != 4 || sx.occ[1] != 2 {
		t.Fatalf("occ = %v", sx.occ)
	}
	wantPost := []int32{0, 2, 3, 6, 1, 5}
	if !reflect.DeepEqual(sx.post, wantPost) {
		t.Fatalf("post = %v, want %v", sx.post, wantPost)
	}
	// A's gaps: (0,2) contains B@1; (2,3) empty; (3,6) contains B@5.
	// B's gap: (1,5) contains A@2,3 (counted once).
	h := len(sx.hot)
	if got := sx.itl[1*h+0]; got != 2 { // B interfering with A
		t.Fatalf("itl[B][A] = %d, want 2", got)
	}
	if got := sx.itl[0*h+1]; got != 1 { // A interfering with B
		t.Fatalf("itl[A][B] = %d, want 1", got)
	}
}

// TestDenseBaselineMatchesMap pins the dense baseline replay to the
// reference map arm bit for bit, across all four policy combinations.
func TestDenseBaselineMatchesMap(t *testing.T) {
	for _, tc := range adversarialTraces() {
		for _, pm := range policyModels(8, 2) {
			cfgC := pm.model.DL1
			seq := lineSeq(tc.tr, trace.Data, cfgC.LineBytes)
			if len(seq) == 0 {
				continue
			}
			cfg := DefaultConfig()
			want := baselineLineMisses(seq, cfgC, cfg)
			ids, lines := denseIDs(seq)
			sx := buildSideIndex(ids, lines, cfgC, cfg)
			for hi, l := range sx.hot {
				if sx.base[hi] != want[l] {
					t.Fatalf("%s/%s: line %#x baseline %v, reference %v",
						tc.name, pm.name, l, sx.base[hi], want[l])
				}
			}
		}
	}
}

// TestBatchedPinnedReplayMatchesReference drives the struct-of-arrays
// pinned replay directly against the reference pinnedImpact on seeded
// random subsequences, across associativities and pin-seed counts.
func TestBatchedPinnedReplayMatchesReference(t *testing.T) {
	gen := rng.New(0x5EED)
	for _, ways := range []int{1, 2, 4} {
		for _, pinSeeds := range []int{1, 4, 7} {
			for trial := 0; trial < 20; trial++ {
				k := ways + 1 + gen.Intn(2)
				n := 50 + gen.Intn(400)
				seq := make([]uint64, n)
				for i := range seq {
					seq[i] = uint64(gen.Intn(k + 3)) // group lines plus noise lines
				}
				cfg := DefaultConfig()
				cfg.PinSeeds = pinSeeds
				cfgC := cache.Config{Sets: 8, Ways: ways, LineBytes: 32,
					Placement: cache.RandomPlacement, Replacement: cache.RandomReplacement}

				lines := make([]uint64, k)
				for i := range lines {
					lines[i] = uint64(i)
				}
				var scratch []uint64
				want := pinnedImpact(seq, lines, cfgC, cfg, &scratch)

				ids, dlines := denseIDs(seq)
				sx := buildSideIndex(ids, dlines, cfgC, cfg)
				cand := make([]uint16, 0, k)
				for _, l := range lines {
					for hi, hl := range sx.hot {
						if hl == l {
							cand = append(cand, uint16(hi))
						}
					}
				}
				if len(cand) != k {
					continue // a group line happened not to be hot; skip trial
				}
				st := newPinState(cfg, ways, k)
				got := st.eval(sx, cand, ways, cfg)
				if got != want {
					t.Fatalf("ways=%d seeds=%d trial=%d: batched %v, reference %v",
						ways, pinSeeds, trial, got, want)
				}
			}
		}
	}
}

// TestBoundDominatesImpact checks the prefilter's soundness invariant
// directly: for every candidate the bound run through the same float
// pipeline as the impact must be >= the replayed impact.
func TestBoundDominatesImpact(t *testing.T) {
	for _, tc := range adversarialTraces() {
		cfg := DefaultConfig()
		cfg.MaxExtraWays = 1
		cfgC := cache.DefaultL1()
		seq := lineSeq(tc.tr, trace.Data, cfgC.LineBytes)
		if len(seq) == 0 {
			seq = lineSeq(tc.tr, trace.Instr, cfgC.LineBytes)
		}
		ids, lines := denseIDs(seq)
		sx := buildSideIndex(ids, lines, cfgC, cfg)
		missCost := 24.0
		for k := cfgC.Ways + 1; k <= cfgC.Ways+2 && k <= len(sx.hot); k++ {
			// Disable pruning (threshold -inf) so every candidate reaches
			// the replay with its bound attached.
			cands, bounds, baseSums := sx.enumerate(k, missCost, math.Inf(-1), true, nil, nil, nil)
			st := newPinState(cfg, cfgC.Ways, k)
			for i := range bounds {
				impact := (st.eval(sx, cands[i*k:(i+1)*k], cfgC.Ways, cfg) - baseSums[i]) * missCost
				if impact > bounds[i] {
					t.Fatalf("%s k=%d cand %d: impact %v exceeds bound %v",
						tc.name, k, i, impact, bounds[i])
				}
			}
		}
	}
}

// BenchmarkAnalyzeArms contrasts the indexed enumeration against the
// reference arm on the synthetic 8-line trace (the two are bit-identical;
// see TestIndexedMatchesReference).
func BenchmarkAnalyzeArms(b *testing.B) {
	tr := trace.Repeat(trace.FromLetters("ABCDEFGH", 32), 500)
	m := proc.DefaultModel()
	for _, arm := range []struct {
		name      string
		reference bool
	}{{"indexed", false}, {"reference", true}} {
		b.Run(arm.name, func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.ReferenceEnumeration = arm.reference
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Analyze(tr, m, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
