// Package pool provides a bounded-concurrency task group with
// first-error propagation and context cancellation — the coordination
// primitive behind the batch engine (core.AnalyzeBatch) and the parallel
// experiment generators. It mirrors the errgroup idiom from
// golang.org/x/sync without the external dependency.
package pool

import (
	"context"
	"fmt"
	"sync"
)

// Group runs a collection of tasks on a bounded number of goroutines.
// The zero value is unusable; construct with WithContext.
type Group struct {
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	sem     chan struct{}
	errOnce sync.Once
	err     error
}

// WithContext returns a Group and a derived context that is cancelled the
// first time a task returns a non-nil error or panics, or when Wait
// returns. Tasks should watch the derived context to stop early.
func WithContext(ctx context.Context) (*Group, context.Context) {
	ctx, cancel := context.WithCancel(ctx)
	return &Group{cancel: cancel}, ctx
}

// SetLimit bounds the number of concurrently running tasks. It must be
// called before the first Go. A limit of 0 or less means unbounded.
func (g *Group) SetLimit(n int) {
	if n <= 0 {
		g.sem = nil
		return
	}
	g.sem = make(chan struct{}, n)
}

// Go schedules f. If the concurrency limit is reached, Go blocks until a
// slot frees up — callers therefore never build an unbounded goroutine
// backlog. The first non-nil error cancels the group's context; later
// errors are discarded.
func (g *Group) Go(f func() error) {
	if g.sem != nil {
		g.sem <- struct{}{}
	}
	g.wg.Add(1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				g.report(fmt.Errorf("pool: task panicked: %v", r))
			}
			if g.sem != nil {
				<-g.sem
			}
			g.wg.Done()
		}()
		if err := f(); err != nil {
			g.report(err)
		}
	}()
}

// Wait blocks until every scheduled task has returned, then releases the
// group's context and reports the first error.
func (g *Group) Wait() error {
	g.wg.Wait()
	g.cancel()
	return g.err
}

func (g *Group) report(err error) {
	g.errOnce.Do(func() {
		g.err = err
		g.cancel()
	})
}

// SplitWorkers divides a total worker budget between an outer fan-out of
// tasks and the inner parallelism of each task: outer is min(total,
// tasks) and inner is the per-task share of the remainder, at least 1.
// Both layers together keep roughly `total` goroutines busy without
// oversubscribing the machine.
func SplitWorkers(total, tasks int) (outer, inner int) {
	if total < 1 {
		total = 1
	}
	if tasks < 1 {
		tasks = 1
	}
	outer = total
	if tasks < outer {
		outer = tasks
	}
	inner = total / outer
	if inner < 1 {
		inner = 1
	}
	return outer, inner
}
