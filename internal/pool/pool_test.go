package pool

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestGroupRunsAllTasks(t *testing.T) {
	g, _ := WithContext(context.Background())
	g.SetLimit(3)
	var n atomic.Int64
	for i := 0; i < 50; i++ {
		g.Go(func() error {
			n.Add(1)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 50 {
		t.Fatalf("ran %d tasks, want 50", n.Load())
	}
}

func TestGroupHonorsLimit(t *testing.T) {
	g, _ := WithContext(context.Background())
	g.SetLimit(4)
	var cur, peak atomic.Int64
	for i := 0; i < 40; i++ {
		g.Go(func() error {
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 4 {
		t.Fatalf("observed %d concurrent tasks, limit 4", p)
	}
}

func TestGroupFirstErrorCancels(t *testing.T) {
	g, ctx := WithContext(context.Background())
	g.SetLimit(2)
	boom := errors.New("boom")
	g.Go(func() error { return boom })
	g.Go(func() error {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(5 * time.Second):
			return errors.New("cancellation not propagated")
		}
	})
	if err := g.Wait(); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestGroupRecoversPanics(t *testing.T) {
	g, _ := WithContext(context.Background())
	g.Go(func() error { panic("kaboom") })
	if err := g.Wait(); err == nil {
		t.Fatal("expected an error from a panicking task")
	}
}

func TestSplitWorkers(t *testing.T) {
	cases := []struct{ total, tasks, outer, inner int }{
		{8, 11, 8, 1},
		{8, 2, 2, 4},
		{8, 8, 8, 1},
		{1, 16, 1, 1},
		{0, 5, 1, 1},
		{16, 3, 3, 5},
	}
	for _, c := range cases {
		o, i := SplitWorkers(c.total, c.tasks)
		if o != c.outer || i != c.inner {
			t.Errorf("SplitWorkers(%d, %d) = (%d, %d), want (%d, %d)",
				c.total, c.tasks, o, i, c.outer, c.inner)
		}
	}
}
