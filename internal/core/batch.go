// Batch engine: bounded-parallel fan-out of PUB+TAC analyses over
// paths × programs. One pool drives the whole batch; the PUB transform is
// performed once per distinct program no matter how many of its paths are
// analyzed (the serial API re-transformed per call). Campaign seeds depend
// only on (program, input, SeedSalt), so batch results are bit-identical to
// the serial ones at any worker count.
package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"pubtac/internal/pool"
	"pubtac/internal/program"
	"pubtac/internal/pub"
)

// Job names one program and the input vectors (pubbed paths) to analyze.
type Job struct {
	Program *program.Program
	Inputs  []program.Input
}

// xform caches one program's PUB transform for the duration of a batch.
type xform struct {
	once   sync.Once
	pubbed *program.Program
	rep    pub.Report
	err    error
}

// AnalyzeBatch runs the pipeline on every (job, input) pair, fanning the
// paths out over a bounded pool. workers caps the total simulation
// parallelism: up to that many paths run concurrently, and each path's
// campaign uses its share of the remaining budget, so the machine is
// saturated without oversubscription. workers <= 0 falls back to
// cfg.MBPTA.Workers, then GOMAXPROCS — matching the serial API's campaign
// bound. The result is indexed [job][input], mirroring the jobs slice. The
// first failing path cancels the rest; a cancelled ctx stops all running
// campaigns promptly.
func (a *Analyzer) AnalyzeBatch(ctx context.Context, jobs []Job, workers int) ([][]*PathAnalysis, error) {
	if workers <= 0 {
		workers = a.cfg.MBPTA.Workers
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	total := 0
	for i, j := range jobs {
		if j.Program == nil {
			return nil, fmt.Errorf("core: batch job %d has no program", i)
		}
		if len(j.Inputs) == 0 {
			return nil, fmt.Errorf("core: batch job %d (%s) has no inputs", i, j.Program.Name)
		}
		total += len(j.Inputs)
	}
	if total == 0 {
		return nil, fmt.Errorf("core: empty batch")
	}
	outer, inner := pool.SplitWorkers(workers, total)

	// Deduplicate the PUB transform per distinct program: the first path of
	// a program to be scheduled performs it, the others reuse it.
	xforms := make(map[*program.Program]*xform, len(jobs))
	for _, j := range jobs {
		if xforms[j.Program] == nil {
			xforms[j.Program] = &xform{}
		}
	}

	out := make([][]*PathAnalysis, len(jobs))
	g, ctx := pool.WithContext(ctx)
	g.SetLimit(outer)
	for ji := range jobs {
		job := jobs[ji]
		out[ji] = make([]*PathAnalysis, len(job.Inputs))
		x := xforms[job.Program]
		for ii := range job.Inputs {
			ji, ii, in := ji, ii, job.Inputs[ii]
			g.Go(func() error {
				if err := ctx.Err(); err != nil {
					return err
				}
				x.once.Do(func() { x.pubbed, x.rep, x.err = pub.Transform(job.Program) })
				if x.err != nil {
					return fmt.Errorf("core: PUB failed on %s: %w", job.Program.Name, x.err)
				}
				pa, err := a.analyzeOn(ctx, x.pubbed, job.Program.Name, in, x.rep, inner)
				if err != nil {
					return err
				}
				out[ji][ii] = pa
				return nil
			})
		}
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	return out, nil
}
