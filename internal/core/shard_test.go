package core

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"pubtac/internal/malardalen"
	"pubtac/internal/mbpta"
	"pubtac/internal/pub"
	"pubtac/internal/stats"
)

// memSharder executes ShardSpecs in-process exactly the way a pubtacd
// worker does — resolve the benchmark, PUB-transform unless Original,
// replay the run range into a full summary, return the raw sample — so the
// distributed oracle test covers the real worker recipe without sockets.
type memSharder struct {
	cfg    Config
	shards int
	fail   func(ShardSpec) bool
	calls  atomic.Int64
	failed atomic.Int64
}

func (m *memSharder) Shards() int { return m.shards }

func (m *memSharder) CollectShard(ctx context.Context, spec ShardSpec) ([]float64, error) {
	m.calls.Add(1)
	if m.fail != nil && m.fail(spec) {
		m.failed.Add(1)
		return nil, errors.New("injected shard failure")
	}
	fp := m.cfg.Fingerprint()
	if spec.Config != hex.EncodeToString(fp[:]) {
		return nil, fmt.Errorf("foreign config fingerprint %s", spec.Config)
	}
	b, err := malardalen.Get(spec.Program)
	if err != nil {
		return nil, err
	}
	p := b.Program
	if !spec.Original {
		if p, _, err = pub.Transform(p); err != nil {
			return nil, err
		}
	}
	in, err := b.Input(spec.Input)
	if err != nil {
		return nil, err
	}
	res, err := p.Exec(in)
	if err != nil {
		return nil, err
	}
	// Workers always collect into a full summary (raw sample transport):
	// full-summary state is chunking-invariant, so the coordinator's merged
	// campaign is bit-identical in every estimation mode — including a
	// streaming coordinator, which streams over the merged raw runs.
	wcfg := m.cfg.MBPTA
	wcfg.Streaming = false
	wcfg.ReferenceIID = true
	sum, err := mbpta.NewCampaign(res.Trace, m.cfg.Model).CollectRangeCtx(ctx, wcfg, spec.Lo, spec.Hi, spec.Root, nil)
	if err != nil {
		return nil, err
	}
	return sum.(*stats.FullSummary).Sample(), nil
}

// shardTestConfig keeps campaigns small while still exercising the
// TAC-demanded extension path (RTac exceeds convergence on bs, and the cap
// keeps the extension bounded).
func shardTestConfig() Config {
	cfg := testConfig()
	cfg.MBPTA.MaxRuns = 1200
	cfg.CampaignCap = 2000
	return cfg
}

// samePathAnalysis asserts the full result surface of two path analyses is
// bit-identical: run requirements, tail fit, CV test, battery report, pWCET
// and the raw sample.
func samePathAnalysis(t *testing.T, got, want *PathAnalysis) {
	t.Helper()
	if got.RPub != want.RPub || got.RTac != want.RTac || got.R != want.R || got.RunsUsed != want.RunsUsed {
		t.Fatalf("run counts differ: got (%d,%d,%d,%d) want (%d,%d,%d,%d)",
			got.RPub, got.RTac, got.R, got.RunsUsed, want.RPub, want.RTac, want.R, want.RunsUsed)
	}
	for _, p := range []float64{1e-9, 1e-12, 1e-15} {
		if got.PWCET(p) != want.PWCET(p) {
			t.Fatalf("pWCET@%g differs: %v != %v", p, got.PWCET(p), want.PWCET(p))
		}
	}
	if *got.Full.Tail != *want.Full.Tail || got.Full.CV != want.Full.CV || got.Full.IID != want.Full.IID {
		t.Fatal("tail fit, CV test or battery report differs")
	}
	if len(got.Full.Sample) != len(want.Full.Sample) {
		t.Fatalf("sample size differs: %d != %d", len(got.Full.Sample), len(want.Full.Sample))
	}
	for i := range got.Full.Sample {
		if got.Full.Sample[i] != want.Full.Sample[i] {
			t.Fatalf("sample run %d differs", i)
		}
	}
}

// The acceptance-criteria oracle: sharded analyses at shard counts 1, 2 and
// 8 — and with every third shard failing over to local recomputation — are
// bit-identical to the single-process reference, through both the
// convergence and the TAC-extension campaign phases.
func TestAnalyzePathShardedBitIdentical(t *testing.T) {
	b := malardalen.BS()
	cfg := shardTestConfig()
	ref, err := New(cfg).AnalyzePathCtx(context.Background(), b.Program, b.Default())
	if err != nil {
		t.Fatalf("reference: %v", err)
	}

	for _, tc := range []struct {
		name   string
		shards int
		fail   func(ShardSpec) bool
	}{
		{"shards=1", 1, nil},
		{"shards=2", 2, nil},
		{"shards=8", 8, nil},
		{"shards=8/failures", 8, nil}, // fail predicate attached below
	} {
		t.Run(tc.name, func(t *testing.T) {
			scfg := shardTestConfig()
			ms := &memSharder{cfg: scfg, shards: tc.shards}
			if tc.name == "shards=8/failures" {
				var n atomic.Int64
				ms.fail = func(ShardSpec) bool { return n.Add(1)%3 == 0 }
			}
			scfg.Sharder = ms
			got, err := New(scfg).AnalyzePathCtx(context.Background(), b.Program, b.Default())
			if err != nil {
				t.Fatalf("sharded: %v", err)
			}
			samePathAnalysis(t, got, ref)
			if ms.calls.Load() == 0 {
				t.Fatal("sharder never consulted")
			}
			if ms.fail != nil && ms.failed.Load() == 0 {
				t.Fatal("failure injection never fired")
			}
		})
	}
}

// A streaming coordinator shards just as exactly: workers ship raw runs, the
// coordinator streams over them, so the streaming estimate equals the local
// streaming estimate bit for bit.
func TestAnalyzePathShardedStreaming(t *testing.T) {
	b := malardalen.BS()
	mk := func() Config {
		cfg := shardTestConfig()
		cfg.MBPTA.Streaming = true
		cfg.MBPTA.StreamBudget = 512
		return cfg
	}
	ref, err := New(mk()).AnalyzePathCtx(context.Background(), b.Program, b.Default())
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	scfg := mk()
	scfg.Sharder = &memSharder{cfg: mk(), shards: 4}
	got, err := New(scfg).AnalyzePathCtx(context.Background(), b.Program, b.Default())
	if err != nil {
		t.Fatalf("sharded: %v", err)
	}
	if got.RunsUsed != ref.RunsUsed ||
		got.PWCET(1e-12) != ref.PWCET(1e-12) ||
		*got.Full.Tail != *ref.Full.Tail || got.Full.CV != ref.Full.CV || got.Full.IID != ref.Full.IID {
		t.Fatal("sharded streaming analysis differs from local streaming reference")
	}
}

// The R_orig baseline path shards too (Original=true specs skip PUB).
func TestAnalyzeOriginalSharded(t *testing.T) {
	b := malardalen.BS()
	ref, err := New(shardTestConfig()).AnalyzeOriginalCtx(context.Background(), b.Program, b.Default(), 0)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	scfg := shardTestConfig()
	ms := &memSharder{cfg: shardTestConfig(), shards: 2}
	scfg.Sharder = ms
	got, err := New(scfg).AnalyzeOriginalCtx(context.Background(), b.Program, b.Default(), 0)
	if err != nil {
		t.Fatalf("sharded: %v", err)
	}
	if got.ROrig != ref.ROrig || got.Estimate.PWCET(1e-12) != ref.Estimate.PWCET(1e-12) ||
		got.Estimate.IID != ref.Estimate.IID {
		t.Fatal("sharded original analysis differs from local reference")
	}
	if ms.calls.Load() == 0 {
		t.Fatal("sharder never consulted")
	}
}

// Config.Shards overrides the collector's suggestion, and a sharder whose
// every shard fails (foreign fingerprint) still yields the reference result.
func TestShardConfigOverridesAndForeignConfig(t *testing.T) {
	b := malardalen.BS()
	ref, err := New(shardTestConfig()).AnalyzePathCtx(context.Background(), b.Program, b.Default())
	if err != nil {
		t.Fatalf("reference: %v", err)
	}

	// The worker holds a DIFFERENT config: every shard is refused by the
	// fingerprint check and recomputed locally under the coordinator's own
	// config — degraded, never wrong.
	foreign := shardTestConfig()
	foreign.SeedSalt = 12345
	scfg := shardTestConfig()
	ms := &memSharder{cfg: foreign, shards: 3}
	scfg.Sharder = ms
	scfg.Shards = 5
	got, err := New(scfg).AnalyzePathCtx(context.Background(), b.Program, b.Default())
	if err != nil {
		t.Fatalf("sharded: %v", err)
	}
	samePathAnalysis(t, got, ref)
	if ms.calls.Load() == 0 {
		t.Fatal("sharder never consulted")
	}
}
