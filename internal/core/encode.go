package core

import (
	"math"
	"strconv"
)

// EncodingVersion is the version of the canonical Config encoding below.
// The encoding is hashed into every cache key the service layer derives
// (pubtac.Fingerprint), so two builds agree on a key exactly when they agree
// on this version and on the byte sequence AppendCanonical produces. Any
// change to the set of encoded fields, their order, or their formatting MUST
// bump this constant — TestCanonicalEncodingFieldsPinned pins the field
// lists of every encoded struct so an added field cannot slip through
// silently.
const EncodingVersion = 1

// AppendCanonical appends a canonical, field-order-stable encoding of every
// result-affecting configuration field to b and returns the extended slice.
// Two Configs encode identically iff any analysis run under them produces
// bit-identical results, with two deliberate exclusions:
//
//   - worker counts (MBPTA.Workers, TAC.Workers): results are
//     worker-count-invariant by construction (the pool is index-addressed),
//     so sessions differing only in parallelism share cache entries;
//   - Progress: observation only, never reaches a result;
//   - Sharder and Shards: distributed collection is shard-count- and
//     peer-invariant for the same index-addressed reason (failed shards
//     fall back to bit-identical local recomputation), so a sharded
//     coordinator, its workers and a local session all share cache keys —
//     which is also what lets a worker verify a ShardSpec against its own
//     fingerprint.
//
// IIDHardFail is included even though it never changes result values — it
// changes whether a result exists at all (an inadmissible battery becomes an
// error), so a hard-fail session must not be served a result cached by a
// permissive one.
//
// Fields are written as name '=' value ';' with fixed formats: integers in
// decimal, booleans as 0/1, and floats as the hex of their IEEE-754 bits
// (bit-exact, locale-free). Nested structs contribute a name prefix.
func (c Config) AppendCanonical(b []byte) []byte {
	b = append(b, "core/v"...)
	b = strconv.AppendInt(b, EncodingVersion, 10)
	b = append(b, ';')

	// proc.Model: both cache geometries + policies, then latencies.
	b = appendCacheConfig(b, "model.il1", c.Model.IL1.Sets, c.Model.IL1.Ways,
		c.Model.IL1.LineBytes, int(c.Model.IL1.Placement), int(c.Model.IL1.Replacement))
	b = appendCacheConfig(b, "model.dl1", c.Model.DL1.Sets, c.Model.DL1.Ways,
		c.Model.DL1.LineBytes, int(c.Model.DL1.Placement), int(c.Model.DL1.Replacement))
	b = appendUint(b, "model.lat.issue", c.Model.Lat.Issue)
	b = appendUint(b, "model.lat.hit", c.Model.Lat.Hit)
	b = appendUint(b, "model.lat.miss", c.Model.Lat.Miss)
	b = appendUint(b, "model.lat.missjitter", c.Model.Lat.MissJitter)

	// mbpta.Config (Workers excluded; see doc comment).
	b = appendInt(b, "mbpta.initialruns", c.MBPTA.InitialRuns)
	b = appendInt(b, "mbpta.increment", c.MBPTA.Increment)
	b = appendInt(b, "mbpta.maxruns", c.MBPTA.MaxRuns)
	b = appendInt(b, "mbpta.tailcount", c.MBPTA.TailCount)
	b = appendFloat(b, "mbpta.stabilityeps", c.MBPTA.StabilityEps)
	b = appendFloat(b, "mbpta.stabilityprob", c.MBPTA.StabilityProb)
	b = appendInt(b, "mbpta.stablerounds", c.MBPTA.StableRounds)
	b = appendFloat(b, "mbpta.alpha", c.MBPTA.Alpha)
	b = appendBool(b, "mbpta.referenceiid", c.MBPTA.ReferenceIID)
	b = appendBool(b, "mbpta.streaming", c.MBPTA.Streaming)
	b = appendInt(b, "mbpta.streambudget", c.MBPTA.StreamBudget)

	// tac.Config (Workers excluded).
	b = appendFloat(b, "tac.missprob", c.TAC.MissProb)
	b = appendFloat(b, "tac.minimpactrel", c.TAC.MinImpactRel)
	b = appendFloat(b, "tac.impacttol", c.TAC.ImpactTol)
	b = appendInt(b, "tac.hotlines", c.TAC.HotLines)
	b = appendInt(b, "tac.maxextraways", c.TAC.MaxExtraWays)
	b = appendFloat(b, "tac.probfloor", c.TAC.ProbFloor)
	b = appendInt(b, "tac.baselineseeds", c.TAC.BaselineSeeds)
	b = appendInt(b, "tac.pinseeds", c.TAC.PinSeeds)
	b = appendUint(b, "tac.seed", c.TAC.Seed)
	b = appendBool(b, "tac.referenceenumeration", c.TAC.ReferenceEnumeration)

	// Top-level knobs (Progress excluded).
	b = appendInt(b, "campaigncap", c.CampaignCap)
	b = appendUint(b, "seedsalt", c.SeedSalt)
	b = appendBool(b, "iidhardfail", c.IIDHardFail)
	return b
}

func appendCacheConfig(b []byte, prefix string, sets, ways, lineBytes, placement, replacement int) []byte {
	b = appendInt(b, prefix+".sets", sets)
	b = appendInt(b, prefix+".ways", ways)
	b = appendInt(b, prefix+".linebytes", lineBytes)
	b = appendInt(b, prefix+".placement", placement)
	b = appendInt(b, prefix+".replacement", replacement)
	return b
}

func appendInt(b []byte, name string, v int) []byte {
	b = append(b, name...)
	b = append(b, '=')
	b = strconv.AppendInt(b, int64(v), 10)
	return append(b, ';')
}

func appendUint(b []byte, name string, v uint64) []byte {
	b = append(b, name...)
	b = append(b, '=')
	b = strconv.AppendUint(b, v, 10)
	return append(b, ';')
}

func appendBool(b []byte, name string, v bool) []byte {
	b = append(b, name...)
	b = append(b, '=')
	if v {
		b = append(b, '1')
	} else {
		b = append(b, '0')
	}
	return append(b, ';')
}

func appendFloat(b []byte, name string, v float64) []byte {
	b = append(b, name...)
	b = append(b, '=')
	b = strconv.AppendUint(b, math.Float64bits(v), 16)
	return append(b, ';')
}
