// Package core implements the paper's contribution: the combined, sound
// application of PUB and TAC (Figure 3) that simultaneously achieves full
// path coverage and cache representativeness for MBPTA.
//
// The pipeline for one analysis is:
//
//  1. Apply PUB to the original program, producing the pubbed program whose
//     every path probabilistically upper-bounds every path of the original
//     (Equation 1, Observation 1).
//  2. Pick a path of the pubbed program — any user input vector works
//     (Observation 3) — and collect its address sequence.
//  3. Apply TAC to that sequence, obtaining the minimum number of runs
//     R_tac for cache-layout representativeness.
//  4. Run the pubbed program max(R_pub, R_tac) times, where R_pub is
//     MBPTA's own convergence requirement, and apply MBPTA/EVT to the
//     sample: the resulting pWCET upper-bounds the execution time
//     distribution of every path of the original program under every cache
//     layout occurring with relevant probability (Corollary 1).
//
// AnalyzeMultiPath applies the pipeline to several input vectors and takes
// the per-probability minimum across the resulting curves (Corollary 2:
// every pubbed path's estimate is reliable, so the lowest is preferred).
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"

	"pubtac/internal/mbpta"
	"pubtac/internal/proc"
	"pubtac/internal/program"
	"pubtac/internal/pub"
	"pubtac/internal/stats"
	"pubtac/internal/tac"
)

// ProgressEvent reports campaign growth for one analyzed path. Events are
// emitted from campaign workers as simulation blocks complete; Target is
// the currently known run requirement and can grow between events (MBPTA
// convergence extends its own target, and the TAC campaign phase raises it
// to R). A "warning" event flags a statistical admissibility problem —
// currently an i.i.d. battery failure at convergence — with the detail in
// Note; the analysis still completes (the battery is diagnostic, per the
// MBPTA protocol the sample is i.i.d. by construction), but the pWCET
// consumer should know.
type ProgressEvent struct {
	Program string // original program name
	Input   string // input vector selecting the path
	Phase   string // "converge", "campaign", "warning" or "done"
	Done    int    // runs completed so far
	Target  int    // runs currently required
	Note    string // human-readable detail for "warning" events
}

// Config assembles the knobs of the full pipeline.
type Config struct {
	Model proc.Model
	MBPTA mbpta.Config
	TAC   tac.Config

	// CampaignCap bounds the number of runs actually simulated (0 = no
	// cap). Reported run requirements (RPub, RTac, R) are not affected;
	// only the measured sample is truncated. Use it to scale experiments
	// down from paper-size campaigns.
	CampaignCap int

	// SeedSalt is XORed into every campaign root seed, giving sessions
	// statistically independent campaigns without touching the per-path
	// seed derivation. Zero reproduces the historical seeds.
	SeedSalt uint64

	// Progress, when non-nil, receives campaign progress events. It may be
	// called concurrently from campaign workers and must be cheap.
	Progress func(ProgressEvent)

	// IIDHardFail promotes an inadmissible i.i.d. battery from a progress
	// warning to an analysis error wrapping ErrIIDInadmissible. Off by
	// default: the battery is diagnostic (campaign runs draw independent
	// seeds), but certification-style workflows may refuse to ship a pWCET
	// whose sample failed its own admissibility checks.
	IIDHardFail bool

	// Sharder, when non-nil, distributes campaign collection: every
	// campaign range is split into shards dispatched through it (remote
	// pubtacd workers, via the client package), with failed shards
	// recomputed locally. Results are bit-identical to a purely local
	// analysis — who computes run i never matters, only that slot i holds
	// run i — so Sharder, like Progress and the worker counts, is excluded
	// from the canonical encoding and shares cache keys with local runs.
	Sharder ShardCollector

	// Shards is the number of shards per campaign range when Sharder is
	// set; 0 derives it from Sharder.Shards() (typically the peer count).
	// Also excluded from the canonical encoding.
	Shards int
}

// DefaultConfig returns the paper's evaluation setup.
func DefaultConfig() Config {
	return Config{
		Model: proc.DefaultModel(),
		MBPTA: mbpta.DefaultConfig(),
		TAC:   tac.DefaultConfig(),
	}
}

// Scaled returns the configuration with every campaign knob multiplied by
// scale — MBPTA's initial runs, increment and convergence ceiling, floored
// at usable minimums — and the campaign cap set to the scaled equivalent
// of the evaluation's 7×10^5-run campaign. This is the one scaling policy;
// the public Session options and the experiment generators both use it, so
// their campaigns stay in lockstep at equal scales.
func (c Config) Scaled(scale float64) Config {
	c.MBPTA.InitialRuns = scaledRuns(c.MBPTA.InitialRuns, scale, 200)
	c.MBPTA.Increment = scaledRuns(c.MBPTA.Increment, scale, 200)
	c.MBPTA.MaxRuns = scaledRuns(c.MBPTA.MaxRuns, scale, 4000)
	c.CampaignCap = scaledRuns(700000, scale, 6000)
	return c
}

// scaledRuns returns max(min, round(n*scale)).
func scaledRuns(n int, scale float64, min int) int {
	v := int(math.Round(float64(n) * scale))
	if v < min {
		v = min
	}
	return v
}

// Analyzer runs PUB+TAC analyses on programs.
type Analyzer struct {
	cfg Config
}

// New returns an Analyzer for the configuration.
func New(cfg Config) *Analyzer { return &Analyzer{cfg: cfg} }

// PathAnalysis is the outcome of the pipeline on one pubbed path.
type PathAnalysis struct {
	Program string        // original program name
	Input   program.Input // the input vector selecting the path
	Path    string        // path signature in the pubbed program

	PubReport pub.Report    // PUB transformation statistics
	TAC       *tac.Analysis // TAC result on the pubbed path's trace

	RPub int // runs required by MBPTA convergence on the pubbed path
	RTac int // runs required by TAC
	R    int // max(RPub, RTac): the campaign size of the analysis

	RunsUsed int             // runs actually simulated (after CampaignCap)
	PubOnly  *mbpta.Estimate // estimate from the R_pub-run sample
	Full     *mbpta.Estimate // estimate from the RunsUsed-run sample (PUB+TAC)
}

// PWCET returns the PUB+TAC pWCET estimate at exceedance probability p.
func (pa *PathAnalysis) PWCET(p float64) float64 { return pa.Full.PWCET(p) }

// AnalyzePath runs the full pipeline (Figure 3) on one input vector.
func (a *Analyzer) AnalyzePath(p *program.Program, in program.Input) (*PathAnalysis, error) {
	return a.AnalyzePathCtx(context.Background(), p, in)
}

// AnalyzePathCtx is AnalyzePath with cancellation: a cancelled or expired
// context stops the measurement campaign promptly and returns ctx.Err().
func (a *Analyzer) AnalyzePathCtx(ctx context.Context, p *program.Program, in program.Input) (*PathAnalysis, error) {
	pubbed, rep, err := pub.Transform(p)
	if err != nil {
		return nil, fmt.Errorf("core: PUB failed on %s: %w", p.Name, err)
	}
	return a.analyzeOn(ctx, pubbed, p.Name, in, rep, 0)
}

// progressFn adapts the configured event sink to mbpta's per-campaign
// callback for one (path, phase) pair; nil when no sink is configured.
func (a *Analyzer) progressFn(name, input, phase string) mbpta.Progress {
	sink := a.cfg.Progress
	if sink == nil {
		return nil
	}
	return func(done, target int) {
		sink(ProgressEvent{Program: name, Input: input, Phase: phase, Done: done, Target: target})
	}
}

// analyzeOn runs steps 2-4 on an already-transformed program. workers, when
// positive, overrides cfg.MBPTA.Workers for this path's campaigns (the batch
// engine splits the machine between concurrent paths).
func (a *Analyzer) analyzeOn(ctx context.Context, pubbed *program.Program, name string,
	in program.Input, rep pub.Report, workers int) (*PathAnalysis, error) {

	if workers <= 0 {
		workers = a.cfg.MBPTA.Workers
	}

	res, err := pubbed.Exec(in)
	if err != nil {
		return nil, fmt.Errorf("core: executing pubbed %s(%s): %w", name, in.Name, err)
	}

	// The path's trace is compiled exactly once here; TAC's baseline, every
	// convergence round and the TAC-demanded campaign extension below all
	// replay the one shared CompiledTrace (workers keep only per-seed
	// scratch).
	camp := mbpta.NewCampaign(res.Trace, a.cfg.Model)

	// TAC's parallel group evaluation rides the path's simulation worker
	// share (the same pool budget the campaigns use) unless the TAC config
	// pins its own count. Results are worker-count independent.
	tcfg := a.cfg.TAC
	if tcfg.Workers == 0 {
		tcfg.Workers = workers
		if tcfg.Workers <= 0 {
			tcfg.Workers = runtime.GOMAXPROCS(0)
		}
	}
	ta, err := tac.AnalyzeCompiled(res.Trace, camp.Compiled, a.cfg.Model, tcfg)
	if err != nil {
		return nil, fmt.Errorf("core: TAC on %s(%s): %w", name, in.Name, err)
	}

	root := mbpta.Seed(name+"/"+in.Name) ^ a.cfg.SeedSalt
	if a.cfg.Sharder != nil {
		// Both the convergence rounds and the TAC-demanded extension below
		// collect through camp, so one SetRemote distributes them all.
		camp.SetRemote(a.remoteCollector(name, in.Name, false, root))
	}
	mcfg := a.cfg.MBPTA
	mcfg.Workers = workers
	conv, err := camp.ConvergeCtx(ctx, mcfg, root,
		a.progressFn(name, in.Name, "converge"))
	if err != nil {
		return nil, fmt.Errorf("core: MBPTA convergence on %s(%s): %w", name, in.Name, err)
	}
	if err := a.checkIID(name, in.Name, "convergence", conv.Estimate, conv.Runs); err != nil {
		return nil, err
	}

	pa := &PathAnalysis{
		Program:   name,
		Input:     in,
		Path:      res.Path,
		PubReport: rep,
		TAC:       ta,
		RPub:      conv.Runs,
		RTac:      ta.MinRuns,
		PubOnly:   conv.Estimate,
	}
	pa.R = pa.RPub
	if pa.RTac > pa.R {
		pa.R = pa.RTac
	}

	pa.RunsUsed = pa.R
	if a.cfg.CampaignCap > 0 && pa.RunsUsed > a.cfg.CampaignCap {
		pa.RunsUsed = a.cfg.CampaignCap
	}
	if pa.RunsUsed <= conv.Runs {
		// The converged sample already covers the requirement.
		pa.Full = conv.Estimate
		pa.RunsUsed = conv.Runs
		a.done(name, in.Name, pa.RunsUsed, conv.Summary)
		return pa, nil
	}
	// TAC demands more runs than MBPTA needed. Campaign run i depends only
	// on (root, i), so the converged sample is exactly the prefix of the
	// R-run campaign: extend the converged summary with runs
	// conv.Runs..R-1 instead of re-simulating the converged prefix from
	// scratch (bit-identical, and the convergence runs are no longer paid
	// for twice). The summary carries the sorted view or reservoir and the
	// i.i.d. battery across the extension in one move.
	err = camp.ExtendSummaryCtx(ctx, conv.Summary, pa.RunsUsed, root,
		workers, a.progressFn(name, in.Name, "campaign"))
	if err != nil {
		return nil, fmt.Errorf("core: campaign on %s(%s): %w", name, in.Name, err)
	}
	full, err := mbpta.NewEstimateSummary(conv.Summary, a.cfg.MBPTA)
	if err != nil {
		return nil, fmt.Errorf("core: estimating %s(%s): %w", name, in.Name, err)
	}
	pa.Full = full
	// The shipped pWCET is built on the extended sample; if its battery
	// fails where the convergence-time one passed, that deserves its own
	// warning (a failing convergence battery already warned above).
	if conv.Estimate.IID.Passed(a.cfg.MBPTA.Alpha) {
		if err := a.checkIID(name, in.Name, "campaign extension", full, pa.RunsUsed); err != nil {
			return nil, err
		}
	}
	a.done(name, in.Name, pa.RunsUsed, conv.Summary)
	return pa, nil
}

// done emits the terminal progress event for one path; the note carries the
// estimation layer's peak retained memory (the quantity Config.MBPTA's
// Streaming mode bounds), so progress sinks can surface it.
func (a *Analyzer) done(name, input string, runs int, sum stats.SampleSummary) {
	if a.cfg.Progress != nil {
		note := ""
		if sum != nil {
			note = fmt.Sprintf("estimation memory: peak %d B", sum.PeakBytes())
		}
		a.cfg.Progress(ProgressEvent{Program: name, Input: input, Phase: "done", Done: runs, Target: runs, Note: note})
	}
}

// ErrIIDInadmissible reports an i.i.d. battery that failed its
// admissibility checks under Config.IIDHardFail. Test with errors.Is; the
// wrapping error carries the program, input, phase and per-test p-values.
var ErrIIDInadmissible = errors.New("i.i.d. battery inadmissible")

// checkIID surfaces an inadmissible i.i.d. battery through the progress
// sink — at convergence, and again should the TAC-demanded campaign
// extension's battery fail after a passing convergence (the shipped pWCET
// is built on the extended sample). The battery is diagnostic — campaign
// runs draw independent seeds, so failures indicate a fit problem or
// sheer chance at the configured significance, not a protocol violation —
// but silently attaching a pWCET to a sample that failed its own
// admissibility checks is the kind of thing a certification reviewer
// should see. Under Config.IIDHardFail the warning is promoted to an
// error wrapping ErrIIDInadmissible (the progress event still fires, so
// sinks observe the failure before the analysis aborts).
func (a *Analyzer) checkIID(name, input, when string, est *mbpta.Estimate, runs int) error {
	if est == nil {
		return nil
	}
	r := est.IID
	alpha := a.cfg.MBPTA.Alpha
	if r.Passed(alpha) {
		return nil
	}
	detail := fmt.Sprintf(
		"i.i.d. battery inadmissible at %s (alpha=%.3g: runs p=%.3g, ljung-box p=%.3g, ks p=%.3g)",
		when, alpha, r.Runs.PValue, r.LjungBox.PValue, r.Identical.PValue)
	if a.cfg.Progress != nil {
		a.cfg.Progress(ProgressEvent{
			Program: name, Input: input, Phase: "warning",
			Done: runs, Target: runs,
			Note: detail,
		})
	}
	if a.cfg.IIDHardFail {
		return fmt.Errorf("core: %s(%s): %s: %w", name, input, detail, ErrIIDInadmissible)
	}
	return nil
}

// OriginalAnalysis is plain MBPTA on the unmodified program: the paper's
// baseline R_orig ("applying neither TAC nor PUB, so only determined by
// MBPTA") used by Table 2 and Figure 5.
type OriginalAnalysis struct {
	Program  string
	Input    program.Input
	Path     string
	ROrig    int
	Estimate *mbpta.Estimate
}

// AnalyzeOriginal measures the original program with plain MBPTA.
func (a *Analyzer) AnalyzeOriginal(p *program.Program, in program.Input) (*OriginalAnalysis, error) {
	return a.AnalyzeOriginalCtx(context.Background(), p, in, 0)
}

// AnalyzeOriginalCtx is AnalyzeOriginal with cancellation. workers, when
// positive, overrides cfg.MBPTA.Workers for this campaign.
func (a *Analyzer) AnalyzeOriginalCtx(ctx context.Context, p *program.Program,
	in program.Input, workers int) (*OriginalAnalysis, error) {
	res, err := p.Exec(in)
	if err != nil {
		return nil, fmt.Errorf("core: executing %s(%s): %w", p.Name, in.Name, err)
	}
	// Same campaign root as AnalyzePath: for single-path programs (where
	// PUB is innocuous and traces coincide) original and pubbed analyses
	// then see identical samples, removing spurious seed-to-seed noise
	// from PUB-vs-original comparisons.
	root := mbpta.Seed(p.Name+"/"+in.Name) ^ a.cfg.SeedSalt
	mcfg := a.cfg.MBPTA
	if workers > 0 {
		mcfg.Workers = workers
	}
	camp := mbpta.NewCampaign(res.Trace, a.cfg.Model)
	if a.cfg.Sharder != nil {
		camp.SetRemote(a.remoteCollector(p.Name, in.Name, true, root))
	}
	conv, err := camp.ConvergeCtx(ctx, mcfg, root,
		a.progressFn(p.Name, in.Name, "converge"))
	if err != nil {
		return nil, err
	}
	if err := a.checkIID(p.Name, in.Name, "convergence", conv.Estimate, conv.Runs); err != nil {
		return nil, err
	}
	a.done(p.Name, in.Name, conv.Runs, conv.Summary)
	return &OriginalAnalysis{
		Program:  p.Name,
		Input:    in,
		Path:     res.Path,
		ROrig:    conv.Runs,
		Estimate: conv.Estimate,
	}, nil
}

// MultiPathAnalysis aggregates pipeline results over several pubbed paths.
type MultiPathAnalysis struct {
	Paths []*PathAnalysis
}

// AnalyzeMultiPath runs the pipeline on every input vector. Per Corollary 2
// all resulting estimates are reliable and representative upper-bounds of
// all original paths; PWCET returns the tightest (lowest) one.
func (a *Analyzer) AnalyzeMultiPath(p *program.Program, inputs []program.Input) (*MultiPathAnalysis, error) {
	return a.AnalyzeMultiPathCtx(context.Background(), p, inputs, 0)
}

// AnalyzeMultiPathCtx is AnalyzeMultiPath with cancellation and bounded
// parallelism: the paths are fanned out over the batch engine, with workers
// (0 = GOMAXPROCS) bounding the total simulation parallelism. Results are
// deterministic and independent of the worker count.
func (a *Analyzer) AnalyzeMultiPathCtx(ctx context.Context, p *program.Program,
	inputs []program.Input, workers int) (*MultiPathAnalysis, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("core: no input vectors for %s", p.Name)
	}
	batch, err := a.AnalyzeBatch(ctx, []Job{{Program: p, Inputs: inputs}}, workers)
	if err != nil {
		return nil, err
	}
	return &MultiPathAnalysis{Paths: batch[0]}, nil
}

// PWCET returns the minimum pWCET across the analyzed pubbed paths at
// exceedance probability p (Corollary 2).
func (m *MultiPathAnalysis) PWCET(p float64) float64 {
	best := m.Paths[0].PWCET(p)
	for _, pa := range m.Paths[1:] {
		if v := pa.PWCET(p); v < best {
			best = v
		}
	}
	return best
}

// Best returns the path whose estimate is lowest at probability p.
func (m *MultiPathAnalysis) Best(p float64) *PathAnalysis {
	best := m.Paths[0]
	for _, pa := range m.Paths[1:] {
		if pa.PWCET(p) < best.PWCET(p) {
			best = pa
		}
	}
	return best
}
