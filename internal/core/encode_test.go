package core

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"

	"pubtac/internal/cache"
	"pubtac/internal/proc"
)

// TestCanonicalEncodingFieldsPinned pins the field list of every struct that
// AppendCanonical encodes. If this test fails, a configuration field was
// added, removed or renamed: extend (or prune) AppendCanonical accordingly
// AND bump EncodingVersion — cache keys derived from the encoding must not
// collide across configurations that differ in the new field.
func TestCanonicalEncodingFieldsPinned(t *testing.T) {
	pinned := []struct {
		name   string
		typ    reflect.Type
		fields []string
	}{
		{"core.Config", reflect.TypeOf(Config{}),
			[]string{"Model", "MBPTA", "TAC", "CampaignCap", "SeedSalt", "Progress", "IIDHardFail",
				"Sharder", "Shards"}},
		{"mbpta.Config", reflect.TypeOf(Config{}.MBPTA),
			[]string{"InitialRuns", "Increment", "MaxRuns", "TailCount", "StabilityEps",
				"StabilityProb", "StableRounds", "Alpha", "Workers", "ReferenceIID",
				"Streaming", "StreamBudget"}},
		{"tac.Config", reflect.TypeOf(Config{}.TAC),
			[]string{"MissProb", "MinImpactRel", "ImpactTol", "HotLines", "MaxExtraWays",
				"ProbFloor", "BaselineSeeds", "PinSeeds", "Seed", "Workers",
				"ReferenceEnumeration"}},
		{"proc.Model", reflect.TypeOf(proc.Model{}),
			[]string{"IL1", "DL1", "Lat"}},
		{"cache.Config", reflect.TypeOf(cache.Config{}),
			[]string{"Sets", "Ways", "LineBytes", "Placement", "Replacement"}},
		{"proc.Latency", reflect.TypeOf(proc.Latency{}),
			[]string{"Issue", "Hit", "Miss", "MissJitter"}},
	}
	for _, p := range pinned {
		var got []string
		for i := 0; i < p.typ.NumField(); i++ {
			got = append(got, p.typ.Field(i).Name)
		}
		if !reflect.DeepEqual(got, p.fields) {
			t.Errorf("%s fields changed:\n  got  %v\n  want %v\n"+
				"extend Config.AppendCanonical for the new/changed fields and bump core.EncodingVersion",
				p.name, got, p.fields)
		}
	}
}

func TestCanonicalEncodingStability(t *testing.T) {
	a := DefaultConfig().AppendCanonical(nil)
	b := DefaultConfig().AppendCanonical(nil)
	if !bytes.Equal(a, b) {
		t.Fatalf("encoding not deterministic:\n%s\n%s", a, b)
	}

	// Worker counts and the progress sink must NOT reach the encoding:
	// results are worker-count-invariant and observation-free, so sessions
	// differing only there share cache entries.
	cfg := DefaultConfig()
	cfg.MBPTA.Workers = 7
	cfg.TAC.Workers = 3
	cfg.Progress = func(ProgressEvent) {}
	if !bytes.Equal(a, cfg.AppendCanonical(nil)) {
		t.Fatal("worker counts or progress sink leaked into the canonical encoding")
	}

	// Distributed collection is shard- and peer-invariant (index-addressed
	// fill, bit-identical local fallback), so the sharding knobs must not
	// reach the encoding either: coordinator, workers and local sessions
	// share cache keys and config fingerprints.
	cfg = DefaultConfig()
	cfg.Shards = 9
	cfg.Sharder = nopSharder{}
	if !bytes.Equal(a, cfg.AppendCanonical(nil)) {
		t.Fatal("sharding knobs leaked into the canonical encoding")
	}

	// Every encoded knob must perturb the encoding. One representative per
	// encoded struct guards the plumbing (the pin test guards coverage).
	perturb := []func(*Config){
		func(c *Config) { c.Model.IL1.Ways = 4 },
		func(c *Config) { c.Model.Lat.Miss = 99 },
		func(c *Config) { c.MBPTA.TailCount = 11 },
		func(c *Config) { c.MBPTA.Streaming = true },
		func(c *Config) { c.TAC.HotLines = 24 },
		func(c *Config) { c.CampaignCap = 123 },
		func(c *Config) { c.SeedSalt = 5 },
		func(c *Config) { c.IIDHardFail = true },
	}
	for i, mut := range perturb {
		cfg := DefaultConfig()
		mut(&cfg)
		if bytes.Equal(a, cfg.AppendCanonical(nil)) {
			t.Errorf("perturbation %d did not change the canonical encoding", i)
		}
	}
}

// nopSharder is the minimal ShardCollector for encoding tests.
type nopSharder struct{}

func (nopSharder) Shards() int { return 1 }
func (nopSharder) CollectShard(context.Context, ShardSpec) ([]float64, error) {
	return nil, errors.New("nop")
}
