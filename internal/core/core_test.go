package core

import (
	"testing"

	"pubtac/internal/malardalen"
	"pubtac/internal/mbpta"
	"pubtac/internal/stats"
)

// testConfig returns a configuration sized for unit tests: small campaigns,
// capped at a few thousand runs.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.MBPTA.InitialRuns = 200
	cfg.MBPTA.Increment = 200
	cfg.MBPTA.MaxRuns = 3000
	cfg.CampaignCap = 4000
	cfg.TAC.BaselineSeeds = 4
	cfg.TAC.PinSeeds = 2
	return cfg
}

func TestAnalyzePathBS(t *testing.T) {
	b := malardalen.BS()
	a := New(testConfig())
	pa, err := a.AnalyzePath(b.Program, b.Default())
	if err != nil {
		t.Fatal(err)
	}
	if pa.Program != "bs" {
		t.Fatalf("program = %q", pa.Program)
	}
	if pa.RPub < 200 {
		t.Fatalf("RPub = %d", pa.RPub)
	}
	if pa.R != max(pa.RPub, pa.RTac) {
		t.Fatalf("R = %d, want max(%d, %d)", pa.R, pa.RPub, pa.RTac)
	}
	if pa.RunsUsed > 4000 && pa.RunsUsed != pa.RPub {
		t.Fatalf("campaign cap not honored: %d", pa.RunsUsed)
	}
	if pa.Full == nil || pa.PubOnly == nil {
		t.Fatal("missing estimates")
	}
	// The pWCET at 1e-12 upper-bounds the observed sample maximum.
	if pa.PWCET(1e-12) < stats.Max(pa.Full.Sample) {
		t.Fatalf("pWCET@1e-12 (%v) below observed max (%v)",
			pa.PWCET(1e-12), stats.Max(pa.Full.Sample))
	}
}

func TestTACRequiresMoreRunsThanMBPTA(t *testing.T) {
	// On bs, TAC's requirement (tens of thousands of runs) exceeds MBPTA's
	// convergence requirement — the paper's headline observation ("TAC
	// requires more runs than PUB to account for conflicting cache
	// placements", Table 1).
	b := malardalen.BS()
	a := New(testConfig())
	pa, err := a.AnalyzePath(b.Program, b.Default())
	if err != nil {
		t.Fatal(err)
	}
	if pa.RTac <= pa.RPub {
		t.Fatalf("RTac = %d not above RPub = %d for bs", pa.RTac, pa.RPub)
	}
	if len(pa.TAC.Groups) == 0 {
		t.Fatal("TAC found no conflict groups on pubbed bs")
	}
}

func TestPubbedUpperBoundsOriginalPaths(t *testing.T) {
	// Corollary 1 (empirically): the pubbed path's measured ECCDF
	// upper-bounds every original path's ECCDF.
	b := malardalen.BS()
	cfg := testConfig()
	a := New(cfg)
	pa, err := a.AnalyzePath(b.Program, b.Default())
	if err != nil {
		t.Fatal(err)
	}
	pubbedECDF := stats.NewECDF(pa.Full.Sample)

	const runs = 1500
	for _, in := range malardalen.BSMaxIterationInputs(b) {
		res := b.Program.MustExec(in)
		sample := mbpta.Collect(res.Trace, cfg.Model, runs, mbpta.Seed("orig/"+in.Name), 0)
		origECDF := stats.NewECDF(sample)
		// Tolerance absorbs sampling noise at the far tail.
		if !pubbedECDF.UpperBounds(origECDF, 0.02) {
			t.Fatalf("pubbed ECCDF does not upper-bound original path %s", in.Name)
		}
	}
}

func TestAnalyzeOriginal(t *testing.T) {
	b := malardalen.CNT()
	a := New(testConfig())
	oa, err := a.AnalyzeOriginal(b.Program, b.Default())
	if err != nil {
		t.Fatal(err)
	}
	if oa.ROrig < 200 || oa.Estimate == nil {
		t.Fatalf("original analysis incomplete: %+v", oa)
	}
}

func TestPubIncreasesPWCET(t *testing.T) {
	// For a multipath benchmark, PUB's estimate must be at or above plain
	// MBPTA's on the original program (pessimism buys path coverage).
	b := malardalen.CNT()
	a := New(testConfig())
	oa, err := a.AnalyzeOriginal(b.Program, b.Default())
	if err != nil {
		t.Fatal(err)
	}
	pa, err := a.AnalyzePath(b.Program, b.Default())
	if err != nil {
		t.Fatal(err)
	}
	// Estimates are themselves random quantities ("variations are mostly
	// caused by random variations in the execution time sample", Section
	// 4.2); distribution-level dominance is checked in
	// TestPubbedUpperBoundsOriginalPaths. Allow modest estimator noise
	// here.
	if pa.PWCET(1e-12) < oa.Estimate.PWCET(1e-12)*0.85 {
		t.Fatalf("PUB pWCET (%v) below original pWCET (%v)",
			pa.PWCET(1e-12), oa.Estimate.PWCET(1e-12))
	}
}

func TestAnalyzeMultiPathCorollary2(t *testing.T) {
	b := malardalen.BS()
	a := New(testConfig())
	inputs := malardalen.BSMaxIterationInputs(b)[:3]
	m, err := a.AnalyzeMultiPath(b.Program, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Paths) != 3 {
		t.Fatalf("paths = %d", len(m.Paths))
	}
	// The multi-path pWCET is the minimum across paths.
	p := 1e-12
	minV := m.Paths[0].PWCET(p)
	for _, pa := range m.Paths {
		if v := pa.PWCET(p); v < minV {
			minV = v
		}
	}
	if got := m.PWCET(p); got != minV {
		t.Fatalf("MultiPath PWCET = %v, want min %v", got, minV)
	}
	if m.Best(p).PWCET(p) != minV {
		t.Fatal("Best() inconsistent with PWCET()")
	}
}

func TestAnalyzeMultiPathNoInputs(t *testing.T) {
	b := malardalen.BS()
	a := New(testConfig())
	if _, err := a.AnalyzeMultiPath(b.Program, nil); err == nil {
		t.Fatal("expected error")
	}
}

func TestSinglePathPubInnocuous(t *testing.T) {
	// For single-path programs PUB makes no difference to the access
	// pattern (no conditionals to balance beyond degenerate ones), so the
	// pubbed pWCET should be close to the original pWCET (Figure 5,
	// rightmost benchmarks).
	b := malardalen.MatMult()
	a := New(testConfig())
	oa, err := a.AnalyzeOriginal(b.Program, b.Default())
	if err != nil {
		t.Fatal(err)
	}
	pa, err := a.AnalyzePath(b.Program, b.Default())
	if err != nil {
		t.Fatal(err)
	}
	// Compare the PUB-only estimate (R_pub runs): TAC's larger campaign is
	// a separate effect (Figure 5's category 2). For single-path programs
	// the pubbed trace is identical and campaigns share the root seed, so
	// the ratio is exactly 1.
	ratio := pa.PubOnly.PWCET(1e-12) / oa.Estimate.PWCET(1e-12)
	if ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("single-path PUB ratio = %v, want ~1.0", ratio)
	}
}

func TestCampaignCapZeroMeansUnlimited(t *testing.T) {
	cfg := testConfig()
	cfg.CampaignCap = 0
	cfg.TAC.ProbFloor = 0.9 // effectively disables TAC extra runs
	b := malardalen.InsertSort()
	a := New(cfg)
	pa, err := a.AnalyzePath(b.Program, b.Default())
	if err != nil {
		t.Fatal(err)
	}
	if pa.RunsUsed != pa.R {
		t.Fatalf("RunsUsed = %d, want R = %d", pa.RunsUsed, pa.R)
	}
}

func TestPathAnalysisRecordsTACClasses(t *testing.T) {
	b := malardalen.BS()
	a := New(testConfig())
	pa, err := a.AnalyzePath(b.Program, b.Default())
	if err != nil {
		t.Fatal(err)
	}
	if pa.RTac > 0 && len(pa.TAC.Classes) == 0 {
		t.Fatal("RTac > 0 but no classes recorded")
	}
	for _, c := range pa.TAC.Classes {
		if c.Runs > pa.RTac {
			t.Fatalf("class runs %d exceed RTac %d", c.Runs, pa.RTac)
		}
	}
}

func TestExtensionBatteryMatchesOneShot(t *testing.T) {
	// On bs, TAC demands more runs than MBPTA converged with, so analyzeOn
	// takes the campaign-extension path: the convergence rounds' battery
	// state is Pushed forward instead of re-scanning R runs. The resulting
	// report must match the one-shot reference battery over the full
	// sample (runs test and two-half KS bit-identically, Ljung-Box to
	// reassociation error).
	b := malardalen.BS()
	a := New(testConfig())
	pa, err := a.AnalyzePath(b.Program, b.Default())
	if err != nil {
		t.Fatal(err)
	}
	if pa.RunsUsed <= pa.RPub {
		t.Fatalf("extension path not exercised: RunsUsed %d <= RPub %d", pa.RunsUsed, pa.RPub)
	}
	got := pa.Full.IID
	want := stats.CheckIID(pa.Full.Sample)
	if got.Runs != want.Runs || got.Identical != want.Identical {
		t.Fatalf("extension battery diverged from one-shot: %+v vs %+v", got, want)
	}
	lbDiff := got.LjungBox.Statistic - want.LjungBox.Statistic
	if lbDiff < 0 {
		lbDiff = -lbDiff
	}
	if scale := 1 + want.LjungBox.Statistic; lbDiff > 1e-8*scale {
		t.Fatalf("ljung-box diverged: %+v vs %+v", got.LjungBox, want.LjungBox)
	}
}

func TestIIDWarningEventEmitted(t *testing.T) {
	// At an absurdly strict significance level some battery p-value falls
	// below alpha, so the analyzer must surface an inadmissibility warning
	// through the progress sink (the battery is diagnostic; the analysis
	// still completes).
	b := malardalen.BS()
	cfg := testConfig()
	cfg.MBPTA.Alpha = 0.999
	var warnings []ProgressEvent
	cfg.Progress = func(ev ProgressEvent) {
		if ev.Phase == "warning" {
			warnings = append(warnings, ev)
		}
	}
	pa, err := New(cfg).AnalyzePath(b.Program, b.Default())
	if err != nil {
		t.Fatal(err)
	}
	if pa.Full == nil {
		t.Fatal("analysis did not complete")
	}
	if len(warnings) == 0 {
		t.Fatal("no warning event despite alpha=0.999")
	}
	w := warnings[0]
	if w.Program != "bs" || w.Note == "" || w.Done != pa.RPub {
		t.Fatalf("malformed warning event: %+v", w)
	}

	// The original-program analysis goes through the same check. Original
	// paths at this scale are usually conflict-free (constant samples, so
	// the battery degenerates to p=1 and passes even here); assert the
	// warning tracks the report either way.
	warnings = nil
	oa, err := New(cfg).AnalyzeOriginal(b.Program, b.Default())
	if err != nil {
		t.Fatal(err)
	}
	if failed := !oa.Estimate.IID.Passed(cfg.MBPTA.Alpha); failed != (len(warnings) > 0) {
		t.Fatalf("AnalyzeOriginal: battery failed=%v but %d warnings", failed, len(warnings))
	}
}

func TestIIDWarningAbsentWhenAdmissible(t *testing.T) {
	// Campaign runs draw independent seeds, so at the conventional alpha
	// the bs battery passes and no warning may be emitted.
	b := malardalen.BS()
	cfg := testConfig()
	var warnings int
	cfg.Progress = func(ev ProgressEvent) {
		if ev.Phase == "warning" {
			warnings++
		}
	}
	pa, err := New(cfg).AnalyzePath(b.Program, b.Default())
	if err != nil {
		t.Fatal(err)
	}
	// Both batteries the analyzer checks must have passed for "no warning"
	// to be the required outcome: the convergence-time one and — when TAC
	// extended the campaign — the extended sample's.
	admissible := pa.PubOnly.IID.Passed(cfg.MBPTA.Alpha) && pa.Full.IID.Passed(cfg.MBPTA.Alpha)
	if !admissible {
		t.Skip("battery failed at conventional alpha on this sample")
	}
	if warnings != 0 {
		t.Fatalf("%d warning events despite admissible batteries", warnings)
	}
}

func TestReferenceEnumerationMatchesIndexed(t *testing.T) {
	// The pipeline's TAC results (and everything derived from them: run
	// requirements, estimates) must be bit-identical between the reference
	// and the indexed enumeration, at any worker count.
	b := malardalen.CNT()
	run := func(mut func(*Config)) *PathAnalysis {
		cfg := testConfig()
		mut(&cfg)
		pa, err := New(cfg).AnalyzePath(b.Program, b.Default())
		if err != nil {
			t.Fatal(err)
		}
		return pa
	}
	ref := run(func(c *Config) { c.TAC.ReferenceEnumeration = true })
	for _, workers := range []int{0, 1, 4} {
		w := workers
		got := run(func(c *Config) { c.TAC.Workers = w })
		if got.RTac != ref.RTac || got.R != ref.R {
			t.Fatalf("workers=%d: RTac %d vs reference %d", w, got.RTac, ref.RTac)
		}
		if len(got.TAC.Groups) != len(ref.TAC.Groups) || got.TAC.BaselineMean != ref.TAC.BaselineMean {
			t.Fatalf("workers=%d: TAC analysis diverged from reference", w)
		}
		if got.PWCET(1e-12) != ref.PWCET(1e-12) {
			t.Fatalf("workers=%d: pWCET diverged", w)
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
