package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"sync"

	"pubtac/internal/mbpta"
	"pubtac/internal/pool"
)

// ShardSpec names one campaign shard for remote execution: which analysis
// configuration the worker must be running (by canonical config
// fingerprint), which program path's campaign, and which half-open run
// range. Everything a worker needs to recompute runs Lo..Hi-1 — and nothing
// else: run i depends only on (Root, i), so the spec is tiny no matter how
// large the campaign.
type ShardSpec struct {
	// Config is the hex canonical fingerprint (Config.Fingerprint) the
	// coordinator analyzed under; a worker running a different configuration
	// must refuse the shard, because its runs would not be the
	// coordinator's runs.
	Config string `json:"config"`
	// Program and Input name the benchmark path whose trace is replayed.
	Program string `json:"program"`
	Input   string `json:"input"`
	// Original selects the unmodified program (the R_orig baseline);
	// otherwise the worker applies PUB first, as AnalyzePath does.
	Original bool `json:"original,omitempty"`
	// Root is the campaign root seed (already salted by the coordinator).
	Root uint64 `json:"root"`
	// [Lo, Hi) is the run range to collect.
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// Runs returns the shard's run count.
func (s ShardSpec) Runs() int { return s.Hi - s.Lo }

// ShardCollector executes campaign shards somewhere else — the client
// package implements it over a pool of pubtacd peers. CollectShard returns
// the shard's execution times in run order (exactly spec.Runs() values).
// Implementations are called concurrently, one call per in-flight shard.
type ShardCollector interface {
	// Shards suggests how many shards to split a campaign into when
	// Config.Shards is unset — typically the peer count.
	Shards() int
	// CollectShard computes runs spec.Lo..spec.Hi-1. An error marks only
	// this shard failed; the coordinator recomputes it locally.
	CollectShard(ctx context.Context, spec ShardSpec) ([]float64, error)
}

// Fingerprint returns the SHA-256 of the canonical config encoding — the
// identity compared between coordinator and workers before a shard runs.
// It matches the session-level fingerprint the service layer already uses
// for result keys (both hash AppendCanonical's bytes).
func (c Config) Fingerprint() [sha256.Size]byte {
	return sha256.Sum256(c.AppendCanonical(nil))
}

// remoteCollector adapts the configured ShardCollector to one campaign's
// mbpta.RangeCollector: it splits every requested range into contiguous
// shards, dispatches them concurrently, copies successful shards into their
// index-addressed slots, and reports failed shards as leftovers for
// mbpta's local fallback. Shards never overlap and cover the range exactly,
// so the filled sample is bit-identical to local collection no matter how
// many shards, peers, or failures were involved.
func (a *Analyzer) remoteCollector(name, input string, original bool, root uint64) mbpta.RangeCollector {
	sc := a.cfg.Sharder
	fp := a.cfg.Fingerprint()
	cfgHex := hex.EncodeToString(fp[:])
	return func(ctx context.Context, dst []float64, offset int) ([]mbpta.Range, error) {
		n := len(dst)
		k := a.cfg.Shards
		if k <= 0 {
			k = sc.Shards()
		}
		if k < 1 {
			k = 1
		}
		if k > n {
			k = n
		}
		var mu sync.Mutex
		var leftover []mbpta.Range
		g, gctx := pool.WithContext(ctx)
		g.SetLimit(k)
		for i := 0; i < k; i++ {
			lo, hi := offset+i*n/k, offset+(i+1)*n/k
			if lo == hi {
				continue
			}
			g.Go(func() error {
				spec := ShardSpec{
					Config: cfgHex, Program: name, Input: input,
					Original: original, Root: root, Lo: lo, Hi: hi,
				}
				runs, err := sc.CollectShard(gctx, spec)
				if err != nil || len(runs) != hi-lo {
					// Cancellation aborts the campaign; any other failure
					// (peer down, foreign config, short reply) just demotes
					// this shard to the local fallback.
					if cerr := gctx.Err(); cerr != nil {
						return cerr
					}
					mu.Lock()
					leftover = append(leftover, mbpta.Range{Lo: lo, Hi: hi})
					mu.Unlock()
					return nil
				}
				copy(dst[lo-offset:hi-offset], runs)
				return nil
			})
		}
		if err := g.Wait(); err != nil {
			return nil, err
		}
		// Deterministic fallback order regardless of which goroutine failed
		// first (the fill itself is index-addressed either way).
		sort.Slice(leftover, func(i, j int) bool { return leftover[i].Lo < leftover[j].Lo })
		return leftover, nil
	}
}
