package fault

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
)

// RoundTripper wraps next (nil selects http.DefaultTransport) with the
// injector's schedule. The request identity is (method, path, body), so a
// retried or hedged attempt of the same logical operation is a new
// occurrence of the same identity and walks the same per-identity schedule
// regardless of how attempts to other operations interleave.
//
// Faults are injected client-side, above the real transport: Drop and
// Straggle happen before the wire, Fail synthesizes a response without
// forwarding, Delay sleeps on clock before forwarding, and Truncate/Corrupt
// mangle the already-received body — exactly the failure surface a resilient
// client must classify, with none of the nondeterminism of provoking real
// network faults.
func (inj *Injector) RoundTripper(clock Clock, next http.RoundTripper) http.RoundTripper {
	if next == nil {
		next = http.DefaultTransport
	}
	if clock == nil {
		clock = Real{}
	}
	return &roundTripper{inj: inj, clock: clock, next: next}
}

type roundTripper struct {
	inj   *Injector
	clock Clock
	next  http.RoundTripper
}

func (rt *roundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	dec := rt.inj.Decide(identifyRequest(req))
	switch dec.Kind {
	case Drop:
		return nil, fmt.Errorf("fault: injected connection drop (%s %s)", req.Method, req.URL.Path)
	case Straggle:
		<-req.Context().Done()
		return nil, req.Context().Err()
	case Fail:
		status := rt.inj.FailStatus()
		body := fmt.Sprintf("fault: injected %d", status)
		resp := &http.Response{
			StatusCode: status,
			Status:     fmt.Sprintf("%d %s", status, http.StatusText(status)),
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:        http.Header{"Content-Type": []string{"text/plain"}},
			Body:          io.NopCloser(bytes.NewReader([]byte(body))),
			ContentLength: int64(len(body)),
			Request:       req,
		}
		if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
			resp.Header.Set("Retry-After", "1")
		}
		return resp, nil
	case Delay:
		if err := rt.clock.Sleep(req.Context(), dec.Latency); err != nil {
			return nil, err
		}
	}
	resp, err := rt.next.RoundTrip(req)
	if err != nil || resp.Body == nil {
		return resp, err
	}
	switch dec.Kind {
	case Truncate:
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		// Keep a deterministic strict prefix: always at least one byte
		// short, never empty unless the body was.
		keep := 0
		if len(body) > 0 {
			keep = int(dec.Aux % uint64(len(body)))
		}
		resp.Body = io.NopCloser(bytes.NewReader(body[:keep]))
		resp.ContentLength = int64(keep)
	case Corrupt:
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		if len(body) > 0 {
			body[dec.Aux%uint64(len(body))] ^= 0x55
		}
		resp.Body = io.NopCloser(bytes.NewReader(body))
		resp.ContentLength = int64(len(body))
	}
	return resp, nil
}

// identifyRequest folds the request's method, path and body into a schedule
// identity. The body is read through GetBody when available (requests built
// by http.NewRequest from an in-memory reader always have it), so POSTs to
// one endpoint with different payloads — different shards, say — get
// independent schedules.
func identifyRequest(req *http.Request) uint64 {
	parts := [][]byte{[]byte(req.Method), []byte(req.URL.Path)}
	if req.GetBody != nil {
		if rc, err := req.GetBody(); err == nil {
			if body, err := io.ReadAll(rc); err == nil {
				parts = append(parts, body)
			}
			rc.Close()
		}
	}
	return Identify(parts...)
}
