// Package fault is the deterministic fault-injection substrate behind the
// resilience layer: a seeded injector that produces reproducible connection
// drops, injected server errors, truncated and corrupted bodies, added
// latency and stragglers, pluggable as an http.RoundTripper on the client
// side and as an io.Writer wrapper on the store side.
//
// Determinism is the whole point. The decision for the nth occurrence of a
// given identity (a request's method+path+body, a store entry's key) is a
// pure function of (seed, identity, n) — splitmix64-mixed, like every other
// random draw in the repo — so the injection schedule is content-addressed:
// it does not depend on goroutine interleaving across identities, and the
// same seed replays the same faults against the same traffic. That is what
// lets a chaos test assert bit-identical results under faults and mean it.
package fault

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"pubtac/internal/rng"
)

// Kind enumerates the injectable faults.
type Kind uint8

const (
	// None forwards the operation untouched.
	None Kind = iota
	// Drop fails the operation before any bytes move (connection refused /
	// reset, ENOSPC on a writer).
	Drop
	// Fail returns a synthetic 5xx response without forwarding (HTTP), or
	// an I/O error after the operation partially ran (writer).
	Fail
	// Delay forwards the operation after an injected latency.
	Delay
	// Truncate forwards the operation but cuts the body short. On a writer
	// it is a short write (n < len(p) with a nil error — the sneakiest disk
	// failure mode, which callers must detect themselves).
	Truncate
	// Corrupt forwards the operation with one byte flipped.
	Corrupt
	// Straggle hangs the operation until its context is cancelled — the
	// permanently slow peer that hedging exists for.
	Straggle
)

var kindNames = map[Kind]string{
	None: "none", Drop: "drop", Fail: "fail", Delay: "delay",
	Truncate: "truncate", Corrupt: "corrupt", Straggle: "straggle",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Spec configures an Injector. Rates are per-mille (0..1000) and are
// evaluated in a fixed order (straggle, drop, fail, delay, truncate,
// corrupt) against one uniform draw, so their sum must stay ≤ 1000; the
// remainder is the no-fault probability.
type Spec struct {
	// Seed roots the schedule; the same seed reproduces the same faults for
	// the same traffic.
	Seed uint64
	// Per-mille rates per fault kind.
	Straggle, Drop, Fail, Delay, Truncate, Corrupt int
	// FailStatus is the synthetic HTTP status for Fail (0 selects 500).
	FailStatus int
	// Latency is the injected delay for Delay decisions (0 selects 5ms).
	Latency time.Duration
}

func (s Spec) total() int {
	return s.Straggle + s.Drop + s.Fail + s.Delay + s.Truncate + s.Corrupt
}

// ParseSpec parses the compact flag syntax used by pubtacd's -chaos flag:
// comma-separated kind=permille entries, with an optional duration suffix on
// delay. Example: "drop=150,fail=100,corrupt=80,truncate=50,delay=100:5ms".
func ParseSpec(s string, seed uint64) (Spec, error) {
	spec := Spec{Seed: seed}
	if strings.TrimSpace(s) == "" {
		return spec, nil
	}
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return spec, fmt.Errorf("fault: bad spec entry %q (want kind=permille)", part)
		}
		if name == "delay" {
			if rate, dur, hasDur := strings.Cut(val, ":"); hasDur {
				d, err := time.ParseDuration(dur)
				if err != nil {
					return spec, fmt.Errorf("fault: bad delay duration in %q: %v", part, err)
				}
				spec.Latency = d
				val = rate
			}
		}
		n, err := strconv.Atoi(val)
		if err != nil || n < 0 || n > 1000 {
			return spec, fmt.Errorf("fault: bad rate in %q (want 0..1000 per-mille)", part)
		}
		switch name {
		case "straggle":
			spec.Straggle = n
		case "drop":
			spec.Drop = n
		case "fail":
			spec.Fail = n
		case "delay":
			spec.Delay = n
		case "truncate":
			spec.Truncate = n
		case "corrupt":
			spec.Corrupt = n
		default:
			return spec, fmt.Errorf("fault: unknown fault kind %q", name)
		}
	}
	if spec.total() > 1000 {
		return spec, fmt.Errorf("fault: rates sum to %d per-mille (max 1000)", spec.total())
	}
	return spec, nil
}

// Decision is one resolved injection: what to do to this occurrence.
type Decision struct {
	Kind Kind
	// Latency is the injected delay for Delay decisions.
	Latency time.Duration
	// Aux is an extra deterministic draw: the corrupted byte offset for
	// Corrupt (modulo the body length) and the kept fraction seed for
	// Truncate.
	Aux uint64
}

// Event is one recorded decision, for schedule-reproducibility assertions.
type Event struct {
	ID   uint64
	N    uint32
	Kind Kind
}

// Injector turns a Spec into a deterministic fault schedule. It is safe for
// concurrent use; construct with New.
type Injector struct {
	spec Spec

	mu   sync.Mutex
	seen map[uint64]uint32
	log  []Event
}

// New returns an injector for spec. A zero spec injects nothing (every
// decision is None), so a nil-safe always-on wiring is cheap.
func New(spec Spec) *Injector {
	if spec.FailStatus == 0 {
		spec.FailStatus = 500
	}
	if spec.Latency == 0 {
		spec.Latency = 5 * time.Millisecond
	}
	return &Injector{spec: spec, seen: make(map[uint64]uint32)}
}

// Identify folds arbitrary bytes into an identity for Decide — callers hash
// whatever makes two operations "the same traffic" (method+path+body for a
// request, the entry key for a store write).
func Identify(parts ...[]byte) uint64 {
	h := rng.Mix64(uint64(len(parts)))
	for _, p := range parts {
		for _, c := range p {
			h = rng.Mix64(h ^ uint64(c))
		}
		h = rng.Mix64(h)
	}
	return h
}

// Decide returns the decision for the next occurrence of id. For occurrence
// n the decision is a pure function of (seed, id, n): concurrent callers on
// different identities never perturb each other's schedules, and per
// identity the kth retry of the same operation always meets the same fate
// under the same seed.
func (inj *Injector) Decide(id uint64) Decision {
	inj.mu.Lock()
	n := inj.seen[id]
	inj.seen[id] = n + 1
	inj.mu.Unlock()
	d := inj.DecideAt(id, n)
	inj.mu.Lock()
	inj.log = append(inj.log, Event{ID: id, N: n, Kind: d.Kind})
	inj.mu.Unlock()
	return d
}

// DecideAt is Decide for an explicit occurrence number, without recording:
// the pure schedule function itself, exposed so reproducibility tests can
// compare schedules across injector instances.
func (inj *Injector) DecideAt(id uint64, n uint32) Decision {
	h := rng.Mix64(inj.spec.Seed ^ rng.Mix64(id^rng.Mix64(uint64(n)+1)))
	roll := int(h % 1000)
	aux := rng.Mix64(h)
	dec := Decision{Kind: None, Aux: aux}
	for _, band := range [...]struct {
		kind Kind
		rate int
	}{
		{Straggle, inj.spec.Straggle},
		{Drop, inj.spec.Drop},
		{Fail, inj.spec.Fail},
		{Delay, inj.spec.Delay},
		{Truncate, inj.spec.Truncate},
		{Corrupt, inj.spec.Corrupt},
	} {
		if roll < band.rate {
			dec.Kind = band.kind
			break
		}
		roll -= band.rate
	}
	if dec.Kind == Delay {
		// 1x..4x the configured latency, deterministically.
		dec.Latency = inj.spec.Latency * time.Duration(1+aux%4)
	}
	return dec
}

// FailStatus returns the synthetic HTTP status used for Fail decisions.
func (inj *Injector) FailStatus() int { return inj.spec.FailStatus }

// Schedule returns a copy of every recorded decision, in decision order.
// Two runs of the same traffic under the same seed record permutations of
// the same multiset; per identity the order is identical.
func (inj *Injector) Schedule() []Event {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return append([]Event(nil), inj.log...)
}

// Counts returns how many decisions of each kind were recorded — the
// cheap assertion surface for smoke tests ("some faults actually fired").
func (inj *Injector) Counts() map[Kind]uint64 {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	out := make(map[Kind]uint64)
	for _, ev := range inj.log {
		out[ev.Kind]++
	}
	return out
}
