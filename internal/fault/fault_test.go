package fault

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"
)

// The schedule is a pure function of (seed, identity, occurrence): two
// injectors with the same spec replay identical schedules, a different seed
// produces a different one, and interleaving traffic on other identities
// perturbs nothing.
func TestScheduleDeterministic(t *testing.T) {
	spec := Spec{Seed: 42, Drop: 150, Fail: 150, Delay: 100, Truncate: 100, Corrupt: 100, Straggle: 50}
	a, b := New(spec), New(spec)

	ids := []uint64{Identify([]byte("POST"), []byte("/v1/shards"), []byte("spec1")),
		Identify([]byte("POST"), []byte("/v1/shards"), []byte("spec2")),
		Identify([]byte("GET"), []byte("/v1/healthz"))}

	var seqA, seqB []Decision
	for n := 0; n < 200; n++ {
		for _, id := range ids {
			seqA = append(seqA, a.Decide(id))
		}
	}
	// b sees the same per-identity traffic but with extra interleaved
	// traffic on an unrelated identity.
	noise := Identify([]byte("noise"))
	for n := 0; n < 200; n++ {
		for _, id := range ids {
			b.Decide(noise)
			seqB = append(seqB, b.Decide(id))
		}
	}
	if !reflect.DeepEqual(seqA, seqB) {
		t.Fatal("same seed + same per-identity traffic produced different schedules")
	}

	c := New(Spec{Seed: 43, Drop: 150, Fail: 150, Delay: 100, Truncate: 100, Corrupt: 100, Straggle: 50})
	var seqC []Decision
	for n := 0; n < 200; n++ {
		for _, id := range ids {
			seqC = append(seqC, c.Decide(id))
		}
	}
	if reflect.DeepEqual(seqA, seqC) {
		t.Fatal("different seeds produced identical schedules")
	}

	// DecideAt is the schedule function itself.
	for n := uint32(0); n < 50; n++ {
		if a.DecideAt(ids[0], n) != New(spec).DecideAt(ids[0], n) {
			t.Fatalf("DecideAt(%d) differs across instances", n)
		}
	}
}

func TestSpecRates(t *testing.T) {
	inj := New(Spec{Seed: 7, Drop: 250, Fail: 250})
	counts := map[Kind]int{}
	id := Identify([]byte("x"))
	for i := 0; i < 4000; i++ {
		counts[inj.Decide(id).Kind]++
	}
	// ~1000 each for Drop/Fail, ~2000 None; generous bounds.
	for _, k := range []Kind{Drop, Fail} {
		if counts[k] < 700 || counts[k] > 1300 {
			t.Errorf("%v fired %d times in 4000, want ≈1000", k, counts[k])
		}
	}
	if counts[None] < 1600 {
		t.Errorf("None fired %d times, want ≈2000", counts[None])
	}
	if counts[Straggle]+counts[Delay]+counts[Truncate]+counts[Corrupt] != 0 {
		t.Error("zero-rate kinds fired")
	}
}

func TestParseSpec(t *testing.T) {
	spec, err := ParseSpec("drop=150,fail=100,corrupt=80,truncate=50,delay=100:7ms,straggle=20", 9)
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{Seed: 9, Drop: 150, Fail: 100, Corrupt: 80, Truncate: 50, Delay: 100, Straggle: 20, Latency: 7 * time.Millisecond}
	if spec != want {
		t.Fatalf("parsed %+v, want %+v", spec, want)
	}
	for _, bad := range []string{"drop", "drop=x", "drop=-1", "drop=2000", "nope=5", "drop=600,fail=600", "delay=10:xx"} {
		if _, err := ParseSpec(bad, 0); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
	if spec, err := ParseSpec("", 3); err != nil || spec.total() != 0 {
		t.Errorf("empty spec: %+v, %v", spec, err)
	}
}

// The RoundTripper mangles traffic exactly as decided: drops error out,
// fails synthesize 5xx, truncation yields a strict prefix and corruption
// differs in exactly one byte.
func TestRoundTripperFaults(t *testing.T) {
	payload := bytes.Repeat([]byte("pubtac-wire-"), 32)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(payload)
	}))
	defer ts.Close()

	get := func(inj *Injector) (*http.Response, []byte, error) {
		c := &http.Client{Transport: inj.RoundTripper(nil, nil)}
		resp, err := c.Get(ts.URL + "/body")
		if err != nil {
			return nil, nil, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		return resp, body, err
	}

	if _, _, err := get(New(Spec{Drop: 1000})); err == nil {
		t.Error("Drop: no error")
	}
	if resp, _, err := get(New(Spec{Fail: 1000})); err != nil || resp.StatusCode != 500 {
		t.Errorf("Fail: %v / %v", resp, err)
	}
	if resp, _, err := get(New(Spec{Fail: 1000, FailStatus: 429})); err != nil ||
		resp.StatusCode != 429 || resp.Header.Get("Retry-After") == "" {
		t.Errorf("Fail(429): want Retry-After, got %v / %v", resp, err)
	}
	if _, body, err := get(New(Spec{Seed: 5, Truncate: 1000})); err != nil ||
		len(body) >= len(payload) || !bytes.HasPrefix(payload, body) {
		t.Errorf("Truncate: %d bytes of %d (%v)", len(body), len(payload), err)
	}
	if _, body, err := get(New(Spec{Seed: 5, Corrupt: 1000})); err != nil || bytes.Equal(body, payload) || len(body) != len(payload) {
		t.Errorf("Corrupt: body unchanged or resized (%v)", err)
	} else {
		diff := 0
		for i := range body {
			if body[i] != payload[i] {
				diff++
			}
		}
		if diff != 1 {
			t.Errorf("Corrupt flipped %d bytes, want exactly 1", diff)
		}
	}

	// Straggle hangs until the request context dies.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL, nil)
	c := &http.Client{Transport: New(Spec{Straggle: 1000}).RoundTripper(nil, nil)}
	if _, err := c.Do(req); err == nil {
		t.Error("Straggle: request returned without cancellation")
	}
}

func TestWriterFaults(t *testing.T) {
	id := Identify([]byte("key"))
	payload := bytes.Repeat([]byte("x"), 100)

	var buf bytes.Buffer
	w := New(Spec{Drop: 1000}).Writer(id, &buf)
	if _, err := w.Write(payload); err == nil {
		t.Error("Drop: write succeeded")
	}

	buf.Reset()
	w = New(Spec{Fail: 1000}).Writer(id, &buf)
	if _, err := w.Write(payload); err == nil || buf.Len() == 0 || buf.Len() >= len(payload) {
		t.Errorf("Fail: err=%v wrote %d of %d (want partial + error)", err, buf.Len(), len(payload))
	}

	buf.Reset()
	w = New(Spec{Truncate: 1000}).Writer(id, &buf)
	n, err := w.Write(payload)
	if err != nil || n >= len(payload) || buf.Len() != n {
		t.Errorf("Truncate: n=%d err=%v, want short count with nil error", n, err)
	}

	buf.Reset()
	w = New(Spec{}).Writer(id, &buf)
	if n, err := w.Write(payload); err != nil || n != len(payload) || !bytes.Equal(buf.Bytes(), payload) {
		t.Errorf("None: n=%d err=%v", n, err)
	}
}

func TestFakeClock(t *testing.T) {
	fc := &Fake{}
	ctx := context.Background()
	if err := fc.Sleep(ctx, 50*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	ch, stop := fc.After(100 * time.Millisecond)
	select {
	case <-ch:
		t.Fatal("timer fired early")
	default:
	}
	fc.Advance(100 * time.Millisecond)
	select {
	case <-ch:
	default:
		t.Fatal("timer did not fire on Advance")
	}
	if stop() {
		t.Error("stop after firing reported stopped")
	}
	if got := fc.Sleeps(); len(got) != 1 || got[0] != 50*time.Millisecond {
		t.Errorf("Sleeps() = %v", got)
	}
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if err := fc.Sleep(cctx, time.Second); err == nil {
		t.Error("Sleep ignored cancelled ctx")
	}
}
