package fault

import (
	"fmt"
	"io"
)

// ErrNoSpace is the injected disk-full error (ENOSPC's failure shape
// without depending on a real full filesystem).
var ErrNoSpace = fmt.Errorf("fault: injected no space left on device")

// Writer wraps w with the schedule decision for the next occurrence of id
// (use Identify over the store key). One decision governs the whole wrapped
// writer's lifetime:
//
//   - Drop: every Write fails immediately with ErrNoSpace — the volume was
//     already full.
//   - Fail: the first Write writes roughly half the bytes through, then
//     fails with ErrNoSpace — the volume filled mid-entry.
//   - Truncate: the first Write writes roughly half the bytes, reports the
//     short count with a NIL error — the io.Writer contract violation real
//     filesystems commit under memory pressure; callers that don't check n
//     corrupt their tier silently.
//   - anything else: writes pass through untouched.
func (inj *Injector) Writer(id uint64, w io.Writer) io.Writer {
	dec := inj.Decide(id)
	return &faultWriter{w: w, dec: dec}
}

type faultWriter struct {
	w     io.Writer
	dec   Decision
	wrote bool
}

func (fw *faultWriter) Write(p []byte) (int, error) {
	switch fw.dec.Kind {
	case Drop:
		return 0, ErrNoSpace
	case Fail:
		if !fw.wrote {
			fw.wrote = true
			n, err := fw.w.Write(p[:len(p)/2])
			if err != nil {
				return n, err
			}
			return n, ErrNoSpace
		}
		return 0, ErrNoSpace
	case Truncate:
		if !fw.wrote {
			fw.wrote = true
			return fw.w.Write(p[:len(p)/2])
		}
	}
	return fw.w.Write(p)
}
