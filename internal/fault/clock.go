package fault

import (
	"context"
	"sync"
	"time"
)

// Clock is the time seam for every resilience mechanism in the repo: retry
// backoff, hedge timers and circuit-breaker cooldowns all take their sleeps
// and readings through it instead of the wall clock. The seam is what keeps
// the detrand invariant honest — the one Real implementation below is the
// single escape-audited wall-clock touchpoint, and tests drive the exact
// same code deterministically through Fake.
//
// The interface is structural on purpose: packages that need a clock (the
// client peer fabric, the injector's Delay action) declare their own
// identical interface and accept any implementation, so depending on this
// package is never required to satisfy one.
type Clock interface {
	// Now returns the current reading. Readings are only ever compared to
	// each other (cooldown expiry), never stored in results.
	Now() time.Time
	// Sleep blocks for d or until ctx is done, returning ctx.Err() in the
	// latter case.
	Sleep(ctx context.Context, d time.Duration) error
	// After returns a channel that receives once after d, plus a stop
	// function releasing the timer early (reporting whether it was stopped
	// before firing).
	After(d time.Duration) (<-chan time.Time, func() bool)
}

// Real is the wall clock. It is the only place in the tree where resilience
// code touches ambient time; everything above it is injected.
type Real struct{}

// Now implements Clock.
//
//pubtac:nondeterministic the one wall-clock touchpoint behind the Clock seam; readings gate retries/breakers and never reach result bytes
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock with a cancellable timer (time.Sleep itself would
// ignore ctx and hold the goroutine hostage).
func (Real) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// After implements Clock.
func (Real) After(d time.Duration) (<-chan time.Time, func() bool) {
	t := time.NewTimer(d)
	return t.C, t.Stop
}

// Fake is a deterministic manual clock for tests. Sleep auto-advances: it
// records the requested duration, moves the clock forward and returns
// immediately, so a retry loop's whole backoff schedule runs in microseconds
// and the recorded durations pin the exact seeded-jitter sequence. After
// timers fire when Advance (or an auto-advancing Sleep) moves the clock past
// their deadline. The zero value is ready to use and starts at the zero
// time.
type Fake struct {
	mu     sync.Mutex
	now    time.Time
	sleeps []time.Duration
	timers []*fakeTimer
}

type fakeTimer struct {
	at    time.Time
	ch    chan time.Time
	fired bool
}

// Now implements Clock.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// Sleep implements Clock: it records d, advances the clock by it, fires any
// timers that came due, and returns immediately (or ctx.Err() if ctx is
// already done).
func (f *Fake) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	f.mu.Lock()
	f.sleeps = append(f.sleeps, d)
	f.advanceLocked(d)
	f.mu.Unlock()
	return nil
}

// After implements Clock. The returned timer fires when the clock is
// advanced to or past its deadline.
func (f *Fake) After(d time.Duration) (<-chan time.Time, func() bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	t := &fakeTimer{at: f.now.Add(d), ch: make(chan time.Time, 1)}
	f.timers = append(f.timers, t)
	if d <= 0 {
		t.fired = true
		t.ch <- t.at
	}
	return t.ch, func() bool {
		f.mu.Lock()
		defer f.mu.Unlock()
		stopped := !t.fired
		t.fired = true
		return stopped
	}
}

// Advance moves the clock forward by d, firing due timers.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	f.advanceLocked(d)
	f.mu.Unlock()
}

func (f *Fake) advanceLocked(d time.Duration) {
	f.now = f.now.Add(d)
	for _, t := range f.timers {
		if !t.fired && !t.at.After(f.now) {
			t.fired = true
			t.ch <- f.now
		}
	}
}

// Sleeps returns the durations of every Sleep so far, in call order — the
// backoff schedule a test pins.
func (f *Fake) Sleeps() []time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]time.Duration(nil), f.sleeps...)
}
