// Package textplot renders ECCDF/pWCET curves as ASCII plots with a
// logarithmic probability axis, the visual language of every figure in the
// MBPTA literature. It keeps the repository's figures inspectable in a
// terminal without plotting dependencies.
package textplot

import (
	"fmt"
	"math"
	"strings"

	"pubtac/internal/stats"
)

// Series is one labeled curve.
type Series struct {
	Name   string
	Points []stats.ECCDFPoint
}

// markers are assigned to series in order.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&', '1', '2', '3', '4', '5', '6', '7', '8'}

// ECCDF renders the series on a width x height grid: x = execution time
// (linear), y = exceedance probability (log10, decades). Points with zero
// probability are clamped to the bottom decade.
func ECCDF(series []Series, width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 6 {
		height = 6
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minLogP := 0.0
	for _, s := range series {
		for _, p := range s.Points {
			if p.Value < minX {
				minX = p.Value
			}
			if p.Value > maxX {
				maxX = p.Value
			}
			if p.Prob > 0 {
				if lp := math.Log10(p.Prob); lp < minLogP {
					minLogP = lp
				}
			}
		}
	}
	if math.IsInf(minX, 1) || minX == maxX {
		return "(empty plot)\n"
	}
	if minLogP > -1 {
		minLogP = -1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for _, p := range s.Points {
			x := int(float64(width-1) * (p.Value - minX) / (maxX - minX))
			lp := minLogP
			if p.Prob > 0 {
				lp = math.Log10(p.Prob)
			}
			y := int(float64(height-1) * lp / minLogP) // 0 at top (p=1)
			if y < 0 {
				y = 0
			}
			if y >= height {
				y = height - 1
			}
			grid[y][x] = m
		}
	}

	var sb strings.Builder
	for i, row := range grid {
		lp := minLogP * float64(i) / float64(height-1)
		fmt.Fprintf(&sb, "1e%-4.0f |%s|\n", lp, string(row))
	}
	fmt.Fprintf(&sb, "       %s\n", strings.Repeat("-", width+2))
	fmt.Fprintf(&sb, "       %-12.0f%s%12.0f\n", minX,
		strings.Repeat(" ", maxInt(1, width-24)), maxX)
	for si, s := range series {
		fmt.Fprintf(&sb, "  %c %s\n", markers[si%len(markers)], s.Name)
	}
	return sb.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
