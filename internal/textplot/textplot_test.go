package textplot

import (
	"strings"
	"testing"

	"pubtac/internal/stats"
)

func sampleSeries(name string, shift float64) Series {
	var pts []stats.ECCDFPoint
	p := 1.0
	for v := 100.0; v <= 1000; v += 100 {
		pts = append(pts, stats.ECCDFPoint{Value: v + shift, Prob: p})
		p /= 10
	}
	return Series{Name: name, Points: pts}
}

func TestECCDFBasicRender(t *testing.T) {
	out := ECCDF([]Series{sampleSeries("a", 0), sampleSeries("b", 50)}, 60, 10)
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Fatal("legend missing")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatal("markers missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 12 {
		t.Fatalf("plot too short: %d lines", len(lines))
	}
	// Every grid row must have the same width.
	var w int
	for _, l := range lines[:10] {
		if w == 0 {
			w = len(l)
		} else if len(l) != w {
			t.Fatalf("ragged plot rows: %d vs %d", len(l), w)
		}
	}
}

func TestECCDFEmptyAndDegenerate(t *testing.T) {
	if out := ECCDF(nil, 40, 8); !strings.Contains(out, "empty") {
		t.Fatalf("nil series: %q", out)
	}
	constant := Series{Name: "c", Points: []stats.ECCDFPoint{{Value: 5, Prob: 0.5}}}
	if out := ECCDF([]Series{constant}, 40, 8); !strings.Contains(out, "empty") {
		t.Fatalf("degenerate series should render as empty: %q", out)
	}
}

func TestECCDFClampsTinySizes(t *testing.T) {
	out := ECCDF([]Series{sampleSeries("a", 0)}, 1, 1)
	if len(out) == 0 {
		t.Fatal("no output")
	}
}

func TestECCDFZeroProbClamped(t *testing.T) {
	s := Series{Name: "z", Points: []stats.ECCDFPoint{
		{Value: 1, Prob: 0.5}, {Value: 2, Prob: 0},
	}}
	out := ECCDF([]Series{s}, 30, 6)
	if !strings.Contains(out, "*") {
		t.Fatal("points not plotted")
	}
}
