package cache

import (
	"math"
	"testing"
	"testing/quick"

	"pubtac/internal/rng"
	"pubtac/internal/trace"
)

func lruCache(sets, ways int) *Cache {
	return New(Config{Sets: sets, Ways: ways, LineBytes: 32,
		Placement: ModuloPlacement, Replacement: LRUReplacement}, 1)
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"default", DefaultL1(), true},
		{"zero", Config{}, false},
		{"non-pow2 sets", Config{Sets: 3, Ways: 2, LineBytes: 32}, false},
		{"zero ways", Config{Sets: 4, Ways: 0, LineBytes: 32}, false},
		{"non-pow2 line", Config{Sets: 4, Ways: 2, LineBytes: 33}, false},
		{"direct mapped", Config{Sets: 8, Ways: 1, LineBytes: 16}, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.cfg.Validate(); (err == nil) != c.ok {
				t.Fatalf("Validate() = %v, ok=%v", err, c.ok)
			}
		})
	}
}

func TestDefaultL1Geometry(t *testing.T) {
	cfg := DefaultL1()
	if cfg.SizeBytes() != 4096 {
		t.Fatalf("size = %d, want 4096 (4KB)", cfg.SizeBytes())
	}
	if cfg.Sets != 64 || cfg.Ways != 2 || cfg.LineBytes != 32 {
		t.Fatalf("geometry = %+v", cfg)
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := New(DefaultL1(), 42)
	if c.Access(0x100) {
		t.Fatal("first access must miss (cold)")
	}
	if !c.Access(0x100) {
		t.Fatal("second access must hit")
	}
	if !c.Access(0x11F) {
		t.Fatal("same-line access must hit")
	}
	if c.Access(0x120) {
		t.Fatal("next-line access must miss")
	}
	if c.Hits() != 2 || c.Misses() != 2 || c.Accesses() != 4 {
		t.Fatalf("counters: hits=%d misses=%d", c.Hits(), c.Misses())
	}
}

func TestFlush(t *testing.T) {
	c := New(DefaultL1(), 42)
	c.Access(0x100)
	c.Flush()
	if c.Access(0x100) {
		t.Fatal("access after flush must miss")
	}
	c.Flush()
	if c.Hits() != 0 || c.Misses() != 0 {
		t.Fatal("flush must reset counters")
	}
}

func TestLRUSection2Example(t *testing.T) {
	// Paper, Section 2: in a 2-way LRU cache {ABCA} misses 4 times whereas
	// {ABACA} misses only 3 — inserting an access can reduce misses, which
	// is why PUB is incompatible with time-deterministic caches.
	// Use a single-set cache so A, B, C all contend for the same 2 ways.
	run := func(s string) uint64 {
		c := lruCache(1, 2)
		for _, a := range trace.FromLetters(s, 32) {
			c.Access(a.Addr)
		}
		return c.Misses()
	}
	if m := run("ABCA"); m != 4 {
		t.Fatalf("{ABCA} misses = %d, want 4", m)
	}
	if m := run("ABACA"); m != 3 {
		t.Fatalf("{ABACA} misses = %d, want 3", m)
	}
}

func TestLRUEvictsLeastRecent(t *testing.T) {
	c := lruCache(1, 2)
	c.Access(0 * 32) // A miss
	c.Access(1 * 32) // B miss
	c.Access(0 * 32) // A hit (B is now LRU)
	c.Access(2 * 32) // C miss, evicts B
	if !c.Access(0 * 32) {
		t.Fatal("A must still be cached")
	}
	if c.Access(1 * 32) {
		t.Fatal("B must have been evicted")
	}
}

func TestModuloPlacement(t *testing.T) {
	c := lruCache(8, 2)
	for line := uint64(0); line < 32; line++ {
		if got, want := c.SetOf(line), int(line%8); got != want {
			t.Fatalf("SetOf(%d) = %d, want %d", line, got, want)
		}
	}
}

func TestRandomPlacementUniform(t *testing.T) {
	// Over many reseeds, a fixed line must land in each of S sets about
	// equally often: chi-square over 64 sets.
	cfg := DefaultL1()
	const trials = 64 * 2000
	counts := make([]int, cfg.Sets)
	c := New(cfg, 0)
	for i := 0; i < trials; i++ {
		c.Reseed(rng.Stream(99, i))
		counts[c.SetOf(0x1234)]++
	}
	expected := float64(trials) / float64(cfg.Sets)
	var chi2 float64
	for _, n := range counts {
		d := float64(n) - expected
		chi2 += d * d / expected
	}
	// df=63; p=0.001 critical value ~103.4.
	if chi2 > 110 {
		t.Fatalf("chi2 = %.1f: placement not uniform across seeds", chi2)
	}
}

func TestRandomPlacementStableWithinRun(t *testing.T) {
	c := New(DefaultL1(), 7)
	s1 := c.SetOf(0x40)
	for i := 0; i < 100; i++ {
		if c.SetOf(0x40) != s1 {
			t.Fatal("placement must be stable within a run")
		}
	}
	c.Reseed(8)
	// Not required to differ, but across many reseeds it must not be
	// constant.
	changed := false
	for i := 0; i < 100; i++ {
		c.Reseed(uint64(i))
		if c.SetOf(0x40) != s1 {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("placement never changes across reseeds")
	}
}

func TestCollisionProbabilityMatchesAnalytic(t *testing.T) {
	// TAC's model: k specific lines land in one set with prob (1/S)^(k-1).
	// Check k=2 on an 8-set cache: expect ~1/8 over many seeds.
	cfg := Config{Sets: 8, Ways: 4, LineBytes: 32}
	c := New(cfg, 0)
	const trials = 40000
	hits := 0
	for i := 0; i < trials; i++ {
		c.Reseed(rng.Stream(5, i))
		if c.SetOf(10) == c.SetOf(20) {
			hits++
		}
	}
	p := float64(hits) / trials
	if math.Abs(p-0.125) > 0.01 {
		t.Fatalf("pairwise collision prob = %.4f, want ~0.125", p)
	}
}

func TestPinForcesPlacement(t *testing.T) {
	c := New(DefaultL1(), 3)
	pin := &Pin{Lines: map[uint64]bool{10: true, 20: true, 30: true}, Set: 5}
	c.SetPin(pin)
	for _, line := range []uint64{10, 20, 30} {
		if c.SetOf(line) != 5 {
			t.Fatalf("pinned line %d mapped to set %d", line, c.SetOf(line))
		}
	}
	// Unpinned lines follow the hash; over reseeds they are not constant.
	c.SetPin(nil)
	if c.SetOf(10) == 5 && c.SetOf(20) == 5 && c.SetOf(30) == 5 {
		// Possible but astronomically unlikely to be all 5 by chance with
		// the fixed seed used here; treat as pin leak.
		t.Fatal("pin not cleared")
	}
}

func TestPinnedOverflowThrashing(t *testing.T) {
	// Three lines pinned into one set of a 2-way cache, accessed round-robin
	// with LRU: every access misses (the classic pathological layout TAC
	// looks for).
	cfg := Config{Sets: 64, Ways: 2, LineBytes: 32,
		Placement: ModuloPlacement, Replacement: LRUReplacement}
	c := New(cfg, 1)
	c.SetPin(&Pin{Lines: map[uint64]bool{100: true, 200: true, 300: true}, Set: 0})
	for i := 0; i < 30; i++ {
		for _, line := range []uint64{100, 200, 300} {
			c.AccessLine(line)
		}
	}
	if c.Hits() != 0 {
		t.Fatalf("expected pure thrashing, got %d hits", c.Hits())
	}
}

func TestRandomReplacementEventuallyFits(t *testing.T) {
	// The paper (Section 3.1.1): with random replacement, k <= W addresses
	// mapped to one set "end up fitting in a cache set after, potentially,
	// few random replacements". Pin A,B into a 2-way set alongside nothing
	// else: after warmup, all accesses hit.
	cfg := Config{Sets: 8, Ways: 2, LineBytes: 32}
	c := New(cfg, 9)
	c.SetPin(&Pin{Lines: map[uint64]bool{1: true, 2: true}, Set: 3})
	for i := 0; i < 10; i++ {
		c.AccessLine(1)
		c.AccessLine(2)
	}
	c.AccessLine(1)
	c.AccessLine(2)
	// The last two accesses must both hit (steady state).
	if c.Hits() < 2 {
		t.Fatal("two lines in a 2-way set must reach steady-state hits")
	}
}

func TestVictimSelectionWithinWays(t *testing.T) {
	// Random replacement must keep exactly Ways lines per set valid.
	cfg := Config{Sets: 1, Ways: 4, LineBytes: 32}
	c := New(cfg, 11)
	for line := uint64(0); line < 100; line++ {
		c.AccessLine(line)
	}
	// Count how many of the last 100 lines are resident: at most 4.
	resident := 0
	for line := uint64(0); line < 100; line++ {
		h := c.Hits()
		c.AccessLine(line)
		if c.Hits() > h {
			resident++
		}
	}
	if resident > 8 { // touching updates contents; generous bound
		t.Fatalf("more lines resident (%d) than plausible for 4 ways", resident)
	}
}

func TestReseedDeterminism(t *testing.T) {
	f := func(seed uint64, lineRaw uint16) bool {
		line := uint64(lineRaw)
		a := New(DefaultL1(), seed)
		b := New(DefaultL1(), seed)
		return a.SetOf(line) == b.SetOf(line)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Sets: 3, Ways: 1, LineBytes: 32}, 0)
}

func BenchmarkAccessRandom(b *testing.B) {
	c := New(DefaultL1(), 1)
	for i := 0; i < b.N; i++ {
		c.AccessLine(uint64(i % 200))
	}
}

func BenchmarkAccessLRU(b *testing.B) {
	c := lruCache(64, 2)
	for i := 0; i < b.N; i++ {
		c.AccessLine(uint64(i % 200))
	}
}
