// Package cache implements the set-associative first-level caches of the
// evaluation platform: 4KB, 2-way, 32-byte lines, with the MBPTA-compliant
// random placement and random replacement policies (Kosmidis et al.), and
// the conventional modulo placement + LRU replacement for the
// time-deterministic contrast of Section 2.
//
// Random placement is parametric: the set index of a line is a keyed hash of
// the line address, and the key (seed) is redrawn before every program run.
// Under this scheme every line is mapped to a uniformly random set,
// independently across runs, so a group of k specific lines lands in a
// single set with probability (1/S)^(k-1) — the probability model TAC builds
// on. Random replacement draws the victim way uniformly on every miss.
package cache

import (
	"fmt"

	"pubtac/internal/rng"
)

// PlacementPolicy selects how line addresses map to cache sets.
type PlacementPolicy uint8

const (
	// RandomPlacement maps lines to sets through a per-run keyed hash
	// (time-randomized, MBPTA-compliant).
	RandomPlacement PlacementPolicy = iota
	// ModuloPlacement uses the conventional line-address modulo-sets
	// mapping (time-deterministic).
	ModuloPlacement
)

// ReplacementPolicy selects the victim on a miss in a full set.
type ReplacementPolicy uint8

const (
	// RandomReplacement evicts a uniformly random way (MBPTA-compliant).
	RandomReplacement ReplacementPolicy = iota
	// LRUReplacement evicts the least recently used way
	// (time-deterministic).
	LRUReplacement
)

// Config describes a cache geometry and its policies. The zero value is not
// valid; use DefaultL1 for the paper's configuration.
type Config struct {
	Sets        int // number of sets (power of two)
	Ways        int // associativity
	LineBytes   int // line size in bytes
	Placement   PlacementPolicy
	Replacement ReplacementPolicy
}

// DefaultL1 returns the paper's L1 configuration: 4KB, 2-way, 32B lines
// (64 sets), random placement and replacement.
func DefaultL1() Config {
	return Config{
		Sets:        64,
		Ways:        2,
		LineBytes:   32,
		Placement:   RandomPlacement,
		Replacement: RandomReplacement,
	}
}

// SizeBytes returns the total capacity of the configuration.
func (c Config) SizeBytes() int { return c.Sets * c.Ways * c.LineBytes }

// LineShift returns log2(LineBytes), the byte-address-to-line shift. The
// cache and the compiled replay of package proc share it so their line
// projections cannot diverge.
func (c Config) LineShift() uint {
	var s uint
	for b := c.LineBytes; b > 1; b >>= 1 {
		s++
	}
	return s
}

// Validate reports a descriptive error for unusable configurations.
func (c Config) Validate() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("cache: Sets must be a positive power of two, got %d", c.Sets)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("cache: Ways must be positive, got %d", c.Ways)
	}
	if c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache: LineBytes must be a positive power of two, got %d", c.LineBytes)
	}
	return nil
}

// Pin forces specific lines into a fixed set, bypassing the placement
// policy. TAC uses pinning to measure the impact of an address group being
// co-mapped into one set.
type Pin struct {
	Lines map[uint64]bool // line addresses to pin
	Set   int             // destination set index
}

// Cache is a single set-associative cache instance. It is not safe for
// concurrent use; simulation engines create one per goroutine.
type Cache struct {
	cfg      Config
	seed     uint64 // placement hash key for the current run
	rand     *rng.Xoshiro256
	lines    []uint64 // lines[set*Ways+way] = line address
	valid    []bool
	lruTick  []uint64 // last-touch timestamp per way (LRU only)
	tick     uint64
	pin      *Pin
	hits     uint64
	misses   uint64
	setMask  uint64
	lineBits uint
}

// New creates a cache with the given configuration, seeded with seed. It
// panics on invalid configurations (programming error).
func New(cfg Config, seed uint64) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Cache{
		cfg:      cfg,
		lines:    make([]uint64, cfg.Sets*cfg.Ways),
		valid:    make([]bool, cfg.Sets*cfg.Ways),
		lruTick:  make([]uint64, cfg.Sets*cfg.Ways),
		setMask:  uint64(cfg.Sets - 1),
		lineBits: cfg.LineShift(),
	}
	c.Reseed(seed)
	return c
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// PlacementKey derives the placement-hash key that Reseed(seed) installs.
// The batched campaign replay of package proc evaluates placements for many
// run seeds without touching Cache objects; sharing the derivation here
// keeps the two paths impossible to diverge.
func PlacementKey(seed uint64) uint64 { return rng.Mix64(seed ^ 0xCAC4E) }

// ReplacementSeed derives the replacement-stream seed that Reseed(seed)
// uses, for the same reason as PlacementKey.
func ReplacementSeed(seed uint64) uint64 { return rng.Mix64(seed ^ 0x5EED1ACE) }

// Reseed starts a new run: it redraws the placement hash key and the
// replacement random stream from seed, and flushes the contents (the
// evaluation flushes cache content before each run). The replacement
// generator is reseeded in place, so Reseed does not allocate.
func (c *Cache) Reseed(seed uint64) {
	c.seed = PlacementKey(seed)
	if c.rand == nil {
		c.rand = rng.New(ReplacementSeed(seed))
	} else {
		c.rand.Reseed(ReplacementSeed(seed))
	}
	c.Flush()
}

// Flush invalidates all cache contents and resets hit/miss counters.
func (c *Cache) Flush() {
	for i := range c.valid {
		c.valid[i] = false
	}
	c.hits, c.misses, c.tick = 0, 0, 0
}

// SetPin installs (or clears, with nil) a forced placement.
func (c *Cache) SetPin(p *Pin) { c.pin = p }

// Pin returns the installed forced placement, nil when none. The batched
// replay reads it once per seed block to reproduce SetOf's pin short-circuit
// without a per-access lookup.
func (c *Cache) Pin() *Pin { return c.pin }

// Rand returns the replacement random stream of the current run. The
// compiled replay draws victims from this generator so that its decisions
// are bit-identical to AccessLine's and the post-run generator state
// matches the reference engine exactly.
func (c *Cache) Rand() *rng.Xoshiro256 { return c.rand }

// RunState exposes the raw per-way state arrays (lines, valid, lruTick),
// indexed by set*Ways+way. The compiled replay writes the end-of-run state
// back through these slices so that the cache contents after a compiled run
// are bit-identical to a reference replay. Callers must not resize the
// slices.
func (c *Cache) RunState() (lines []uint64, valid []bool, lruTick []uint64) {
	return c.lines, c.valid, c.lruTick
}

// SetCounters overwrites the access counters; the compiled replay uses it
// to report its hit/miss totals through the regular Hits/Misses accessors.
func (c *Cache) SetCounters(tick, hits, misses uint64) {
	c.tick, c.hits, c.misses = tick, hits, misses
}

// SetOf returns the set index the current run maps line to.
func (c *Cache) SetOf(line uint64) int {
	if c.pin != nil && c.pin.Lines[line] {
		return c.pin.Set
	}
	if c.cfg.Placement == ModuloPlacement {
		return int(line & c.setMask)
	}
	return int(rng.Mix64(line^c.seed) & c.setMask)
}

// Access looks up the byte address addr, allocating on miss. It returns
// true on a hit.
func (c *Cache) Access(addr uint64) bool {
	return c.AccessLine(addr >> c.lineBits)
}

// AccessLine looks up a line address directly, allocating on miss. It
// returns true on a hit.
func (c *Cache) AccessLine(line uint64) bool {
	set := c.SetOf(line)
	base := set * c.cfg.Ways
	c.tick++
	for w := 0; w < c.cfg.Ways; w++ {
		if c.valid[base+w] && c.lines[base+w] == line {
			c.hits++
			c.lruTick[base+w] = c.tick
			return true
		}
	}
	c.misses++
	// Prefer an invalid way.
	for w := 0; w < c.cfg.Ways; w++ {
		if !c.valid[base+w] {
			c.install(base+w, line)
			return false
		}
	}
	// Evict according to the replacement policy.
	victim := 0
	if c.cfg.Replacement == RandomReplacement {
		victim = c.rand.Intn(c.cfg.Ways)
	} else {
		oldest := c.lruTick[base]
		for w := 1; w < c.cfg.Ways; w++ {
			if c.lruTick[base+w] < oldest {
				oldest = c.lruTick[base+w]
				victim = w
			}
		}
	}
	c.install(base+victim, line)
	return false
}

func (c *Cache) install(idx int, line uint64) {
	c.lines[idx] = line
	c.valid[idx] = true
	c.lruTick[idx] = c.tick
}

// Hits returns the hit count since the last flush.
func (c *Cache) Hits() uint64 { return c.hits }

// Misses returns the miss count since the last flush.
func (c *Cache) Misses() uint64 { return c.misses }

// Accesses returns hits + misses since the last flush.
func (c *Cache) Accesses() uint64 { return c.hits + c.misses }
