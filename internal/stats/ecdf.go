package stats

import "sort"

// ECDF is an empirical cumulative distribution function built from a sample.
// It supports both cumulative probabilities F(x) = P[X <= x] and exceedance
// (complementary) probabilities 1 - F(x), the representation used for pWCET
// curves in the MBPTA literature.
type ECDF struct {
	sorted []float64 // ascending
}

// NewECDF builds an ECDF from sample. The sample is copied, so the caller
// may reuse the slice. It panics on an empty sample.
func NewECDF(sample []float64) *ECDF {
	if len(sample) == 0 {
		panic(ErrEmptySample)
	}
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// NewECDFSorted builds an ECDF over an already ascending-sorted sample,
// which is adopted without copying: the caller must not modify it
// afterwards. It panics on an empty sample.
func NewECDFSorted(sorted []float64) *ECDF {
	if len(sorted) == 0 {
		panic(ErrEmptySample)
	}
	return &ECDF{sorted: sorted}
}

// Len returns the sample size.
func (e *ECDF) Len() int { return len(e.sorted) }

// Min returns the smallest sample value.
func (e *ECDF) Min() float64 { return e.sorted[0] }

// Max returns the largest sample value.
func (e *ECDF) Max() float64 { return e.sorted[len(e.sorted)-1] }

// P returns the empirical P[X <= x].
func (e *ECDF) P(x float64) float64 {
	// Number of sample values <= x.
	n := sort.SearchFloat64s(e.sorted, x)
	for n < len(e.sorted) && e.sorted[n] == x {
		n++
	}
	return float64(n) / float64(len(e.sorted))
}

// Exceedance returns the empirical exceedance probability P[X > x], the
// quantity plotted on the y axis of an ECCDF / pWCET figure.
func (e *ECDF) Exceedance(x float64) float64 { return 1 - e.P(x) }

// Quantile returns the q-th quantile of the underlying sample.
func (e *ECDF) Quantile(q float64) float64 { return QuantileSorted(e.sorted, q) }

// Sorted returns the ascending-sorted sample backing the ECDF. The returned
// slice must not be modified.
func (e *ECDF) Sorted() []float64 { return e.sorted }

// ECCDFPoint is one (value, exceedance-probability) coordinate of an ECCDF.
type ECCDFPoint struct {
	Value float64 // execution time
	Prob  float64 // P[X > Value]
}

// Points returns the full ECCDF as a step curve: one point per distinct
// sample value, with the exceedance probability immediately after that
// value. The points are ascending in Value and descending in Prob.
func (e *ECDF) Points() []ECCDFPoint {
	n := len(e.sorted)
	var pts []ECCDFPoint
	for i := 0; i < n; {
		j := i
		for j < n && e.sorted[j] == e.sorted[i] {
			j++
		}
		pts = append(pts, ECCDFPoint{Value: e.sorted[i], Prob: float64(n-j) / float64(n)})
		i = j
	}
	return pts
}

// KSStatistic returns the two-sample Kolmogorov-Smirnov statistic
// D = sup_x |F1(x) - F2(x)| between the samples behind e and other.
func (e *ECDF) KSStatistic(other *ECDF) float64 {
	var d float64
	i, j := 0, 0
	n1, n2 := len(e.sorted), len(other.sorted)
	for i < n1 && j < n2 {
		x1, x2 := e.sorted[i], other.sorted[j]
		x := x1
		if x2 < x {
			x = x2
		}
		for i < n1 && e.sorted[i] <= x {
			i++
		}
		for j < n2 && other.sorted[j] <= x {
			j++
		}
		diff := math64Abs(float64(i)/float64(n1) - float64(j)/float64(n2))
		if diff > d {
			d = diff
		}
	}
	return d
}

func math64Abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// UpperBounds reports whether this ECDF stochastically upper-bounds other:
// at every point x, P[this > x] >= P[other > x] - tol. In MBPTA terms, the
// distribution of this sample is (empirically) pessimistic w.r.t. other.
// tol absorbs sampling noise; use 0 for exact dominance.
func (e *ECDF) UpperBounds(other *ECDF, tol float64) bool {
	// Evaluate at every jump point of both ECDFs.
	for _, x := range e.sorted {
		if e.Exceedance(x) < other.Exceedance(x)-tol {
			return false
		}
	}
	for _, x := range other.sorted {
		if e.Exceedance(x) < other.Exceedance(x)-tol {
			return false
		}
	}
	return true
}
