package stats

import "math"

// Hypothesis tests used by MBPTA to validate the statistical assumptions on
// execution-time samples before applying extreme value theory:
//
//   - independence: Wald-Wolfowitz runs test and Ljung-Box portmanteau test;
//   - identical distribution: two-sample Kolmogorov-Smirnov test between the
//     two halves of the sample.
//
// All tests return a TestResult with the statistic and an asymptotic
// p-value; the caller compares the p-value against a significance level
// (MBPTA conventionally uses 0.05).

// TestResult carries the outcome of a hypothesis test.
type TestResult struct {
	Name      string  // test identifier
	Statistic float64 // test statistic value
	PValue    float64 // asymptotic p-value
}

// Passed reports whether the null hypothesis is NOT rejected at significance
// level alpha (i.e. the sample is compatible with the assumption tested).
func (r TestResult) Passed(alpha float64) bool { return r.PValue >= alpha }

// RunsTest performs the Wald-Wolfowitz runs test for randomness on xs,
// dichotomizing the series around its median. Values equal to the median are
// discarded, per the standard formulation. The null hypothesis is that the
// sequence is random (independent).
func RunsTest(xs []float64) TestResult {
	med := Median(xs)
	var signs []bool
	for _, x := range xs {
		if x == med {
			continue
		}
		signs = append(signs, x > med)
	}
	n := len(signs)
	if n < 2 {
		return TestResult{Name: "runs", Statistic: 0, PValue: 1}
	}
	var n1, n2 int
	runs := 1
	for i, s := range signs {
		if s {
			n1++
		} else {
			n2++
		}
		if i > 0 && signs[i] != signs[i-1] {
			runs++
		}
	}
	if n1 == 0 || n2 == 0 {
		return TestResult{Name: "runs", Statistic: 0, PValue: 1}
	}
	f1, f2 := float64(n1), float64(n2)
	mean := 2*f1*f2/(f1+f2) + 1
	variance := 2 * f1 * f2 * (2*f1*f2 - f1 - f2) /
		((f1 + f2) * (f1 + f2) * (f1 + f2 - 1))
	if variance <= 0 {
		return TestResult{Name: "runs", Statistic: 0, PValue: 1}
	}
	z := (float64(runs) - mean) / math.Sqrt(variance)
	p := 2 * (1 - NormalCDF(math.Abs(z)))
	return TestResult{Name: "runs", Statistic: z, PValue: p}
}

// LjungBox performs the Ljung-Box portmanteau test on xs with the given
// number of lags. The null hypothesis is absence of autocorrelation up to
// that lag.
func LjungBox(xs []float64, lags int) TestResult {
	n := len(xs)
	if lags < 1 || n <= lags+1 {
		return TestResult{Name: "ljung-box", Statistic: 0, PValue: 1}
	}
	var q float64
	for k := 1; k <= lags; k++ {
		r := Autocorrelation(xs, k)
		q += r * r / float64(n-k)
	}
	q *= float64(n) * (float64(n) + 2)
	p := ChiSquareSurvival(q, lags)
	return TestResult{Name: "ljung-box", Statistic: q, PValue: p}
}

// KSTwoSample performs the two-sample Kolmogorov-Smirnov test between a and
// b. The null hypothesis is that both samples come from the same
// distribution.
func KSTwoSample(a, b []float64) TestResult {
	if len(a) == 0 || len(b) == 0 {
		return TestResult{Name: "ks-2sample", Statistic: 0, PValue: 1}
	}
	d := NewECDF(a).KSStatistic(NewECDF(b))
	n1, n2 := float64(len(a)), float64(len(b))
	ne := n1 * n2 / (n1 + n2)
	lambda := (math.Sqrt(ne) + 0.12 + 0.11/math.Sqrt(ne)) * d
	return TestResult{Name: "ks-2sample", Statistic: d, PValue: KolmogorovSurvival(lambda)}
}

// IdenticalDistribution splits xs in two halves and applies the two-sample
// KS test between them, the standard MBPTA check for identically distributed
// measurements.
func IdenticalDistribution(xs []float64) TestResult {
	if len(xs) < 4 {
		return TestResult{Name: "ks-2sample", Statistic: 0, PValue: 1}
	}
	half := len(xs) / 2
	return KSTwoSample(xs[:half], xs[half:])
}

// IIDReport aggregates the three standard MBPTA admissibility checks.
type IIDReport struct {
	Runs      TestResult
	LjungBox  TestResult
	Identical TestResult
}

// CheckIID runs the full i.i.d. battery on xs with the conventional 20 lags
// for Ljung-Box (or n/4 for short samples).
func CheckIID(xs []float64) IIDReport {
	lags := 20
	if len(xs)/4 < lags {
		lags = len(xs) / 4
	}
	return IIDReport{
		Runs:      RunsTest(xs),
		LjungBox:  LjungBox(xs, lags),
		Identical: IdenticalDistribution(xs),
	}
}

// Passed reports whether all three checks pass at significance alpha.
func (r IIDReport) Passed(alpha float64) bool {
	return r.Runs.Passed(alpha) && r.LjungBox.Passed(alpha) && r.Identical.Passed(alpha)
}
