package stats

import "math"

// Hypothesis tests used by MBPTA to validate the statistical assumptions on
// execution-time samples before applying extreme value theory:
//
//   - independence: Wald-Wolfowitz runs test and Ljung-Box portmanteau test;
//   - identical distribution: two-sample Kolmogorov-Smirnov test between the
//     two halves of the sample.
//
// All tests return a TestResult with the statistic and an asymptotic
// p-value; the caller compares the p-value against a significance level
// (MBPTA conventionally uses 0.05).

// TestResult carries the outcome of a hypothesis test.
type TestResult struct {
	Name      string  // test identifier
	Statistic float64 // test statistic value
	PValue    float64 // asymptotic p-value
}

// Passed reports whether the null hypothesis is NOT rejected at significance
// level alpha (i.e. the sample is compatible with the assumption tested).
func (r TestResult) Passed(alpha float64) bool { return r.PValue >= alpha }

// RunsTest performs the Wald-Wolfowitz runs test for randomness on xs,
// dichotomizing the series around its median. Values equal to the median are
// discarded, per the standard formulation. The null hypothesis is that the
// sequence is random (independent). Degenerate inputs — an empty sample, or
// one whose every value ties with the median — trivially pass with PValue 1,
// consistent with LjungBox and IdenticalDistribution: the battery never
// panics.
func RunsTest(xs []float64) TestResult {
	if len(xs) == 0 {
		return TestResult{Name: "runs", Statistic: 0, PValue: 1}
	}
	return RunsTestMedian(xs, Median(xs))
}

// RunsTestMedian is RunsTest with the dichotomization threshold supplied by
// the caller. Holders of an ascending-sorted view (the convergence loop)
// pass the O(1) median from it instead of paying RunsTest's internal
// copy+sort of the whole sample.
func RunsTestMedian(xs []float64, med float64) TestResult {
	var n1, n2, runs int
	var last int8
	for _, x := range xs {
		var sign int8
		switch {
		case x > med:
			sign = 1
			n1++
		case x < med:
			sign = -1
			n2++
		default:
			continue
		}
		if last == 0 {
			runs = 1
		} else if sign != last {
			runs++
		}
		last = sign
	}
	return runsResult(n1, n2, runs)
}

// runsResult turns runs-test counts (values above/below the median, number
// of sign runs) into the z statistic and its normal-approximation p-value.
func runsResult(n1, n2, runs int) TestResult {
	if n1+n2 < 2 || n1 == 0 || n2 == 0 {
		return TestResult{Name: "runs", Statistic: 0, PValue: 1}
	}
	f1, f2 := float64(n1), float64(n2)
	mean := 2*f1*f2/(f1+f2) + 1
	variance := 2 * f1 * f2 * (2*f1*f2 - f1 - f2) /
		((f1 + f2) * (f1 + f2) * (f1 + f2 - 1))
	if variance <= 0 {
		return TestResult{Name: "runs", Statistic: 0, PValue: 1}
	}
	z := (float64(runs) - mean) / math.Sqrt(variance)
	p := 2 * (1 - NormalCDF(math.Abs(z)))
	return TestResult{Name: "runs", Statistic: z, PValue: p}
}

// LjungBox performs the Ljung-Box portmanteau test on xs with the given
// number of lags. The null hypothesis is absence of autocorrelation up to
// that lag. The mean and the autocorrelation denominator are computed once
// and shared across lags (see AutocorrelationsTo).
func LjungBox(xs []float64, lags int) TestResult {
	n := len(xs)
	if lags < 1 || n <= lags+1 {
		return TestResult{Name: "ljung-box", Statistic: 0, PValue: 1}
	}
	return ljungBoxFromAutocorr(AutocorrelationsTo(xs, lags), n)
}

// ljungBoxFromAutocorr assembles the Ljung-Box statistic and its p-value
// from the lag-1..len(rs) autocorrelations of an n-value series; the
// one-shot test and the incremental battery share it so the two can never
// drift apart on the pooling formula.
func ljungBoxFromAutocorr(rs []float64, n int) TestResult {
	var q float64
	for k, r := range rs {
		q += r * r / float64(n-(k+1))
	}
	q *= float64(n) * (float64(n) + 2)
	return TestResult{Name: "ljung-box", Statistic: q, PValue: ChiSquareSurvival(q, len(rs))}
}

// KSTwoSample performs the two-sample Kolmogorov-Smirnov test between a and
// b. The null hypothesis is that both samples come from the same
// distribution.
func KSTwoSample(a, b []float64) TestResult {
	if len(a) == 0 || len(b) == 0 {
		return TestResult{Name: "ks-2sample", Statistic: 0, PValue: 1}
	}
	d := NewECDF(a).KSStatistic(NewECDF(b))
	n1, n2 := float64(len(a)), float64(len(b))
	ne := n1 * n2 / (n1 + n2)
	lambda := (math.Sqrt(ne) + 0.12 + 0.11/math.Sqrt(ne)) * d
	return TestResult{Name: "ks-2sample", Statistic: d, PValue: KolmogorovSurvival(lambda)}
}

// IdenticalDistribution splits xs in two halves and applies the two-sample
// KS test between them, the standard MBPTA check for identically distributed
// measurements.
func IdenticalDistribution(xs []float64) TestResult {
	if len(xs) < 4 {
		return TestResult{Name: "ks-2sample", Statistic: 0, PValue: 1}
	}
	half := len(xs) / 2
	return KSTwoSample(xs[:half], xs[half:])
}

// IIDReport aggregates the three standard MBPTA admissibility checks.
type IIDReport struct {
	Runs      TestResult
	LjungBox  TestResult
	Identical TestResult
}

// CheckIID runs the full i.i.d. battery on xs with the conventional 20 lags
// for Ljung-Box (or n/4 for short samples). It never panics: degenerate
// samples (empty, shorter than the tests need, constant) trivially pass
// every check with PValue 1.
//
//pubtac:reference iid
func CheckIID(xs []float64) IIDReport {
	return IIDReport{
		Runs:      RunsTest(xs),
		LjungBox:  LjungBox(xs, iidLags(len(xs))),
		Identical: IdenticalDistribution(xs),
	}
}

// CheckIIDSorted is CheckIID for callers that already hold an
// ascending-sorted view of xs: the runs-test median comes from the sorted
// view in O(1) instead of an internal copy+sort. xs stays in run order (the
// independence tests need it); sorted must hold the same values ascending.
func CheckIIDSorted(xs, sorted []float64) IIDReport {
	runs := TestResult{Name: "runs", Statistic: 0, PValue: 1}
	if len(xs) > 0 {
		runs = RunsTestMedian(xs, QuantileSorted(sorted, 0.5))
	}
	return IIDReport{
		Runs:      runs,
		LjungBox:  LjungBox(xs, iidLags(len(xs))),
		Identical: IdenticalDistribution(xs),
	}
}

// iidLags is the battery's Ljung-Box lag rule: 20 lags, n/4 for short
// samples.
func iidLags(n int) int {
	if n/4 < iidMaxLags {
		return n / 4
	}
	return iidMaxLags
}

// Passed reports whether all three checks pass at significance alpha.
func (r IIDReport) Passed(alpha float64) bool {
	return r.Runs.Passed(alpha) && r.LjungBox.Passed(alpha) && r.Identical.Passed(alpha)
}
