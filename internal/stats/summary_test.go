package stats

import (
	"math"
	"testing"

	"pubtac/internal/rng"
)

// gridSample returns n execution-time-like values: integer cycles on a
// coarse grid (distinct values stay far below typical sketch budgets, so the
// sketch remains exact — the regime real campaigns live in).
func gridSample(seed uint64, n int) []float64 {
	gen := rng.New(seed)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Floor(gen.Float64()*800) + 40000
	}
	return xs
}

// gapSample returns n values strictly split around a central gap: even
// indices land at 40000+1..51, odd indices at 40000-51..-1. Every
// even-length prefix has exactly as many highs as lows, so the type-7
// median of any even-length prefix falls strictly inside the gap: no value
// ever ties the median, and the runs-test dichotomization is identical no
// matter when or from which (even-sized) prefix the median is taken. This
// pins the one streaming battery approximation (per-block medians) and
// makes the whole battery comparable bit for bit.
func gapSample(seed uint64, n int) []float64 {
	gen := rng.New(seed)
	xs := make([]float64, n)
	for i := range xs {
		off := 1 + math.Floor(gen.Float64()*50)
		if i%2 == 1 {
			off = -off
		}
		xs[i] = 40000 + off
	}
	return xs
}

// pushBlocks feeds xs into sum in blocks of size block.
func pushBlocks(sum SampleSummary, xs []float64, block int) {
	for lo := 0; lo < len(xs); lo += block {
		hi := lo + block
		if hi > len(xs) {
			hi = len(xs)
		}
		sum.Push(xs[lo:hi])
	}
}

// sameView asserts bit-identity of the estimation surface two views expose:
// size, extremes, the exact upper tail, rank and quantile queries.
func sameView(t *testing.T, label string, a, b SampleView) {
	t.Helper()
	if a.N() != b.N() {
		t.Fatalf("%s: N %d != %d", label, a.N(), b.N())
	}
	if a.Min() != b.Min() || a.Max() != b.Max() {
		t.Fatalf("%s: extremes (%v,%v) != (%v,%v)", label, a.Min(), a.Max(), b.Min(), b.Max())
	}
	ta, tb := a.TailSorted(), b.TailSorted()
	k := len(ta)
	if len(tb) < k {
		k = len(tb)
	}
	for i := 1; i <= k; i++ {
		if ta[len(ta)-i] != tb[len(tb)-i] {
			t.Fatalf("%s: TailSorted from top %d: %v != %v", label, i, ta[len(ta)-i], tb[len(tb)-i])
		}
		if a.FromTop(i) != b.FromTop(i) {
			t.Fatalf("%s: FromTop(%d): %v != %v", label, i, a.FromTop(i), b.FromTop(i))
		}
	}
	for _, q := range []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.999, 1} {
		if a.Quantile(q) != b.Quantile(q) {
			t.Fatalf("%s: Quantile(%v): %v != %v", label, q, a.Quantile(q), b.Quantile(q))
		}
	}
	for _, x := range []float64{0, a.Min() - 1, a.Min(), a.Quantile(0.5), a.Max(), a.Max() + 1} {
		if a.CountLE(x) != b.CountLE(x) {
			t.Fatalf("%s: CountLE(%v): %d != %d", label, x, a.CountLE(x), b.CountLE(x))
		}
	}
}

// TestStreamingSummaryMatchesFullSummary is the oracle-pair equivalence test
// of the "summary" pair: a StreamingSummary whose reservoir covers the
// sample and whose sketch stays exact must reproduce the FullSummary
// reference bit for bit — estimation surface, snapshot views, and (on the
// gap construction, which removes the per-block-median caveat) the whole
// admissibility battery; Ljung-Box agrees to reassociation error.
func TestStreamingSummaryMatchesFullSummary(t *testing.T) {
	cases := []struct {
		name  string
		xs    []float64
		block int
		// exactRuns: the gap construction pins the dichotomization, so the
		// runs test is bit-identical. On a plain random grid pushed in
		// blocks the per-block medians drift while the sample is small —
		// the documented streaming approximation — so the runs statistic
		// only agrees approximately there.
		exactRuns bool
	}{
		{"one-block", gapSample(3, 1500), 1500, true},
		{"blocked", gapSample(3, 1500), 250, true},
		{"grid-blocked", gridSample(7, 1400), 200, false},
		{"tiny", gapSample(9, 40), 10, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			full := NewFullSummary(true)
			stream := NewStreamingSummary(1024)
			pushBlocks(full, c.xs, c.block)
			pushBlocks(stream, c.xs, c.block)

			if stream.Bytes() == 0 || stream.PeakBytes() < stream.Bytes() {
				t.Fatalf("memory accounting: bytes %d, peak %d", stream.Bytes(), stream.PeakBytes())
			}
			sameView(t, "summary", full, stream)
			sameView(t, "view", full.View(), stream.View())

			fi, si := full.IID(), stream.IID()
			if c.exactRuns && !sameResult(fi.Runs, si.Runs) {
				t.Fatalf("runs test diverged: %+v vs %+v", fi.Runs, si.Runs)
			}
			if !c.exactRuns && math.Abs(fi.Runs.Statistic-si.Runs.Statistic) > 0.25 {
				t.Fatalf("runs test drifted too far: %+v vs %+v", fi.Runs, si.Runs)
			}
			if !sameResult(fi.Identical, si.Identical) {
				t.Fatalf("ks test diverged: %+v vs %+v", fi.Identical, si.Identical)
			}
			if !closeResult(fi.LjungBox, si.LjungBox, 1e-8) {
				t.Fatalf("ljung-box diverged: %+v vs %+v", fi.LjungBox, si.LjungBox)
			}

			// The views are snapshots: growing the summaries must not
			// change them.
			vf, vs := full.View(), stream.View()
			wantMax := vf.Max()
			full.Push([]float64{1e9})
			stream.Push([]float64{1e9})
			if vf.Max() != wantMax || vs.Max() != wantMax {
				t.Fatalf("views not snapshots: %v/%v after push, want %v", vf.Max(), vs.Max(), wantMax)
			}
		})
	}
}

// TestStreamingSummaryTailMatchesBeyondReservoir checks the partial-coverage
// regime: with n far above the budget, the reservoir still holds the exact
// top-K order statistics of the full sample, and rank queries below the
// reservoir resolve through the (here exact) sketch.
func TestStreamingSummaryTailMatchesBeyondReservoir(t *testing.T) {
	// 50 distinct grid values keep the sketch exact even at the floored
	// minimum budget, so every rank query resolves exactly.
	gen := rng.New(11)
	xs := make([]float64, 6000)
	for i := range xs {
		xs[i] = math.Floor(gen.Float64()*50) + 40000
	}
	full := NewFullSummary(true)
	stream := NewStreamingSummary(0) // floored to MinStreamBudget
	pushBlocks(full, xs, 512)
	pushBlocks(stream, xs, 512)

	if got := len(stream.TailSorted()); got != MinStreamBudget {
		t.Fatalf("reservoir holds %d values, want %d", got, MinStreamBudget)
	}
	for k := 1; k <= len(xs); k = k*3 + 1 {
		if full.FromTop(k) != stream.FromTop(k) {
			t.Fatalf("FromTop(%d): %v != %v", k, full.FromTop(k), stream.FromTop(k))
		}
	}
	for _, q := range []float64{0.1, 0.5, 0.9} {
		if full.Quantile(q) != stream.Quantile(q) {
			t.Fatalf("Quantile(%v): %v != %v", q, full.Quantile(q), stream.Quantile(q))
		}
	}
}

// TestSummaryMergeAssociative: merging shard summaries is associative and
// deterministic — ((A·B)·C) and (A·(B·C)) produce bit-identical estimation
// surfaces, and both match a single summary pushed the concatenated stream
// (the sketch, reservoir and extremes are multiset properties). The battery
// counts merge exactly on the gap construction; Ljung-Box moments agree to
// reassociation error.
func TestSummaryMergeAssociative(t *testing.T) {
	xs := gapSample(21, 2520)
	chunks := [][]float64{xs[:1000], xs[1000:1900], xs[1900:]}
	build := func(c []float64) *StreamingSummary {
		s := NewStreamingSummary(512)
		pushBlocks(s, c, 128)
		return s
	}

	// ((A·B)·C)
	left := build(chunks[0])
	if err := left.Merge(build(chunks[1])); err != nil {
		t.Fatal(err)
	}
	if err := left.Merge(build(chunks[2])); err != nil {
		t.Fatal(err)
	}
	// (A·(B·C))
	bc := build(chunks[1])
	if err := bc.Merge(build(chunks[2])); err != nil {
		t.Fatal(err)
	}
	right := build(chunks[0])
	if err := right.Merge(bc); err != nil {
		t.Fatal(err)
	}
	// The pushed-through stream, for the multiset surface.
	pushed := build(xs)

	sameView(t, "assoc", left, right)
	sameView(t, "merge-vs-push", left, pushed)

	li, ri := left.IID(), right.IID()
	if !sameResult(li.Runs, ri.Runs) || !sameResult(li.Identical, ri.Identical) {
		t.Fatalf("merged batteries diverged: %+v vs %+v", li, ri)
	}
	if !closeResult(li.LjungBox, ri.LjungBox, 1e-8) {
		t.Fatalf("merged ljung-box diverged: %+v vs %+v", li.LjungBox, ri.LjungBox)
	}

	// Type mismatches are errors, not corruption.
	if err := left.Merge(NewFullSummary(false)); err == nil {
		t.Fatal("merging a FullSummary into a StreamingSummary should error")
	}
	if err := NewFullSummary(false).Merge(pushed); err == nil {
		t.Fatal("merging a StreamingSummary into a FullSummary should error")
	}
}

// TestSummaryMergeDegenerate covers the empty/singleton merge corners of
// both implementations.
func TestSummaryMergeDegenerate(t *testing.T) {
	t.Run("streaming", func(t *testing.T) {
		empty := NewStreamingSummary(64)
		if err := empty.Merge(NewStreamingSummary(64)); err != nil || empty.N() != 0 {
			t.Fatalf("empty·empty: err=%v n=%d", err, empty.N())
		}
		single := NewStreamingSummary(64)
		single.Push([]float64{42})
		if err := empty.Merge(single); err != nil {
			t.Fatal(err)
		}
		if empty.N() != 1 || empty.Min() != 42 || empty.Max() != 42 || empty.FromTop(1) != 42 {
			t.Fatalf("empty·singleton: n=%d min=%v max=%v", empty.N(), empty.Min(), empty.Max())
		}
		if err := empty.Merge(NewStreamingSummary(64)); err != nil || empty.N() != 1 {
			t.Fatalf("singleton·empty: err=%v n=%d", err, empty.N())
		}
		empty.IID() // must not panic
	})
	t.Run("full", func(t *testing.T) {
		empty := NewFullSummary(true)
		single := NewFullSummary(true)
		single.Push([]float64{42})
		if err := empty.Merge(single); err != nil {
			t.Fatal(err)
		}
		if empty.N() != 1 || empty.Max() != 42 {
			t.Fatalf("empty·singleton: n=%d", empty.N())
		}
		empty.IID()
	})
}

// TestStreamingSummaryDegenerateInputs: constant and tie-heavy samples, and
// samples smaller than the reservoir, must neither panic nor diverge from
// the reference.
func TestStreamingSummaryDegenerateInputs(t *testing.T) {
	t.Run("constant", func(t *testing.T) {
		s := NewStreamingSummary(64)
		xs := make([]float64, 500)
		for i := range xs {
			xs[i] = 7
		}
		pushBlocks(s, xs, 100)
		if s.Min() != 7 || s.Max() != 7 || s.Quantile(0.5) != 7 || s.FromTop(300) != 7 {
			t.Fatalf("constant summary broken: %v %v %v", s.Min(), s.Max(), s.Quantile(0.5))
		}
		rep := s.IID()
		if !rep.Passed(0.05) {
			t.Fatalf("constant sample rejected: %+v", rep)
		}
	})
	t.Run("tie-heavy", func(t *testing.T) {
		gen := rng.New(5)
		xs := make([]float64, 1200)
		for i := range xs {
			xs[i] = math.Floor(gen.Float64() * 4) // 4 distinct values
		}
		full := NewFullSummary(true)
		stream := NewStreamingSummary(1024)
		full.Push(xs) // single block: medians coincide by construction
		stream.Push(xs)
		sameView(t, "ties", full, stream)
		fi, si := full.IID(), stream.IID()
		if !sameResult(fi.Runs, si.Runs) || !sameResult(fi.Identical, si.Identical) {
			t.Fatalf("tie-heavy battery diverged: %+v vs %+v", fi, si)
		}
	})
	t.Run("smaller-than-reservoir", func(t *testing.T) {
		xs := gapSample(31, 40)
		full := NewFullSummary(true)
		stream := NewStreamingSummary(64)
		pushBlocks(full, xs, 8)
		pushBlocks(stream, xs, 8)
		sameView(t, "small", full, stream)
		if len(stream.TailSorted()) != len(xs) {
			t.Fatalf("reservoir should hold the whole small sample: %d", len(stream.TailSorted()))
		}
	})
	t.Run("empty", func(t *testing.T) {
		s := NewStreamingSummary(64)
		s.Push(nil)
		if s.N() != 0 {
			t.Fatal("pushing nothing changed the count")
		}
		s.IID() // must not panic on an empty battery
	})
}

// TestStreamingSummaryMemoryBounded pins the tentpole's memory model: after
// 200k pushed runs at budget 256, the retained and peak bytes stay bounded
// by a function of the budget alone (reservoir + sketch + battery
// retention), independent of the run count.
func TestStreamingSummaryMemoryBounded(t *testing.T) {
	const budget = 256
	s := NewStreamingSummary(budget)
	gen := rng.New(77)
	block := make([]float64, 1000)
	var at50k int
	for pushed := 0; pushed < 200_000; pushed += len(block) {
		for i := range block {
			block[i] = gen.Float64() * 1e6 // continuous: forces sketch coarsening
		}
		s.Push(block)
		if pushed == 49_000 {
			at50k = s.PeakBytes()
		}
	}
	bound := 48*budget + 8192 // reservoir + sketch + battery retention + slack
	if s.PeakBytes() > bound {
		t.Fatalf("peak %d B exceeds budget bound %d B", s.PeakBytes(), bound)
	}
	if s.PeakBytes() > at50k {
		t.Fatalf("memory still growing past 50k runs: %d B -> %d B", at50k, s.PeakBytes())
	}
	if s.N() != 200_000 {
		t.Fatalf("n = %d", s.N())
	}
	// The sketch coarsened but its resolution stays within the documented
	// bound: step < 2·span/(budget-1).
	span := s.Max() - s.Min()
	if step := s.sketch.Step(); step <= 0 || step >= 2*span/float64(budget-1) {
		t.Fatalf("sketch step %v outside (0, %v)", step, 2*span/float64(budget-1))
	}
}
