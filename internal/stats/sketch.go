package stats

import (
	"math"
	"sort"
)

// QuantileSketch is a bounded-memory empirical distribution: a histogram
// whose bucket width adapts to the data so the bucket count never exceeds a
// budget. It is the body-quantile half of the streaming estimation path (the
// exact upper tail lives in the summary's reservoir).
//
// Resolution model. While the data has at most budget distinct values the
// sketch stores them exactly (step 0): every count, quantile and CountLE is
// then bit-identical to the full-sample answer — execution times on an
// integer cycle grid land here in practice. When the distinct count
// overflows the budget, values are quantized to buckets of width step, with
// step the SMALLEST power of two at which the data fits the budget. Counts
// stay exact (they count real observations); only value resolution is lost,
// so rank queries are exact over the quantized multiset and value queries
// err by less than step < 2·span/(budget-1).
//
// Merge discipline. Merging rebins both inputs to the larger of their steps
// and re-canonicalizes. Because bucket multisets only shrink under
// power-of-two coarsening and floor-rebinning between power-of-two steps
// composes exactly (floor(floor(v/s)/2^j) = floor(v/(s·2^j))), the merge is
// associative: any parenthesization of a set of sketches yields the same
// step and bit-identical buckets. Push is a merge with an exact block, so a
// sketch's state depends only on the multiset of pushed values, not on the
// chunking — the index-addressed determinism discipline of the collection
// layer carries through.
//
// The zero value is unusable; use NewQuantileSketch. Not safe for
// concurrent use.
type QuantileSketch struct {
	budget int
	step   float64   // 0 = exact distinct values; else power-of-two bucket width
	vals   []float64 // ascending: exact values, or bucket lower edges (multiples of step)
	counts []int64   // counts[i] observations in bucket vals[i]; always > 0
	n      int64
}

// minSketchBudget keeps the sketch meaningful: below ~a few dozen buckets
// the median loses the resolution the battery needs.
const minSketchBudget = 16

// NewQuantileSketch returns an empty sketch holding at most budget buckets
// (floored at a small usable minimum).
func NewQuantileSketch(budget int) *QuantileSketch {
	if budget < minSketchBudget {
		budget = minSketchBudget
	}
	return &QuantileSketch{budget: budget}
}

// quantizeTo maps v onto the bucket grid of width step (a power of two).
// Division and multiplication by a power of two are exact in IEEE floats, so
// rebinning composes exactly across coarsenings.
func quantizeTo(v, step float64) float64 {
	if step == 0 {
		return v
	}
	return math.Floor(v/step) * step
}

// N returns the number of observations pushed so far.
func (s *QuantileSketch) N() int { return int(s.n) }

// Step returns the current bucket width: 0 while the sketch is exact, else
// the power-of-two resolution bounding the value error of quantile queries.
func (s *QuantileSketch) Step() float64 { return s.step }

// Buckets returns the bucket count (memory accounting and tests).
func (s *QuantileSketch) Buckets() int { return len(s.vals) }

// Push adds a block of observations. Cost: O(len(block)·log len(block) +
// buckets), independent of the total pushed count.
func (s *QuantileSketch) Push(block []float64) {
	if len(block) == 0 {
		return
	}
	q := make([]float64, len(block))
	for i, v := range block {
		q[i] = quantizeTo(v, s.step)
	}
	sort.Float64s(q)
	s.mergeRuns(q)
	s.compact()
}

// mergeRuns merges an ascending, already-quantized slice of observations
// into the bucket lists.
func (s *QuantileSketch) mergeRuns(q []float64) {
	vals := make([]float64, 0, len(s.vals)+len(q))
	counts := make([]int64, 0, len(s.counts)+len(q))
	i, j := 0, 0
	for i < len(s.vals) || j < len(q) {
		switch {
		case j >= len(q) || (i < len(s.vals) && s.vals[i] < q[j]):
			vals = append(vals, s.vals[i])
			counts = append(counts, s.counts[i])
			i++
		default:
			v := q[j]
			var c int64
			for j < len(q) && q[j] == v {
				c++
				j++
			}
			if i < len(s.vals) && s.vals[i] == v {
				c += s.counts[i]
				i++
			}
			vals = append(vals, v)
			counts = append(counts, c)
		}
	}
	s.vals, s.counts = vals, counts
	s.n += int64(len(q))
}

// compact coarsens the buckets to the canonical step: the smallest power of
// two at which the bucket count fits the budget. The bucket count is
// non-increasing along the power-of-two ladder (each doubling merges whole
// pairs of adjacent buckets), so a binary search over the exponent finds the
// canonical step. The search range is the full float64 exponent ladder — a
// fixed range, so the chosen step depends only on the bucket multiset, which
// is what makes Merge associative; steps too fine to evaluate (quantization
// overflows) are reported by countAt as not fitting, preserving the
// monotone threshold the search needs. At the top of the range everything
// collapses into at most two buckets, so the search always lands.
func (s *QuantileSketch) compact() {
	if len(s.vals) <= s.budget {
		return
	}
	lo, hi := -1074, 1023
	for lo < hi {
		mid := lo + (hi-lo)/2
		if s.countAt(math.Ldexp(1, mid)) <= s.budget {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	s.rebin(math.Ldexp(1, hi))
}

// countAt returns the bucket count after rebinning at step; buckets that
// would overflow to non-finite representatives count as unmergeable.
func (s *QuantileSketch) countAt(step float64) int {
	count := 0
	prev := math.Inf(-1)
	for _, v := range s.vals {
		qv := quantizeTo(v, step)
		if math.IsInf(qv, 0) || math.IsNaN(qv) {
			return len(s.vals) + 1
		}
		if count == 0 || qv != prev {
			count++
			prev = qv
		}
	}
	return count
}

// rebin quantizes the buckets at the (coarser, power-of-two) step in place.
func (s *QuantileSketch) rebin(step float64) {
	if step <= s.step {
		return
	}
	w := 0
	for i := range s.vals {
		qv := quantizeTo(s.vals[i], step)
		if w > 0 && s.vals[w-1] == qv {
			s.counts[w-1] += s.counts[i]
		} else {
			s.vals[w] = qv
			s.counts[w] = s.counts[i]
			w++
		}
	}
	s.vals = s.vals[:w]
	s.counts = s.counts[:w]
	s.step = step
}

// Merge folds other into s (other is not modified). The result is the
// canonical sketch of the union multiset at the coarser of the two steps:
// associative and deterministic under any merge order.
func (s *QuantileSketch) Merge(other *QuantileSketch) {
	if other == nil || other.n == 0 {
		return
	}
	if other.budget < s.budget {
		s.budget = other.budget // canonical: the stricter budget wins
	}
	step := s.step
	if other.step > step {
		step = other.step
	}
	s.rebin(step)
	q := make([]float64, 0, len(other.vals))
	qc := make([]int64, 0, len(other.counts))
	for i, v := range other.vals {
		qv := quantizeTo(v, step)
		if len(q) > 0 && q[len(q)-1] == qv {
			qc[len(qc)-1] += other.counts[i]
		} else {
			q = append(q, qv)
			qc = append(qc, other.counts[i])
		}
	}
	vals := make([]float64, 0, len(s.vals)+len(q))
	counts := make([]int64, 0, len(s.counts)+len(qc))
	i, j := 0, 0
	for i < len(s.vals) || j < len(q) {
		switch {
		case j >= len(q) || (i < len(s.vals) && s.vals[i] < q[j]):
			vals = append(vals, s.vals[i])
			counts = append(counts, s.counts[i])
			i++
		case i >= len(s.vals) || q[j] < s.vals[i]:
			vals = append(vals, q[j])
			counts = append(counts, qc[j])
			j++
		default:
			vals = append(vals, s.vals[i])
			counts = append(counts, s.counts[i]+qc[j])
			i++
			j++
		}
	}
	s.vals, s.counts = vals, counts
	s.n += other.n
	s.compact()
}

// Clone returns an independent copy (snapshot views use it).
func (s *QuantileSketch) Clone() *QuantileSketch {
	c := *s
	c.vals = append([]float64(nil), s.vals...)
	c.counts = append([]int64(nil), s.counts...)
	return &c
}

// orderStat returns the k-th (0-indexed) order statistic of the quantized
// multiset. It panics when k is out of range.
func (s *QuantileSketch) orderStat(k int) float64 {
	if k < 0 || int64(k) >= s.n {
		panic(ErrEmptySample)
	}
	rank := int64(k)
	for i, c := range s.counts {
		if rank < c {
			return s.vals[i]
		}
		rank -= c
	}
	panic(ErrEmptySample) // unreachable: counts sum to n
}

// Quantile returns the type-7 interpolated q-th quantile of the quantized
// multiset, using the same arithmetic as QuantileSorted so that in exact
// mode (step 0) the result is bit-identical to the full-sample quantile.
// It panics on an empty sketch.
func (s *QuantileSketch) Quantile(q float64) float64 {
	if s.n == 0 {
		panic(ErrEmptySample)
	}
	if q <= 0 {
		return s.vals[0]
	}
	if q >= 1 {
		return s.vals[len(s.vals)-1]
	}
	pos := q * float64(s.n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.orderStat(lo)
	}
	frac := pos - float64(lo)
	return s.orderStat(lo)*(1-frac) + s.orderStat(hi)*frac
}

// CountLE returns the number of (quantized) observations <= x; in exact mode
// this is the full-sample count.
func (s *QuantileSketch) CountLE(x float64) int {
	var c int64
	for i, v := range s.vals {
		if v > x {
			break
		}
		c += s.counts[i]
	}
	return int(c)
}

// Bytes returns the retained memory of the sketch in bytes.
func (s *QuantileSketch) Bytes() int {
	return len(s.vals)*8 + len(s.counts)*8 + 48
}
