package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"pubtac/internal/rng"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVariance(t *testing.T) {
	cases := []struct {
		name     string
		xs       []float64
		mean, sd float64
	}{
		{"empty", nil, 0, 0},
		{"single", []float64{5}, 5, 0},
		{"pair", []float64{1, 3}, 2, math.Sqrt2},
		{"known", []float64{2, 4, 4, 4, 5, 5, 7, 9}, 5, math.Sqrt(32.0 / 7.0)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if m := Mean(c.xs); !almostEqual(m, c.mean, 1e-12) {
				t.Errorf("Mean = %v, want %v", m, c.mean)
			}
			if s := StdDev(c.xs); !almostEqual(s, c.sd, 1e-12) {
				t.Errorf("StdDev = %v, want %v", s, c.sd)
			}
		})
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("Min/Max wrong: %v %v", Min(xs), Max(xs))
	}
}

func TestMinPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Min(nil)
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {-1, 1}, {2, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileInterpolates(t *testing.T) {
	xs := []float64{10, 20}
	if got := Quantile(xs, 0.5); !almostEqual(got, 15, 1e-12) {
		t.Errorf("Quantile(0.5) = %v, want 15", got)
	}
}

func TestQuantileMonotone(t *testing.T) {
	gen := rng.New(11)
	f := func(seedRaw uint16) bool {
		n := int(seedRaw%100) + 2
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = gen.Float64() * 1000
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := Quantile(xs, q)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMergeSorted(t *testing.T) {
	a := []float64{1, 3, 3, 8}
	b := []float64{2, 3, 9}
	got := MergeSorted(a, b)
	want := []float64{1, 2, 3, 3, 3, 8, 9}
	if len(got) != len(want) {
		t.Fatalf("MergeSorted = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MergeSorted = %v, want %v", got, want)
		}
	}
	if out := MergeSorted(nil, b); len(out) != 3 {
		t.Fatalf("MergeSorted(nil, b) = %v", out)
	}
	if out := MergeSorted(a, nil); len(out) != 4 {
		t.Fatalf("MergeSorted(a, nil) = %v", out)
	}
}

func TestMeanExcess(t *testing.T) {
	xs := []float64{1, 2, 3, 10, 20}
	m, c := MeanExcess(xs, 3)
	if c != 2 || !almostEqual(m, (7+17)/2.0, 1e-12) {
		t.Fatalf("MeanExcess = %v,%v", m, c)
	}
	if _, c := MeanExcess(xs, 100); c != 0 {
		t.Fatal("expected no exceedances")
	}
}

func TestAutocorrelation(t *testing.T) {
	// A perfectly alternating series has lag-1 autocorrelation near -1.
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = float64(i % 2)
	}
	if r := Autocorrelation(xs, 1); r > -0.9 {
		t.Fatalf("lag-1 autocorr of alternating series = %v, want ~ -1", r)
	}
	// lag-0 is 1 by definition.
	if r := Autocorrelation(xs, 0); !almostEqual(r, 1, 1e-12) {
		t.Fatalf("lag-0 autocorr = %v", r)
	}
	if r := Autocorrelation(xs[:1], 1); r != 0 {
		t.Fatalf("short series autocorr = %v, want 0", r)
	}
}

func TestECDFBasics(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	if e.Len() != 4 || e.Min() != 1 || e.Max() != 3 {
		t.Fatal("ECDF metadata wrong")
	}
	cases := []struct{ x, p float64 }{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 1}, {4, 1},
	}
	for _, c := range cases {
		if got := e.P(c.x); !almostEqual(got, c.p, 1e-12) {
			t.Errorf("P(%v) = %v, want %v", c.x, got, c.p)
		}
		if got := e.Exceedance(c.x); !almostEqual(got, 1-c.p, 1e-12) {
			t.Errorf("Exceedance(%v) = %v, want %v", c.x, got, 1-c.p)
		}
	}
}

func TestECDFPoints(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	pts := e.Points()
	if len(pts) != 3 {
		t.Fatalf("Points len = %d, want 3", len(pts))
	}
	if pts[0].Value != 1 || !almostEqual(pts[0].Prob, 0.75, 1e-12) {
		t.Errorf("pts[0] = %+v", pts[0])
	}
	if pts[2].Value != 3 || pts[2].Prob != 0 {
		t.Errorf("pts[2] = %+v", pts[2])
	}
	// Monotone decreasing probability.
	for i := 1; i < len(pts); i++ {
		if pts[i].Prob > pts[i-1].Prob || pts[i].Value <= pts[i-1].Value {
			t.Fatal("ECCDF points not monotone")
		}
	}
}

func TestECDFPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewECDF(nil)
}

func TestKSStatisticIdentical(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	e := NewECDF(xs)
	if d := e.KSStatistic(NewECDF(xs)); d != 0 {
		t.Fatalf("KS of identical samples = %v, want 0", d)
	}
}

func TestKSStatisticDisjoint(t *testing.T) {
	a := NewECDF([]float64{1, 2, 3})
	b := NewECDF([]float64{10, 20, 30})
	if d := a.KSStatistic(b); !almostEqual(d, 1, 1e-12) {
		t.Fatalf("KS of disjoint samples = %v, want 1", d)
	}
}

func TestUpperBounds(t *testing.T) {
	lo := NewECDF([]float64{1, 2, 3, 4})
	hi := NewECDF([]float64{2, 3, 4, 5})
	if !hi.UpperBounds(lo, 0) {
		t.Fatal("shifted-up sample should upper-bound")
	}
	if lo.UpperBounds(hi, 0) {
		t.Fatal("shifted-down sample should not upper-bound")
	}
	if !lo.UpperBounds(lo, 0) {
		t.Fatal("sample should upper-bound itself")
	}
}

func TestGammaRegIdentities(t *testing.T) {
	// P(a,x) + Q(a,x) == 1
	for _, a := range []float64{0.5, 1, 2.5, 10} {
		for _, x := range []float64{0.1, 1, 5, 20} {
			p, q := GammaRegLower(a, x), GammaRegUpper(a, x)
			if !almostEqual(p+q, 1, 1e-10) {
				t.Errorf("P+Q != 1 at a=%v x=%v: %v", a, x, p+q)
			}
		}
	}
	// P(1,x) = 1 - exp(-x) (exponential CDF)
	for _, x := range []float64{0.5, 1, 2, 5} {
		if got, want := GammaRegLower(1, x), 1-math.Exp(-x); !almostEqual(got, want, 1e-10) {
			t.Errorf("P(1,%v) = %v, want %v", x, got, want)
		}
	}
}

func TestChiSquareSurvivalKnown(t *testing.T) {
	// Chi-square with 2 dof is Exp(1/2): P[X > x] = exp(-x/2).
	for _, x := range []float64{0.5, 1, 4, 10} {
		if got, want := ChiSquareSurvival(x, 2), math.Exp(-x/2); !almostEqual(got, want, 1e-10) {
			t.Errorf("ChiSquareSurvival(%v,2) = %v, want %v", x, got, want)
		}
	}
	if ChiSquareSurvival(-1, 3) != 1 {
		t.Error("survival at negative x should be 1")
	}
}

func TestNormalCDFKnown(t *testing.T) {
	cases := []struct{ z, p float64 }{
		{0, 0.5}, {1.959963985, 0.975}, {-1.959963985, 0.025},
	}
	for _, c := range cases {
		if got := NormalCDF(c.z); !almostEqual(got, c.p, 1e-6) {
			t.Errorf("NormalCDF(%v) = %v, want %v", c.z, got, c.p)
		}
	}
}

func TestKolmogorovSurvivalBounds(t *testing.T) {
	if KolmogorovSurvival(0) != 1 {
		t.Error("Q(0) should be 1")
	}
	if q := KolmogorovSurvival(10); q > 1e-12 {
		t.Errorf("Q(10) = %v, want ~0", q)
	}
	// Known value: Q(1.0) ~ 0.26999...
	if q := KolmogorovSurvival(1.0); !almostEqual(q, 0.270, 0.001) {
		t.Errorf("Q(1) = %v, want ~0.270", q)
	}
	// Monotone non-increasing.
	prev := 1.0
	for l := 0.1; l < 3; l += 0.1 {
		q := KolmogorovSurvival(l)
		if q > prev+1e-12 {
			t.Fatalf("Kolmogorov survival not monotone at %v", l)
		}
		prev = q
	}
}

func TestRunsTestIID(t *testing.T) {
	gen := rng.New(1234)
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = gen.Float64()
	}
	if r := RunsTest(xs); !r.Passed(0.01) {
		t.Errorf("runs test rejected an i.i.d. sample: %+v", r)
	}
}

func TestRunsTestDetectsTrend(t *testing.T) {
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = float64(i)
	}
	if r := RunsTest(xs); r.Passed(0.05) {
		t.Errorf("runs test failed to reject a monotone trend: %+v", r)
	}
}

func TestRunsTestDegenerate(t *testing.T) {
	if r := RunsTest([]float64{1, 1, 1}); r.PValue != 1 {
		t.Errorf("constant sample should trivially pass, got %+v", r)
	}
}

func TestLjungBoxIID(t *testing.T) {
	gen := rng.New(99)
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = gen.Float64()
	}
	if r := LjungBox(xs, 20); !r.Passed(0.01) {
		t.Errorf("Ljung-Box rejected an i.i.d. sample: %+v", r)
	}
}

func TestLjungBoxDetectsAR1(t *testing.T) {
	gen := rng.New(7)
	xs := make([]float64, 2000)
	prev := 0.0
	for i := range xs {
		prev = 0.8*prev + gen.Float64()
		xs[i] = prev
	}
	if r := LjungBox(xs, 20); r.Passed(0.05) {
		t.Errorf("Ljung-Box failed to reject an AR(1) series: %+v", r)
	}
}

func TestKSTwoSampleSame(t *testing.T) {
	gen := rng.New(3)
	a := make([]float64, 1000)
	b := make([]float64, 1000)
	for i := range a {
		a[i] = gen.Float64()
		b[i] = gen.Float64()
	}
	if r := KSTwoSample(a, b); !r.Passed(0.01) {
		t.Errorf("KS rejected identical distributions: %+v", r)
	}
}

func TestKSTwoSampleDifferent(t *testing.T) {
	gen := rng.New(3)
	a := make([]float64, 1000)
	b := make([]float64, 1000)
	for i := range a {
		a[i] = gen.Float64()
		b[i] = gen.Float64() + 0.5
	}
	if r := KSTwoSample(a, b); r.Passed(0.05) {
		t.Errorf("KS failed to reject shifted distributions: %+v", r)
	}
}

func TestCheckIIDOnGoodSample(t *testing.T) {
	gen := rng.New(77)
	xs := make([]float64, 4000)
	for i := range xs {
		xs[i] = gen.Float64() * 100
	}
	rep := CheckIID(xs)
	if !rep.Passed(0.01) {
		t.Errorf("i.i.d. battery rejected a uniform sample: %+v", rep)
	}
}

func TestECDFQuantileAgainstSort(t *testing.T) {
	gen := rng.New(21)
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = gen.Float64()
	}
	e := NewECDF(xs)
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if e.Quantile(0) != s[0] || e.Quantile(1) != s[100] {
		t.Fatal("ECDF quantile extremes disagree with sorted sample")
	}
}
