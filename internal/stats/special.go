package stats

import "math"

// Special functions needed by the hypothesis tests: the regularized
// incomplete gamma function (for chi-square tail probabilities) and the
// Kolmogorov distribution. Implementations follow the classic Numerical
// Recipes formulations using only math primitives.

// GammaRegLower returns the regularized lower incomplete gamma function
// P(a, x) = gamma(a, x) / Gamma(a) for a > 0, x >= 0.
func GammaRegLower(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 0
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	return 1 - gammaContinuedFraction(a, x)
}

// GammaRegUpper returns the regularized upper incomplete gamma function
// Q(a, x) = 1 - P(a, x).
func GammaRegUpper(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 1
	}
	if x < a+1 {
		return 1 - gammaSeries(a, x)
	}
	return gammaContinuedFraction(a, x)
}

// gammaSeries evaluates P(a,x) by its series representation (x < a+1).
func gammaSeries(a, x float64) float64 {
	const itmax = 500
	const eps = 3e-14
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < itmax; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaContinuedFraction evaluates Q(a,x) by continued fraction (x >= a+1).
func gammaContinuedFraction(a, x float64) float64 {
	const itmax = 500
	const eps = 3e-14
	const fpmin = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / fpmin
	d := 1 / b
	h := d
	for i := 1; i <= itmax; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = b + an/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// ChiSquareSurvival returns P[X > x] for a chi-square distribution with k
// degrees of freedom.
func ChiSquareSurvival(x float64, k int) float64 {
	if x <= 0 {
		return 1
	}
	return GammaRegUpper(float64(k)/2, x/2)
}

// NormalCDF returns the standard normal cumulative distribution at z.
func NormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// KolmogorovSurvival returns the asymptotic survival function of the
// Kolmogorov distribution, Q_KS(lambda) = 2 * sum_{j>=1} (-1)^{j-1}
// exp(-2 j^2 lambda^2), clamped to [0, 1].
func KolmogorovSurvival(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	var sum float64
	sign := 1.0
	for j := 1; j <= 100; j++ {
		term := math.Exp(-2 * float64(j*j) * lambda * lambda)
		sum += sign * term
		if term < 1e-12 {
			break
		}
		sign = -sign
	}
	q := 2 * sum
	if q < 0 {
		return 0
	}
	if q > 1 {
		return 1
	}
	return q
}
