// Package stats implements the descriptive statistics, empirical
// distribution functions and hypothesis tests that measurement-based
// probabilistic timing analysis builds on.
//
// Everything operates on float64 samples (execution times in cycles). The
// package is dependency-free and deterministic: no function draws random
// numbers.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmptySample is returned by functions that need at least one value.
var ErrEmptySample = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs. It returns 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance of xs. It returns 0
// for samples with fewer than two values.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// CV returns the coefficient of variation (stddev/mean) of xs, or 0 when the
// mean is zero.
func CV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}

// Min returns the smallest value in xs. It panics on an empty sample.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic(ErrEmptySample)
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value in xs. It panics on an empty sample.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic(ErrEmptySample)
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (type-7, the R default). The input
// need not be sorted. It panics on an empty sample.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic(ErrEmptySample)
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

// QuantileSorted is Quantile for an already ascending-sorted sample,
// avoiding the copy and sort.
func QuantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic(ErrEmptySample)
	}
	return quantileSorted(sorted, q)
}

func quantileSorted(s []float64, q float64) float64 {
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 0.5 quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// SortedCopy returns an ascending-sorted copy of xs. It is the entry point
// of the sort-once estimation path: callers sort a sample a single time and
// hand the result to the *Sorted variants across stats, evt and mbpta.
func SortedCopy(xs []float64) []float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s
}

// MergeSorted merges two ascending-sorted slices into a new ascending
// slice. Growing campaigns use it to maintain a sorted view across
// convergence rounds in O(n + inc) instead of re-sorting the whole sample.
func MergeSorted(sortedA, sortedB []float64) []float64 {
	out := make([]float64, 0, len(sortedA)+len(sortedB))
	i, j := 0, 0
	for i < len(sortedA) && j < len(sortedB) {
		if sortedA[i] <= sortedB[j] {
			out = append(out, sortedA[i])
			i++
		} else {
			out = append(out, sortedB[j])
			j++
		}
	}
	out = append(out, sortedA[i:]...)
	out = append(out, sortedB[j:]...)
	return out
}

// Autocorrelation returns the lag-k sample autocorrelation coefficient of
// xs. It returns 0 when the series is shorter than k+2 values or has zero
// variance.
func Autocorrelation(xs []float64, k int) float64 {
	n := len(xs)
	if k < 0 || n < k+2 {
		return 0
	}
	m := Mean(xs)
	var num, den float64
	for i := 0; i < n-k; i++ {
		num += (xs[i] - m) * (xs[i+k] - m)
	}
	for _, x := range xs {
		d := x - m
		den += d * d
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// AutocorrelationsTo returns the lag-1..maxLag sample autocorrelation
// coefficients of xs, computing the mean and the normalizing denominator
// once and sharing them across lags. Per-lag results are bit-identical to
// Autocorrelation, which recomputes both on every call — a 20-lag Ljung-Box
// built on it scans the sample 40 extra times. Lags too long for the series
// (n < k+2) are reported as 0, matching Autocorrelation.
func AutocorrelationsTo(xs []float64, maxLag int) []float64 {
	if maxLag < 1 {
		return nil
	}
	rs := make([]float64, maxLag)
	n := len(xs)
	if n < 3 {
		return rs
	}
	m := Mean(xs)
	var den float64
	for _, x := range xs {
		d := x - m
		den += d * d
	}
	if den == 0 {
		return rs
	}
	for k := 1; k <= maxLag && n >= k+2; k++ {
		var num float64
		for i := 0; i < n-k; i++ {
			num += (xs[i] - m) * (xs[i+k] - m)
		}
		rs[k-1] = num / den
	}
	return rs
}

// MeanExcess returns the mean of (x - u) over all x in xs with x > u, and
// the number of such exceedances. It is the basic estimator for the rate of
// an exponential tail above threshold u.
func MeanExcess(xs []float64, u float64) (mean float64, count int) {
	var sum float64
	for _, x := range xs {
		if x > u {
			sum += x - u
			count++
		}
	}
	if count == 0 {
		return 0, 0
	}
	return sum / float64(count), count
}
