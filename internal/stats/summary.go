package stats

import (
	"fmt"
	"sort"
)

// SampleView is the read-only, point-in-time face of a sample summary: the
// quantities the estimation pipeline (tail fit, CV test, composite curve)
// reads. Order statistics follow the full-sample conventions: FromTop(1) is
// the maximum, FromTop(k) the k-th largest, CountLE(x)/N() the empirical
// CDF.
type SampleView interface {
	// N returns the number of observations summarized.
	N() int
	// Min returns the smallest observation (exact in every mode).
	Min() float64
	// Max returns the largest observation (exact in every mode).
	Max() float64
	// TailSorted returns the ascending-sorted top portion of the sample
	// available for exact tail work: the whole sample on a full view, the
	// top-K reservoir on a streaming view. Read-only; do not modify.
	TailSorted() []float64
	// FromTop returns the k-th largest observation (1 <= k <= N): exact
	// while k is within TailSorted, sketch-resolved below it on streaming
	// views.
	FromTop(k int) float64
	// CountLE returns the number of observations <= x. Exact on full
	// views and on streaming views while the sketch is exact;
	// quantized-exact (counts of the bucket-quantized sample) after the
	// sketch has coarsened.
	CountLE(x float64) int
	// Quantile returns the type-7 interpolated q-th quantile, with value
	// resolution bounded by the sketch step on streaming views.
	Quantile(q float64) float64
	// Bytes returns the retained memory behind the view, in bytes.
	Bytes() int
}

// SampleSummary owns everything the estimation pipeline needs from a
// measurement campaign's sample: the sorted-view order statistics the tail
// fit and composite curve read, the median the admissibility battery
// dichotomizes at, and the battery itself. Blocks are pushed in run order;
// a summary's state depends only on the concatenated sample, never on the
// chunking (the index-addressed determinism discipline of the collection
// layer carries through the summary).
//
// Two implementations exist: FullSummary retains the sample (the reference
// arm) and StreamingSummary holds memory independent of the run count (the
// fast arm). See their docs for the exactness contract between them.
type SampleSummary interface {
	SampleView
	// Push appends a block of runs, in run order.
	Push(block []float64)
	// Merge folds another summary of the SAME concrete type, representing
	// the runs that FOLLOW this summary's runs, into the receiver.
	Merge(other SampleSummary) error
	// IID reports the admissibility battery over everything pushed.
	IID() IIDReport
	// View returns an immutable point-in-time snapshot for curve
	// construction: later Pushes into the summary do not change it.
	View() SampleView
	// PeakBytes returns the high-water retained memory across Pushes.
	PeakBytes() int
}

// FullSummary is the retained-sample reference arm of the estimation
// pipeline: the run-ordered sample plus an incrementally merged
// ascending-sorted view, exactly the state the convergence loop historically
// threaded by hand. Every SampleView query is exact. Memory grows linearly
// with the run count — the scaling wall the streaming arm removes.
//
//pubtac:reference summary
type FullSummary struct {
	sample []float64
	sorted []float64
	iid    *IIDState // incremental battery; nil = one-shot reference battery
	peak   int
}

// NewFullSummary returns an empty full summary. With incrementalIID the
// battery is maintained by an IIDState across pushes (the fast battery);
// without it every IID() call re-runs the one-shot CheckIIDSorted reference
// battery over the retained sample (mbpta.Config.ReferenceIID).
func NewFullSummary(incrementalIID bool) *FullSummary {
	s := &FullSummary{}
	if incrementalIID {
		s.iid = new(IIDState)
	}
	return s
}

// AdoptFullSummary wraps an existing run-ordered sample, its
// ascending-sorted view and (optionally) the battery fed exactly that
// sample, without copying. The slices are adopted: the caller must not
// modify them afterwards.
func AdoptFullSummary(sample, sorted []float64, iid *IIDState) *FullSummary {
	s := &FullSummary{sample: sample, sorted: sorted, iid: iid}
	s.peak = s.Bytes()
	return s
}

// Push appends a block of runs: O(n + |block|·(log|block| + lags)).
func (s *FullSummary) Push(block []float64) {
	if len(block) == 0 {
		return
	}
	s.sample = append(s.sample, block...)
	if s.iid != nil {
		s.iid.Push(block)
	}
	s.sorted = MergeSorted(s.sorted, SortedCopy(block))
	if b := s.Bytes(); b > s.peak {
		s.peak = b
	}
}

// Merge appends another full summary's sample (run order preserved: other's
// runs follow this summary's). The battery result is identical to a
// single-stream battery over the concatenation.
func (s *FullSummary) Merge(other SampleSummary) error {
	o, ok := other.(*FullSummary)
	if !ok {
		return fmt.Errorf("stats: cannot merge %T into *FullSummary", other)
	}
	s.sample = append(s.sample, o.sample...)
	if s.iid != nil {
		s.iid.Push(o.sample)
	}
	s.sorted = MergeSorted(s.sorted, o.sorted)
	if b := s.Bytes(); b > s.peak {
		s.peak = b
	}
	return nil
}

// Sample returns the retained run-ordered sample (read-only).
func (s *FullSummary) Sample() []float64 { return s.sample }

// Sorted returns the retained ascending-sorted view (read-only).
func (s *FullSummary) Sorted() []float64 { return s.sorted }

// IID reports the admissibility battery: incremental when maintained,
// one-shot reference otherwise.
func (s *FullSummary) IID() IIDReport {
	if s.iid != nil {
		return s.iid.ReportSorted(s.sorted)
	}
	return CheckIIDSorted(s.sample, s.sorted)
}

// View snapshots the current sorted view. Pushes replace (never mutate) the
// sorted slice, so the snapshot stays valid as the summary grows.
func (s *FullSummary) View() SampleView { return fullView{sorted: s.sorted} }

// PeakBytes returns the high-water retained memory across pushes.
func (s *FullSummary) PeakBytes() int { return s.peak }

func (s *FullSummary) N() int                { return len(s.sample) }
func (s *FullSummary) Min() float64          { return fullView{sorted: s.sorted}.Min() }
func (s *FullSummary) Max() float64          { return fullView{sorted: s.sorted}.Max() }
func (s *FullSummary) TailSorted() []float64 { return s.sorted }
func (s *FullSummary) FromTop(k int) float64 { return fullView{sorted: s.sorted}.FromTop(k) }
func (s *FullSummary) CountLE(x float64) int { return fullView{sorted: s.sorted}.CountLE(x) }
func (s *FullSummary) Quantile(q float64) float64 {
	return fullView{sorted: s.sorted}.Quantile(q)
}

// Bytes counts the retained sample, sorted view and battery state.
func (s *FullSummary) Bytes() int {
	b := (len(s.sample) + len(s.sorted)) * 8
	if s.iid != nil {
		b += s.iid.Bytes()
	}
	return b
}

// fullView is a snapshot over an immutable ascending-sorted sample.
type fullView struct {
	sorted []float64
}

func (v fullView) N() int                { return len(v.sorted) }
func (v fullView) Min() float64          { return v.sorted[0] }
func (v fullView) Max() float64          { return v.sorted[len(v.sorted)-1] }
func (v fullView) TailSorted() []float64 { return v.sorted }

func (v fullView) FromTop(k int) float64 { return v.sorted[len(v.sorted)-k] }

// CountLE mirrors ECDF.P's count (binary search plus the tie walk) so
// composite curves built on a view are bit-identical to ECDF-backed ones.
func (v fullView) CountLE(x float64) int {
	n := sort.SearchFloat64s(v.sorted, x)
	for n < len(v.sorted) && v.sorted[n] == x {
		n++
	}
	return n
}

func (v fullView) Quantile(q float64) float64 { return QuantileSorted(v.sorted, q) }
func (v fullView) Bytes() int                 { return len(v.sorted) * 8 }

// MinStreamBudget floors the streaming budget: below this the reservoir
// cannot cover even the minimum tail-fit window plus headroom.
const MinStreamBudget = 64

// StreamingSummary is the bounded-memory fast arm: an exact top-K tail
// reservoir (K = budget), an exact min/max, a mergeable quantile sketch over
// the whole population, and the streaming admissibility battery. Retained
// memory is O(budget), independent of the run count.
//
// Exactness contract vs. FullSummary (the reference arm; see the
// equivalence tests):
//
//   - TailSorted/FromTop within the reservoir, Min, Max, N: bit-identical
//     always. The tail fit and CV test read only these, so estimates are
//     bit-identical whenever the reservoir covers the auto-fit search
//     window (n/5 <= budget-1; beyond it the window is clamped to the
//     reservoir).
//   - Quantile/CountLE: bit-identical while the population has at most
//     budget distinct values (integer cycle grids in practice); otherwise
//     value resolution is bounded by the sketch step < 2·span/(budget-1).
//   - IID: bit-identical while n <= 2·budget, the sketch is exact and the
//     running median never moves; past that the documented streaming
//     approximations apply (per-block dichotomization, frozen KS boundary,
//     reconstructed Ljung-Box).
//
//pubtac:fastpath summary
type StreamingSummary struct {
	budget     int
	n          int
	min, max   float64
	tailSorted []float64 // ascending top-K reservoir, exact
	sketch     *QuantileSketch
	iid        *IIDState
	peak       int
}

// NewStreamingSummary returns an empty streaming summary with the given
// memory budget (floored at MinStreamBudget): the budget is the reservoir
// size K, the sketch bucket budget and the battery's first-runs retention
// cap, so retained memory is ~5·budget float64s.
func NewStreamingSummary(budget int) *StreamingSummary {
	if budget < MinStreamBudget {
		budget = MinStreamBudget
	}
	sketch := NewQuantileSketch(budget)
	return &StreamingSummary{
		budget: budget,
		sketch: sketch,
		iid:    NewStreamingIID(sketch, budget),
	}
}

// Budget returns the configured memory budget K.
func (s *StreamingSummary) Budget() int { return s.budget }

// Push appends a block of runs in run order. The sketch is updated before
// the battery so the battery's per-block median covers the block. Cost:
// O(budget + |block|·(log|block| + lags)), independent of n.
func (s *StreamingSummary) Push(block []float64) {
	if len(block) == 0 {
		return
	}
	if s.n == 0 {
		s.min, s.max = block[0], block[0]
	}
	for _, v := range block {
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
	}
	s.n += len(block)
	s.sketch.Push(block)
	s.tailSorted = mergeTopK(s.tailSorted, SortedCopy(block), s.budget)
	s.iid.Push(block)
	if b := s.Bytes(); b > s.peak {
		s.peak = b
	}
}

// Merge folds another streaming summary (whose runs follow this summary's)
// into the receiver. Reservoir, sketch, count and min/max merge exactly and
// associatively; the battery merges per IIDState.mergeStream.
func (s *StreamingSummary) Merge(other SampleSummary) error {
	o, ok := other.(*StreamingSummary)
	if !ok {
		return fmt.Errorf("stats: cannot merge %T into *StreamingSummary", other)
	}
	if o.n == 0 {
		return nil
	}
	if s.n == 0 {
		s.min, s.max = o.min, o.max
	} else {
		if o.min < s.min {
			s.min = o.min
		}
		if o.max > s.max {
			s.max = o.max
		}
	}
	if o.budget < s.budget {
		s.budget = o.budget // canonical: the stricter budget wins
		s.iid.capFirst(s.budget)
	}
	s.n += o.n
	s.sketch.Merge(o.sketch)
	s.tailSorted = mergeTopK(s.tailSorted, o.tailSorted, s.budget)
	s.iid.mergeStream(o.iid)
	if b := s.Bytes(); b > s.peak {
		s.peak = b
	}
	return nil
}

// IID reports the streaming admissibility battery.
func (s *StreamingSummary) IID() IIDReport { return s.iid.Report() }

// View snapshots the reservoir and sketch; later pushes do not change it.
func (s *StreamingSummary) View() SampleView {
	return &streamView{
		n:          s.n,
		min:        s.min,
		max:        s.max,
		tailSorted: append([]float64(nil), s.tailSorted...),
		sketch:     s.sketch.Clone(),
	}
}

// PeakBytes returns the high-water retained memory across pushes.
func (s *StreamingSummary) PeakBytes() int { return s.peak }

func (s *StreamingSummary) N() int { return s.n }

func (s *StreamingSummary) Min() float64 {
	if s.n == 0 {
		panic(ErrEmptySample)
	}
	return s.min
}

func (s *StreamingSummary) Max() float64 {
	if s.n == 0 {
		panic(ErrEmptySample)
	}
	return s.max
}

func (s *StreamingSummary) TailSorted() []float64 { return s.tailSorted }

func (s *StreamingSummary) FromTop(k int) float64 {
	return fromTopStream(s.tailSorted, s.sketch, s.n, k)
}

func (s *StreamingSummary) CountLE(x float64) int      { return s.sketch.CountLE(x) }
func (s *StreamingSummary) Quantile(q float64) float64 { return s.sketch.Quantile(q) }

// Bytes counts the reservoir, sketch and battery state.
func (s *StreamingSummary) Bytes() int {
	return len(s.tailSorted)*8 + s.sketch.Bytes() + s.iid.Bytes() + 64
}

// streamView is a bounded-memory point-in-time snapshot.
type streamView struct {
	n          int
	min, max   float64
	tailSorted []float64
	sketch     *QuantileSketch
}

func (v *streamView) N() int                { return v.n }
func (v *streamView) Min() float64          { return v.min }
func (v *streamView) Max() float64          { return v.max }
func (v *streamView) TailSorted() []float64 { return v.tailSorted }
func (v *streamView) CountLE(x float64) int { return v.sketch.CountLE(x) }
func (v *streamView) Quantile(q float64) float64 {
	return v.sketch.Quantile(q)
}

func (v *streamView) FromTop(k int) float64 {
	return fromTopStream(v.tailSorted, v.sketch, v.n, k)
}

func (v *streamView) Bytes() int {
	return len(v.tailSorted)*8 + v.sketch.Bytes() + 32
}

// fromTopStream resolves the k-th largest observation: exact off the
// reservoir while k is within it (tailSorted[len-k] is the true sorted[n-k]
// because the reservoir holds the n-largest multiset), by sketch rank below
// it.
func fromTopStream(tailSorted []float64, sketch *QuantileSketch, n, k int) float64 {
	if k < 1 || k > n {
		panic(ErrEmptySample)
	}
	if k <= len(tailSorted) {
		return tailSorted[len(tailSorted)-k]
	}
	return sketch.orderStat(n - k)
}

// mergeTopK merges two ascending-sorted slices and keeps the k largest
// values (the union multiset's top k — exact and associative under any
// merge order). The result is freshly allocated.
func mergeTopK(tailSortedA, tailSortedB []float64, k int) []float64 {
	merged := MergeSorted(tailSortedA, tailSortedB)
	if len(merged) > k {
		merged = append([]float64(nil), merged[len(merged)-k:]...)
	}
	return merged
}
