package stats

import "math"

// iidMaxLags is the Ljung-Box lag budget of the i.i.d. battery: the MBPTA
// convention of 20 lags (short samples use n/4, see iidLags).
const iidMaxLags = 20

// IIDState incrementally maintains the MBPTA admissibility battery over a
// growing run-ordered sample. A convergence loop that adds inc runs per
// round pays O(inc·lags) per Push plus O(lags) per report for the Ljung-Box
// check, instead of CheckIID's O(n·lags) full-sample re-scan; the runs test
// continues its scan from where the previous report stopped (re-dichotomizing
// only when the sample median actually moves), and the two-half KS check
// maintains the ascending-sorted first half across the moving half boundary
// so neither half is ever re-sorted.
//
// Reports are bit-identical to CheckIID for the runs and KS checks (same
// integer counts, same median, same evaluation points) and agree with it to
// floating-point reassociation error for Ljung-Box, whose autocorrelations
// are reconstructed from running moment sums instead of centered scans. The
// one-shot battery remains the reference oracle; see the equivalence tests
// and mbpta.Config.ReferenceIID.
//
// The zero value is an empty battery ready for use. An IIDState is not safe
// for concurrent use.
//
//pubtac:fastpath iid
type IIDState struct {
	series []float64 // the run-ordered sample, appended on Push

	// Ljung-Box accumulators over the shifted series y_i = x_i - shift
	// (shift is the first observed value; execution times sit far from
	// zero, so anchoring the moments near the data keeps the expanded sums
	// well conditioned).
	shift  float64
	sum    float64             // Σ y_i
	sumSq  float64             // Σ y_i²
	cross  [iidMaxLags]float64 // cross[k-1] = Σ_i y_i · y_{i+k}
	head   []float64           // first ≤ iidMaxLags shifted values
	window []float64           // last ≤ iidMaxLags shifted values, run order

	// Runs-test scan state w.r.t. the dichotomization threshold runsMed:
	// above/below counts and the sign-transition tally of the prefix
	// scanned so far. Valid while the sample median stays at runsMed; a
	// median move restarts the dichotomization.
	runsMed  float64
	hasMed   bool
	scanned  int
	n1, n2   int
	runs     int
	lastSign int8

	// firstSorted is the ascending-sorted view of series[:half], the first
	// sample of the two-half KS check. The half boundary advances on Push;
	// the run-ordered chunk crossing it is sorted and merged in, so the
	// first half only ever grows and never re-sorts.
	firstSorted []float64
	half        int
}

// N returns the number of runs pushed so far.
func (s *IIDState) N() int { return len(s.series) }

// Push appends a block of runs, in run order, to the battery. Cost:
// O(len(block)·lags) for the autocorrelation cross-products plus the merge
// maintaining the sorted first half.
func (s *IIDState) Push(block []float64) {
	if len(block) == 0 {
		return
	}
	if len(s.series) == 0 {
		s.shift = block[0]
	}
	s.series = append(s.series, block...)
	for _, x := range block {
		y := x - s.shift
		w := len(s.window)
		for k := 1; k <= w; k++ {
			s.cross[k-1] += y * s.window[w-k]
		}
		if w == iidMaxLags {
			copy(s.window, s.window[1:])
			s.window[w-1] = y
		} else {
			s.window = append(s.window, y)
		}
		if len(s.head) < iidMaxLags {
			s.head = append(s.head, y)
		}
		s.sum += y
		s.sumSq += y * y
	}
	if h := len(s.series) / 2; h > s.half {
		s.firstSorted = MergeSorted(s.firstSorted, SortedCopy(s.series[s.half:h]))
		s.half = h
	}
}

// ReportSorted computes the battery report for the sample pushed so far,
// given the caller's ascending-sorted view of that same sample (the
// convergence loop maintains one incrementally for the tail fit). The
// sorted view supplies the runs-test median in O(1); nothing re-sorts or
// re-scans the run-ordered prefix. ReportSorted mutates the runs-test scan
// state and is therefore not idempotent w.r.t. cost, only w.r.t. results.
func (s *IIDState) ReportSorted(sorted []float64) IIDReport {
	if len(sorted) != len(s.series) {
		panic("stats: IIDState.ReportSorted: sorted view does not match the pushed sample")
	}
	return IIDReport{
		Runs:      s.runsReport(sorted),
		LjungBox:  s.ljungBoxReport(),
		Identical: s.identicalReport(sorted),
	}
}

// Report is ReportSorted for callers without a maintained sorted view: it
// assembles one by merging the sorted first half with a sort of the second.
func (s *IIDState) Report() IIDReport {
	return s.ReportSorted(MergeSorted(s.firstSorted, SortedCopy(s.series[s.half:])))
}

// runsReport continues the Wald-Wolfowitz scan over the unscanned suffix.
// When the sample median moved since the last report the whole series is
// re-dichotomized; integer-valued execution times pin the median quickly,
// so steady-state rounds only scan their increment.
func (s *IIDState) runsReport(sorted []float64) TestResult {
	if len(s.series) == 0 {
		return TestResult{Name: "runs", Statistic: 0, PValue: 1}
	}
	med := quantileSorted(sorted, 0.5)
	if !s.hasMed || med != s.runsMed {
		s.runsMed, s.hasMed = med, true
		s.scanned, s.n1, s.n2, s.runs, s.lastSign = 0, 0, 0, 0, 0
	}
	for _, x := range s.series[s.scanned:] {
		var sign int8
		switch {
		case x > med:
			sign = 1
			s.n1++
		case x < med:
			sign = -1
			s.n2++
		default:
			continue
		}
		if s.lastSign == 0 {
			s.runs = 1
		} else if sign != s.lastSign {
			s.runs++
		}
		s.lastSign = sign
	}
	s.scanned = len(s.series)
	return runsResult(s.n1, s.n2, s.runs)
}

// ljungBoxReport reconstructs the lag-k autocorrelations from the running
// sums in O(lags): with m the running mean of the shifted series,
//
//	Σ (y_i - m)(y_{i+k} - m) = cross_k - m·(2·Σy - head_k - tail_k) + (n-k)·m²
//
// because the i and i+k index ranges each miss k boundary terms (the last
// and first k values respectively).
func (s *IIDState) ljungBoxReport() TestResult {
	n := len(s.series)
	lags := iidLags(n)
	if lags < 1 || n <= lags+1 {
		return TestResult{Name: "ljung-box", Statistic: 0, PValue: 1}
	}
	nf := float64(n)
	m := s.sum / nf
	den := s.sumSq - nf*m*m
	// The expanded sums cancel at ~m²/σ̂² relative digits. The anchor is
	// the first value, so y_0 = 0 and σ̂² >= m²/n: the loss is bounded by
	// ~n·eps and the guard only fires for degenerate series (den <= 0,
	// e.g. constant) or beyond-paper-scale samples — where the exact
	// one-shot scan over the retained series is the answer.
	if den <= 0 || m*m > 1e6*den/nf {
		return LjungBox(s.series, lags)
	}
	rs := make([]float64, lags)
	var headK, tailK float64
	for k := 1; k <= lags; k++ {
		headK += s.head[k-1]
		tailK += s.window[len(s.window)-k]
		num := s.cross[k-1] - m*(2*s.sum-headK-tailK) + float64(n-k)*m*m
		rs[k-1] = num / den
	}
	return ljungBoxFromAutocorr(rs, n)
}

// identicalReport is the two-half KS check against the maintained first
// half; the second half's ECDF is derived from the full sorted view during
// the walk, so it never needs its own sorted copy.
func (s *IIDState) identicalReport(sorted []float64) TestResult {
	n := len(s.series)
	if n < 4 {
		return TestResult{Name: "ks-2sample", Statistic: 0, PValue: 1}
	}
	d := ksFirstVsRest(sorted, s.firstSorted)
	n1, n2 := float64(s.half), float64(n-s.half)
	ne := n1 * n2 / (n1 + n2)
	lambda := (math.Sqrt(ne) + 0.12 + 0.11/math.Sqrt(ne)) * d
	return TestResult{Name: "ks-2sample", Statistic: d, PValue: KolmogorovSurvival(lambda)}
}

// ksFirstVsRest computes the two-sample KS statistic between the first-half
// sample (first, ascending) and the rest of the full sample (full ∖ first)
// in one walk over the full sorted view: at every distinct value x the
// rest's count is the full count minus the first-half count. The result is
// bit-identical to ECDF.KSStatistic on separately sorted halves — the same
// i/n1 and j/n2 divisions are compared at a superset of its evaluation
// points, and the extra points (past either half's last value) can only
// produce smaller differences.
func ksFirstVsRest(full, first []float64) float64 {
	n, n1 := len(full), len(first)
	n2 := n - n1
	if n1 == 0 || n2 == 0 {
		return 0
	}
	f1, f2 := float64(n1), float64(n2)
	var d float64
	i, j := 0, 0
	for j < n {
		x := full[j]
		for j < n && full[j] <= x {
			j++
		}
		for i < n1 && first[i] <= x {
			i++
		}
		diff := math.Abs(float64(i)/f1 - float64(j-i)/f2)
		if diff > d {
			d = diff
		}
	}
	return d
}
