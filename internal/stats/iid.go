package stats

import "math"

// iidMaxLags is the Ljung-Box lag budget of the i.i.d. battery: the MBPTA
// convention of 20 lags (short samples use n/4, see iidLags).
const iidMaxLags = 20

// IIDState incrementally maintains the MBPTA admissibility battery over a
// growing run-ordered sample. A convergence loop that adds inc runs per
// round pays O(inc·lags) per Push plus O(lags) per report for the Ljung-Box
// check, instead of CheckIID's O(n·lags) full-sample re-scan; the runs test
// continues its scan from where the previous report stopped (re-dichotomizing
// only when the sample median actually moves), and the two-half KS check
// maintains the ascending-sorted first half across the moving half boundary
// so neither half is ever re-sorted.
//
// Reports are bit-identical to CheckIID for the runs and KS checks (same
// integer counts, same median, same evaluation points) and agree with it to
// floating-point reassociation error for Ljung-Box, whose autocorrelations
// are reconstructed from running moment sums instead of centered scans. The
// one-shot battery remains the reference oracle; see the equivalence tests
// and mbpta.Config.ReferenceIID.
//
// A battery built with NewStreamingIID additionally drops the retained
// series, bounding memory by the configured budget; see the streaming notes
// on each check for what that changes.
//
// The zero value is an empty battery ready for use. An IIDState is not safe
// for concurrent use.
//
//pubtac:fastpath iid
type IIDState struct {
	series []float64 // the run-ordered sample, appended on Push (nil in streaming mode)
	n      int       // total runs pushed

	// Streaming mode (NewStreamingIID): no retained series. The runs test
	// dichotomizes each pushed block at the then-current sketch median
	// instead of re-dichotomizing on median moves; the two-half KS check
	// compares the retained first min(n/2, firstCap) runs against the rest
	// through the sketch; Ljung-Box always uses the reconstructed
	// autocorrelations (no rescan fallback).
	stream    bool
	sketch    *QuantileSketch // full-population sketch, owned by the enclosing summary
	firstCap  int             // retention cap for the first-runs prefix
	firstRuns []float64       // first min(n, firstCap) runs, in run order

	// Ljung-Box accumulators over the shifted series y_i = x_i - shift
	// (shift is the first observed value; execution times sit far from
	// zero, so anchoring the moments near the data keeps the expanded sums
	// well conditioned).
	shift  float64
	sum    float64             // Σ y_i
	sumSq  float64             // Σ y_i²
	cross  [iidMaxLags]float64 // cross[k-1] = Σ_i y_i · y_{i+k}
	head   []float64           // first ≤ iidMaxLags shifted values
	window []float64           // last ≤ iidMaxLags shifted values, run order

	// Runs-test scan state w.r.t. the dichotomization threshold runsMed:
	// above/below counts and the sign-transition tally of the prefix
	// scanned so far. Valid while the sample median stays at runsMed; a
	// median move restarts the dichotomization (full mode only — the
	// streaming battery has no series to re-scan).
	runsMed   float64
	hasMed    bool
	scanned   int
	n1, n2    int
	runs      int
	lastSign  int8
	firstSign int8 // first non-tie sign (battery merges need the boundary)

	// firstSorted is the ascending-sorted view of the first sample of the
	// two-half KS check: series[:half] in full mode, firstRuns[:half] in
	// streaming mode. The half boundary advances on Push (full) or at
	// report time (streaming); the run-ordered chunk crossing it is sorted
	// and merged in, so the first half only ever grows and never re-sorts.
	firstSorted []float64
	half        int
}

// NewStreamingIID returns a bounded-memory battery: it retains no series,
// only the first min(n, firstCap) runs for the KS check. sketch must be the
// full-population sketch of the same pushed sample and must be updated with
// each block BEFORE the block is pushed here (the runs test dichotomizes at
// the sketch median covering the block).
func NewStreamingIID(sketch *QuantileSketch, firstCap int) *IIDState {
	if firstCap < 4 {
		firstCap = 4
	}
	return &IIDState{stream: true, sketch: sketch, firstCap: firstCap}
}

// N returns the number of runs pushed so far.
func (s *IIDState) N() int { return s.n }

// Push appends a block of runs, in run order, to the battery. Cost:
// O(len(block)·lags) for the autocorrelation cross-products plus the merge
// maintaining the sorted first half.
func (s *IIDState) Push(block []float64) {
	if len(block) == 0 {
		return
	}
	if s.n == 0 {
		s.shift = block[0]
	}
	for _, x := range block {
		y := x - s.shift
		w := len(s.window)
		for k := 1; k <= w; k++ {
			s.cross[k-1] += y * s.window[w-k]
		}
		if w == iidMaxLags {
			copy(s.window, s.window[1:])
			s.window[w-1] = y
		} else {
			s.window = append(s.window, y)
		}
		if len(s.head) < iidMaxLags {
			s.head = append(s.head, y)
		}
		s.sum += y
		s.sumSq += y * y
	}
	s.n += len(block)
	if s.stream {
		s.pushStream(block)
		return
	}
	s.series = append(s.series, block...)
	if h := s.n / 2; h > s.half {
		s.firstSorted = MergeSorted(s.firstSorted, SortedCopy(s.series[s.half:h]))
		s.half = h
	}
}

// pushStream is the streaming-mode tail of Push: first-runs retention and
// the per-block runs-test scan. The block is dichotomized at the current
// overall sketch median (the enclosing summary pushes the sketch first, so
// it covers this block). Past blocks are never re-dichotomized — unlike the
// retained-series battery, a median move cannot restart the scan; on the
// integer cycle grids of real campaigns the median pins within the first
// rounds and the counts then match the reference bit for bit.
func (s *IIDState) pushStream(block []float64) {
	if room := s.firstCap - len(s.firstRuns); room > 0 {
		take := room
		if take > len(block) {
			take = len(block)
		}
		s.firstRuns = append(s.firstRuns, block[:take]...)
	}
	med := s.sketch.Quantile(0.5)
	s.runsMed, s.hasMed = med, true
	for _, x := range block {
		var sign int8
		switch {
		case x > med:
			sign = 1
			s.n1++
		case x < med:
			sign = -1
			s.n2++
		default:
			continue
		}
		if s.lastSign == 0 {
			s.runs = 1
			s.firstSign = sign
		} else if sign != s.lastSign {
			s.runs++
		}
		s.lastSign = sign
	}
}

// ReportSorted computes the battery report for the sample pushed so far,
// given the caller's ascending-sorted view of that same sample (the
// convergence loop maintains one incrementally for the tail fit). The
// sorted view supplies the runs-test median in O(1); nothing re-sorts or
// re-scans the run-ordered prefix. ReportSorted mutates the runs-test scan
// state and is therefore not idempotent w.r.t. cost, only w.r.t. results.
// Streaming batteries have no full sorted view; use Report.
func (s *IIDState) ReportSorted(sorted []float64) IIDReport {
	if s.stream {
		panic("stats: IIDState.ReportSorted: streaming battery has no full sorted view")
	}
	if len(sorted) != s.n {
		panic("stats: IIDState.ReportSorted: sorted view does not match the pushed sample")
	}
	return IIDReport{
		Runs:      s.runsReport(sorted),
		LjungBox:  s.ljungBoxReport(),
		Identical: s.identicalReport(sorted),
	}
}

// Report is ReportSorted for callers without a maintained sorted view. In
// full mode it assembles one by merging the sorted first half with a sort of
// the second; in streaming mode it assembles the bounded-memory variants of
// the three checks.
func (s *IIDState) Report() IIDReport {
	if s.stream {
		return IIDReport{
			Runs:      runsResult(s.n1, s.n2, s.runs),
			LjungBox:  s.ljungBoxReport(),
			Identical: s.identicalStreamReport(),
		}
	}
	return s.ReportSorted(MergeSorted(s.firstSorted, SortedCopy(s.series[s.half:])))
}

// runsReport continues the Wald-Wolfowitz scan over the unscanned suffix.
// When the sample median moved since the last report the whole series is
// re-dichotomized; integer-valued execution times pin the median quickly,
// so steady-state rounds only scan their increment.
func (s *IIDState) runsReport(sorted []float64) TestResult {
	if s.n == 0 {
		return TestResult{Name: "runs", Statistic: 0, PValue: 1}
	}
	med := quantileSorted(sorted, 0.5)
	if !s.hasMed || med != s.runsMed {
		s.runsMed, s.hasMed = med, true
		s.scanned, s.n1, s.n2, s.runs, s.lastSign, s.firstSign = 0, 0, 0, 0, 0, 0
	}
	for _, x := range s.series[s.scanned:] {
		var sign int8
		switch {
		case x > med:
			sign = 1
			s.n1++
		case x < med:
			sign = -1
			s.n2++
		default:
			continue
		}
		if s.lastSign == 0 {
			s.runs = 1
			s.firstSign = sign
		} else if sign != s.lastSign {
			s.runs++
		}
		s.lastSign = sign
	}
	s.scanned = s.n
	return runsResult(s.n1, s.n2, s.runs)
}

// ljungBoxReport reconstructs the lag-k autocorrelations from the running
// sums in O(lags): with m the running mean of the shifted series,
//
//	Σ (y_i - m)(y_{i+k} - m) = cross_k - m·(2·Σy - head_k - tail_k) + (n-k)·m²
//
// because the i and i+k index ranges each miss k boundary terms (the last
// and first k values respectively).
func (s *IIDState) ljungBoxReport() TestResult {
	n := s.n
	lags := iidLags(n)
	if lags < 1 || n <= lags+1 {
		return TestResult{Name: "ljung-box", Statistic: 0, PValue: 1}
	}
	nf := float64(n)
	m := s.sum / nf
	den := s.sumSq - nf*m*m
	if den <= 0 {
		// Zero sample variance: every autocorrelation is defined as 0
		// (AutocorrelationsTo), in one-shot, incremental and streaming
		// modes alike.
		return ljungBoxFromAutocorr(make([]float64, lags), n)
	}
	// The expanded sums cancel at ~m²/σ̂² relative digits. The anchor is
	// the first value, so y_0 = 0 and σ̂² >= m²/n: the loss is bounded by
	// ~n·eps and the guard only fires beyond paper-scale samples — where
	// the exact one-shot scan over the retained series is the answer. The
	// streaming battery has no series to re-scan and accepts the
	// reconstruction unconditionally (documented approximation).
	if !s.stream && m*m > 1e6*den/nf {
		return LjungBox(s.series, lags)
	}
	rs := make([]float64, lags)
	var headK, tailK float64
	for k := 1; k <= lags; k++ {
		headK += s.head[k-1]
		tailK += s.window[len(s.window)-k]
		num := s.cross[k-1] - m*(2*s.sum-headK-tailK) + float64(n-k)*m*m
		rs[k-1] = num / den
	}
	return ljungBoxFromAutocorr(rs, n)
}

// identicalReport is the two-half KS check against the maintained first
// half; the second half's ECDF is derived from the full sorted view during
// the walk, so it never needs its own sorted copy.
func (s *IIDState) identicalReport(sorted []float64) TestResult {
	n := s.n
	if n < 4 {
		return TestResult{Name: "ks-2sample", Statistic: 0, PValue: 1}
	}
	d := ksFirstVsRest(sorted, s.firstSorted)
	n1, n2 := float64(s.half), float64(n-s.half)
	ne := n1 * n2 / (n1 + n2)
	lambda := (math.Sqrt(ne) + 0.12 + 0.11/math.Sqrt(ne)) * d
	return TestResult{Name: "ks-2sample", Statistic: d, PValue: KolmogorovSurvival(lambda)}
}

// identicalStreamReport is the streaming two-half KS check: the first sample
// is the retained first h = min(n/2, firstCap) runs, the second is the rest
// of the population read off the sketch by count subtraction. While n <=
// 2·firstCap and the sketch is exact the check is bit-identical to the
// retained-series one; past that the boundary freezes at firstCap (first
// firstCap runs vs. everything after) and bucket quantization bounds the
// value resolution by the sketch step.
func (s *IIDState) identicalStreamReport() TestResult {
	n := s.n
	if n < 4 {
		return TestResult{Name: "ks-2sample", Statistic: 0, PValue: 1}
	}
	h := n / 2
	if h > s.firstCap {
		h = s.firstCap
	}
	if h > s.half {
		s.firstSorted = MergeSorted(s.firstSorted, SortedCopy(s.firstRuns[s.half:h]))
		s.half = h
	}
	d := ksFirstVsSketch(s.sketch, s.firstSorted, n)
	n1, n2 := float64(s.half), float64(n-s.half)
	ne := n1 * n2 / (n1 + n2)
	lambda := (math.Sqrt(ne) + 0.12 + 0.11/math.Sqrt(ne)) * d
	return TestResult{Name: "ks-2sample", Statistic: d, PValue: KolmogorovSurvival(lambda)}
}

// ksFirstVsRest computes the two-sample KS statistic between the first-half
// sample (first, ascending) and the rest of the full sample (full ∖ first)
// in one walk over the full sorted view: at every distinct value x the
// rest's count is the full count minus the first-half count. The result is
// bit-identical to ECDF.KSStatistic on separately sorted halves — the same
// i/n1 and j/n2 divisions are compared at a superset of its evaluation
// points, and the extra points (past either half's last value) can only
// produce smaller differences.
func ksFirstVsRest(full, first []float64) float64 {
	n, n1 := len(full), len(first)
	n2 := n - n1
	if n1 == 0 || n2 == 0 {
		return 0
	}
	f1, f2 := float64(n1), float64(n2)
	var d float64
	i, j := 0, 0
	for j < n {
		x := full[j]
		for j < n && full[j] <= x {
			j++
		}
		for i < n1 && first[i] <= x {
			i++
		}
		diff := math.Abs(float64(i)/f1 - float64(j-i)/f2)
		if diff > d {
			d = diff
		}
	}
	return d
}

// ksFirstVsSketch is ksFirstVsRest with the full sorted view replaced by the
// population sketch: the walk visits each bucket value ascending and derives
// the rest's count by subtracting the first-sample count from the cumulative
// bucket count. With an exact sketch (step 0) the evaluation points and
// counts — hence the statistic — are bit-identical to ksFirstVsRest.
func ksFirstVsSketch(sk *QuantileSketch, first []float64, n int) float64 {
	n1 := len(first)
	n2 := n - n1
	if n1 == 0 || n2 == 0 {
		return 0
	}
	f1, f2 := float64(n1), float64(n2)
	var d float64
	i := 0
	var cum int64
	for b, x := range sk.vals {
		cum += sk.counts[b]
		for i < n1 && first[i] <= x {
			i++
		}
		diff := math.Abs(float64(i)/f1 - float64(int(cum)-i)/f2)
		if diff > d {
			d = diff
		}
	}
	return d
}

// mergeStream folds another streaming battery, representing the runs that
// FOLLOW this battery's runs, into s. Counts (runs test, first-runs
// retention) merge exactly; the Ljung-Box moments are re-anchored to s's
// shift and stitched across the boundary using the retained head/window
// values, so the merged statistic agrees with a single-stream battery to
// floating-point reassociation error. The runs-test threshold stays
// per-shard (each shard dichotomized at its own running median) — the
// documented approximation of the streaming battery.
func (s *IIDState) mergeStream(o *IIDState) {
	if o == nil || o.n == 0 {
		return
	}
	if !s.stream || !o.stream {
		panic("stats: IIDState.mergeStream: both batteries must be streaming")
	}
	if s.n == 0 {
		fcap := s.firstCap
		sk := s.sketch
		*s = *o
		s.sketch = sk // keep the enclosing summary's sketch
		s.firstCap = fcap
		s.firstRuns = append([]float64(nil), o.firstRuns...)
		if len(s.firstRuns) > s.firstCap {
			s.firstRuns = s.firstRuns[:s.firstCap]
		}
		s.firstSorted = append([]float64(nil), o.firstSorted...)
		if s.half > s.firstCap {
			// The adopted sorted prefix may overrun a stricter cap; rebuild
			// lazily from the truncated firstRuns at the next report.
			s.firstSorted = nil
			s.half = 0
		}
		s.head = append([]float64(nil), o.head...)
		s.window = append([]float64(nil), o.window...)
		return
	}
	d := o.shift - s.shift
	nR := o.n
	// Cross-products: boundary pairs (left value × right value k apart),
	// then the right battery's own pairs re-anchored from o.shift to
	// s.shift: Σ(z+d)(z'+d) = crossR + d·(S1+S2) + pairs·d², with S1/S2 the
	// in-pair first/second element sums recovered from the moment sum and
	// the retained head/window.
	for k := 1; k <= iidMaxLags; k++ {
		for t := 1; t <= k; t++ {
			li := len(s.window) - t
			ri := k - t
			if li < 0 || ri >= len(o.head) {
				continue
			}
			s.cross[k-1] += s.window[li] * (o.head[ri] + d)
		}
		if pairs := nR - k; pairs > 0 {
			var headK, tailK float64
			for t := 1; t <= k; t++ {
				headK += o.head[t-1]
				tailK += o.window[len(o.window)-t]
			}
			s.cross[k-1] += o.cross[k-1] + d*(2*o.sum-headK-tailK) + float64(pairs)*d*d
		}
	}
	s.sum += o.sum + float64(nR)*d
	s.sumSq += o.sumSq + 2*d*o.sum + float64(nR)*d*d
	for i := 0; len(s.head) < iidMaxLags && i < len(o.head); i++ {
		s.head = append(s.head, o.head[i]+d)
	}
	win := make([]float64, 0, iidMaxLags)
	if need := iidMaxLags - len(o.window); need > 0 {
		from := len(s.window) - need
		if from < 0 {
			from = 0
		}
		win = append(win, s.window[from:]...)
	}
	for _, z := range o.window {
		win = append(win, z+d)
	}
	s.window = win
	// Runs test: counts add; the boundary transition merges or splits runs
	// depending on the signs meeting there.
	if o.firstSign != 0 {
		if s.lastSign == 0 {
			s.runs = o.runs
			s.firstSign = o.firstSign
		} else if o.firstSign == s.lastSign {
			s.runs += o.runs - 1
		} else {
			s.runs += o.runs
		}
		s.lastSign = o.lastSign
	}
	s.n1 += o.n1
	s.n2 += o.n2
	s.hasMed = s.hasMed || o.hasMed
	// First-runs prefix: the right battery's earliest runs directly follow
	// the left's, so its retained prefix extends ours exactly.
	if room := s.firstCap - len(s.firstRuns); room > 0 {
		take := room
		if take > len(o.firstRuns) {
			take = len(o.firstRuns)
		}
		s.firstRuns = append(s.firstRuns, o.firstRuns[:take]...)
	}
	s.n += o.n
}

// capFirst tightens the streaming battery's first-runs retention cap (merges
// adopt the stricter budget). An already-built sorted prefix that overruns
// the new cap is dropped and rebuilt lazily from the truncated retention at
// the next report, keeping reports a pure function of (pushed sample, cap).
func (s *IIDState) capFirst(fcap int) {
	if fcap >= s.firstCap {
		return
	}
	s.firstCap = fcap
	if len(s.firstRuns) > fcap {
		s.firstRuns = s.firstRuns[:fcap]
	}
	if s.half > fcap {
		s.firstSorted = nil
		s.half = 0
	}
}

// Bytes returns the battery's retained memory in bytes (accounting for the
// streaming memory model; transient merge buffers excluded).
func (s *IIDState) Bytes() int {
	return (len(s.series)+len(s.firstRuns)+len(s.firstSorted)+len(s.head)+len(s.window))*8 + 256
}
