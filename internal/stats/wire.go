package stats

import (
	"encoding/binary"
	"fmt"
	"math"
)

// SummaryWireVersion is the version of the binary SampleSummary encoding
// below. The encoding ships shard summaries between coordinator and worker
// processes, so two builds interoperate exactly when they agree on this
// version; DecodeSummary rejects foreign versions outright (the shard is
// then recomputed locally — a correctness non-event, like a foreign-schema
// store entry reading as a miss). Any change to the encoded field sets or
// their order MUST bump this constant — TestSummaryWireFieldsPinned pins the
// field list of every encoded struct so an added field cannot slip through
// silently, mirroring core.EncodingVersion's discipline for config
// encodings.
//
// Version 2 appended a trailing 64-bit FNV-1a checksum over the whole frame:
// a corrupted byte anywhere — magic, header or payload — now fails decoding
// instead of silently flipping a float in the shard sample, which would break
// the coordinator/worker bit-identity invariant undetectably. Truncation and
// length forgery were already caught structurally; the checksum closes the
// in-place-corruption hole.
const SummaryWireVersion = 2

// wireMagic brands every encoded summary; a result-store JSON body or a
// truncated frame fails fast instead of decoding into garbage.
var wireMagic = [4]byte{'P', 'T', 'S', 'M'}

// Wire kind bytes, one per summary arm.
const (
	wireKindFull      = 1
	wireKindStreaming = 2
)

// EncodeSummary serializes a summary for transport. Both arms round-trip
// bit-identically:
//
//   - *FullSummary ships its run-ordered sample (plus the battery mode and
//     peak); the sorted view and battery state are rebuilt on decode, which
//     is exact because full-summary state is a pure, chunking-invariant
//     function of the pushed sequence.
//   - *StreamingSummary ships its complete state — reservoir, sketch and
//     the streaming battery's accumulators — verbatim, because streaming
//     battery state is NOT chunking-invariant (each block dichotomizes at
//     the then-current sketch median) and can only be reproduced by
//     copying, never by replay.
//
// The encoding is little-endian with IEEE-754 bit patterns for floats:
// bit-exact and locale-free, like core.AppendCanonical.
func EncodeSummary(s SampleSummary) ([]byte, error) {
	w := newWireWriter()
	switch v := s.(type) {
	case *FullSummary:
		w.byte(wireKindFull)
		w.bool(v.iid != nil)
		w.int(v.peak)
		w.floats(v.sample)
	case *StreamingSummary:
		w.byte(wireKindStreaming)
		w.int(v.budget)
		w.int(v.n)
		w.float(v.min)
		w.float(v.max)
		w.int(v.peak)
		w.floats(v.tailSorted)
		encodeSketch(w, v.sketch)
		encodeStreamIID(w, v.iid)
	default:
		return nil, fmt.Errorf("stats: cannot encode summary type %T", s)
	}
	w.u64(wireSum(w.buf))
	return w.buf, nil
}

// wireSum is the frame checksum: 64-bit FNV-1a over every preceding byte.
// It is an integrity check against accidental corruption in transit, not an
// authenticity measure — transport security is the deployment's job.
func wireSum(b []byte) uint64 {
	const (
		offset64 = 0xcbf29ce484222325
		prime64  = 0x100000001b3
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

// DecodeSummary reverses EncodeSummary. The decoded summary is fully usable:
// pushing further runs, merging and reporting behave exactly as on the
// original.
func DecodeSummary(b []byte) (SampleSummary, error) {
	r := &wireReader{buf: b}
	var magic [4]byte
	r.bytes(magic[:])
	if r.err == nil && magic != wireMagic {
		return nil, fmt.Errorf("stats: not an encoded summary (bad magic %q)", magic[:])
	}
	if v := r.int(); r.err == nil && v != SummaryWireVersion {
		return nil, fmt.Errorf("stats: summary wire version %d, this build speaks %d", v, SummaryWireVersion)
	}
	// Verify the trailing checksum before trusting a single payload byte,
	// then hide it from the reader so the trailing-bytes check still holds.
	if r.err == nil {
		if len(b) < r.off+8 {
			return nil, fmt.Errorf("stats: decoding summary: frame too short for checksum")
		}
		body, tail := b[:len(b)-8], b[len(b)-8:]
		if got, want := binary.LittleEndian.Uint64(tail), wireSum(body); got != want {
			return nil, fmt.Errorf("stats: summary frame checksum mismatch (corrupt wire bytes)")
		}
		r.buf = body
	}
	kind := r.byte()
	var sum SampleSummary
	switch kind {
	case wireKindFull:
		inc := r.bool()
		peak := r.int()
		sample := r.floats()
		if r.err != nil {
			break
		}
		fs := NewFullSummary(inc)
		fs.Push(sample)
		fs.peak = peak
		sum = fs
	case wireKindStreaming:
		ss := &StreamingSummary{
			budget: r.int(),
			n:      r.int(),
			min:    r.float(),
			max:    r.float(),
			peak:   r.int(),
		}
		ss.tailSorted = r.floats()
		ss.sketch = decodeSketch(r)
		ss.iid = decodeStreamIID(r, ss.sketch)
		if r.err != nil {
			break
		}
		sum = ss
	default:
		if r.err == nil {
			return nil, fmt.Errorf("stats: unknown summary wire kind %d", kind)
		}
	}
	if r.err != nil {
		return nil, fmt.Errorf("stats: decoding summary: %w", r.err)
	}
	if len(r.buf) != r.off {
		return nil, fmt.Errorf("stats: decoding summary: %d trailing bytes", len(r.buf)-r.off)
	}
	return sum, nil
}

func encodeSketch(w *wireWriter, sk *QuantileSketch) {
	w.int(sk.budget)
	w.float(sk.step)
	w.int64(sk.n)
	w.floats(sk.vals)
	w.int64s(sk.counts)
}

func decodeSketch(r *wireReader) *QuantileSketch {
	return &QuantileSketch{
		budget: r.int(),
		step:   r.float(),
		n:      r.int64(),
		vals:   r.floats(),
		counts: r.int64s(),
	}
}

// encodeStreamIID writes the streaming battery state. Full-mode-only fields
// (series, scanned) are zero on a streaming battery and are not shipped.
func encodeStreamIID(w *wireWriter, st *IIDState) {
	w.int(st.n)
	w.int(st.firstCap)
	w.floats(st.firstRuns)
	w.float(st.shift)
	w.float(st.sum)
	w.float(st.sumSq)
	for _, c := range st.cross {
		w.float(c)
	}
	w.floats(st.head)
	w.floats(st.window)
	w.float(st.runsMed)
	w.bool(st.hasMed)
	w.int(st.n1)
	w.int(st.n2)
	w.int(st.runs)
	w.byte(byte(st.lastSign))
	w.byte(byte(st.firstSign))
	w.floats(st.firstSorted)
	w.int(st.half)
}

// decodeStreamIID rebuilds the battery around the enclosing summary's sketch
// (the battery never owns its sketch; see NewStreamingIID).
func decodeStreamIID(r *wireReader, sketch *QuantileSketch) *IIDState {
	st := &IIDState{stream: true, sketch: sketch}
	st.n = r.int()
	st.firstCap = r.int()
	st.firstRuns = r.floats()
	st.shift = r.float()
	st.sum = r.float()
	st.sumSq = r.float()
	for k := range st.cross {
		st.cross[k] = r.float()
	}
	st.head = r.floats()
	st.window = r.floats()
	st.runsMed = r.float()
	st.hasMed = r.bool()
	st.n1 = r.int()
	st.n2 = r.int()
	st.runs = r.int()
	st.lastSign = int8(r.byte())
	st.firstSign = int8(r.byte())
	st.firstSorted = r.floats()
	st.half = r.int()
	return st
}

// wireWriter appends little-endian primitives to a growing buffer.
type wireWriter struct {
	buf []byte
}

func newWireWriter() *wireWriter {
	w := &wireWriter{buf: make([]byte, 0, 256)}
	w.buf = append(w.buf, wireMagic[:]...)
	w.int(SummaryWireVersion)
	return w
}

func (w *wireWriter) byte(b byte) { w.buf = append(w.buf, b) }

func (w *wireWriter) bool(v bool) {
	if v {
		w.byte(1)
	} else {
		w.byte(0)
	}
}

func (w *wireWriter) u64(v uint64)    { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *wireWriter) int(v int)       { w.u64(uint64(int64(v))) }
func (w *wireWriter) int64(v int64)   { w.u64(uint64(v)) }
func (w *wireWriter) float(v float64) { w.u64(math.Float64bits(v)) }

func (w *wireWriter) floats(vs []float64) {
	w.int(len(vs))
	for _, v := range vs {
		w.float(v)
	}
}

func (w *wireWriter) int64s(vs []int64) {
	w.int(len(vs))
	for _, v := range vs {
		w.int64(v)
	}
}

// wireReader consumes little-endian primitives; the first failure latches in
// err and every subsequent read returns zero values, so decode paths check
// once at the end.
type wireReader struct {
	buf []byte
	off int
	err error
}

// maxWireSlice bounds decoded slice lengths against corrupt or hostile
// length prefixes: allocation stays proportional to the input, never to a
// forged 2^60 count.
const maxWireSlice = 1 << 30

func (r *wireReader) bytes(dst []byte) {
	if r.err != nil {
		return
	}
	if len(r.buf)-r.off < len(dst) {
		r.err = fmt.Errorf("truncated at offset %d", r.off)
		return
	}
	copy(dst, r.buf[r.off:])
	r.off += len(dst)
}

func (r *wireReader) byte() byte {
	var b [1]byte
	r.bytes(b[:])
	return b[0]
}

func (r *wireReader) bool() bool { return r.byte() != 0 }

func (r *wireReader) u64() uint64 {
	var b [8]byte
	r.bytes(b[:])
	return binary.LittleEndian.Uint64(b[:])
}

func (r *wireReader) int() int       { return int(int64(r.u64())) }
func (r *wireReader) int64() int64   { return int64(r.u64()) }
func (r *wireReader) float() float64 { return math.Float64frombits(r.u64()) }

func (r *wireReader) sliceLen() int {
	n := r.int()
	if r.err == nil && (n < 0 || n > maxWireSlice || n*8 > len(r.buf)-r.off) {
		r.err = fmt.Errorf("implausible slice length %d at offset %d", n, r.off)
	}
	if r.err != nil {
		return 0
	}
	return n
}

func (r *wireReader) floats() []float64 {
	n := r.sliceLen()
	if n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.float()
	}
	return out
}

func (r *wireReader) int64s() []int64 {
	n := r.sliceLen()
	if n == 0 {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = r.int64()
	}
	return out
}
