package stats

import (
	"math"
	"testing"

	"pubtac/internal/rng"
)

// sameResult reports bit-identity of two test results.
func sameResult(a, b TestResult) bool {
	return a.Name == b.Name && a.Statistic == b.Statistic && a.PValue == b.PValue
}

// closeResult reports agreement up to floating-point reassociation error.
func closeResult(a, b TestResult, tol float64) bool {
	relOK := func(x, y float64) bool {
		scale := math.Max(1, math.Max(math.Abs(x), math.Abs(y)))
		return math.Abs(x-y) <= tol*scale
	}
	return a.Name == b.Name && relOK(a.Statistic, b.Statistic) && relOK(a.PValue, b.PValue)
}

// trivialPass asserts a degenerate-input result: PValue 1, no panic.
func trivialPass(t *testing.T, label string, r TestResult) {
	t.Helper()
	if r.PValue != 1 {
		t.Errorf("%s: PValue = %v, want the degenerate pass 1 (%+v)", label, r.PValue, r)
	}
}

// TestBatteryDegenerateInputs covers the inputs that used to panic (empty
// sample: Median -> Quantile panic) or could misbehave (all values tied
// with the median): every check must return the degenerate pass, for both
// the one-shot battery and the incremental accumulator.
func TestBatteryDegenerateInputs(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
	}{
		{"nil", nil},
		{"empty", []float64{}},
		{"single", []float64{5}},
		{"pair", []float64{5, 7}},
		{"len3", []float64{3, 1, 2}},
		{"constant", func() []float64 {
			xs := make([]float64, 100)
			for i := range xs {
				xs[i] = 7
			}
			return xs
		}()},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rep := CheckIID(c.xs) // must not panic
			if len(c.xs) < 4 {
				trivialPass(t, "one-shot runs", rep.Runs)
				trivialPass(t, "one-shot ljung-box", rep.LjungBox)
				trivialPass(t, "one-shot identical", rep.Identical)
			}
			if c.name == "constant" {
				// Ties with the median discard every value: trivial pass
				// across the battery, never a panic or a spurious reject.
				trivialPass(t, "one-shot runs", rep.Runs)
				trivialPass(t, "one-shot ljung-box", rep.LjungBox)
				trivialPass(t, "one-shot identical", rep.Identical)
			}
			if !rep.Passed(0.05) {
				t.Errorf("degenerate battery rejected: %+v", rep)
			}

			st := new(IIDState)
			st.Push(c.xs)
			inc := st.Report() // must not panic either
			if !sameResult(inc.Runs, rep.Runs) || !sameResult(inc.Identical, rep.Identical) {
				t.Errorf("incremental degenerate report diverges: %+v vs %+v", inc, rep)
			}
			if !closeResult(inc.LjungBox, rep.LjungBox, 1e-9) {
				t.Errorf("incremental ljung-box diverges: %+v vs %+v", inc.LjungBox, rep.LjungBox)
			}
		})
	}
}

func TestRunsTestEmptyDoesNotPanic(t *testing.T) {
	trivialPass(t, "RunsTest(nil)", RunsTest(nil))
	trivialPass(t, "RunsTest(empty)", RunsTest([]float64{}))
}

func TestRunsTestMedianMatchesRunsTest(t *testing.T) {
	gen := rng.New(5)
	for _, n := range []int{2, 3, 17, 500} {
		xs := make([]float64, n)
		for i := range xs {
			// Coarse grid forces ties with the median.
			xs[i] = math.Floor(gen.Float64() * 8)
		}
		if a, b := RunsTest(xs), RunsTestMedian(xs, Median(xs)); !sameResult(a, b) {
			t.Fatalf("n=%d: RunsTest %+v != RunsTestMedian %+v", n, a, b)
		}
	}
}

func TestAutocorrelationsToMatchesAutocorrelation(t *testing.T) {
	gen := rng.New(8)
	xs := make([]float64, 300)
	for i := range xs {
		xs[i] = gen.Float64() * 50
	}
	rs := AutocorrelationsTo(xs, 25)
	for k := 1; k <= 25; k++ {
		if want := Autocorrelation(xs, k); rs[k-1] != want {
			t.Fatalf("lag %d: %v != Autocorrelation's %v", k, rs[k-1], want)
		}
	}
	// Lags beyond the series length are zero, as in Autocorrelation.
	rs = AutocorrelationsTo(xs[:4], 10)
	for k := 1; k <= 10; k++ {
		if want := Autocorrelation(xs[:4], k); rs[k-1] != want {
			t.Fatalf("short series lag %d: %v != %v", k, rs[k-1], want)
		}
	}
	if AutocorrelationsTo(xs, 0) != nil {
		t.Fatal("maxLag 0 should return nil")
	}
	if rs := AutocorrelationsTo(nil, 5); len(rs) != 5 {
		t.Fatalf("empty series: len %d, want 5 zeros", len(rs))
	}
}

// TestIIDStateMatchesCheckIID is the equivalence oracle of the incremental
// battery: pushed in collectBlock-sized (and deliberately ragged) chunks,
// the accumulator must reproduce the one-shot CheckIID report — runs test
// and two-half KS bit-identically, Ljung-Box to reassociation error — on
// randomized samples of both continuous and integer-valued (tie-heavy,
// moving-median) shapes.
func TestIIDStateMatchesCheckIID(t *testing.T) {
	const collectBlock = 64 // mbpta's work-stealing block: 8 × proc.BatchK
	gen := rng.New(4242)
	shapes := []struct {
		name string
		draw func() float64
	}{
		{"continuous", func() float64 { return gen.Float64() * 1000 }},
		{"integer", func() float64 { return math.Floor(gen.Float64()*40) + 100 }},
		{"ar1-ish", func() float64 { return math.Floor(gen.Float64()*8) * math.Floor(gen.Float64()*8) }},
	}
	sizes := []int{0, 1, 3, 4, 7, 50, 257, 1000, 3000}
	for _, shape := range shapes {
		for _, n := range sizes {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = shape.draw()
			}
			want := CheckIID(xs)

			for _, chunk := range []int{collectBlock, 1, 7, n + 1} {
				st := new(IIDState)
				for lo := 0; lo < n; lo += chunk {
					hi := lo + chunk
					if hi > n {
						hi = n
					}
					st.Push(xs[lo:hi])
					// Interleaved reports exercise the runs-test rescan
					// across median moves; results must not depend on how
					// often the battery was consulted.
					if lo%(3*chunk) == 0 {
						st.Report()
					}
				}
				got := st.Report()
				label := shape.name
				if !sameResult(got.Runs, want.Runs) {
					t.Fatalf("%s n=%d chunk=%d: runs %+v != one-shot %+v", label, n, chunk, got.Runs, want.Runs)
				}
				if !sameResult(got.Identical, want.Identical) {
					t.Fatalf("%s n=%d chunk=%d: identical %+v != one-shot %+v", label, n, chunk, got.Identical, want.Identical)
				}
				if !closeResult(got.LjungBox, want.LjungBox, 1e-8) {
					t.Fatalf("%s n=%d chunk=%d: ljung-box %+v != one-shot %+v", label, n, chunk, got.LjungBox, want.LjungBox)
				}
				if st.N() != n {
					t.Fatalf("N = %d, want %d", st.N(), n)
				}
			}
		}
	}
}

// TestIIDStateOutlierAnchor: the Ljung-Box moments are anchored to the
// first pushed value; when that value is a gross outlier the expanded sums
// cancel hardest (the worst case is bounded by ~n·eps because the anchor
// itself inflates the variance). The report must still track the one-shot
// reference within the documented tolerance.
func TestIIDStateOutlierAnchor(t *testing.T) {
	gen := rng.New(7)
	xs := make([]float64, 1000)
	xs[0] = 1e9
	for i := 1; i < len(xs); i++ {
		xs[i] = math.Floor(gen.Float64() * 4)
	}
	want := CheckIID(xs)
	st := new(IIDState)
	st.Push(xs)
	got := st.Report()
	if !sameResult(got.Runs, want.Runs) || !sameResult(got.Identical, want.Identical) {
		t.Fatalf("outlier anchor diverged: %+v vs %+v", got, want)
	}
	if !closeResult(got.LjungBox, want.LjungBox, 1e-8) {
		t.Fatalf("outlier anchor ljung-box diverged: %+v vs %+v", got.LjungBox, want.LjungBox)
	}
}

// TestIIDStateChunkingInvariance: two accumulators fed the same series
// through different chunkings produce bit-identical reports (the sums are
// accumulated in element order regardless of block boundaries).
func TestIIDStateChunkingInvariance(t *testing.T) {
	gen := rng.New(99)
	xs := make([]float64, 2048)
	for i := range xs {
		xs[i] = gen.Float64() * 100
	}
	a, b := new(IIDState), new(IIDState)
	a.Push(xs)
	for lo := 0; lo < len(xs); lo += 129 {
		hi := lo + 129
		if hi > len(xs) {
			hi = len(xs)
		}
		b.Push(xs[lo:hi])
	}
	ra, rb := a.Report(), b.Report()
	if !sameResult(ra.Runs, rb.Runs) || !sameResult(ra.Identical, rb.Identical) ||
		!sameResult(ra.LjungBox, rb.LjungBox) {
		t.Fatalf("chunking changed the report: %+v vs %+v", ra, rb)
	}
}

// TestIIDStateReportSortedMatchesReport: the caller-maintained sorted view
// (grown by sort-increment-and-merge, as the convergence loop does) yields
// the same report as the state's own assembly.
func TestIIDStateReportSortedMatchesReport(t *testing.T) {
	gen := rng.New(31)
	st := new(IIDState)
	var sorted []float64
	for round := 0; round < 12; round++ {
		blk := make([]float64, 100)
		for i := range blk {
			blk[i] = math.Floor(gen.Float64() * 300)
		}
		st.Push(blk)
		sorted = MergeSorted(sorted, SortedCopy(blk))
		got := st.ReportSorted(sorted)
		want := st.Report()
		if !sameResult(got.Runs, want.Runs) || !sameResult(got.Identical, want.Identical) ||
			!sameResult(got.LjungBox, want.LjungBox) {
			t.Fatalf("round %d: ReportSorted %+v != Report %+v", round, got, want)
		}
	}
}

func TestIIDStateReportSortedRejectsStaleView(t *testing.T) {
	st := new(IIDState)
	st.Push([]float64{1, 2, 3})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on a sorted view of the wrong length")
		}
	}()
	st.ReportSorted([]float64{1, 2})
}

func TestIIDStatePassesOnIIDSample(t *testing.T) {
	gen := rng.New(123)
	st := new(IIDState)
	blk := make([]float64, 500)
	for round := 0; round < 8; round++ {
		for i := range blk {
			blk[i] = gen.Float64() * 100
		}
		st.Push(blk)
	}
	if rep := st.Report(); !rep.Passed(0.01) {
		t.Fatalf("incremental battery rejected an i.i.d. sample: %+v", rep)
	}
}

func TestCheckIIDSortedMatchesCheckIID(t *testing.T) {
	gen := rng.New(55)
	for _, n := range []int{0, 3, 10, 1000} {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = math.Floor(gen.Float64() * 64)
		}
		a, b := CheckIID(xs), CheckIIDSorted(xs, SortedCopy(xs))
		if !sameResult(a.Runs, b.Runs) || !sameResult(a.LjungBox, b.LjungBox) ||
			!sameResult(a.Identical, b.Identical) {
			t.Fatalf("n=%d: CheckIIDSorted %+v != CheckIID %+v", n, b, a)
		}
	}
}
