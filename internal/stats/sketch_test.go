package stats

import (
	"math"
	"sort"
	"testing"

	"pubtac/internal/rng"
)

// TestSketchExactMode: while the distinct-value count fits the budget the
// sketch is a plain frequency table — quantiles reproduce QuantileSorted bit
// for bit and rank counts are exact.
func TestSketchExactMode(t *testing.T) {
	gen := rng.New(5)
	sk := NewQuantileSketch(256)
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = math.Floor(gen.Float64()*200) + 40000
	}
	for lo := 0; lo < len(xs); lo += 700 {
		hi := lo + 700
		if hi > len(xs) {
			hi = len(xs)
		}
		sk.Push(xs[lo:hi])
	}
	if sk.Step() != 0 {
		t.Fatalf("200 distinct values under budget 256 should stay exact, step=%v", sk.Step())
	}
	sorted := SortedCopy(xs)
	for _, q := range []float64{0, 0.001, 0.1, 0.25, 0.5, 0.75, 0.9, 0.999, 1} {
		if got, want := sk.Quantile(q), QuantileSorted(sorted, q); got != want {
			t.Fatalf("Quantile(%v) = %v, want %v", q, got, want)
		}
	}
	for _, x := range []float64{39999, 40000, 40100.5, 40199, 50000} {
		want := sort.SearchFloat64s(sorted, x+0.5) // integer grid: count <= x
		if got := sk.CountLE(x); got != want {
			t.Fatalf("CountLE(%v) = %d, want %d", x, got, want)
		}
	}
}

// TestSketchCoarseningErrorBound: past the budget the sketch coarsens to the
// canonical power-of-two step, which stays under 2·span/(budget-1), and
// every quantile lands within one step of the exact value.
func TestSketchCoarseningErrorBound(t *testing.T) {
	gen := rng.New(9)
	const budget = 128
	sk := NewQuantileSketch(budget)
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = gen.Float64() * 1e6 // continuous: far more distinct values than buckets
	}
	for lo := 0; lo < len(xs); lo += 4096 {
		hi := lo + 4096
		if hi > len(xs) {
			hi = len(xs)
		}
		sk.Push(xs[lo:hi])
	}
	sorted := SortedCopy(xs)
	span := sorted[len(sorted)-1] - sorted[0]
	step := sk.Step()
	if step <= 0 {
		t.Fatal("sketch should have coarsened")
	}
	if bound := 2 * span / float64(budget-1); step >= bound {
		t.Fatalf("step %v >= documented bound %v", step, bound)
	}
	if sk.Buckets() > budget {
		t.Fatalf("bucket count %d exceeds budget %d", sk.Buckets(), budget)
	}
	for _, q := range []float64{0, 0.01, 0.25, 0.5, 0.75, 0.99, 1} {
		got, want := sk.Quantile(q), QuantileSorted(sorted, q)
		if math.Abs(got-want) > step {
			t.Fatalf("Quantile(%v) = %v, exact %v: off by %v > step %v", q, got, want, got-want, step)
		}
	}
}

// TestSketchMergeAssociative: merging is bit-deterministic and associative —
// the canonical step rule makes ((A·B)·C) and (A·(B·C)) identical bucket for
// bucket, and both match a sketch fed the concatenated stream.
func TestSketchMergeAssociative(t *testing.T) {
	gen := rng.New(13)
	const budget = 64
	mk := func(n int, scale, base float64) (*QuantileSketch, []float64) {
		sk := NewQuantileSketch(budget)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = gen.Float64()*scale + base
		}
		sk.Push(xs)
		return sk, xs
	}
	a, xa := mk(3000, 1e5, 0)
	b, xb := mk(2000, 1e3, 5e5) // disjoint range: merge must rebin
	c, xc := mk(1000, 1e6, -2e5)

	left := a.Clone()
	left.Merge(b.Clone())
	left.Merge(c.Clone())
	bc := b.Clone()
	bc.Merge(c.Clone())
	right := a.Clone()
	right.Merge(bc)
	all := NewQuantileSketch(budget)
	all.Push(xa)
	all.Push(xb)
	all.Push(xc)

	for _, pair := range []struct {
		name string
		x, y *QuantileSketch
	}{{"assoc", left, right}, {"merge-vs-push", left, all}} {
		x, y := pair.x, pair.y
		if x.N() != y.N() || x.Step() != y.Step() || x.Buckets() != y.Buckets() {
			t.Fatalf("%s: shape (%d,%v,%d) != (%d,%v,%d)",
				pair.name, x.N(), x.Step(), x.Buckets(), y.N(), y.Step(), y.Buckets())
		}
		for i := range x.vals {
			if x.vals[i] != y.vals[i] || x.counts[i] != y.counts[i] {
				t.Fatalf("%s: bucket %d: (%v,%d) != (%v,%d)",
					pair.name, i, x.vals[i], x.counts[i], y.vals[i], y.counts[i])
			}
		}
	}
}

// TestSketchDegenerate covers empty and constant sketches.
func TestSketchDegenerate(t *testing.T) {
	sk := NewQuantileSketch(64)
	if sk.N() != 0 || sk.Bytes() <= 0 {
		t.Fatalf("empty sketch: n=%d bytes=%d", sk.N(), sk.Bytes())
	}
	empty := NewQuantileSketch(64)
	sk.Merge(empty) // empty·empty must be a no-op, not a panic
	sk.Push([]float64{7, 7, 7, 7})
	if sk.Quantile(0) != 7 || sk.Quantile(0.5) != 7 || sk.Quantile(1) != 7 {
		t.Fatalf("constant sketch quantiles broken")
	}
	if sk.CountLE(6.9) != 0 || sk.CountLE(7) != 4 {
		t.Fatalf("constant sketch counts broken")
	}
	empty.Merge(sk) // merging into empty adopts
	if empty.N() != 4 || empty.Quantile(0.5) != 7 {
		t.Fatalf("merge into empty: n=%d", empty.N())
	}
}
