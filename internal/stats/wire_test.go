package stats

import (
	"bytes"
	"reflect"
	"sort"
	"testing"
)

// newSummary builds one summary per arm so every wire test covers both.
func wireArms() map[string]func() SampleSummary {
	return map[string]func() SampleSummary{
		"full":           func() SampleSummary { return NewFullSummary(false) },
		"full/increment": func() SampleSummary { return NewFullSummary(true) },
		"streaming":      func() SampleSummary { return NewStreamingSummary(256) },
	}
}

// sameSummary asserts that two summaries are observationally identical:
// every view query, the battery report, and — the strongest check — the wire
// encoding itself, byte for byte.
func sameSummary(t *testing.T, label string, a, b SampleSummary) {
	t.Helper()
	sameView(t, label, a, b)
	if a.IID() != b.IID() {
		t.Fatalf("%s: IID report %+v != %+v", label, a.IID(), b.IID())
	}
	ea, errA := EncodeSummary(a)
	eb, errB := EncodeSummary(b)
	if errA != nil || errB != nil {
		t.Fatalf("%s: re-encode errors %v / %v", label, errA, errB)
	}
	if !bytes.Equal(ea, eb) {
		t.Fatalf("%s: re-encoded bytes differ (%d vs %d bytes)", label, len(ea), len(eb))
	}
}

// The fundamental wire contract: decode(encode(s)) is observationally
// bit-identical to s, for both summary arms, and the decoded summary stays
// live — pushing the same continuation into both sides keeps them equal.
func TestSummaryWireRoundTrip(t *testing.T) {
	xs := gapSample(3, 4000)
	head, cont := xs[:2500], xs[2500:]
	for name, mk := range wireArms() {
		t.Run(name, func(t *testing.T) {
			orig := mk()
			pushBlocks(orig, head, 64)
			enc, err := EncodeSummary(orig)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			dec, err := DecodeSummary(enc)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if orig.PeakBytes() != dec.PeakBytes() {
				t.Fatalf("PeakBytes %d != %d", orig.PeakBytes(), dec.PeakBytes())
			}
			sameSummary(t, "decoded", orig, dec)
			// Decoded summaries are live, not read-only snapshots.
			pushBlocks(orig, cont, 64)
			pushBlocks(dec, cont, 64)
			sameSummary(t, "decoded+pushed", orig, dec)
		})
	}
}

// Merging decoded shard summaries in index order must reproduce the
// single-summary result, and parenthesization must not matter:
// (A+B)+C == A+(B+C) == one summary over the concatenation.
func TestSummaryWireMergeAssociativity(t *testing.T) {
	xs := gapSample(9, 6000)
	cuts := []int{0, 2100, 4200, len(xs)}
	for name, mk := range wireArms() {
		t.Run(name, func(t *testing.T) {
			whole := mk()
			pushBlocks(whole, xs, 128)

			// Three shard summaries, each round-tripped through the wire.
			var parts []SampleSummary
			for i := 0; i+1 < len(cuts); i++ {
				p := mk()
				pushBlocks(p, xs[cuts[i]:cuts[i+1]], 128)
				enc, err := EncodeSummary(p)
				if err != nil {
					t.Fatalf("encode part %d: %v", i, err)
				}
				dec, err := DecodeSummary(enc)
				if err != nil {
					t.Fatalf("decode part %d: %v", i, err)
				}
				parts = append(parts, dec)
			}

			left := parts[0]
			if err := left.Merge(parts[1]); err != nil {
				t.Fatalf("left merge AB: %v", err)
			}
			if err := left.Merge(parts[2]); err != nil {
				t.Fatalf("left merge (AB)C: %v", err)
			}
			sameView(t, "(A+B)+C vs whole", left, whole)
			if name != "streaming" {
				// The full battery is chunking-invariant, so merged shards
				// reproduce the whole-sample report exactly. The streaming
				// battery's per-shard dichotomization is the documented
				// approximation — the reason campaign sharding ships raw
				// full-mode samples instead of merging streaming batteries.
				if left.IID() != whole.IID() {
					t.Fatalf("(A+B)+C IID %+v != whole %+v", left.IID(), whole.IID())
				}
			}
		})
	}
}

// Foreign versions, foreign magic, unknown kinds, truncation and trailing
// garbage must all be rejected — never misdecoded.
func TestSummaryWireRejectsForeign(t *testing.T) {
	sum := NewFullSummary(true)
	sum.Push(gridSample(1, 500))
	enc, err := EncodeSummary(sum)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}

	mutants := map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("NOPE"), enc[4:]...),
		"foreign version": func() []byte {
			b := bytes.Clone(enc)
			b[4] = byte(SummaryWireVersion + 1)
			return b
		}(),
		"unknown kind": func() []byte {
			b := bytes.Clone(enc)
			b[12] = 0x7f
			return b
		}(),
		"truncated": enc[:len(enc)-5],
		"trailing":  append(bytes.Clone(enc), 0),
		"forged length": func() []byte {
			// Sample-length word pointing far past the buffer.
			b := bytes.Clone(enc[:22])
			return append(b, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f)
		}(),
	}
	for name, b := range mutants {
		if _, err := DecodeSummary(b); err == nil {
			t.Errorf("%s: decode accepted corrupt input", name)
		}
	}
}

// Every single-byte in-place corruption must be rejected, wherever it lands:
// magic and header fail structurally, and a flipped payload byte — which
// before the v2 checksum decoded silently into a wrong float, breaking
// coordinator/worker bit-identity undetectably — fails the frame checksum.
// This is the property the fault injector's Corrupt action leans on: a
// corrupted shard reply becomes a retryable decode error, never a wrong
// result.
func TestSummaryWireDetectsCorruption(t *testing.T) {
	for name, mk := range wireArms() {
		t.Run(name, func(t *testing.T) {
			sum := mk()
			sum.Push(gridSample(3, 400))
			enc, err := EncodeSummary(sum)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			for i := range enc {
				mut := bytes.Clone(enc)
				mut[i] ^= 0x20
				if _, err := DecodeSummary(mut); err == nil {
					t.Fatalf("flipping byte %d of %d went undetected", i, len(enc))
				}
			}
		})
	}
}

// The wire encoding serializes unexported state field by field, so any field
// added to these structs silently vanishes from the wire unless this list —
// and SummaryWireVersion — is updated. Same discipline as
// TestCanonicalEncodingFieldsPinned for core.AppendCanonical.
func TestSummaryWireFieldsPinned(t *testing.T) {
	pinned := map[reflect.Type][]string{
		reflect.TypeOf(FullSummary{}):      {"sample", "sorted", "iid", "peak"},
		reflect.TypeOf(StreamingSummary{}): {"budget", "n", "min", "max", "tailSorted", "sketch", "iid", "peak"},
		reflect.TypeOf(QuantileSketch{}):   {"budget", "step", "vals", "counts", "n"},
		reflect.TypeOf(IIDState{}): {
			"series", "n", "stream", "sketch",
			"firstCap", "firstRuns",
			"shift", "sum", "sumSq", "cross",
			"head", "window",
			"runsMed", "hasMed", "scanned", "n1", "n2", "runs", "lastSign", "firstSign",
			"firstSorted", "half",
		},
	}
	for typ, want := range pinned {
		var got []string
		for i := 0; i < typ.NumField(); i++ {
			got = append(got, typ.Field(i).Name)
		}
		sort.Strings(got)
		wantSorted := append([]string(nil), want...)
		sort.Strings(wantSorted)
		if !reflect.DeepEqual(got, wantSorted) {
			t.Errorf("%s fields changed:\n  got  %v\n  want %v\nupdate the wire encoding (and bump SummaryWireVersion) before updating this list",
				typ.Name(), got, wantSorted)
		}
	}
}
