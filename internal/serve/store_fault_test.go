package serve_test

import (
	"errors"
	"io"
	"os"
	"strings"
	"testing"

	"pubtac/internal/fault"
	"pubtac/internal/serve"
)

// storeHook adapts the fault injector to the store's write hook: every disk
// write is a new occurrence of one "store" identity, so a Spec with a 1000
// per-mille rate faults every write.
func storeHook(inj *fault.Injector) func(io.Writer) io.Writer {
	id := fault.Identify([]byte("store"))
	return func(w io.Writer) io.Writer { return inj.Writer(id, w) }
}

// A full volume (injected ENOSPC, both immediate and mid-entry) fails Put
// with a counted error but never corrupts the disk tier: existing entries
// survive bit for bit, no temp litter remains, and the unpersisted entry
// still serves from memory until restart degrades it to a plain miss.
func TestStorePutDegradesOnWriteFailure(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec fault.Spec
	}{
		{"enospc-immediate", fault.Spec{Drop: 1000}},
		{"enospc-mid-entry", fault.Spec{Fail: 1000}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			st, err := serve.NewStore(dir, 4)
			if err != nil {
				t.Fatal(err)
			}
			oldBody := validBody("survivor")
			if err := st.Put(fp(1), oldBody); err != nil {
				t.Fatal(err)
			}

			st.SetWriteHook(storeHook(fault.New(tc.spec)))
			if err := st.Put(fp(2), validBody("lost")); !errors.Is(err, fault.ErrNoSpace) {
				t.Fatalf("Put under %s: err = %v, want ErrNoSpace", tc.name, err)
			}
			// Overwriting an existing key must leave its old disk copy whole.
			if err := st.Put(fp(1), validBody("survivor-v2")); err == nil {
				t.Fatal("overwrite Put succeeded under injected write failure")
			}
			if got := st.Stats().WriteErrors; got != 2 {
				t.Errorf("WriteErrors = %d, want 2", got)
			}

			// The disk tier holds exactly the pre-fault entry, no temp files.
			if n, err := st.DiskLen(); err != nil || n != 1 {
				t.Fatalf("disk entries = %d (%v), want 1", n, err)
			}
			ents, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range ents {
				if strings.HasPrefix(e.Name(), ".tmp-") {
					t.Errorf("temp litter left behind: %s", e.Name())
				}
			}

			// Memory tier still serves both keys (the failed writes degraded
			// to memory-only entries, they didn't poison anything)...
			if body, tier, ok := st.Get(fp(2)); !ok || tier != serve.TierMem {
				t.Errorf("unpersisted entry: ok=%v tier=%s body=%s", ok, tier, body)
			}

			// ...but a restart sees only the intact old entry; the failed one
			// is a plain counted miss.
			st2, err := serve.NewStore(dir, 4)
			if err != nil {
				t.Fatal(err)
			}
			if body, _, ok := st2.Get(fp(1)); !ok || string(body) != string(oldBody) {
				t.Errorf("after restart, surviving entry: ok=%v body=%s", ok, body)
			}
			if _, _, ok := st2.Get(fp(2)); ok {
				t.Error("after restart, unpersisted entry still hit")
			}
			if misses := st2.Stats().Misses; misses != 1 {
				t.Errorf("Misses = %d, want 1", misses)
			}

			// Clearing the hook restores full service.
			st.SetWriteHook(nil)
			if err := st.Put(fp(2), validBody("recovered")); err != nil {
				t.Fatal(err)
			}
			if n, _ := st.DiskLen(); n != 2 {
				t.Errorf("disk entries after recovery = %d, want 2", n)
			}
		})
	}
}

// A short-writing filesystem — n < len(body) with a NIL error — must be
// detected and treated exactly like a failed write, not promoted to a
// truncated disk entry.
func TestStorePutDetectsShortWrite(t *testing.T) {
	dir := t.TempDir()
	st, err := serve.NewStore(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	st.SetWriteHook(storeHook(fault.New(fault.Spec{Truncate: 1000})))
	if err := st.Put(fp(7), validBody("torn")); !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("Put = %v, want ErrShortWrite", err)
	}
	if st.Stats().WriteErrors != 1 {
		t.Errorf("WriteErrors = %d, want 1", st.Stats().WriteErrors)
	}
	if n, err := st.DiskLen(); err != nil || n != 0 {
		t.Fatalf("disk entries = %d (%v), want 0 — a torn entry must never land", n, err)
	}
	// Nothing truncated could be read back after restart either way, but
	// the guarantee is stronger: the file never exists at its final name.
	st2, err := serve.NewStore(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := st2.Get(fp(7)); ok {
		t.Error("torn entry visible after restart")
	}
}
