package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"pubtac"
	"pubtac/client"
	"pubtac/internal/mbpta"
	"pubtac/internal/serve"
	"pubtac/internal/stats"
)

// localShardSample computes the expected bytes of a shard the way a worker
// does: full summary, one-shot reference battery, root derived from the
// program/input pair. This is the oracle every endpoint test compares
// against.
func localShardSample(t *testing.T, cfg pubtac.Config, prog, input string, original bool, lo, hi int) []float64 {
	t.Helper()
	b, err := pubtac.Benchmark(prog)
	if err != nil {
		t.Fatal(err)
	}
	p := b.Program
	if !original {
		if p, _, err = pubtac.Transform(p); err != nil {
			t.Fatal(err)
		}
	}
	in, err := b.Input(input)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Exec(in)
	if err != nil {
		t.Fatal(err)
	}
	camp := mbpta.NewCampaign(res.Trace, cfg.Model)
	wcfg := cfg.MBPTA
	wcfg.Streaming = false
	wcfg.ReferenceIID = true
	root := mbpta.Seed(prog+"/"+input) ^ cfg.SeedSalt
	sum, err := camp.CollectRangeCtx(context.Background(), wcfg, lo, hi, root, nil)
	if err != nil {
		t.Fatal(err)
	}
	return sum.(*stats.FullSummary).Sample()
}

func postShard(t *testing.T, url string, spec pubtac.ShardSpec) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/shards", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestShardEndpointMatchesLocal: a valid shard spec comes back as a decodable
// full summary whose sample is exactly the runs a local collection of the
// same range produces.
func TestShardEndpointMatchesLocal(t *testing.T) {
	srv, ts := newTestServer(t, t.TempDir())
	cfg := pubtac.NewSession(smallOpts()...).Config()
	spec := pubtac.ShardSpec{
		Config:  srv.ConfigFingerprint().String(),
		Program: "bs",
		Input:   "default",
		Root:    mbpta.Seed("bs/default") ^ cfg.SeedSalt,
		Lo:      100,
		Hi:      400,
	}

	got, err := client.New(ts.URL).CollectShard(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	want := localShardSample(t, cfg, "bs", "default", false, 100, 400)
	if len(got) != len(want) {
		t.Fatalf("shard returned %d runs, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("run %d: worker %v != local %v", spec.Lo+i, got[i], want[i])
		}
	}
	if st := srv.Stats(); st.Shards != 1 {
		t.Fatalf("statusz shards = %d after one shard, want 1", st.Shards)
	}

	// The original-program arm resolves its own campaign.
	spec.Original = true
	spec.Lo, spec.Hi = 0, 50
	got, err = client.New(ts.URL).CollectShard(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	want = localShardSample(t, cfg, "bs", "default", true, 0, 50)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("original run %d: worker %v != local %v", i, got[i], want[i])
		}
	}
}

// TestShardEndpointRefusals: a worker verifies a spec against its own
// configuration before simulating anything, so a mismatched coordinator
// degrades to local recomputation instead of silently merging foreign bytes.
func TestShardEndpointRefusals(t *testing.T) {
	srv, ts := newTestServer(t, t.TempDir())
	cfg := pubtac.NewSession(smallOpts()...).Config()
	ok := pubtac.ShardSpec{
		Config:  srv.ConfigFingerprint().String(),
		Program: "bs",
		Input:   "default",
		Root:    mbpta.Seed("bs/default") ^ cfg.SeedSalt,
		Lo:      0,
		Hi:      10,
	}
	mut := func(f func(*pubtac.ShardSpec)) pubtac.ShardSpec {
		s := ok
		f(&s)
		return s
	}
	cases := []struct {
		name string
		spec pubtac.ShardSpec
		code int
	}{
		{"foreign config", mut(func(s *pubtac.ShardSpec) { s.Config = "deadbeef" }), http.StatusConflict},
		{"wrong root", mut(func(s *pubtac.ShardSpec) { s.Root++ }), http.StatusConflict},
		{"negative lo", mut(func(s *pubtac.ShardSpec) { s.Lo = -1 }), http.StatusBadRequest},
		{"inverted range", mut(func(s *pubtac.ShardSpec) { s.Lo, s.Hi = 10, 0 }), http.StatusBadRequest},
		{"oversized range", mut(func(s *pubtac.ShardSpec) { s.Hi = s.Lo + 1<<23 }), http.StatusBadRequest},
		{"unknown program", mut(func(s *pubtac.ShardSpec) {
			s.Program = "no-such-bench"
			s.Root = mbpta.Seed("no-such-bench/default") ^ cfg.SeedSalt
		}), http.StatusNotFound},
		{"unknown input", mut(func(s *pubtac.ShardSpec) {
			s.Input = "no-such-input"
			s.Root = mbpta.Seed("bs/no-such-input") ^ cfg.SeedSalt
		}), http.StatusNotFound},
	}
	for _, tc := range cases {
		resp, body := postShard(t, ts.URL, tc.spec)
		if resp.StatusCode != tc.code {
			t.Errorf("%s: status %d (%s), want %d", tc.name, resp.StatusCode, bytes.TrimSpace(body), tc.code)
		}
	}
	if st := srv.Stats(); st.Shards != 0 {
		t.Fatalf("statusz shards = %d after refusals only, want 0", st.Shards)
	}

	// And the valid spec still goes through after all the refusals.
	resp, _ := postShard(t, ts.URL, ok)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid spec refused with %d", resp.StatusCode)
	}
}

// TestResultETagRevalidation: the content key doubles as a strong ETag, so a
// conditional GET revalidates without moving the body — or even touching the
// store.
func TestResultETagRevalidation(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir())
	c := client.New(ts.URL)
	ctx := context.Background()

	req := client.AnalyzeRequest{Bench: "bs"}
	body, _, err := c.AnalyzeRaw(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	// The identical resubmission is a cache hit and names the content key.
	sub, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !sub.Cached || sub.Key == "" {
		t.Fatalf("resubmission not served from the store: %+v", sub)
	}

	get := func(inm string) *http.Response {
		req, err := http.NewRequest("GET", ts.URL+"/v1/results/"+sub.Key, nil)
		if err != nil {
			t.Fatal(err)
		}
		if inm != "" {
			req.Header.Set("If-None-Match", inm)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	// Unconditional GET carries the ETag.
	resp := get("")
	etag := resp.Header.Get("ETag")
	if resp.StatusCode != http.StatusOK || etag != `"`+sub.Key+`"` {
		t.Fatalf("GET: status %d etag %q, want 200 with quoted key", resp.StatusCode, etag)
	}
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, body) {
		t.Fatal("GET body differs from the computed result")
	}

	// Matching validators — exact, weak, listed, wildcard — all 304 with the
	// ETag restated and no body.
	for _, inm := range []string{etag, "W/" + etag, `"other", ` + etag, "*"} {
		resp := get(inm)
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusNotModified || len(b) != 0 {
			t.Fatalf("If-None-Match %q: status %d body %d bytes, want bare 304", inm, resp.StatusCode, len(b))
		}
		if resp.Header.Get("ETag") != etag {
			t.Fatalf("304 for %q dropped the ETag", inm)
		}
	}

	// A stale validator moves the full body again.
	if resp := get(`"somethingelse"`); resp.StatusCode != http.StatusOK {
		t.Fatalf("stale validator: status %d, want 200", resp.StatusCode)
	}
}

// TestCoordinatorWorkerBitIdentical is the distributed acceptance path in
// miniature: a coordinator daemon sharding over one worker daemon produces a
// byte-identical result body — and therefore the same content key — as a
// plain standalone daemon.
func TestCoordinatorWorkerBitIdentical(t *testing.T) {
	// Standalone reference daemon.
	_, plainTS := newTestServer(t, t.TempDir())

	// Worker daemon: same session options, serves POST /v1/shards.
	worker, workerTS := newTestServer(t, t.TempDir())

	// Coordinator daemon: same session options plus the peer list.
	coordStore, err := serve.NewStore(t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := serve.New(serve.Options{
		Store:          coordStore,
		SessionOptions: smallOpts(),
		Peers:          []string{workerTS.URL},
		Shards:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	coordTS := httptest.NewServer(coord)
	defer coordTS.Close()
	defer coord.Close()

	ctx := context.Background()
	req := client.AnalyzeRequest{Bench: "bs"}
	plain, _, err := client.New(plainTS.URL).AnalyzeRaw(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	sharded, _, err := client.New(coordTS.URL).AnalyzeRaw(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, sharded) {
		t.Fatal("coordinator result differs from the standalone daemon's bytes")
	}
	if st := worker.Stats(); st.Shards == 0 {
		t.Fatal("worker served no shards — the coordinator computed everything locally")
	}
	// The sharding knobs stay out of the fingerprint, so both daemons share
	// one cache key space.
	if got, want := coord.ConfigFingerprint(), worker.ConfigFingerprint(); got != want {
		t.Fatalf("coordinator fingerprint %s != worker fingerprint %s", got, want)
	}
}
