package serve_test

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"pubtac"
	"pubtac/client"
	"pubtac/internal/serve"
)

// smallOpts keeps campaigns in the tens of milliseconds (the sizing every
// facade test uses).
func smallOpts() []pubtac.Option {
	cfg := pubtac.DefaultConfig()
	cfg.MBPTA.InitialRuns = 200
	cfg.MBPTA.Increment = 200
	cfg.MBPTA.MaxRuns = 2000
	cfg.CampaignCap = 3000
	return []pubtac.Option{pubtac.WithConfig(cfg)}
}

func newTestServer(t *testing.T, dir string) (*serve.Server, *httptest.Server) {
	t.Helper()
	store, err := serve.NewStore(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(serve.Options{Store: store, SessionOptions: smallOpts()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// TestServerCacheHitBitIdentical is the acceptance path: the second identical
// submission is served from the store with a byte-identical body and no
// re-simulation, and a restarted daemon over the same directory still serves
// it — from disk.
func TestServerCacheHitBitIdentical(t *testing.T) {
	dir := t.TempDir()
	srv, ts := newTestServer(t, dir)
	c := client.New(ts.URL)
	ctx := context.Background()
	req := client.AnalyzeRequest{Bench: "bs"}

	first, cached, err := c.AnalyzeRaw(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("first submission reported cached")
	}
	second, cached, err := c.AnalyzeRaw(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Fatal("second identical submission not served from the store")
	}
	if !bytes.Equal(first, second) {
		t.Fatal("cached body differs from the computed one")
	}
	if st := srv.Stats(); st.Computed != 1 {
		t.Fatalf("computed = %d analyses for two identical submissions", st.Computed)
	}

	// Decoded form is a valid, schema-checked batch result.
	res, _, err := c.Analyze(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if all := res.All(); len(all) != 1 || all[0].Program != "bs" || all[0].PWCET(1e-12) <= 0 {
		t.Fatalf("implausible decoded result: %+v", res)
	}

	// Restart: a new store + server over the same directory. The memory tier
	// is gone; the result must come back from disk, still bit-identical,
	// without any computation.
	ts.Close()
	srv.Close()
	store2, err := serve.NewStore(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := serve.New(serve.Options{Store: store2, SessionOptions: smallOpts()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()

	resp, err := http.Post(ts2.URL+"/v1/analyze", "application/json",
		strings.NewReader(`{"bench": "bs", "wait": true}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.Header.Get(client.HeaderCache) != "hit" {
		t.Fatal("restarted daemon did not serve from its store")
	}
	if got := resp.Header.Get(client.HeaderTier); got != serve.TierDisk {
		t.Fatalf("restarted daemon served from tier %q, want disk", got)
	}
	if !bytes.Equal(body.Bytes(), first) {
		t.Fatal("restarted daemon's body differs from the original")
	}
	if st := srv2.Stats(); st.Computed != 0 {
		t.Fatalf("restarted daemon computed %d analyses", st.Computed)
	}
}

// TestServerConcurrentIdenticalComputeOnce: N identical waiting submissions
// race; the singleflight table must collapse them onto one computation, and
// every response must carry the same bytes.
func TestServerConcurrentIdenticalComputeOnce(t *testing.T) {
	srv, ts := newTestServer(t, t.TempDir())
	c := client.New(ts.URL)
	req := client.AnalyzeRequest{Bench: "cnt"}

	const n = 4
	bodies := make([][]byte, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			bodies[i], _, errs[i] = c.AnalyzeRaw(context.Background(), req)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("submission %d: %v", i, errs[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("submission %d received different bytes", i)
		}
	}
	if st := srv.Stats(); st.Computed != 1 {
		t.Fatalf("computed = %d analyses for %d identical submissions", st.Computed, n)
	}
}

// TestServerKeyMatchesClientDerivation: a client holding the program and the
// daemon's configuration derives the same content key the daemon uses, and
// can probe /v1/results/{key} directly.
func TestServerKeyMatchesClientDerivation(t *testing.T) {
	srv, ts := newTestServer(t, t.TempDir())
	c := client.New(ts.URL)
	ctx := context.Background()

	body, _, err := c.AnalyzeRaw(ctx, client.AnalyzeRequest{Bench: "bs"})
	if err != nil {
		t.Fatal(err)
	}
	bench, err := pubtac.Benchmark("bs")
	if err != nil {
		t.Fatal(err)
	}
	jobKey, err := pubtac.Job{Program: bench.Program, Inputs: []pubtac.Input{bench.Default()}}.Key(0)
	if err != nil {
		t.Fatal(err)
	}
	key := pubtac.AnalysisKey(srv.ConfigFingerprint(), jobKey)
	stored, found, err := c.Result(ctx, key.String())
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("client-derived key not found in the store")
	}
	if !bytes.Equal(stored, body) {
		t.Fatal("result fetched by derived key differs")
	}
	if _, found, err := c.Result(ctx, pubtac.Fingerprint{}.String()); err != nil || found {
		t.Fatalf("zero key: found=%v err=%v, want clean not-found", found, err)
	}
}

// TestServerSubmitEventsResult drives the asynchronous path: submit, stream
// progress over SSE (with replay), then fetch the stored result by key.
func TestServerSubmitEventsResult(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir())
	c := client.New(ts.URL)
	ctx := context.Background()

	sub, err := c.Submit(ctx, client.AnalyzeRequest{Bench: "bs"})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Cached || sub.JobID == "" || sub.Key == "" {
		t.Fatalf("fresh submission = %+v", sub)
	}
	var events []pubtac.ProgressEvent
	if err := c.Events(ctx, sub.JobID, func(ev pubtac.ProgressEvent) {
		events = append(events, ev)
	}); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no progress events streamed")
	}
	last := events[len(events)-1]
	if last.Phase != "done" {
		t.Fatalf("last event phase = %q, want done", last.Phase)
	}
	// Replay: a second subscriber after completion sees the full history.
	var replayed int
	if err := c.Events(ctx, sub.JobID, func(pubtac.ProgressEvent) { replayed++ }); err != nil {
		t.Fatal(err)
	}
	if replayed != len(events) {
		t.Fatalf("replayed %d events, live stream had %d", replayed, len(events))
	}

	body, found, err := c.Result(ctx, sub.Key)
	if err != nil {
		t.Fatal(err)
	}
	if !found || len(body) == 0 {
		t.Fatal("completed job's result not in the store")
	}
	st, err := c.JobStatus(ctx, sub.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" || st.Key != sub.Key || st.Events != len(events) {
		t.Fatalf("job status = %+v", st)
	}

	// Resubmission of the same request short-circuits: cached, no job.
	again, err := c.Submit(ctx, client.AnalyzeRequest{Bench: "bs"})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached || again.JobID != "" || again.Key != sub.Key {
		t.Fatalf("resubmission = %+v, want cached with the same key", again)
	}
}

func TestServerBadRequests(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir())
	post := func(body string) int {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	for name, body := range map[string]string{
		"empty":           `{}`,
		"mixed forms":     `{"bench": "bs", "jobs": [{"bench": "crc"}]}`,
		"input+multipath": `{"bench": "bs", "input": "v1", "multipath": true}`,
		"unknown bench":   `{"bench": "nope"}`,
		"unknown input":   `{"bench": "bs", "input": "nope"}`,
		"not json":        `{"bench"`,
	} {
		if code := post(body); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, code)
		}
	}
	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/v1/jobs/zzz"); code != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", code)
	}
	if code := get("/v1/results/nothex"); code != http.StatusBadRequest {
		t.Errorf("malformed key: status %d, want 400", code)
	}
	if code := get("/v1/healthz"); code != http.StatusOK {
		t.Errorf("healthz: status %d, want 200", code)
	}
	if code := get("/v1/statusz"); code != http.StatusOK {
		t.Errorf("statusz: status %d, want 200", code)
	}
}

// TestServerMultipathAndBatchForms: the two request forms resolve, compute
// and cache independently (different keys), and the batch form caches the
// whole batch as one entry.
func TestServerMultipathAndBatchForms(t *testing.T) {
	srv, ts := newTestServer(t, t.TempDir())
	c := client.New(ts.URL)
	ctx := context.Background()

	multi, _, err := c.Analyze(ctx, client.AnalyzeRequest{Bench: "bs", Multipath: true})
	if err != nil {
		t.Fatal(err)
	}
	bench, _ := pubtac.Benchmark("bs")
	if got := len(multi.Jobs[0].Results); got != len(bench.Inputs) {
		t.Fatalf("multipath analyzed %d paths, want %d", got, len(bench.Inputs))
	}

	batch, _, err := c.Analyze(ctx, client.AnalyzeRequest{Jobs: []client.JobSpec{
		{Bench: "bs"}, {Bench: "cnt"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Jobs) != 2 || batch.Jobs[0].Results[0].Program != "bs" ||
		batch.Jobs[1].Results[0].Program != "cnt" {
		t.Fatalf("batch form: %+v", batch.Jobs)
	}
	_, cached, err := c.AnalyzeRaw(ctx, client.AnalyzeRequest{Jobs: []client.JobSpec{
		{Bench: "bs"}, {Bench: "cnt"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Fatal("identical batch not served from the store")
	}
	if st := srv.Stats(); st.Computed != 2 {
		t.Fatalf("computed = %d, want 2 (multipath + batch)", st.Computed)
	}
}
