package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"pubtac"
	"pubtac/client"
	"pubtac/internal/mbpta"
	"pubtac/internal/pool"
	"pubtac/internal/stats"
)

// Options configures a Server.
type Options struct {
	// Store is the content-addressed result store (required).
	Store *Store
	// SessionOptions are applied to the session of every analysis job; they
	// fix the daemon's pipeline configuration (scale, model, seed,
	// streaming, workers). The resolved configuration's fingerprint is half
	// of every cache key, so two daemons with equal session options (modulo
	// worker counts) serve each other's stores.
	SessionOptions []pubtac.Option
	// MaxJobs bounds concurrently computing analyses; further submissions
	// queue. 0 selects 2. Each job internally parallelizes across the
	// session worker budget, so a small number keeps the machine busy.
	MaxJobs int
	// MaxJobHistory bounds completed jobs retained for /v1/jobs queries
	// (their results stay addressable through the store forever). 0
	// selects 1024.
	MaxJobHistory int
	// Peers makes this daemon a campaign coordinator: every analysis
	// campaign is sharded across these pubtacd base URLs (each serving
	// POST /v1/shards under the SAME session configuration), with failed
	// shards recomputed locally. Results — and therefore cache keys — are
	// bit-identical to an unsharded daemon.
	Peers []string
	// Shards is the shard count per campaign range when Peers is set
	// (0 = one shard per peer).
	Shards int
	// PeerRetry bounds dispatch attempts per shard before local fallback
	// (0 = the peer fabric's default, 3).
	PeerRetry int
	// HedgeDelay arms hedged shard dispatch: after this long without an
	// answer the shard races on a second peer (0 = off).
	HedgeDelay time.Duration
	// PeerTransport, when non-nil, replaces the outbound peer transport —
	// the chaos-testing hook the fault injector's RoundTripper plugs into.
	PeerTransport http.RoundTripper
	// ShardDeadline bounds one POST /v1/shards computation; shards that
	// exceed it fail with 503 and the coordinator retries elsewhere or
	// recomputes locally (0 = no deadline).
	ShardDeadline time.Duration
}

// Server is the pubtacd HTTP handler: job submission over the Session API
// with singleflight deduplication, SSE progress streams, and the two-tier
// result store. Construct with New, serve it as an http.Handler, and Close
// it on shutdown.
type Server struct {
	mux      *http.ServeMux
	store    *Store
	baseOpts []pubtac.Option
	cfg      pubtac.Config // resolved session config (shard verification)
	cfgFP    pubtac.Fingerprint
	seedSalt uint64

	// Worker side of distributed sharding: shardSem bounds concurrently
	// computing shards (same budget as jobs), shardCamps caches compiled
	// campaigns per (program, input, original) so repeated shard rounds of
	// one campaign pay trace compilation once. The key space is the
	// benchmark registry — small and fixed — so the cache is unbounded.
	shardSem      chan struct{}
	shardDeadline time.Duration
	shardMu       sync.Mutex
	shardCamps    map[string]*mbpta.Campaign

	// peers is the coordinator's resilient fabric (nil on plain daemons
	// and workers); held for statusz visibility into retries and hedges.
	peers *client.Peers

	grp    *pool.Group
	gctx   context.Context
	cancel context.CancelFunc
	sem    chan struct{}

	closeOnce sync.Once
	closed    chan struct{}

	maxHistory int

	mu        sync.Mutex
	jobs      map[string]*job
	completed []string // completed job IDs, oldest first (history bound)
	byKey     map[pubtac.Fingerprint]*job
	nextID    int
	computed  uint64 // analyses actually run
	deduped   uint64 // submissions that joined an in-flight identical job
	shards    uint64 // campaign shards served via POST /v1/shards
	sheds     uint64 // shard requests shed with 429 at full capacity
}

// job is one in-flight or completed analysis.
type job struct {
	id  string
	key pubtac.Fingerprint

	mu     sync.Mutex
	events []pubtac.ProgressEvent
	notify chan struct{} // closed and replaced on every append/finish
	done   bool
	body   []byte
	errMsg string
}

// ServerStats is the /v1/statusz document.
type ServerStats struct {
	ConfigFingerprint string     `json:"config_fingerprint"`
	SchemaVersion     int        `json:"schema_version"`
	Computed          uint64     `json:"computed"`
	Deduped           uint64     `json:"deduped"`
	Shards            uint64     `json:"shards"`
	Sheds             uint64     `json:"sheds"`
	Jobs              int        `json:"jobs"`
	Store             StoreStats `json:"store"`
	// Fabric reports the coordinator's peer fabric — retries, hedges,
	// hedge wins, breaker states — and is absent on non-coordinators.
	Fabric *client.FabricStats `json:"fabric,omitempty"`
}

// New builds a Server. The session options are resolved once to derive the
// daemon's config fingerprint; every job session is built from the same
// options plus its progress sink, so all jobs share that fingerprint.
func New(opts Options) (*Server, error) {
	if opts.Store == nil {
		return nil, fmt.Errorf("serve: Options.Store is required")
	}
	maxJobs := opts.MaxJobs
	if maxJobs <= 0 {
		maxJobs = 2
	}
	probe := pubtac.NewSession(opts.SessionOptions...)
	// Coordinator mode: shard campaigns across the peers. The sharding
	// options ride on top of the session options but never reach the config
	// fingerprint (sharded results are bit-identical to local ones), so a
	// coordinator, its workers and a plain daemon all share cache keys.
	baseOpts := append([]pubtac.Option(nil), opts.SessionOptions...)
	var peers *client.Peers
	if len(opts.Peers) > 0 {
		peers = client.NewFabric(client.PeersConfig{
			Policy: client.RetryPolicy{
				MaxAttempts: opts.PeerRetry,
				HedgeDelay:  opts.HedgeDelay,
			},
			Transport: opts.PeerTransport,
		}, opts.Peers...)
		baseOpts = append(baseOpts, pubtac.WithPeers(peers))
		if opts.Shards > 0 {
			baseOpts = append(baseOpts, pubtac.WithShards(opts.Shards))
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	grp, gctx := pool.WithContext(ctx)
	s := &Server{
		mux:           http.NewServeMux(),
		store:         opts.Store,
		baseOpts:      baseOpts,
		cfg:           probe.Config(),
		cfgFP:         probe.ConfigFingerprint(),
		seedSalt:      probe.Config().SeedSalt,
		grp:           grp,
		gctx:          gctx,
		cancel:        cancel,
		sem:           make(chan struct{}, maxJobs),
		shardSem:      make(chan struct{}, maxJobs),
		shardDeadline: opts.ShardDeadline,
		peers:         peers,
		shardCamps:    make(map[string]*mbpta.Campaign),
		closed:        make(chan struct{}),
		jobs:          make(map[string]*job),
		byKey:         make(map[pubtac.Fingerprint]*job),
	}
	s.maxHistory = opts.MaxJobHistory
	if s.maxHistory <= 0 {
		s.maxHistory = 1024
	}
	s.mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	s.mux.HandleFunc("POST /v1/shards", s.handleShard)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/results/{key}", s.handleResult)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/statusz", s.handleStats)
	return s, nil
}

// ConfigFingerprint returns the fingerprint of the daemon's resolved session
// configuration (half of every cache key).
func (s *Server) ConfigFingerprint() pubtac.Fingerprint { return s.cfgFP }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Stats returns a snapshot of the server and store counters.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	st := ServerStats{
		ConfigFingerprint: s.cfgFP.String(),
		SchemaVersion:     pubtac.ResultSchemaVersion,
		Computed:          s.computed,
		Deduped:           s.deduped,
		Shards:            s.shards,
		Sheds:             s.sheds,
		Jobs:              len(s.jobs),
	}
	s.mu.Unlock()
	st.Store = s.store.Stats()
	if s.peers != nil {
		fs := s.peers.Stats()
		st.Fabric = &fs
	}
	return st
}

// Close stops the server: running jobs are cancelled, SSE streams and
// waiting submissions are released, and Close blocks until every job
// goroutine has drained. The store is left as-is (it belongs to the caller
// and survives restarts by design).
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		close(s.closed)
		s.cancel()
	})
	return s.grp.Wait()
}

// resolve turns a wire request into concrete analysis jobs. The two request
// forms normalize to one job list; resolution is pure (fresh benchmark
// instances per call), so concurrent requests share nothing.
func resolve(req client.AnalyzeRequest) ([]pubtac.Job, error) {
	specs := req.Jobs
	if req.Bench != "" {
		if len(specs) > 0 {
			return nil, fmt.Errorf("request mixes the single-benchmark form (bench) with the batch form (jobs)")
		}
		spec := client.JobSpec{Bench: req.Bench, Multipath: req.Multipath}
		if req.Input != "" {
			if req.Multipath {
				return nil, fmt.Errorf("input and multipath are mutually exclusive")
			}
			spec.Inputs = []string{req.Input}
		}
		specs = []client.JobSpec{spec}
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("empty request: set bench or jobs")
	}
	jobs := make([]pubtac.Job, 0, len(specs))
	for _, spec := range specs {
		b, err := pubtac.Benchmark(spec.Bench)
		if err != nil {
			return nil, err
		}
		j := pubtac.Job{Program: b.Program}
		switch {
		case spec.Multipath:
			j.Inputs = b.Inputs
		case len(spec.Inputs) > 0:
			for _, name := range spec.Inputs {
				in, err := b.Input(name)
				if err != nil {
					return nil, err
				}
				j.Inputs = append(j.Inputs, in)
			}
		default:
			j.Inputs = []pubtac.Input{b.Default()}
		}
		jobs = append(jobs, j)
	}
	return jobs, nil
}

// keyOf derives the request's content address under this server's
// configuration — the same derivation a client performs with
// pubtac.AnalysisKey.
func (s *Server) keyOf(jobs []pubtac.Job) (pubtac.Fingerprint, error) {
	keys := make([]pubtac.Fingerprint, len(jobs))
	for i, j := range jobs {
		k, err := j.Key(s.seedSalt)
		if err != nil {
			return pubtac.Fingerprint{}, err
		}
		keys[i] = k
	}
	return pubtac.AnalysisKey(s.cfgFP, keys...), nil
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req client.AnalyzeRequest
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading request: %v", err)
		return
	}
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	jobs, err := resolve(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	key, err := s.keyOf(jobs)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	if body, tier, ok := s.store.Get(key); ok {
		if req.Wait {
			writeResult(w, key, body, "hit", tier)
			return
		}
		writeJSON(w, client.SubmitResponse{
			Key: key.String(), Cached: true, SchemaVersion: pubtac.ResultSchemaVersion,
		})
		return
	}

	j, joined := s.startOrJoin(key, jobs)
	if !req.Wait {
		writeJSON(w, client.SubmitResponse{
			JobID: j.id, Key: key.String(), Deduped: joined,
			SchemaVersion: pubtac.ResultSchemaVersion,
		})
		return
	}
	body2, errMsg, err := j.wait(r.Context(), s.closed)
	switch {
	case err != nil:
		httpError(w, http.StatusServiceUnavailable, "%v", err)
	case errMsg != "":
		httpError(w, http.StatusInternalServerError, "analysis failed: %s", errMsg)
	default:
		writeResult(w, key, body2, "miss", "")
	}
}

// startOrJoin returns the in-flight job for key, creating and launching one
// when none exists. joined reports that an identical submission was already
// running — the singleflight path: concurrent identical submissions compute
// once and all observe the same job.
func (s *Server) startOrJoin(key pubtac.Fingerprint, jobs []pubtac.Job) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.byKey[key]; ok {
		s.deduped++
		return j, true
	}
	s.nextID++
	j := &job{
		id:     fmt.Sprintf("j%06d", s.nextID),
		key:    key,
		notify: make(chan struct{}),
	}
	s.jobs[j.id] = j
	s.byKey[key] = j
	s.computed++
	s.grp.Go(func() error {
		s.run(j, jobs)
		return nil // job errors live on the job; they must not cancel the group
	})
	return j, false
}

// run executes one analysis job end to end: a fresh session wired to the
// job's event log, the batch over the server's pool context, persistence,
// and completion. Panics are contained to the job (a panicking task would
// otherwise cancel the group and with it every other running job).
func (s *Server) run(j *job, jobs []pubtac.Job) {
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	defer func() {
		if r := recover(); r != nil {
			s.finish(j, nil, fmt.Errorf("panic: %v", r))
		}
	}()
	if err := s.gctx.Err(); err != nil {
		s.finish(j, nil, err)
		return
	}
	opts := append(append([]pubtac.Option(nil), s.baseOpts...), pubtac.WithProgress(j.emit))
	session := pubtac.NewSession(opts...)
	batch, err := session.AnalyzeBatch(s.gctx, jobs)
	if err != nil {
		s.finish(j, nil, err)
		return
	}
	body, err := batch.JSON()
	if err != nil {
		s.finish(j, nil, err)
		return
	}
	// A failed persist is not a failed analysis: the result is still
	// correct and served; only its survival across restart is lost.
	_ = s.store.Put(j.key, body)
	s.finish(j, body, nil)
}

// finish completes the job and retires it from the singleflight table; its
// result stays addressable through the store. Completed-job history is
// bounded: the oldest finished jobs are dropped from /v1/jobs.
func (s *Server) finish(j *job, body []byte, err error) {
	j.mu.Lock()
	j.done = true
	j.body = body
	if err != nil {
		j.errMsg = err.Error()
	}
	close(j.notify)
	j.mu.Unlock()

	s.mu.Lock()
	delete(s.byKey, j.key)
	s.completed = append(s.completed, j.id)
	for len(s.completed) > s.maxHistory {
		delete(s.jobs, s.completed[0])
		s.completed = s.completed[1:]
	}
	s.mu.Unlock()
}

// emit appends a progress event and wakes every watcher. The session
// serializes calls, so only watchers race with it — hence the lock.
func (j *job) emit(ev pubtac.ProgressEvent) {
	j.mu.Lock()
	j.events = append(j.events, ev)
	close(j.notify)
	j.notify = make(chan struct{})
	j.mu.Unlock()
}

// wait blocks until the job completes, the request context is cancelled, or
// the server closes.
func (j *job) wait(ctx context.Context, closed <-chan struct{}) (body []byte, errMsg string, err error) {
	for {
		j.mu.Lock()
		if j.done {
			body, errMsg = j.body, j.errMsg
			j.mu.Unlock()
			return body, errMsg, nil
		}
		notify := j.notify
		j.mu.Unlock()
		select {
		case <-notify:
		case <-ctx.Done():
			return nil, "", ctx.Err()
		case <-closed:
			return nil, "", fmt.Errorf("server shutting down")
		}
	}
}

func (s *Server) lookupJob(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	j.mu.Lock()
	st := client.JobStatus{ID: j.id, Key: j.key.String(), State: "running", Events: len(j.events)}
	if j.done {
		st.State = "done"
		if j.errMsg != "" {
			st.State = "error"
			st.Error = j.errMsg
		}
	}
	j.mu.Unlock()
	writeJSON(w, st)
}

// handleEvents streams the job's progress as Server-Sent Events: every event
// emitted so far is replayed, then new ones stream as they arrive, and a
// terminal "done" or "error" frame closes the stream.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	sent := 0
	for {
		j.mu.Lock()
		pending := j.events[sent:]
		done, errMsg := j.done, j.errMsg
		notify := j.notify
		j.mu.Unlock()

		for _, ev := range pending {
			writeSSE(w, "progress", ev)
		}
		sent += len(pending)
		if done {
			if errMsg != "" {
				writeSSE(w, "error", map[string]string{"error": errMsg, "key": j.key.String()})
			} else {
				writeSSE(w, "done", map[string]string{"key": j.key.String()})
			}
			fl.Flush()
			return
		}
		fl.Flush()
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		case <-s.closed:
			return
		}
	}
}

// maxShardRuns bounds one shard's run range: a coordinator never needs more
// (campaign caps are far smaller), so anything larger is a malformed or
// hostile spec, refused before it can pin a worker for hours.
const maxShardRuns = 1 << 22

// handleShard is the worker half of distributed campaign sharding: it
// recomputes the spec's run range — run i depends only on (root, i), so the
// bytes are exactly what the coordinator would have computed locally — and
// replies with the wire-encoded full summary. Specs are verified against
// this daemon's own configuration (fingerprint and seed derivation) before
// a single run is simulated: a worker must refuse work it would compute
// differently, because the coordinator trusts accepted shards bit for bit.
func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading request: %v", err)
		return
	}
	var spec pubtac.ShardSpec
	if err := json.Unmarshal(body, &spec); err != nil {
		httpError(w, http.StatusBadRequest, "decoding shard spec: %v", err)
		return
	}
	if spec.Config != s.cfgFP.String() {
		httpError(w, http.StatusConflict,
			"shard config fingerprint %s does not match this daemon's %s", spec.Config, s.cfgFP)
		return
	}
	if spec.Lo < 0 || spec.Hi < spec.Lo || spec.Runs() > maxShardRuns {
		httpError(w, http.StatusBadRequest, "invalid run range [%d, %d)", spec.Lo, spec.Hi)
		return
	}
	if want := mbpta.Seed(spec.Program+"/"+spec.Input) ^ s.seedSalt; spec.Root != want {
		httpError(w, http.StatusConflict,
			"shard root %d is not this daemon's root for %s(%s)", spec.Root, spec.Program, spec.Input)
		return
	}
	camp, err := s.campaignFor(spec)
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}

	// Load shedding: a saturated worker answers immediately with 429 +
	// Retry-After instead of queuing requests it cannot serve soon. The
	// coordinator's fabric backs off and retries (elsewhere, if it can);
	// anything never served falls back to local recomputation — so a shed
	// degrades latency, never results.
	select {
	case s.shardSem <- struct{}{}:
		defer func() { <-s.shardSem }()
	case <-s.closed:
		httpError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	default:
		s.mu.Lock()
		s.sheds++
		s.mu.Unlock()
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "shard capacity saturated, retry later")
		return
	}
	ctx, cancel := context.WithCancel(r.Context())
	if s.shardDeadline > 0 {
		// Per-shard deadline: a shard that cannot finish in time fails
		// with 503 below, freeing the slot; the coordinator recomputes
		// the range bit-identically.
		ctx, cancel = context.WithTimeout(r.Context(), s.shardDeadline)
	}
	defer cancel()
	stop := context.AfterFunc(s.gctx, cancel)
	defer stop()

	// Shards always collect into a full summary (raw-sample transport):
	// full-summary state is chunking-invariant, so the coordinator's merge
	// is bit-identical in every estimation mode, streaming included. The
	// one-shot reference battery is selected because the battery never
	// ships — only the sample does.
	wcfg := s.cfg.MBPTA
	wcfg.Streaming = false
	wcfg.ReferenceIID = true
	sum, err := camp.CollectRangeCtx(ctx, wcfg, spec.Lo, spec.Hi, spec.Root, nil)
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, "collecting shard: %v", err)
		return
	}
	enc, err := stats.EncodeSummary(sum)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "encoding shard summary: %v", err)
		return
	}
	s.mu.Lock()
	s.shards++
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(enc)
}

// campaignFor resolves and compiles the campaign a shard spec names,
// caching it per (program, input, original): repeated shard rounds of one
// campaign — every convergence round produces a fresh round of specs — pay
// benchmark resolution, PUB and trace compilation once.
func (s *Server) campaignFor(spec pubtac.ShardSpec) (*mbpta.Campaign, error) {
	origin := "pub"
	if spec.Original {
		origin = "orig"
	}
	ck := spec.Program + "\x00" + spec.Input + "\x00" + origin
	s.shardMu.Lock()
	camp, ok := s.shardCamps[ck]
	s.shardMu.Unlock()
	if ok {
		return camp, nil
	}

	b, err := pubtac.Benchmark(spec.Program)
	if err != nil {
		return nil, err
	}
	p := b.Program
	if !spec.Original {
		if p, _, err = pubtac.Transform(p); err != nil {
			return nil, fmt.Errorf("PUB on %s: %w", spec.Program, err)
		}
	}
	in, err := b.Input(spec.Input)
	if err != nil {
		return nil, err
	}
	res, err := p.Exec(in)
	if err != nil {
		return nil, fmt.Errorf("executing %s(%s): %w", spec.Program, spec.Input, err)
	}
	camp = mbpta.NewCampaign(res.Trace, s.cfg.Model)

	s.shardMu.Lock()
	if cached, ok := s.shardCamps[ck]; ok {
		camp = cached // a concurrent request built it first; share theirs
	} else {
		s.shardCamps[ck] = camp
	}
	s.shardMu.Unlock()
	return camp, nil
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	key, err := pubtac.ParseFingerprint(r.PathValue("key"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// The key IS the content hash, so it doubles as a strong ETag: a client
	// (or federating peer) holding any body for it holds the current one.
	if etagMatch(r.Header.Get("If-None-Match"), etagFor(key)) {
		h := w.Header()
		h.Set("ETag", etagFor(key))
		h.Set(client.HeaderKey, key.String())
		w.WriteHeader(http.StatusNotModified)
		return
	}
	body, tier, ok := s.store.Get(key)
	if !ok {
		httpError(w, http.StatusNotFound, "no result for key %s", key)
		return
	}
	writeResult(w, key, body, "hit", tier)
}

// etagFor returns the strong ETag of a stored result: the quoted content
// key. Content addressing makes revalidation trivial — bodies for one key
// never change (schema rotations rotate the key itself).
func etagFor(key pubtac.Fingerprint) string { return `"` + key.String() + `"` }

// etagMatch reports whether an If-None-Match header matches the ETag:
// either the wildcard or any listed entity tag, weak validators included
// (content addressing makes weak and strong comparison coincide).
func etagMatch(header, etag string) bool {
	if header == "" {
		return false
	}
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		part = strings.TrimPrefix(part, "W/")
		if part == "*" || part == etag {
			return true
		}
	}
	return false
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Stats())
}

// writeResult serves a stored or fresh result body with the cache headers
// the smoke tests and clients key on.
func writeResult(w http.ResponseWriter, key pubtac.Fingerprint, body []byte, cache, tier string) {
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("ETag", etagFor(key))
	h.Set(client.HeaderCache, cache)
	h.Set(client.HeaderKey, key.String())
	if tier != "" {
		h.Set(client.HeaderTier, tier)
	}
	w.Write(body)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	buf, err := json.Marshal(v)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "encoding response: %v", err)
		return
	}
	w.Write(buf)
}

func writeSSE(w io.Writer, event string, v any) {
	buf, err := json.Marshal(v)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, buf)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}
