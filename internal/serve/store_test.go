package serve_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pubtac"
	"pubtac/internal/serve"
)

// validBody returns a minimal body the store accepts, distinguishable by tag.
func validBody(tag string) []byte {
	return []byte(fmt.Sprintf(`{"schema_version": %d, "jobs": [], "tag": %q}`,
		pubtac.ResultSchemaVersion, tag))
}

func fp(b byte) pubtac.Fingerprint {
	var f pubtac.Fingerprint
	f[0] = b
	return f
}

func TestStoreRoundTripAndRestart(t *testing.T) {
	dir := t.TempDir()
	st, err := serve.NewStore(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	key, body := fp(1), validBody("a")
	if _, _, ok := st.Get(key); ok {
		t.Fatal("hit on an empty store")
	}
	if err := st.Put(key, body); err != nil {
		t.Fatal(err)
	}
	got, tier, ok := st.Get(key)
	if !ok || tier != serve.TierMem || string(got) != string(body) {
		t.Fatalf("after Put: ok=%v tier=%s body=%s", ok, tier, got)
	}
	if n, err := st.DiskLen(); err != nil || n != 1 {
		t.Fatalf("disk entries = %d (%v), want 1", n, err)
	}

	// A fresh store over the same directory — the restart path — serves the
	// entry from disk on first touch, then from memory.
	st2, err := serve.NewStore(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, tier, ok = st2.Get(key)
	if !ok || tier != serve.TierDisk || string(got) != string(body) {
		t.Fatalf("after restart: ok=%v tier=%s body=%s", ok, tier, got)
	}
	if _, tier, _ = st2.Get(key); tier != serve.TierMem {
		t.Fatalf("second Get after restart served from %s, want promotion to mem", tier)
	}
}

func TestStoreLRUEvictionFallsBackToDisk(t *testing.T) {
	st, err := serve.NewStore(t.TempDir(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(fp(1), validBody("one")); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(fp(2), validBody("two")); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 1 {
		t.Fatalf("memory tier holds %d entries past cap 1", st.Len())
	}
	if st.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Stats().Evictions)
	}
	// The evicted entry is still served — from disk — and promoted back,
	// evicting the other in turn.
	body, tier, ok := st.Get(fp(1))
	if !ok || tier != serve.TierDisk || !strings.Contains(string(body), "one") {
		t.Fatalf("evicted entry: ok=%v tier=%s body=%s", ok, tier, body)
	}
	if _, tier, _ := st.Get(fp(1)); tier != serve.TierMem {
		t.Fatalf("promotion after disk hit served from %s", tier)
	}
}

// TestStoreCorruptEntriesAreMisses: a crash mid-write leaves either a temp
// file (never visible to Get) or, on filesystems without atomic semantics, a
// torn entry. Both must read as cache misses, never errors.
func TestStoreCorruptEntriesAreMisses(t *testing.T) {
	dir := t.TempDir()
	st, err := serve.NewStore(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	full := validBody("victim")
	if err := st.Put(fp(1), full); err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("entries = %v (%v)", entries, err)
	}
	// Simulate the torn write: truncate the entry mid-document.
	if err := os.WriteFile(entries[0], full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := serve.NewStore(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := st2.Get(fp(1)); ok {
		t.Fatal("truncated entry served as a hit")
	}
	if s := st2.Stats(); s.Corrupt != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v, want Corrupt=1 Misses=1", s)
	}
	// Recomputation overwrites the torn entry and it serves again.
	if err := st2.Put(fp(1), full); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := st2.Get(fp(1)); !ok {
		t.Fatal("rewritten entry not served")
	}
}

func TestStoreRejectsForeignSchema(t *testing.T) {
	dir := t.TempDir()
	st, err := serve.NewStore(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Put refuses bytes the load path would reject.
	foreign := []byte(fmt.Sprintf(`{"schema_version": %d, "jobs": []}`, pubtac.ResultSchemaVersion+1))
	if err := st.Put(fp(1), foreign); err == nil {
		t.Fatal("Put accepted a foreign schema version")
	}
	if err := st.Put(fp(1), []byte(`{"jobs": []}`)); err == nil {
		t.Fatal("Put accepted a document without schema_version")
	}
	// An on-disk entry from another build (schema bumped under the store)
	// reads as a miss.
	name := filepath.Join(dir, fp(1).String()+".json")
	if err := os.WriteFile(name, foreign, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := st.Get(fp(1)); ok {
		t.Fatal("foreign-schema entry served as a hit")
	}
	if st.Stats().Corrupt != 1 {
		t.Fatalf("corrupt = %d, want 1", st.Stats().Corrupt)
	}
}

// TestStoreDiskQuotaEvictsOldest: under a byte quota, Puts evict
// oldest-written entries first; evicted keys read as plain misses and the
// counter reports the reclaim.
func TestStoreDiskQuotaEvictsOldest(t *testing.T) {
	dir := t.TempDir()
	// Memory tier of 1 so evicted disk entries aren't masked by memory hits.
	st, err := serve.NewStore(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	unit := int64(len(validBody("t0")))
	if err := st.SetDiskQuota(2 * unit); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := st.Put(fp(byte(i)), validBody(fmt.Sprintf("t%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Three equal-size entries under a two-entry quota: the first write is
	// the oldest, gone; the last two fit.
	if n, err := st.DiskLen(); err != nil || n != 2 {
		t.Fatalf("disk entries = %d (%v), want 2", n, err)
	}
	if got := st.Stats().DiskEvictions; got != 1 {
		t.Fatalf("disk evictions = %d, want 1", got)
	}
	if _, _, ok := st.Get(fp(1)); ok {
		t.Fatal("evicted entry served as a hit")
	}
	for i := 2; i <= 3; i++ {
		if body, _, ok := st.Get(fp(byte(i))); !ok || !strings.Contains(string(body), fmt.Sprintf("t%d", i)) {
			t.Fatalf("surviving entry %d: ok=%v body=%s", i, ok, body)
		}
	}
}

// TestStoreDiskQuotaKeepsNewest: a quota smaller than a single entry still
// keeps the newest one — a store that rejects the result it just computed
// would turn every request into a recompute.
func TestStoreDiskQuotaKeepsNewest(t *testing.T) {
	st, err := serve.NewStore(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SetDiskQuota(1); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(fp(1), validBody("first")); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(fp(2), validBody("second")); err != nil {
		t.Fatal(err)
	}
	if n, err := st.DiskLen(); err != nil || n != 1 {
		t.Fatalf("disk entries = %d (%v), want exactly the newest", n, err)
	}
	if _, _, ok := st.Get(fp(2)); !ok {
		t.Fatal("newest entry evicted under a tiny quota")
	}
}

// TestStoreDiskQuotaScansExisting: SetDiskQuota on a populated directory
// seeds its queue from the files on disk (oldest modification first) and
// evicts immediately when the tier is already over quota.
func TestStoreDiskQuotaScansExisting(t *testing.T) {
	dir := t.TempDir()
	st, err := serve.NewStore(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	var unit int64
	for i := 1; i <= 4; i++ {
		body := validBody(fmt.Sprintf("t%d", i))
		unit = int64(len(body))
		if err := st.Put(fp(byte(i)), body); err != nil {
			t.Fatal(err)
		}
		name := filepath.Join(dir, fp(byte(i)).String()+".json")
		// Pin distinct mtimes so the scan's oldest-first order is the write
		// order even on coarse filesystem clocks.
		mt := time.Unix(1700000000+int64(i), 0)
		if err := os.Chtimes(name, mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	// A restarted daemon applies the quota to what it finds on disk.
	st2, err := serve.NewStore(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.SetDiskQuota(2 * unit); err != nil {
		t.Fatal(err)
	}
	if n, err := st2.DiskLen(); err != nil || n != 2 {
		t.Fatalf("disk entries after scan = %d (%v), want 2", n, err)
	}
	if st2.Stats().DiskEvictions != 2 {
		t.Fatalf("disk evictions = %d, want 2", st2.Stats().DiskEvictions)
	}
	for i, want := range map[byte]bool{1: false, 2: false, 3: true, 4: true} {
		if _, _, ok := st2.Get(fp(i)); ok != want {
			t.Fatalf("entry %d present=%v after scan eviction, want %v", i, ok, want)
		}
	}
}

// TestStoreDiskQuotaLeavesMemoryTier: disk eviction never touches the memory
// tier — a hot entry keeps serving from memory, it just no longer survives a
// restart.
func TestStoreDiskQuotaLeavesMemoryTier(t *testing.T) {
	dir := t.TempDir()
	st, err := serve.NewStore(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SetDiskQuota(1); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(fp(1), validBody("hot")); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(fp(2), validBody("new")); err != nil {
		t.Fatal(err)
	}
	// fp(1)'s disk copy is gone, but the memory tier still serves it.
	if body, tier, ok := st.Get(fp(1)); !ok || tier != serve.TierMem || !strings.Contains(string(body), "hot") {
		t.Fatalf("evicted-from-disk entry: ok=%v tier=%s body=%s", ok, tier, body)
	}
	// After a restart it is genuinely gone.
	st2, err := serve.NewStore(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := st2.Get(fp(1)); ok {
		t.Fatal("disk-evicted entry survived a restart")
	}
}

func TestStoreTempFilesInvisible(t *testing.T) {
	dir := t.TempDir()
	st, err := serve.NewStore(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	// A leftover temp file from a crashed write is not a disk entry.
	if err := os.WriteFile(filepath.Join(dir, ".tmp-123"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(fp(1), validBody("x")); err != nil {
		t.Fatal(err)
	}
	if n, err := st.DiskLen(); err != nil || n != 1 {
		t.Fatalf("disk entries = %d (%v), want 1 (temp file counted?)", n, err)
	}
}
