package serve_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pubtac"
	"pubtac/internal/serve"
)

// validBody returns a minimal body the store accepts, distinguishable by tag.
func validBody(tag string) []byte {
	return []byte(fmt.Sprintf(`{"schema_version": %d, "jobs": [], "tag": %q}`,
		pubtac.ResultSchemaVersion, tag))
}

func fp(b byte) pubtac.Fingerprint {
	var f pubtac.Fingerprint
	f[0] = b
	return f
}

func TestStoreRoundTripAndRestart(t *testing.T) {
	dir := t.TempDir()
	st, err := serve.NewStore(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	key, body := fp(1), validBody("a")
	if _, _, ok := st.Get(key); ok {
		t.Fatal("hit on an empty store")
	}
	if err := st.Put(key, body); err != nil {
		t.Fatal(err)
	}
	got, tier, ok := st.Get(key)
	if !ok || tier != serve.TierMem || string(got) != string(body) {
		t.Fatalf("after Put: ok=%v tier=%s body=%s", ok, tier, got)
	}
	if n, err := st.DiskLen(); err != nil || n != 1 {
		t.Fatalf("disk entries = %d (%v), want 1", n, err)
	}

	// A fresh store over the same directory — the restart path — serves the
	// entry from disk on first touch, then from memory.
	st2, err := serve.NewStore(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, tier, ok = st2.Get(key)
	if !ok || tier != serve.TierDisk || string(got) != string(body) {
		t.Fatalf("after restart: ok=%v tier=%s body=%s", ok, tier, got)
	}
	if _, tier, _ = st2.Get(key); tier != serve.TierMem {
		t.Fatalf("second Get after restart served from %s, want promotion to mem", tier)
	}
}

func TestStoreLRUEvictionFallsBackToDisk(t *testing.T) {
	st, err := serve.NewStore(t.TempDir(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(fp(1), validBody("one")); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(fp(2), validBody("two")); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 1 {
		t.Fatalf("memory tier holds %d entries past cap 1", st.Len())
	}
	if st.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Stats().Evictions)
	}
	// The evicted entry is still served — from disk — and promoted back,
	// evicting the other in turn.
	body, tier, ok := st.Get(fp(1))
	if !ok || tier != serve.TierDisk || !strings.Contains(string(body), "one") {
		t.Fatalf("evicted entry: ok=%v tier=%s body=%s", ok, tier, body)
	}
	if _, tier, _ := st.Get(fp(1)); tier != serve.TierMem {
		t.Fatalf("promotion after disk hit served from %s", tier)
	}
}

// TestStoreCorruptEntriesAreMisses: a crash mid-write leaves either a temp
// file (never visible to Get) or, on filesystems without atomic semantics, a
// torn entry. Both must read as cache misses, never errors.
func TestStoreCorruptEntriesAreMisses(t *testing.T) {
	dir := t.TempDir()
	st, err := serve.NewStore(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	full := validBody("victim")
	if err := st.Put(fp(1), full); err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("entries = %v (%v)", entries, err)
	}
	// Simulate the torn write: truncate the entry mid-document.
	if err := os.WriteFile(entries[0], full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := serve.NewStore(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := st2.Get(fp(1)); ok {
		t.Fatal("truncated entry served as a hit")
	}
	if s := st2.Stats(); s.Corrupt != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v, want Corrupt=1 Misses=1", s)
	}
	// Recomputation overwrites the torn entry and it serves again.
	if err := st2.Put(fp(1), full); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := st2.Get(fp(1)); !ok {
		t.Fatal("rewritten entry not served")
	}
}

func TestStoreRejectsForeignSchema(t *testing.T) {
	dir := t.TempDir()
	st, err := serve.NewStore(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Put refuses bytes the load path would reject.
	foreign := []byte(fmt.Sprintf(`{"schema_version": %d, "jobs": []}`, pubtac.ResultSchemaVersion+1))
	if err := st.Put(fp(1), foreign); err == nil {
		t.Fatal("Put accepted a foreign schema version")
	}
	if err := st.Put(fp(1), []byte(`{"jobs": []}`)); err == nil {
		t.Fatal("Put accepted a document without schema_version")
	}
	// An on-disk entry from another build (schema bumped under the store)
	// reads as a miss.
	name := filepath.Join(dir, fp(1).String()+".json")
	if err := os.WriteFile(name, foreign, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := st.Get(fp(1)); ok {
		t.Fatal("foreign-schema entry served as a hit")
	}
	if st.Stats().Corrupt != 1 {
		t.Fatalf("corrupt = %d, want 1", st.Stats().Corrupt)
	}
}

func TestStoreTempFilesInvisible(t *testing.T) {
	dir := t.TempDir()
	st, err := serve.NewStore(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	// A leftover temp file from a crashed write is not a disk entry.
	if err := os.WriteFile(filepath.Join(dir, ".tmp-123"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(fp(1), validBody("x")); err != nil {
		t.Fatal(err)
	}
	if n, err := st.DiskLen(); err != nil || n != 1 {
		t.Fatalf("disk entries = %d (%v), want 1 (temp file counted?)", n, err)
	}
}
