package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"pubtac"
	"pubtac/client"
	"pubtac/internal/fault"
	"pubtac/internal/mbpta"
	"pubtac/internal/serve"
)

// shardRoot derives the root seed a daemon expects for a program/input pair.
func shardRoot(cfg pubtac.Config, prog, input string) uint64 {
	return mbpta.Seed(prog+"/"+input) ^ cfg.SeedSalt
}

// newDaemon builds a daemon over a fresh store with the given session
// options, letting mod adjust the serve options (peers, chaos transport...).
func newDaemon(t *testing.T, sopts []pubtac.Option, mod func(*serve.Options)) (*serve.Server, *httptest.Server) {
	t.Helper()
	store, err := serve.NewStore(t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	o := serve.Options{Store: store, SessionOptions: sopts}
	if mod != nil {
		mod(&o)
	}
	srv, err := serve.New(o)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// newStraggler serves a worker that accepts every shard and never answers:
// the pathological peer only hedging or attempt timeouts can route around.
func newStraggler(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body) // consume so the server watches the conn
		<-r.Context().Done()        // hang until the coordinator cancels us
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestChaosCoordinatorBitIdentical is the robustness acceptance oracle: a
// coordinator sharding over healthy workers AND a permanently straggling
// one, with seeded faults (connection drops, injected 5xx, corrupt and
// truncated shard summaries) on every outbound peer call, still produces a
// result body byte-identical to a standalone daemon's — in both the full
// and the streaming estimation modes, at more than one worker count — and
// hedged dispatch demonstrably rescues at least one shard from the
// straggler.
func TestChaosCoordinatorBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos oracle: full campaigns under fault injection, not a -short test")
	}
	modes := []struct {
		name  string
		extra []pubtac.Option
	}{
		{"full", nil},
		{"streaming", []pubtac.Option{pubtac.WithStreamingEstimation(0)}},
	}
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			sopts := append(append([]pubtac.Option(nil), smallOpts()...), mode.extra...)

			_, plainTS := newDaemon(t, sopts, nil)
			_, w1TS := newDaemon(t, sopts, nil)
			_, w2TS := newDaemon(t, sopts, nil)
			straggler := newStraggler(t)

			ctx := context.Background()
			req := client.AnalyzeRequest{Bench: "bs"}
			plain, _, err := client.New(plainTS.URL).AnalyzeRaw(ctx, req)
			if err != nil {
				t.Fatal(err)
			}

			// Two topologies: every shard dispatch rides the same seeded
			// fault schedule, and the straggler is always in the peer set.
			topologies := []struct {
				name   string
				peers  []string
				shards int
			}{
				{"3-peers", []string{w1TS.URL, w2TS.URL, straggler.URL}, 3},
				{"2-peers", []string{w1TS.URL, straggler.URL}, 5},
			}
			var hedgeWins, faults uint64
			for _, topo := range topologies {
				inj := fault.New(fault.Spec{
					Seed:     0xC7A05,
					Drop:     120,
					Fail:     100,
					Corrupt:  90,
					Truncate: 70,
				})
				coord, coordTS := newDaemon(t, sopts, func(o *serve.Options) {
					o.Peers = topo.peers
					o.Shards = topo.shards
					o.PeerRetry = 4
					o.HedgeDelay = 3 * time.Millisecond
					o.PeerTransport = inj.RoundTripper(nil, nil)
				})
				sharded, _, err := client.New(coordTS.URL).AnalyzeRaw(ctx, req)
				if err != nil {
					t.Fatalf("%s: %v", topo.name, err)
				}
				if !bytes.Equal(plain, sharded) {
					t.Fatalf("%s: chaos-sharded result differs from the standalone daemon's bytes", topo.name)
				}
				st := coord.Stats()
				if st.Fabric == nil {
					t.Fatalf("%s: coordinator statusz carries no fabric section", topo.name)
				}
				hedgeWins += st.Fabric.HedgeWins
				for kind, n := range inj.Counts() {
					if kind != fault.None {
						faults += n
					}
				}
			}
			if hedgeWins == 0 {
				t.Error("no hedged dispatch won a single shard despite a permanent straggler in every topology")
			}
			if faults == 0 {
				t.Error("the fault injector never fired — the oracle proved nothing")
			}
		})
	}
}

// TestChaosScheduleReproducible: two coordinators configured with the same
// fault seed over the same topology see the same injection schedule — the
// property that makes a chaos failure replayable.
func TestChaosScheduleReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full campaigns; not a -short test")
	}
	sopts := smallOpts()
	_, wTS := newDaemon(t, sopts, nil)

	run := func() []fault.Event {
		inj := fault.New(fault.Spec{Seed: 99, Drop: 150, Fail: 120})
		_, coordTS := newDaemon(t, sopts, func(o *serve.Options) {
			o.Peers = []string{wTS.URL}
			o.Shards = 2
			o.PeerRetry = 5
			o.PeerTransport = inj.RoundTripper(nil, nil)
		})
		if _, _, err := client.New(coordTS.URL).AnalyzeRaw(context.Background(), client.AnalyzeRequest{Bench: "bs"}); err != nil {
			t.Fatal(err)
		}
		return inj.Schedule()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no faults recorded")
	}
	if len(a) != len(b) {
		t.Fatalf("schedules diverge in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule event %d diverges: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestShardLoadShedding: a saturated worker answers 429 + Retry-After
// immediately instead of queuing, counts the shed in statusz, and serves
// again once the slot frees. One big shard occupies the single slot while
// small probes poke at it; both sides retry on 429, so the test converges
// under any goroutine scheduling instead of racing N posts and hoping
// they overlap.
func TestShardLoadShedding(t *testing.T) {
	store, err := serve.NewStore(t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(serve.Options{Store: store, SessionOptions: smallOpts(), MaxJobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()

	cfg := pubtac.NewSession(smallOpts()...).Config()
	spec := pubtac.ShardSpec{
		Config:  srv.ConfigFingerprint().String(),
		Program: "bs",
		Input:   "default",
		Root:    shardRoot(cfg, "bs", "default"),
	}
	// post runs on both the test goroutine and the occupier's, so it may
	// only t.Error (never FailNow): errors surface as status 0, which every
	// caller rejects.
	post := func(lo, hi int) (int, string) {
		sp := spec
		sp.Lo, sp.Hi = lo, hi
		buf, err := json.Marshal(sp)
		if err != nil {
			t.Error(err)
			return 0, ""
		}
		resp, err := http.Post(ts.URL+"/v1/shards", "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Error(err)
			return 0, ""
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, resp.Header.Get("Retry-After")
	}

	// The occupier: a shard big enough to hold the slot for a long, visible
	// window. A probe that momentarily held the slot can shed it, so it
	// retries until it lands.
	const bigRuns = 1 << 21
	type outcome struct {
		code  int
		sheds int
	}
	done := make(chan outcome, 1)
	go func() {
		var o outcome
		for {
			o.code, _ = post(0, bigRuns)
			if o.code != http.StatusTooManyRequests {
				done <- o
				return
			}
			o.sheds++
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Probe with tiny shards until one is shed off the occupied slot. If
	// the big shard somehow completes first the loop ends with its result
	// and the test fails loudly rather than hanging.
	probeSheds := 0
probing:
	for {
		select {
		case o := <-done:
			done <- o
			break probing
		default:
		}
		code, retryAfter := post(0, 64)
		switch code {
		case http.StatusTooManyRequests:
			probeSheds++
			if retryAfter == "" {
				t.Error("429 without Retry-After")
			}
			break probing
		case http.StatusOK: // slot was free; poke again
		default:
			t.Fatalf("probe: unexpected status %d", code)
		}
	}
	if probeSheds == 0 {
		t.Fatal("big shard completed before any probe was shed")
	}

	o := <-done
	if o.code != http.StatusOK {
		t.Fatalf("big shard final status %d, want 200", o.code)
	}
	// The slot is free again: shedding degraded latency, not service.
	if code, _ := post(0, 64); code != http.StatusOK {
		t.Fatalf("post after slot freed: status %d, want 200", code)
	}
	if st := srv.Stats(); st.Sheds != uint64(probeSheds+o.sheds) {
		t.Errorf("statusz sheds = %d, want %d", st.Sheds, probeSheds+o.sheds)
	}
}

// TestShardDeadline: a worker with a shard deadline fails over-budget
// shards with 503 — retryable, so the coordinator's fabric or local
// fallback owns the range — instead of pinning a slot indefinitely.
func TestShardDeadline(t *testing.T) {
	store, err := serve.NewStore(t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(serve.Options{
		Store:          store,
		SessionOptions: smallOpts(),
		ShardDeadline:  time.Nanosecond, // every shard is over budget
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()

	cfg := pubtac.NewSession(smallOpts()...).Config()
	spec := pubtac.ShardSpec{
		Config:  srv.ConfigFingerprint().String(),
		Program: "bs",
		Input:   "default",
		Root:    shardRoot(cfg, "bs", "default"),
		Lo:      0,
		Hi:      500,
	}
	resp, body := postShard(t, ts.URL, spec)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d (%s), want 503 from the shard deadline", resp.StatusCode, bytes.TrimSpace(body))
	}
}
