// Package serve implements the analysis service behind cmd/pubtacd: a
// content-addressed, persistent result store (this file) and an HTTP job
// layer over the Session API (server.go).
//
// The store exists because the pipeline is a deterministic function of
// (program IR, configuration, seed) — pubtac.AnalysisKey addresses the full
// content of a batch response, so a result computed once is correct forever
// (until the result schema version changes, which rotates every key). Two
// tiers back that up:
//
//   - an in-memory LRU bounded in entries, serving hot keys without I/O;
//   - a per-item on-disk tier, one file per key, written atomically
//     (temp file + fsync + rename) so a crash mid-write never corrupts an
//     existing entry and a truncated new entry is skipped on load, not
//     fatal.
//
// The disk tier is what makes daemon instances survive eviction and
// restart: environments that stop and reschedule instances (the sfcache
// Cloud Run/Kubernetes argument) lose the memory tier but keep the volume,
// and the next instance serves the same keys from disk on first touch.
package serve

import (
	"container/list"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"pubtac"
)

// Tier names where a store hit was served from.
const (
	TierMem  = "mem"
	TierDisk = "disk"
)

// StoreStats counts store traffic since construction.
type StoreStats struct {
	MemHits   uint64 `json:"mem_hits"`
	DiskHits  uint64 `json:"disk_hits"`
	Misses    uint64 `json:"misses"`
	Writes    uint64 `json:"writes"`
	Evictions uint64 `json:"evictions"` // memory-tier evictions (entries stay on disk)
	Corrupt   uint64 `json:"corrupt"`   // unreadable/mismatched disk entries skipped
	// DiskEvictions counts disk-tier entries removed to stay under the
	// byte quota (SetDiskQuota); evicted keys are recomputed on next touch,
	// exactly like corrupt entries.
	DiskEvictions uint64 `json:"disk_evictions"`
	// WriteErrors counts failed disk-tier writes (ENOSPC, short writes,
	// ...). A failed Put degrades the entry to memory-only — it serves
	// until evicted or restart, then recomputes — and never corrupts the
	// disk tier, which only ever gains entries by atomic rename.
	WriteErrors uint64 `json:"write_errors"`
}

// Store is the two-tier content-addressed result store. All methods are safe
// for concurrent use.
type Store struct {
	dir string
	cap int

	mu    sync.Mutex
	mem   map[pubtac.Fingerprint]*list.Element
	lru   *list.List // front = most recently used
	stats StoreStats

	// Disk-tier byte quota (0 = unbounded). diskOrder tracks entries
	// oldest-write-first; eviction removes from the front. The memory tier
	// is deliberately untouched by disk eviction — a hot entry keeps
	// serving from memory even after its disk copy was reclaimed, it just
	// no longer survives a restart.
	quota     int64
	diskBytes int64
	diskOrder []diskEnt

	// writeHook, when set, wraps the temp-file writer of every disk write
	// (SetWriteHook); the fault injector simulates full volumes and
	// short-writing filesystems through it.
	writeHook func(io.Writer) io.Writer
}

// diskEnt is one disk-tier entry in the eviction queue.
type diskEnt struct {
	key  pubtac.Fingerprint
	size int64
}

type memEntry struct {
	key  pubtac.Fingerprint
	body []byte
}

// NewStore opens (creating if needed) a store rooted at dir, holding up to
// memEntries response bodies in memory (0 selects a default of 256). The
// disk tier is unbounded; entries are a few KB each.
func NewStore(dir string, memEntries int) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("serve: store dir must be set")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: store dir: %w", err)
	}
	if memEntries <= 0 {
		memEntries = 256
	}
	return &Store{
		dir: dir,
		cap: memEntries,
		mem: make(map[pubtac.Fingerprint]*list.Element),
		lru: list.New(),
	}, nil
}

// Dir returns the store's on-disk root.
func (s *Store) Dir() string { return s.dir }

// SetDiskQuota bounds the disk tier to quota bytes of entry bodies
// (0 disables the bound). It scans the existing tier — oldest modification
// time first, ties broken by name — seeds the eviction queue, and evicts
// immediately if the tier is already over quota. Subsequent Puts evict the
// oldest entries as needed; the newest entry is always kept, even when it
// alone exceeds the quota (a store that rejects the result it just computed
// would turn every request into a recompute).
func (s *Store) SetDiskQuota(quota int64) error {
	type scanned struct {
		ent  diskEnt
		mod  int64
		name string
	}
	var found []scanned
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("serve: disk quota scan: %w", err)
	}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, entryExt) || strings.HasPrefix(name, tmpPrefix) {
			continue
		}
		key, err := pubtac.ParseFingerprint(strings.TrimSuffix(name, entryExt))
		if err != nil {
			continue // foreign file; never managed, never evicted
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		found = append(found, scanned{
			ent:  diskEnt{key: key, size: info.Size()},
			mod:  info.ModTime().UnixNano(),
			name: name,
		})
	}
	sort.Slice(found, func(i, j int) bool {
		if found[i].mod != found[j].mod {
			return found[i].mod < found[j].mod
		}
		return found[i].name < found[j].name
	})

	s.mu.Lock()
	defer s.mu.Unlock()
	s.quota = quota
	s.diskOrder = s.diskOrder[:0]
	s.diskBytes = 0
	for _, f := range found {
		s.diskOrder = append(s.diskOrder, f.ent)
		s.diskBytes += f.ent.size
	}
	s.evictDiskLocked()
	return nil
}

// noteWriteLocked records a disk write of size bytes under key in the
// eviction queue (moving a rewritten key to the newest slot) and evicts past
// the quota. Callers hold s.mu; a no-op while no quota is set.
func (s *Store) noteWriteLocked(key pubtac.Fingerprint, size int64) {
	if s.quota <= 0 {
		return
	}
	for i, ent := range s.diskOrder {
		if ent.key == key {
			s.diskBytes -= ent.size
			s.diskOrder = append(s.diskOrder[:i], s.diskOrder[i+1:]...)
			break
		}
	}
	s.diskOrder = append(s.diskOrder, diskEnt{key: key, size: size})
	s.diskBytes += size
	s.evictDiskLocked()
}

// evictDiskLocked removes oldest-written disk entries until the tier fits
// the quota, always keeping at least the newest entry. Callers hold s.mu.
func (s *Store) evictDiskLocked() {
	for s.quota > 0 && s.diskBytes > s.quota && len(s.diskOrder) > 1 {
		ent := s.diskOrder[0]
		s.diskOrder = s.diskOrder[1:]
		s.diskBytes -= ent.size
		if err := os.Remove(s.path(ent.key)); err != nil && !os.IsNotExist(err) {
			continue // the bytes are still gone from our accounting; recount on next SetDiskQuota
		}
		s.stats.DiskEvictions++
	}
}

// Stats returns a snapshot of the store counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Get returns the stored body for key and the tier that served it. A miss —
// including a disk entry that is truncated, unparseable or carries a foreign
// schema version — returns ok=false; corruption is counted, never fatal
// (the entry is simply recomputed and rewritten).
func (s *Store) Get(key pubtac.Fingerprint) (body []byte, tier string, ok bool) {
	s.mu.Lock()
	if el, hit := s.mem[key]; hit {
		s.lru.MoveToFront(el)
		body = el.Value.(*memEntry).body
		s.stats.MemHits++
		s.mu.Unlock()
		return body, TierMem, true
	}
	s.mu.Unlock()

	body, err := os.ReadFile(s.path(key))
	if err == nil {
		err = checkBody(body)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		if !os.IsNotExist(err) {
			s.stats.Corrupt++
		}
		s.stats.Misses++
		return nil, "", false
	}
	s.insertLocked(key, body)
	s.stats.DiskHits++
	return body, TierDisk, true
}

// Put stores body under key in both tiers. The disk write is atomic: the
// body lands in a temp file in the store directory, is fsync'd, and only
// then renamed over the final name — a crash at any point leaves either the
// complete old entry or no entry, never a torn one. Put validates the body
// the same way Get does, refusing to persist bytes the load path would
// reject.
//
// A failed disk write (full volume, short write) degrades gracefully: the
// error is counted and returned, but the entry still lands in the memory
// tier — it keeps serving until eviction or restart, at which point the key
// is a plain miss and recomputes. The disk tier is never corrupted: entries
// only appear there via rename of a fully-written, fsync'd temp file.
func (s *Store) Put(key pubtac.Fingerprint, body []byte) error {
	if err := checkBody(body); err != nil {
		return fmt.Errorf("serve: refusing to store %s: %w", key, err)
	}
	werr := s.writeAtomic(key, body)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.insertLocked(key, body)
	if werr != nil {
		s.stats.WriteErrors++
		return werr
	}
	s.noteWriteLocked(key, int64(len(body)))
	s.stats.Writes++
	return nil
}

// SetWriteHook installs (or, with nil, clears) a wrapper around the
// temp-file writer of every subsequent disk write. It exists for fault
// injection — internal/fault's Writer simulates ENOSPC and short-writing
// filesystems — so the degradation path above is testable without a real
// full volume.
func (s *Store) SetWriteHook(hook func(io.Writer) io.Writer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.writeHook = hook
}

// Len returns the number of entries currently held in the memory tier.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.mem)
}

// DiskLen returns the number of well-named entries in the disk tier.
func (s *Store) DiskLen() (int, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), entryExt) && !strings.HasPrefix(e.Name(), tmpPrefix) {
			n++
		}
	}
	return n, nil
}

const (
	entryExt  = ".json"
	tmpPrefix = ".tmp-"
)

// path returns the disk location of key: one file per content hash.
func (s *Store) path(key pubtac.Fingerprint) string {
	return filepath.Join(s.dir, key.String()+entryExt)
}

// insertLocked puts body into the memory tier, evicting from the LRU tail
// past capacity. Callers hold s.mu.
func (s *Store) insertLocked(key pubtac.Fingerprint, body []byte) {
	if el, ok := s.mem[key]; ok {
		el.Value.(*memEntry).body = body
		s.lru.MoveToFront(el)
		return
	}
	s.mem[key] = s.lru.PushFront(&memEntry{key: key, body: body})
	for s.lru.Len() > s.cap {
		tail := s.lru.Back()
		ent := tail.Value.(*memEntry)
		s.lru.Remove(tail)
		delete(s.mem, ent.key)
		s.stats.Evictions++
	}
}

// writeAtomic lands body at the key's final path via temp file + fsync +
// rename, fsyncing the directory afterwards so the rename itself survives a
// crash.
func (s *Store) writeAtomic(key pubtac.Fingerprint, body []byte) error {
	tmp, err := os.CreateTemp(s.dir, tmpPrefix+"*")
	if err != nil {
		return fmt.Errorf("serve: store write: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	var w io.Writer = tmp
	s.mu.Lock()
	if s.writeHook != nil {
		w = s.writeHook(tmp)
	}
	s.mu.Unlock()
	// Write errors AND short writes abort the entry before rename: a
	// filesystem that reports n < len(body) with a nil error (they exist)
	// must not get its truncated bytes promoted to a real entry.
	n, err := w.Write(body)
	if err == nil && n < len(body) {
		err = io.ErrShortWrite
	}
	if err != nil {
		tmp.Close()
		return fmt.Errorf("serve: store write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("serve: store fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("serve: store close: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		return fmt.Errorf("serve: store rename: %w", err)
	}
	if d, err := os.Open(s.dir); err == nil {
		// Directory fsync is best-effort: some filesystems refuse it, and
		// the entry itself is already durable.
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// checkBody validates a response body the way every consumer will: it must
// be a JSON object stamped with this build's result schema version. A
// truncated file fails the JSON parse; an entry from an older or newer build
// fails the version check. Both are treated as cache misses by Get.
func checkBody(body []byte) error {
	var env struct {
		SchemaVersion *int `json:"schema_version"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		return fmt.Errorf("not a complete JSON document: %v", err)
	}
	if env.SchemaVersion == nil {
		return fmt.Errorf("document carries no schema_version")
	}
	return pubtac.CheckSchemaVersion(*env.SchemaVersion)
}
