package malardalen

import "pubtac/internal/program"

// cntDim is the matrix dimension of the cnt benchmark.
const cntDim = 10

// CNT builds the "count negative/positive numbers in a matrix" benchmark:
// a doubly-nested scan of a 10x10 matrix where every element takes one of
// two branches depending on its sign. The path through the program is
// decided element-by-element by the input matrix; both branches perform the
// same amount of work on different accumulator variables, so the default
// (mixed-sign) input already exercises worst-case timing behaviour.
func CNT() *Benchmark {
	mat := &program.Symbol{Name: "mat", ElemBytes: 4, Len: cntDim * cntDim}
	stack := &program.Symbol{Name: "stack", ElemBytes: 4, Len: 8}

	// Stack slots: 0=postotal 1=poscnt 2=negtotal 3=negcnt 4=i 5=j.
	idx := func(s *program.State) int64 { return s.Int("i")*cntDim + s.Int("j") }

	setup := blk("setup", 6,
		accs(ivar("postotal", 0), ivar("poscnt", 1), ivar("negtotal", 2), ivar("negcnt", 3)),
		func(s *program.State) {
			s.SetInt("postotal", 0)
			s.SetInt("poscnt", 0)
			s.SetInt("negtotal", 0)
			s.SetInt("negcnt", 0)
			s.SetInt("i", 0)
		})

	load := blk("load", 7, accs(
		ivar("i", 4), ivar("j", 5),
		program.Elem("mat[i][j]", "mat", idx),
	), nil)

	pos := blk("pos", 6, accs(
		program.Elem("mat[i][j]", "mat", idx),
		ivar("postotal", 0), ivar("poscnt", 1),
	), func(s *program.State) {
		s.SetInt("postotal", s.Int("postotal")+s.Arr("mat")[idx(s)])
		s.SetInt("poscnt", s.Int("poscnt")+1)
	})

	neg := blk("neg", 6, accs(
		program.Elem("mat[i][j]", "mat", idx),
		ivar("negtotal", 2), ivar("negcnt", 3),
	), func(s *program.State) {
		s.SetInt("negtotal", s.Int("negtotal")+s.Arr("mat")[idx(s)])
		s.SetInt("negcnt", s.Int("negcnt")+1)
	})

	inner := counted("col", blk("colh", 3, accs(ivar("j", 5)), nil), cntDim,
		&program.Seq{Nodes: []program.Node{
			load,
			&program.If{
				Label: "sign",
				Cond:  func(s *program.State) bool { return s.Arr("mat")[idx(s)] >= 0 },
				Then:  pos,
				Else:  neg,
			},
			blk("jinc", 2, nil, func(s *program.State) { s.SetInt("j", s.Int("j")+1) }),
		}})

	outer := counted("row", blk("rowh", 3, accs(ivar("i", 4)), nil), cntDim,
		&program.Seq{Nodes: []program.Node{
			blk("jzero", 1, nil, func(s *program.State) { s.SetInt("j", 0) }),
			inner,
			blk("iinc", 2, nil, func(s *program.State) { s.SetInt("i", s.Int("i")+1) }),
		}})

	finish := blk("finish", 5, accs(ivar("postotal", 0), ivar("negtotal", 2)), nil)

	p := program.New("cnt", &program.Seq{Nodes: []program.Node{setup, outer, finish}},
		mat, stack)
	p.MustLink()

	// Default input: the original seeds a PRNG producing mixed signs; use a
	// deterministic alternating-sign fill with varying magnitudes.
	def := make([]int64, cntDim*cntDim)
	for i := range def {
		v := int64(i*37%100 + 1)
		if i%2 == 1 {
			v = -v
		}
		def[i] = v
	}
	allPos := make([]int64, cntDim*cntDim)
	allNeg := make([]int64, cntDim*cntDim)
	for i := range allPos {
		allPos[i] = int64(i + 1)
		allNeg[i] = -int64(i + 1)
	}

	return &Benchmark{
		Name:    "cnt",
		Program: p,
		Inputs: []program.Input{
			{Name: "default", Arrays: map[string][]int64{"mat": def}},
			{Name: "allpos", Arrays: map[string][]int64{"mat": allPos}},
			{Name: "allneg", Arrays: map[string][]int64{"mat": allNeg}},
		},
		MultiPath:  true,
		WorstKnown: true,
	}
}
