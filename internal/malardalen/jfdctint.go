package malardalen

import "pubtac/internal/program"

// JFDCTInt builds the JPEG integer forward discrete cosine transform over
// one 8x8 block: a row pass, a column pass (stride-8 accesses spreading over
// all 8 lines of the block) and a descaling pass. Fixed bounds, single path.
func JFDCTInt() *Benchmark {
	blkSym := &program.Symbol{Name: "block", ElemBytes: 4, Len: 64}
	stack := &program.Symbol{Name: "stack", ElemBytes: 4, Len: 4}

	// Stack slots: 0=i 1=j.
	rowAt := func(j int64) func(*program.State) int64 {
		return func(s *program.State) int64 { return s.Int("i")*8 + j }
	}
	colAt := func(j int64) func(*program.State) int64 {
		return func(s *program.State) int64 { return j*8 + s.Int("i") }
	}

	rowAccs := make([]*program.Acc, 0, 8)
	colAccs := make([]*program.Acc, 0, 8)
	for j := int64(0); j < 8; j++ {
		rowAccs = append(rowAccs, program.Elem("row+"+string(rune('0'+j)), "block", rowAt(j)))
		colAccs = append(colAccs, program.Elem("col+"+string(rune('0'+j)), "block", colAt(j)))
	}

	butterfly := func(kind string) func(*program.State) {
		return func(s *program.State) {
			i := s.Int("i")
			arr := s.Arr("block")
			base := i * 8
			stride := int64(1)
			if kind == "col" {
				base = i
				stride = 8
			}
			for k := int64(0); k < 4; k++ {
				lo, hi := base+k*stride, base+(7-k)*stride
				if lo >= 0 && hi < 64 {
					sum := arr[lo] + arr[hi]
					diff := arr[lo] - arr[hi]
					arr[lo], arr[hi] = sum, diff/2
				}
			}
			s.SetInt("i", i+1)
		}
	}

	rowPass := counted("rows", blk("rowh", 4, accs(ivar("i", 0)), nil), 8,
		blk("rowb", 22, rowAccs, butterfly("row")))

	colPass := counted("cols", blk("colh", 4, accs(ivar("i", 0)), nil), 8,
		blk("colb", 22, colAccs, butterfly("col")))

	descale := counted("descale", blk("dsh", 3, accs(ivar("j", 1)), nil), 64,
		blk("dsb", 5, accs(
			program.Elem("block[j]", "block", func(s *program.State) int64 { return s.Int("j") }),
		), func(s *program.State) {
			j := s.Int("j")
			s.Arr("block")[j] /= 8
			s.SetInt("j", j+1)
		}))

	zeroI := blk("zi", 2, nil, func(s *program.State) { s.SetInt("i", 0) })
	zeroI2 := blk("zi2", 2, nil, func(s *program.State) { s.SetInt("i", 0); s.SetInt("j", 0) })

	p := program.New("jfdctint", &program.Seq{Nodes: []program.Node{
		zeroI, rowPass, program.Clone(zeroI2).(*program.Block), colPass,
		blk("zj", 2, nil, func(s *program.State) { s.SetInt("j", 0) }), descale,
	}}, blkSym, stack)
	p.MustLink()

	px := make([]int64, 64)
	for i := range px {
		px[i] = int64((i*29)%255 - 128)
	}
	return &Benchmark{
		Name:    "jfdctint",
		Program: p,
		Inputs: []program.Input{{
			Name:   "default",
			Arrays: map[string][]int64{"block": px},
		}},
		MultiPath:  false,
		WorstKnown: true,
	}
}
