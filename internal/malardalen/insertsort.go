package malardalen

import "pubtac/internal/program"

const sortLen = 10

// InsertSort builds the insertion-sort benchmark over 10 elements. The
// inner while loop's trip count is data-dependent, but the suite's default
// input is the reverse-sorted array — the worst case, giving the maximal
// (and fixed) path. Following the paper's classification it is treated as
// single-path under its default input.
func InsertSort() *Benchmark {
	a := &program.Symbol{Name: "a", ElemBytes: 4, Len: sortLen}
	stack := &program.Symbol{Name: "stack", ElemBytes: 4, Len: 4}

	// Stack slots: 0=i 1=j.
	setup := blk("setup", 4, accs(ivar("i", 0)),
		func(s *program.State) { s.SetInt("i", 1) })

	inner := &program.While{
		Label: "shift",
		Head: blk("cmp", 6, accs(
			ivar("j", 1),
			program.Elem("a[j-1]", "a", func(s *program.State) int64 { return s.Int("j") - 1 }),
			program.Elem("a[j]", "a", func(s *program.State) int64 { return s.Int("j") }),
		), nil),
		Cond: func(s *program.State) bool {
			j := s.Int("j")
			return j > 0 && s.Arr("a")[j-1] > s.Arr("a")[j]
		},
		MaxBound: sortLen,
		Body: blk("swap", 8, accs(
			program.Elem("a[j-1]", "a", func(s *program.State) int64 { return s.Int("j") - 1 }),
			program.Elem("a[j]", "a", func(s *program.State) int64 { return s.Int("j") }),
			ivar("j", 1),
		), func(s *program.State) {
			j := s.Int("j")
			arr := s.Arr("a")
			arr[j-1], arr[j] = arr[j], arr[j-1]
			s.SetInt("j", j-1)
		}),
	}

	outer := counted("pass", blk("passh", 3, accs(ivar("i", 0)), nil), sortLen-1,
		&program.Seq{Nodes: []program.Node{
			blk("pick", 4, accs(ivar("i", 0), ivar("j", 1)),
				func(s *program.State) { s.SetInt("j", s.Int("i")) }),
			inner,
			blk("next", 2, nil,
				func(s *program.State) { s.SetInt("i", s.Int("i")+1) }),
		}})

	p := program.New("insertsort", &program.Seq{Nodes: []program.Node{setup, outer}},
		a, stack)
	p.MustLink()

	// Default input: reverse-sorted (the suite's worst case).
	rev := make([]int64, sortLen)
	for i := range rev {
		rev[i] = int64(sortLen - i)
	}
	sorted := make([]int64, sortLen)
	for i := range sorted {
		sorted[i] = int64(i)
	}
	return &Benchmark{
		Name:    "insertsort",
		Program: p,
		Inputs: []program.Input{
			{Name: "default", Arrays: map[string][]int64{"a": rev}},
			{Name: "sorted", Arrays: map[string][]int64{"a": sorted}},
		},
		MultiPath:  false,
		WorstKnown: true,
	}
}
