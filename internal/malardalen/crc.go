package malardalen

import "pubtac/internal/program"

const (
	crcMsgLen = 40   // message bytes processed
	crcPoly   = 0x31 // CRC-8 polynomial (x^8+x^5+x^4+1), low byte
)

// CRC builds the cyclic-redundancy-check benchmark: a bitwise CRC over a
// 40-byte message with a table lookup per byte. The xor-reduction branch is
// taken only when the shifted-out bit is set, so the path through the 320
// bit steps — and the amount of work — depends on the message content.
//
// This is the paper's example of a multipath program whose worst-case path
// is NOT triggered by the default input: the default message is sparse
// (mostly zero bytes), keeping the accumulator empty and the reduction
// branch almost never taken, while adversarial messages take it
// continuously (Section 4.2 reports a 4.4x pWCET increase when PUB accounts
// for those unobserved paths).
func CRC() *Benchmark {
	msg := &program.Symbol{Name: "msg", ElemBytes: 1, Len: crcMsgLen}
	tbl := &program.Symbol{Name: "crctab", ElemBytes: 1, Len: 256}
	stack := &program.Symbol{Name: "stack", ElemBytes: 4, Len: 8}

	// Stack slots: 0=i 1=bit 2=acc 3=ch.
	setup := blk("setup", 6, accs(ivar("acc", 2), ivar("i", 0)),
		func(s *program.State) {
			s.SetInt("acc", 0)
			s.SetInt("i", 0)
		})

	loadByte := blk("loadbyte", 6, accs(
		program.Elem("msg[i]", "msg", func(s *program.State) int64 { return s.Int("i") }),
		ivar("ch", 3), ivar("bit", 1),
	), func(s *program.State) {
		s.SetInt("ch", s.Arr("msg")[s.Int("i")])
		s.SetInt("acc", s.Int("acc")^s.Int("ch"))
		s.SetInt("bit", 0)
	})

	// The heavy branch: shift and xor with the polynomial, then two table
	// touches keyed by the accumulator (data-dependent addresses). This is
	// the work the default (sparse) input almost never performs.
	reduce := blk("reduce", 16, accs(
		ivar("acc", 2),
		program.Elem("crctab[acc]", "crctab", func(s *program.State) int64 { return s.Int("acc") & 0xFF }),
		program.Elem("crctab[acc^poly]", "crctab", func(s *program.State) int64 {
			return (s.Int("acc") ^ crcPoly) & 0xFF
		}),
	), func(s *program.State) {
		s.SetInt("acc", ((s.Int("acc")<<1)^crcPoly)&0xFF)
	})

	shift := blk("shift", 3, accs(ivar("acc", 2)), func(s *program.State) {
		s.SetInt("acc", (s.Int("acc")<<1)&0xFF)
	})

	bitLoop := counted("bits",
		blk("bith", 4, accs(ivar("bit", 1), ivar("acc", 2)), nil),
		8,
		&program.Seq{Nodes: []program.Node{
			&program.If{
				Label: "msb",
				Cond:  func(s *program.State) bool { return s.Int("acc")&0x80 != 0 },
				Then:  reduce,
				Else:  shift,
			},
			blk("bitinc", 2, nil, func(s *program.State) { s.SetInt("bit", s.Int("bit")+1) }),
		}})

	byteLoop := counted("bytes",
		blk("byteh", 3, accs(ivar("i", 0)), nil),
		crcMsgLen,
		&program.Seq{Nodes: []program.Node{
			loadByte,
			bitLoop,
			blk("byteinc", 3, accs(ivar("i", 0)),
				func(s *program.State) { s.SetInt("i", s.Int("i")+1) }),
		}})

	finish := blk("finish", 4, accs(ivar("acc", 2)), nil)

	p := program.New("crc", &program.Seq{Nodes: []program.Node{setup, byteLoop, finish}},
		msg, tbl, stack)
	p.MustLink()

	// Default message: near-empty (a single payload byte close to the
	// end). The accumulator stays zero for most of the message, so the
	// reduction branch is almost never taken — far from the worst path.
	defMsg := make([]int64, crcMsgLen)
	defMsg[crcMsgLen-2] = 'A'
	// Adversarial message: all 0xFF drives the accumulator's MSB high on
	// most bit steps.
	hotMsg := make([]int64, crcMsgLen)
	for i := range hotMsg {
		hotMsg[i] = 0xFF
	}
	table := make([]int64, 256)
	mk := func(name string, m []int64) program.Input {
		return program.Input{Name: name,
			Arrays: map[string][]int64{"msg": m, "crctab": table}}
	}
	return &Benchmark{
		Name:       "crc",
		Program:    p,
		Inputs:     []program.Input{mk("default", defMsg), mk("dense", hotMsg)},
		MultiPath:  true,
		WorstKnown: false, // worst-case path not identifiable / not triggered
	}
}
