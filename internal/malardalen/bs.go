package malardalen

import (
	"fmt"

	"pubtac/internal/program"
)

// bsElems is the paper's default input size: 15 integer elements, giving a
// maximum binary-search depth of 4 probes.
const bsElems = 15

// BS builds the binary search benchmark (Section 3.3). The program searches
// a sorted 15-entry table of (key, value) records for the key given in the
// input scalar "x". The input determines the number of loop iterations and
// the branch taken at each probe. Exactly 8 input vectors — the keys stored
// at the 8 deepest tree positions — trigger the maximum number of
// iterations while exercising 8 different paths; they are exposed as inputs
// v1, v3, ..., v15, matching Table 1.
func BS() *Benchmark {
	// data[i] holds records with key = 10*i+1 (8 bytes per record: the key
	// and the value word, like the struct DATA of the original source).
	data := &program.Symbol{Name: "data", ElemBytes: 8, Len: bsElems}
	stack := &program.Symbol{Name: "stack", ElemBytes: 4, Len: 8}

	key := func(i int64) int64 { return 10*i + 1 }

	// Stack slots: 0=low 1=up 2=mid 3=fvalue 4=x.
	setup := blk("setup", 8, accs(ivar("x", 4), ivar("low", 0), ivar("up", 1), ivar("fvalue", 3)),
		func(s *program.State) {
			s.SetInt("low", 0)
			s.SetInt("up", bsElems-1)
			s.SetInt("fvalue", -1)
		})

	// While (low <= up && fvalue == -1): per-iteration head computes mid
	// and loads data[mid].key.
	head := blk("probe", 10, accs(
		ivar("low", 0), ivar("up", 1), ivar("mid", 2),
		program.Elem("data[mid]", "data", func(s *program.State) int64 { return s.Int("mid") }),
	), nil)

	// The head's mid computation must happen before the condition code's
	// data[mid] access resolves; keep it in a preceding Do-only update via
	// the While condition evaluation order: Head executes first, so compute
	// mid inside the head action.
	head.Do = func(s *program.State) {
		s.SetInt("mid", (s.Int("low")+s.Int("up"))/2)
	}

	cond := func(s *program.State) bool {
		return s.Int("low") <= s.Int("up") && s.Int("fvalue") == -1
	}

	foundBlk := blk("found", 6, accs(
		program.Elem("data[mid]", "data", func(s *program.State) int64 { return s.Int("mid") }),
		ivar("fvalue", 3), ivar("up", 1), ivar("low", 0),
	), func(s *program.State) {
		s.SetInt("fvalue", s.Arr("data")[s.Int("mid")])
		s.SetInt("up", s.Int("low")-1) // terminate
	})

	goLeft := blk("left", 5, accs(ivar("up", 1), ivar("mid", 2)),
		func(s *program.State) { s.SetInt("up", s.Int("mid")-1) })

	goRight := blk("right", 5, accs(ivar("low", 0), ivar("mid", 2)),
		func(s *program.State) { s.SetInt("low", s.Int("mid")+1) })

	body := &program.If{
		Label: "eq",
		Cond: func(s *program.State) bool {
			return s.Arr("data")[s.Int("mid")] == s.Int("x")
		},
		Then: foundBlk,
		Else: &program.If{
			Label: "gt",
			Cond: func(s *program.State) bool {
				return s.Arr("data")[s.Int("mid")] > s.Int("x")
			},
			Then: goLeft,
			Else: goRight,
		},
	}

	loop := &program.While{
		Label:    "search",
		Head:     head,
		Cond:     cond,
		MaxBound: 4, // ceil(log2(15+1)) probes
		Body:     body,
	}

	finish := blk("finish", 4, accs(ivar("fvalue", 3)), nil)

	p := program.New("bs", &program.Seq{Nodes: []program.Node{setup, loop, finish}},
		data, stack)
	p.MustLink()

	// The stored table: keys 1, 11, 21, ... (sorted, distinct).
	table := make([]int64, bsElems)
	for i := range table {
		table[i] = key(int64(i))
	}

	// Input vK searches for the key at 1-based position K. The 8 odd
	// positions are the deepest leaves of the probe tree: 4 iterations, 8
	// distinct paths (Table 1's v1, v3, ..., v15).
	inputs := make([]program.Input, 0, bsElems+1)
	mk := func(name string, x int64) program.Input {
		return program.Input{
			Name:   name,
			Ints:   map[string]int64{"x": x},
			Arrays: map[string][]int64{"data": table},
		}
	}
	// Default input: the paper sticks to the default loop-bound input; use
	// v9 territory (a max-iteration search) as the default vector.
	inputs = append(inputs, mk("default", key(8)))
	for k := 1; k <= bsElems; k++ {
		inputs = append(inputs, mk(fmt.Sprintf("v%d", k), key(int64(k-1))))
	}

	return &Benchmark{
		Name:       "bs",
		Program:    p,
		Inputs:     inputs,
		MultiPath:  true,
		WorstKnown: true,
	}
}

// BSMaxIterationInputs returns the 8 input vectors that trigger the maximum
// number of bs iterations (the paper's v1, v3, ..., v15).
func BSMaxIterationInputs(b *Benchmark) []program.Input {
	var out []program.Input
	for k := 1; k <= bsElems; k += 2 {
		in, err := b.Input(fmt.Sprintf("v%d", k))
		if err != nil {
			panic(err)
		}
		out = append(out, in)
	}
	return out
}
