package malardalen

import (
	"strings"
	"testing"

	"pubtac/internal/pub"
	"pubtac/internal/trace"
)

func TestAllBenchmarksBuildAndRun(t *testing.T) {
	bms := All()
	if len(bms) != 11 {
		t.Fatalf("got %d benchmarks, want 11", len(bms))
	}
	for _, b := range bms {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			if !b.Program.Linked() {
				t.Fatal("not linked")
			}
			if len(b.Inputs) == 0 {
				t.Fatal("no inputs")
			}
			r, err := b.Program.Exec(b.Default())
			if err != nil {
				t.Fatal(err)
			}
			if len(r.Trace) < 50 {
				t.Fatalf("trace suspiciously small: %d accesses", len(r.Trace))
			}
			if len(r.Trace) > 500000 {
				t.Fatalf("trace too large for campaigns: %d accesses", len(r.Trace))
			}
			if len(r.Trace.Filter(trace.Instr)) == 0 || len(r.Trace.Filter(trace.Data)) == 0 {
				t.Fatal("trace missing instruction or data accesses")
			}
		})
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("nope"); err == nil {
		t.Fatal("expected error")
	}
	b, err := Get("bs")
	if err != nil || b.Name != "bs" {
		t.Fatalf("Get(bs) = %v, %v", b, err)
	}
}

func TestPathClassification(t *testing.T) {
	want := map[string]struct{ multi, worst bool }{
		"bs": {true, true}, "cnt": {true, true}, "fir": {true, true},
		"janne": {true, true}, "crc": {true, false},
		"edn": {false, true}, "insertsort": {false, true}, "jfdctint": {false, true},
		"matmult": {false, true}, "fdct": {false, true}, "ns": {false, true},
	}
	for _, b := range All() {
		w := want[b.Name]
		if b.MultiPath != w.multi || b.WorstKnown != w.worst {
			t.Errorf("%s: MultiPath=%v WorstKnown=%v, want %v %v",
				b.Name, b.MultiPath, b.WorstKnown, w.multi, w.worst)
		}
	}
}

func TestBSMaxIterationPaths(t *testing.T) {
	b := BS()
	inputs := BSMaxIterationInputs(b)
	if len(inputs) != 8 {
		t.Fatalf("max-iteration inputs = %d, want 8", len(inputs))
	}
	paths := map[string]bool{}
	for _, in := range inputs {
		r := b.Program.MustExec(in)
		if !strings.Contains(r.Path, "search=w4") {
			t.Errorf("%s: path %q does not have 4 iterations", in.Name, r.Path)
		}
		if r.State.Int("fvalue") == -1 {
			t.Errorf("%s: key not found", in.Name)
		}
		paths[r.Path] = true
	}
	if len(paths) != 8 {
		t.Fatalf("distinct max-iteration paths = %d, want 8", len(paths))
	}
}

func TestBSShallowSearches(t *testing.T) {
	b := BS()
	// v8 is the root (1-based position 8 = index 7): found in 1 probe.
	in, err := b.Input("v8")
	if err != nil {
		t.Fatal(err)
	}
	r := b.Program.MustExec(in)
	if !strings.Contains(r.Path, "search=w1") {
		t.Fatalf("root search path = %q, want 1 iteration", r.Path)
	}
	if r.State.Int("fvalue") == -1 {
		t.Fatal("root key not found")
	}
}

func TestBSInputEnumeration(t *testing.T) {
	b := BS()
	if len(b.Inputs) != 16 { // default + v1..v15
		t.Fatalf("inputs = %d, want 16", len(b.Inputs))
	}
	if _, err := b.Input("v16"); err == nil {
		t.Fatal("expected error for unknown input")
	}
}

func TestCNTSemantics(t *testing.T) {
	b := CNT()
	r := b.Program.MustExec(b.Default())
	pos, neg := r.State.Int("poscnt"), r.State.Int("negcnt")
	if pos+neg != cntDim*cntDim {
		t.Fatalf("poscnt+negcnt = %d, want %d", pos+neg, cntDim*cntDim)
	}
	if pos == 0 || neg == 0 {
		t.Fatal("default input should have both signs")
	}
	// allpos input: every element takes the positive branch.
	in, _ := b.Input("allpos")
	r = b.Program.MustExec(in)
	if r.State.Int("poscnt") != cntDim*cntDim || r.State.Int("negcnt") != 0 {
		t.Fatalf("allpos counts = %d/%d", r.State.Int("poscnt"), r.State.Int("negcnt"))
	}
}

func TestCNTPathsDiffer(t *testing.T) {
	b := CNT()
	inPos, _ := b.Input("allpos")
	inNeg, _ := b.Input("allneg")
	if b.Program.MustExec(inPos).Path == b.Program.MustExec(inNeg).Path {
		t.Fatal("different sign patterns must take different paths")
	}
}

func TestFIRComputesConvolution(t *testing.T) {
	b := FIR()
	r := b.Program.MustExec(b.Default())
	out := r.State.Arr("out")
	nonzero := 0
	for _, v := range out {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Fatal("filter produced all-zero output")
	}
}

func TestFIRScalePath(t *testing.T) {
	b := FIR()
	def := b.Program.MustExec(b.Default())
	in, _ := b.Input("noscale")
	ns := b.Program.MustExec(in)
	if def.Path == ns.Path {
		t.Fatal("scale and noscale must differ in path")
	}
	// The default (scaled) path performs at least as many accesses.
	if len(def.Trace) < len(ns.Trace) {
		t.Fatalf("default path (%d) shorter than noscale (%d)",
			len(def.Trace), len(ns.Trace))
	}
}

func TestJanneTerminatesOnAllInputs(t *testing.T) {
	b := Janne()
	for _, in := range b.Inputs {
		r := b.Program.MustExec(in)
		if r.State.Int("a") < 30 {
			t.Errorf("%s: outer loop exited early: a=%d", in.Name, r.State.Int("a"))
		}
	}
	// Different inputs, different paths.
	p1 := b.Program.MustExec(b.Inputs[0]).Path
	p2 := b.Program.MustExec(b.Inputs[2]).Path
	if p1 == p2 {
		t.Fatal("janne paths should differ across inputs")
	}
}

func TestCRCDefaultAvoidsWorstPath(t *testing.T) {
	b := CRC()
	def := b.Program.MustExec(b.Default())
	in, _ := b.Input("dense")
	dense := b.Program.MustExec(in)
	count := func(p, tok string) int { return strings.Count(p, tok) }
	defReduce := count(def.Path, "msb=T")
	denseReduce := count(dense.Path, "msb=T")
	if defReduce >= denseReduce {
		t.Fatalf("default input takes the reduce branch %d times, dense %d: "+
			"default should be far from worst-case", defReduce, denseReduce)
	}
	// The dense path must be longer (the reduce branch is heavier).
	if len(dense.Trace) <= len(def.Trace) {
		t.Fatalf("dense trace (%d) not longer than default (%d)",
			len(dense.Trace), len(def.Trace))
	}
}

func TestInsertSortSorts(t *testing.T) {
	b := InsertSort()
	r := b.Program.MustExec(b.Default())
	arr := r.State.Arr("a")
	for i := 1; i < len(arr); i++ {
		if arr[i-1] > arr[i] {
			t.Fatalf("not sorted: %v", arr)
		}
	}
}

func TestInsertSortWorstVsBest(t *testing.T) {
	b := InsertSort()
	worst := b.Program.MustExec(b.Default())
	in, _ := b.Input("sorted")
	best := b.Program.MustExec(in)
	if len(worst.Trace) <= len(best.Trace) {
		t.Fatalf("reverse-sorted trace (%d) not longer than sorted (%d)",
			len(worst.Trace), len(best.Trace))
	}
}

func TestMatMultComputesProduct(t *testing.T) {
	b := MatMult()
	in := b.Default()
	r := b.Program.MustExec(in)
	cOut := r.State.Arr("C")
	// Check one element against a direct computation.
	a, bm := in.Arrays["A"], in.Arrays["B"]
	var want int64
	for k := 0; k < matDim; k++ {
		want += a[2*matDim+k] * bm[k*matDim+3]
	}
	if cOut[2*matDim+3] != want {
		t.Fatalf("C[2][3] = %d, want %d", cOut[2*matDim+3], want)
	}
}

func TestNSFindsTargetAtEnd(t *testing.T) {
	b := NS()
	r := b.Program.MustExec(b.Default())
	if r.State.Int("found") != 1 {
		t.Fatal("target not found")
	}
	// The target sits in the last cell: the recorded coordinates are all
	// nsDim-1 and the scan visits every probe.
	for i, want := range []int64{nsDim - 1, nsDim - 1, nsDim - 1, nsDim - 1} {
		if got := r.State.Arr("answer")[i]; got != want {
			t.Fatalf("answer[%d] = %d, want %d", i, got, want)
		}
	}
	// Full scan: the innermost while executes nsDim iterations in every
	// instance (the final one exits by found, not by bound).
	if !strings.Contains(r.Path, "lL=w5") {
		t.Fatalf("path lacks full inner scans: %.120s...", r.Path)
	}
}

func TestNSHasNoConditionals(t *testing.T) {
	// ns's early exit lives in loop conditions, so PUB must be fully
	// innocuous on it (the paper groups ns with the single-path programs).
	b := NS()
	q, rep, err := pub.Transform(b.Program)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Constructs != 0 || rep.InsertedAccesses != 0 {
		t.Fatalf("PUB not innocuous on ns: %+v", rep)
	}
	o := b.Program.MustExec(b.Default())
	p := q.MustExec(b.Default())
	if len(o.Trace) != len(p.Trace) {
		t.Fatalf("pubbed ns trace differs: %d vs %d", len(o.Trace), len(p.Trace))
	}
}

func TestSinglePathBenchmarksAreDeterministic(t *testing.T) {
	for _, name := range []string{"edn", "insertsort", "jfdctint", "matmult", "fdct", "ns"} {
		b, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		r1 := b.Program.MustExec(b.Default())
		r2 := b.Program.MustExec(b.Default())
		if r1.Path != r2.Path || len(r1.Trace) != len(r2.Trace) {
			t.Errorf("%s: non-deterministic execution", name)
		}
	}
}

func TestPUBAppliesToAllBenchmarks(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			q, rep, err := pub.Transform(b.Program)
			if err != nil {
				t.Fatal(err)
			}
			orig := b.Program.MustExec(b.Default())
			pubd := q.MustExec(b.Default())
			// PUB only adds accesses: the original data trace is a
			// subsequence of the pubbed one for the same input.
			if !orig.Trace.Filter(trace.Data).IsSubsequenceOf(pubd.Trace.Filter(trace.Data)) {
				t.Fatal("original data trace not contained in pubbed trace")
			}
			if len(pubd.Trace) < len(orig.Trace) {
				t.Fatalf("pubbed trace shorter: %d vs %d", len(pubd.Trace), len(orig.Trace))
			}
			if b.MultiPath && rep.Constructs == 0 {
				t.Fatal("multipath benchmark with no balanced constructs")
			}
			// Functional equivalence on a couple of observables.
			if b.Name == "insertsort" {
				arr := pubd.State.Arr("a")
				for i := 1; i < len(arr); i++ {
					if arr[i-1] > arr[i] {
						t.Fatalf("pubbed insertsort broke sorting: %v", arr)
					}
				}
			}
		})
	}
}

func TestPubbedBSBalanced(t *testing.T) {
	// All 8 max-iteration paths of pubbed bs must perform the same number
	// of data accesses (the pubbed program is path-balanced per iteration).
	b := BS()
	q, _, err := pub.Transform(b.Program)
	if err != nil {
		t.Fatal(err)
	}
	var counts []int
	for _, in := range BSMaxIterationInputs(b) {
		r := q.MustExec(in)
		counts = append(counts, len(r.Trace.Filter(trace.Data)))
	}
	for _, c := range counts[1:] {
		if c != counts[0] {
			t.Fatalf("pubbed bs data access counts differ: %v", counts)
		}
	}
}

func TestInputIsolation(t *testing.T) {
	// Executing must not mutate the shared input arrays (state clones).
	b := InsertSort()
	in := b.Default()
	before := append([]int64(nil), in.Arrays["a"]...)
	b.Program.MustExec(in)
	for i, v := range in.Arrays["a"] {
		if v != before[i] {
			t.Fatal("execution mutated the input vector")
		}
	}
}

func BenchmarkExecBS(b *testing.B) {
	bm := BS()
	in := bm.Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bm.Program.MustExec(in)
	}
}

func BenchmarkExecMatMult(b *testing.B) {
	bm := MatMult()
	in := bm.Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bm.Program.MustExec(in)
	}
}
