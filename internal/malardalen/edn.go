package malardalen

import "pubtac/internal/program"

// EDN builds the edn signal-processing benchmark: a fixed sequence of DSP
// kernels (vector multiply, multiply-accumulate, FIR-like convolution and a
// lattice-filter stage) over integer arrays. All loop bounds are constants:
// the program is single-path, and execution-time variability on the
// randomized platform comes from cache layout alone.
func EDN() *Benchmark {
	a := &program.Symbol{Name: "a", ElemBytes: 4, Len: 64}
	b := &program.Symbol{Name: "b", ElemBytes: 4, Len: 64}
	c := &program.Symbol{Name: "c", ElemBytes: 4, Len: 64}
	stack := &program.Symbol{Name: "stack", ElemBytes: 4, Len: 8}

	// Stack slots: 0=i 1=j 2=acc.
	iAt := func(s *program.State) int64 { return s.Int("i") }

	vecMpy := counted("vecmpy", blk("vmh", 3, accs(ivar("i", 0)), nil), 48,
		blk("vmb", 6, accs(
			program.Elem("a[i]", "a", iAt),
			program.Elem("b[i]", "b", iAt),
		), func(s *program.State) {
			i := s.Int("i")
			s.Arr("a")[i] += s.Arr("b")[i] * 3
			s.SetInt("i", i+1)
		}))

	mac := counted("mac", blk("mach", 3, accs(ivar("i", 0)), nil), 48,
		blk("macb", 7, accs(
			program.Elem("a[i]", "a", iAt),
			program.Elem("b[i]", "b", iAt),
			ivar("acc", 2),
		), func(s *program.State) {
			i := s.Int("i")
			s.SetInt("acc", s.Int("acc")+s.Arr("a")[i]*s.Arr("b")[i])
			s.SetInt("i", i+1)
		}))

	conv := counted("conv", blk("convoh", 3, accs(ivar("i", 0)), nil), 16,
		&program.Seq{Nodes: []program.Node{
			counted("convi", blk("convih", 3, accs(ivar("j", 1)), nil), 8,
				blk("convb", 8, accs(
					program.Elem("a[i+j]", "a", func(s *program.State) int64 { return s.Int("i") + s.Int("j") }),
					program.Elem("c[j]", "c", func(s *program.State) int64 { return s.Int("j") }),
					ivar("acc", 2),
				), func(s *program.State) {
					i, j := s.Int("i"), s.Int("j")
					if i+j < 64 && j < 64 {
						s.SetInt("acc", s.Int("acc")+s.Arr("a")[i+j]*s.Arr("c")[j])
					}
					s.SetInt("j", j+1)
				})),
			blk("convinc", 3, accs(ivar("i", 0)), func(s *program.State) {
				s.SetInt("i", s.Int("i")+1)
				s.SetInt("j", 0)
			}),
		}})

	lattice := counted("latsynth", blk("lath", 3, accs(ivar("i", 0)), nil), 32,
		blk("latb", 9, accs(
			program.Elem("b[i]", "b", iAt),
			program.Elem("c[i]", "c", iAt),
			program.Elem("a[63-i]", "a", func(s *program.State) int64 { return 63 - s.Int("i") }),
		), func(s *program.State) {
			i := s.Int("i")
			s.Arr("c")[i] = s.Arr("b")[i] - s.Arr("a")[63-i]
			s.SetInt("i", i+1)
		}))

	zero := func(name string) func(*program.State) {
		return func(s *program.State) { s.SetInt(name, 0) }
	}
	p := program.New("edn", &program.Seq{Nodes: []program.Node{
		blk("init0", 4, accs(ivar("i", 0), ivar("acc", 2)), func(s *program.State) {
			zero("i")(s)
			zero("acc")(s)
		}),
		vecMpy,
		blk("init1", 2, nil, zero("i")),
		mac,
		blk("init2", 2, nil, zero("i")),
		conv,
		blk("init3", 2, nil, zero("i")),
		lattice,
	}}, a, b, c, stack)
	p.MustLink()

	arr := func(seed int64) []int64 {
		v := make([]int64, 64)
		for i := range v {
			v[i] = (int64(i)*seed + 7) % 100
		}
		return v
	}
	return &Benchmark{
		Name:    "edn",
		Program: p,
		Inputs: []program.Input{{
			Name:   "default",
			Arrays: map[string][]int64{"a": arr(3), "b": arr(5), "c": arr(11)},
		}},
		MultiPath:  false,
		WorstKnown: true,
	}
}
