package malardalen

import "pubtac/internal/program"

// FDCT builds the fast discrete cosine transform benchmark: like jfdctint
// it processes an 8x8 block in a row pass and a column pass, but with a
// different (larger, unrolled-butterfly) block structure and no descaling
// loop, mirroring the structural differences of the two suite programs.
// Fixed bounds, single path.
func FDCT() *Benchmark {
	blkSym := &program.Symbol{Name: "dct", ElemBytes: 4, Len: 64}
	tmp := &program.Symbol{Name: "tmp", ElemBytes: 4, Len: 16}
	stack := &program.Symbol{Name: "stack", ElemBytes: 4, Len: 4}

	rowAccs := make([]*program.Acc, 0, 12)
	colAccs := make([]*program.Acc, 0, 12)
	for j := int64(0); j < 8; j++ {
		jj := j
		rowAccs = append(rowAccs, program.Elem("r+"+string(rune('0'+j)), "dct",
			func(s *program.State) int64 { return s.Int("i")*8 + jj }))
		colAccs = append(colAccs, program.Elem("c+"+string(rune('0'+j)), "dct",
			func(s *program.State) int64 { return jj*8 + s.Int("i") }))
	}
	for t := int64(0); t < 4; t++ {
		tt := t
		acc := program.Elem("tmp+"+string(rune('0'+t)), "tmp",
			func(s *program.State) int64 { return tt })
		rowAccs = append(rowAccs, acc)
		colAccs = append(colAccs, acc)
	}

	stage := func(kind string) func(*program.State) {
		return func(s *program.State) {
			i := s.Int("i")
			arr := s.Arr("dct")
			base, stride := i*8, int64(1)
			if kind == "col" {
				base, stride = i, 8
			}
			for k := int64(0); k < 4; k++ {
				lo, hi := base+k*stride, base+(7-k)*stride
				if lo >= 0 && hi < 64 && lo < 64 {
					sum := arr[lo] + arr[hi]
					diff := arr[lo] - arr[hi]
					// Constant rotations of the reference implementation
					// approximated with integer shifts.
					arr[lo] = sum + sum/4
					arr[hi] = diff - diff/8
				}
			}
			s.SetInt("i", i+1)
		}
	}

	rowPass := counted("frows", blk("frh", 5, accs(ivar("i", 0)), nil), 8,
		blk("frb", 30, rowAccs, stage("row")))
	colPass := counted("fcols", blk("fch", 5, accs(ivar("i", 0)), nil), 8,
		blk("fcb", 30, colAccs, stage("col")))

	p := program.New("fdct", &program.Seq{Nodes: []program.Node{
		blk("fz0", 2, nil, func(s *program.State) { s.SetInt("i", 0) }),
		rowPass,
		blk("fz1", 2, nil, func(s *program.State) { s.SetInt("i", 0) }),
		colPass,
	}}, blkSym, tmp, stack)
	p.MustLink()

	px := make([]int64, 64)
	for i := range px {
		px[i] = int64((i*53)%255 - 128)
	}
	return &Benchmark{
		Name:    "fdct",
		Program: p,
		Inputs: []program.Input{{
			Name:   "default",
			Arrays: map[string][]int64{"dct": px, "tmp": make([]int64, 16)},
		}},
		MultiPath:  false,
		WorstKnown: true,
	}
}
