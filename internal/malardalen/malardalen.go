// Package malardalen re-creates the subset of the Mälardalen WCET benchmark
// suite used in the paper's evaluation (Gustafsson et al., WCET 2010) on the
// program IR: same control structure, same path behaviour, and code/data
// footprints representative of the compiled originals.
//
// Path classification follows Section 4.2 of the paper:
//
//   - bs, cnt, fir, janne: multipath, but the default input set already
//     triggers the worst-case path;
//   - crc: multipath, worst-case path NOT triggered by the default input;
//   - edn, insertsort, jfdctint, matmult, fdct, ns: single-path (execution
//     time variability comes from the randomized hardware only).
//
// Each benchmark provides its default input set ("default input sets,
// considering them representative of the worst case for loop bounds") and,
// for multipath programs, the alternative input vectors used in the
// analysis (bs: the 8 maximum-iteration vectors v1..v15 of Table 1).
package malardalen

import (
	"fmt"
	"sort"

	"pubtac/internal/program"
)

// Benchmark couples a program with its input vectors and path metadata.
type Benchmark struct {
	// Name is the suite name used in the paper's tables (e.g. "bs").
	Name string
	// Program is the linked IR program.
	Program *program.Program
	// Inputs are the available input vectors; Inputs[0] is the default.
	Inputs []program.Input
	// MultiPath reports whether different inputs exercise different paths.
	MultiPath bool
	// WorstKnown reports whether the default input set is known to trigger
	// the worst-case path (true for bs, cnt, fir, janne and trivially for
	// single-path benchmarks; false for crc).
	WorstKnown bool
}

// Default returns the default input vector.
func (b *Benchmark) Default() program.Input { return b.Inputs[0] }

// Input returns the input vector with the given name, or an error.
func (b *Benchmark) Input(name string) (program.Input, error) {
	for _, in := range b.Inputs {
		if in.Name == name {
			return in, nil
		}
	}
	return program.Input{}, fmt.Errorf("malardalen: %s has no input %q", b.Name, name)
}

// builders registers all benchmark constructors.
var builders = map[string]func() *Benchmark{
	"bs":         BS,
	"cnt":        CNT,
	"fir":        FIR,
	"janne":      Janne,
	"crc":        CRC,
	"edn":        EDN,
	"insertsort": InsertSort,
	"jfdctint":   JFDCTInt,
	"matmult":    MatMult,
	"fdct":       FDCT,
	"ns":         NS,
}

// Order is the presentation order used by the paper's Table 2.
var Order = []string{
	"bs", "cnt", "fir", "janne", "crc",
	"edn", "insertsort", "jfdctint", "matmult", "fdct", "ns",
}

// All returns every benchmark, in Table 2 order.
func All() []*Benchmark {
	out := make([]*Benchmark, 0, len(Order))
	for _, n := range Order {
		out = append(out, builders[n]())
	}
	return out
}

// Get returns a fresh instance of the named benchmark, or an error listing
// the valid names.
func Get(name string) (*Benchmark, error) {
	b, ok := builders[name]
	if !ok {
		names := make([]string, 0, len(builders))
		//pubtac:nondeterministic names are sorted before they reach the error message
		for n := range builders {
			names = append(names, n)
		}
		sort.Strings(names)
		return nil, fmt.Errorf("malardalen: unknown benchmark %q (have %v)", name, names)
	}
	return b(), nil
}

// blk is a terse block constructor used by the benchmark builders.
func blk(label string, nInstr int, accs []*program.Acc, do func(*program.State)) *program.Block {
	return &program.Block{Label: label, NInstr: nInstr, Accs: accs, Do: do}
}

// accs builds an access list.
func accs(a ...*program.Acc) []*program.Acc { return a }

// counted builds a fixed-bound counted loop running exactly n times, with
// an optional per-iteration head block.
func counted(label string, head *program.Block, n int, body program.Node) *program.Loop {
	return &program.Loop{
		Label:    label,
		Head:     head,
		Bound:    func(*program.State) int { return n },
		MaxBound: n,
		Body:     body,
	}
}

// ivar returns an access template for stack slot i named after the scalar
// it models (local variables share the "stack" symbol, like a real frame).
func ivar(name string, slot int64) *program.Acc {
	return program.Elem(name, "stack", func(*program.State) int64 { return slot })
}
