package malardalen

import "pubtac/internal/program"

// matDim is the matrix dimension. The original uses 20x20; 10x10 keeps
// campaign sizes tractable in simulation while preserving the access
// structure (row-major A, column-strided B, accumulated C).
const matDim = 10

// MatMult builds the matrix multiplication benchmark C = A*B with fixed
// bounds: a triple nested loop, single path.
func MatMult() *Benchmark {
	a := &program.Symbol{Name: "A", ElemBytes: 4, Len: matDim * matDim}
	b := &program.Symbol{Name: "B", ElemBytes: 4, Len: matDim * matDim}
	c := &program.Symbol{Name: "C", ElemBytes: 4, Len: matDim * matDim}
	stack := &program.Symbol{Name: "stack", ElemBytes: 4, Len: 4}

	// Stack slots: 0=i 1=j 2=k.
	inner := counted("kloop", blk("kh", 3, accs(ivar("k", 2)), nil), matDim,
		blk("maccum", 9, accs(
			program.Elem("A[i][k]", "A", func(s *program.State) int64 { return s.Int("i")*matDim + s.Int("k") }),
			program.Elem("B[k][j]", "B", func(s *program.State) int64 { return s.Int("k")*matDim + s.Int("j") }),
			program.Elem("C[i][j]", "C", func(s *program.State) int64 { return s.Int("i")*matDim + s.Int("j") }),
		), func(s *program.State) {
			i, j, k := s.Int("i"), s.Int("j"), s.Int("k")
			s.Arr("C")[i*matDim+j] += s.Arr("A")[i*matDim+k] * s.Arr("B")[k*matDim+j]
			s.SetInt("k", k+1)
		}))

	jLoop := counted("jloop", blk("jh", 3, accs(ivar("j", 1)), nil), matDim,
		&program.Seq{Nodes: []program.Node{
			blk("kzero", 2, nil, func(s *program.State) { s.SetInt("k", 0) }),
			inner,
			blk("jinc", 2, nil, func(s *program.State) { s.SetInt("j", s.Int("j")+1) }),
		}})

	iLoop := counted("iloop", blk("ih", 3, accs(ivar("i", 0)), nil), matDim,
		&program.Seq{Nodes: []program.Node{
			blk("jzero", 2, nil, func(s *program.State) { s.SetInt("j", 0) }),
			jLoop,
			blk("iinc", 2, nil, func(s *program.State) { s.SetInt("i", s.Int("i")+1) }),
		}})

	p := program.New("matmult", &program.Seq{Nodes: []program.Node{
		blk("setup", 4, accs(ivar("i", 0)), func(s *program.State) { s.SetInt("i", 0) }),
		iLoop,
	}}, a, b, c, stack)
	p.MustLink()

	fill := func(seed int64) []int64 {
		m := make([]int64, matDim*matDim)
		for i := range m {
			m[i] = (int64(i)*seed)%19 - 9
		}
		return m
	}
	return &Benchmark{
		Name:    "matmult",
		Program: p,
		Inputs: []program.Input{{
			Name: "default",
			Arrays: map[string][]int64{
				"A": fill(7), "B": fill(13), "C": make([]int64, matDim*matDim),
			},
		}},
		MultiPath:  false,
		WorstKnown: true,
	}
}
