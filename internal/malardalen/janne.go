package malardalen

import "pubtac/internal/program"

// Janne builds janne_complex: two nested while loops whose induction
// variables are coupled through conditional updates, a classic hard case for
// flow analysis. The iteration counts and branch outcomes depend on the
// input values of a and b; the default input (a=1, b=1) drives the loops
// through their longest interplay.
//
//	while (a < 30) {
//	    while (b < a) {
//	        if (b > 5) b *= 3; else b += 2;
//	        if (b >= 10 && b <= 12) a += 10; else a += 1;
//	    }
//	    a += 2; b -= 10;
//	}
func Janne() *Benchmark {
	stack := &program.Symbol{Name: "stack", ElemBytes: 4, Len: 4}

	// Stack slots: 0=a 1=b.
	setup := blk("setup", 4, accs(ivar("a", 0), ivar("b", 1)), nil)

	innerBody := &program.Seq{Nodes: []program.Node{
		&program.If{
			Label: "bstep",
			Head:  blk("bcmp", 3, accs(ivar("b", 1)), nil),
			Cond:  func(s *program.State) bool { return s.Int("b") > 5 },
			Then: blk("btriple", 4, accs(ivar("b", 1)),
				func(s *program.State) { s.SetInt("b", s.Int("b")*3) }),
			Else: blk("bplus", 3, accs(ivar("b", 1)),
				func(s *program.State) { s.SetInt("b", s.Int("b")+2) }),
		},
		&program.If{
			Label: "astep",
			Head:  blk("acmp", 4, accs(ivar("b", 1)), nil),
			Cond:  func(s *program.State) bool { return s.Int("b") >= 10 && s.Int("b") <= 12 },
			Then: blk("ajump", 3, accs(ivar("a", 0)),
				func(s *program.State) { s.SetInt("a", s.Int("a")+10) }),
			Else: blk("acreep", 3, accs(ivar("a", 0)),
				func(s *program.State) { s.SetInt("a", s.Int("a")+1) }),
		},
	}}

	inner := &program.While{
		Label:    "inner",
		Head:     blk("innerh", 4, accs(ivar("a", 0), ivar("b", 1)), nil),
		Cond:     func(s *program.State) bool { return s.Int("b") < s.Int("a") },
		MaxBound: 40,
		Body:     innerBody,
	}

	outerBody := &program.Seq{Nodes: []program.Node{
		inner,
		blk("outerstep", 5, accs(ivar("a", 0), ivar("b", 1)), func(s *program.State) {
			s.SetInt("a", s.Int("a")+2)
			s.SetInt("b", s.Int("b")-10)
		}),
	}}

	outer := &program.While{
		Label:    "outer",
		Head:     blk("outerh", 3, accs(ivar("a", 0)), nil),
		Cond:     func(s *program.State) bool { return s.Int("a") < 30 },
		MaxBound: 40,
		Body:     outerBody,
	}

	p := program.New("janne", &program.Seq{Nodes: []program.Node{setup, outer}}, stack)
	p.MustLink()

	mk := func(name string, a, b int64) program.Input {
		return program.Input{Name: name, Ints: map[string]int64{"a": a, "b": b}}
	}
	// The scalars a and b live in the state under their own names; copy
	// them from the input via the setup action.
	setup.Do = func(s *program.State) {
		// a and b already present from the input vector.
		_ = s
	}
	return &Benchmark{
		Name:       "janne",
		Program:    p,
		Inputs:     []program.Input{mk("default", 1, 1), mk("mid", 10, 3), mk("late", 25, 20)},
		MultiPath:  true,
		WorstKnown: true,
	}
}
