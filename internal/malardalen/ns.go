package malardalen

import "pubtac/internal/program"

// nsDim is the extent of each of the four dimensions of the search array.
const nsDim = 5

// NS builds the nested-search benchmark: a search through a 5x5x5x5 array
// with an early exit when the key is found. The early exit lives in the
// loop conditions (while not-found), not in a conditional construct, so PUB
// is innocuous on ns — matching the paper's classification of ns among the
// single-path benchmarks. The suite's default input places the key in the
// last cell, so the full 625-probe scan is executed.
func NS() *Benchmark {
	arr := &program.Symbol{Name: "keys", ElemBytes: 4, Len: nsDim * nsDim * nsDim * nsDim}
	ans := &program.Symbol{Name: "answer", ElemBytes: 4, Len: 4}
	stack := &program.Symbol{Name: "stack", ElemBytes: 4, Len: 8}

	// Stack slots: 0=i 1=j 2=k 3=l 4=found 5=target.
	flat := func(s *program.State) int64 {
		return ((s.Int("i")*nsDim+s.Int("j"))*nsDim+s.Int("k"))*nsDim + s.Int("l")
	}

	probe := blk("probe", 9, accs(
		program.Elem("keys[ijkl]", "keys", flat),
		ivar("target", 5),
		ivar("found", 4),
	), func(s *program.State) {
		if s.Arr("keys")[flat(s)] == s.Int("target") {
			s.SetInt("found", 1)
		} else {
			s.SetInt("l", s.Int("l")+1)
		}
	})

	// Each level is a while loop: counter in range AND not found.
	level := func(label, vn string, slot int64, inner program.Node, reset string) *program.While {
		return &program.While{
			Label: label,
			Head:  blk(label+"h", 4, accs(ivar(vn, slot), ivar("found", 4)), nil),
			Cond: func(s *program.State) bool {
				return s.Int(vn) < nsDim && s.Int("found") == 0
			},
			MaxBound: nsDim,
			Body: &program.Seq{Nodes: []program.Node{
				blk(label+"z", 1, nil, func(s *program.State) {
					if reset != "" {
						s.SetInt(reset, 0)
					}
				}),
				inner,
				blk(label+"s", 2, nil, func(s *program.State) {
					// Advance this level's counter unless the probe level
					// already advanced it or the key was found.
					if vn != "l" && s.Int("found") == 0 {
						s.SetInt(vn, s.Int(vn)+1)
					}
				}),
			}},
		}
	}

	lLoop := level("lL", "l", 3, probe, "")
	kLoop := level("kL", "k", 2, lLoop, "l")
	jLoop := level("jL", "j", 1, kLoop, "k")
	iLoop := level("iL", "i", 0, jLoop, "j")

	setup := blk("setup", 5, accs(ivar("found", 4), ivar("target", 5)),
		func(s *program.State) {
			s.SetInt("found", 0)
			s.SetInt("i", 0)
			s.SetInt("j", 0)
			s.SetInt("k", 0)
			s.SetInt("l", 0)
		})

	record := blk("record", 6, accs(
		program.At("answer", 0), program.At("answer", 1),
		program.At("answer", 2), program.At("answer", 3),
		ivar("found", 4),
	), func(s *program.State) {
		if s.Int("found") == 1 {
			s.Arr("answer")[0] = s.Int("i")
			s.Arr("answer")[1] = s.Int("j")
			s.Arr("answer")[2] = s.Int("k")
			s.Arr("answer")[3] = s.Int("l")
		}
	})

	p := program.New("ns", &program.Seq{Nodes: []program.Node{setup, iLoop, record}},
		arr, ans, stack)
	p.MustLink()

	n := nsDim * nsDim * nsDim * nsDim
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(i)
	}
	return &Benchmark{
		Name:    "ns",
		Program: p,
		Inputs: []program.Input{{
			Name: "default",
			// Target = last cell's key: the full scan executes.
			Ints:   map[string]int64{"target": int64(n - 1)},
			Arrays: map[string][]int64{"keys": keys, "answer": make([]int64, 4)},
		}},
		MultiPath:  false,
		WorstKnown: true,
	}
}
