package malardalen

import "pubtac/internal/program"

const (
	firSamples = 40 // input samples processed
	firCoefs   = 8  // filter taps
)

// FIR builds the finite-impulse-response filter benchmark: for every output
// sample, a multiply-accumulate loop over min(i+1, taps) coefficients (the
// warm-up prefix runs fewer taps — a bound, not a branch, exactly like the
// original's loop structure). The scaling stage is guarded by the input
// scale factor, making the program multipath; the default input (non-zero
// scale) triggers the worst-case path.
func FIR() *Benchmark {
	in := &program.Symbol{Name: "in", ElemBytes: 4, Len: firSamples}
	coef := &program.Symbol{Name: "coef", ElemBytes: 4, Len: firCoefs}
	out := &program.Symbol{Name: "out", ElemBytes: 4, Len: firSamples}
	stack := &program.Symbol{Name: "stack", ElemBytes: 4, Len: 8}

	// Stack slots: 0=i 1=j 2=sum 3=scale.
	setup := blk("setup", 6, accs(ivar("scale", 3), ivar("i", 0)),
		func(s *program.State) { s.SetInt("i", 0) })

	mac := blk("mac", 8, accs(
		program.Elem("in[i-j]", "in", func(s *program.State) int64 { return s.Int("i") - s.Int("j") }),
		program.Elem("coef[j]", "coef", func(s *program.State) int64 { return s.Int("j") }),
		ivar("sum", 2),
	), func(s *program.State) {
		i, j := s.Int("i"), s.Int("j")
		if i-j >= 0 && i-j < firSamples && j < firCoefs {
			s.SetInt("sum", s.Int("sum")+s.Arr("in")[i-j]*s.Arr("coef")[j])
		}
		s.SetInt("j", j+1)
	})

	macLoop := &program.Loop{
		Label: "macs",
		Head:  blk("mach", 3, accs(ivar("j", 1)), nil),
		Bound: func(s *program.State) int {
			n := int(s.Int("i")) + 1
			if n > firCoefs {
				n = firCoefs
			}
			return n
		},
		MaxBound: firCoefs,
		Body:     mac,
	}

	scaleBlk := blk("scale", 7, accs(ivar("sum", 2), ivar("scale", 3)),
		func(s *program.State) { s.SetInt("sum", s.Int("sum")/(s.Int("scale")+1)) })
	noScale := blk("noscale", 2, nil, nil)

	store := blk("store", 5, accs(
		program.Elem("out[i]", "out", func(s *program.State) int64 { return s.Int("i") }),
		ivar("i", 0),
	), func(s *program.State) {
		if i := s.Int("i"); i >= 0 && i < firSamples {
			s.Arr("out")[i] = s.Int("sum")
		}
		s.SetInt("i", s.Int("i")+1)
	})

	body := &program.Seq{Nodes: []program.Node{
		blk("sample", 4, accs(ivar("sum", 2), ivar("j", 1)), func(s *program.State) {
			s.SetInt("sum", 0)
			s.SetInt("j", 0)
		}),
		macLoop,
		&program.If{
			Label: "doscale",
			Cond:  func(s *program.State) bool { return s.Int("scale") != 0 },
			Then:  scaleBlk,
			Else:  noScale,
		},
		store,
	}}

	loop := counted("samples", blk("sh", 3, accs(ivar("i", 0)), nil), firSamples, body)

	p := program.New("fir", &program.Seq{Nodes: []program.Node{setup, loop}},
		in, coef, out, stack)
	p.MustLink()

	signal := make([]int64, firSamples)
	for i := range signal {
		signal[i] = int64((i*13)%50 - 25)
	}
	taps := make([]int64, firCoefs)
	for i := range taps {
		taps[i] = int64(i + 1)
	}
	mkInput := func(name string, scale int64) program.Input {
		return program.Input{
			Name: name,
			Ints: map[string]int64{"scale": scale},
			Arrays: map[string][]int64{
				"in": signal, "coef": taps, "out": make([]int64, firSamples),
			},
		}
	}
	return &Benchmark{
		Name:       "fir",
		Program:    p,
		Inputs:     []program.Input{mkInput("default", 285), mkInput("noscale", 0)},
		MultiPath:  true,
		WorstKnown: true,
	}
}
