// Package evt implements the extreme value theory machinery used by MBPTA
// to turn a sample of execution times into a pWCET curve.
//
// Two fits are provided, matching the practice in the MBPTA literature the
// paper builds on:
//
//   - ExpTail: a peaks-over-threshold fit with an exponential excess
//     distribution. This is the MBPTA-CV approach (Abella et al., TODAES
//     2017): exponential tails are the most stable and always
//     over-approximating choice for worst-case execution time modelling.
//   - Gumbel: a classic block-maxima fit of the Gumbel distribution, used as
//     a cross-check.
//
// A fitted model satisfies the Curve interface: ValueAt(p) returns the
// execution time whose per-run exceedance probability is p (the x coordinate
// of the pWCET curve at height p), and ExceedanceOf(x) is its inverse.
package evt

import (
	"errors"
	"fmt"
	"math"

	"pubtac/internal/stats"
)

// Curve is a pWCET curve: a survival function over execution time.
type Curve interface {
	// ValueAt returns the execution time bound at per-run exceedance
	// probability p (0 < p < 1), i.e. the pWCET estimate at p.
	ValueAt(p float64) float64
	// ExceedanceOf returns the modelled probability that a single run
	// exceeds execution time x.
	ExceedanceOf(x float64) float64
}

// ErrSampleTooSmall is returned when a fit does not have enough data.
var ErrSampleTooSmall = errors.New("evt: sample too small to fit a tail")

// euler is the Euler-Mascheroni constant (Gumbel moment fitting).
const euler = 0.5772156649015329

// ExpTail is an exponential peaks-over-threshold pWCET model:
//
//	P[X > x] = TailFrac * exp(-Rate*(x-U))   for x >= U.
//
// U is the threshold, Rate the exponential rate fitted to the excesses, and
// TailFrac the empirical fraction of the sample above U.
type ExpTail struct {
	U        float64 // threshold (cycles)
	Rate     float64 // exponential rate of the excess distribution
	TailFrac float64 // fraction of sample above U
	N        int     // sample size used for the fit
	Excesses int     // number of exceedances above U
}

// FitExpTail fits an exponential tail above the threshold that leaves
// tailCount exceedances (a common choice is 50..200, or ~5% of the sample).
// It returns ErrSampleTooSmall when fewer than 10 exceedances are available
// or the excesses are degenerate.
func FitExpTail(sample []float64, tailCount int) (*ExpTail, error) {
	return FitExpTailSorted(stats.SortedCopy(sample), tailCount)
}

// FitExpTailSorted is FitExpTail over an already ascending-sorted sample.
// All candidate tails of a threshold scan share one sort through this
// entry point (the scan used to pay one copy + sort per candidate).
func FitExpTailSorted(sorted []float64, tailCount int) (*ExpTail, error) {
	return fitExpTailUpper(sorted, len(sorted), tailCount)
}

// fitExpTailUpper fits the exponential tail from the top of sortedUpper, an
// ascending-sorted slice holding at least the top tailCount+1 order
// statistics of a sample of total size n. With sortedUpper the whole sorted
// sample this is exactly FitExpTailSorted; with a top-K reservoir it is the
// same arithmetic on the same order statistics, so the fit is bit-identical
// whenever the reservoir covers the window.
func fitExpTailUpper(sortedUpper []float64, n, tailCount int) (*ExpTail, error) {
	if n < 20 || tailCount < 10 {
		return nil, ErrSampleTooSmall
	}
	if tailCount >= n {
		tailCount = n / 2
		if tailCount < 10 {
			return nil, ErrSampleTooSmall
		}
	}
	if tailCount+1 > len(sortedUpper) {
		return nil, ErrSampleTooSmall
	}
	top := len(sortedUpper)
	u := sortedUpper[top-tailCount-1] // threshold: leaves exactly tailCount order statistics above
	// Excesses of the top tailCount order statistics over u. Ties with u
	// contribute zero excess; this keeps the fit defined for degenerate
	// (low-variability) samples.
	var sum float64
	for _, v := range sortedUpper[top-tailCount:] {
		sum += v - u
	}
	meanExcess := sum / float64(tailCount)
	count := tailCount
	if meanExcess <= 0 {
		// Degenerate tail (all maxima equal). Model it as a point mass just
		// above u with a very steep rate so that ValueAt stays finite and
		// close to the observed maximum.
		meanExcess = math.Max(u*1e-12, 1e-9)
	}
	return &ExpTail{
		U:        u,
		Rate:     1 / meanExcess,
		TailFrac: float64(count) / float64(n),
		N:        n,
		Excesses: count,
	}, nil
}

// ValueAt returns the pWCET estimate at per-run exceedance probability p.
func (e *ExpTail) ValueAt(p float64) float64 {
	if p <= 0 {
		return math.Inf(1)
	}
	if p >= e.TailFrac {
		// Query inside the empirical body; clamp to the threshold.
		return e.U
	}
	return e.U + math.Log(e.TailFrac/p)/e.Rate
}

// ExceedanceOf returns the modelled per-run exceedance probability of x.
func (e *ExpTail) ExceedanceOf(x float64) float64 {
	if x <= e.U {
		return e.TailFrac
	}
	return e.TailFrac * math.Exp(-e.Rate*(x-e.U))
}

// String summarizes the fit.
func (e *ExpTail) String() string {
	return fmt.Sprintf("ExpTail{u=%.1f rate=%.3g tail=%d/%d}", e.U, e.Rate, e.Excesses, e.N)
}

// Gumbel is a block-maxima Gumbel pWCET model with location Loc, scale
// Scale, fitted on maxima of blocks of Block consecutive runs.
type Gumbel struct {
	Loc   float64
	Scale float64
	Block int // block size used to form maxima
	N     int // number of block maxima
}

// FitGumbel fits a Gumbel distribution by the method of moments to maxima of
// consecutive blocks of size block. It returns ErrSampleTooSmall when fewer
// than 10 block maxima are available.
func FitGumbel(sample []float64, block int) (*Gumbel, error) {
	if block < 1 {
		block = 1
	}
	nb := len(sample) / block
	if nb < 10 {
		return nil, ErrSampleTooSmall
	}
	maxima := make([]float64, 0, nb)
	for b := 0; b < nb; b++ {
		blockMax := sample[b*block]
		for i := b*block + 1; i < (b+1)*block; i++ {
			if sample[i] > blockMax {
				blockMax = sample[i]
			}
		}
		maxima = append(maxima, blockMax)
	}
	sd := stats.StdDev(maxima)
	if sd == 0 {
		sd = math.Max(stats.Mean(maxima)*1e-12, 1e-9)
	}
	scale := sd * math.Sqrt(6) / math.Pi
	loc := stats.Mean(maxima) - euler*scale
	return &Gumbel{Loc: loc, Scale: scale, Block: block, N: nb}, nil
}

// blockExceedance converts a per-run exceedance probability into the
// per-block exceedance probability 1-(1-p)^Block.
func (g *Gumbel) blockExceedance(p float64) float64 {
	return 1 - math.Pow(1-p, float64(g.Block))
}

// ValueAt returns the pWCET estimate at per-run exceedance probability p.
func (g *Gumbel) ValueAt(p float64) float64 {
	if p <= 0 {
		return math.Inf(1)
	}
	pb := g.blockExceedance(p)
	if pb >= 1 {
		pb = 1 - 1e-16
	}
	// Gumbel quantile at cumulative probability 1-pb.
	return g.Loc - g.Scale*math.Log(-math.Log(1-pb))
}

// ExceedanceOf returns the modelled per-run exceedance probability of x.
func (g *Gumbel) ExceedanceOf(x float64) float64 {
	// Per-block survival.
	sb := 1 - math.Exp(-math.Exp(-(x-g.Loc)/g.Scale))
	// Convert to per-run: sb = 1-(1-p)^Block.
	return 1 - math.Pow(1-sb, 1/float64(g.Block))
}

// String summarizes the fit.
func (g *Gumbel) String() string {
	return fmt.Sprintf("Gumbel{loc=%.1f scale=%.2f block=%d n=%d}", g.Loc, g.Scale, g.Block, g.N)
}

// FitExpTailAuto fits exponential tails over a range of candidate tail
// sizes and selects the threshold by the MBPTA-CV exponentiality criterion.
//
// Policy: the SMALLEST candidate tail whose CV test accepts exponentiality
// wins; when no candidate is accepted, the candidate with CV closest to 1
// is used. Scanning from the highest thresholds downward keeps the fit
// window inside the top mixture component of knee-shaped distributions
// (conflictive-placement clusters) instead of straddling the knee, which
// wildly inflates the extrapolation. Coverage of deeper, rarer events is
// the responsibility of the campaign size (TAC), not of the fit — and the
// composite curve already upper-bounds everything observed.
// Candidates grow geometrically from minTail to maxTail.
func FitExpTailAuto(sample []float64, minTail, maxTail int) (*ExpTail, CVTest, error) {
	return FitExpTailAutoSorted(stats.SortedCopy(sample), minTail, maxTail)
}

// FitExpTailAutoSorted is FitExpTailAuto over an already ascending-sorted
// sample: the sort is shared by every candidate fit and CV test, turning
// the threshold scan from O(candidates · n log n) into one O(n log n) sort
// (done by the caller, or incrementally maintained across campaign rounds)
// plus O(tail) work per candidate.
func FitExpTailAutoSorted(sorted []float64, minTail, maxTail int) (*ExpTail, CVTest, error) {
	n := len(sorted)
	if maxTail > n/2 {
		maxTail = n / 2
	}
	if minTail < 10 {
		minTail = 10
	}
	if maxTail < minTail {
		maxTail = minTail
	}
	var bestFit *ExpTail
	var bestCV CVTest
	bestScore := math.Inf(1)
	for tc := minTail; ; tc = tc*3/2 + 1 {
		if tc > maxTail {
			tc = maxTail
		}
		fit, err := FitExpTailSorted(sorted, tc)
		if err == nil {
			cv := CheckCVSorted(sorted, tc)
			if cv.Accepted() {
				// Smallest accepted threshold: done.
				return fit, cv, nil
			}
			if score := math.Abs(cv.CV - 1); score < bestScore {
				bestScore, bestFit, bestCV = score, fit, cv
			}
		}
		if tc == maxTail {
			break
		}
	}
	if bestFit == nil {
		return nil, CVTest{}, ErrSampleTooSmall
	}
	return bestFit, bestCV, nil
}

// CVTest is the coefficient-of-variation exponentiality check of MBPTA-CV:
// for an exponential tail, the CV of the excesses over a high threshold is 1.
// The test computes the residual CV over the top tailCount excesses and
// checks it against the asymptotic confidence band 1 +/- z/sqrt(n).
type CVTest struct {
	CV     float64 // residual coefficient of variation of the excesses
	Lo, Hi float64 // confidence band at the chosen level
	NTail  int     // excess count
}

// Accepted reports whether the tail is compatible with an exponential model.
func (c CVTest) Accepted() bool { return c.CV >= c.Lo && c.CV <= c.Hi }

// CheckCV runs the CV exponentiality test on the top tailCount values of
// sample, with a 99% confidence band (z=2.5758).
func CheckCV(sample []float64, tailCount int) CVTest {
	return CheckCVSorted(stats.SortedCopy(sample), tailCount)
}

// CheckCVSorted is CheckCV over an already ascending-sorted sample. The
// top-(tailCount+1) order statistics are read off the end of the slice
// instead of being extracted by a full reverse sort, and the excess moments
// are accumulated in the same largest-first order the reverse-sorted
// implementation used, so the result is bit-identical.
func CheckCVSorted(sorted []float64, tailCount int) CVTest {
	return checkCVUpper(sorted, len(sorted), tailCount)
}

// checkCVUpper runs the CV test off the top of sortedUpper, an
// ascending-sorted slice holding at least the top tailCount+1 order
// statistics of a sample of total size n. The excess moments are accumulated
// largest-first exactly as CheckCVSorted does, so a reservoir covering the
// window yields a bit-identical test.
func checkCVUpper(sortedUpper []float64, n, tailCount int) CVTest {
	k := tailCount + 1
	if k > n {
		k = n
	}
	if k < 3 {
		return CVTest{CV: 1, Lo: 0, Hi: 2, NTail: k}
	}
	if k > len(sortedUpper) {
		k = len(sortedUpper)
		if k < 3 {
			return CVTest{CV: 1, Lo: 0, Hi: 2, NTail: k}
		}
	}
	top := len(sortedUpper)
	u := sortedUpper[top-k]
	m := k - 1 // excesses: the k-1 order statistics strictly above position top-k
	var sum float64
	for i := top - 1; i >= top-m; i-- {
		sum += sortedUpper[i] - u
	}
	mean := sum / float64(m)
	var cv float64
	if mean != 0 {
		var ss float64
		for i := top - 1; i >= top-m; i-- {
			d := (sortedUpper[i] - u) - mean
			ss += d * d
		}
		cv = math.Sqrt(ss/float64(m-1)) / mean
	}
	const z = 2.5758293035489004 // 99% two-sided normal quantile
	return CVTest{CV: cv, Lo: 1 - z/math.Sqrt(float64(m)), Hi: 1 + z/math.Sqrt(float64(m)), NTail: m}
}
