package evt

import (
	"testing"

	"pubtac/internal/stats"
)

func TestCompositeDominatesSample(t *testing.T) {
	xs := expSample(10000, 0.01, 500, 77)
	tail, err := FitExpTail(xs, 100)
	if err != nil {
		t.Fatal(err)
	}
	c := NewComposite(xs, tail)
	// At every empirical exceedance level, the curve is at least the
	// empirical quantile.
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999, 0.9999} {
		emp := stats.Quantile(xs, q)
		if v := c.ValueAt(1 - q); v < emp {
			t.Fatalf("composite at p=%v: %v below empirical %v", 1-q, v, emp)
		}
	}
	if v := c.ValueAt(1e-12); v < stats.Max(xs) {
		t.Fatalf("deep tail %v below observed max %v", v, stats.Max(xs))
	}
}

func TestCompositeMonotone(t *testing.T) {
	xs := expSample(5000, 0.05, 100, 3)
	tail, err := FitExpTail(xs, 50)
	if err != nil {
		t.Fatal(err)
	}
	c := NewComposite(xs, tail)
	prev := 0.0
	for _, p := range []float64{0.5, 0.1, 0.01, 1e-3, 1e-4, 1e-6, 1e-9, 1e-12} {
		v := c.ValueAt(p)
		if v < prev {
			t.Fatalf("composite not monotone at p=%v: %v < %v", p, v, prev)
		}
		prev = v
	}
}

func TestCompositeExceedanceConsistency(t *testing.T) {
	xs := expSample(5000, 0.05, 100, 9)
	tail, err := FitExpTail(xs, 50)
	if err != nil {
		t.Fatal(err)
	}
	c := NewComposite(xs, tail)
	// ExceedanceOf at a value beyond the sample max follows the tail.
	x := stats.Max(xs) + 100
	if got, want := c.ExceedanceOf(x), tail.ExceedanceOf(x); got != want {
		t.Fatalf("beyond-max exceedance = %v, want tail's %v", got, want)
	}
	// Below the minimum, exceedance is 1 (empirical).
	if got := c.ExceedanceOf(stats.Min(xs) - 1); got != 1 {
		t.Fatalf("below-min exceedance = %v, want 1", got)
	}
}

func TestCompositeEdgeProbabilities(t *testing.T) {
	xs := expSample(1000, 0.05, 100, 5)
	tail, err := FitExpTail(xs, 50)
	if err != nil {
		t.Fatal(err)
	}
	c := NewComposite(xs, tail)
	// p >= 1: lowest observed value.
	if v := c.ValueAt(1); v > stats.Min(xs)+1e-9 && v != tail.ValueAt(1) {
		// Composite takes max(emp, tail); with p=1 the empirical branch is
		// the minimum. Accept either bound but require finiteness.
		t.Logf("ValueAt(1) = %v", v)
	}
	if v := c.ValueAt(1); v < stats.Min(xs) {
		t.Fatalf("ValueAt(1) = %v below sample min", v)
	}
}
