package evt

import (
	"math"
	"testing"

	"pubtac/internal/rng"
	"pubtac/internal/stats"
)

// synthetic returns a deterministic mixed sample: an exponential-ish bulk
// with a handful of heavy outliers and ties, the shapes the tail selector
// has to deal with.
func synthetic(n int, seed uint64) []float64 {
	gen := rng.New(seed)
	s := make([]float64, n)
	for i := range s {
		v := 1000 + 200*math.Log(1/(1-gen.Float64()))
		if gen.Intn(50) == 0 {
			v += float64(gen.Intn(500)) // conflictive-placement cluster
		}
		if gen.Intn(7) == 0 {
			v = math.Floor(v) // inject ties
		}
		s[i] = v
	}
	return s
}

// TestSortedVariantsBitIdentical checks that the sort-once entry points
// produce bit-identical fits and CV tests to the copy-and-sort-per-call
// wrappers, across sample sizes and tail counts (including tie-heavy and
// degenerate samples).
func TestSortedVariantsBitIdentical(t *testing.T) {
	for _, n := range []int{50, 400, 3000} {
		sample := synthetic(n, uint64(n))
		sorted := stats.SortedCopy(sample)
		for _, tc := range []int{10, 25, n / 5} {
			fa, erra := FitExpTail(sample, tc)
			fb, errb := FitExpTailSorted(sorted, tc)
			if (erra == nil) != (errb == nil) {
				t.Fatalf("n=%d tc=%d: error mismatch %v vs %v", n, tc, erra, errb)
			}
			if erra == nil && *fa != *fb {
				t.Fatalf("n=%d tc=%d: FitExpTail %+v, sorted %+v", n, tc, fa, fb)
			}
			ca := CheckCV(sample, tc)
			cb := CheckCVSorted(sorted, tc)
			if ca != cb {
				t.Fatalf("n=%d tc=%d: CheckCV %+v, sorted %+v", n, tc, ca, cb)
			}
		}
		fa, cva, erra := FitExpTailAuto(sample, 10, n/5)
		fb, cvb, errb := FitExpTailAutoSorted(sorted, 10, n/5)
		if (erra == nil) != (errb == nil) {
			t.Fatalf("n=%d: auto error mismatch %v vs %v", n, erra, errb)
		}
		if erra == nil && (*fa != *fb || cva != cvb) {
			t.Fatalf("n=%d: auto fit %+v/%+v, sorted %+v/%+v", n, fa, cva, fb, cvb)
		}
	}
}

// TestSortedVariantsDegenerate covers the all-equal sample (zero-variance
// tail) on both paths.
func TestSortedVariantsDegenerate(t *testing.T) {
	sample := make([]float64, 100)
	for i := range sample {
		sample[i] = 4242
	}
	fa, erra := FitExpTail(sample, 20)
	fb, errb := FitExpTailSorted(stats.SortedCopy(sample), 20)
	if erra != nil || errb != nil {
		t.Fatalf("degenerate fit errored: %v / %v", erra, errb)
	}
	if *fa != *fb {
		t.Fatalf("degenerate: %+v vs %+v", fa, fb)
	}
}
