package evt

import (
	"math"

	"pubtac/internal/stats"
)

// FitExpTailAutoSummary is FitExpTailAuto over a stats.SampleView: the
// threshold scan reads only the view's exact upper tail (TailSorted), so it
// works identically on the full-sample reference view and on a streaming
// view whose reservoir covers the search window. On a full view the result
// is bit-identical to FitExpTailAutoSorted; on a streaming view it is
// bit-identical whenever maxTail+1 observations fit the reservoir, and
// otherwise the window is clamped to the reservoir (a smaller, still-valid
// scan — the documented budget/accuracy trade of the streaming arm).
func FitExpTailAutoSummary(v stats.SampleView, minTail, maxTail int) (*ExpTail, CVTest, error) {
	n := v.N()
	tail := v.TailSorted()
	if maxTail > n/2 {
		maxTail = n / 2
	}
	if minTail < 10 {
		minTail = 10
	}
	if maxTail < minTail {
		maxTail = minTail
	}
	if maxTail > len(tail)-1 {
		maxTail = len(tail) - 1
	}
	if maxTail < minTail {
		minTail = maxTail
	}
	var bestFit *ExpTail
	var bestCV CVTest
	bestScore := math.Inf(1)
	for tc := minTail; ; tc = tc*3/2 + 1 {
		if tc > maxTail {
			tc = maxTail
		}
		fit, err := fitExpTailUpper(tail, n, tc)
		if err == nil {
			cv := checkCVUpper(tail, n, tc)
			if cv.Accepted() {
				// Smallest accepted threshold: done.
				return fit, cv, nil
			}
			if score := math.Abs(cv.CV - 1); score < bestScore {
				bestScore, bestFit, bestCV = score, fit, cv
			}
		}
		if tc >= maxTail {
			break
		}
	}
	if bestFit == nil {
		return nil, CVTest{}, ErrSampleTooSmall
	}
	return bestFit, bestCV, nil
}

// SummaryComposite is the Composite pWCET curve over a stats.SampleView: the
// pointwise maximum of the view's empirical ECCDF and the fitted tail. On a
// full view it computes exactly what Composite computes (the view's FromTop
// and CountLE replicate the sorted-slice and ECDF arithmetic); on a
// streaming view the empirical half resolves through the reservoir for the
// tail and the sketch for the body.
type SummaryComposite struct {
	V    stats.SampleView
	Tail Curve
}

// NewSummaryComposite builds the composite curve over a sample view with the
// given fitted tail.
func NewSummaryComposite(v stats.SampleView, tail Curve) *SummaryComposite {
	return &SummaryComposite{V: v, Tail: tail}
}

// empValueAt returns the smallest observed value whose empirical exceedance
// probability is at most p — the same k = floor(p·n) order-statistic rule as
// Composite.empValueAt.
func (c *SummaryComposite) empValueAt(p float64) float64 {
	n := c.V.N()
	// k = number of sample points allowed to exceed the bound.
	k := int(p * float64(n))
	if k < 1 {
		return c.V.FromTop(1)
	}
	if k >= n {
		return c.V.Min()
	}
	return c.V.FromTop(k)
}

// ValueAt returns the pWCET estimate at per-run exceedance probability p:
// the maximum of the empirical quantile and the fitted tail.
func (c *SummaryComposite) ValueAt(p float64) float64 {
	emp := c.empValueAt(p)
	tail := c.Tail.ValueAt(p)
	if emp > tail {
		return emp
	}
	return tail
}

// ExceedanceOf returns the modelled per-run exceedance probability of x,
// the maximum of the empirical and fitted exceedances.
func (c *SummaryComposite) ExceedanceOf(x float64) float64 {
	emp := 1 - float64(c.V.CountLE(x))/float64(c.V.N())
	tail := c.Tail.ExceedanceOf(x)
	if emp > tail {
		return emp
	}
	return tail
}
