package evt

import (
	"pubtac/internal/stats"
)

// Composite is the standard MBPTA pWCET curve shape: within the measured
// range the curve follows the empirical ECCDF (never reporting a bound below
// an observed quantile), and beyond it the fitted EVT tail extrapolates. It
// is the pointwise maximum of the two survival curves, which keeps it a
// valid (monotone) survival function and guarantees the pWCET estimate
// upper-bounds the whole measured sample.
type Composite struct {
	Emp  *stats.ECDF
	Tail Curve
}

// NewComposite builds the composite curve over sample with the given fitted
// tail.
func NewComposite(sample []float64, tail Curve) *Composite {
	return &Composite{Emp: stats.NewECDF(sample), Tail: tail}
}

// NewCompositeSorted builds the composite over an already ascending-sorted
// sample, which the ECDF adopts without copying; the caller must not modify
// it afterwards.
func NewCompositeSorted(sorted []float64, tail Curve) *Composite {
	return &Composite{Emp: stats.NewECDFSorted(sorted), Tail: tail}
}

// empValueAt returns the smallest observed value whose empirical exceedance
// probability is at most p.
func (c *Composite) empValueAt(p float64) float64 {
	s := c.Emp.Sorted()
	n := len(s)
	// k = number of sample points allowed to exceed the bound.
	k := int(p * float64(n))
	if k < 1 {
		return s[n-1]
	}
	if k >= n {
		return s[0]
	}
	return s[n-k]
}

// ValueAt returns the pWCET estimate at per-run exceedance probability p:
// the maximum of the empirical quantile and the fitted tail.
func (c *Composite) ValueAt(p float64) float64 {
	emp := c.empValueAt(p)
	tail := c.Tail.ValueAt(p)
	if emp > tail {
		return emp
	}
	return tail
}

// ExceedanceOf returns the modelled per-run exceedance probability of x,
// the maximum of the empirical and fitted exceedances.
func (c *Composite) ExceedanceOf(x float64) float64 {
	emp := c.Emp.Exceedance(x)
	tail := c.Tail.ExceedanceOf(x)
	if emp > tail {
		return emp
	}
	return tail
}
