package evt

import (
	"math"
	"testing"

	"pubtac/internal/rng"
)

// expSample draws n values from an exponential distribution with the given
// rate, shifted by loc.
func expSample(n int, rate, loc float64, seed uint64) []float64 {
	gen := rng.New(seed)
	xs := make([]float64, n)
	for i := range xs {
		u := gen.Float64()
		if u == 0 {
			u = 1e-18
		}
		xs[i] = loc - math.Log(u)/rate
	}
	return xs
}

func TestFitExpTailRecoversRate(t *testing.T) {
	xs := expSample(50000, 0.01, 1000, 42)
	fit, err := FitExpTail(xs, 500)
	if err != nil {
		t.Fatal(err)
	}
	// The excess distribution of an exponential above any threshold is the
	// same exponential (memorylessness), so Rate should be ~0.01.
	if fit.Rate < 0.008 || fit.Rate > 0.012 {
		t.Fatalf("fitted rate = %v, want ~0.01", fit.Rate)
	}
}

func TestExpTailValueExceedanceRoundTrip(t *testing.T) {
	xs := expSample(20000, 0.05, 500, 7)
	fit, err := FitExpTail(xs, 200)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{1e-3, 1e-6, 1e-9, 1e-12} {
		x := fit.ValueAt(p)
		back := fit.ExceedanceOf(x)
		if math.Abs(back-p)/p > 1e-9 {
			t.Fatalf("round trip at p=%v: got %v", p, back)
		}
	}
}

func TestExpTailMonotone(t *testing.T) {
	xs := expSample(20000, 0.05, 500, 8)
	fit, err := FitExpTail(xs, 200)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, p := range []float64{1e-2, 1e-4, 1e-6, 1e-8, 1e-10, 1e-14} {
		v := fit.ValueAt(p)
		if v <= prev {
			t.Fatalf("pWCET not increasing as p decreases: %v then %v", prev, v)
		}
		prev = v
	}
	if !math.IsInf(fit.ValueAt(0), 1) {
		t.Fatal("ValueAt(0) should be +Inf")
	}
}

func TestExpTailUpperBoundsEmpirical(t *testing.T) {
	// The fitted tail at the empirical max's exceedance level should be at
	// or above the observed maximum most of the time for exponential data.
	xs := expSample(50000, 0.01, 0, 11)
	fit, err := FitExpTail(xs, 500)
	if err != nil {
		t.Fatal(err)
	}
	maxObs := xs[0]
	for _, x := range xs {
		if x > maxObs {
			maxObs = x
		}
	}
	// pWCET at a 100x smaller probability than 1/n must exceed the max.
	if v := fit.ValueAt(1.0 / float64(len(xs)) / 100); v < maxObs {
		t.Fatalf("pWCET %v below observed max %v", v, maxObs)
	}
}

func TestFitExpTailErrors(t *testing.T) {
	if _, err := FitExpTail([]float64{1, 2, 3}, 50); err == nil {
		t.Fatal("expected error on tiny sample")
	}
	if _, err := FitExpTail(expSample(100, 1, 0, 1), 5); err == nil {
		t.Fatal("expected error on tiny tail")
	}
}

func TestFitExpTailDegenerateSample(t *testing.T) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = 100 // constant
	}
	fit, err := FitExpTail(xs, 50)
	if err != nil {
		t.Fatal(err)
	}
	v := fit.ValueAt(1e-12)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		t.Fatalf("degenerate fit produced %v", v)
	}
	if v < 100 || v > 101 {
		t.Fatalf("degenerate fit pWCET = %v, want ~100", v)
	}
}

func TestFitGumbelRecoversParams(t *testing.T) {
	// Draw Gumbel(loc=1000, scale=50) directly.
	gen := rng.New(3)
	xs := make([]float64, 20000)
	for i := range xs {
		u := gen.Float64()
		if u == 0 {
			u = 1e-18
		}
		xs[i] = 1000 - 50*math.Log(-math.Log(u))
	}
	fit, err := FitGumbel(xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Loc-1000) > 10 {
		t.Fatalf("loc = %v, want ~1000", fit.Loc)
	}
	if math.Abs(fit.Scale-50) > 5 {
		t.Fatalf("scale = %v, want ~50", fit.Scale)
	}
}

func TestGumbelRoundTrip(t *testing.T) {
	g := &Gumbel{Loc: 2000, Scale: 100, Block: 20, N: 100}
	for _, p := range []float64{1e-3, 1e-6, 1e-9} {
		x := g.ValueAt(p)
		back := g.ExceedanceOf(x)
		if math.Abs(back-p)/p > 1e-6 {
			t.Fatalf("round trip at p=%v: got %v", p, back)
		}
	}
}

func TestGumbelBlockConsistency(t *testing.T) {
	// The same underlying model queried through different block sizes must
	// give identical per-run answers when parameters are converted
	// consistently; here we just check monotonicity in p and block.
	g := &Gumbel{Loc: 2000, Scale: 100, Block: 10, N: 100}
	if g.ValueAt(1e-9) <= g.ValueAt(1e-6) {
		t.Fatal("Gumbel pWCET not monotone in p")
	}
}

func TestFitGumbelErrors(t *testing.T) {
	if _, err := FitGumbel(expSample(50, 1, 0, 9), 10); err == nil {
		t.Fatal("expected error: only 5 block maxima")
	}
}

func TestCheckCVExponential(t *testing.T) {
	xs := expSample(50000, 0.02, 300, 21)
	cv := CheckCV(xs, 500)
	if !cv.Accepted() {
		t.Fatalf("CV test rejected exponential data: %+v", cv)
	}
	if math.Abs(cv.CV-1) > 0.2 {
		t.Fatalf("CV = %v, want ~1", cv.CV)
	}
}

func TestCheckCVUniformTail(t *testing.T) {
	// A bounded (uniform) distribution has a light tail: CV of the top
	// excesses is well below 1.
	gen := rng.New(5)
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = gen.Float64() * 1000
	}
	cv := CheckCV(xs, 1000)
	if cv.CV > 0.9 {
		t.Fatalf("CV = %v for uniform tail, want < 0.9", cv.CV)
	}
}

func TestCheckCVTinySample(t *testing.T) {
	cv := CheckCV([]float64{1, 2}, 10)
	if !cv.Accepted() {
		t.Fatal("tiny sample should be vacuously accepted")
	}
}

func TestExpTailVsGumbelAgreeOnExponentialData(t *testing.T) {
	// Both models fitted to the same heavy sample should give pWCETs within
	// a reasonable factor at p=1e-9 (they are different approximations).
	xs := expSample(100000, 0.01, 1000, 31)
	et, err := FitExpTail(xs, 1000)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := FitGumbel(xs, 50)
	if err != nil {
		t.Fatal(err)
	}
	a, b := et.ValueAt(1e-9), gb.ValueAt(1e-9)
	if ratio := a / b; ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("ExpTail=%v Gumbel=%v disagree by %vx", a, b, ratio)
	}
}
