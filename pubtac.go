// Package pubtac is a measurement-based probabilistic timing analysis
// (MBPTA) toolkit for time-randomized cache platforms that simultaneously
// achieves full path coverage and cache-layout representativeness, as
// published in:
//
//	S. Milutinovic, J. Abella, E. Mezzetti, F. J. Cazorla.
//	"Measurement-Based Cache Representativeness on Multipath Programs".
//	DAC 2018.
//
// The library combines:
//
//   - PUB (path upper-bounding): a program transformation that inflates
//     every branch of every conditional with innocuous accesses, so any
//     path of the transformed program probabilistically upper-bounds all
//     paths of the original;
//   - TAC (time-aware address conflicts): an analysis of the program's
//     address sequence that sizes the measurement campaign so that rare,
//     high-impact random cache placements are observed;
//   - MBPTA/EVT: campaign collection, i.i.d. diagnostics and
//     exponential-tail pWCET estimation.
//
// # Quick start
//
//	bench, _ := pubtac.Benchmark("bs")
//	s := pubtac.NewSession(pubtac.WithScale(0.05))
//	res, _ := s.AnalyzePath(context.Background(), bench.Program, bench.Default())
//	fmt.Printf("pWCET@1e-12 = %.0f cycles with %d runs\n",
//	    res.PWCET(1e-12), res.R)
//
// Sessions are context-aware (campaigns are cancellable and
// deadline-bounded), report progress (WithProgress), and run whole
// campaigns concurrently: AnalyzeBatch fans benchmarks × paths out over a
// bounded worker pool, deduplicating the PUB transform per program.
// Results are deterministic at any worker count.
//
// The underlying building blocks (program IR, cache/processor simulator,
// statistics) are re-exported below for programmatic use; see the
// examples/ directory for complete applications.
package pubtac

import (
	"pubtac/internal/core"
	"pubtac/internal/malardalen"
	"pubtac/internal/mbpta"
	"pubtac/internal/proc"
	"pubtac/internal/program"
	"pubtac/internal/pub"
	"pubtac/internal/tac"
)

// Config assembles platform model, MBPTA and TAC parameters.
type Config = core.Config

// Analyzer runs the combined PUB+TAC pipeline.
type Analyzer = core.Analyzer

// PathAnalysis is the outcome of the pipeline on one pubbed path.
type PathAnalysis = core.PathAnalysis

// OriginalAnalysis is plain MBPTA on the unmodified program.
type OriginalAnalysis = core.OriginalAnalysis

// MultiPathAnalysis aggregates pipeline results over several pubbed paths
// (Corollary 2: the minimum across paths is taken).
type MultiPathAnalysis = core.MultiPathAnalysis

// ErrIIDInadmissible is returned (wrapped) by analyses run under
// WithIIDHardFail when a sample fails its i.i.d. admissibility battery.
// Test with errors.Is.
var ErrIIDInadmissible = core.ErrIIDInadmissible

// Program is the multipath program intermediate representation.
type Program = program.Program

// Input is one input vector for a program.
type Input = program.Input

// Bench couples a Mälardalen-style program with its input vectors.
type Bench = malardalen.Benchmark

// Model describes the simulated platform (caches + latencies).
type Model = proc.Model

// PubReport summarizes a PUB transformation.
type PubReport = pub.Report

// TACAnalysis is the outcome of TAC on an address sequence.
type TACAnalysis = tac.Analysis

// Estimate is a fitted pWCET model with diagnostics.
type Estimate = mbpta.Estimate

// ShardSpec names one campaign shard for remote execution: the analysis
// config fingerprint, the program path, the campaign root and a half-open
// run range. See WithPeers.
type ShardSpec = core.ShardSpec

// ShardCollector executes campaign shards somewhere else — the client
// package implements it over a pool of pubtacd peers. See WithPeers.
type ShardCollector = core.ShardCollector

// DefaultConfig returns the paper's evaluation setup: 4KB 2-way 32B-line
// IL1/DL1 with random placement and replacement, MBPTA-CV estimation, and
// TAC with a 10^-9 miss probability.
//
// Deprecated: construct a Session with NewSession and functional options
// (WithModel, WithScale, WithCampaignCap, ...). DefaultConfig remains for
// code that still drives the pipeline through NewAnalyzer, and as input to
// WithConfig.
func DefaultConfig() Config { return core.DefaultConfig() }

// NewAnalyzer returns an analyzer for the configuration.
//
// Deprecated: use NewSession. Sessions add context cancellation, progress
// reporting and concurrent batch campaigns; NewAnalyzer remains as a thin
// synchronous shim over the same pipeline.
func NewAnalyzer(cfg Config) *Analyzer { return core.New(cfg) }

// DefaultModel returns the paper's platform model.
func DefaultModel() Model { return proc.DefaultModel() }

// Benchmark returns a fresh instance of one of the 11 Mälardalen-style
// benchmarks ("bs", "cnt", "fir", "janne", "crc", "edn", "insertsort",
// "jfdctint", "matmult", "fdct", "ns").
func Benchmark(name string) (*Bench, error) { return malardalen.Get(name) }

// Benchmarks returns all 11 benchmarks in the paper's Table 2 order.
func Benchmarks() []*Bench { return malardalen.All() }

// Transform applies PUB to a program, returning the pubbed program and a
// transformation report. The original program is not modified.
func Transform(p *Program) (*Program, PubReport, error) { return pub.Transform(p) }
