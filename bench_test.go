package pubtac_test

// Benchmark harness: one benchmark per table/figure of the paper (see
// DESIGN.md's per-experiment index), plus ablation benchmarks for the
// design decisions DESIGN.md calls out. Experiment benchmarks run
// scaled-down campaigns (the Scale constant below); use cmd/tables and
// cmd/figures with -scale for larger reproductions.

import (
	"context"
	"math"
	"testing"

	"pubtac"
	"pubtac/internal/cache"
	"pubtac/internal/evt"
	"pubtac/internal/experiment"
	"pubtac/internal/malardalen"
	"pubtac/internal/mbpta"
	"pubtac/internal/proc"
	"pubtac/internal/pub"
	"pubtac/internal/rng"
	"pubtac/internal/stats"
	"pubtac/internal/tac"
	"pubtac/internal/trace"
)

// benchScale keeps experiment regeneration tractable inside `go test
// -bench`; EXPERIMENTS.md records results at larger scales.
const benchScale = 0.002

func benchOpts() experiment.Options { return experiment.Options{Scale: benchScale} }

// BenchmarkTable1 regenerates Table 1 (bs execution-time domain).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Table1(context.Background(), benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2 regenerates Table 2 (runs for MBPTA, PUB, PUB+TAC).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Table2(context.Background(), benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure1 regenerates Figure 1(a) (pWCET vs pETd).
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Figure1(context.Background(), benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2 regenerates Figure 2 (bs original vs pubbed ECCDFs).
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Figure2(context.Background(), benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4 regenerates Figure 4 (bs v9, Rpub vs Rp+t).
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Figure4(context.Background(), benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5 regenerates Figure 5 (pWCET of PUB and PUB+TAC relative
// to plain MBPTA).
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Figure5(context.Background(), benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSection31 recomputes the Section 3.1 worked examples (pure TAC
// analysis, no campaigns).
func BenchmarkSection31(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiment.Section31()
		if err != nil {
			b.Fatal(err)
		}
		if r.RPub311 != 84873 || r.RPub312 != 14137 {
			b.Fatalf("unexpected results: %+v", r)
		}
	}
}

// BenchmarkBatchVsSerial contrasts the Session batch engine against the
// serial per-benchmark loop on the full 11-benchmark campaign at
// Workers = GOMAXPROCS. Both arms run identical campaigns (results are
// bit-identical); the batch arm fans the paths out over one pool, hiding
// each path's serial sections (estimate fitting, TAC) behind other paths'
// simulation.
func BenchmarkBatchVsSerial(b *testing.B) {
	cfg := benchOpts().AnalyzerConfig()
	jobs, err := pubtac.BenchmarkJobs()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("serial", func(b *testing.B) {
		// WithConfig preserves cfg's worker budget, matching the retired
		// NewAnalyzer arm: paths run serially, each campaign parallelizes.
		one := pubtac.NewSession(pubtac.WithConfig(cfg))
		for i := 0; i < b.N; i++ {
			for _, j := range jobs {
				if _, err := one.AnalyzePath(context.Background(), j.Program, j.Inputs[0]); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		s := pubtac.NewSession(pubtac.WithConfig(cfg))
		for i := 0; i < b.N; i++ {
			if _, err := s.AnalyzeBatch(context.Background(), jobs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Component benchmarks --------------------------------------------

// BenchmarkPUBTransform measures the PUB pass over all 11 benchmarks.
func BenchmarkPUBTransform(b *testing.B) {
	bms := malardalen.All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, bm := range bms {
			if _, _, err := pub.Transform(bm.Program); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTACAnalyze measures TAC on the pubbed bs trace.
//
//pubtac:bench
func BenchmarkTACAnalyze(b *testing.B) {
	bm := malardalen.BS()
	pubbed, _, err := pub.Transform(bm.Program)
	if err != nil {
		b.Fatal(err)
	}
	tr := pubbed.MustExec(bm.Default()).Trace
	model := proc.DefaultModel()
	cfg := tac.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tac.Analyze(tr, model, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTACAnalyzeWide measures TAC on the pubbed bs trace at the
// opened-up scenario PR 5 unlocked: HotLines=24 with MaxExtraWays=1, i.e.
// every hot line of the trace considered and W+2-line groups enumerated on
// top of the W+1 ones. Before the posting-list enumeration this
// configuration sat behind a combinatorial cliff (a full-trace scan and a
// per-seed pinned replay for every candidate); it is now gated in CI as its
// own baseline.
//
//pubtac:bench
func BenchmarkTACAnalyzeWide(b *testing.B) {
	bm := malardalen.BS()
	pubbed, _, err := pub.Transform(bm.Program)
	if err != nil {
		b.Fatal(err)
	}
	tr := pubbed.MustExec(bm.Default()).Trace
	model := proc.DefaultModel()
	cfg := tac.DefaultConfig()
	cfg.HotLines = 24
	cfg.MaxExtraWays = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tac.Analyze(tr, model, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaign1k measures a 1000-run campaign of the pubbed bs path.
//
//pubtac:bench
func BenchmarkCampaign1k(b *testing.B) {
	bm := malardalen.BS()
	pubbed, _, err := pub.Transform(bm.Program)
	if err != nil {
		b.Fatal(err)
	}
	tr := pubbed.MustExec(bm.Default()).Trace
	model := proc.DefaultModel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mbpta.Collect(tr, model, 1000, uint64(i), 0)
	}
}

// BenchmarkExecTrace measures raw trace generation for the largest
// benchmark (matmult).
//
//pubtac:bench
func BenchmarkExecTrace(b *testing.B) {
	bm := malardalen.MatMult()
	in := bm.Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bm.Program.MustExec(in)
	}
}

// BenchmarkCheckIID contrasts the one-shot i.i.d. battery against the
// incremental battery at the convergence loop's steady state: n = 100k
// collected runs, 1k-run increments. The one-shot arm re-scans and re-sorts
// the full sample every round (the last remaining per-round O(n·lags) cost
// after the batched replay); the incremental arm pushes the increment,
// merges the sorted view — as the convergence loop already does for the
// tail fit — and re-reports.
//
//pubtac:bench
func BenchmarkCheckIID(b *testing.B) {
	const n, inc = 100_000, 1_000
	gen := rng.New(42)
	xs := make([]float64, 2*n)
	for i := range xs {
		// Execution-time-like values: integer cycles on a coarse grid, so
		// the runs-test median pins quickly as in real campaigns.
		xs[i] = math.Floor(gen.Float64()*2000) + 40000
	}
	b.Run("one-shot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			stats.CheckIID(xs[:n])
		}
	})
	b.Run("incremental", func(b *testing.B) {
		extra := xs[n:]
		var st *stats.IIDState
		var sorted []float64
		reset := func() {
			st = new(stats.IIDState)
			st.Push(xs[:n])
			sorted = stats.SortedCopy(xs[:n])
			st.ReportSorted(sorted)
		}
		reset()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			j := i % (len(extra) / inc) * inc
			blk := extra[j : j+inc]
			st.Push(blk)
			sorted = stats.MergeSorted(sorted, stats.SortedCopy(blk))
			st.ReportSorted(sorted)
			if st.N() >= 2*n {
				// Keep the battery pinned near the nominal sample size:
				// rebuild outside the timer once the campaign doubled.
				b.StopTimer()
				reset()
				b.StartTimer()
			}
		}
	})
}

// BenchmarkConvergeStreaming contrasts the two estimation arms at the
// convergence loop's steady state: n = 100k accumulated runs, 1k-run
// increments, a full re-estimate (auto-fit ladder + battery report) per
// round. The full-sample arm retains and re-walks the whole sample; the
// streaming arm works from the top-K reservoir, quantile sketch and
// streaming battery, so its per-round cost and peak memory (reported as
// peak-B) are functions of the budget, not of n.
//
//pubtac:bench
func BenchmarkConvergeStreaming(b *testing.B) {
	const n, inc = 100_000, 1_000
	gen := rng.New(43)
	xs := make([]float64, 2*n)
	for i := range xs {
		// Execution-time-like values: integer cycles on a coarse grid.
		xs[i] = math.Floor(gen.Float64()*2000) + 40000
	}
	cfg := mbpta.DefaultConfig()
	run := func(b *testing.B, mk func() stats.SampleSummary) {
		extra := xs[n:]
		var sum stats.SampleSummary
		reset := func() {
			sum = mk()
			sum.Push(xs[:n])
			if _, err := mbpta.NewEstimateSummary(sum, cfg); err != nil {
				b.Fatal(err)
			}
		}
		reset()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			j := i % (len(extra) / inc) * inc
			sum.Push(extra[j : j+inc])
			if _, err := mbpta.NewEstimateSummary(sum, cfg); err != nil {
				b.Fatal(err)
			}
			if sum.N() >= 2*n {
				// Keep the round pinned near the nominal sample size.
				b.StopTimer()
				reset()
				b.StartTimer()
			}
		}
		b.ReportMetric(float64(sum.PeakBytes()), "peak-B")
	}
	b.Run("full-sample", func(b *testing.B) {
		run(b, func() stats.SampleSummary { return stats.NewFullSummary(true) })
	})
	b.Run("streaming", func(b *testing.B) {
		run(b, func() stats.SampleSummary { return stats.NewStreamingSummary(mbpta.DefaultStreamBudget) })
	})
}

// --- Ablation benchmarks (design decisions in DESIGN.md §5) -----------

// BenchmarkAblationPlacementHash compares the keyed-hash random placement
// against modulo placement on the same trace (cost of randomization).
func BenchmarkAblationPlacementHash(b *testing.B) {
	tr := trace.Repeat(trace.FromLetters("ABCDEFGH", 32), 200)
	for _, pc := range []struct {
		name string
		p    cache.PlacementPolicy
	}{{"random", cache.RandomPlacement}, {"modulo", cache.ModuloPlacement}} {
		pc := pc
		b.Run(pc.name, func(b *testing.B) {
			cfg := cache.DefaultL1()
			cfg.Placement = pc.p
			c := cache.New(cfg, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, a := range tr {
					c.Access(a.Addr)
				}
			}
		})
	}
}

// BenchmarkAblationTailFit compares the exponential-tail (MBPTA-CV) fit
// with the Gumbel block-maxima fit on the same campaign, plus the
// sort-once entry point the convergence loop uses (one shared ascending
// sort for all candidate tails and CV tests).
//
//pubtac:bench
func BenchmarkAblationTailFit(b *testing.B) {
	bm := malardalen.CNT()
	tr := bm.Program.MustExec(bm.Default()).Trace
	sample := mbpta.Collect(tr, proc.DefaultModel(), 4000, 9, 0)
	b.Run("exptail-cv", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := evt.FitExpTailAuto(sample, 10, len(sample)/5); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("exptail-cv-sorted", func(b *testing.B) {
		sorted := stats.SortedCopy(sample)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := evt.FitExpTailAutoSorted(sorted, 10, len(sorted)/5); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("gumbel-bm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := evt.FitGumbel(sample, 50); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationCompiledReplay contrasts the compiled-trace fast path
// against the uncompiled reference replay on the same campaign (the two
// are bit-identical; see internal/proc's equivalence tests).
func BenchmarkAblationCompiledReplay(b *testing.B) {
	bm := malardalen.BS()
	pubbed, _, err := pub.Transform(bm.Program)
	if err != nil {
		b.Fatal(err)
	}
	tr := pubbed.MustExec(bm.Default()).Trace
	for _, arm := range []struct {
		name      string
		reference bool
	}{{"compiled", false}, {"reference", true}} {
		arm := arm
		b.Run(arm.name, func(b *testing.B) {
			e := proc.NewEngine(proc.DefaultModel())
			e.UseReference(arm.reference)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Run(tr, uint64(i))
			}
		})
	}
}

// BenchmarkAblationBatchReplay contrasts the three campaign replay paths on
// a 1000-run campaign of the pubbed bs path: the batched loop (BatchK seeds
// per pass over the shared compiled stream, conflict-free seeds answered
// analytically), a loop of per-seed compiled Runs, and the uncompiled
// reference engine. All three produce bit-identical times (see
// internal/proc's batch equivalence tests).
//
//pubtac:bench
func BenchmarkAblationBatchReplay(b *testing.B) {
	bm := malardalen.BS()
	pubbed, _, err := pub.Transform(bm.Program)
	if err != nil {
		b.Fatal(err)
	}
	tr := pubbed.MustExec(bm.Default()).Trace
	model := proc.DefaultModel()
	dst := make([]float64, 1000)
	b.Run("batched", func(b *testing.B) {
		e := proc.NewEngine(model)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.CampaignBatchInto(tr, dst, uint64(i), 0)
		}
	})
	b.Run("per-seed", func(b *testing.B) {
		e := proc.NewEngine(model)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := range dst {
				dst[j] = float64(e.Run(tr, rng.Stream(uint64(i), j)))
			}
		}
	})
	b.Run("reference", func(b *testing.B) {
		e := proc.NewEngine(model)
		e.UseReference(true)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.CampaignInto(tr, dst, uint64(i), 0)
		}
	})
}

// BenchmarkAblationMissJitter measures the cost of the optional randomized
// bus-jitter term in the timing model.
func BenchmarkAblationMissJitter(b *testing.B) {
	bm := malardalen.BS()
	tr := bm.Program.MustExec(bm.Default()).Trace
	for _, jc := range []struct {
		name   string
		jitter uint64
	}{{"off", 0}, {"on", 4}} {
		jc := jc
		b.Run(jc.name, func(b *testing.B) {
			m := proc.DefaultModel()
			m.Lat.MissJitter = jc.jitter
			e := proc.NewEngine(m)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Run(tr, uint64(i))
			}
		})
	}
}

// BenchmarkAblationSCSFallback measures the SCS merge on wide branches
// (the DP is quadratic; the transform falls back to concatenation beyond a
// size bound).
func BenchmarkAblationSCSFallback(b *testing.B) {
	bm, err := pubtac.Benchmark("crc")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := pubtac.Transform(bm.Program); err != nil {
			b.Fatal(err)
		}
	}
}
