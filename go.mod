module pubtac

go 1.24
