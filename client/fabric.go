package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"pubtac"
	"pubtac/internal/fault"
	"pubtac/internal/pool"
	"pubtac/internal/rng"
)

// Clock is the time seam the fabric schedules against: wall time in
// production (fault.Real), injected time in tests (fault.Fake). It is
// declared structurally so the fault package's implementations satisfy it
// without this package re-exporting them.
type Clock interface {
	Now() time.Time
	Sleep(ctx context.Context, d time.Duration) error
	After(d time.Duration) (<-chan time.Time, func() bool)
}

// RetryPolicy tunes the peer fabric. The zero value of any field selects
// that field's default (see DefaultRetryPolicy); AttemptTimeout and
// HedgeDelay additionally accept a negative value meaning "disabled".
type RetryPolicy struct {
	// MaxAttempts bounds how many times one shard is dispatched before the
	// fabric gives up and the coordinator's local fallback recomputes it.
	// Each hedged race counts as one attempt.
	MaxAttempts int
	// BaseBackoff and MaxBackoff shape the capped exponential backoff
	// between attempts. The realized wait is equal-jittered: uniformly in
	// [d/2, d] for the deterministic exponential d, drawn from a seeded
	// generator so a given fabric replays a given backoff schedule.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// AttemptTimeout bounds each dispatch to one peer; expired attempts
	// count as peer failures and are retried. Negative disables.
	AttemptTimeout time.Duration
	// HedgeDelay is how long the primary dispatch runs alone before the
	// same shard is raced on a second peer; the first valid full summary
	// wins and the loser is cancelled. Zero or negative disables hedging.
	HedgeDelay time.Duration
	// Seed drives backoff jitter. Jitter only decorrelates retry storms —
	// it never reaches result bytes — but seeding it keeps the whole
	// fabric replayable alongside the fault injector's schedule.
	Seed uint64
	// BreakerThreshold consecutive failures open a peer's circuit breaker;
	// the peer is skipped until BreakerCooldown elapses, then a single
	// half-open probe decides whether it closes again.
	BreakerThreshold int
	BreakerCooldown  time.Duration
}

// DefaultRetryPolicy is the fabric's starting point: three attempts, 50ms
// base backoff capped at 2s, 5m per-attempt timeout, hedging off (opt in
// via WithHedgeDelay — it spends duplicate work for tail latency), breaker
// at 5 consecutive failures with a 5s cooldown.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts:      3,
		BaseBackoff:      50 * time.Millisecond,
		MaxBackoff:       2 * time.Second,
		AttemptTimeout:   5 * time.Minute,
		HedgeDelay:       0,
		BreakerThreshold: 5,
		BreakerCooldown:  5 * time.Second,
	}
}

// normalize fills zero fields with defaults and resolves the negative
// "disabled" sentinels.
func (p RetryPolicy) normalize() RetryPolicy {
	def := DefaultRetryPolicy()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = def.MaxAttempts
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = def.BaseBackoff
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = def.MaxBackoff
	}
	if p.AttemptTimeout == 0 {
		p.AttemptTimeout = def.AttemptTimeout
	} else if p.AttemptTimeout < 0 {
		p.AttemptTimeout = 0
	}
	if p.HedgeDelay < 0 {
		p.HedgeDelay = 0
	}
	if p.BreakerThreshold <= 0 {
		p.BreakerThreshold = def.BreakerThreshold
	}
	if p.BreakerCooldown <= 0 {
		p.BreakerCooldown = def.BreakerCooldown
	}
	return p
}

// PeersConfig configures NewFabric beyond the peer URLs.
type PeersConfig struct {
	// Policy tunes retries, hedging and breakers; zero fields default.
	Policy RetryPolicy
	// Clock is the time source; nil means wall time (fault.Real).
	Clock Clock
	// Transport, when non-nil, replaces every peer client's HTTP transport
	// — the hook chaos testing plugs the fault injector into.
	Transport http.RoundTripper
}

// Peers is a pubtac.ShardCollector over a set of pubtacd workers — the
// resilient peer fabric. Each shard is dispatched with per-attempt
// timeouts, capped exponential backoff with seeded jitter between
// attempts, fail-fast classification of permanent errors (foreign config
// fingerprints, malformed ranges), per-peer circuit breakers, and optional
// hedged dispatch that races a straggling primary against a second peer.
//
// None of this machinery can affect result bytes: workers return raw
// per-run samples for fixed run ranges, so whichever peer answers — first
// attempt, third retry, or hedge winner — the shard's bytes are identical,
// and anything the fabric cannot deliver falls back to bit-identical local
// recomputation in the coordinator. Peers is safe for concurrent use; the
// zero value has no peers and fails every shard.
type Peers struct {
	peers  []*peer
	policy RetryPolicy
	clock  Clock
	next   atomic.Uint64

	jmu  sync.Mutex
	jrng *rng.SplitMix64

	retries      atomic.Uint64
	hedges       atomic.Uint64
	hedgeWins    atomic.Uint64
	failFast     atomic.Uint64
	breakerOpens atomic.Uint64
}

// NewPeers returns a fabric with the default policy over the given daemon
// base URLs; empty strings are skipped.
func NewPeers(urls ...string) *Peers {
	return NewFabric(PeersConfig{}, urls...)
}

// NewFabric returns a configured fabric over the given daemon base URLs;
// empty strings are skipped.
func NewFabric(cfg PeersConfig, urls ...string) *Peers {
	if cfg.Clock == nil {
		cfg.Clock = fault.Real{}
	}
	p := &Peers{
		policy: cfg.Policy.normalize(),
		clock:  cfg.Clock,
	}
	p.jrng = rng.NewSplitMix64(rng.Mix64(p.policy.Seed ^ 0x70656572666162)) // "peerfab"
	for _, u := range urls {
		if u == "" {
			continue
		}
		var opts []Option
		if cfg.Transport != nil {
			opts = append(opts, WithTransport(cfg.Transport))
		}
		p.peers = append(p.peers, &peer{c: New(u, opts...)})
	}
	return p
}

// TuneRetry adjusts the fabric after construction: attempts > 0 replaces
// MaxAttempts, hedge >= 0 replaces HedgeDelay (0 disables hedging); a
// negative value leaves the field untouched. It is the hook pubtac's
// WithPeerRetry and WithHedgeDelay options reach the fabric through
// without the session depending on this package's types.
func (p *Peers) TuneRetry(attempts int, hedge time.Duration) {
	if attempts > 0 {
		p.policy.MaxAttempts = attempts
	}
	if hedge >= 0 {
		p.policy.HedgeDelay = hedge
	}
}

// Shards suggests one shard per peer when the session does not pin a count.
func (p *Peers) Shards() int { return len(p.peers) }

// FabricStats is a point-in-time snapshot of the fabric's behavior,
// surfaced by pubtacd's /v1/statusz.
type FabricStats struct {
	// Retries counts re-dispatches after a failed attempt.
	Retries uint64 `json:"retries"`
	// Hedges counts hedged (raced) dispatches; HedgeWins counts the races
	// the hedge won.
	Hedges    uint64 `json:"hedges"`
	HedgeWins uint64 `json:"hedge_wins"`
	// FailFast counts shards abandoned without retry on permanent errors.
	FailFast uint64 `json:"fail_fast"`
	// BreakerOpens counts closed/half-open -> open breaker transitions.
	BreakerOpens uint64 `json:"breaker_opens"`
	// Peers reports each peer's breaker state in configuration order.
	Peers []PeerStats `json:"peers,omitempty"`
}

// PeerStats is one peer's health in a FabricStats snapshot.
type PeerStats struct {
	URL string `json:"url"`
	// Breaker is "closed", "open" or "half-open".
	Breaker string `json:"breaker"`
	// ConsecutiveFails is the current failure streak feeding the breaker.
	ConsecutiveFails int `json:"consecutive_fails"`
}

// Stats snapshots the fabric's counters and per-peer breaker states.
func (p *Peers) Stats() FabricStats {
	st := FabricStats{
		Retries:      p.retries.Load(),
		Hedges:       p.hedges.Load(),
		HedgeWins:    p.hedgeWins.Load(),
		FailFast:     p.failFast.Load(),
		BreakerOpens: p.breakerOpens.Load(),
	}
	for _, pr := range p.peers {
		pr.mu.Lock()
		st.Peers = append(st.Peers, PeerStats{
			URL:              pr.c.BaseURL,
			Breaker:          pr.state.String(),
			ConsecutiveFails: pr.fails,
		})
		pr.mu.Unlock()
	}
	return st
}

// errAllPeersOpen is retryable: breakers cool down on their own.
var errAllPeersOpen = errors.New("client: every peer's circuit breaker is open")

// CollectShard dispatches the shard through the fabric. It returns the
// shard's runs from the first attempt that yields a valid full summary, or
// the first error once the attempt budget is spent — at which point the
// coordinator's local fallback owns the range.
func (p *Peers) CollectShard(ctx context.Context, spec pubtac.ShardSpec) ([]float64, error) {
	if len(p.peers) == 0 {
		return nil, fmt.Errorf("client: no shard peers configured")
	}
	var lastErr error
	for attempt := 0; attempt < p.policy.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if attempt > 0 {
			p.retries.Add(1)
			if err := p.clock.Sleep(ctx, p.backoffFor(attempt-1, lastErr)); err != nil {
				return nil, err
			}
		}
		runs, err := p.attempt(ctx, spec)
		if err == nil {
			return runs, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if permanentErr(err) {
			p.failFast.Add(1)
			return nil, err
		}
		lastErr = err
	}
	return nil, lastErr
}

// attemptResult carries one dispatch's outcome back to the racing select.
type attemptResult struct {
	runs   []float64
	err    error
	hedged bool
}

// attempt runs one (possibly hedged) dispatch round: the primary peer
// starts immediately; if a hedge delay is configured and the primary has
// neither answered nor failed when it elapses, the same spec races on a
// second peer and the first valid summary wins, cancelling the loser.
func (p *Peers) attempt(ctx context.Context, spec pubtac.ShardSpec) ([]float64, error) {
	primary := p.pick(nil)
	if primary == nil {
		return nil, errAllPeersOpen
	}
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	g, _ := pool.WithContext(actx)
	results := make(chan attemptResult, 2) // buffered: a loser's send never blocks
	launch := func(pr *peer, hedged bool) {
		g.Go(func() error {
			runs, err := p.dispatch(actx, pr, spec)
			results <- attemptResult{runs: runs, err: err, hedged: hedged}
			return nil
		})
	}
	launch(primary, false)
	inFlight := 1

	var hedgeCh <-chan time.Time
	if p.policy.HedgeDelay > 0 && len(p.peers) > 1 {
		ch, stop := p.clock.After(p.policy.HedgeDelay)
		defer stop()
		hedgeCh = ch
	}

	var firstErr error
	for inFlight > 0 {
		select {
		case res := <-results:
			inFlight--
			if res.err == nil {
				if res.hedged {
					p.hedgeWins.Add(1)
				}
				cancel()
				g.Wait()
				return res.runs, nil
			}
			if firstErr == nil {
				firstErr = res.err
			}
			if permanentErr(res.err) {
				cancel()
				g.Wait()
				return nil, res.err
			}
			// The hedge failed while the primary is still silent. Waiting
			// out a potential straggler on the strength of a dead hedge is
			// how attempts pin themselves to the attempt timeout; fail the
			// round instead and let the retry loop re-dispatch — backoff,
			// fresh peer pick — while this round's racers are cancelled.
			if res.hedged && inFlight > 0 {
				cancel()
				g.Wait()
				return nil, firstErr
			}
		case <-hedgeCh:
			hedgeCh = nil
			if sec := p.pick(primary); sec != nil {
				p.hedges.Add(1)
				launch(sec, true)
				inFlight++
			}
		case <-ctx.Done():
			cancel()
			g.Wait()
			return nil, ctx.Err()
		}
	}
	g.Wait()
	return nil, firstErr
}

// dispatch sends the shard to one peer under the per-attempt timeout and
// feeds the outcome to its breaker — unless the race was already decided
// and this dispatch cancelled, which says nothing about the peer's health.
func (p *Peers) dispatch(ctx context.Context, pr *peer, spec pubtac.ShardSpec) ([]float64, error) {
	cctx := ctx
	if p.policy.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		cctx, cancel = context.WithTimeout(ctx, p.policy.AttemptTimeout)
		defer cancel()
	}
	runs, err := pr.c.CollectShard(cctx, spec)
	if err != nil && ctx.Err() != nil {
		pr.releaseProbe() // cancelled race loser: no verdict on the peer
		return nil, err
	}
	p.record(pr, err)
	return runs, err
}

// pick returns the next healthy peer after the round-robin cursor,
// skipping exclude (the hedge never races a peer against itself) and any
// peer whose breaker refuses admission. nil means no peer is available
// right now — a retryable condition, since breakers cool down.
func (p *Peers) pick(exclude *peer) *peer {
	n := len(p.peers)
	if n == 0 {
		return nil
	}
	now := p.clock.Now()
	start := int((p.next.Add(1) - 1) % uint64(n))
	for i := 0; i < n; i++ {
		pr := p.peers[(start+i)%n]
		if pr == exclude {
			continue
		}
		if pr.admit(now) {
			return pr
		}
	}
	return nil
}

// record feeds one attempt outcome to the peer's breaker.
func (p *Peers) record(pr *peer, err error) {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	if err == nil {
		pr.state = breakerClosed
		pr.fails = 0
		pr.probing = false
		return
	}
	pr.fails++
	if pr.state == breakerHalfOpen || pr.fails >= p.policy.BreakerThreshold {
		if pr.state != breakerOpen {
			p.breakerOpens.Add(1)
		}
		pr.state = breakerOpen
		pr.openUntil = p.clock.Now().Add(p.policy.BreakerCooldown)
		pr.probing = false
	}
}

// backoffFor is the wait before retry number retry (0-based): capped
// exponential with seeded equal jitter, floored by any Retry-After the
// server sent — a shedding server's explicit request outranks our guess.
func (p *Peers) backoffFor(retry int, lastErr error) time.Duration {
	if retry > 16 {
		retry = 16 // cap the shift well before overflow
	}
	d := p.policy.BaseBackoff << uint(retry)
	if d > p.policy.MaxBackoff || d <= 0 {
		d = p.policy.MaxBackoff
	}
	p.jmu.Lock()
	j := p.jrng.Next()
	p.jmu.Unlock()
	if half := d / 2; half > 0 {
		d = half + time.Duration(j%uint64(half+1))
	}
	var se *StatusError
	if errors.As(lastErr, &se) && se.RetryAfter > d {
		d = se.RetryAfter
	}
	return d
}

// permanentErr reports whether retrying err — later or on another peer —
// is pointless: non-temporary HTTP statuses (409 foreign fingerprint, 400
// malformed range, ...) describe the request, not the peer, and a
// cancelled parent context means nobody wants the answer anymore. Network
// failures, 5xx, 429 sheds, timeouts and undecodable summaries (corrupt or
// truncated wire bytes) all stay retryable.
func permanentErr(err error) bool {
	var se *StatusError
	if errors.As(err, &se) {
		return !se.Temporary()
	}
	return errors.Is(err, context.Canceled)
}

// peer is one worker endpoint plus its circuit breaker.
type peer struct {
	c *Client

	mu        sync.Mutex
	state     breakerState
	fails     int       // consecutive failures
	openUntil time.Time // when an open breaker may half-open
	probing   bool      // a half-open probe is in flight
}

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "closed"
}

// admit decides whether the peer may serve a dispatch right now: closed
// breakers always admit, open ones refuse until the cooldown elapses, and
// a half-open breaker admits exactly one probe at a time.
func (pr *peer) admit(now time.Time) bool {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	switch pr.state {
	case breakerOpen:
		if now.Before(pr.openUntil) {
			return false
		}
		pr.state = breakerHalfOpen
		pr.probing = true
		return true
	case breakerHalfOpen:
		if pr.probing {
			return false
		}
		pr.probing = true
		return true
	}
	return true
}

// releaseProbe returns a half-open admission slot without a verdict, for
// dispatches cancelled by the race rather than failed by the peer.
func (pr *peer) releaseProbe() {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	if pr.state == breakerHalfOpen {
		pr.probing = false
	}
}
