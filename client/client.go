// Package client is the Go client for pubtacd, the pubtac analysis daemon
// (cmd/pubtacd, internal/serve). It speaks the daemon's small JSON-over-HTTP
// protocol: job submission, Server-Sent-Event progress streams, and direct
// result-store probes by content key.
//
// The daemon's responses are pubtac.BatchResult documents stamped with
// pubtac.ResultSchemaVersion; the client rejects documents from a build
// speaking a different schema. Cache keys are pubtac.Fingerprints — a client
// holding the program and configuration can derive the key itself
// (pubtac.AnalysisKey) and probe GET /v1/results/{key} without ever sending
// a request body.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"pubtac"
)

// AnalyzeRequest is the body of POST /v1/analyze. Exactly one of the two
// forms must be used: the single-benchmark form (Bench, optionally Input or
// Multipath) or the batch form (Jobs).
type AnalyzeRequest struct {
	// Bench names one benchmark (single form).
	Bench string `json:"bench,omitempty"`
	// Input selects a named input vector of Bench; empty means the
	// benchmark's default input.
	Input string `json:"input,omitempty"`
	// Multipath analyzes every input vector of Bench (Corollary 2).
	Multipath bool `json:"multipath,omitempty"`

	// Jobs is the batch form: several benchmarks in one request (and one
	// cache entry).
	Jobs []JobSpec `json:"jobs,omitempty"`

	// Wait makes POST /v1/analyze respond with the result body itself
	// (computing it if needed) instead of a SubmitResponse.
	Wait bool `json:"wait,omitempty"`
}

// JobSpec names one benchmark and its input vectors within a batch request.
type JobSpec struct {
	Bench string `json:"bench"`
	// Inputs are input vector names; empty means the default input.
	Inputs []string `json:"inputs,omitempty"`
	// Multipath overrides Inputs with every input vector of the benchmark.
	Multipath bool `json:"multipath,omitempty"`
}

// SubmitResponse is the daemon's answer to a non-waiting submission.
type SubmitResponse struct {
	// JobID identifies the running analysis; empty when Cached (there is
	// nothing to follow — fetch the result by Key).
	JobID string `json:"job_id,omitempty"`
	// Key is the content address of the (eventual) result.
	Key string `json:"key"`
	// Cached reports that the result was already in the store.
	Cached bool `json:"cached"`
	// Deduped reports that an identical submission was already in flight
	// and this one joined it instead of computing again.
	Deduped bool `json:"deduped,omitempty"`
	// SchemaVersion is the server's pubtac.ResultSchemaVersion.
	SchemaVersion int `json:"schema_version"`
}

// JobStatus is the daemon's answer to GET /v1/jobs/{id}.
type JobStatus struct {
	ID     string `json:"id"`
	Key    string `json:"key"`
	State  string `json:"state"` // "running", "done" or "error"
	Error  string `json:"error,omitempty"`
	Events int    `json:"events"` // progress events emitted so far
}

// Header names the daemon stamps on result responses.
const (
	// HeaderCache is "hit" when the body was served from the result store
	// and "miss" when this request computed it.
	HeaderCache = "X-Pubtac-Cache"
	// HeaderTier is "mem" or "disk": the store tier a hit was served from.
	HeaderTier = "X-Pubtac-Store-Tier"
	// HeaderKey is the result's content address (hex fingerprint).
	HeaderKey = "X-Pubtac-Key"
)

// Client talks to one pubtacd instance. The zero value is not usable;
// construct with New.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8753".
	BaseURL string
	// HTTP is the underlying client; nil means http.DefaultClient.
	HTTP *http.Client
}

// Option configures a Client; see New.
type Option func(*Client)

// WithHTTPClient replaces the underlying *http.Client wholesale. It wins
// over every other transport option.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.HTTP = hc }
}

// WithTransport replaces the underlying transport (keeping the default
// client around it) — the hook the fault injector's RoundTripper plugs into.
func WithTransport(rt http.RoundTripper) Option {
	return func(c *Client) {
		if c.HTTP == nil {
			c.HTTP = defaultHTTPClient()
		}
		c.HTTP.Transport = rt
	}
}

// WithHTTPTimeout bounds each whole HTTP exchange (connection, headers and
// body) at d. The default is unbounded because two core calls are long-lived
// by design — a waiting /v1/analyze holds its response until the campaign
// finishes, and /v1/jobs/{id}/events streams SSE frames indefinitely — so an
// overall timeout is opt-in; connection setup is always bounded (see New).
func WithHTTPTimeout(d time.Duration) Option {
	return func(c *Client) {
		if c.HTTP == nil {
			c.HTTP = defaultHTTPClient()
		}
		c.HTTP.Timeout = d
	}
}

// New returns a client for the daemon at baseURL. Unlike the zero
// http.Client, the default client bounds connection setup (10s dial, 10s TLS
// handshake) so a black-holed peer fails the dial instead of hanging a
// campaign forever; response duration stays unbounded for the streaming
// endpoints — bound it per call via ctx, WithHTTPTimeout, or the peer
// fabric's per-attempt timeouts.
func New(baseURL string, opts ...Option) *Client {
	c := &Client{BaseURL: strings.TrimRight(baseURL, "/"), HTTP: defaultHTTPClient()}
	for _, o := range opts {
		o(c)
	}
	return c
}

// defaultHTTPClient builds New's sane-default client: bounded connection
// setup, pooled keep-alive connections sized for hedged shard fan-out.
func defaultHTTPClient() *http.Client {
	return &http.Client{Transport: &http.Transport{
		Proxy: http.ProxyFromEnvironment,
		DialContext: (&net.Dialer{
			Timeout:   10 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		TLSHandshakeTimeout: 10 * time.Second,
		MaxIdleConns:        64,
		MaxIdleConnsPerHost: 16,
		IdleConnTimeout:     90 * time.Second,
	}}
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// Analyze submits the request, waits for the result, and decodes it. cached
// reports whether the daemon served it from its result store; the decoded
// document's schema version is verified against this build's.
func (c *Client) Analyze(ctx context.Context, req AnalyzeRequest) (res *pubtac.BatchResult, cached bool, err error) {
	body, cached, err := c.AnalyzeRaw(ctx, req)
	if err != nil {
		return nil, false, err
	}
	res, err = decodeBatch(body)
	return res, cached, err
}

// AnalyzeRaw is Analyze without decoding: it returns the daemon's exact
// response bytes. Identical submissions yield byte-identical bodies — the
// property the result store guarantees — so AnalyzeRaw is the right call for
// consumers that compare, forward or re-store responses.
func (c *Client) AnalyzeRaw(ctx context.Context, req AnalyzeRequest) (body []byte, cached bool, err error) {
	req.Wait = true
	resp, err := c.post(ctx, "/v1/analyze", req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	body, err = readOK(resp)
	if err != nil {
		return nil, false, err
	}
	return body, resp.Header.Get(HeaderCache) == "hit", nil
}

// Submit enqueues the request without waiting. When the result is already
// stored the response says so (Cached, no JobID); otherwise follow the job
// via Events or JobStatus and fetch the body via Result.
func (c *Client) Submit(ctx context.Context, req AnalyzeRequest) (SubmitResponse, error) {
	req.Wait = false
	var sub SubmitResponse
	resp, err := c.post(ctx, "/v1/analyze", req)
	if err != nil {
		return sub, err
	}
	defer resp.Body.Close()
	body, err := readOK(resp)
	if err != nil {
		return sub, err
	}
	if err := json.Unmarshal(body, &sub); err != nil {
		return sub, fmt.Errorf("client: decoding submit response: %w", err)
	}
	if err := pubtac.CheckSchemaVersion(sub.SchemaVersion); err != nil {
		return sub, fmt.Errorf("client: %w", err)
	}
	return sub, nil
}

// Result fetches the stored body for a content key (hex fingerprint).
// found=false means the store holds no entry for it (yet).
func (c *Client) Result(ctx context.Context, key string) (body []byte, found bool, err error) {
	resp, err := c.get(ctx, "/v1/results/"+key)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, false, nil
	}
	body, err = readOK(resp)
	if err != nil {
		return nil, false, err
	}
	return body, true, nil
}

// JobStatus fetches the state of a submitted job.
func (c *Client) JobStatus(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	resp, err := c.get(ctx, "/v1/jobs/"+id)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	body, err := readOK(resp)
	if err != nil {
		return st, err
	}
	if err := json.Unmarshal(body, &st); err != nil {
		return st, fmt.Errorf("client: decoding job status: %w", err)
	}
	return st, nil
}

// Events streams the job's progress events (GET /v1/jobs/{id}/events,
// Server-Sent Events), invoking fn for each one — including events emitted
// before the call, which the daemon replays. It returns nil once the job
// completes, the job's error if it failed, or ctx.Err() on cancellation.
func (c *Client) Events(ctx context.Context, id string, fn func(pubtac.ProgressEvent)) error {
	resp, err := c.get(ctx, "/v1/jobs/"+id+"/events")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return statusError(resp)
	}

	var event string
	var data bytes.Buffer
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		line := sc.Text()
		switch {
		case line == "":
			done, err := dispatchSSE(event, data.Bytes(), fn)
			if done || err != nil {
				return err
			}
			event = ""
			data.Reset()
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			data.WriteString(strings.TrimSpace(strings.TrimPrefix(line, "data:")))
		}
	}
	if err := sc.Err(); err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return fmt.Errorf("client: event stream: %w", err)
	}
	return fmt.Errorf("client: event stream ended without a terminal event")
}

// dispatchSSE routes one complete SSE frame. done reports a terminal frame.
func dispatchSSE(event string, data []byte, fn func(pubtac.ProgressEvent)) (done bool, err error) {
	switch event {
	case "progress":
		var ev pubtac.ProgressEvent
		if err := json.Unmarshal(data, &ev); err != nil {
			return false, fmt.Errorf("client: decoding progress event: %w", err)
		}
		if fn != nil {
			fn(ev)
		}
		return false, nil
	case "done":
		return true, nil
	case "error":
		var msg struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(data, &msg); err != nil || msg.Error == "" {
			return true, fmt.Errorf("client: job failed")
		}
		return true, fmt.Errorf("client: job failed: %s", msg.Error)
	default:
		return false, nil // ignore unknown frames (heartbeats, extensions)
	}
}

// Health probes GET /v1/healthz.
func (c *Client) Health(ctx context.Context) error {
	resp, err := c.get(ctx, "/v1/healthz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return statusError(resp)
	}
	return nil
}

// decodeBatch decodes and schema-checks a result body.
func decodeBatch(body []byte) (*pubtac.BatchResult, error) {
	b, err := pubtac.DecodeBatchResult(body)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	return b, nil
}

func (c *Client) post(ctx context.Context, path string, body any) (*http.Response, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return nil, fmt.Errorf("client: encoding request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(buf))
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	return c.http().Do(req)
}

func (c *Client) get(ctx context.Context, path string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	return c.http().Do(req)
}

// readOK drains the body of a 200 response, or turns any other status into
// an error carrying the server's message.
func readOK(resp *http.Response) ([]byte, error) {
	if resp.StatusCode != http.StatusOK {
		return nil, statusError(resp)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("client: reading response: %w", err)
	}
	return body, nil
}

// StatusError is the typed error for every non-2xx daemon reply; the peer
// fabric's retry classification keys on it. It wraps nothing — the status
// code IS the cause.
type StatusError struct {
	// Code is the HTTP status code.
	Code int
	// Method and Path identify the failed call.
	Method, Path string
	// Msg is the server's (truncated) error body.
	Msg string
	// RetryAfter is the parsed Retry-After header (0 when absent): the
	// server's explicit backoff request on 429/503 load-shed replies.
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("client: %s %s: HTTP %d: %s", e.Method, e.Path, e.Code, e.Msg)
}

// Temporary reports whether retrying the same request later (or on another
// peer) can plausibly succeed: load sheds (429), server errors (5xx) and
// timeouts (408) are temporary; everything else 4xx — bad requests, foreign
// config fingerprints, missing resources — is a property of the request
// itself and will fail identically everywhere.
func (e *StatusError) Temporary() bool {
	switch {
	case e.Code == http.StatusTooManyRequests, e.Code == http.StatusRequestTimeout:
		return true
	case e.Code >= 500:
		return true
	}
	return false
}

func statusError(resp *http.Response) error {
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	se := &StatusError{
		Code:   resp.StatusCode,
		Method: resp.Request.Method,
		Path:   resp.Request.URL.Path,
		Msg:    strings.TrimSpace(string(msg)),
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
			se.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return se
}
