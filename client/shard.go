package client

import (
	"context"
	"fmt"
	"sync/atomic"

	"pubtac"
	"pubtac/internal/stats"
)

// CollectShard executes one campaign shard on the daemon (POST /v1/shards)
// and returns the shard's execution times in run order. The worker replies
// with a wire-encoded full summary; the raw sample inside it is exactly
// runs spec.Lo..spec.Hi-1 of the campaign, whoever computes them.
func (c *Client) CollectShard(ctx context.Context, spec pubtac.ShardSpec) ([]float64, error) {
	resp, err := c.post(ctx, "/v1/shards", spec)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := readOK(resp)
	if err != nil {
		return nil, err
	}
	sum, err := stats.DecodeSummary(body)
	if err != nil {
		return nil, fmt.Errorf("client: shard %s(%s)[%d,%d): %w",
			spec.Program, spec.Input, spec.Lo, spec.Hi, err)
	}
	fs, ok := sum.(*stats.FullSummary)
	if !ok {
		return nil, fmt.Errorf("client: shard %s(%s)[%d,%d): worker returned a %T, want a full summary",
			spec.Program, spec.Input, spec.Lo, spec.Hi, sum)
	}
	if fs.N() != spec.Runs() {
		return nil, fmt.Errorf("client: shard %s(%s)[%d,%d): worker returned %d runs, want %d",
			spec.Program, spec.Input, spec.Lo, spec.Hi, fs.N(), spec.Runs())
	}
	return fs.Sample(), nil
}

// Peers is a pubtac.ShardCollector over a set of pubtacd workers: each
// shard starts on a round-robin-chosen peer and fails over through the
// remaining peers before giving up (at which point the coordinator's local
// fallback recomputes it). Peers is safe for concurrent use; the zero value
// has no peers and fails every shard.
type Peers struct {
	clients []*Client
	next    atomic.Uint64
}

// NewPeers returns a collector over the given daemon base URLs; empty
// strings are skipped.
func NewPeers(urls ...string) *Peers {
	p := &Peers{}
	for _, u := range urls {
		if u != "" {
			p.clients = append(p.clients, New(u))
		}
	}
	return p
}

// Shards suggests one shard per peer when the session does not pin a count.
func (p *Peers) Shards() int { return len(p.clients) }

// CollectShard dispatches the shard, trying every peer once starting from
// the round-robin cursor. The cursor only balances load — which peer
// computes a shard never affects its bytes.
func (p *Peers) CollectShard(ctx context.Context, spec pubtac.ShardSpec) ([]float64, error) {
	n := len(p.clients)
	if n == 0 {
		return nil, fmt.Errorf("client: no shard peers configured")
	}
	start := int((p.next.Add(1) - 1) % uint64(n))
	var firstErr error
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		runs, err := p.clients[(start+i)%n].CollectShard(ctx, spec)
		if err == nil {
			return runs, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return nil, firstErr
}
