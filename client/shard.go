package client

import (
	"context"
	"fmt"

	"pubtac"
	"pubtac/internal/stats"
)

// CollectShard executes one campaign shard on the daemon (POST /v1/shards)
// and returns the shard's execution times in run order. The worker replies
// with a wire-encoded full summary; the raw sample inside it is exactly
// runs spec.Lo..spec.Hi-1 of the campaign, whoever computes them.
func (c *Client) CollectShard(ctx context.Context, spec pubtac.ShardSpec) ([]float64, error) {
	resp, err := c.post(ctx, "/v1/shards", spec)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := readOK(resp)
	if err != nil {
		return nil, err
	}
	sum, err := stats.DecodeSummary(body)
	if err != nil {
		return nil, fmt.Errorf("client: shard %s(%s)[%d,%d): %w",
			spec.Program, spec.Input, spec.Lo, spec.Hi, err)
	}
	fs, ok := sum.(*stats.FullSummary)
	if !ok {
		return nil, fmt.Errorf("client: shard %s(%s)[%d,%d): worker returned a %T, want a full summary",
			spec.Program, spec.Input, spec.Lo, spec.Hi, sum)
	}
	if fs.N() != spec.Runs() {
		return nil, fmt.Errorf("client: shard %s(%s)[%d,%d): worker returned %d runs, want %d",
			spec.Program, spec.Input, spec.Lo, spec.Hi, fs.N(), spec.Runs())
	}
	return fs.Sample(), nil
}
