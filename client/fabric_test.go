package client

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pubtac"
	"pubtac/internal/fault"
	"pubtac/internal/stats"
)

func testSpec(lo, hi int) pubtac.ShardSpec {
	return pubtac.ShardSpec{Program: "p", Input: "main", Lo: lo, Hi: hi}
}

// wantRuns is the deterministic sample a well-behaved fake worker returns
// for a spec — what serve would compute, minus the actual analysis.
func wantRuns(spec pubtac.ShardSpec) []float64 {
	runs := make([]float64, spec.Runs())
	for i := range runs {
		runs[i] = float64(spec.Lo+i) + 0.5
	}
	return runs
}

// shardHandler answers POST /v1/shards with a valid wire summary for the
// requested range after failing the first fail requests with status.
func shardHandler(t *testing.T, fail *atomic.Int64, status int, retryAfter string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if fail != nil && fail.Add(-1) >= 0 {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			http.Error(w, "injected", status)
			return
		}
		var spec pubtac.ShardSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			t.Errorf("bad shard body: %v", err)
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		fs := stats.NewFullSummary(true)
		fs.Push(wantRuns(spec))
		b, err := stats.EncodeSummary(fs)
		if err != nil {
			t.Errorf("encoding summary: %v", err)
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(b)
	}
}

// Permanent errors (409 foreign fingerprint, 400 bad range) fail the shard
// on the first peer without walking the rest or retrying.
func TestPeersFailFastOnPermanentError(t *testing.T) {
	var hits atomic.Int64
	reject := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "campaign configuration fingerprint mismatch", http.StatusConflict)
	})
	var urls []string
	for i := 0; i < 3; i++ {
		ts := httptest.NewServer(reject)
		defer ts.Close()
		urls = append(urls, ts.URL)
	}
	p := NewFabric(PeersConfig{Clock: &fault.Fake{}}, urls...)
	_, err := p.CollectShard(context.Background(), testSpec(0, 8))
	if err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("err = %v, want HTTP 409", err)
	}
	if got := hits.Load(); got != 1 {
		t.Errorf("peers saw %d requests, want exactly 1 (no failover, no retry)", got)
	}
	if st := p.Stats(); st.FailFast != 1 || st.Retries != 0 {
		t.Errorf("stats = %+v, want FailFast=1 Retries=0", st)
	}
}

// 429 load sheds are retryable, and the server's Retry-After floors the
// backoff: the fabric waits at least what the shedding server asked for.
func TestPeersRetryHonorsRetryAfter(t *testing.T) {
	var fail atomic.Int64
	fail.Store(2)
	ts := httptest.NewServer(shardHandler(t, &fail, http.StatusTooManyRequests, "2"))
	defer ts.Close()

	fc := &fault.Fake{}
	p := NewFabric(PeersConfig{Clock: fc}, ts.URL)
	spec := testSpec(4, 12)
	runs, err := p.CollectShard(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(runs, wantRuns(spec)) {
		t.Error("runs differ from the worker's sample")
	}
	if st := p.Stats(); st.Retries != 2 {
		t.Errorf("Retries = %d, want 2", st.Retries)
	}
	sleeps := fc.Sleeps()
	if len(sleeps) != 2 {
		t.Fatalf("backoff slept %d times (%v), want 2", len(sleeps), sleeps)
	}
	for i, d := range sleeps {
		if d != 2*time.Second {
			t.Errorf("sleep %d = %v, want the 2s Retry-After floor", i, d)
		}
	}
}

// The jittered backoff schedule is seeded: two fabrics with the same seed
// replay the same sleeps, and every sleep is equal-jittered in [d/2, d].
func TestPeersBackoffSeeded(t *testing.T) {
	schedule := func(seed uint64) []time.Duration {
		var fail atomic.Int64
		fail.Store(2)
		ts := httptest.NewServer(shardHandler(t, &fail, http.StatusInternalServerError, ""))
		defer ts.Close()
		fc := &fault.Fake{}
		p := NewFabric(PeersConfig{Clock: fc, Policy: RetryPolicy{Seed: seed}}, ts.URL)
		if _, err := p.CollectShard(context.Background(), testSpec(0, 4)); err != nil {
			t.Fatal(err)
		}
		return fc.Sleeps()
	}
	a, b := schedule(7), schedule(7)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed, different backoff schedules: %v vs %v", a, b)
	}
	wantLo := []time.Duration{25 * time.Millisecond, 50 * time.Millisecond}
	for i, d := range a {
		if d < wantLo[i] || d > 2*wantLo[i] {
			t.Errorf("sleep %d = %v, want equal jitter in [%v, %v]", i, d, wantLo[i], 2*wantLo[i])
		}
	}
	if c := schedule(8); reflect.DeepEqual(a, c) {
		t.Errorf("different seeds, identical backoff schedules: %v", a)
	}
}

// A hedged dispatch beats a straggling primary: after the hedge delay the
// shard races on the second peer, whose valid summary wins and cancels the
// straggler.
func TestPeersHedgeBeatsStraggler(t *testing.T) {
	straggler := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body so the server watches the connection; then hang
		// until the fabric cancels this dispatch (losing the hedge race).
		io.Copy(io.Discard, r.Body)
		<-r.Context().Done()
	}))
	defer straggler.Close()
	healthy := httptest.NewServer(shardHandler(t, nil, 0, ""))
	defer healthy.Close()

	p := NewFabric(PeersConfig{
		Policy: RetryPolicy{HedgeDelay: 5 * time.Millisecond},
	}, straggler.URL, healthy.URL)
	spec := testSpec(0, 16)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	runs, err := p.CollectShard(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(runs, wantRuns(spec)) {
		t.Error("hedge winner returned different bytes")
	}
	if st := p.Stats(); st.Hedges != 1 || st.HedgeWins != 1 {
		t.Errorf("stats = %+v, want Hedges=1 HedgeWins=1", st)
	}
}

// Consecutive failures open a peer's breaker: the fabric stops dispatching
// to it and the statusz snapshot says so.
func TestPeersBreakerOpens(t *testing.T) {
	var badHits atomic.Int64
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		badHits.Add(1)
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer bad.Close()
	good := httptest.NewServer(shardHandler(t, nil, 0, ""))
	defer good.Close()

	p := NewFabric(PeersConfig{
		Clock:  &fault.Fake{},
		Policy: RetryPolicy{BreakerThreshold: 2, MaxAttempts: 3},
	}, bad.URL, good.URL)
	for i := 0; i < 4; i++ {
		if _, err := p.CollectShard(context.Background(), testSpec(i, i+4)); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	st := p.Stats()
	if st.BreakerOpens < 1 {
		t.Errorf("BreakerOpens = %d, want >= 1", st.BreakerOpens)
	}
	if st.Peers[0].Breaker != "open" {
		t.Errorf("bad peer breaker = %q, want open", st.Peers[0].Breaker)
	}
	// With the breaker open every further shard goes straight to the
	// healthy peer.
	before := badHits.Load()
	for i := 0; i < 4; i++ {
		if _, err := p.CollectShard(context.Background(), testSpec(i, i+4)); err != nil {
			t.Fatal(err)
		}
	}
	if got := badHits.Load(); got != before {
		t.Errorf("open-breaker peer still saw %d new requests", got-before)
	}
}

// TuneRetry applies the session-level knobs without rebuilding the fabric.
func TestPeersTuneRetry(t *testing.T) {
	p := NewPeers("http://127.0.0.1:1")
	p.TuneRetry(7, 42*time.Millisecond)
	if p.policy.MaxAttempts != 7 || p.policy.HedgeDelay != 42*time.Millisecond {
		t.Errorf("policy = %+v", p.policy)
	}
	p.TuneRetry(-1, -1) // sentinels: leave both untouched
	if p.policy.MaxAttempts != 7 || p.policy.HedgeDelay != 42*time.Millisecond {
		t.Errorf("sentinel overwrote policy: %+v", p.policy)
	}
	p.TuneRetry(-1, 0) // zero hedge explicitly disables
	if p.policy.HedgeDelay != 0 {
		t.Errorf("HedgeDelay = %v, want 0", p.policy.HedgeDelay)
	}
}
