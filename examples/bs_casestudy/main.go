// bs_casestudy reproduces the Section 3.3 walk-through on the binary
// search benchmark:
//
//  1. the 8 input vectors triggering the maximum number of iterations
//     exercise 8 different paths;
//  2. each pubbed path's measured distribution upper-bounds every original
//     path (Figure 2's message);
//  3. for input v9, a campaign of R_pub runs misses the ECCDF knee that the
//     R_pub+tac campaign captures (Figure 4's message).
//
// Run with:
//
//	go run ./examples/bs_casestudy
package main

import (
	"context"
	"fmt"
	"log"

	"pubtac"
	"pubtac/internal/malardalen"
	"pubtac/internal/mbpta"
	"pubtac/internal/stats"
)

func main() {
	log.SetFlags(0)

	bench, err := pubtac.Benchmark("bs")
	if err != nil {
		log.Fatal(err)
	}
	pubbed, _, err := pubtac.Transform(bench.Program)
	if err != nil {
		log.Fatal(err)
	}
	model := pubtac.DefaultModel()

	// --- Part 1 & 2: the 8 max-iteration paths, original vs pubbed. ---
	const runs = 20000 // the paper uses 1e6 per path; scaled for a demo
	inputs := malardalen.BSMaxIterationInputs(bench)
	fmt.Printf("%d maximum-iteration input vectors (Table 1's v1..v15)\n\n", len(inputs))
	fmt.Printf("%-6s %12s %12s %12s\n", "input", "orig max", "pubbed max", "pubbed/orig")

	var origOverall float64
	pubMins := make([]float64, 0, len(inputs))
	for _, in := range inputs {
		orig := bench.Program.MustExec(in)
		pubd := pubbed.MustExec(in)
		so := mbpta.Collect(orig.Trace, model, runs, mbpta.Seed("cs/o/"+in.Name), 0)
		sp := mbpta.Collect(pubd.Trace, model, runs, mbpta.Seed("cs/p/"+in.Name), 0)
		mo, mp := stats.Max(so), stats.Max(sp)
		if mo > origOverall {
			origOverall = mo
		}
		pubMins = append(pubMins, mp)
		fmt.Printf("%-6s %12.0f %12.0f %12.2f\n", in.Name, mo, mp, mp/mo)
	}
	lowestPub := stats.Min(pubMins)
	fmt.Printf("\nhighest observed time across ORIGINAL paths: %.0f cycles\n", origOverall)
	fmt.Printf("lowest per-path maximum across PUBBED paths: %.0f cycles\n", lowestPub)
	fmt.Println("(every pubbed path upper-bounds every original path: Corollary 1)")

	// --- Part 3: v9 with R_pub vs R_pub+tac (Figure 4). ---
	s := pubtac.NewSession(pubtac.WithCampaignCap(80000))
	v9, err := bench.Input("v9")
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.AnalyzePath(context.Background(), bench.Program, v9)
	if err != nil {
		log.Fatal(err)
	}
	pa := res.Analysis()
	fmt.Printf("\nv9: R_pub = %d runs, R_pub+tac = %d runs\n", pa.RPub, pa.R)
	fmt.Printf("%-22s %12s %12s\n", "", "Rpub sample", "Rp+t sample")
	for _, p := range []float64{1e-6, 1e-9, 1e-12} {
		fmt.Printf("pWCET @ %-14.0e %12.0f %12.0f\n",
			p, pa.PubOnly.PWCET(p), pa.Full.PWCET(p))
	}
	fmt.Printf("max observed:          %12.0f %12.0f\n",
		pa.PubOnly.MaxObserved(), pa.Full.MaxObserved())
	fmt.Println("\nthe larger campaign observes the rare conflictive cache placements")
	fmt.Println("(the ECCDF 'knee'), so its pWCET accounts for them")
}
