// Quickstart: analyze the binary-search benchmark with the full PUB+TAC
// pipeline through the Session API and print the resulting pWCET figures.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"pubtac"
)

func main() {
	log.SetFlags(0)

	// 1. Pick a multipath program. bs is the paper's running example: a
	//    binary search whose input decides both the iteration count and
	//    the branch taken at every probe.
	bench, err := pubtac.Benchmark("bs")
	if err != nil {
		log.Fatal(err)
	}

	// 2. Open an analysis session. The defaults reproduce the paper's
	//    platform (4KB 2-way 32B-line IL1/DL1, random placement and
	//    replacement); WithCampaignCap keeps this demo fast — drop it for
	//    a full-size campaign, or use WithScale to shrink everything
	//    proportionally.
	s := pubtac.NewSession(
		pubtac.WithCampaignCap(20000),
	)

	// 3. Run the pipeline on one input vector: PUB transforms the program,
	//    TAC sizes the campaign from the pubbed path's address sequence,
	//    and MBPTA/EVT turns the measurements into a pWCET curve that
	//    upper-bounds EVERY path of the original program under every cache
	//    layout occurring with relevant probability. The context bounds the
	//    campaign: cancel it (or let the deadline expire) and the analysis
	//    returns promptly with ctx.Err().
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := s.AnalyzePath(ctx, bench.Program, bench.Default())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("PUB balanced %d conditional constructs (code grew %.2fx)\n",
		res.PubConstructs, res.PubCodeGrowth)
	fmt.Printf("TAC found %d conflict classes; requires %d runs (MBPTA alone: %d)\n",
		res.TACClasses, res.RTac, res.RPub)
	fmt.Printf("campaign: %d runs simulated\n", res.RunsUsed)
	for _, p := range []float64{1e-6, 1e-9, 1e-12} {
		fmt.Printf("pWCET @ %.0e per run: %.0f cycles\n", p, res.PWCET(p))
	}
}
