// custom_program shows how to model your own multipath program with the
// public IR and push it through the PUB+TAC pipeline: an airbag-controller-
// style task that classifies a sensor reading (three-way switch) and runs a
// data-dependent smoothing loop — the kind of control code whose worst-case
// path is hard to pin down by testing alone.
//
// Run with:
//
//	go run ./examples/custom_program
package main

import (
	"context"
	"fmt"
	"log"

	"pubtac"
)

func main() {
	log.SetFlags(0)

	// Data objects of the task: a sensor ring buffer, a calibration table
	// and a frame of local scalars.
	samples := &pubtac.Symbol{Name: "samples", ElemBytes: 4, Len: 32}
	calib := &pubtac.Symbol{Name: "calib", ElemBytes: 4, Len: 16}
	stack := &pubtac.Symbol{Name: "stack", ElemBytes: 4, Len: 8}

	iAt := func(s *pubtac.State) int64 { return s.Int("i") }

	// Severity classification: a three-way switch with very different
	// amounts of work per case.
	classify := &pubtac.Switch{
		Label: "severity",
		Head:  &pubtac.Block{Label: "sense", NInstr: 6, Accs: []*pubtac.Acc{pubtac.At("samples", 0)}},
		Selector: func(s *pubtac.State) int {
			v := s.Arr("samples")[0]
			switch {
			case v > 80:
				return 2 // crash
			case v > 40:
				return 1 // warning
			default:
				return 0 // nominal
			}
		},
		Cases: []pubtac.Node{
			&pubtac.Block{Label: "nominal", NInstr: 4,
				Accs: []*pubtac.Acc{pubtac.At("calib", 0)}},
			&pubtac.Block{Label: "warning", NInstr: 12,
				Accs: []*pubtac.Acc{pubtac.At("calib", 0), pubtac.At("calib", 4)}},
			&pubtac.Block{Label: "crash", NInstr: 24,
				Accs: []*pubtac.Acc{
					pubtac.At("calib", 0), pubtac.At("calib", 4),
					pubtac.At("calib", 8), pubtac.At("calib", 12),
				},
				Do: func(s *pubtac.State) { s.SetInt("deploy", 1) }},
		},
	}

	// Smoothing: iterations depend on the input window size.
	smooth := &pubtac.Loop{
		Label: "smooth",
		Head:  &pubtac.Block{Label: "sh", NInstr: 3, Accs: []*pubtac.Acc{pubtac.Scalar("stack")}},
		Bound: func(s *pubtac.State) int { return int(s.Int("window")) },
		// The analysis relies on input vectors triggering the highest loop
		// bounds; MaxBound declares that bound statically.
		MaxBound: 32,
		Body: &pubtac.Block{Label: "acc", NInstr: 7,
			Accs: []*pubtac.Acc{
				pubtac.Elem("samples[i]", "samples", iAt),
				pubtac.Elem("calib[i%16]", "calib", func(s *pubtac.State) int64 { return s.Int("i") % 16 }),
			},
			Do: func(s *pubtac.State) { s.SetInt("i", s.Int("i")+1) }},
	}

	root := &pubtac.Seq{Nodes: []pubtac.Node{
		&pubtac.Block{Label: "init", NInstr: 5,
			Do: func(s *pubtac.State) { s.SetInt("i", 0) }},
		classify,
		smooth,
	}}
	prog := pubtac.NewProgram("airbag", root, samples, calib, stack)

	// Input vectors: the nominal case (what a test bench would likely
	// exercise) and a crash-severity case. Both use the full window, per
	// the loop-bound coverage requirement.
	window := make([]int64, 32)
	for i := range window {
		window[i] = int64(i * 3 % 100)
	}
	nominal := pubtac.Input{Name: "nominal",
		Ints:   map[string]int64{"window": 32},
		Arrays: map[string][]int64{"samples": window, "calib": make([]int64, 16)},
	}
	crashWin := append([]int64(nil), window...)
	crashWin[0] = 95
	crash := pubtac.Input{Name: "crash",
		Ints:   map[string]int64{"window": 32},
		Arrays: map[string][]int64{"samples": crashWin, "calib": make([]int64, 16)},
	}

	ctx := context.Background()
	s := pubtac.NewSession(pubtac.WithCampaignCap(20000))

	// Analyzing the NOMINAL vector still upper-bounds the crash path:
	// PUB inflates the nominal case with the crash case's access pattern.
	res, err := s.AnalyzePath(ctx, prog, nominal)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PUB balanced %d constructs; %d accesses inserted\n",
		res.PubConstructs, res.Analysis().PubReport.InsertedAccesses)
	fmt.Printf("runs: MBPTA alone %d, TAC %d -> campaign %d\n",
		res.RPub, res.RTac, res.RunsUsed)
	fmt.Printf("pWCET@1e-12 from the nominal vector: %.0f cycles\n", res.PWCET(1e-12))

	// Corollary 2: analyzing more pubbed paths can only tighten the bound.
	// The session fans both paths out concurrently and transforms the
	// program only once.
	multi, err := s.AnalyzeMultiPath(ctx, prog, []pubtac.Input{nominal, crash})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pWCET@1e-12 minimized over 2 pubbed paths: %.0f cycles (path %q)\n",
		multi.PWCET(1e-12), multi.Best(1e-12).Input)
}
