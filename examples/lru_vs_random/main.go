// lru_vs_random demonstrates Section 2's key property: on a
// time-randomized cache, inserting an access into a sequence can only
// worsen the (probabilistic) execution time — the foundation PUB stands on
// — whereas on a time-deterministic LRU cache inserting an access can make
// the program FASTER, which is why PUB is incompatible with LRU.
//
// The paper's example: in a 2-way cache, {ABCA} misses 4 times under LRU
// while the longer {ABACA} misses only 3.
//
// Run with:
//
//	go run ./examples/lru_vs_random
package main

import (
	"fmt"

	"pubtac/internal/cache"
	"pubtac/internal/mbpta"
	"pubtac/internal/proc"
	"pubtac/internal/stats"
	"pubtac/internal/trace"
)

func main() {
	short := trace.Repeat(trace.FromLetters("ABCA", 32), 200)
	long := trace.Repeat(trace.FromLetters("ABACA", 32), 200) // = ins(short, A)

	// --- Time-deterministic platform: modulo + LRU, single-set caches so
	// the three lines contend for two ways, like the paper's example. ---
	det := proc.Model{
		IL1: smallCache(cache.ModuloPlacement, cache.LRUReplacement),
		DL1: smallCache(cache.ModuloPlacement, cache.LRUReplacement),
		Lat: proc.DefaultLatency(),
	}
	eng := proc.NewEngine(det)
	tShort := eng.Run(short, 1)
	tLong := eng.Run(long, 1)
	fmt.Println("time-deterministic cache (modulo + LRU, 1 set x 2 ways):")
	fmt.Printf("  {ABCA}^200  : %6d cycles\n", tShort)
	fmt.Printf("  {ABACA}^200 : %6d cycles  <- LONGER sequence, FASTER program!\n", tLong)
	if tLong < tShort {
		fmt.Println("  inserting an access reduced execution time: PUB is unsound here")
	}

	// --- Time-randomized platform: random placement + replacement. ---
	rnd := proc.Model{
		IL1: smallCache(cache.RandomPlacement, cache.RandomReplacement),
		DL1: smallCache(cache.RandomPlacement, cache.RandomReplacement),
		Lat: proc.DefaultLatency(),
	}
	// mbpta.Collect is the campaign primitive the analysis layers build on:
	// same per-run seeds as a serial campaign, fanned out over the machine.
	const runs = 4000
	sShort := mbpta.Collect(short, rnd, runs, 7, 0)
	sLong := mbpta.Collect(long, rnd, runs, 7, 0)
	fmt.Println("\ntime-randomized cache (random placement + replacement, 2 ways):")
	fmt.Printf("  {ABCA}^200  : mean %7.0f  q99 %7.0f  max %7.0f\n",
		stats.Mean(sShort), stats.Quantile(sShort, 0.99), stats.Max(sShort))
	fmt.Printf("  {ABACA}^200 : mean %7.0f  q99 %7.0f  max %7.0f\n",
		stats.Mean(sLong), stats.Quantile(sLong, 0.99), stats.Max(sLong))
	if stats.NewECDF(sLong).UpperBounds(stats.NewECDF(sShort), 0.02) {
		fmt.Println("  the inserted access made the distribution (stochastically) worse:")
		fmt.Println("  adding accesses is always pessimistic -> PUB is sound (Equation 1)")
	}
}

// smallCache returns a 2-way cache. For the LRU demonstration a single set
// makes A, B, C contend exactly as in the paper's example; the randomized
// variant uses 8 sets so placements vary.
func smallCache(p cache.PlacementPolicy, r cache.ReplacementPolicy) cache.Config {
	sets := 8
	if p == cache.ModuloPlacement {
		sets = 1
	}
	return cache.Config{Sets: sets, Ways: 2, LineBytes: 32, Placement: p, Replacement: r}
}
