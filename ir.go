package pubtac

import "pubtac/internal/program"

// Re-exports of the program IR, so library users can model their own
// multipath programs without touching internal packages. See
// examples/custom_program for a complete walk-through.

// State is the mutable program state threaded through execution.
type State = program.State

// Acc is a data-access template (symbol + index expression + identity).
type Acc = program.Acc

// Node is a program tree node.
type Node = program.Node

// Block is a straight-line region: instructions, data accesses, action.
type Block = program.Block

// Seq is sequential composition of nodes.
type Seq = program.Seq

// If is a two-way conditional construct.
type If = program.If

// Switch is an n-way conditional construct.
type Switch = program.Switch

// Loop is a counted loop with a static worst-case bound.
type Loop = program.Loop

// While is a condition-controlled loop with a static worst-case bound.
type While = program.While

// Symbol is a data object (name, element size, length).
type Symbol = program.Symbol

// NewProgram creates an unlinked program from a tree and its data symbols;
// call Link (or let the analyzer do it) before execution.
func NewProgram(name string, root Node, symbols ...*Symbol) *Program {
	return program.New(name, root, symbols...)
}

// Scalar returns an access template for a scalar symbol.
func Scalar(sym string) *Acc { return program.Scalar(sym) }

// Elem returns an access template for sym[index(state)] with identity id.
// Templates with equal IDs are treated as the same access by PUB's pattern
// merge.
func Elem(id, sym string, index func(s *State) int64) *Acc {
	return program.Elem(id, sym, index)
}

// At returns an access template for the fixed element sym[i].
func At(sym string, i int64) *Acc { return program.At(sym, i) }
