package pubtac

import (
	"time"

	"pubtac/internal/core"
)

// ProgressEvent reports campaign growth for one analyzed path; see
// WithProgress. Target can grow between events while MBPTA convergence
// extends its own requirement and when the TAC campaign raises it to R.
type ProgressEvent = core.ProgressEvent

// Option configures a Session; see NewSession.
type Option func(*sessionSettings)

// sessionSettings accumulates option values before a Session is built.
type sessionSettings struct {
	cfg        core.Config
	workers    int
	workersSet bool
	scale      float64
	capSet     bool
	progress   func(ProgressEvent)
	peerRetry  int           // -1 = unset
	hedgeDelay time.Duration // -1 = unset
}

// WithConfig replaces the session's entire pipeline configuration (platform
// model, MBPTA and TAC parameters, campaign cap). Later options still apply
// on top; use it as an escape hatch when the dedicated options don't reach
// a knob.
func WithConfig(cfg Config) Option {
	return func(s *sessionSettings) {
		s.cfg = cfg
		s.capSet = true
	}
}

// WithModel sets the simulated platform (caches and latencies). The default
// is the paper's 4KB 2-way 32B-line IL1/DL1 with random placement and
// replacement.
func WithModel(m Model) Option {
	return func(s *sessionSettings) { s.cfg.Model = m }
}

// WithWorkers bounds the session's total simulation parallelism across all
// concurrently analyzed paths (0, the default, means GOMAXPROCS). Results
// are deterministic and independent of the worker count.
func WithWorkers(n int) Option {
	return func(s *sessionSettings) {
		s.workers = n
		s.workersSet = true
	}
}

// WithScale shrinks (or grows) every campaign proportionally: MBPTA's
// initial runs, increment and convergence ceiling are multiplied by scale.
// Scale 1.0 (the default) reproduces paper-size campaigns; 0.05 is a
// laptop-friendly setting. Analytic outputs (TAC run requirements,
// probabilities) are exact at every scale.
//
// Unless WithCampaignCap or WithConfig sets a cap explicitly, the session
// caps each path's simulated runs at the scaled equivalent of the
// evaluation's 7×10^5-run campaign (so 7×10^5 at scale 1.0); an explicit
// cap is always honored verbatim.
func WithScale(scale float64) Option {
	return func(s *sessionSettings) { s.scale = scale }
}

// WithCampaignCap bounds the number of runs actually simulated per path
// (0 = no cap). Reported requirements (RPub, RTac, R) are unaffected; only
// the measured sample is truncated.
func WithCampaignCap(n int) Option {
	return func(s *sessionSettings) {
		s.cfg.CampaignCap = n
		s.capSet = true
	}
}

// WithSeed salts every campaign root seed, giving this session campaigns
// statistically independent from (but just as reproducible as) the default
// ones. Seed 0, the default, reproduces the historical per-path seeds.
func WithSeed(seed uint64) Option {
	return func(s *sessionSettings) { s.cfg.SeedSalt = seed }
}

// WithProgress installs a campaign progress sink. Events arrive serialized
// (one call at a time) but from analysis goroutines, not the caller's;
// the callback must not block for long, or it stalls the campaigns.
// Besides campaign growth, the sink receives "warning" events (for example
// an i.i.d. admissibility failure at convergence), with the detail in
// ProgressEvent.Note.
func WithProgress(fn func(ProgressEvent)) Option {
	return func(s *sessionSettings) { s.progress = fn }
}

// WithReferenceEnumeration keeps TAC's original full-sequence-scan group
// enumeration instead of the posting-list enumeration with its
// reuse-distance prefilter and parallel group evaluation. Results are
// bit-identical either way; the reference arm exists as the equivalence
// oracle (mirroring the simulation engine's and the i.i.d. battery's
// reference modes) and as a hedge while the indexed path is new.
func WithReferenceEnumeration(on bool) Option {
	return func(s *sessionSettings) { s.cfg.TAC.ReferenceEnumeration = on }
}

// WithStreamingEstimation switches the estimation layer to the
// bounded-memory streaming summary: each path's campaign retains an exact
// top-K tail reservoir, a quantile sketch and the streaming i.i.d. battery
// instead of the full sample, so peak estimation memory is O(budget) per
// path regardless of how many runs TAC demands. budget is the memory knob K
// (reservoir size, sketch buckets, battery retention); 0 selects the
// default (8192). The pWCET tail fit is bit-identical to the full-sample
// path while the auto-fit search window (n/5 tail candidates) fits the
// reservoir; beyond that the window clamps to the reservoir, and body
// quantiles and the battery median resolve through the sketch (value error
// under 2·span/(budget-1)). Streaming estimates do not retain the sample.
func WithStreamingEstimation(budget int) Option {
	return func(s *sessionSettings) {
		s.cfg.MBPTA.Streaming = true
		s.cfg.MBPTA.StreamBudget = budget
	}
}

// WithPeers installs a shard collector: every campaign's collection is
// split into shards dispatched through sc — typically client.NewPeers over
// a set of pubtacd workers — with failed shards recomputed locally, so a
// dead or misconfigured peer degrades throughput, never results. Sharded
// results are bit-identical to local ones (run i depends only on the
// campaign root and i, and the fill is index-addressed), which is why the
// sharding knobs do not enter config fingerprints or cache keys. A nil sc
// restores purely local collection.
func WithPeers(sc ShardCollector) Option {
	return func(s *sessionSettings) { s.cfg.Sharder = sc }
}

// WithShards sets how many shards each campaign range is split into when a
// shard collector is installed (0, the default, asks the collector —
// typically the peer count). More shards than peers overlaps transfer with
// compute and shrinks the cost of a shard failing over to local
// recomputation; the results are identical at any shard count.
func WithShards(n int) Option {
	return func(s *sessionSettings) { s.cfg.Shards = n }
}

// WithPeerRetry bounds how many times the installed shard collector
// dispatches one shard before the coordinator's local fallback recomputes
// it (n <= 0 keeps the collector's own default, typically 3). The knob
// reaches the collector through an optional TuneRetry method — the client
// package's peer fabric implements it — and, like every sharding knob,
// never enters config fingerprints: retries change where bytes are
// computed, not what they are.
func WithPeerRetry(n int) Option {
	return func(s *sessionSettings) { s.peerRetry = n }
}

// WithHedgeDelay arms hedged shard dispatch: when the primary peer has
// neither answered nor failed after d, the same shard races on a second
// peer and the first valid summary wins (the loser is cancelled). Zero
// disables hedging (the default — hedges spend duplicate work to cut tail
// latency, so they are opt-in); negative keeps the collector's default.
// Bit-identity is unaffected: both racers compute the same run range.
func WithHedgeDelay(d time.Duration) Option {
	return func(s *sessionSettings) { s.hedgeDelay = d }
}

// WithIIDHardFail promotes the i.i.d. admissibility warning to a hard
// failure: analyses whose sample fails the battery (runs, Ljung-Box,
// Kolmogorov-Smirnov at the configured Alpha) return an error wrapping
// ErrIIDInadmissible instead of shipping the pWCET. A WithProgress sink
// still receives the "warning" event before the analysis aborts. Off by
// default — the battery is diagnostic, and campaign runs draw independent
// seeds — but certification-style workflows can refuse inadmissible
// estimates outright.
func WithIIDHardFail(on bool) Option {
	return func(s *sessionSettings) { s.cfg.IIDHardFail = on }
}

// defaultSettings returns the paper's evaluation setup at full scale.
func defaultSettings() *sessionSettings {
	return &sessionSettings{cfg: core.DefaultConfig(), scale: 1.0, peerRetry: -1, hedgeDelay: -1}
}

// build finalizes the settings into a core configuration. The scaling
// policy itself lives in core.Config.Scaled, shared with the experiment
// generators.
func (s *sessionSettings) build() core.Config {
	cfg := s.cfg
	scaledCfg := cfg.Scaled(s.scale)
	if s.scale != 1.0 {
		// At scale 1.0 the MBPTA knobs are left exactly as configured
		// (Scaled would floor a deliberately tiny WithConfig campaign).
		cfg.MBPTA = scaledCfg.MBPTA
	}
	// An explicit cap (WithCampaignCap, WithConfig) is honored verbatim;
	// otherwise the session caps campaigns at the scaled equivalent of the
	// evaluation's 7e5-run campaign, continuously in the scale.
	if !s.capSet {
		cfg.CampaignCap = scaledCfg.CampaignCap
	}
	if s.workersSet {
		cfg.MBPTA.Workers = s.workers
	} else {
		s.workers = cfg.MBPTA.Workers
	}
	// Thread the resilience knobs into the shard collector when it accepts
	// them. They live outside core.Config because they cannot affect result
	// bytes — only how hard the fabric tries before local fallback.
	if s.cfg.Sharder != nil && (s.peerRetry > 0 || s.hedgeDelay >= 0) {
		if t, ok := s.cfg.Sharder.(interface {
			TuneRetry(int, time.Duration)
		}); ok {
			t.TuneRetry(s.peerRetry, s.hedgeDelay)
		}
	}
	return cfg
}
