package pubtac_test

import (
	"context"
	"testing"

	"pubtac"
)

func TestFacadeQuickstart(t *testing.T) {
	bench, err := pubtac.Benchmark("bs")
	if err != nil {
		t.Fatal(err)
	}
	cfg := pubtac.DefaultConfig()
	cfg.MBPTA.InitialRuns = 200
	cfg.MBPTA.Increment = 200
	cfg.MBPTA.MaxRuns = 2000
	cfg.CampaignCap = 3000
	s := pubtac.NewSession(pubtac.WithConfig(cfg))
	res, err := s.AnalyzePath(context.Background(), bench.Program, bench.Default())
	if err != nil {
		t.Fatal(err)
	}
	if res.PWCET(1e-12) <= 0 || res.R <= 0 {
		t.Fatalf("implausible result: %+v", res)
	}
}

func TestFacadeBenchmarksComplete(t *testing.T) {
	if got := len(pubtac.Benchmarks()); got != 11 {
		t.Fatalf("benchmarks = %d, want 11", got)
	}
	if _, err := pubtac.Benchmark("unknown"); err == nil {
		t.Fatal("expected error")
	}
}

func TestFacadeTransform(t *testing.T) {
	bench, err := pubtac.Benchmark("cnt")
	if err != nil {
		t.Fatal(err)
	}
	pubbed, rep, err := pubtac.Transform(bench.Program)
	if err != nil {
		t.Fatal(err)
	}
	if pubbed == nil || rep.Constructs == 0 {
		t.Fatalf("transform incomplete: %+v", rep)
	}
}
