package pubtac

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"

	"pubtac/internal/core"
	"pubtac/internal/pub"
)

// Fingerprint is a SHA-256 content address over the inputs of an analysis.
// The pipeline is a deterministic function of (program IR, configuration,
// campaign seed), so equal fingerprints imply bit-identical results — the
// property the analysis service's result store is keyed on. Clients and
// servers derive fingerprints through the same three entry points
// (Session.ConfigFingerprint, FingerprintProgram, Job.Key) and therefore
// agree on keys without exchanging anything but the hash.
type Fingerprint [sha256.Size]byte

// String returns the fingerprint as lowercase hex.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// IsZero reports whether the fingerprint is unset.
func (f Fingerprint) IsZero() bool { return f == Fingerprint{} }

// MarshalText implements encoding.TextMarshaler (hex).
func (f Fingerprint) MarshalText() ([]byte, error) {
	return []byte(f.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (f *Fingerprint) UnmarshalText(text []byte) error {
	p, err := ParseFingerprint(string(text))
	if err != nil {
		return err
	}
	*f = p
	return nil
}

// ParseFingerprint parses the hex form produced by Fingerprint.String.
func ParseFingerprint(s string) (Fingerprint, error) {
	var f Fingerprint
	if len(s) != hex.EncodedLen(len(f)) {
		return f, fmt.Errorf("pubtac: fingerprint %q: want %d hex chars", s, hex.EncodedLen(len(f)))
	}
	if _, err := hex.Decode(f[:], []byte(s)); err != nil {
		return f, fmt.Errorf("pubtac: fingerprint %q: %v", s, err)
	}
	return f, nil
}

// ConfigFingerprint returns the fingerprint of the session's resolved
// pipeline configuration: a SHA-256 over the canonical, field-order-stable
// encoding of every result-affecting field (internal/core's
// EncodingVersion-stamped encoding). Worker counts and the progress sink are
// excluded — results are worker-count-invariant — so sessions differing only
// in parallelism or observation fingerprint identically and share cached
// results.
func (s *Session) ConfigFingerprint() Fingerprint {
	h := sha256.New()
	h.Write(s.cfg.AppendCanonical(nil))
	return sumFingerprint(h)
}

// FingerprintProgram fingerprints one analysis input: the program p on input
// vector in under campaign seed salt seed. The fingerprint is computed the
// way the pipeline consumes the program — PUB-transform, then execute the
// pubbed path — and hashes the resulting address trace, path signature and
// transformation report rather than the IR tree itself, so it captures the
// behavior of index expressions and semantic actions that no structural
// encoding of closures could. Programs whose pubbed path produces the same
// access sequence are, by construction, the same analysis.
//
// The transform and single execution cost microseconds to low milliseconds —
// negligible next to a campaign, which is what a matching cache entry saves.
func FingerprintProgram(p *Program, in Input, seed uint64) (Fingerprint, error) {
	pubbed, rep, err := pub.Transform(p)
	if err != nil {
		return Fingerprint{}, fmt.Errorf("pubtac: fingerprinting %s: %w", p.Name, err)
	}
	res, err := pubbed.Exec(in)
	if err != nil {
		return Fingerprint{}, fmt.Errorf("pubtac: fingerprinting %s(%s): %w", p.Name, in.Name, err)
	}

	h := sha256.New()
	fmt.Fprintf(h, "pubtac-program-v%d;", core.EncodingVersion)
	writeString(h, p.Name)
	writeString(h, in.Name)
	writeString(h, res.Path)
	writeReport(h, rep)
	var u8 [8]byte
	binary.LittleEndian.PutUint64(u8[:], seed)
	h.Write(u8[:])
	// The trace: per access, the byte address and the target cache. This is
	// what TAC and every campaign replay consume.
	binary.LittleEndian.PutUint64(u8[:], uint64(len(res.Trace)))
	h.Write(u8[:])
	for _, a := range res.Trace {
		binary.LittleEndian.PutUint64(u8[:], a.Addr)
		h.Write(u8[:])
		h.Write([]byte{byte(a.Kind)})
	}
	return sumFingerprint(h), nil
}

// Key fingerprints the job under campaign seed salt seed: the ordered
// combination of FingerprintProgram over every input vector. Combined with
// Session.ConfigFingerprint via AnalysisKey it addresses the job's full
// result content.
func (j Job) Key(seed uint64) (Fingerprint, error) {
	if j.Program == nil {
		return Fingerprint{}, fmt.Errorf("pubtac: job key: nil program")
	}
	if len(j.Inputs) == 0 {
		return Fingerprint{}, fmt.Errorf("pubtac: job key: %s has no inputs", j.Program.Name)
	}
	h := sha256.New()
	fmt.Fprintf(h, "pubtac-job-v%d;", core.EncodingVersion)
	for _, in := range j.Inputs {
		fp, err := FingerprintProgram(j.Program, in, seed)
		if err != nil {
			return Fingerprint{}, err
		}
		h.Write(fp[:])
	}
	return sumFingerprint(h), nil
}

// AnalysisKey derives the content-addressed cache key of a batch analysis:
// the result schema version, the session's configuration fingerprint, and
// the job keys in submission order. Two submissions with equal AnalysisKeys
// receive byte-identical BatchResult JSON; the pubtacd result store is keyed
// on exactly this value, and remote clients may precompute it to probe the
// cache without shipping a request body.
func AnalysisKey(cfg Fingerprint, jobs ...Fingerprint) Fingerprint {
	h := sha256.New()
	fmt.Fprintf(h, "pubtac-analysis-v%d-schema%d;", core.EncodingVersion, ResultSchemaVersion)
	h.Write(cfg[:])
	for _, j := range jobs {
		h.Write(j[:])
	}
	return sumFingerprint(h)
}

func sumFingerprint(h hash.Hash) Fingerprint {
	var f Fingerprint
	h.Sum(f[:0])
	return f
}

// writeString writes a length-prefixed string (unambiguous concatenation).
func writeString(h hash.Hash, s string) {
	var u8 [8]byte
	binary.LittleEndian.PutUint64(u8[:], uint64(len(s)))
	h.Write(u8[:])
	h.Write([]byte(s))
}

// writeReport hashes the PUB report fields that surface in a Result.
func writeReport(h hash.Hash, rep pub.Report) {
	var u8 [8]byte
	for _, v := range []int{
		rep.Constructs, rep.InsertedAccesses, rep.InsertedInstrs,
		rep.InsertedSubtrees, rep.OrigCodeBytes, rep.PubbedCodeBytes,
	} {
		binary.LittleEndian.PutUint64(u8[:], uint64(v))
		h.Write(u8[:])
	}
}
