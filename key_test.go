package pubtac_test

import (
	"encoding/json"
	"testing"

	"pubtac"
)

func TestFingerprintTextRoundTrip(t *testing.T) {
	bench, err := pubtac.Benchmark("bs")
	if err != nil {
		t.Fatal(err)
	}
	fp, err := pubtac.FingerprintProgram(bench.Program, bench.Default(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if fp.IsZero() {
		t.Fatal("fingerprint of a real program is zero")
	}
	if l := len(fp.String()); l != 64 {
		t.Fatalf("hex form is %d chars, want 64", l)
	}
	back, err := pubtac.ParseFingerprint(fp.String())
	if err != nil {
		t.Fatal(err)
	}
	if back != fp {
		t.Fatalf("parse(String()) = %s, want %s", back, fp)
	}
	// Through JSON (MarshalText/UnmarshalText).
	buf, err := json.Marshal(fp)
	if err != nil {
		t.Fatal(err)
	}
	var dec pubtac.Fingerprint
	if err := json.Unmarshal(buf, &dec); err != nil {
		t.Fatal(err)
	}
	if dec != fp {
		t.Fatalf("JSON round trip = %s, want %s", dec, fp)
	}
	for _, bad := range []string{"", "zz", fp.String()[:63], fp.String() + "00", "g" + fp.String()[1:]} {
		if _, err := pubtac.ParseFingerprint(bad); err == nil {
			t.Errorf("ParseFingerprint(%q) accepted", bad)
		}
	}
	if !(pubtac.Fingerprint{}).IsZero() {
		t.Error("zero fingerprint not IsZero")
	}
}

func TestFingerprintProgramSensitivity(t *testing.T) {
	bs, err := pubtac.Benchmark("bs")
	if err != nil {
		t.Fatal(err)
	}
	cnt, err := pubtac.Benchmark("cnt")
	if err != nil {
		t.Fatal(err)
	}
	base, err := pubtac.FingerprintProgram(bs.Program, bs.Default(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic: a fresh benchmark instance fingerprints identically.
	bs2, _ := pubtac.Benchmark("bs")
	again, err := pubtac.FingerprintProgram(bs2.Program, bs2.Default(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if again != base {
		t.Fatal("fingerprint not deterministic across benchmark instances")
	}
	// Sensitive to the input vector, the seed, and the program.
	if fp, _ := pubtac.FingerprintProgram(bs.Program, bs.Inputs[1], 0); fp == base {
		t.Error("different input, same fingerprint")
	}
	if fp, _ := pubtac.FingerprintProgram(bs.Program, bs.Default(), 7); fp == base {
		t.Error("different seed, same fingerprint")
	}
	if fp, _ := pubtac.FingerprintProgram(cnt.Program, cnt.Default(), 0); fp == base {
		t.Error("different program, same fingerprint")
	}
}

func TestConfigFingerprintInvariance(t *testing.T) {
	base := pubtac.NewSession().ConfigFingerprint()
	if base.IsZero() {
		t.Fatal("config fingerprint is zero")
	}
	// Worker counts and progress sinks don't affect results, so they must
	// not affect the fingerprint — daemons differing only in parallelism
	// share cached results.
	if fp := pubtac.NewSession(pubtac.WithWorkers(3)).ConfigFingerprint(); fp != base {
		t.Error("worker count changed the config fingerprint")
	}
	sink := pubtac.NewSession(pubtac.WithProgress(func(pubtac.ProgressEvent) {}))
	if fp := sink.ConfigFingerprint(); fp != base {
		t.Error("progress sink changed the config fingerprint")
	}
	// Result-affecting knobs must change it.
	for name, s := range map[string]*pubtac.Session{
		"scale":     pubtac.NewSession(pubtac.WithScale(0.05)),
		"seed":      pubtac.NewSession(pubtac.WithSeed(1)),
		"cap":       pubtac.NewSession(pubtac.WithCampaignCap(123)),
		"streaming": pubtac.NewSession(pubtac.WithStreamingEstimation(0)),
		"hardfail":  pubtac.NewSession(pubtac.WithIIDHardFail(true)),
	} {
		if fp := s.ConfigFingerprint(); fp == base {
			t.Errorf("%s: result-affecting option left the fingerprint unchanged", name)
		}
	}
}

func TestJobKey(t *testing.T) {
	bench, err := pubtac.Benchmark("bs")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (pubtac.Job{}).Key(0); err == nil {
		t.Error("nil-program job produced a key")
	}
	if _, err := (pubtac.Job{Program: bench.Program}).Key(0); err == nil {
		t.Error("inputless job produced a key")
	}
	two := pubtac.Job{Program: bench.Program, Inputs: bench.Inputs[:2]}
	k1, err := two.Key(0)
	if err != nil {
		t.Fatal(err)
	}
	swapped := pubtac.Job{Program: bench.Program,
		Inputs: []pubtac.Input{bench.Inputs[1], bench.Inputs[0]}}
	k2, err := swapped.Key(0)
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k2 {
		t.Error("input order does not affect the job key")
	}
}

func TestAnalysisKeyOrderSensitive(t *testing.T) {
	jobs, err := pubtac.BenchmarkJobs("bs", "crc")
	if err != nil {
		t.Fatal(err)
	}
	cfg := pubtac.NewSession().ConfigFingerprint()
	ka, err := jobs[0].Key(0)
	if err != nil {
		t.Fatal(err)
	}
	kb, err := jobs[1].Key(0)
	if err != nil {
		t.Fatal(err)
	}
	if pubtac.AnalysisKey(cfg, ka, kb) == pubtac.AnalysisKey(cfg, kb, ka) {
		t.Error("job order does not affect the analysis key")
	}
	if pubtac.AnalysisKey(cfg, ka) == pubtac.AnalysisKey(cfg, ka, ka) {
		t.Error("job multiplicity does not affect the analysis key")
	}
	other := pubtac.NewSession(pubtac.WithScale(0.05)).ConfigFingerprint()
	if pubtac.AnalysisKey(cfg, ka) == pubtac.AnalysisKey(other, ka) {
		t.Error("config fingerprint does not affect the analysis key")
	}
}
