package pubtac

import (
	"encoding/json"
	"fmt"
	"math"

	"pubtac/internal/core"
)

// ResultSchemaVersion is the version of the serialized result schema,
// stamped into every Result, MultiResult and BatchResult JSON document as
// "schema_version". Consumers (the pubtacd result store, the remote client)
// reject documents whose version differs from their own — a version bump
// invalidates every cached result, which is exactly right: the bytes of the
// document are the contract. Bump it whenever a serialized field is added,
// removed, renamed or reinterpreted.
const ResultSchemaVersion = 1

// SchemaError reports a serialized result whose schema_version does not
// match this build's ResultSchemaVersion.
type SchemaError struct {
	Got int // version found in the document
}

func (e *SchemaError) Error() string {
	return fmt.Sprintf("pubtac: result schema version %d, this build speaks %d", e.Got, ResultSchemaVersion)
}

// CheckSchemaVersion returns a *SchemaError when v differs from this build's
// ResultSchemaVersion, nil otherwise.
func CheckSchemaVersion(v int) error {
	if v != ResultSchemaVersion {
		return &SchemaError{Got: v}
	}
	return nil
}

// PWCETPoint is one point of a serialized pWCET curve.
type PWCETPoint struct {
	Prob   float64 `json:"prob"`
	Cycles float64 `json:"cycles"`
}

// resultProbes are the exceedance probabilities serialized into every
// Result's curve: one point per decade down to the certification-relevant
// 10^-12 per run.
var resultProbes = []float64{
	1e-1, 1e-2, 1e-3, 1e-4, 1e-5, 1e-6,
	1e-7, 1e-8, 1e-9, 1e-10, 1e-11, 1e-12,
}

// Result is the JSON-serializable outcome of the pipeline on one pubbed
// path. It flattens the numbers a service or CLI consumer needs; the full
// in-memory analysis (estimates, samples, TAC classes) stays reachable via
// Analysis for programmatic use and is not serialized.
type Result struct {
	SchemaVersion int `json:"schema_version"`

	Program  string `json:"program"`
	Input    string `json:"input"`
	Path     string `json:"path,omitempty"`
	RPub     int    `json:"r_pub"`     // runs required by MBPTA convergence
	RTac     int    `json:"r_tac"`     // runs required by TAC
	R        int    `json:"r"`         // max(RPub, RTac)
	RunsUsed int    `json:"runs_used"` // runs actually simulated

	PubConstructs int     `json:"pub_constructs"`  // conditionals balanced by PUB
	PubCodeGrowth float64 `json:"pub_code_growth"` // pubbed/original code size
	TACClasses    int     `json:"tac_classes"`     // TAC conflict classes found

	MaxObserved float64      `json:"max_observed"` // highest measured time (cycles)
	Curve       []PWCETPoint `json:"pwcet_curve"`  // PUB+TAC pWCET per decade

	analysis *core.PathAnalysis
}

// newResult flattens a PathAnalysis.
func newResult(pa *core.PathAnalysis) *Result {
	r := &Result{
		SchemaVersion: ResultSchemaVersion,
		Program:       pa.Program,
		Input:         pa.Input.Name,
		Path:          pa.Path,
		RPub:          pa.RPub,
		RTac:          pa.RTac,
		R:             pa.R,
		RunsUsed:      pa.RunsUsed,
		PubConstructs: pa.PubReport.Constructs,
		PubCodeGrowth: pa.PubReport.CodeGrowth(),
		TACClasses:    len(pa.TAC.Classes),
		MaxObserved:   pa.Full.MaxObserved(),
		analysis:      pa,
	}
	r.Curve = make([]PWCETPoint, len(resultProbes))
	for i, p := range resultProbes {
		r.Curve[i] = PWCETPoint{Prob: p, Cycles: pa.Full.PWCET(p)}
	}
	return r
}

// Analysis returns the full in-memory analysis behind the result, or nil
// for results decoded from JSON.
func (r *Result) Analysis() *PathAnalysis { return r.analysis }

// PWCET returns the PUB+TAC pWCET estimate at exceedance probability p.
// Results decoded from JSON interpolate the serialized curve (log-linear in
// log10(p), clamped to the curve's probability range).
func (r *Result) PWCET(p float64) float64 {
	if r.analysis != nil {
		return r.analysis.PWCET(p)
	}
	return interpCurve(r.Curve, p)
}

// interpCurve evaluates a serialized pWCET curve at probability p.
func interpCurve(curve []PWCETPoint, p float64) float64 {
	if len(curve) == 0 {
		return math.NaN()
	}
	if p >= curve[0].Prob {
		return curve[0].Cycles
	}
	last := curve[len(curve)-1]
	if p <= last.Prob {
		return last.Cycles
	}
	lp := math.Log10(p)
	for i := 1; i < len(curve); i++ {
		a, b := curve[i-1], curve[i]
		la, lb := math.Log10(a.Prob), math.Log10(b.Prob)
		if lp >= lb {
			t := (lp - la) / (lb - la)
			return a.Cycles + t*(b.Cycles-a.Cycles)
		}
	}
	return last.Cycles
}

// MultiResult aggregates the results of several pubbed paths of one
// program. Per Corollary 2 every path's estimate is a reliable bound, so
// the per-probability minimum is the bound of record.
type MultiResult struct {
	SchemaVersion int       `json:"schema_version"`
	Results       []*Result `json:"results"`
}

// PWCET returns the minimum pWCET across the analyzed paths at exceedance
// probability p (Corollary 2), or NaN when there are no results.
func (m *MultiResult) PWCET(p float64) float64 {
	best := m.Best(p)
	if best == nil {
		return math.NaN()
	}
	return best.PWCET(p)
}

// Best returns the path result whose estimate is lowest at probability p,
// or nil when there are no results.
func (m *MultiResult) Best(p float64) *Result {
	if len(m.Results) == 0 {
		return nil
	}
	best := m.Results[0]
	for _, r := range m.Results[1:] {
		if r.PWCET(p) < best.PWCET(p) {
			best = r
		}
	}
	return best
}

// BatchResult is the outcome of Session.AnalyzeBatch: one MultiResult per
// job, in job order.
type BatchResult struct {
	SchemaVersion int            `json:"schema_version"`
	Jobs          []*MultiResult `json:"jobs"`
}

// stampSchema fills in ResultSchemaVersion on the batch and every nested
// result that does not carry one yet, so hand-assembled wrappers (the CLI
// builds BatchResult literals around session results) serialize complete.
func (b *BatchResult) stampSchema() {
	if b.SchemaVersion == 0 {
		b.SchemaVersion = ResultSchemaVersion
	}
	for _, m := range b.Jobs {
		if m == nil {
			continue
		}
		if m.SchemaVersion == 0 {
			m.SchemaVersion = ResultSchemaVersion
		}
		for _, r := range m.Results {
			if r != nil && r.SchemaVersion == 0 {
				r.SchemaVersion = ResultSchemaVersion
			}
		}
	}
}

// DecodeBatchResult decodes a serialized BatchResult and verifies that its
// schema version matches this build's ResultSchemaVersion (a mismatch
// returns a *SchemaError).
func DecodeBatchResult(data []byte) (*BatchResult, error) {
	var b BatchResult
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("pubtac: decoding batch result: %w", err)
	}
	if err := CheckSchemaVersion(b.SchemaVersion); err != nil {
		return nil, err
	}
	return &b, nil
}

// All returns every path result across all jobs, in job then input order.
func (b *BatchResult) All() []*Result {
	var out []*Result
	for _, j := range b.Jobs {
		out = append(out, j.Results...)
	}
	return out
}

// JSON renders the batch result as indented JSON, stamping
// ResultSchemaVersion on the batch and every nested result first.
func (b *BatchResult) JSON() ([]byte, error) {
	b.stampSchema()
	return json.MarshalIndent(b, "", "  ")
}
