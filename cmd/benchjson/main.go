// Command benchjson turns `go test -bench` output into the repository's
// BENCH_N.json records and gates CI on benchmark regressions against the
// committed baselines. It replaces the awk one-liner the bench job used to
// carry, which broke on sub-benchmark names, -cpu suffixes and fractional
// ns/op values.
//
// Emit a record:
//
//	go test -run '^$' -bench ... . | tee bench.txt
//	go run ./cmd/benchjson -pr 3 -out BENCH_3.json bench.txt
//
// Gate on regressions (exit 1 when any benchmark is slower than the best
// committed baseline by more than the threshold factor):
//
//	go run ./cmd/benchjson -check -threshold 1.40 bench.txt BENCH_*.json
//
// The threshold is deliberately generous: CI runners are noisy and the
// committed baselines may come from different hardware, so the gate is
// meant to catch algorithmic regressions (2x, 10x), not percent-level
// drift. Benchmarks present in the run but absent from every baseline are
// reported and skipped; benchmarks only present in baselines are ignored
// (they may have been renamed or retired).
//
// Baselines can carry a runner label (-runner on emit). When -check also
// names a runner, benchmarks with at least one matching-runner baseline are
// gated against the best of THOSE at the tighter -runner-threshold
// (same-hardware comparisons don't need the cross-hardware slack); the
// generous global gate remains the fallback for benchmarks no same-runner
// baseline covers yet.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// File is the BENCH_N.json schema, unchanged from the records the CI
// artifacts have accumulated since PR 1.
type File struct {
	PR         int     `json:"pr"`
	Runner     string  `json:"runner,omitempty"` // hardware label; enables the tighter same-runner gate
	Benchmarks []Entry `json:"benchmarks"`
}

// Entry is one benchmark result.
type Entry struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
}

func main() {
	var (
		check     = flag.Bool("check", false, "compare a bench run against baseline JSON files instead of emitting JSON")
		threshold = flag.Float64("threshold", 1.40, "regression factor that fails -check (current > best_baseline * threshold)")
		pr        = flag.Int("pr", 0, "PR number recorded in the emitted JSON")
		out       = flag.String("out", "", "output path for the emitted JSON (default stdout)")
		runner    = flag.String("runner", "", "runner label: recorded on emit; on -check, gates against matching-runner baselines at -runner-threshold where they exist")
		runnerThr = flag.Float64("runner-threshold", 1.25, "regression factor against same-runner baselines (used only with -runner)")
	)
	flag.Parse()
	if flag.NArg() < 1 {
		fatalf("usage: benchjson [-check [-threshold f] bench.txt BASELINE.json...] | [-pr n [-out f] bench.txt]")
	}

	cur, err := parseBenchFile(flag.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}
	if len(cur) == 0 {
		fatalf("%s: no benchmark result lines found", flag.Arg(0))
	}

	if *check {
		if err := compare(cur, flag.Args()[1:], *threshold, *runner, *runnerThr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if err := emit(cur, *pr, *runner, *out); err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(2)
}

// cpuSuffix matches the -GOMAXPROCS suffix go test appends to benchmark
// names (e.g. BenchmarkCampaign1k-4). It is stripped so results compare
// across machines with different core counts.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

// parseBenchFile extracts ns/op results from `go test -bench` output. For
// names appearing several times (e.g. -count > 1) the minimum ns/op is
// kept: the fastest observation is the least noisy estimate of the true
// cost, which is the generous choice on both sides of the gate.
func parseBenchFile(path string) (map[string]Entry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	results := make(map[string]Entry)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		e, ok := parseBenchLine(sc.Text())
		if !ok {
			continue
		}
		if prev, seen := results[e.Name]; !seen || e.NsPerOp < prev.NsPerOp {
			results[e.Name] = e
		}
	}
	return results, sc.Err()
}

// parseBenchLine parses one result line:
//
//	BenchmarkCampaign1k-4   10094   116255 ns/op   [more metric pairs...]
func parseBenchLine(line string) (Entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Entry{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Entry{}, false
	}
	// Scan the (value, unit) metric pairs for ns/op; -benchmem and custom
	// metrics add more pairs after it.
	for i := 2; i+1 < len(fields); i += 2 {
		if fields[i+1] != "ns/op" {
			continue
		}
		ns, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Entry{}, false
		}
		return Entry{
			Name:       cpuSuffix.ReplaceAllString(fields[0], ""),
			Iterations: iters,
			NsPerOp:    ns,
		}, true
	}
	return Entry{}, false
}

// emit writes the run as a BENCH_N.json record, names sorted for stable
// diffs.
func emit(cur map[string]Entry, pr int, runner, out string) error {
	rec := File{PR: pr, Runner: runner, Benchmarks: make([]Entry, 0, len(cur))}
	//pubtac:nondeterministic collection order is erased by the sort-by-name below
	for _, e := range cur {
		rec.Benchmarks = append(rec.Benchmarks, e)
	}
	sort.Slice(rec.Benchmarks, func(i, j int) bool {
		return rec.Benchmarks[i].Name < rec.Benchmarks[j].Name
	})
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

// compare gates cur against the best (minimum ns/op) value per benchmark
// across the baseline files — preferring same-runner baselines at the
// tighter runnerThr when runner is set and a matching baseline exists. It
// prints a line per benchmark and returns an error listing the regressions,
// if any.
func compare(cur map[string]Entry, baselinePaths []string, threshold float64, runner string, runnerThr float64) error {
	if len(baselinePaths) == 0 {
		return fmt.Errorf("benchjson: -check needs at least one baseline JSON file")
	}
	best := make(map[string]float64)        // name -> lowest baseline ns/op
	source := make(map[string]string)       // name -> file providing it
	bestRunner := make(map[string]float64)  // same, restricted to matching-runner baselines
	sourceRunner := make(map[string]string) //
	for _, path := range baselinePaths {
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("benchjson: %v", err)
		}
		var rec File
		if err := json.Unmarshal(data, &rec); err != nil {
			return fmt.Errorf("benchjson: %s: %v", path, err)
		}
		for _, e := range rec.Benchmarks {
			name := cpuSuffix.ReplaceAllString(e.Name, "")
			if b, ok := best[name]; !ok || e.NsPerOp < b {
				best[name] = e.NsPerOp
				source[name] = path
			}
			if runner != "" && rec.Runner == runner {
				if b, ok := bestRunner[name]; !ok || e.NsPerOp < b {
					bestRunner[name] = e.NsPerOp
					sourceRunner[name] = path
				}
			}
		}
	}

	names := make([]string, 0, len(cur))
	//pubtac:nondeterministic keys are sorted immediately below
	for name := range cur {
		names = append(names, name)
	}
	sort.Strings(names)

	var regressions []string
	for _, name := range names {
		e := cur[name]
		b, ok := best[name]
		if !ok {
			fmt.Printf("%-60s %12.0f ns/op  (new: no baseline, skipped)\n", name, e.NsPerOp)
			continue
		}
		gate, src, kind := threshold, source[name], "best"
		if br, okr := bestRunner[name]; okr {
			// Same-hardware history: tighter gate, same-runner best.
			b, gate, src, kind = br, runnerThr, sourceRunner[name], "runner best"
		}
		ratio := e.NsPerOp / b
		verdict := "ok"
		if ratio > gate {
			verdict = "REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s: %.0f ns/op vs %s %.0f ns/op (%s) = %.2fx > %.2fx",
					name, e.NsPerOp, kind, b, src, ratio, gate))
		}
		fmt.Printf("%-60s %12.0f ns/op  %5.2fx of %s (%s)  %s\n",
			name, e.NsPerOp, ratio, kind, src, verdict)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("benchjson: %d benchmark regression(s) beyond %.2fx:\n  %s",
			len(regressions), threshold, strings.Join(regressions, "\n  "))
	}
	return nil
}
