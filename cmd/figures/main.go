// Command figures regenerates the paper's figures as ASCII plots plus the
// headline numbers each figure supports.
//
// Usage:
//
//	figures -fig 4 -scale 0.1
//	figures -fig all
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"pubtac/internal/experiment"
	"pubtac/internal/textplot"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")
	var (
		fig     = flag.String("fig", "all", "which figure: 1, 2, 4, 5 or all")
		scale   = flag.Float64("scale", 0.05, "campaign scale (1.0 = paper-size)")
		workers = flag.Int("workers", 0, "total simulation workers (0 = GOMAXPROCS)")
		width   = flag.Int("width", 72, "plot width")
		height  = flag.Int("height", 14, "plot height")
	)
	flag.Parse()
	opts := experiment.Options{Scale: *scale, Workers: *workers}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	want := func(f string) bool { return *fig == f || *fig == "all" }

	if want("1") {
		series, err := experiment.Figure1(ctx, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("Figure 1(a): pWCET curve upper-bounding the pETd")
		fmt.Print(textplot.ECCDF(toPlot(series), *width, *height))
		fmt.Println()
	}
	if want("2") {
		series, err := experiment.Figure2(ctx, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("Figure 2: ECCDF of bs original (o) vs pubbed (x) max-iteration paths")
		// Condense: merge the 8 original and 8 pubbed into two series for
		// readability; the full data stays available programmatically.
		merged := []textplot.Series{
			{Name: "original paths (8)"},
			{Name: "pubbed paths (8)"},
		}
		for i, s := range series {
			k := 0
			if i >= 8 {
				k = 1
			}
			merged[k].Points = append(merged[k].Points, s.Points...)
		}
		fmt.Print(textplot.ECCDF(merged, *width, *height))
		fmt.Println()
	}
	if want("4") {
		res, err := experiment.Figure4(ctx, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Figure 4: bs v9 — Rpub=%d vs Rp+t=%d\n", res.RPub, res.RPT)
		fmt.Print(textplot.ECCDF(toPlot([]experiment.Series{
			res.Reference, res.PubCurve, res.PTCurve,
		}), *width, *height))
		fmt.Println()
	}
	if want("5") {
		rows, err := experiment.Figure5(ctx, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("Figure 5: pWCET of PUB and PUB+TAC relative to plain MBPTA (@1e-12)")
		fmt.Printf("%-12s %8s %8s\n", "benchmark", "PUB", "PUB+TAC")
		for _, r := range rows {
			fmt.Printf("%-12s %7.2fx %7.2fx\n", r.Benchmark, r.PubRatio, r.PTRatio)
		}
	}
}

func toPlot(in []experiment.Series) []textplot.Series {
	out := make([]textplot.Series, len(in))
	for i, s := range in {
		out[i] = textplot.Series{Name: s.Name, Points: s.Points}
	}
	return out
}
