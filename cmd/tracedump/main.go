// Command tracedump inspects the address traces of a benchmark: lengths,
// path signatures, per-cache line statistics, and the effect of PUB —
// useful for understanding what TAC sees.
//
// Usage:
//
//	tracedump -bench bs -input v9 -pub
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"pubtac"
	"pubtac/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracedump: ")
	var (
		benchName = flag.String("bench", "bs", "benchmark name")
		inputName = flag.String("input", "", "input vector (default: benchmark default)")
		usePub    = flag.Bool("pub", false, "dump the pubbed program instead of the original")
		head      = flag.Int("head", 16, "accesses to print from the start of the trace")
	)
	flag.Parse()

	b, err := pubtac.Benchmark(*benchName)
	if err != nil {
		log.Fatal(err)
	}
	in := b.Default()
	if *inputName != "" {
		if in, err = b.Input(*inputName); err != nil {
			log.Fatal(err)
		}
	}
	p := b.Program
	if *usePub {
		q, rep, err := pubtac.Transform(p)
		if err != nil {
			log.Fatal(err)
		}
		p = q
		fmt.Printf("PUB: %d constructs, +%d accesses, +%d instructions, code x%.2f\n",
			rep.Constructs, rep.InsertedAccesses, rep.InsertedInstrs, rep.CodeGrowth())
	}
	res, err := p.Exec(in)
	if err != nil {
		log.Fatal(err)
	}
	instr := res.Trace.Filter(trace.Instr)
	data := res.Trace.Filter(trace.Data)
	fmt.Printf("program  %s  input %s\n", p.Name, in.Name)
	fmt.Printf("trace    %d accesses (%d instruction, %d data)\n",
		len(res.Trace), len(instr), len(data))
	if len(res.Path) > 120 {
		fmt.Printf("path     %.117s...\n", res.Path)
	} else {
		fmt.Printf("path     %s\n", res.Path)
	}

	model := pubtac.DefaultModel()
	lineStats("IL1", instr, model.IL1.LineBytes)
	lineStats("DL1", data, model.DL1.LineBytes)

	fmt.Printf("first %d accesses:\n", *head)
	for i, a := range res.Trace {
		if i == *head {
			break
		}
		fmt.Printf("  %3d  %s %#08x\n", i, a.Kind, a.Addr)
	}
}

func lineStats(name string, tr trace.Trace, lineBytes int) {
	counts := tr.Lines(lineBytes).Counts()
	type lc struct {
		line uint64
		n    int
	}
	var ls []lc
	//pubtac:nondeterministic collection order is erased by the total sort below
	for l, n := range counts {
		ls = append(ls, lc{l, n})
	}
	sort.Slice(ls, func(i, j int) bool {
		if ls[i].n != ls[j].n {
			return ls[i].n > ls[j].n
		}
		return ls[i].line < ls[j].line // tie-break so the hottest-6 cut is stable
	})
	fmt.Printf("%s      %d distinct lines; hottest:", name, len(ls))
	for i, e := range ls {
		if i == 6 {
			break
		}
		fmt.Printf(" %#x(%d)", e.line*uint64(lineBytes), e.n)
	}
	fmt.Println()
}
