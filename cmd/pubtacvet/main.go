// Command pubtacvet runs the repository's custom go/analysis suite — the
// determinism and oracle-pairing invariants the compiler cannot see (see
// internal/lint). It is a unitchecker binary: the go command drives it,
// package by package, exactly like the bundled vet tool.
//
// Usage:
//
//	go build -o pubtacvet ./cmd/pubtacvet
//	go vet -vettool=$(pwd)/pubtacvet ./...
//
// Individual analyzers can be selected or tuned through vet's usual flag
// surface, e.g. -detrand.scope to widen or narrow the result-affecting
// package set.
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"pubtac/internal/lint"
)

func main() {
	unitchecker.Main(lint.Analyzers()...)
}
