// Command tables regenerates the paper's Table 1 (bs execution-time
// domain) and Table 2 (representative number of runs per benchmark).
// Campaigns fan out over a bounded worker pool; Ctrl-C cancels cleanly.
//
// Usage:
//
//	tables -table all -scale 0.1
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"pubtac/internal/experiment"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tables: ")
	var (
		table   = flag.String("table", "all", "which table to regenerate: 1, 2 or all")
		scale   = flag.Float64("scale", 0.05, "campaign scale (1.0 = paper-size)")
		workers = flag.Int("workers", 0, "total simulation workers (0 = GOMAXPROCS)")
	)
	flag.Parse()
	opts := experiment.Options{Scale: *scale, Workers: *workers}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *table == "1" || *table == "all" {
		rows, err := experiment.Table1(ctx, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("Table 1: BS execution time domain (runs in thousands)")
		fmt.Printf("%-6s %8s %8s %14s %14s\n", "input", "Rpub", "Rp+t", "pWCET@1e-12", "")
		fmt.Printf("%-6s %8s %8s %14s %14s\n", "", "", "", "PUB", "P+T")
		for _, r := range rows {
			fmt.Printf("%-6s %8.0f %8.0f %14.0f %14.0f\n",
				r.Input, r.RPubK, r.RPTK, r.PWCETPub, r.PWCETPT)
		}
		fmt.Println()
	}
	if *table == "2" || *table == "all" {
		rows, err := experiment.Table2(ctx, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("Table 2: runs (in thousands) for MBPTA, PUB and PUB+TAC")
		fmt.Printf("%-12s %8s %8s %8s\n", "benchmark", "Rorig", "Rpub", "Rp+t")
		for _, r := range rows {
			fmt.Printf("%-12s %8.1f %8.1f %8.1f\n", r.Benchmark, r.ROrigK, r.RPubK, r.RPTK)
		}
	}
}
