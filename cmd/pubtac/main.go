// Command pubtac runs the full PUB+TAC analysis pipeline (Figure 3 of the
// paper) on one benchmark and input vector, printing the run requirements,
// TAC conflict classes and the resulting pWCET curve. Ctrl-C cancels a
// running campaign cleanly.
//
// Usage:
//
//	pubtac -bench bs -input v9 -scale 0.1
//	pubtac -bench crc -multipath -progress
//	pubtac -batch -scale 0.05 -json
//
// With -remote the analysis runs on a pubtacd daemon instead of in-process:
// the request is submitted over HTTP, progress streams back as Server-Sent
// Events, and repeated submissions are served from the daemon's
// content-addressed result store. The daemon's configuration (scale,
// workers, seed) applies; local simulation flags are ignored.
//
//	pubtac -remote http://127.0.0.1:8753 -bench bs -json
//
// With -peers the analysis stays local but its campaign collection is
// sharded across pubtacd workers running the same configuration; failed
// shards are recomputed locally and results are bit-identical to a purely
// local run at any peer or shard count.
//
//	pubtac -peers http://127.0.0.1:8761,http://127.0.0.1:8762 -bench bs
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"os/signal"
	"strings"

	"pubtac"
	"pubtac/client"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pubtac: ")
	var (
		benchName = flag.String("bench", "bs", "benchmark name (bs, cnt, fir, janne, crc, edn, insertsort, jfdctint, matmult, fdct, ns)")
		inputName = flag.String("input", "", "input vector name (default: benchmark default)")
		scale     = flag.Float64("scale", 0.05, "campaign scale (1.0 = paper-size)")
		multipath = flag.Bool("multipath", false, "analyze all available input vectors and take the Corollary-2 minimum")
		batch     = flag.Bool("batch", false, "analyze all 11 benchmarks concurrently (comma-separated names via -bench restrict the set)")
		workers   = flag.Int("workers", 0, "total simulation workers (0 = GOMAXPROCS)")
		progress  = flag.Bool("progress", false, "print campaign progress events")
		stream    = flag.Bool("stream", false, "bounded-memory streaming estimation (top-K reservoir + quantile sketch instead of retained samples)")
		streamK   = flag.Int("stream-budget", 0, "streaming memory budget K (0 = default 8192); implies -stream")
		asJSON    = flag.Bool("json", false, "emit results as JSON")
		remote    = flag.String("remote", "", "pubtacd base URL; analyze remotely instead of in-process")
		peers     = flag.String("peers", "", "comma-separated pubtacd worker base URLs; campaign collection shards across them (results stay bit-identical)")
		shards    = flag.Int("shards", 0, "shards per campaign range when -peers is set (0 = one per peer)")
		peerRetry = flag.Int("peer-retry", 0, "dispatch attempts per shard before local fallback (0 = fabric default, 3)")
		hedge     = flag.Duration("hedge-delay", 0, "race an unanswered shard on a second peer after this long (0 = off)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *remote != "" {
		runRemote(ctx, *remote, *benchName, *inputName, *multipath, *batch, *progress, *asJSON)
		return
	}

	opts := []pubtac.Option{
		pubtac.WithScale(*scale),
		pubtac.WithWorkers(*workers),
	}
	if *stream || *streamK > 0 {
		opts = append(opts, pubtac.WithStreamingEstimation(*streamK))
	}
	if *peers != "" {
		opts = append(opts, pubtac.WithPeers(client.NewPeers(strings.Split(*peers, ",")...)))
		if *shards > 0 {
			opts = append(opts, pubtac.WithShards(*shards))
		}
		if *peerRetry > 0 {
			opts = append(opts, pubtac.WithPeerRetry(*peerRetry))
		}
		if *hedge > 0 {
			opts = append(opts, pubtac.WithHedgeDelay(*hedge))
		}
	}
	if *progress {
		opts = append(opts, pubtac.WithProgress(printProgress))
	}
	s := pubtac.NewSession(opts...)

	if *batch {
		if *multipath || *inputName != "" {
			log.Fatal("-batch analyzes default inputs across benchmarks; it cannot be combined with -multipath or -input")
		}
		names := ""
		if flagWasSet("bench") {
			names = *benchName
		}
		runBatch(ctx, s, names, *asJSON)
		return
	}

	b, err := pubtac.Benchmark(*benchName)
	if err != nil {
		log.Fatal(err)
	}
	in := b.Default()
	if *inputName != "" {
		if in, err = b.Input(*inputName); err != nil {
			log.Fatal(err)
		}
	}

	if *multipath {
		m, err := s.AnalyzeMultiPath(ctx, b.Program, b.Inputs)
		if err != nil {
			log.Fatal(err)
		}
		if *asJSON {
			emitJSON(&pubtac.BatchResult{Jobs: []*pubtac.MultiResult{m}})
			return
		}
		fmt.Printf("benchmark %s: %d pubbed paths analyzed (Corollary 2)\n", b.Name, len(m.Results))
		for _, r := range m.Results {
			fmt.Printf("  %-10s Rpub=%-7d Rtac=%-7d R=%-7d pWCET@1e-12=%.0f\n",
				r.Input, r.RPub, r.RTac, r.R, r.PWCET(1e-12))
		}
		fmt.Printf("pWCET@1e-12 (min across paths) = %.0f cycles (path %s)\n",
			m.PWCET(1e-12), m.Best(1e-12).Input)
		return
	}

	res, err := s.AnalyzePath(ctx, b.Program, in)
	if err != nil {
		log.Fatal(err)
	}
	if *asJSON {
		emitJSON(&pubtac.BatchResult{Jobs: []*pubtac.MultiResult{{Results: []*pubtac.Result{res}}}})
		return
	}
	printPath(res)
}

// runRemote runs the requested analysis on a pubtacd daemon. With -progress
// the job is submitted asynchronously and its events stream back over SSE
// before the stored result is fetched by content key; otherwise one waiting
// request does it all. Cache status is reported on stderr either way.
func runRemote(ctx context.Context, base, benchNames, inputName string, multipath, batch, progress, asJSON bool) {
	c := client.New(base)
	req := client.AnalyzeRequest{}
	if batch {
		if multipath || inputName != "" {
			log.Fatal("-batch analyzes default inputs across benchmarks; it cannot be combined with -multipath or -input")
		}
		names := strings.Split(benchNames, ",")
		if !flagWasSet("bench") {
			names = names[:0]
			for _, b := range pubtac.Benchmarks() {
				names = append(names, b.Name)
			}
		}
		for _, n := range names {
			req.Jobs = append(req.Jobs, client.JobSpec{Bench: n})
		}
	} else {
		req.Bench = benchNames
		req.Input = inputName
		req.Multipath = multipath
	}

	var body []byte
	var cached bool
	if progress {
		sub, err := c.Submit(ctx, req)
		if err != nil {
			log.Fatal(err)
		}
		cached = sub.Cached
		if !sub.Cached {
			if err := c.Events(ctx, sub.JobID, printProgress); err != nil {
				log.Fatal(err)
			}
		}
		var found bool
		if body, found, err = c.Result(ctx, sub.Key); err != nil {
			log.Fatal(err)
		} else if !found {
			log.Fatalf("job %s completed but key %s is not in the store", sub.JobID, sub.Key)
		}
	} else {
		var err error
		if body, cached, err = c.AnalyzeRaw(ctx, req); err != nil {
			log.Fatal(err)
		}
	}
	if cached {
		fmt.Fprintln(os.Stderr, "  [remote] served from the daemon's result store")
	}

	if asJSON {
		fmt.Println(string(body))
		return
	}
	res, err := pubtac.DecodeBatchResult(body)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s %-10s %8s %8s %8s %10s %14s\n", "benchmark", "input", "Rpub", "Rtac", "R", "simulated", "pWCET@1e-12")
	for _, r := range res.All() {
		fmt.Printf("%-12s %-10s %8d %8d %8d %10d %14.0f\n",
			r.Program, r.Input, r.RPub, r.RTac, r.R, r.RunsUsed, r.PWCET(1e-12))
	}
}

// flagWasSet reports whether the named flag was given on the command line.
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// runBatch analyzes a set of benchmarks concurrently through the batch
// engine: all 11 when names is empty, otherwise the comma-separated list.
func runBatch(ctx context.Context, s *pubtac.Session, names string, asJSON bool) {
	var list []string
	if names != "" {
		list = strings.Split(names, ",")
	}
	jobs, err := pubtac.BenchmarkJobs(list...)
	if err != nil {
		log.Fatal(err)
	}
	batch, err := s.AnalyzeBatch(ctx, jobs)
	if err != nil {
		log.Fatal(err)
	}
	if asJSON {
		emitJSON(batch)
		return
	}
	fmt.Printf("%-12s %8s %8s %8s %10s %14s\n", "benchmark", "Rpub", "Rtac", "R", "simulated", "pWCET@1e-12")
	for _, r := range batch.All() {
		fmt.Printf("%-12s %8d %8d %8d %10d %14.0f\n",
			r.Program, r.RPub, r.RTac, r.R, r.RunsUsed, r.PWCET(1e-12))
	}
}

func emitJSON(b *pubtac.BatchResult) {
	buf, err := b.JSON()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(buf))
}

// progressMilestones keeps one 4096-run bucket per (path, phase) so the
// throttle fires on every milestone crossing even when the per-block run
// counts are not milestone-aligned (convergence rounds resume at arbitrary
// offsets). The session serializes progress callbacks, so a plain map is
// safe here.
var progressMilestones = map[string]int{}

// printProgress renders progress events; campaign workers emit them
// frequently, so only ~4096-run milestones and terminal events are shown.
// Warnings (e.g. an inadmissible i.i.d. battery at convergence) are always
// printed with their detail.
func printProgress(ev pubtac.ProgressEvent) {
	if ev.Phase == "warning" {
		fmt.Fprintf(os.Stderr, "  [%s/%s] warning: %s\n", ev.Program, ev.Input, ev.Note)
		return
	}
	if ev.Phase != "done" {
		key := ev.Program + "/" + ev.Input + "/" + ev.Phase
		bucket := ev.Done / 4096
		if progressMilestones[key] == bucket {
			return
		}
		progressMilestones[key] = bucket
	}
	fmt.Fprintf(os.Stderr, "  [%s/%s] %s %d/%d runs\n",
		ev.Program, ev.Input, ev.Phase, ev.Done, ev.Target)
	if ev.Phase == "done" && ev.Note != "" {
		// Terminal events report the estimation layer's peak retained
		// memory (bounded by the budget under -stream).
		fmt.Fprintf(os.Stderr, "  [%s/%s] %s\n", ev.Program, ev.Input, ev.Note)
	}
}

func printPath(r *pubtac.Result) {
	pa := r.Analysis()
	fmt.Printf("benchmark      %s (input %s)\n", r.Program, r.Input)
	fmt.Printf("PUB            %d constructs balanced, %d accesses inserted, code x%.2f\n",
		pa.PubReport.Constructs, pa.PubReport.InsertedAccesses, r.PubCodeGrowth)
	fmt.Printf("TAC            %d conflict groups in %d classes, baseline mean %.0f cycles\n",
		len(pa.TAC.Groups), len(pa.TAC.Classes), pa.TAC.BaselineMean)
	for i, c := range pa.TAC.Classes {
		fmt.Printf("  class %d: impact %.0f cycles, p=%.3g (%d groups) -> R=%d\n",
			i+1, c.Impact, c.Prob, c.Groups, c.Runs)
	}
	fmt.Printf("runs           Rpub=%d  Rtac=%d  R=%d (simulated %d)\n",
		r.RPub, r.RTac, r.R, r.RunsUsed)
	iid := pa.Full.IID
	fmt.Printf("diagnostics    runs-test p=%.3f  ljung-box p=%.3f  ks p=%.3f  CV=%.3f\n",
		iid.Runs.PValue, iid.LjungBox.PValue, iid.Identical.PValue, pa.Full.CV.CV)
	fmt.Println("pWCET curve (PUB+TAC):")
	for _, e := range []float64{3, 6, 9, 12} {
		p := math.Pow(10, -e)
		fmt.Printf("  @1e-%-3.0f %10.0f cycles\n", e, r.PWCET(p))
	}
	if r.RTac > r.RPub {
		fmt.Printf("note: TAC demands %dx more runs than plain MBPTA convergence\n",
			r.RTac/maxInt(r.RPub, 1))
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
