// Command pubtac runs the full PUB+TAC analysis pipeline (Figure 3 of the
// paper) on one benchmark and input vector, printing the run requirements,
// TAC conflict classes and the resulting pWCET curve.
//
// Usage:
//
//	pubtac -bench bs -input v9 -scale 0.1
//	pubtac -bench crc -multipath
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"pubtac/internal/core"
	"pubtac/internal/experiment"
	"pubtac/internal/malardalen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pubtac: ")
	var (
		benchName = flag.String("bench", "bs", "benchmark name (bs, cnt, fir, janne, crc, edn, insertsort, jfdctint, matmult, fdct, ns)")
		inputName = flag.String("input", "", "input vector name (default: benchmark default)")
		scale     = flag.Float64("scale", 0.05, "campaign scale (1.0 = paper-size)")
		multipath = flag.Bool("multipath", false, "analyze all available input vectors and take the Corollary-2 minimum")
		workers   = flag.Int("workers", 0, "simulation workers (0 = GOMAXPROCS)")
	)
	flag.Parse()

	b, err := malardalen.Get(*benchName)
	if err != nil {
		log.Fatal(err)
	}
	in := b.Default()
	if *inputName != "" {
		if in, err = b.Input(*inputName); err != nil {
			log.Fatal(err)
		}
	}
	opts := experiment.Options{Scale: *scale, Workers: *workers}
	a := core.New(opts.AnalyzerConfig())

	if *multipath {
		m, err := a.AnalyzeMultiPath(b.Program, b.Inputs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("benchmark %s: %d pubbed paths analyzed (Corollary 2)\n", b.Name, len(m.Paths))
		for _, pa := range m.Paths {
			fmt.Printf("  %-10s Rpub=%-7d Rtac=%-7d R=%-7d pWCET@1e-12=%.0f\n",
				pa.Input.Name, pa.RPub, pa.RTac, pa.R, pa.PWCET(1e-12))
		}
		fmt.Printf("pWCET@1e-12 (min across paths) = %.0f cycles (path %s)\n",
			m.PWCET(1e-12), m.Best(1e-12).Input.Name)
		return
	}

	pa, err := a.AnalyzePath(b.Program, in)
	if err != nil {
		log.Fatal(err)
	}
	printPath(pa)
}

func printPath(pa *core.PathAnalysis) {
	fmt.Printf("benchmark      %s (input %s)\n", pa.Program, pa.Input.Name)
	fmt.Printf("PUB            %d constructs balanced, %d accesses inserted, code x%.2f\n",
		pa.PubReport.Constructs, pa.PubReport.InsertedAccesses, pa.PubReport.CodeGrowth())
	fmt.Printf("TAC            %d conflict groups in %d classes, baseline mean %.0f cycles\n",
		len(pa.TAC.Groups), len(pa.TAC.Classes), pa.TAC.BaselineMean)
	for i, c := range pa.TAC.Classes {
		fmt.Printf("  class %d: impact %.0f cycles, p=%.3g (%d groups) -> R=%d\n",
			i+1, c.Impact, c.Prob, c.Groups, c.Runs)
	}
	fmt.Printf("runs           Rpub=%d  Rtac=%d  R=%d (simulated %d)\n",
		pa.RPub, pa.RTac, pa.R, pa.RunsUsed)
	iid := pa.Full.IID
	fmt.Printf("diagnostics    runs-test p=%.3f  ljung-box p=%.3f  ks p=%.3f  CV=%.3f\n",
		iid.Runs.PValue, iid.LjungBox.PValue, iid.Identical.PValue, pa.Full.CV.CV)
	fmt.Println("pWCET curve (PUB+TAC):")
	for _, e := range []float64{3, 6, 9, 12} {
		p := math.Pow(10, -e)
		fmt.Printf("  @1e-%-3.0f %10.0f cycles\n", e, pa.Full.PWCET(p))
	}
	if pa.RTac > pa.RPub {
		fmt.Printf("note: TAC demands %dx more runs than plain MBPTA convergence\n",
			pa.RTac/maxInt(pa.RPub, 1))
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
