// Command pubtacd is the resident pubtac analysis daemon: a JSON-over-HTTP
// service over the Session API with a content-addressed, persistent result
// store. The pipeline is a deterministic function of (program, configuration,
// seed), so every result is cached forever under its content key — hot
// queries are store hits served without simulation, cold ones fan out over
// the session worker pool, and the per-item on-disk tier survives instance
// eviction and restart.
//
// Endpoints:
//
//	POST /v1/analyze            submit (single path, multipath or batch);
//	                            {"wait":true} responds with the result body
//	GET  /v1/jobs/{id}          job status
//	GET  /v1/jobs/{id}/events   progress events (Server-Sent Events)
//	GET  /v1/results/{key}      stored result by content key
//	GET  /v1/healthz            liveness
//	GET  /v1/statusz            cache/job counters
//
// Usage:
//
//	pubtacd -addr 127.0.0.1:8753 -dir /var/lib/pubtac -scale 1.0
//	pubtac -remote http://127.0.0.1:8753 -bench bs
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"time"

	"pubtac"
	"pubtac/internal/pool"
	"pubtac/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pubtacd: ")
	var (
		addr    = flag.String("addr", "127.0.0.1:8753", "listen address")
		dir     = flag.String("dir", "pubtacd-store", "result store directory (persists across restarts)")
		mem     = flag.Int("mem", 256, "in-memory result cache entries (LRU over the disk tier)")
		maxJobs = flag.Int("max-jobs", 2, "concurrently computing analyses; further submissions queue")
		scale   = flag.Float64("scale", 1.0, "campaign scale (1.0 = paper-size)")
		workers = flag.Int("workers", 0, "simulation workers per analysis (0 = GOMAXPROCS)")
		seed    = flag.Uint64("seed", 0, "campaign seed salt (part of every cache key)")
		stream  = flag.Bool("stream", false, "bounded-memory streaming estimation")
		streamK = flag.Int("stream-budget", 0, "streaming memory budget K (0 = default); implies -stream")
	)
	flag.Parse()

	opts := []pubtac.Option{
		pubtac.WithScale(*scale),
		pubtac.WithWorkers(*workers),
		pubtac.WithSeed(*seed),
	}
	if *stream || *streamK > 0 {
		opts = append(opts, pubtac.WithStreamingEstimation(*streamK))
	}

	store, err := serve.NewStore(*dir, *mem)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := serve.New(serve.Options{
		Store:          store,
		SessionOptions: opts,
		MaxJobs:        *maxJobs,
	})
	if err != nil {
		log.Fatal(err)
	}
	if n, err := store.DiskLen(); err == nil {
		log.Printf("store %s: %d persisted results", *dir, n)
	}
	log.Printf("config fingerprint %s (schema v%d)", srv.ConfigFingerprint(), pubtac.ResultSchemaVersion)

	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	grp, gctx := pool.WithContext(ctx)
	grp.Go(func() error {
		log.Printf("listening on http://%s", *addr)
		return httpSrv.ListenAndServe() // http.ErrServerClosed after Shutdown
	})
	grp.Go(func() error {
		<-gctx.Done() // interrupt, or ListenAndServe failed
		srv.Close()   // cancel jobs, release SSE streams and waiters
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return httpSrv.Shutdown(sctx)
	})
	if err := grp.Wait(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	log.Print("shut down")
}
