// Command pubtacd is the resident pubtac analysis daemon: a JSON-over-HTTP
// service over the Session API with a content-addressed, persistent result
// store. The pipeline is a deterministic function of (program, configuration,
// seed), so every result is cached forever under its content key — hot
// queries are store hits served without simulation, cold ones fan out over
// the session worker pool, and the per-item on-disk tier survives instance
// eviction and restart.
//
// Endpoints:
//
//	POST /v1/analyze            submit (single path, multipath or batch);
//	                            {"wait":true} responds with the result body
//	POST /v1/shards             execute one campaign shard (worker half of
//	                            distributed sharding; see -peers)
//	GET  /v1/jobs/{id}          job status
//	GET  /v1/jobs/{id}/events   progress events (Server-Sent Events)
//	GET  /v1/results/{key}      stored result by content key (ETag/If-None-Match)
//	GET  /v1/healthz            liveness
//	GET  /v1/statusz            cache/job counters
//
// Usage:
//
//	pubtacd -addr 127.0.0.1:8753 -dir /var/lib/pubtac -scale 1.0
//	pubtac -remote http://127.0.0.1:8753 -bench bs
//
// With -peers the daemon becomes a campaign coordinator: every campaign's
// collection is sharded across the listed workers (each running the same
// session configuration), failed shards are recomputed locally, and the
// merged results — and so every cache key — are bit-identical to an
// unsharded daemon's:
//
//	pubtacd -addr :8761 -dir w1 &
//	pubtacd -addr :8762 -dir w2 &
//	pubtacd -addr :8753 -dir coord -peers http://127.0.0.1:8761,http://127.0.0.1:8762
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"pubtac"
	"pubtac/internal/fault"
	"pubtac/internal/pool"
	"pubtac/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pubtacd: ")
	var (
		addr    = flag.String("addr", "127.0.0.1:8753", "listen address")
		dir     = flag.String("dir", "pubtacd-store", "result store directory (persists across restarts)")
		mem     = flag.Int("mem", 256, "in-memory result cache entries (LRU over the disk tier)")
		maxJobs = flag.Int("max-jobs", 2, "concurrently computing analyses; further submissions queue")
		scale   = flag.Float64("scale", 1.0, "campaign scale (1.0 = paper-size)")
		workers = flag.Int("workers", 0, "simulation workers per analysis (0 = GOMAXPROCS)")
		seed    = flag.Uint64("seed", 0, "campaign seed salt (part of every cache key)")
		stream  = flag.Bool("stream", false, "bounded-memory streaming estimation")
		streamK = flag.Int("stream-budget", 0, "streaming memory budget K (0 = default); implies -stream")
		peers   = flag.String("peers", "", "comma-separated pubtacd worker base URLs; campaigns shard across them (results stay bit-identical)")
		shards  = flag.Int("shards", 0, "shards per campaign range when -peers is set (0 = one per peer)")
		quota   = flag.Int64("disk-quota", 0, "disk-tier byte quota; oldest entries evicted past it (0 = unbounded)")

		peerRetry = flag.Int("peer-retry", 0, "dispatch attempts per shard before local fallback (0 = fabric default, 3)")
		hedge     = flag.Duration("hedge-delay", 0, "race an unanswered shard on a second peer after this long (0 = off)")
		deadline  = flag.Duration("shard-deadline", 10*time.Minute, "per-shard compute budget for POST /v1/shards; over-budget shards fail with 503 (0 = none)")
		chaos     = flag.String("chaos", "", `fault-inject outbound peer calls, e.g. "drop=150,fail=100,corrupt=80,truncate=50,delay=100:5ms" (per-mille rates; testing only)`)
		chaosSeed = flag.Uint64("chaos-seed", 1, "seed for the -chaos injection schedule (same seed, same schedule)")
	)
	flag.Parse()

	opts := []pubtac.Option{
		pubtac.WithScale(*scale),
		pubtac.WithWorkers(*workers),
		pubtac.WithSeed(*seed),
	}
	if *stream || *streamK > 0 {
		opts = append(opts, pubtac.WithStreamingEstimation(*streamK))
	}

	store, err := serve.NewStore(*dir, *mem)
	if err != nil {
		log.Fatal(err)
	}
	if *quota > 0 {
		if err := store.SetDiskQuota(*quota); err != nil {
			log.Fatal(err)
		}
	}
	var peerList []string
	if *peers != "" {
		peerList = strings.Split(*peers, ",")
	}
	var peerTransport http.RoundTripper
	if *chaos != "" {
		spec, err := fault.ParseSpec(*chaos, *chaosSeed)
		if err != nil {
			log.Fatal(err)
		}
		peerTransport = fault.New(spec).RoundTripper(nil, nil)
		log.Printf("CHAOS: injecting faults into outbound peer calls (%s, seed %d)", *chaos, *chaosSeed)
	}
	srv, err := serve.New(serve.Options{
		Store:          store,
		SessionOptions: opts,
		MaxJobs:        *maxJobs,
		Peers:          peerList,
		Shards:         *shards,
		PeerRetry:      *peerRetry,
		HedgeDelay:     *hedge,
		PeerTransport:  peerTransport,
		ShardDeadline:  *deadline,
	})
	if err != nil {
		log.Fatal(err)
	}
	if len(peerList) > 0 {
		log.Printf("coordinating campaigns over %d peers", len(peerList))
	}
	if n, err := store.DiskLen(); err == nil {
		log.Printf("store %s: %d persisted results", *dir, n)
	}
	log.Printf("config fingerprint %s (schema v%d)", srv.ConfigFingerprint(), pubtac.ResultSchemaVersion)

	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	grp, gctx := pool.WithContext(ctx)
	grp.Go(func() error {
		log.Printf("listening on http://%s", *addr)
		return httpSrv.ListenAndServe() // http.ErrServerClosed after Shutdown
	})
	grp.Go(func() error {
		<-gctx.Done() // interrupt, or ListenAndServe failed
		srv.Close()   // cancel jobs, release SSE streams and waiters
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return httpSrv.Shutdown(sctx)
	})
	if err := grp.Wait(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	log.Print("shut down")
}
