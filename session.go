package pubtac

import (
	"context"
	"fmt"
	"sync"

	"pubtac/internal/core"
	"pubtac/internal/malardalen"
)

// Session is the context-aware entry point to the PUB+TAC pipeline. One
// session owns a pipeline configuration and a simulation worker budget and
// runs whole campaigns — single paths, multipath programs, or batches of
// benchmarks — concurrently, cancellably and reproducibly.
//
//	s := pubtac.NewSession(pubtac.WithScale(0.05))
//	res, err := s.AnalyzePath(ctx, bench.Program, bench.Default())
//
// A Session is safe for concurrent use; analyses issued in parallel share
// nothing but the configuration. Results are deterministic functions of
// (program, input, seed) — worker counts and batching never change them.
type Session struct {
	cfg     core.Config
	workers int
	an      *core.Analyzer

	mu sync.Mutex // serializes progress delivery to the user's callback
}

// NewSession builds a session from functional options. With no options the
// session reproduces the paper's evaluation setup at full scale on
// GOMAXPROCS workers.
func NewSession(opts ...Option) *Session {
	st := defaultSettings()
	for _, opt := range opts {
		opt(st)
	}
	s := &Session{}
	cfg := st.build()
	s.workers = st.workers
	if st.progress != nil {
		sink := st.progress
		cfg.Progress = func(ev ProgressEvent) {
			s.mu.Lock()
			defer s.mu.Unlock()
			sink(ev)
		}
	}
	s.cfg = cfg
	s.an = core.New(cfg)
	return s
}

// Config returns the session's resolved pipeline configuration.
func (s *Session) Config() Config { return s.cfg }

// Workers returns the session's simulation worker budget (0 = GOMAXPROCS).
func (s *Session) Workers() int { return s.workers }

// AnalyzePath runs the full pipeline (Figure 3) on one input vector: PUB
// transforms the program, TAC sizes the campaign from the pubbed path's
// address sequence, and MBPTA/EVT turns max(R_pub, R_tac) measurements into
// a pWCET curve upper-bounding every path of the original program.
// Cancelling ctx stops the campaign promptly with ctx.Err().
func (s *Session) AnalyzePath(ctx context.Context, p *Program, in Input) (*Result, error) {
	pa, err := s.an.AnalyzePathCtx(ctx, p, in)
	if err != nil {
		return nil, err
	}
	return newResult(pa), nil
}

// AnalyzeOriginal measures the unmodified program with plain MBPTA: the
// paper's R_orig baseline.
func (s *Session) AnalyzeOriginal(ctx context.Context, p *Program, in Input) (*OriginalAnalysis, error) {
	return s.an.AnalyzeOriginalCtx(ctx, p, in, 0)
}

// AnalyzeMultiPath runs the pipeline on every input vector concurrently
// (bounded by the session's worker budget) and aggregates per Corollary 2.
func (s *Session) AnalyzeMultiPath(ctx context.Context, p *Program, inputs []Input) (*MultiResult, error) {
	batch, err := s.AnalyzeBatch(ctx, []Job{{Program: p, Inputs: inputs}})
	if err != nil {
		return nil, err
	}
	return batch.Jobs[0], nil
}

// Job names one program and the input vectors (pubbed paths) to analyze in
// a batch.
type Job struct {
	Program *Program
	Inputs  []Input
}

// BenchmarkJobs builds batch jobs for the named Mälardalen benchmarks with
// their default input vectors; with no names it covers all 11 benchmarks in
// Table 2 order.
func BenchmarkJobs(names ...string) ([]Job, error) {
	if len(names) == 0 {
		names = append([]string(nil), malardalen.Order...)
	}
	jobs := make([]Job, 0, len(names))
	for _, n := range names {
		b, err := malardalen.Get(n)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, Job{Program: b.Program, Inputs: []Input{b.Default()}})
	}
	return jobs, nil
}

// AnalyzeBatch fans every (job, input) pair out over the session's worker
// pool: up to Workers paths run concurrently, each campaign using its share
// of the budget, and the PUB transform runs once per distinct program. The
// first failing path cancels the rest; cancelling ctx stops all running
// campaigns promptly. Results are bit-identical to analyzing each path
// serially with the same configuration.
func (s *Session) AnalyzeBatch(ctx context.Context, jobs []Job) (*BatchResult, error) {
	if len(jobs) == 0 {
		return nil, fmt.Errorf("pubtac: empty batch")
	}
	cjobs := make([]core.Job, len(jobs))
	for i, j := range jobs {
		cjobs[i] = core.Job{Program: j.Program, Inputs: j.Inputs}
	}
	analyses, err := s.an.AnalyzeBatch(ctx, cjobs, s.workers)
	if err != nil {
		return nil, err
	}
	out := &BatchResult{SchemaVersion: ResultSchemaVersion, Jobs: make([]*MultiResult, len(analyses))}
	for i, paths := range analyses {
		mr := &MultiResult{SchemaVersion: ResultSchemaVersion, Results: make([]*Result, len(paths))}
		for k, pa := range paths {
			mr.Results[k] = newResult(pa)
		}
		out.Jobs[i] = mr
	}
	return out, nil
}
