package pubtac_test

import (
	"context"
	"encoding/json"
	"errors"
	"runtime"
	"testing"
	"time"

	"pubtac"
)

// sessionTestConfig mirrors the facade test sizing: small campaigns so a
// full path analysis stays in the tens of milliseconds.
func sessionTestConfig() pubtac.Config {
	cfg := pubtac.DefaultConfig()
	cfg.MBPTA.InitialRuns = 200
	cfg.MBPTA.Increment = 200
	cfg.MBPTA.MaxRuns = 2000
	cfg.CampaignCap = 3000
	return cfg
}

func TestSessionOptionApplication(t *testing.T) {
	s := pubtac.NewSession(
		pubtac.WithWorkers(3),
		pubtac.WithSeed(99),
		pubtac.WithCampaignCap(50000),
	)
	cfg := s.Config()
	if cfg.MBPTA.Workers != 3 || s.Workers() != 3 {
		t.Errorf("workers = %d/%d, want 3", cfg.MBPTA.Workers, s.Workers())
	}
	if cfg.SeedSalt != 99 {
		t.Errorf("seed salt = %d, want 99", cfg.SeedSalt)
	}
	if cfg.CampaignCap != 50000 {
		t.Errorf("campaign cap = %d, want 50000 (unscaled)", cfg.CampaignCap)
	}

	scaled := pubtac.NewSession(pubtac.WithScale(0.05)).Config()
	if scaled.MBPTA.InitialRuns != 200 { // 1000*0.05 floored at 200
		t.Errorf("scaled initial runs = %d, want 200", scaled.MBPTA.InitialRuns)
	}
	if scaled.MBPTA.MaxRuns != 15000 {
		t.Errorf("scaled max runs = %d, want 15000", scaled.MBPTA.MaxRuns)
	}
	if scaled.CampaignCap != 35000 { // 700000 * 0.05
		t.Errorf("scaled default cap = %d, want 35000", scaled.CampaignCap)
	}

	// The default cap is continuous in the scale: scale 1.0 gets the full
	// paper-size 7e5 cap, not "no cap".
	if got := pubtac.NewSession().Config().CampaignCap; got != 700000 {
		t.Errorf("default campaign cap = %d, want 700000", got)
	}
	// An explicit cap is honored verbatim, never rescaled.
	explicit := pubtac.NewSession(pubtac.WithScale(0.05), pubtac.WithCampaignCap(80000)).Config()
	if explicit.CampaignCap != 80000 {
		t.Errorf("explicit cap under scale = %d, want 80000", explicit.CampaignCap)
	}

	viaCfg := pubtac.NewSession(pubtac.WithConfig(sessionTestConfig())).Config()
	if viaCfg.MBPTA.MaxRuns != 2000 || viaCfg.CampaignCap != 3000 {
		t.Errorf("WithConfig not applied: %+v", viaCfg.MBPTA)
	}
	// WithConfig's Workers survives unless WithWorkers overrides it.
	wcfg := sessionTestConfig()
	wcfg.MBPTA.Workers = 1
	if got := pubtac.NewSession(pubtac.WithConfig(wcfg)); got.Config().MBPTA.Workers != 1 || got.Workers() != 1 {
		t.Errorf("WithConfig workers clobbered: cfg=%d session=%d",
			got.Config().MBPTA.Workers, got.Workers())
	}
	withModel := pubtac.NewSession(pubtac.WithModel(pubtac.DefaultModel().Deterministic())).Config()
	if withModel.Model.IL1.Placement == pubtac.DefaultModel().IL1.Placement {
		t.Error("WithModel not applied")
	}
}

func TestSessionCancellationStopsCampaign(t *testing.T) {
	before := runtime.NumGoroutine()

	// Full-scale session: the campaign would need minutes; cancellation
	// must stop it within a blink.
	s := pubtac.NewSession()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	jobs, err := pubtac.BenchmarkJobs()
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.AnalyzeBatch(ctx, jobs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if took := time.Since(start); took > 10*time.Second {
		t.Fatalf("cancellation took %v", took)
	}

	// All campaign goroutines must drain: poll until the count returns to
	// (near) the pre-call baseline.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestSessionDeadlineStopsCampaign(t *testing.T) {
	bench, err := pubtac.Benchmark("matmult")
	if err != nil {
		t.Fatal(err)
	}
	s := pubtac.NewSession()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := s.AnalyzePath(ctx, bench.Program, bench.Default()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestSessionProgressDelivery(t *testing.T) {
	bench, err := pubtac.Benchmark("bs")
	if err != nil {
		t.Fatal(err)
	}
	var events []pubtac.ProgressEvent
	s := pubtac.NewSession(
		pubtac.WithConfig(sessionTestConfig()),
		pubtac.WithProgress(func(ev pubtac.ProgressEvent) { events = append(events, ev) }),
	)
	if _, err := s.AnalyzePath(context.Background(), bench.Program, bench.Default()); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no progress events delivered")
	}
	sawConverge := false
	for _, ev := range events {
		if ev.Program != "bs" {
			t.Fatalf("event for program %q", ev.Program)
		}
		if ev.Done > ev.Target {
			t.Fatalf("done %d beyond target %d", ev.Done, ev.Target)
		}
		if ev.Phase == "converge" {
			sawConverge = true
		}
	}
	if !sawConverge {
		t.Error("no converge-phase events")
	}
	last := events[len(events)-1]
	if last.Phase != "done" || last.Done != last.Target {
		t.Fatalf("terminal event = %+v, want done with Done == Target", last)
	}
}

func TestSessionBatchMatchesSerial(t *testing.T) {
	bench, err := pubtac.Benchmark("bs")
	if err != nil {
		t.Fatal(err)
	}
	inputs := bench.Inputs[:3]
	cfg := sessionTestConfig()

	one := pubtac.NewSession(pubtac.WithConfig(cfg), pubtac.WithWorkers(1))
	serial := make([]*pubtac.Result, len(inputs))
	for i, in := range inputs {
		r, err := one.AnalyzePath(context.Background(), bench.Program, in)
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = r
	}

	s := pubtac.NewSession(pubtac.WithConfig(cfg), pubtac.WithWorkers(4))
	batch, err := s.AnalyzeBatch(context.Background(),
		[]pubtac.Job{{Program: bench.Program, Inputs: inputs}})
	if err != nil {
		t.Fatal(err)
	}
	got := batch.Jobs[0].Results
	if len(got) != len(serial) {
		t.Fatalf("results = %d, want %d", len(got), len(serial))
	}
	for i, r := range got {
		want := serial[i]
		if r.Input != want.Input {
			t.Fatalf("result %d out of order: %s vs %s", i, r.Input, want.Input)
		}
		if r.RPub != want.RPub || r.RTac != want.RTac || r.R != want.R || r.RunsUsed != want.RunsUsed {
			t.Errorf("%s: runs differ: batch (%d,%d,%d,%d) serial (%d,%d,%d,%d)",
				r.Input, r.RPub, r.RTac, r.R, r.RunsUsed,
				want.RPub, want.RTac, want.R, want.RunsUsed)
		}
		if r.PWCET(1e-12) != want.PWCET(1e-12) {
			t.Errorf("%s: pWCET differs: %v vs %v", r.Input, r.PWCET(1e-12), want.PWCET(1e-12))
		}
	}
}

func TestResultJSONRoundTrip(t *testing.T) {
	bench, err := pubtac.Benchmark("cnt")
	if err != nil {
		t.Fatal(err)
	}
	s := pubtac.NewSession(pubtac.WithConfig(sessionTestConfig()))
	res, err := s.AnalyzePath(context.Background(), bench.Program, bench.Default())
	if err != nil {
		t.Fatal(err)
	}
	buf, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back pubtac.Result
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back.Program != res.Program || back.R != res.R || len(back.Curve) != len(res.Curve) {
		t.Fatalf("round trip lost fields: %+v", back)
	}
	if back.Analysis() != nil {
		t.Error("decoded result should not carry an in-memory analysis")
	}
	// At serialized probe points the interpolated curve is exact.
	if got, want := back.PWCET(1e-12), res.PWCET(1e-12); got != want {
		t.Errorf("decoded pWCET@1e-12 = %v, want %v", got, want)
	}
	// Between probes it stays monotone and finite.
	mid := back.PWCET(3e-8)
	if !(mid >= back.PWCET(1e-7) && mid <= back.PWCET(1e-8)) {
		t.Errorf("interpolated pWCET %v outside bracketing decades [%v, %v]",
			mid, back.PWCET(1e-7), back.PWCET(1e-8))
	}
}

func TestBenchmarkJobs(t *testing.T) {
	jobs, err := pubtac.BenchmarkJobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 11 {
		t.Fatalf("jobs = %d, want 11", len(jobs))
	}
	if _, err := pubtac.BenchmarkJobs("nope"); err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
	two, err := pubtac.BenchmarkJobs("bs", "crc")
	if err != nil || len(two) != 2 {
		t.Fatalf("named jobs = %d (%v), want 2", len(two), err)
	}
}

func TestSessionBatchRejectsInputlessJob(t *testing.T) {
	bench, err := pubtac.Benchmark("bs")
	if err != nil {
		t.Fatal(err)
	}
	s := pubtac.NewSession(pubtac.WithConfig(sessionTestConfig()))
	_, err = s.AnalyzeBatch(context.Background(), []pubtac.Job{
		{Program: bench.Program, Inputs: bench.Inputs[:1]},
		{Program: bench.Program},
	})
	if err == nil {
		t.Fatal("expected error for a job with no inputs")
	}
	if _, err := s.AnalyzeBatch(context.Background(), nil); err == nil {
		t.Fatal("expected error for an empty batch")
	}
}

func TestSessionMultiPathMinimum(t *testing.T) {
	bench, err := pubtac.Benchmark("bs")
	if err != nil {
		t.Fatal(err)
	}
	s := pubtac.NewSession(pubtac.WithConfig(sessionTestConfig()))
	m, err := s.AnalyzeMultiPath(context.Background(), bench.Program, bench.Inputs[:3])
	if err != nil {
		t.Fatal(err)
	}
	p := 1e-12
	min := m.Results[0].PWCET(p)
	for _, r := range m.Results {
		if v := r.PWCET(p); v < min {
			min = v
		}
	}
	if m.PWCET(p) != min {
		t.Fatalf("MultiResult PWCET = %v, want min %v", m.PWCET(p), min)
	}
}

func TestSessionReferenceEnumeration(t *testing.T) {
	// WithReferenceEnumeration must reach the TAC config, and the two
	// enumeration arms must agree bit for bit through the public API.
	bench, err := pubtac.Benchmark("bs")
	if err != nil {
		t.Fatal(err)
	}
	ref := pubtac.NewSession(pubtac.WithConfig(sessionTestConfig()),
		pubtac.WithReferenceEnumeration(true))
	if !ref.Config().TAC.ReferenceEnumeration {
		t.Fatal("WithReferenceEnumeration not applied")
	}
	fast := pubtac.NewSession(pubtac.WithConfig(sessionTestConfig()))
	rRef, err := ref.AnalyzePath(context.Background(), bench.Program, bench.Default())
	if err != nil {
		t.Fatal(err)
	}
	rFast, err := fast.AnalyzePath(context.Background(), bench.Program, bench.Default())
	if err != nil {
		t.Fatal(err)
	}
	if rRef.RTac != rFast.RTac || rRef.TACClasses != rFast.TACClasses {
		t.Fatalf("enumeration arms diverge: RTac %d/%d, classes %d/%d",
			rRef.RTac, rFast.RTac, rRef.TACClasses, rFast.TACClasses)
	}
	if rRef.PWCET(1e-12) != rFast.PWCET(1e-12) {
		t.Fatalf("pWCET diverged: %v vs %v", rRef.PWCET(1e-12), rFast.PWCET(1e-12))
	}
}

func TestSessionIIDWarningDelivery(t *testing.T) {
	// An absurdly strict alpha forces the convergence battery to fail;
	// the warning must reach the session's progress sink with its note.
	bench, err := pubtac.Benchmark("bs")
	if err != nil {
		t.Fatal(err)
	}
	cfg := sessionTestConfig()
	cfg.MBPTA.Alpha = 0.999
	var warnings []pubtac.ProgressEvent
	s := pubtac.NewSession(pubtac.WithConfig(cfg), pubtac.WithProgress(func(ev pubtac.ProgressEvent) {
		if ev.Phase == "warning" {
			warnings = append(warnings, ev)
		}
	}))
	if _, err := s.AnalyzePath(context.Background(), bench.Program, bench.Default()); err != nil {
		t.Fatal(err)
	}
	if len(warnings) == 0 {
		t.Fatal("no warning event delivered despite alpha=0.999")
	}
	if warnings[0].Note == "" {
		t.Fatalf("warning without note: %+v", warnings[0])
	}
}

// TestSessionIIDHardFail: WithIIDHardFail promotes the alpha=0.999
// admissibility warning exercised above into a hard failure wrapping
// ErrIIDInadmissible — and the progress sink still sees the warning
// event before the analysis aborts.
func TestSessionIIDHardFail(t *testing.T) {
	bench, err := pubtac.Benchmark("bs")
	if err != nil {
		t.Fatal(err)
	}
	cfg := sessionTestConfig()
	cfg.MBPTA.Alpha = 0.999 // no finite random sample clears this bar
	var warnings int
	s := pubtac.NewSession(
		pubtac.WithConfig(cfg),
		pubtac.WithIIDHardFail(true),
		pubtac.WithProgress(func(ev pubtac.ProgressEvent) {
			if ev.Phase == "warning" {
				warnings++
			}
		}),
	)
	if !s.Config().IIDHardFail {
		t.Fatal("WithIIDHardFail(true) not reflected in Config()")
	}
	_, err = s.AnalyzePath(context.Background(), bench.Program, bench.Default())
	if !errors.Is(err, pubtac.ErrIIDInadmissible) {
		t.Fatalf("AnalyzePath error = %v, want ErrIIDInadmissible", err)
	}
	if warnings == 0 {
		t.Error("hard failure delivered no warning event first")
	}

	// AnalyzeOriginal takes the same gate. bs's original sample is nearly
	// constant (its battery trivially passes at any alpha), so gate a
	// benchmark whose original timing actually varies.
	mm, err := pubtac.Benchmark("matmult")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AnalyzeOriginal(context.Background(), mm.Program, mm.Default()); !errors.Is(err, pubtac.ErrIIDInadmissible) {
		t.Fatalf("AnalyzeOriginal error = %v, want ErrIIDInadmissible", err)
	}

	// At the default significance the same session setup ships normally:
	// the option only bites when the battery actually fails.
	ok := pubtac.NewSession(pubtac.WithConfig(sessionTestConfig()), pubtac.WithIIDHardFail(true))
	if _, err := ok.AnalyzePath(context.Background(), bench.Program, bench.Default()); err != nil {
		t.Fatalf("hard-fail session at default alpha: %v", err)
	}
}
